bench/exp_e1.ml: Ascii_plot Float List Metrics Printf Servo_system Table
