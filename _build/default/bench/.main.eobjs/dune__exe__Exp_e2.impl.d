bench/exp_e2.ml: Dc_motor Float List Metrics Pid Printf Qformat Servo_system Stats Table
