bench/exp_e3.ml: Bean Bean_project Expert Inspector List Mcu_db Printf Resources Result Table
