bench/exp_e4.ml: C_print Compile Cost_model Discrete_blocks Dtype List Mcu_db Pid Printf Qformat Servo_system String Table Target
