bench/exp_e5.ml: Ascii_plot Compile Encoder Float Hil_cosim List Option Pil_cosim Pil_target Printf Servo_system Sim Stats Table Target
