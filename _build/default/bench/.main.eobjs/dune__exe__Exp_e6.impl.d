bench/exp_e6.ml: Array Ascii_plot Dc_motor Float List Pid Printf Stability Table Timing_study Ztransfer
