bench/exp_e7.ml: Float List Machine Mcu_db Rta Stats Table Timer_periph
