bench/exp_e8.ml: Bean Bean_project Compile Dtype Float List Load_profile Math_blocks Mcu_db Metrics Model Periph_blocks Printf Servo_system Sim Sources Stats Table
