bench/main.ml: Array Exp_e1 Exp_e2 Exp_e3 Exp_e4 Exp_e5 Exp_e6 Exp_e7 Exp_e8 List Perf Printf String Sys
