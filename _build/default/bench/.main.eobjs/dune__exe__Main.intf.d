bench/main.mli:
