(* E1 -- Fig 7.1: closed-loop MIL simulation of the servo case study.
   Step-response metrics for each set-point plus disturbance rejection. *)

let speed_between speed t0 t1 =
  List.filter (fun (t, _) -> t >= t0 && t < t1) speed

let run () =
  print_endline "==================================================================";
  print_endline "E1 (Fig 7.1): MIL closed-loop servo -- step responses and load step";
  print_endline "==================================================================";
  let built = Servo_system.build () in
  let speed, _duty = Servo_system.mil_run built ~t_end:1.6 in
  Ascii_plot.print
    ~title:"servo speed: set-points 50/100/150 rad/s at 0/0.4/0.8 s, 4 mN.m load at 1.2 s"
    ~x_label:"time [s]"
    [ { Ascii_plot.label = "speed"; points = speed } ];
  let t = Table.create ~title:"step metrics per set-point segment"
      [ "segment"; "target"; "rise [ms]"; "overshoot"; "settle [ms]"; "sse [rad/s]"; "IAE" ]
  in
  let segment name t0 t1 y0 sp =
    let seg = speed_between speed t0 t1 in
    let si = Metrics.step_info ~sp ~y0 seg in
    let iae = Metrics.iae ~sp:(fun _ -> sp) seg in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0f rad/s" sp;
        Table.cell_f ~dec:1 (si.Metrics.rise_time *. 1e3);
        Table.cell_pct si.Metrics.overshoot;
        (if Float.is_nan si.Metrics.settling_time then "-"
         else Table.cell_f ~dec:1 (si.Metrics.settling_time *. 1e3));
        Table.cell_f ~dec:2 si.Metrics.steady_state_error;
        Table.cell_f ~dec:3 iae;
      ]
  in
  segment "0.0-0.4 s" 0.0 0.4 0.0 50.0;
  segment "0.4-0.8 s" 0.4 0.8 50.0 100.0;
  segment "0.8-1.2 s" 0.8 1.2 100.0 150.0;
  Table.print t;
  (* disturbance rejection at 1.2 s *)
  let post = speed_between speed 1.2 1.6 in
  let dip = List.fold_left (fun a (_, w) -> Float.min a w) infinity post in
  let recovered =
    List.find_opt (fun (t, w) -> t > 1.21 && Float.abs (w -. 150.0) < 1.5) post
  in
  Printf.printf
    "load step 4 mN.m at 1.2 s: dip to %.1f rad/s, recovered within %.0f ms\n\n"
    dip
    (match recovered with Some (t, _) -> (t -. 1.2) *. 1e3 | None -> nan)
