(* E2 -- Fig 7.2: the controller's fixed-point realisation. The default
   Simulink double is inappropriate for the 16-bit FPU-less MC56F8367; the
   Q15 controller must track the double one closely, the residual being
   quantisation. *)

let run () =
  print_endline "==================================================================";
  print_endline "E2 (Fig 7.2): double vs Q15 fixed-point controller";
  print_endline "==================================================================";
  let run variant =
    let cfg = { Servo_system.default_config with Servo_system.variant } in
    let b = Servo_system.build ~config:cfg () in
    (b, Servo_system.mil_run b ~t_end:1.0)
  in
  let b_float, (sp_float, _) = run Servo_system.Float_pid in
  let _b_fixed, (sp_fixed, _) = run Servo_system.Fixed_pid in
  let t =
    Table.create ~title:"controller arithmetic comparison (0..1.0 s, MIL)"
      [ "variant"; "rise [ms]"; "overshoot"; "sse [rad/s]"; "IAE" ]
  in
  let metrics name traj =
    let seg = List.filter (fun (t, _) -> t < 0.4) traj in
    let si = Metrics.step_info ~sp:50.0 seg in
    Table.add_row t
      [
        name;
        Table.cell_f ~dec:1 (si.Metrics.rise_time *. 1e3);
        Table.cell_pct si.Metrics.overshoot;
        Table.cell_f ~dec:3 si.Metrics.steady_state_error;
        Table.cell_f ~dec:3 (Metrics.iae ~sp:(fun _ -> 50.0) seg);
      ]
  in
  metrics "double (ideal)" sp_float;
  metrics "Q15 fixed point" sp_fixed;
  Table.print t;
  let dev = Metrics.max_deviation sp_float sp_fixed in
  Printf.printf "max trajectory deviation double vs Q15: %.3f rad/s\n" dev;

  (* the quantised gains the generator bakes into flash *)
  let fx =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:512.0
      ~out_scale:Dc_motor.default.Dc_motor.u_max b_float.Servo_system.gains
  in
  let kp_q, ki_q, _ = Pid.Fixpoint.quantized_gains fx in
  let g = b_float.Servo_system.gains in
  Printf.printf "gain quantisation: kp %.6f -> %.6f (%.3g %%), ki %.4f -> %.4f (%.3g %%)\n"
    g.Pid.kp kp_q
    (100.0 *. Float.abs (kp_q -. g.Pid.kp) /. g.Pid.kp)
    g.Pid.ki ki_q
    (100.0 *. Float.abs (ki_q -. g.Pid.ki) /. g.Pid.ki);

  (* single-signal view: measurement quantisation by the 400-count encoder
     at 1 kHz dominates; one count per period = 15.7 rad/s of apparent
     speed -- visible as ripple on both variants *)
  let ripple traj =
    let tail = List.filter (fun (t, _) -> t > 0.3 && t < 0.4) traj in
    Stats.jitter (List.map snd tail)
  in
  Printf.printf
    "steady-state speed ripple: double %.3f rad/s, Q15 %.3f rad/s (1 count/T = %.1f rad/s)\n\n"
    (ripple sp_float) (ripple sp_fixed)
    (2.0 *. Float.pi /. 400.0 /. 1e-3)
