(* E3 -- Fig 4.1: the Bean Inspector and the expert system. Prescaler
   solving across the achievable period range, immediate validation of
   designer decisions, and the error diagnostics of §3.1's missing
   "validation of the HW settings in the time and the resource domain". *)

let mcu = Mcu_db.mc56f8367

let run () =
  print_endline "==================================================================";
  print_endline "E3 (Fig 4.1): Bean Inspector and expert-system validation";
  print_endline "==================================================================";
  (* the inspector view of the case study's timer bean *)
  let p = Bean_project.create mcu in
  let ti =
    Bean_project.add p
      (Bean.make ~name:"TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.001 }))
  in
  print_string (Inspector.render_bean ti);
  print_newline ();

  (* prescaler solving sweep (the expert-system computation of §4) *)
  let t =
    Table.create ~title:"TimerInt period solving on the MC56F8367 (60 MHz)"
      [ "requested"; "prescaler"; "modulo"; "achieved"; "error" ]
  in
  List.iter
    (fun period ->
      match Expert.solve_timer_period mcu ~period with
      | Ok sol ->
          Table.add_row t
            [
              Printf.sprintf "%g us" (period *. 1e6);
              string_of_int sol.Expert.prescaler;
              string_of_int sol.Expert.modulo;
              Printf.sprintf "%.4g us" (sol.Expert.achieved_period *. 1e6);
              Printf.sprintf "%.2g %%" (100.0 *. sol.Expert.error_frac);
            ]
      | Error e ->
          Table.add_row t [ Printf.sprintf "%g us" (period *. 1e6); "-"; "-"; "-"; e ])
    [ 1e-5; 1e-4; 3.333e-4; 1e-3; 1.00001e-3; 1e-2; 0.1; 0.139; 1.0 ];
  Table.print t;

  (* invalid designer decisions are rejected with diagnoses *)
  let t = Table.create ~title:"invalid settings and their diagnoses"
      [ "attempted setting"; "diagnosis" ] in
  let check name f = Table.add_row t [ name; (match f () with Error e -> e | Ok _ -> "accepted!") ] in
  check "timer period 10 s" (fun () -> Expert.solve_timer_period mcu ~period:10.0);
  check "PWM carrier 100 Hz" (fun () -> Expert.solve_pwm_period mcu ~hz:100.0);
  check "ADC sampled every 1 us" (fun () ->
      Result.map (fun () -> 0) (Expert.check_adc_sampling mcu ~sample_period:1e-6));
  check "SCI at 1,000,000 baud" (fun () -> Expert.solve_sci_divisor mcu ~baud:1000000);
  Table.add_row t
    [ "two beans on PWM ch 0";
      (let r = Resources.create mcu in
       ignore (Resources.claim r ~owner:"PWM1" Resources.Pwm_ch ~unit_index:0 ());
       match Resources.claim r ~owner:"PWM2" Resources.Pwm_ch ~unit_index:0 () with
       | Error e -> e
       | Ok _ -> "accepted!") ];
  Table.add_row t
    [ "QuadDecoder on the HCS12";
      (let r = Resources.create Mcu_db.mc9s12dp256 in
       match Resources.claim r ~owner:"QD1" Resources.Qdec_unit () with
       | Error e -> e
       | Ok _ -> "accepted!") ];
  Table.print ~align:[ Table.Left; Table.Left ] t;
  print_newline ()
