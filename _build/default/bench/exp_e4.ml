(* E4 -- Fig 6.1 / §2: the code-generation pipeline. Generated code
   volume, memory estimates and execution cost per model and per MCU;
   MCU independence of the application code. *)

let run () =
  print_endline "==================================================================";
  print_endline "E4 (Fig 6.1): PEERT code generation -- volume, footprint, portability";
  print_endline "==================================================================";
  let t =
    Table.create ~title:"generated code per model (MC56F8367 target)"
      [ "model"; "blocks"; "app LoC"; "HAL LoC"; "state B"; "signals B";
        "flash est."; "RAM est."; "step [us]" ]
  in
  let add_model name built =
    let comp = Compile.compile built.Servo_system.controller in
    let a = Target.generate ~name ~project:built.Servo_system.project comp in
    let r = a.Target.report in
    Table.add_row t
      [
        name;
        string_of_int r.Target.n_blocks;
        string_of_int r.Target.app_loc;
        string_of_int r.Target.hal_loc;
        string_of_int r.Target.state_bytes;
        string_of_int r.Target.signal_bytes;
        Printf.sprintf "%d B" r.Target.est_flash_bytes;
        Printf.sprintf "%d B" r.Target.est_ram_bytes;
        Table.cell_f ~dec:1 (r.Target.step_time *. 1e6);
      ];
    a
  in
  let _ = add_model "servo (double PID)" (Servo_system.build ()) in
  let _ =
    add_model "servo (Q15 PID)"
      (Servo_system.build
         ~config:{ Servo_system.default_config with Servo_system.variant = Servo_system.Fixed_pid }
         ())
  in
  let _ =
    add_model "servo (no mode logic)"
      (Servo_system.build
         ~config:{ Servo_system.default_config with Servo_system.with_mode_logic = false }
         ())
  in
  let ar =
    add_model "servo (AUTOSAR block set)"
      (Servo_system.build
         ~config:{ Servo_system.default_config with
                   Servo_system.block_set = Servo_system.Autosar_blocks }
         ())
  in
  Table.print t;
  (* the section-8 second block-set variant: same behaviour, MCAL API *)
  let ar_c = C_print.print_unit ar.Target.model_c in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Printf.printf
    "AUTOSAR variant: MCAL API in generated code (Pwm_SetDutyCycle %b, \
     Icu_GetEdgeNumbers %b); MIL behaviour identical to the PE variant \
     (verified by the test suite)\n\n"
    (contains ar_c "Pwm_SetDutyCycle") (contains ar_c "Icu_GetEdgeNumbers");

  (* MCU portability: identical application code, per-MCU HAL and timing *)
  let cfg =
    { Servo_system.default_config with
      Servo_system.control_period = 2e-3;
      with_mode_logic = false }
  in
  let t =
    Table.create ~title:"the same model retargeted (application code must not change)"
      [ "MCU"; "status"; "step [us]"; "step [% of period]"; "HAL LoC"; "app identical" ]
  in
  let reference = ref None in
  List.iter
    (fun mcu ->
      match Servo_system.build ~config:{ cfg with Servo_system.mcu } () with
      | exception Invalid_argument _ ->
          Table.add_row t
            [ mcu.Mcu_db.name; "REJECTED (no quadrature decoder)"; "-"; "-"; "-"; "-" ]
      | built ->
          let comp = Compile.compile built.Servo_system.controller in
          let a = Target.generate ~name:"servo" ~project:built.Servo_system.project comp in
          let app = C_print.print_unit a.Target.model_c in
          let identical =
            match !reference with
            | None ->
                reference := Some app;
                "(reference)"
            | Some r -> if r = app then "yes" else "NO"
          in
          Table.add_row t
            [
              mcu.Mcu_db.name;
              "OK";
              Table.cell_f ~dec:1 (a.Target.report.Target.step_time *. 1e6);
              Table.cell_pct (a.Target.report.Target.step_time /. 2e-3);
              string_of_int a.Target.report.Target.hal_loc;
              identical;
            ])
    [ Mcu_db.mc56f8367; Mcu_db.mcf5213; Mcu_db.mc9s12dp256 ];
  Table.print t;

  (* float-on-FPU-less cost: the same controller with double vs Q15
     arithmetic on each CPU -- why §7 insists on fixed point *)
  let t =
    Table.create ~title:"controller step cost: double vs Q15 arithmetic (cycle model)"
      [ "MCU"; "double PID step"; "Q15 PID step"; "ratio" ]
  in
  List.iter
    (fun mcu ->
      let g = Pid.gains ~kp:0.03 ~ki:2.5 () in
      let spec_f = Discrete_blocks.pid ~ts:1e-3 g in
      let spec_x =
        Discrete_blocks.fix_pid ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:512.0
          ~out_scale:24.0 g
      in
      let cf = Cost_model.cycles_of_block mcu spec_f Dtype.Double in
      let cx = Cost_model.cycles_of_block mcu spec_x (Dtype.Fix Qformat.q15) in
      Table.add_row t
        [
          mcu.Mcu_db.name;
          Printf.sprintf "%d cy (%.1f us)" cf (float_of_int cf /. mcu.Mcu_db.f_cpu_hz *. 1e6);
          Printf.sprintf "%d cy (%.1f us)" cx (float_of_int cx /. mcu.Mcu_db.f_cpu_hz *. 1e6);
          Table.cell_f ~dec:1 (float_of_int cf /. float_of_int cx);
        ])
    Mcu_db.all;
  Table.print t;
  print_newline ()
