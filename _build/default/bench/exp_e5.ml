(* E5 -- Fig 6.2: processor-in-the-loop simulation. The development-board
   profile (execution times, response times, sampling jitter, stack),
   fidelity against MIL, and the RS-232 feasibility crossover. *)

let cfg = { Servo_system.default_config with Servo_system.control_period = 5e-3 }

let run_pil ?(baud = 115200) ?(periods = 320) () =
  let built = Servo_system.build ~config:cfg () in
  let comp = Compile.compile built.Servo_system.controller in
  let arts = Pil_target.generate ~name:"servo" ~project:built.Servo_system.project comp in
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant built in
  let driver = Servo_system.pil_driver built in
  ( built,
    arts,
    Pil_cosim.run ~baud ~mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule
      ~controller ~plant ~driver ~periods () )

let run () =
  print_endline "==================================================================";
  print_endline "E5 (Fig 6.2): PIL co-simulation over RS-232";
  print_endline "==================================================================";
  let built, _arts, r = run_pil () in
  let p = r.Pil_cosim.profile in
  let t =
    Table.create
      ~title:"PIL profile: servo on the virtual MC56F8367, 5 ms period, 115200 baud"
      [ "quantity"; "value" ]
  in
  Table.add_rows t
    [
      [ "controller execution";
        Printf.sprintf "%.1f us/step" (p.Pil_cosim.controller_exec.Stats.mean *. 1e6) ];
      [ "ISR-to-reply latency p50/p95/max";
        Printf.sprintf "%.0f / %.0f / %.0f us"
          (p.Pil_cosim.response_latency.Stats.p50 *. 1e6)
          (p.Pil_cosim.response_latency.Stats.p95 *. 1e6)
          (p.Pil_cosim.response_latency.Stats.max *. 1e6) ];
      [ "sampling jitter (peak-to-peak)";
        Printf.sprintf "%.1f us" (p.Pil_cosim.step_start_jitter *. 1e6) ];
      [ "communication";
        Printf.sprintf "%d B/period = %.2f ms on the wire"
          p.Pil_cosim.comm_bytes_per_period (p.Pil_cosim.comm_time_per_period *. 1e3) ];
      [ "CPU utilisation"; Table.cell_pct p.Pil_cosim.cpu_utilization ];
      [ "stack high-water"; Printf.sprintf "%d B" p.Pil_cosim.max_stack_bytes ];
      [ "deadline overruns"; string_of_int p.Pil_cosim.overruns ];
      [ "CRC errors"; string_of_int p.Pil_cosim.crc_errors ];
    ];
  Table.print t;

  (* fidelity: PIL vs MIL *)
  let mil_speed, _ = Servo_system.mil_run built ~t_end:1.6 in
  let pil_speed = Servo_system.pil_speed_trace r.Pil_cosim.trace in
  Ascii_plot.print ~title:"Fig 6.2 workload: MIL (*) vs PIL (+) speed" ~x_label:"time [s]"
    [
      { Ascii_plot.label = "MIL"; points = mil_speed };
      { Ascii_plot.label = "PIL"; points = pil_speed };
    ];
  let mil_at t =
    List.fold_left
      (fun best (ti, w) ->
        match best with
        | Some (tb, _) when Float.abs (ti -. t) >= Float.abs (tb -. t) -> best
        | _ -> Some (ti, w))
      None mil_speed
    |> Option.map snd
  in
  let dev =
    List.fold_left
      (fun acc (t, w) ->
        match mil_at t with Some wm -> Float.max acc (Float.abs (w -. wm)) | None -> acc)
      0.0
      (List.filter (fun (t, _) -> t > 0.05) pil_speed)
  in
  Printf.printf "max MIL-vs-PIL speed deviation after 50 ms: %.2f rad/s\n\n" dev;

  (* baud sweep: the RS-232 bottleneck *)
  let t =
    Table.create ~title:"baud-rate sweep at a 5 ms control period"
      [ "baud"; "wire time/period"; "feasible"; "latency p50"; "jitter p2p" ]
  in
  List.iter
    (fun baud ->
      match run_pil ~baud ~periods:120 () with
      | _, _, r ->
          let p = r.Pil_cosim.profile in
          Table.add_row t
            [
              string_of_int baud;
              Printf.sprintf "%.2f ms" (p.Pil_cosim.comm_time_per_period *. 1e3);
              "yes";
              Printf.sprintf "%.2f ms" (p.Pil_cosim.response_latency.Stats.p50 *. 1e3);
              Printf.sprintf "%.0f us" (p.Pil_cosim.step_start_jitter *. 1e6);
            ]
      | exception Invalid_argument _ ->
          Table.add_row t [ string_of_int baud; "> 4.75 ms"; "NO"; "-"; "-" ])
    [ 9600; 19200; 38400; 57600; 115200 ];
  Table.print t;

  (* minimum feasible control period per baud (the crossover curve) *)
  let t =
    Table.create ~title:"shortest feasible control period vs baud (wire-limited)"
      [ "baud"; "min period" ]
  in
  List.iter
    (fun baud ->
      let schedule =
        (let built = Servo_system.build ~config:cfg () in
         let comp = Compile.compile built.Servo_system.controller in
         (Pil_target.generate ~name:"servo" ~project:built.Servo_system.project comp)
           .Target.schedule)
      in
      let bytes = Pil_cosim.wire_bytes_per_period ~schedule in
      let min_period = float_of_int bytes *. 10.0 /. float_of_int baud /. 0.95 in
      Table.add_row t
        [ string_of_int baud; Printf.sprintf "%.2f ms" (min_period *. 1e3) ])
    [ 9600; 19200; 38400; 57600; 115200 ];
  Table.print t;

  (* line-noise robustness: CRC catches corruption, the loop survives *)
  let built2 = Servo_system.build ~config:cfg () in
  let comp2 = Compile.compile built2.Servo_system.controller in
  let arts2 = Pil_target.generate ~name:"servo" ~project:built2.Servo_system.project comp2 in
  let controller2 = Sim.create comp2 in
  let plant2 = Servo_system.pil_plant built2 in
  let driver2 = Servo_system.pil_driver built2 in
  let rn =
    Pil_cosim.run ~error_rate:0.005 ~mcu:cfg.Servo_system.mcu
      ~schedule:arts2.Target.schedule ~controller:controller2 ~plant:plant2
      ~driver:driver2 ~periods:320 ()
  in
  let pn = rn.Pil_cosim.profile in
  Printf.printf
    "with 0.5 %% per-byte line corruption: %d CRC drops, %d overrun periods, final speed %.1f rad/s\n\n"
    pn.Pil_cosim.crc_errors pn.Pil_cosim.overruns
    (match List.rev (Servo_system.pil_speed_trace rn.Pil_cosim.trace) with
    | (_, w) :: _ -> w
    | [] -> nan);

  (* the next phase of the V cycle: HIL, no communication redirection *)
  print_endline "--- E5b: hardware-in-the-loop stage (the step after PIL, section 6) ---";
  let hb = Servo_system.build () in
  let hcomp = Compile.compile hb.Servo_system.controller in
  let harts = Target.generate ~name:"servo" ~project:hb.Servo_system.project hcomp in
  let hctl = Sim.create hcomp in
  let hr =
    Hil_cosim.servo_run ~built_mcu:Servo_system.default_config.Servo_system.mcu
      ~schedule:harts.Target.schedule ~controller:hctl
      ~motor:Servo_system.default_config.Servo_system.motor
      ~load:Servo_system.default_config.Servo_system.load
      ~encoder:(Encoder.create ())
      ~periods:1100 ()
  in
  let hp = hr.Hil_cosim.profile in
  let t = Table.create ~title:"HIL profile: deployment build, real peripherals, 1 kHz"
      [ "quantity"; "PIL (5 ms)"; "HIL (1 ms)" ] in
  Table.add_rows t
    [
      [ "controller execution";
        Printf.sprintf "%.1f us" (p.Pil_cosim.controller_exec.Stats.mean *. 1e6);
        Printf.sprintf "%.1f us" (hp.Hil_cosim.controller_exec.Stats.mean *. 1e6) ];
      [ "actuation latency p50";
        Printf.sprintf "%.0f us (comm-bound)"
          (p.Pil_cosim.response_latency.Stats.p50 *. 1e6);
        Printf.sprintf "%.1f us (exec only)"
          (hp.Hil_cosim.controller_exec.Stats.p50 *. 1e6) ];
      [ "release jitter p2p";
        Printf.sprintf "%.1f us" (p.Pil_cosim.step_start_jitter *. 1e6);
        Printf.sprintf "%.2f us" (hp.Hil_cosim.release_jitter *. 1e6) ];
      [ "CPU utilisation"; Table.cell_pct p.Pil_cosim.cpu_utilization;
        Table.cell_pct hp.Hil_cosim.cpu_utilization ];
      [ "overruns"; string_of_int p.Pil_cosim.overruns;
        string_of_int hp.Hil_cosim.overruns ];
    ];
  Table.print t;
  (match List.rev
           (List.filter_map
              (fun (t, obs) ->
                Option.map (fun w -> (t, w)) (List.assoc_opt "speed" obs))
              hr.Hil_cosim.trace)
   with
  | (_, w) :: _ ->
      Printf.printf
        "HIL runs the paper's full 1 kHz loop (no RS-232 in the path); final \
         speed %.1f rad/s\n\n" w
  | [] -> ())
