(* E6 -- §1 claim: "timing variations in sampling periods and latencies
   degrade the control performance and may in extreme cases lead to the
   instability" (the TrueTime-style study). *)

let run () =
  print_endline "==================================================================";
  print_endline "E6 (section 1): timing variations degrade control performance";
  print_endline "==================================================================";
  let baseline = Timing_study.run Timing_study.default in
  Printf.printf "workload: 1 kHz speed loop, closed-loop tau = 3 periods, IAE baseline %.3f\n\n"
    baseline.Timing_study.iae;
  let jitters = [ 0.0; 0.2; 0.4; 0.6; 0.8 ] in
  let latencies = [ 0.0; 0.5; 1.0; 2.0; 3.0; 4.0; 8.0 ] in
  let rows =
    Timing_study.degradation_sweep ~jitter_fracs:jitters ~latency_fracs:latencies ()
  in
  let t =
    Table.create ~title:"relative control cost (IAE / baseline); T = control period"
      ("jitter \\ latency" :: List.map (fun l -> Printf.sprintf "%.1f T" l) latencies)
  in
  List.iter
    (fun j ->
      let cells =
        List.map
          (fun l ->
            let _, _, o = List.find (fun (j', l', _) -> j' = j && l' = l) rows in
            if Timing_study.unstable o then "UNSTABLE"
            else Table.cell_f ~dec:2 (Timing_study.relative_cost ~baseline o))
          latencies
      in
      Table.add_row t (Printf.sprintf "%.0f %%" (100.0 *. j) :: cells))
    jitters;
  Table.print t;

  (* degradation curve as a figure *)
  let curve =
    List.map
      (fun l ->
        let o = Timing_study.run { Timing_study.default with Timing_study.latency_frac = l } in
        (l, Float.min 20.0 (Timing_study.relative_cost ~baseline o)))
      [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5 ]
  in
  Ascii_plot.print ~title:"cost degradation vs actuation latency (clipped at 20x)"
    ~x_label:"latency [control periods]"
    [ { Ascii_plot.label = "IAE ratio"; points = curve } ];

  (* instability threshold *)
  let unstable_at l =
    Timing_study.unstable
      (Timing_study.run { Timing_study.default with Timing_study.latency_frac = l })
  in
  let rec bisect lo hi n =
    if n = 0 then (lo, hi)
    else
      let mid = (lo +. hi) /. 2.0 in
      if unstable_at mid then bisect lo mid (n - 1) else bisect mid hi (n - 1)
  in
  let lo, hi = bisect 0.0 16.0 12 in
  Printf.printf "instability threshold: %.2f .. %.2f control periods of latency\n"
    lo hi;

  (* analytic cross-check on the discretised loop: delayed plant model
     loses stability under the same controller around the same delay *)
  let motor = Timing_study.default.Timing_study.motor in
  let k_dc = motor.Dc_motor.kt /. ((motor.Dc_motor.ra *. motor.Dc_motor.b) +. (motor.Dc_motor.ke *. motor.Dc_motor.kt)) in
  let tau_m = Dc_motor.mechanical_time_constant motor in
  let plant1 = Ztransfer.zoh_first_order ~k:k_dc ~tau:tau_m ~ts:1e-3 in
  let g = Timing_study.default.Timing_study.gains in
  let controller =
    (* PI in z: kp + ki*ts/(1 - z^-1) *)
    Ztransfer.create
      ~num:[| g.Pid.kp +. (g.Pid.ki *. 1e-3); -.g.Pid.kp |]
      ~den:[| 1.0; -1.0 |]
  in
  let delayed n =
    (* append n samples of delay to the plant *)
    let num = Array.append (Array.make n 0.0) (Ztransfer.num plant1) in
    let den = Array.append (Ztransfer.den plant1) (Array.make n 0.0) in
    Ztransfer.create ~num ~den
  in
  let rec first_unstable n =
    if n > 32 then None
    else if not (Stability.closed_loop_stable ~plant:(delayed n) ~controller) then Some n
    else first_unstable (n + 1)
  in
  (match first_unstable 0 with
  | Some n ->
      Printf.printf
        "analytic (Jury) stability bound of the linearised loop: %d periods of delay\n" n
  | None -> print_endline "analytic loop stable for all tested delays");
  print_newline ()
