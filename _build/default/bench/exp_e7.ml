(* E7 -- §5/§6 scheduling: the generated application runs the periodic
   model step non-preemptively in the timer ISR while other interrupts
   compete for the CPU. Ablation: non-preemptive vs preemptive interrupt
   handling under growing background load, measuring the controller's
   release jitter and response time -- the numbers PIL simulation is
   supposed to reveal. *)

let mcu = Mcu_db.mc56f8367

(* One scheduling scenario: a 1 ms control ISR (cost = the servo step from
   E4, ~2800 cycles) against a background ISR at a coprime period whose
   cost sets the load. *)
let scenario ~preemptive ~bg_load =
  let machine = Machine.create ~preemptive mcu in
  let ctrl_cost = 2800 in
  let ctrl_period = Machine.cycles_of_time machine 1e-3 in
  let bg_period = Machine.cycles_of_time machine 0.73e-3 in
  let bg_cost = int_of_float (bg_load *. float_of_int bg_period) in
  let ctrl_irq =
    Machine.register_irq machine ~name:"ctrl" ~prio:2 ~handler:(fun () ->
        { Machine.jname = "ctrl"; cycles = ctrl_cost; action = (fun () -> ());
          stack_bytes = 160 })
  in
  let bg_irq =
    Machine.register_irq machine ~name:"bg" ~prio:5 ~handler:(fun () ->
        { Machine.jname = "bg"; cycles = bg_cost; action = (fun () -> ());
          stack_bytes = 64 })
  in
  let ctrl_timer = Timer_periph.create machine ~channel:0 in
  Timer_periph.configure ctrl_timer ~prescaler:1 ~modulo:ctrl_period;
  Timer_periph.on_overflow ctrl_timer (fun () -> Machine.raise_irq machine ctrl_irq);
  Timer_periph.start ctrl_timer;
  let bg_timer = Timer_periph.create machine ~channel:1 in
  Timer_periph.configure bg_timer ~prescaler:1 ~modulo:bg_period;
  Timer_periph.on_overflow bg_timer (fun () -> Machine.raise_irq machine bg_irq);
  Timer_periph.start bg_timer;
  Machine.run_until_time machine 0.5;
  let st = Machine.stats_of machine ctrl_irq in
  let to_us c = c /. mcu.Mcu_db.f_cpu_hz *. 1e6 in
  let resp = List.map to_us st.Machine.response_cycles in
  let summary = Stats.summarize resp in
  ( summary,
    Stats.jitter resp,
    st.Machine.overruns,
    Machine.utilization machine,
    Machine.max_stack_bytes machine )

let run () =
  print_endline "==================================================================";
  print_endline "E7 (sections 5-6): interrupt scheduling ablation";
  print_endline "==================================================================";
  let t =
    Table.create
      ~title:"controller ISR release delay vs background ISR load (0.5 s, 1 kHz control)"
      [ "bg load"; "policy"; "resp p50 [us]"; "resp p95 [us]"; "jitter p2p [us]";
        "RTA bound [us]"; "overruns"; "CPU util"; "stack [B]" ]
  in
  List.iter
    (fun bg_load ->
      List.iter
        (fun preemptive ->
          let summary, jitter, overruns, util, stack = scenario ~preemptive ~bg_load in
          (* the static counterpart: worst-case release delay from
             response-time analysis (response minus own execution) *)
          let ctrl_wcet = (2800.0 +. 20.0) /. mcu.Mcu_db.f_cpu_hz in
          let bg_wcet =
            Float.max 1e-9 ((bg_load *. 0.73e-3) +. (20.0 /. mcu.Mcu_db.f_cpu_hz))
          in
          let tasks =
            [
              { Rta.tname = "ctrl"; period = 1e-3; wcet = ctrl_wcet; prio = 2 };
              { Rta.tname = "bg"; period = 0.73e-3; wcet = bg_wcet; prio = 5 };
            ]
          in
          let verdicts =
            if preemptive then Rta.preemptive tasks else Rta.non_preemptive tasks
          in
          let bound =
            match verdicts with
            | v :: _ -> (v.Rta.response -. ctrl_wcet) *. 1e6
            | [] -> nan
          in
          Table.add_row t
            [
              Table.cell_pct bg_load;
              (if preemptive then "preemptive" else "non-preemptive");
              Table.cell_f ~dec:1 summary.Stats.p50;
              Table.cell_f ~dec:1 summary.Stats.p95;
              Table.cell_f ~dec:1 jitter;
              Table.cell_f ~dec:1 bound;
              string_of_int overruns;
              Table.cell_pct util;
              string_of_int stack;
            ])
        [ false; true ])
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9 ];
  Table.print t;
  print_endline
    "The RTA column is the static worst-case release delay (response-time\n\
     analysis, the schedulability counterpart of PIL measurement); it must\n\
     and does dominate every observed p95.";
  print_endline
    "The non-preemptive policy (the paper's generated code) trades release\n\
     jitter for simplicity: the controller waits out any in-flight background\n\
     ISR, so its p95 release delay grows with the longest background burst,\n\
     while preemption (higher-priority control) keeps it at the dispatch\n\
     latency at the price of deeper stacks.\n"
