(* E8 -- §3.1/§5 single-model fidelity: peripheral blocks are not
   pass-throughs. The ADC block really quantises ("the ADC block
   representing the 12 bits AD converter really provides the controller
   model with values with the 12 bits resolution"), and the encoder path
   really counts. This experiment measures what that fidelity is worth. *)

(* A sensor path through the ADC bean block at a given resolution,
   digitising a slow ramp; compare against the ideal signal. *)
let adc_path_error ~mcu ~resolution =
  let project = Bean_project.create mcu in
  let adc_bean =
    Bean_project.add project
      (Bean.make ~name:"AD1"
         (Bean.Adc { channel = None; resolution; vref = 3.3; sample_period = 1e-3 }))
  in
  let m = Model.create "fidelity" in
  let src = Model.add m ~name:"src" (Sources.ramp ~slope:0.33 ()) in
  let adc = Model.add m ~name:"adc" (Periph_blocks.adc adc_bean) in
  (* note ~dtype: without it the gain would inherit uint16 from the ADC
     and truncate -- the data-type pitfall the paper's section 7 warns
     about *)
  let back =
    Model.add m ~name:"back"
      (Math_blocks.gain ~dtype:Dtype.Double (Periph_blocks.adc_volts_gain adc_bean))
  in
  Model.connect m ~src:(src, 0) ~dst:(adc, 0);
  Model.connect m ~src:(adc, 0) ~dst:(back, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.probe_named sim "src" 0;
  Sim.probe_named sim "back" 0;
  Sim.run sim ~until:9.9 ();
  let ideal = Sim.trace_named sim "src" 0 in
  let digitised = Sim.trace_named sim "back" 0 in
  Metrics.max_deviation ideal digitised

let run () =
  print_endline "==================================================================";
  print_endline "E8 (sections 3.1/5): single-model peripheral fidelity";
  print_endline "==================================================================";
  let t =
    Table.create ~title:"ADC block: simulation error vs a pass-through block"
      [ "device"; "resolution"; "LSB [mV]"; "max |ideal - block| [mV]" ]
  in
  List.iter
    (fun (mcu, res) ->
      let err = adc_path_error ~mcu ~resolution:res in
      Table.add_row t
        [
          mcu.Mcu_db.name;
          Printf.sprintf "%d bit" res;
          Table.cell_f ~dec:3 (3.3 /. float_of_int ((1 lsl res) - 1) *. 1e3);
          Table.cell_f ~dec:3 (err *. 1e3);
        ])
    [
      (Mcu_db.mc9s12dp256, 8);
      (Mcu_db.mc9s12dp256, 10);
      (Mcu_db.mc56f8367, 12);
    ];
  Table.print t;
  print_endline
    "A pass-through block (the §3.1 criticism of existing targets) would\n\
     report zero error and hide the quantisation the real hardware adds;\n\
     the PE block reproduces exactly half-LSB rounding.\n";

  (* encoder resolution: the closed-loop cost of feedback quantisation *)
  let t =
    Table.create
      ~title:"encoder resolution vs closed-loop behaviour (servo MIL, 1 kHz)"
      [ "lines/rev"; "counts/rev"; "1 count [rad/s]"; "speed ripple p2p"; "IAE (0-0.4 s)" ]
  in
  List.iter
    (fun lines ->
      let cfg =
        { Servo_system.default_config with
          Servo_system.encoder_lines = lines;
          setpoints = [ (0.0, 100.0) ];
          load = Load_profile.No_load }
      in
      let b = Servo_system.build ~config:cfg () in
      let speed, _ = Servo_system.mil_run b ~t_end:0.4 in
      let tail = List.filter (fun (t, _) -> t > 0.25) speed in
      let ripple = Stats.jitter (List.map snd tail) in
      let iae = Metrics.iae ~sp:(fun _ -> 100.0) speed in
      Table.add_row t
        [
          string_of_int lines;
          string_of_int (4 * lines);
          Table.cell_f ~dec:2 (2.0 *. Float.pi /. float_of_int (4 * lines) /. 1e-3);
          Table.cell_f ~dec:2 ripple;
          Table.cell_f ~dec:3 iae;
        ])
    [ 25; 50; 100; 200; 500 ];
  Table.print t;
  print_endline
    "Coarser encoders make the measured speed visibly noisier (one count per\n\
     period is the quantum); the paper's single-model approach exposes this\n\
     during MIL instead of on the bench.\n"
