(* The experiment harness: regenerates every table- and figure-shaped
   result of the paper's evaluation (see DESIGN.md's per-experiment index
   and EXPERIMENTS.md for paper-vs-measured), then runs the bechamel
   performance benches.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- e5 e6   -- selected experiments only
*)

let experiments =
  [
    ("e1", Exp_e1.run);
    ("e2", Exp_e2.run);
    ("e3", Exp_e3.run);
    ("e4", Exp_e4.run);
    ("e5", Exp_e5.run);
    ("e6", Exp_e6.run);
    ("e7", Exp_e7.run);
    ("e8", Exp_e8.run);
    ("perf", Perf.run);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.lowercase_ascii names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    selected
