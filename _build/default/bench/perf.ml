(* P1-P5: performance of the environment itself (bechamel micro-benches).
   One Test.make per metric; time-per-run estimated by OLS against the
   monotonic clock. *)

open Bechamel
open Toolkit

(* P1: MIL engine throughput on the servo closed loop *)
let bench_mil =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.closed_loop in
  let sim = Sim.create ~solver_substeps:3 comp in
  Test.make ~name:"P1 MIL engine step (servo, 21 blocks)"
    (Staged.stage (fun () -> Sim.step sim))

(* P2: virtual-MCU event throughput *)
let bench_machine =
  let machine = Machine.create Mcu_db.mc56f8367 in
  let irq =
    Machine.register_irq machine ~name:"x" ~prio:1 ~handler:(fun () ->
        { Machine.jname = "x"; cycles = 100; action = (fun () -> ());
          stack_bytes = 16 })
  in
  Test.make ~name:"P2 virtual MCU: event + ISR dispatch"
    (Staged.stage (fun () ->
         Machine.raise_irq machine irq;
         Machine.advance machine ~cycles:500))

(* P3: full code generation of the servo controller *)
let bench_codegen =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.controller in
  Test.make ~name:"P3 PEERT codegen (servo controller)"
    (Staged.stage (fun () ->
         ignore (Target.generate ~name:"servo" ~project:built.Servo_system.project comp)))

(* P4: comm path: packet encode + framer decode roundtrip *)
let bench_comm =
  let payload = List.init 16 (fun i -> i * 7 land 0xFF) in
  let sink = Framer.create ~on_packet:(fun _ -> ()) in
  Test.make ~name:"P4 packet encode + frame decode (16 B payload)"
    (Staged.stage (fun () ->
         Framer.feed_all sink
           (Packet.encode { Packet.ptype = 1; seq = 0; payload })))

(* P5: controller arithmetic, float vs Q15 *)
let bench_pid_float =
  let c = Pid.create ~ts:1e-3 (Pid.gains ~kp:0.03 ~ki:2.5 ~u_min:0.0 ~u_max:24.0 ()) in
  let x = ref 0.0 in
  Test.make ~name:"P5a PID step (double)"
    (Staged.stage (fun () ->
         x := Pid.step c ~sp:100.0 ~pv:!x *. 0.99))

let bench_pid_fixed =
  let c =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:512.0 ~out_scale:24.0
      (Pid.gains ~kp:0.03 ~ki:2.5 ~u_min:0.0 ~u_max:24.0 ())
  in
  let x = ref 0.0 in
  Test.make ~name:"P5b PID step (Q15 fixed)"
    (Staged.stage (fun () ->
         x := Pid.Fixpoint.step c ~sp:100.0 ~pv:!x *. 0.99))

(* P6: one full PIL co-simulated control period *)
let bench_pil =
  let cfg = { Servo_system.default_config with Servo_system.control_period = 5e-3 } in
  let built = Servo_system.build ~config:cfg () in
  let comp = Compile.compile built.Servo_system.controller in
  let arts = Pil_target.generate ~name:"servo" ~project:built.Servo_system.project comp in
  Test.make ~name:"P6 PIL co-simulation (100 control periods)"
    (Staged.stage (fun () ->
         let controller = Sim.create comp in
         let plant = Servo_system.pil_plant built in
         let driver = Servo_system.pil_driver built in
         ignore
           (Pil_cosim.run ~mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule
              ~controller ~plant ~driver ~periods:100 ())))

let run () =
  print_endline "==================================================================";
  print_endline "P1-P6: environment performance (bechamel, ns per run)";
  print_endline "==================================================================";
  let tests =
    Test.make_grouped ~name:"perf" ~fmt:"%s %s"
      [ bench_mil; bench_machine; bench_codegen; bench_comm; bench_pid_float;
        bench_pid_fixed; bench_pil ]
  in
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let t = Table.create [ "benchmark"; "time/run"; "runs/s" ] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          Table.add_row t
            [
              name;
              (if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
               else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
               else Printf.sprintf "%.0f ns" ns);
              Printf.sprintf "%.3g" (1e9 /. ns);
            ]
      | _ -> Table.add_row t [ name; "n/a"; "n/a" ])
    rows;
  Table.print ~align:[ Table.Left; Table.Right; Table.Right ] t;
  print_newline ()
