examples/jitter_study.ml: Ascii_plot List Printf Table Timing_study
