examples/jitter_study.mli:
