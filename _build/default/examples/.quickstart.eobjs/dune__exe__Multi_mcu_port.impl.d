examples/multi_mcu_port.ml: Bean Bean_project C_print Compile Inspector List Mcu_db Printf Servo_system Table Target
