examples/multi_mcu_port.mli:
