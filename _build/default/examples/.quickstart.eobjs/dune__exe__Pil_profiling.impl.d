examples/pil_profiling.ml: Ascii_plot Compile List Pil_cosim Pil_target Printf Servo_system Sim Stats Table Target
