examples/pil_profiling.mli:
