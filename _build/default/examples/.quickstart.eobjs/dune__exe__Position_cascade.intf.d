examples/position_cascade.mli:
