examples/quickstart.ml: Ascii_plot Compile Continuous_blocks Discrete_blocks Format Metrics Model Pid Printf Sim Sources Tuning
