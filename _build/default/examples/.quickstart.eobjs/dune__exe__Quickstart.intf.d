examples/quickstart.mli:
