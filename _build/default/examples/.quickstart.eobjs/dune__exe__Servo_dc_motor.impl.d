examples/servo_dc_motor.ml: Ascii_plot Bean_project C_print Compile Float Inspector List Mcu_db Metrics Printf Servo_system String Target
