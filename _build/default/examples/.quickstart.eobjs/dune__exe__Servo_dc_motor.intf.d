examples/servo_dc_motor.mli:
