examples/thermal_multirate.mli:
