(* Timing-robustness study (the §1 motivation): sampling jitter and
   input-output latency degrade the control performance and, in extreme
   cases, destabilise the loop.

   Run with:  dune exec examples/jitter_study.exe
*)

let () =
  let baseline = Timing_study.run Timing_study.default in
  Printf.printf "baseline: IAE %.3f over %.1f s at %g kHz control\n\n"
    baseline.Timing_study.iae Timing_study.default.Timing_study.t_end
    (1e-3 /. Timing_study.default.Timing_study.period);

  let jitters = [ 0.0; 0.2; 0.4; 0.6; 0.8 ] in
  let latencies = [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0 ] in
  let rows = Timing_study.degradation_sweep ~jitter_fracs:jitters ~latency_fracs:latencies () in
  let t =
    Table.create ~title:"relative control cost (IAE / baseline IAE)"
      ("jitter \\ latency"
      :: List.map (fun l -> Printf.sprintf "%.1f T" l) latencies)
  in
  List.iter
    (fun j ->
      let cells =
        List.map
          (fun l ->
            let _, _, o =
              List.find (fun (j', l', _) -> j' = j && l' = l) rows
            in
            if Timing_study.unstable o then "UNSTABLE"
            else Table.cell_f ~dec:2 (Timing_study.relative_cost ~baseline o))
          latencies
      in
      Table.add_row t (Printf.sprintf "%.0f %%" (100.0 *. j) :: cells))
    jitters;
  Table.print t;

  print_endline "\nstep responses under growing latency:";
  let series =
    List.map
      (fun l ->
        let o =
          Timing_study.run
            { Timing_study.default with Timing_study.latency_frac = l }
        in
        { Ascii_plot.label = Printf.sprintf "%.0fT" l;
          points = List.filter (fun (t, _) -> t < 0.25) o.Timing_study.trajectory })
      [ 0.0; 2.0; 4.0 ]
  in
  Ascii_plot.print ~title:"speed step response vs actuation latency"
    ~x_label:"time [s]" series;

  (* locate the instability threshold by bisection on the latency *)
  let unstable_at l =
    Timing_study.unstable
      (Timing_study.run { Timing_study.default with Timing_study.latency_frac = l })
  in
  let rec bisect lo hi n =
    if n = 0 then (lo, hi)
    else
      let mid = (lo +. hi) /. 2.0 in
      if unstable_at mid then bisect lo mid (n - 1) else bisect mid hi (n - 1)
  in
  let lo, hi = bisect 0.0 16.0 12 in
  Printf.printf
    "\ninstability threshold: between %.2f and %.2f control periods of latency\n"
    lo hi;
  print_endline
    "-> the claim of section 1 holds: moderate timing variation costs tens of\n\
    \   percent of control performance; a few periods of latency destabilise\n\
    \   the loop entirely."
