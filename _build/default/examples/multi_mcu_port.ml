(* MCU portability (the paper's §1 headline advantage): "the model with
   the PE blocks can be moreover extremely simply ported to another MCU by
   selecting another CPU bean in the PE project window. The application
   design in Simulink therefore becomes HW independent."

   The same servo controller model is compiled for three Freescale
   families; the application model is untouched, only the bean project is
   retargeted, and the expert system reports what fits where.

   Run with:  dune exec examples/multi_mcu_port.exe
*)

let () =
  (* HCS12 has no hardware quadrature decoder: build the portable variant
     without the mode-logic button to keep the pin map simple, and use a
     2 ms loop so every CPU meets timing comfortably *)
  let cfg =
    { Servo_system.default_config with
      Servo_system.control_period = 2e-3;
      with_mode_logic = false }
  in
  let t =
    Table.create ~title:"one model, three MCUs (PEERT retargeting)"
      [ "MCU"; "core"; "clock"; "status"; "step cost"; "app LoC"; "HAL LoC";
        "RAM est." ]
  in
  let reference_app = ref None in
  List.iter
    (fun mcu ->
      let cfg = { cfg with Servo_system.mcu } in
      match Servo_system.build ~config:cfg () with
      | exception Invalid_argument msg ->
          Table.add_row t
            [ mcu.Mcu_db.name; mcu.Mcu_db.core;
              Printf.sprintf "%.0f MHz" (mcu.Mcu_db.f_cpu_hz /. 1e6);
              "REJECTED"; "-"; "-"; "-"; "-" ];
          Printf.printf "  %s: %s\n" mcu.Mcu_db.name msg
      | built ->
          let comp = Compile.compile built.Servo_system.controller in
          let arts =
            Target.generate ~name:"servo" ~project:built.Servo_system.project comp
          in
          let r = arts.Target.report in
          (* the application code (model.c) must be identical across MCUs:
             only the HAL below the bean API differs *)
          let app = C_print.print_unit arts.Target.model_c in
          (match !reference_app with
          | None -> reference_app := Some app
          | Some ref_app ->
              if app = ref_app then
                Printf.printf "  %s: application code identical to the reference\n"
                  mcu.Mcu_db.name
              else
                Printf.printf "  %s: WARNING application code differs!\n"
                  mcu.Mcu_db.name);
          Table.add_row t
            [
              mcu.Mcu_db.name;
              mcu.Mcu_db.core;
              Printf.sprintf "%.0f MHz" (mcu.Mcu_db.f_cpu_hz /. 1e6);
              "OK";
              Printf.sprintf "%.1f us" (r.Target.step_time *. 1e6);
              string_of_int r.Target.app_loc;
              string_of_int r.Target.hal_loc;
              Printf.sprintf "%d B" r.Target.est_ram_bytes;
            ])
    [ Mcu_db.mc56f8367; Mcu_db.mcf5213; Mcu_db.mc9s12dp256 ];
  print_newline ();
  Table.print t;
  print_endline
    "\nNote the HCS12 rejection: it has no hardware quadrature decoder, and\n\
     the expert system refuses the QuadDecoder bean instead of silently\n\
     producing broken code -- the validation story of section 4.\n";

  (* the fallback the engineer would pick: HCS12 with a slower loop is
     still rejected (the constraint is structural, not timing) *)
  print_endline "Bean Inspector view of the failing bean on the HCS12:";
  let p = Bean_project.create Mcu_db.mc9s12dp256 in
  let qd = Bean_project.add p (Bean.make ~name:"QD1" (Bean.Quad_dec { lines_per_rev = 100 })) in
  print_string (Inspector.render_bean qd)
