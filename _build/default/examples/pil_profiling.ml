(* Processor-in-the-loop simulation (§6, Fig 6.2): the servo controller
   executes on the virtual MC56F8367 development board while the plant
   runs on the host, the two exchanging packets over the simulated RS-232
   line. The profile shows exactly what the paper says PIL reveals:
   execution times, response times, sampling jitter, stack and
   communication overheads.

   Run with:  dune exec examples/pil_profiling.exe
*)

let cfg = { Servo_system.default_config with Servo_system.control_period = 5e-3 }

let run_once baud =
  let built = Servo_system.build ~config:cfg () in
  let comp = Compile.compile built.Servo_system.controller in
  let arts =
    Pil_target.generate ~name:"servo" ~project:built.Servo_system.project comp
  in
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant built in
  let driver = Servo_system.pil_driver built in
  ( built,
    Pil_cosim.run ~baud ~mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule
      ~controller ~plant ~driver ~periods:320 () )

let () =
  print_endline "=== PIL co-simulation at 115200 baud, 5 ms control period ===";
  let built, r = run_once 115200 in
  let p = r.Pil_cosim.profile in
  let t = Table.create ~title:"PIL profile (what the development board reveals)"
      [ "quantity"; "value" ] in
  Table.add_rows t
    [
      [ "controller execution (mean)";
        Printf.sprintf "%.1f us" (p.Pil_cosim.controller_exec.Stats.mean *. 1e6) ];
      [ "response latency p50 / p95";
        Printf.sprintf "%.0f / %.0f us"
          (p.Pil_cosim.response_latency.Stats.p50 *. 1e6)
          (p.Pil_cosim.response_latency.Stats.p95 *. 1e6) ];
      [ "sampling jitter (p2p)";
        Printf.sprintf "%.1f us" (p.Pil_cosim.step_start_jitter *. 1e6) ];
      [ "comm per period";
        Printf.sprintf "%d bytes = %.2f ms" p.Pil_cosim.comm_bytes_per_period
          (p.Pil_cosim.comm_time_per_period *. 1e3) ];
      [ "CPU utilisation"; Table.cell_pct p.Pil_cosim.cpu_utilization ];
      [ "stack high-water"; Printf.sprintf "%d B" p.Pil_cosim.max_stack_bytes ];
      [ "deadline overruns"; string_of_int p.Pil_cosim.overruns ];
    ];
  Table.print t;

  print_endline "\n=== PIL vs MIL trajectory ===";
  let mil_speed, _ = Servo_system.mil_run built ~t_end:1.6 in
  let pil_speed = Servo_system.pil_speed_trace r.Pil_cosim.trace in
  Ascii_plot.print ~title:"MIL (*) vs PIL (+)" ~x_label:"time [s]"
    [
      { Ascii_plot.label = "MIL"; points = mil_speed };
      { Ascii_plot.label = "PIL"; points = pil_speed };
    ];

  print_endline "\n=== RS-232 baud-rate sweep: where does PIL become feasible? ===";
  let t = Table.create [ "baud"; "comm time/period"; "feasible"; "latency p50" ] in
  List.iter
    (fun baud ->
      match run_once baud with
      | _, r ->
          let p = r.Pil_cosim.profile in
          Table.add_row t
            [
              string_of_int baud;
              Printf.sprintf "%.2f ms" (p.Pil_cosim.comm_time_per_period *. 1e3);
              "yes";
              Printf.sprintf "%.2f ms" (p.Pil_cosim.response_latency.Stats.p50 *. 1e3);
            ]
      | exception Invalid_argument _ ->
          Table.add_row t
            [ string_of_int baud; "> period"; "no (line saturated)"; "-" ])
    [ 9600; 19200; 38400; 57600; 115200 ];
  Table.print t;
  print_endline
    "\nThe RS-232 bottleneck the paper concedes (\"communication over RS232 is\n\
     very slow\") is visible directly: below ~38400 baud the two packets no\n\
     longer fit into the 5 ms control period."
