(* Cascade position control: the natural next application of the case
   study's hardware — position the shaft instead of regulating speed.

   Structure: an outer position loop at 100 Hz commands the inner 1 kHz
   speed loop (the classic cascade); both loops run from the same
   quadrature decoder. Exercises the multirate machinery end to end: rate
   transitions, subrate guards in the generated code, and two PIDs at
   different periods.

   Run with:  dune exec examples/position_cascade.exe
*)

let mcu = Mcu_db.mc56f8367

let build_project () =
  let p = Bean_project.create mcu in
  let add name c = ignore (Bean_project.add p (Bean.make ~name c)) in
  add "TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.001 });
  add "PWM1" (Bean.Pwm { channel = None; freq_hz = 20e3; initial_ratio = 0.0 });
  add "QD1" (Bean.Quad_dec { lines_per_rev = 100 });
  (match Bean_project.verify p with
  | Ok () -> ()
  | Error msgs -> failwith (String.concat "; " msgs));
  p

let motor = Dc_motor.default
let ts_inner = 1e-3
let ts_outer = 10e-3

let build_controller project =
  let m = Model.create "pos_ctl" in
  let add = Model.add m in
  let cn = Model.connect m in
  let theta_in = add ~name:"theta_in" (Routing_blocks.inport 0) in
  let _ti = add ~name:"ti" (Periph_blocks.timer_int (Bean_project.find project "TI1")) in
  let smp = add ~name:"smp" (Discrete_blocks.zoh ~period:ts_inner ()) in
  let qd = add ~name:"qd" (Periph_blocks.quad_decoder (Bean_project.find project "QD1")) in
  (* measured speed (1 kHz) and measured angle (counts -> rad) *)
  let speed = add ~name:"speed" (Discrete_blocks.encoder_speed ~counts_per_rev:400) in
  let angle =
    add ~name:"angle"
      (Math_blocks.gain ~dtype:Dtype.Double (2.0 *. Float.pi /. 400.0))
  in
  (* outer loop: position reference profile, 100 Hz PI -> speed command *)
  let ref_pos =
    add ~name:"ref_pos"
      (Sources.setpoint_schedule [ (0.0, 10.0); (1.0, 50.0); (2.0, 20.0) ])
  in
  let pos_hold = add ~name:"pos_hold" (Discrete_blocks.zoh ~period:ts_outer ()) in
  let ref_hold = add ~name:"ref_hold" (Discrete_blocks.zoh ~period:ts_outer ()) in
  let pos_pid =
    add ~name:"pos_pid"
      (Discrete_blocks.pid ~ts:ts_outer
         (Pid.gains ~kp:18.0 ~ki:2.0 ~u_min:(-200.0) ~u_max:200.0 ()))
  in
  (* inner loop: 1 kHz speed PI -> bipolar voltage -> duty. Positioning
     needs reversal, so the bridge is driven bipolar: duty 0.5 is 0 V *)
  let kp, ki = Tuning.pi_for_dc_motor_speed motor ~closed_loop_tau:0.015 () in
  let spd_pid =
    add ~name:"spd_pid"
      (Discrete_blocks.pid ~ts:ts_inner
         (Pid.gains ~kp ~ki ~u_min:(-.motor.Dc_motor.u_max)
            ~u_max:motor.Dc_motor.u_max ()))
  in
  let duty = add ~name:"duty" (Math_blocks.gain (0.5 /. motor.Dc_motor.u_max)) in
  let mid = add ~name:"mid" (Sources.constant 0.5) in
  let duty_sum = add ~name:"duty_sum" (Math_blocks.sum "++") in
  let sat = add ~name:"sat" (Nonlinear_blocks.saturation ~lo:0.0 ~hi:1.0) in
  let ratio = add ~name:"ratio" (Math_blocks.gain 65535.0) in
  let cast = add ~name:"cast" (Math_blocks.cast Dtype.Uint16) in
  let pwm = add ~name:"pwm" (Periph_blocks.pwm (Bean_project.find project "PWM1")) in
  let out = add ~name:"duty_out" (Routing_blocks.outport 0) in
  cn ~src:(theta_in, 0) ~dst:(smp, 0);
  cn ~src:(smp, 0) ~dst:(qd, 0);
  cn ~src:(qd, 0) ~dst:(speed, 0);
  cn ~src:(qd, 0) ~dst:(angle, 0);
  cn ~src:(ref_pos, 0) ~dst:(ref_hold, 0);
  cn ~src:(angle, 0) ~dst:(pos_hold, 0);
  cn ~src:(ref_hold, 0) ~dst:(pos_pid, 0);
  cn ~src:(pos_hold, 0) ~dst:(pos_pid, 1);
  cn ~src:(pos_pid, 0) ~dst:(spd_pid, 0);
  cn ~src:(speed, 0) ~dst:(spd_pid, 1);
  cn ~src:(spd_pid, 0) ~dst:(duty, 0);
  cn ~src:(duty, 0) ~dst:(duty_sum, 0);
  cn ~src:(mid, 0) ~dst:(duty_sum, 1);
  cn ~src:(duty_sum, 0) ~dst:(sat, 0);
  cn ~src:(sat, 0) ~dst:(ratio, 0);
  cn ~src:(ratio, 0) ~dst:(cast, 0);
  cn ~src:(cast, 0) ~dst:(pwm, 0);
  cn ~src:(pwm, 0) ~dst:(out, 0);
  m

let () =
  let project = build_project () in
  let controller = build_controller project in
  (* single model: inline with the motor plant *)
  let m = Model.create "pos_servo" in
  let junction = Model.add m ~name:"duty_junction" (Math_blocks.gain 1.0) in
  let stage =
    Model.add m ~name:"stage"
      (Plant_blocks.power_stage (Power_stage.bipolar ~u_supply:motor.Dc_motor.u_max))
  in
  let mot = Model.add m ~name:"motor" (Plant_blocks.dc_motor ~params:motor ()) in
  Model.connect m ~src:(junction, 0) ~dst:(stage, 0);
  Model.connect m ~src:(mot, 2) ~dst:(stage, 1);
  Model.connect m ~src:(stage, 0) ~dst:(mot, 0);
  let outs = Model.inline m ~prefix:"ctl" ~sub:controller ~inputs:[| (mot, 1) |] in
  Model.connect m ~src:outs.(0) ~dst:(junction, 0);

  let comp = Compile.compile m in
  let sim = Sim.create ~solver_substeps:3 comp in
  Sim.probe_named sim "motor" 1;
  Sim.probe_named sim "ctl/ref_hold" 0;
  Sim.run sim ~until:3.0 ();
  let pos = Sim.trace_named sim "motor" 1 in
  let refp = Sim.trace_named sim "ctl/ref_hold" 0 in
  Ascii_plot.print
    ~title:"shaft position: reference (+) vs actual (*), cascade 100 Hz / 1 kHz"
    ~x_label:"time [s]"
    [
      { Ascii_plot.label = "position [rad]";
        points = List.filteri (fun i _ -> i mod 10 = 0) pos };
      { Ascii_plot.label = "reference";
        points = List.filteri (fun i _ -> i mod 10 = 0) refp };
    ];
  (match List.rev pos with
  | (_, th) :: _ -> Printf.printf "final position: %.2f rad (target 20)\n" th
  | [] -> ());
  let si =
    Metrics.step_info ~sp:10.0 (List.filter (fun (t, _) -> t < 1.0) pos)
  in
  Printf.printf "first move: rise %.0f ms, overshoot %.1f %%, sse %.3f rad\n"
    (si.Metrics.rise_time *. 1e3)
    (100.0 *. si.Metrics.overshoot)
    si.Metrics.steady_state_error;

  (* the generated code carries both rates *)
  let arts = Target.generate ~name:"pos" ~project (Compile.compile controller) in
  let c = C_print.print_unit arts.Target.model_c in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Printf.printf
    "\ngenerated code: %d blocks, %d LoC, outer-loop subrate guard present: %b\n"
    arts.Target.report.Target.n_blocks arts.Target.report.Target.app_loc
    (contains c "% 10 == 0")
