(* Quickstart: build a closed loop in the block-diagram DSL, simulate it,
   and read off the step-response metrics.

   A PI controller (designed by the IMC rule) drives a first-order plant
   k/(tau s + 1) at 100 Hz. Run with:

     dune exec examples/quickstart.exe
*)

let () =
  (* plant parameters and a matching PI design *)
  let k = 2.0 and tau = 0.5 in
  let kp, ki = Tuning.pi_for_first_order ~k ~tau () in
  Printf.printf "IMC-PI design for %g/(%gs+1): kp=%.3f ki=%.3f\n\n" k tau kp ki;

  (* the diagram: step -> PID -> plant, with speed feedback *)
  let m = Model.create "quickstart" in
  let sp = Model.add m ~name:"setpoint" (Sources.step ~after:1.0 ()) in
  let pid =
    Model.add m ~name:"pid"
      (Discrete_blocks.pid ~ts:0.01
         (Pid.gains ~kp ~ki ~u_min:(-10.0) ~u_max:10.0 ()))
  in
  let plant = Model.add m ~name:"plant" (Continuous_blocks.first_order ~k ~tau) in
  Model.connect m ~src:(sp, 0) ~dst:(pid, 0);
  Model.connect m ~src:(plant, 0) ~dst:(pid, 1);
  Model.connect m ~src:(pid, 0) ~dst:(plant, 0);

  (* compile (validation, type/rate propagation, sorting) and simulate *)
  let compiled = Compile.compile m in
  Format.printf "%a@." Compile.pp_schedule compiled;
  let sim = Sim.create compiled in
  Sim.probe_named sim "plant" 0;
  Sim.run sim ~until:2.0 ();

  let trajectory = Sim.trace_named sim "plant" 0 in
  let si = Metrics.step_info ~sp:1.0 trajectory in
  Printf.printf "rise time      : %.3f s\n" si.Metrics.rise_time;
  Printf.printf "overshoot      : %.1f %%\n" (100.0 *. si.Metrics.overshoot);
  Printf.printf "settling (2%%)  : %.3f s\n" si.Metrics.settling_time;
  Printf.printf "steady-state e : %.4f\n\n" si.Metrics.steady_state_error;

  Ascii_plot.print ~title:"closed-loop step response" ~x_label:"time [s]"
    [ { Ascii_plot.label = "y"; points = trajectory } ]
