(* The paper's case study (§7), end to end: DC-motor speed control on the
   MC56F8367 with PWM actuation and incremental-encoder feedback.

   The program walks the development cycle of Fig 6.1:
     1. the Processor Expert project and its Bean Inspector view,
     2. model-in-the-loop simulation of the single closed-loop model,
     3. production code generation by the PEERT target
        (written to ./servo_generated/).

   Run with:  dune exec examples/servo_dc_motor.exe
*)

let () =
  let built = Servo_system.build () in

  print_endline "=== 1. Processor Expert project (Fig 4.1) ===";
  print_string (Inspector.render_project built.Servo_system.project);
  print_newline ();
  print_string
    (Inspector.render_bean (Bean_project.find built.Servo_system.project "TI1"));
  print_newline ();

  print_endline "=== 2. Model-in-the-loop simulation (Fig 7.1) ===";
  let speed, duty = Servo_system.mil_run built ~t_end:1.6 in
  Ascii_plot.print ~title:"servo speed, set-points 50/100/150 rad/s, load step at 1.2 s"
    ~x_label:"time [s]"
    [ { Ascii_plot.label = "speed [rad/s]"; points = speed } ];
  let si =
    Metrics.step_info ~sp:50.0
      (List.filter (fun (t, _) -> t < 0.4) speed)
  in
  Printf.printf "first step: rise %.1f ms, overshoot %.1f %%, sse %.2f rad/s\n"
    (si.Metrics.rise_time *. 1e3)
    (100.0 *. si.Metrics.overshoot)
    si.Metrics.steady_state_error;
  let max_duty = List.fold_left (fun a (_, d) -> Float.max a d) 0.0 duty in
  Printf.printf "peak PWM duty: %.2f\n\n" max_duty;

  print_endline "=== 3. Code generation (PEERT target) ===";
  let comp = Compile.compile built.Servo_system.controller in
  let arts =
    Target.generate ~name:"servo" ~project:built.Servo_system.project comp
  in
  let r = arts.Target.report in
  Printf.printf
    "%d blocks -> %d LoC application + %d LoC HAL; state %d B, signals %d B\n"
    r.Target.n_blocks r.Target.app_loc r.Target.hal_loc r.Target.state_bytes
    r.Target.signal_bytes;
  Printf.printf "estimated footprint: %d B flash, %d B RAM (of %d B / %d B)\n"
    r.Target.est_flash_bytes r.Target.est_ram_bytes
    Mcu_db.mc56f8367.Mcu_db.flash_bytes Mcu_db.mc56f8367.Mcu_db.ram_bytes;
  Printf.printf "worst-case step: %d cycles = %.1f us of the 1000 us period\n"
    r.Target.step_cycles (r.Target.step_time *. 1e6);
  let files = Target.write_to_dir arts ~dir:"servo_generated" in
  Printf.printf "wrote %d files under servo_generated/:\n" (List.length files);
  List.iter (fun f -> Printf.printf "  %s\n" f) files;

  print_endline "\n--- generated servo_step (excerpt) ---";
  let c = C_print.print_unit arts.Target.model_c in
  let lines = String.split_on_char '\n' c in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let rec from_step = function
    | [] -> []
    | l :: rest ->
        if contains l "void servo_step" then l :: rest else from_step rest
  and take n = function
    | [] -> []
    | l :: rest -> if n = 0 then [] else l :: take (n - 1) rest
  in
  List.iter print_endline (take 24 (from_step lines))
