(* A second application domain: temperature control with a multirate,
   event-driven model. Demonstrates the parts of the environment the servo
   demo does not: multirate scheduling (fast ADC sampling, slow control),
   an ADC bean block with its end-of-conversion event triggering a
   function-call subsystem (the event-driven tasks of §5), and code
   generation with subrate guards.

   The model follows the single-model approach: a controller sub-model
   (which alone goes to the code generator) inlined with the thermal plant
   into one closed loop for simulation.

   Run with:  dune exec examples/thermal_multirate.exe
*)

let sensor_gain = 0.010 (* V/K *)
let sensor_offset = 0.5 (* V *)

let build_project () =
  let project = Bean_project.create Mcu_db.mc56f8367 in
  let add name c = ignore (Bean_project.add project (Bean.make ~name c)) in
  add "TI1" (Bean.Timer_int { period = 10e-3; tolerance_frac = 0.001 });
  add "AD1"
    (Bean.Adc { channel = None; resolution = 12; vref = 3.3; sample_period = 10e-3 });
  add "PWM1" (Bean.Pwm { channel = None; freq_hz = 2e3; initial_ratio = 0.0 });
  (match Bean_project.verify project with
  | Ok () -> ()
  | Error msgs -> failwith (String.concat "; " msgs));
  project

(* Controller sub-model: Inport 0 carries the sensor voltage, Outport 0
   the heater power command. ADC sampling at 10 ms, control at 50 ms. *)
let build_controller project =
  let m = Model.create "thermal_ctl" in
  let add_blk = Model.add m in
  let cn = Model.connect m in
  let v_in = add_blk ~name:"v_in" (Routing_blocks.inport 0) in
  let _ti = add_blk ~name:"ti" (Periph_blocks.timer_int (Bean_project.find project "TI1")) in
  let adc = add_blk ~name:"adc" (Periph_blocks.adc (Bean_project.find project "AD1")) in
  let code2temp =
    add_blk ~name:"code2temp"
      (Math_blocks.gain ~dtype:Dtype.Double
         (Periph_blocks.adc_volts_gain (Bean_project.find project "AD1") /. sensor_gain))
  in
  let temp_off = add_blk ~name:"temp_off" (Sources.constant (sensor_offset /. sensor_gain)) in
  let temp_est = add_blk ~name:"temp_est" (Math_blocks.sum "+-") in
  let filt = add_blk ~name:"filt" (Discrete_blocks.moving_average 5) in
  let sp = add_blk ~name:"sp" (Sources.setpoint_schedule [ (0.0, 60.0); (900.0, 80.0) ]) in
  let sp_hold = add_blk ~name:"sp_hold" (Discrete_blocks.zoh ~period:50e-3 ()) in
  let pv_hold = add_blk ~name:"pv_hold" (Discrete_blocks.zoh ~period:50e-3 ()) in
  let pid =
    add_blk ~name:"pid"
      (Discrete_blocks.pid ~ts:50e-3
         (Pid.gains ~kp:18.0 ~ki:0.12 ~u_min:0.0 ~u_max:200.0 ()))
  in
  let out = add_blk ~name:"p_out" (Routing_blocks.outport 0) in
  cn ~src:(v_in, 0) ~dst:(adc, 0);
  cn ~src:(adc, 0) ~dst:(code2temp, 0);
  cn ~src:(code2temp, 0) ~dst:(temp_est, 0);
  cn ~src:(temp_off, 0) ~dst:(temp_est, 1);
  cn ~src:(temp_est, 0) ~dst:(filt, 0);
  cn ~src:(filt, 0) ~dst:(pv_hold, 0);
  cn ~src:(sp, 0) ~dst:(sp_hold, 0);
  cn ~src:(sp_hold, 0) ~dst:(pid, 0);
  cn ~src:(pv_hold, 0) ~dst:(pid, 1);
  cn ~src:(pid, 0) ~dst:(out, 0);
  (* the measurement path runs in the end-of-conversion interrupt *)
  let grp = Model.fc_group m "on_conversion" in
  List.iter (fun b -> Model.assign_group m b grp) [ code2temp; temp_est; filt ];
  Model.connect_event m ~src:(adc, 0) grp;
  m

let () =
  let project = build_project () in
  let controller = build_controller project in

  (* closed loop: plant + sensor conditioning + inlined controller *)
  let m = Model.create "thermal" in
  let plant = Model.add m ~name:"plant" (Plant_blocks.thermal_plant ()) in
  let to_volts = Model.add m ~name:"to_volts" (Math_blocks.gain sensor_gain) in
  let offset = Model.add m ~name:"offset" (Sources.constant sensor_offset) in
  let vsum = Model.add m ~name:"vsum" (Math_blocks.sum "++") in
  Model.connect m ~src:(plant, 0) ~dst:(to_volts, 0);
  Model.connect m ~src:(to_volts, 0) ~dst:(vsum, 0);
  Model.connect m ~src:(offset, 0) ~dst:(vsum, 1);
  let outs = Model.inline m ~prefix:"ctl" ~sub:controller ~inputs:[| (vsum, 0) |] in
  Model.connect m ~src:outs.(0) ~dst:(plant, 0);

  let compiled = Compile.compile m in
  Printf.printf "base step %.0f ms; rates and groups:\n" (compiled.Compile.base_dt *. 1e3);
  Format.printf "%a@." Compile.pp_schedule compiled;

  let sim = Sim.create compiled in
  Sim.probe_named sim "plant" 0;
  Sim.probe_named sim "ctl/filt" 0;
  Sim.run sim ~until:1800.0 ();
  let temp = Sim.trace_named sim "plant" 0 in
  let dec = List.filteri (fun i _ -> i mod 200 = 0) temp in
  Ascii_plot.print ~title:"oven temperature, set-point 60 degC then 80 degC"
    ~x_label:"time [s]"
    [ { Ascii_plot.label = "T"; points = dec } ];
  (match List.rev temp with
  | (_, final) :: _ -> Printf.printf "final temperature: %.1f degC\n" final
  | [] -> ());

  let est = Sim.trace_named sim "ctl/filt" 0 in
  let tail_err =
    List.fold_left2
      (fun acc (t, a) (_, b) ->
        if t > 200.0 then Float.max acc (Float.abs (a -. b)) else acc)
      0.0 temp est
  in
  Printf.printf "max |T - estimate| after warm-up: %.2f K (ADC lsb = %.2f K)\n"
    tail_err
    (Periph_blocks.adc_volts_gain (Bean_project.find project "AD1") /. sensor_gain);

  print_endline "\n--- generated code: multirate and event-driven structure ---";
  let arts =
    Target.generate ~name:"thermal" ~project (Compile.compile controller)
  in
  let c = C_print.print_unit arts.Target.model_c in
  let mn = C_print.print_unit arts.Target.main_c in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Printf.printf "subrate guard (x5) present : %b\n" (contains c "% 5 == 0");
  Printf.printf "EOC group function         : %b\n"
    (contains c "void thermal_on_conversion(void)");
  Printf.printf "EOC ISR wiring             : %b\n" (contains mn "void AD1_OnEnd(void)");
  Printf.printf "application LoC            : %d\n" arts.Target.report.Target.app_loc
