lib/beans/autosar_blocks.ml: Block Periph_blocks String
