lib/beans/autosar_blocks.mli: Bean Block
