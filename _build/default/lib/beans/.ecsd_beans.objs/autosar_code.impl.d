lib/beans/autosar_code.ml: Bean Bean_project C_ast C_print Expert List Mcu_db Option Printf Stdlib String
