lib/beans/autosar_code.mli: Bean Bean_project C_ast
