lib/beans/bean.ml: Expert Float List Mcu_db Printf Resources String
