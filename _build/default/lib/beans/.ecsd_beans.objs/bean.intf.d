lib/beans/bean.mli: Expert Resources
