lib/beans/bean_code.ml: Bean C_ast Expert Hashtbl List Mcu_db Printf
