lib/beans/bean_code.mli: Bean C_ast Mcu_db
