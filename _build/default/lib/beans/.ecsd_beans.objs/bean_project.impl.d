lib/beans/bean_project.ml: Bean Bean_code C_print List Mcu_db Printf Resources String
