lib/beans/bean_project.mli: Bean C_ast Mcu_db Resources
