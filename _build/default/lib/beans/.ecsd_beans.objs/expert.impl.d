lib/beans/expert.ml: Float List Mcu_db Printf Stdlib
