lib/beans/expert.mli: Mcu_db
