lib/beans/inspector.ml: Bean Bean_project Buffer List Mcu_db Printf Resources Table
