lib/beans/inspector.mli: Bean Bean_project
