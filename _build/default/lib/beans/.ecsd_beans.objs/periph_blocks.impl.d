lib/beans/periph_blocks.ml: Array Bean Block Dtype Expert Float Param Printf Sample_time Value
