lib/beans/periph_blocks.mli: Bean Block
