lib/beans/resources.ml: Hashtbl List Mcu_db Printf Stdlib
