lib/beans/resources.mli: Mcu_db
