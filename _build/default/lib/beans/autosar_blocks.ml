(* Functionally identical to the PE block set: same behaviours, new kinds
   so the code generator picks the MCAL emitters. *)

let rekind kind spec = { spec with Block.kind }

let timer_int bean = rekind "AR_TimerInt" (Periph_blocks.timer_int bean)
let adc bean = rekind "AR_Adc" (Periph_blocks.adc bean)
let pwm bean = rekind "AR_Pwm" (Periph_blocks.pwm bean)
let dio_out bean = rekind "AR_Dio_Out" (Periph_blocks.bit_io_out bean)
let dio_in bean = rekind "AR_Dio_In" (Periph_blocks.bit_io_in bean)
let icu_position bean = rekind "AR_Icu" (Periph_blocks.quad_decoder bean)

let is_autosar_kind kind =
  String.length kind >= 3 && String.sub kind 0 3 = "AR_"
