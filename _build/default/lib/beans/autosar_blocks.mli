(** The AUTOSAR variant of the peripheral block set (§8).

    "There are two variants of the block sets. In the first variant the
    blocks represent the PE beans while in the second variant the blocks
    represent AUTOSAR peripherals. The blocks of both variants are the
    same from the functional point of view, but they differ in HW settings
    and the API of generated code."

    Accordingly these constructors reuse the simulation behaviour of
    {!Periph_blocks} verbatim and differ only in the block kind, which
    routes code generation to the MCAL-style emitters ([Adc_ReadGroup],
    [Pwm_SetDutyCycle], [Dio_ReadChannel], [Gpt] notifications, [Icu] edge
    counting) instead of bean method calls. *)

val timer_int : Bean.t -> Block.spec
(** Gpt channel: the periodic notification drives the scheduler. *)

val adc : Bean.t -> Block.spec
(** Adc group: conversion code out, group notification as the event. *)

val pwm : Bean.t -> Block.spec
(** Pwm channel driven through [Pwm_SetDutyCycle] (0x0000..0x8000 duty
    domain per the AUTOSAR PWM driver spec; the emitter rescales). *)

val dio_out : Bean.t -> Block.spec
val dio_in : Bean.t -> Block.spec
val icu_position : Bean.t -> Block.spec
(** Quadrature position via the Icu driver's edge counter. *)

val is_autosar_kind : string -> bool
(** Whether a block kind belongs to this variant (kind prefix "AR_"). *)
