open C_ast

(* The same synthesised register scheme as Bean_code, so both HAL variants
   drive "the same silicon". *)
let base_of mcu kind =
  let family_base =
    match mcu.Mcu_db.family with
    | "56F83xx" -> 0xF000
    | "HCS12" -> 0x0040
    | _ -> 0x4000_0000
  in
  let offset =
    match kind with
    | `Timer -> 0x0C0
    | `Adc -> 0x180
    | `Pwm -> 0x200
    | `Gpio -> 0x2C0
    | `Qdec -> 0x300
    | `Sci -> 0x340
  in
  family_base + offset

let reg name = Call ("REG16", [ Var name ])

let symbolic_id b =
  match b.Bean.config with
  | Bean.Timer_int _ | Bean.Free_cntr _ -> "GptChannel_" ^ b.Bean.bname
  | Bean.Adc _ -> "AdcGroup_" ^ b.Bean.bname
  | Bean.Pwm _ -> "PwmChannel_" ^ b.Bean.bname
  | Bean.Dac _ -> "DacChannel_" ^ b.Bean.bname
  | Bean.Bit_io _ -> "DioChannel_" ^ b.Bean.bname
  | Bean.Quad_dec _ -> "IcuChannel_" ^ b.Bean.bname
  | Bean.Serial _ -> "CddUartChannel_" ^ b.Bean.bname
  | Bean.Watch_dog _ -> "WdgChannel_" ^ b.Bean.bname

let notification_name b =
  match b.Bean.config with
  | Bean.Timer_int _ -> Some ("Gpt_Notification_" ^ b.Bean.bname)
  | Bean.Adc _ -> Some ("Adc_Notification_" ^ b.Bean.bname)
  | Bean.Serial _ -> Some ("CddUart_RxNotification_" ^ b.Bean.bname)
  | Bean.Pwm _ | Bean.Dac _ | Bean.Bit_io _ | Bean.Quad_dec _
  | Bean.Free_cntr _ | Bean.Watch_dog _ ->
      None

let channel_index b =
  match b.Bean.resolved with
  | Some (Bean.R_timer (_, ch)) | Some (Bean.R_free_cntr (_, ch)) -> ch
  | Some (Bean.R_adc { channel; _ }) -> channel
  | Some (Bean.R_pwm { channel; _ }) -> channel
  | Some (Bean.R_dac { channel; _ }) -> channel
  | Some (Bean.R_serial { port; _ }) -> port
  | Some Bean.R_bitio | Some (Bean.R_qdec _) | Some (Bean.R_wdog _) -> 0
  | None -> invalid_arg ("Autosar_code: bean " ^ b.Bean.bname ^ " unresolved")

let std_types_unit =
  {
    unit_name = "Std_Types.h";
    items =
      [
        Item_comment "AUTOSAR standard types (generated subset)";
        Include "stdint.h";
        Typedef (U8, "Std_ReturnType");
        Typedef (U8, "Dio_LevelType");
        Typedef (U16, "Adc_ValueGroupType");
        Typedef (U8, "Adc_GroupType");
        Typedef (U8, "Pwm_ChannelType");
        Typedef (U8, "Dio_ChannelType");
        Typedef (U8, "Gpt_ChannelType");
        Typedef (U32, "Gpt_ValueType");
        Typedef (U8, "Icu_ChannelType");
        Typedef (U16, "Icu_EdgeNumberType");
        Define ("E_OK", "0");
        Define ("E_NOT_OK", "1");
        Define ("STD_HIGH", "1");
        Define ("STD_LOW", "0");
        Define ("REG16(addr)", "(*(volatile uint16_t *)(uintptr_t)(addr))");
      ];
  }

let cfg_unit project =
  let items =
    List.map
      (fun b -> Define (symbolic_id b, string_of_int (channel_index b)))
      (Bean_project.beans project)
  in
  {
    unit_name = "Mcal_Cfg.h";
    items =
      Item_comment "Symbolic channel/group configuration (expert-system resolved)"
      :: items;
  }

let has_class project cls =
  List.exists
    (fun b ->
      match (b.Bean.config, cls) with
      | (Bean.Timer_int _ | Bean.Free_cntr _), `Gpt -> true
      | Bean.Adc _, `Adc -> true
      | Bean.Pwm _, `Pwm -> true
      | Bean.Bit_io _, `Dio -> true
      | Bean.Quad_dec _, `Icu -> true
      | Bean.Serial _, `Uart -> true
      | _ -> false)
    (Bean_project.beans project)

let driver_protos project =
  List.concat
    [
      (if has_class project `Gpt then
         [
           "void Gpt_Init(void);";
           "void Gpt_StartTimer(Gpt_ChannelType Channel, Gpt_ValueType Value);";
           "void Gpt_StopTimer(Gpt_ChannelType Channel);";
         ]
       else []);
      (if has_class project `Adc then
         [
           "void Adc_Init(void);";
           "Std_ReturnType Adc_StartGroupConversion(Adc_GroupType Group);";
           "Std_ReturnType Adc_ReadGroup(Adc_GroupType Group, Adc_ValueGroupType *DataBufferPtr);";
         ]
       else []);
      (if has_class project `Pwm then
         [
           "void Pwm_Init(void);";
           "void Pwm_SetDutyCycle(Pwm_ChannelType ChannelNumber, uint16_t DutyCycle);";
         ]
       else []);
      (if has_class project `Dio then
         [
           "Dio_LevelType Dio_ReadChannel(Dio_ChannelType ChannelId);";
           "void Dio_WriteChannel(Dio_ChannelType ChannelId, Dio_LevelType Level);";
         ]
       else []);
      (if has_class project `Icu then
         [
           "void Icu_Init(void);";
           "Icu_EdgeNumberType Icu_GetEdgeNumbers(Icu_ChannelType Channel);";
         ]
       else []);
      (if has_class project `Uart then
         [
           "void CddUart_Init(void);";
           "Std_ReturnType CddUart_Transmit(uint8_t Data);";
           "Std_ReturnType CddUart_Receive(uint8_t *Data);";
         ]
       else []);
      [ "void Mcal_Init(void);" ];
    ]

let mcal_header project =
  {
    unit_name = "Mcal.h";
    items =
      [
        Item_comment "MCAL driver interface (AUTOSAR block-set variant)";
        Include_local "Std_Types.h";
        Include_local "Mcal_Cfg.h";
        Raw_item (String.concat "\n" (driver_protos project));
      ];
  }

(* Driver implementations against the synthesised register map. The per-
   channel register strides mirror Bean_code so both HAL variants touch
   the same addresses. *)
let gpt_unit mcu project =
  let beans =
    List.filter
      (fun b -> match b.Bean.config with Bean.Timer_int _ | Bean.Free_cntr _ -> true | _ -> false)
      (Bean_project.beans project)
  in
  let base ch = base_of mcu `Timer + (ch * 0x10) in
  let init_stmts =
    List.concat_map
      (fun b ->
        match b.Bean.resolved with
        | Some (Bean.R_timer (sol, ch)) | Some (Bean.R_free_cntr (sol, ch)) ->
            let prescaler_bits =
              int_of_float (log (float_of_int sol.Expert.prescaler) /. log 2.0)
            in
            [
              Comment
                (Printf.sprintf "%s: /%d x %d -> %.6g ms" b.Bean.bname
                   sol.Expert.prescaler sol.Expert.modulo
                   (sol.Expert.achieved_period *. 1e3));
              Assign
                ( reg (Printf.sprintf "0x%04X" (base ch + 4)),
                  Int_lit (sol.Expert.modulo - 1) );
              Assign
                ( reg (Printf.sprintf "0x%04X" (base ch)),
                  Bin ("|", Hex_lit 0x3001, Int_lit (prescaler_bits lsl 8)) );
            ]
        | _ -> [])
      beans
  in
  {
    unit_name = "Gpt.c";
    items =
      [
        Include_local "Mcal.h";
        Func_def
          (func ~comment:"bring up every configured Gpt channel" Void "Gpt_Init" []
             init_stmts);
        Func_def
          (func Void "Gpt_StartTimer"
             [ (Named "Gpt_ChannelType", "Channel"); (Named "Gpt_ValueType", "Value") ]
             [
               Comment "compare interrupt enable for the channel";
               Expr (Call ("(void)", [ Var "Value" ]));
               Assign
                 ( Call ("REG16",
                         [ Bin ("+", Hex_lit (base_of mcu `Timer + 6),
                                Bin ("*", Var "Channel", Hex_lit 0x10)) ]),
                   Hex_lit 0x4000 );
             ]);
        Func_def
          (func Void "Gpt_StopTimer"
             [ (Named "Gpt_ChannelType", "Channel") ]
             [
               Assign
                 ( Call ("REG16",
                         [ Bin ("+", Hex_lit (base_of mcu `Timer),
                                Bin ("*", Var "Channel", Hex_lit 0x10)) ]),
                   Hex_lit 0x0000 );
             ]);
      ];
  }

let adc_unit mcu project =
  let resolution =
    List.find_map
      (fun b -> match b.Bean.config with Bean.Adc { resolution; _ } -> Some resolution | _ -> None)
      (Bean_project.beans project)
    |> Option.value ~default:12
  in
  let base = base_of mcu `Adc in
  {
    unit_name = "Adc.c";
    items =
      [
        Include_local "Mcal.h";
        Func_def
          (func ~comment:(Printf.sprintf "%d-bit single-conversion groups" resolution)
             Void "Adc_Init" []
             [ Assign (reg (Printf.sprintf "0x%04X" base), Hex_lit 0x0000) ]);
        Func_def
          (func (Named "Std_ReturnType") "Adc_StartGroupConversion"
             [ (Named "Adc_GroupType", "Group") ]
             [
               Assign
                 ( reg (Printf.sprintf "0x%04X" base),
                   Bin ("|", Hex_lit 0x2000, Var "Group") );
               Return (Some (Var "E_OK"));
             ]);
        Func_def
          (func (Named "Std_ReturnType") "Adc_ReadGroup"
             [ (Named "Adc_GroupType", "Group");
               (Ptr (Named "Adc_ValueGroupType"), "DataBufferPtr") ]
             [
               Assign
                 ( Un ("*", Var "DataBufferPtr"),
                   Call ("REG16",
                         [ Bin ("+", Hex_lit (base + 4),
                                Bin ("*", Var "Group", Int_lit 2)) ]) );
               Return (Some (Var "E_OK"));
             ]);
      ];
  }

let pwm_unit mcu project =
  let beans =
    List.filter
      (fun b -> match b.Bean.config with Bean.Pwm _ -> true | _ -> false)
      (Bean_project.beans project)
  in
  let base ch = base_of mcu `Pwm + (ch * 0x08) in
  let init_stmts =
    List.concat_map
      (fun b ->
        match b.Bean.resolved with
        | Some (Bean.R_pwm { channel; period_counts; actual_freq; _ }) ->
            [
              Comment (Printf.sprintf "%s: %.6g Hz (%d counts)" b.Bean.bname
                         actual_freq period_counts);
              Assign (reg (Printf.sprintf "0x%04X" (base channel)),
                      Int_lit period_counts);
              Assign (reg (Printf.sprintf "0x%04X" (base channel + 4)), Hex_lit 0x0001);
            ]
        | _ -> [])
      beans
  in
  let period_table =
    List.filter_map
      (fun b ->
        match b.Bean.resolved with
        | Some (Bean.R_pwm { channel; period_counts; _ }) -> Some (channel, period_counts)
        | _ -> None)
      beans
  in
  let max_ch = List.fold_left (fun a (c, _) -> Stdlib.max a c) 0 period_table in
  let table_init =
    String.concat ", "
      (List.init (max_ch + 1) (fun i ->
           string_of_int (try List.assoc i period_table with Not_found -> 1)))
  in
  {
    unit_name = "Pwm.c";
    items =
      [
        Include_local "Mcal.h";
        Raw_item
          (Printf.sprintf
             "static const uint16_t Pwm_PeriodCounts[%d] = {%s};"
             (max_ch + 1) table_init);
        Func_def (func Void "Pwm_Init" [] init_stmts);
        Func_def
          (func
             ~comment:
               "AUTOSAR duty domain: 0x0000 = 0 %, 0x8000 = 100 % of the period"
             Void "Pwm_SetDutyCycle"
             [ (Named "Pwm_ChannelType", "ChannelNumber"); (U16, "DutyCycle") ]
             [
               Decl
                 ( U32, "val",
                   Some
                     (Bin
                        ( ">>",
                          Bin
                            ( "*",
                              Cast_to (U32, Var "DutyCycle"),
                              Cast_to (U32, Index (Var "Pwm_PeriodCounts",
                                                   Var "ChannelNumber")) ),
                          Int_lit 15 )) );
               Assign
                 ( Call ("REG16",
                         [ Bin ("+", Hex_lit (base_of mcu `Pwm + 2),
                                Bin ("*", Var "ChannelNumber", Hex_lit 0x08)) ]),
                   Cast_to (U16, Var "val") );
             ]);
      ];
  }

let dio_unit mcu =
  let base = base_of mcu `Gpio in
  {
    unit_name = "Dio.c";
    items =
      [
        Include_local "Mcal.h";
        Func_def
          (func (Named "Dio_LevelType") "Dio_ReadChannel"
             [ (Named "Dio_ChannelType", "ChannelId") ]
             [
               Return
                 (Some
                    (Ternary
                       ( Bin ("&", reg (Printf.sprintf "0x%04X" base),
                              Bin ("<<", Int_lit 1, Var "ChannelId")),
                         Var "STD_HIGH", Var "STD_LOW" )));
             ]);
        Func_def
          (func Void "Dio_WriteChannel"
             [ (Named "Dio_ChannelType", "ChannelId");
               (Named "Dio_LevelType", "Level") ]
             [
               If
                 ( Bin ("==", Var "Level", Var "STD_HIGH"),
                   [
                     Assign
                       ( reg (Printf.sprintf "0x%04X" base),
                         Bin ("|", reg (Printf.sprintf "0x%04X" base),
                              Bin ("<<", Int_lit 1, Var "ChannelId")) );
                   ],
                   [
                     Assign
                       ( reg (Printf.sprintf "0x%04X" base),
                         Bin ("&", reg (Printf.sprintf "0x%04X" base),
                              Un ("~", Bin ("<<", Int_lit 1, Var "ChannelId"))) );
                   ] );
             ]);
      ];
  }

let icu_unit mcu =
  let base = base_of mcu `Qdec in
  {
    unit_name = "Icu.c";
    items =
      [
        Include_local "Mcal.h";
        Func_def (func Void "Icu_Init" []
                    [ Assign (reg (Printf.sprintf "0x%04X" (base + 2)), Hex_lit 0x0001) ]);
        Func_def
          (func
             ~comment:"edge counting mode: the position register of the decoder"
             (Named "Icu_EdgeNumberType") "Icu_GetEdgeNumbers"
             [ (Named "Icu_ChannelType", "Channel") ]
             [
               Expr (Call ("(void)", [ Var "Channel" ]));
               Return (Some (reg (Printf.sprintf "0x%04X" base)));
             ]);
      ];
  }

let uart_unit mcu project =
  let divisor =
    List.find_map
      (fun b ->
        match b.Bean.resolved with
        | Some (Bean.R_serial { divisor; _ }) -> Some divisor
        | _ -> None)
      (Bean_project.beans project)
    |> Option.value ~default:32
  in
  let base = base_of mcu `Sci in
  {
    unit_name = "CddUart.c";
    items =
      [
        Include_local "Mcal.h";
        Func_def
          (func Void "CddUart_Init" []
             [
               Assign (reg (Printf.sprintf "0x%04X" base), Int_lit divisor);
               Assign (reg (Printf.sprintf "0x%04X" (base + 2)), Hex_lit 0x002C);
             ]);
        Func_def
          (func (Named "Std_ReturnType") "CddUart_Transmit" [ (U8, "Data") ]
             [
               While
                 ( Bin ("==", Bin ("&", reg (Printf.sprintf "0x%04X" (base + 4)),
                                   Hex_lit 0x8000), Int_lit 0),
                   [ Comment "wait for TDRE" ] );
               Assign (reg (Printf.sprintf "0x%04X" (base + 6)), Var "Data");
               Return (Some (Var "E_OK"));
             ]);
        Func_def
          (func (Named "Std_ReturnType") "CddUart_Receive" [ (Ptr U8, "Data") ]
             [
               If
                 ( Bin ("==", Bin ("&", reg (Printf.sprintf "0x%04X" (base + 4)),
                                   Hex_lit 0x4000), Int_lit 0),
                   [ Return (Some (Var "E_NOT_OK")) ],
                   [] );
               Assign (Un ("*", Var "Data"),
                       Cast_to (U8, reg (Printf.sprintf "0x%04X" (base + 6))));
               Return (Some (Var "E_OK"));
             ]);
      ];
  }

let mcal_init_unit project =
  let calls =
    List.concat
      [
        (if has_class project `Gpt then [ Expr (call "Gpt_Init" []) ] else []);
        (if has_class project `Adc then [ Expr (call "Adc_Init" []) ] else []);
        (if has_class project `Pwm then [ Expr (call "Pwm_Init" []) ] else []);
        (if has_class project `Icu then [ Expr (call "Icu_Init" []) ] else []);
        (if has_class project `Uart then [ Expr (call "CddUart_Init" []) ] else []);
      ]
  in
  {
    unit_name = "Mcal.c";
    items =
      [
        Include_local "Mcal.h";
        Func_def
          (func ~comment:"bring the whole MCAL up, expert-resolved settings baked in"
             Void "Mcal_Init" [] calls);
      ];
  }

let hal_units project =
  (match Bean_project.verify project with
  | Ok () -> ()
  | Error msgs ->
      invalid_arg
        ("Autosar_code.hal_units: unresolved beans:\n" ^ String.concat "\n" msgs));
  let mcu = Bean_project.mcu project in
  List.concat
    [
      [ std_types_unit; cfg_unit project; mcal_header project ];
      (if has_class project `Gpt then [ gpt_unit mcu project ] else []);
      (if has_class project `Adc then [ adc_unit mcu project ] else []);
      (if has_class project `Pwm then [ pwm_unit mcu project ] else []);
      (if has_class project `Dio then [ dio_unit mcu ] else []);
      (if has_class project `Icu then [ icu_unit mcu ] else []);
      (if has_class project `Uart then [ uart_unit mcu project ] else []);
      [ mcal_init_unit project ];
    ]

let hal_loc project =
  List.fold_left (fun acc u -> acc + C_print.loc (C_print.print_unit u)) 0
    (hal_units project)
