(** MCAL-style HAL generation: the AUTOSAR variant's counterpart of
    {!Bean_code} (§8).

    The same resolved beans generate an AUTOSAR-flavoured hardware
    abstraction instead of PE method code: standardized driver APIs
    ([Adc_StartGroupConversion]/[Adc_ReadGroup], [Pwm_SetDutyCycle],
    [Dio_ReadChannel]/[Dio_WriteChannel], [Gpt_StartTimer] with
    notifications, [Icu_GetEdgeNumbers]), symbolic channel identifiers in
    a generated configuration header, and an [Mcal_Init] bringing the
    drivers up with the expert-system-resolved register settings. *)

val symbolic_id : Bean.t -> string
(** The configuration symbol naming a bean's channel/group, e.g.
    ["AdcGroup_AD1"], ["PwmChannel_PWM1"], ["GptChannel_TI1"]. *)

val notification_name : Bean.t -> string option
(** The notification (callout) the driver invokes for event-generating
    beans: [Gpt_Notification_TI1], [Adc_Notification_AD1]; [None] for
    beans without events. *)

val hal_units : Bean_project.t -> C_ast.cunit list
(** [Std_Types.h], [Mcal_Cfg.h], [Mcal.h], one driver unit per peripheral
    class in use, and [Mcal.c] with [Mcal_Init].
    @raise Invalid_argument when the project does not verify. *)

val hal_loc : Bean_project.t -> int
