type pin_direction = In_pin | Out_pin

type config =
  | Timer_int of { period : float; tolerance_frac : float }
  | Adc of { channel : int option; resolution : int; vref : float;
             sample_period : float }
  | Pwm of { channel : int option; freq_hz : float; initial_ratio : float }
  | Dac of { channel : int option; resolution : int; vref : float }
  | Bit_io of { pin : string; direction : pin_direction; init : bool }
  | Quad_dec of { lines_per_rev : int }
  | Serial of { port : int option; baud : int }
  | Free_cntr of { tick : float }
  | Watch_dog of { timeout : float }

type resolved =
  | R_timer of Expert.timer_solution * int
  | R_adc of { channel : int; conv_time : float; max_code : int }
  | R_pwm of { channel : int; period_counts : int; actual_freq : float;
               duty_bits : int }
  | R_dac of { channel : int; max_code : int }
  | R_bitio
  | R_qdec of { register_bits : int }
  | R_serial of { port : int; divisor : int; baud_error : float;
                  byte_time : float }
  | R_free_cntr of Expert.timer_solution * int
  | R_wdog of { timeout_cycles : int }

type t = {
  bname : string;
  config : config;
  mutable resolved : resolved option;
  mutable errors : string list;
  mutable warnings : string list;
}

let make ~name config =
  { bname = name; config; resolved = None; errors = []; warnings = [] }

let type_name t =
  match t.config with
  | Timer_int _ -> "TimerInt"
  | Adc _ -> "ADC"
  | Pwm _ -> "PWM"
  | Dac _ -> "DAC"
  | Bit_io _ -> "BitIO"
  | Quad_dec _ -> "QuadDecoder"
  | Serial _ -> "AsynchroSerial"
  | Free_cntr _ -> "FreeCntr"
  | Watch_dog _ -> "WatchDog"

let err t msg = t.errors <- t.errors @ [ msg ]
let warn t msg = t.warnings <- t.warnings @ [ msg ]

let resolve t res =
  t.resolved <- None;
  t.errors <- [];
  t.warnings <- [];
  Resources.release_owner res t.bname;
  let mcu = Resources.mcu res in
  let claim kind ?unit_index () =
    match Resources.claim res ~owner:t.bname kind ?unit_index () with
    | Ok idx -> Some idx
    | Error e ->
        err t e;
        None
  in
  match t.config with
  | Timer_int { period; tolerance_frac } -> (
      match Expert.solve_timer_period mcu ~period with
      | Error e -> err t e
      | Ok sol -> (
          (match Expert.check_period_tolerance sol ~tolerance_frac with
          | Ok () -> ()
          | Error e -> err t e);
          if sol.Expert.error_frac > 0.0 then
            warn t
              (Printf.sprintf "period rounded to %.6g s (%.3g %% error)"
                 sol.Expert.achieved_period (100.0 *. sol.Expert.error_frac));
          match claim Resources.Timer_ch () with
          | Some ch -> if t.errors = [] then t.resolved <- Some (R_timer (sol, ch))
          | None -> ()))
  | Adc { channel; resolution; vref; sample_period } -> (
      if not (List.mem resolution mcu.Mcu_db.adc.Mcu_db.resolutions) then
        err t
          (Printf.sprintf "%d-bit resolution unavailable on %s (offers %s)"
             resolution mcu.Mcu_db.name
             (String.concat "/"
                (List.map string_of_int mcu.Mcu_db.adc.Mcu_db.resolutions)));
      if vref <= 0.0 then err t "vref must be positive";
      (match Expert.check_adc_sampling mcu ~sample_period with
      | Ok () -> ()
      | Error e -> err t e);
      match claim Resources.Adc_ch ?unit_index:channel () with
      | Some ch ->
          if t.errors = [] then
            t.resolved <-
              Some
                (R_adc
                   {
                     channel = ch;
                     conv_time =
                       float_of_int mcu.Mcu_db.adc.Mcu_db.conv_cycles
                       /. mcu.Mcu_db.f_cpu_hz;
                     max_code = (1 lsl resolution) - 1;
                   })
      | None -> ())
  | Pwm { channel; freq_hz; initial_ratio } -> (
      if initial_ratio < 0.0 || initial_ratio > 1.0 then
        err t "initial ratio must be within 0..1";
      match Expert.solve_pwm_period mcu ~hz:freq_hz with
      | Error e -> err t e
      | Ok (counts, actual) -> (
          let duty_bits =
            int_of_float (Float.floor (log (float_of_int counts) /. log 2.0))
          in
          if duty_bits < 8 then
            warn t
              (Printf.sprintf
                 "only %d bits of duty resolution at %.3g Hz; consider a lower carrier"
                 duty_bits freq_hz);
          match claim Resources.Pwm_ch ?unit_index:channel () with
          | Some ch ->
              if t.errors = [] then
                t.resolved <-
                  Some
                    (R_pwm
                       { channel = ch; period_counts = counts;
                         actual_freq = actual; duty_bits })
          | None -> ()))
  | Dac { channel; resolution; vref } -> (
      if mcu.Mcu_db.dac.Mcu_db.dac_channels = 0 then
        err t (Printf.sprintf "%s offers no DAC" mcu.Mcu_db.name)
      else if not (List.mem resolution mcu.Mcu_db.dac.Mcu_db.dac_resolutions) then
        err t
          (Printf.sprintf "%d-bit DAC mode unavailable on %s" resolution
             mcu.Mcu_db.name);
      if vref <= 0.0 then err t "vref must be positive";
      match claim Resources.Dac_ch ?unit_index:channel () with
      | Some ch ->
          if t.errors = [] then
            t.resolved <-
              Some (R_dac { channel = ch; max_code = (1 lsl resolution) - 1 })
      | None -> ())
  | Bit_io { pin; direction = _; init = _ } -> (
      match claim (Resources.Pin pin) () with
      | Some _ -> if t.errors = [] then t.resolved <- Some R_bitio
      | None -> ())
  | Quad_dec { lines_per_rev } -> (
      if lines_per_rev <= 0 then err t "lines_per_rev must be positive";
      match claim Resources.Qdec_unit () with
      | Some _ -> if t.errors = [] then t.resolved <- Some (R_qdec { register_bits = 16 })
      | None -> ())
  | Serial { port; baud } -> (
      match Expert.solve_sci_divisor mcu ~baud with
      | Error e -> err t e
      | Ok (divisor, baud_error) -> (
          match claim Resources.Sci_port ?unit_index:port () with
          | Some p ->
              if baud_error > 0.01 then
                warn t
                  (Printf.sprintf "baud error %.2f %%" (100.0 *. baud_error));
              if t.errors = [] then
                t.resolved <-
                  Some
                    (R_serial
                       { port = p; divisor; baud_error;
                         byte_time = 10.0 /. float_of_int baud })
          | None -> ()))
  | Watch_dog { timeout } ->
      if timeout <= 0.0 then err t "timeout must be positive"
      else if timeout > 10.0 then
        warn t "timeouts above 10 s defeat the watchdog's purpose";
      if t.errors = [] then
        t.resolved <-
          Some
            (R_wdog
               {
                 timeout_cycles =
                   int_of_float (Float.round (timeout *. mcu.Mcu_db.f_cpu_hz));
               })
  | Free_cntr { tick } -> (
      match Expert.solve_timer_period mcu ~period:tick with
      | Error e -> err t e
      | Ok sol -> (
          match claim Resources.Timer_ch () with
          | Some ch ->
              if t.errors = [] then t.resolved <- Some (R_free_cntr (sol, ch))
          | None -> ()))

let is_valid t = t.resolved <> None && t.errors = []

let methods t =
  let n = t.bname in
  match t.config with
  | Timer_int _ ->
      [
        (n ^ "_Enable", Printf.sprintf "byte %s_Enable(void)" n);
        (n ^ "_Disable", Printf.sprintf "byte %s_Disable(void)" n);
        (n ^ "_SetPeriodMode", Printf.sprintf "byte %s_SetPeriodMode(byte mode)" n);
      ]
  | Adc _ ->
      [
        (n ^ "_Measure", Printf.sprintf "byte %s_Measure(bool wait)" n);
        (n ^ "_GetValue", Printf.sprintf "byte %s_GetValue(word *value)" n);
        (n ^ "_Start", Printf.sprintf "byte %s_Start(void)" n);
      ]
  | Dac _ ->
      [
        (n ^ "_SetValue", Printf.sprintf "byte %s_SetValue(word value)" n);
        (n ^ "_Enable", Printf.sprintf "byte %s_Enable(void)" n);
      ]
  | Pwm _ ->
      [
        (n ^ "_SetRatio16", Printf.sprintf "byte %s_SetRatio16(word ratio)" n);
        (n ^ "_SetDutyUS", Printf.sprintf "byte %s_SetDutyUS(word time)" n);
        (n ^ "_Enable", Printf.sprintf "byte %s_Enable(void)" n);
      ]
  | Bit_io { direction = Out_pin; _ } ->
      [
        (n ^ "_PutVal", Printf.sprintf "void %s_PutVal(bool value)" n);
        (n ^ "_NegVal", Printf.sprintf "void %s_NegVal(void)" n);
      ]
  | Bit_io { direction = In_pin; _ } ->
      [ (n ^ "_GetVal", Printf.sprintf "bool %s_GetVal(void)" n) ]
  | Quad_dec _ ->
      [
        (n ^ "_GetPosition", Printf.sprintf "word %s_GetPosition(void)" n);
        (n ^ "_ResetPosition", Printf.sprintf "byte %s_ResetPosition(void)" n);
      ]
  | Serial _ ->
      [
        (n ^ "_SendChar", Printf.sprintf "byte %s_SendChar(byte chr)" n);
        (n ^ "_RecvChar", Printf.sprintf "byte %s_RecvChar(byte *chr)" n);
        (n ^ "_GetCharsInRxBuf", Printf.sprintf "word %s_GetCharsInRxBuf(void)" n);
      ]
  | Free_cntr _ ->
      [
        (n ^ "_Reset", Printf.sprintf "byte %s_Reset(void)" n);
        (n ^ "_GetCounterValue", Printf.sprintf "word %s_GetCounterValue(void)" n);
      ]
  | Watch_dog _ ->
      [
        (n ^ "_Enable", Printf.sprintf "byte %s_Enable(void)" n);
        (n ^ "_Clear", Printf.sprintf "byte %s_Clear(void)" n);
      ]

let events t =
  let n = t.bname in
  match t.config with
  | Timer_int _ -> [ n ^ "_OnInterrupt" ]
  | Adc _ -> [ n ^ "_OnEnd" ]
  | Serial _ -> [ n ^ "_OnRxChar"; n ^ "_OnTxChar" ]
  | Pwm _ | Dac _ | Bit_io _ | Quad_dec _ | Free_cntr _ | Watch_dog _ -> []

let properties t =
  let common = [ ("Bean type", type_name t); ("Name", t.bname) ] in
  let config_props =
    match t.config with
    | Timer_int { period; tolerance_frac } ->
        [
          ("Interrupt period", Printf.sprintf "%g ms" (period *. 1e3));
          ("Tolerance", Printf.sprintf "%g %%" (tolerance_frac *. 100.0));
        ]
    | Adc { channel; resolution; vref; sample_period } ->
        [
          ( "A/D channel",
            match channel with Some c -> string_of_int c | None -> "auto" );
          ("Resolution", Printf.sprintf "%d bits" resolution);
          ("Reference voltage", Printf.sprintf "%g V" vref);
          ("Sample period", Printf.sprintf "%g ms" (sample_period *. 1e3));
        ]
    | Dac { channel; resolution; vref } ->
        [
          ( "DAC channel",
            match channel with Some c -> string_of_int c | None -> "auto" );
          ("Resolution", Printf.sprintf "%d bits" resolution);
          ("Reference voltage", Printf.sprintf "%g V" vref);
        ]
    | Pwm { channel; freq_hz; initial_ratio } ->
        [
          ( "PWM channel",
            match channel with Some c -> string_of_int c | None -> "auto" );
          ("Carrier frequency", Printf.sprintf "%g kHz" (freq_hz /. 1e3));
          ("Initial ratio", Printf.sprintf "%g" initial_ratio);
        ]
    | Bit_io { pin; direction; init } ->
        [
          ("Pin", pin);
          ("Direction", match direction with In_pin -> "Input" | Out_pin -> "Output");
          ("Init value", string_of_bool init);
        ]
    | Quad_dec { lines_per_rev } ->
        [ ("Encoder lines/rev", string_of_int lines_per_rev) ]
    | Serial { port; baud } ->
        [
          ( "SCI port",
            match port with Some p -> string_of_int p | None -> "auto" );
          ("Baud rate", string_of_int baud);
        ]
    | Free_cntr { tick } -> [ ("Tick", Printf.sprintf "%g us" (tick *. 1e6)) ]
    | Watch_dog { timeout } ->
        [ ("Timeout", Printf.sprintf "%g ms" (timeout *. 1e3)) ]
  in
  let resolved_props =
    match t.resolved with
    | None -> [ ("Status", if t.errors = [] then "unresolved" else "ERROR") ]
    | Some (R_timer (sol, ch)) ->
        [
          ("Timer channel [computed]", string_of_int ch);
          ("Prescaler [computed]", string_of_int sol.Expert.prescaler);
          ("Modulo [computed]", string_of_int sol.Expert.modulo);
          ( "Achieved period [computed]",
            Printf.sprintf "%g ms (err %.3g %%)"
              (sol.Expert.achieved_period *. 1e3)
              (100.0 *. sol.Expert.error_frac) );
        ]
    | Some (R_adc { channel; conv_time; max_code }) ->
        [
          ("Channel [computed]", string_of_int channel);
          ("Conversion time [computed]", Printf.sprintf "%.3g us" (conv_time *. 1e6));
          ("Full-scale code [computed]", string_of_int max_code);
        ]
    | Some (R_dac { channel; max_code }) ->
        [
          ("Channel [computed]", string_of_int channel);
          ("Full-scale code [computed]", string_of_int max_code);
        ]
    | Some (R_pwm { channel; period_counts; actual_freq; duty_bits }) ->
        [
          ("Channel [computed]", string_of_int channel);
          ("Period counts [computed]", string_of_int period_counts);
          ("Achieved carrier [computed]", Printf.sprintf "%.6g Hz" actual_freq);
          ("Duty resolution [computed]", Printf.sprintf "%d bits" duty_bits);
        ]
    | Some R_bitio -> []
    | Some (R_qdec { register_bits }) ->
        [ ("Position register [computed]", Printf.sprintf "%d bits" register_bits) ]
    | Some (R_serial { port; divisor; baud_error; byte_time }) ->
        [
          ("Port [computed]", string_of_int port);
          ("Divisor [computed]", string_of_int divisor);
          ("Baud error [computed]", Printf.sprintf "%.3g %%" (100.0 *. baud_error));
          ("Byte time [computed]", Printf.sprintf "%.3g us" (byte_time *. 1e6));
        ]
    | Some (R_wdog { timeout_cycles }) ->
        [ ("Timeout [computed]", Printf.sprintf "%d cycles" timeout_cycles) ]
    | Some (R_free_cntr (sol, ch)) ->
        [
          ("Timer channel [computed]", string_of_int ch);
          ( "Tick [computed]",
            Printf.sprintf "%.3g us" (sol.Expert.achieved_period *. 1e6) );
        ]
  in
  common @ config_props @ resolved_props
