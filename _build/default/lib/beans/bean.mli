(** Embedded Beans: the component model of Processor Expert.

    "The functionality of the basic elements of the embedded systems like
    the MCU core, the MCU on-chip peripherals etc. are encapsulated in
    Embedded Beans. An interface to a bean is provided via properties,
    methods, and events" (§4). A bean here is a typed configuration, a
    resolution computed by the expert system against a concrete MCU, and
    metadata (methods/events with C signatures) consumed by the Bean
    Inspector, the code generator and the PEERT block set. *)

type pin_direction = In_pin | Out_pin

type config =
  | Timer_int of { period : float; tolerance_frac : float }
      (** periodic interrupt bean (the model's base-rate source) *)
  | Adc of { channel : int option; resolution : int; vref : float;
             sample_period : float }
  | Pwm of { channel : int option; freq_hz : float; initial_ratio : float }
  | Dac of { channel : int option; resolution : int; vref : float }
      (** digital-to-analog converter output *)
  | Bit_io of { pin : string; direction : pin_direction; init : bool }
  | Quad_dec of { lines_per_rev : int }
  | Serial of { port : int option; baud : int }
  | Free_cntr of { tick : float }
      (** free-running counter used for profiling time stamps *)
  | Watch_dog of { timeout : float }
      (** watchdog timer; generated code must call [_Clear] within the
          timeout *)

type resolved =
  | R_timer of Expert.timer_solution * int  (** solution, claimed channel *)
  | R_adc of { channel : int; conv_time : float; max_code : int }
  | R_pwm of { channel : int; period_counts : int; actual_freq : float;
               duty_bits : int }
  | R_dac of { channel : int; max_code : int }
  | R_bitio
  | R_qdec of { register_bits : int }
  | R_serial of { port : int; divisor : int; baud_error : float;
                  byte_time : float }
  | R_free_cntr of Expert.timer_solution * int
  | R_wdog of { timeout_cycles : int }

type t = {
  bname : string;  (** instance name, e.g. "TI1", "AD1" *)
  config : config;
  mutable resolved : resolved option;
  mutable errors : string list;
  mutable warnings : string list;
}

val make : name:string -> config -> t

val type_name : t -> string
(** Bean type, e.g. "TimerInt", "ADC". *)

val resolve : t -> Resources.t -> unit
(** Run the expert system: validate the configuration against the MCU,
    claim resources, and fill [resolved] or [errors]/[warnings]. Safe to
    call again after changing [config] (resources are re-claimed). *)

val is_valid : t -> bool
(** True when resolved with no errors. *)

val methods : t -> (string * string) list
(** Method name and C prototype, prefixed by the instance name, e.g.
    [("AD1_Measure", "void AD1_Measure(void)")]. *)

val events : t -> string list
(** Event handler names, e.g. ["AD1_OnEnd"]. *)

val properties : t -> (string * string) list
(** Property name/value pairs as the Bean Inspector displays them,
    including expert-computed read-only values once resolved. *)
