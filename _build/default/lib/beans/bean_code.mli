(** HAL code generation for beans — Processor Expert's generated-code
    role.

    Every resolved bean emits one C unit implementing its methods against
    the MCU's peripheral registers, specialised to the settings the expert
    system computed (prescaler and modulo baked in, no runtime
    configuration paths) — "methods code is well tested, highly optimized
    and scaled to the selected MCU" (§4). Register maps are synthesised
    per family (base address + channel stride), which preserves the shape
    and size of the real HAL without copying vendor headers. *)

val unit_of_bean : Mcu_db.t -> Bean.t -> C_ast.cunit
(** @raise Invalid_argument when the bean is unresolved. *)

val types_header : Mcu_db.t -> C_ast.cunit
(** The shared [PE_Types.h] equivalent: fixed-width typedefs and the
    register-access macros. *)

val isr_vector_table : Mcu_db.t -> Bean.t list -> C_ast.cunit
(** Vector table stub routing hardware vectors to the bean event
    handlers of the beans that define events. *)
