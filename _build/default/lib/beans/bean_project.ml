type t = {
  mcu : Mcu_db.t;
  resources : Resources.t;
  mutable bean_list : Bean.t list;  (* insertion order, reversed *)
}

let create mcu = { mcu; resources = Resources.create mcu; bean_list = [] }
let mcu t = t.mcu
let resources t = t.resources
let beans t = List.rev t.bean_list

let find t name =
  match List.find_opt (fun b -> b.Bean.bname = name) t.bean_list with
  | Some b -> b
  | None -> raise Not_found

let add t bean =
  if List.exists (fun b -> b.Bean.bname = bean.Bean.bname) t.bean_list then
    invalid_arg
      (Printf.sprintf "Bean_project.add: duplicate bean name %s" bean.Bean.bname);
  Bean.resolve bean t.resources;
  t.bean_list <- bean :: t.bean_list;
  bean

let remove t name =
  (match List.find_opt (fun b -> b.Bean.bname = name) t.bean_list with
  | Some _ -> Resources.release_owner t.resources name
  | None -> ());
  t.bean_list <- List.filter (fun b -> b.Bean.bname <> name) t.bean_list

let verify t =
  (* Re-resolve in insertion order so resource allocation is stable. *)
  List.iter (fun b -> Bean.resolve b t.resources) (beans t);
  let msgs =
    List.concat_map
      (fun b ->
        List.map (fun e -> Printf.sprintf "%s: %s" b.Bean.bname e) b.Bean.errors)
      (beans t)
  in
  if msgs = [] then Ok () else Error msgs

let retarget t mcu' =
  let t' = create mcu' in
  List.iter
    (fun b ->
      let copy = Bean.make ~name:b.Bean.bname b.Bean.config in
      ignore (add t' copy))
    (beans t);
  t'

let hal_units t =
  (match verify t with
  | Ok () -> ()
  | Error msgs ->
      invalid_arg
        ("Bean_project.hal_units: unresolved beans:\n" ^ String.concat "\n" msgs));
  Bean_code.types_header t.mcu
  :: Bean_code.isr_vector_table t.mcu (beans t)
  :: List.map (Bean_code.unit_of_bean t.mcu) (beans t)

let hal_loc t =
  List.fold_left (fun acc u -> acc + C_print.loc (C_print.print_unit u)) 0
    (hal_units t)
