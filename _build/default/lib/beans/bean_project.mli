(** A Processor Expert project: a target CPU "bean" plus the peripheral
    beans of the application, with whole-project verification and HAL
    code generation.

    Porting the application to another MCU is "selecting another CPU bean
    in the PE project window" (§1) — {!retarget} re-runs the expert system
    against the new MCU, reporting what no longer fits, while the
    application model stays untouched. *)

type t

val create : Mcu_db.t -> t
val mcu : t -> Mcu_db.t
val resources : t -> Resources.t

val add : t -> Bean.t -> Bean.t
(** Insert a bean and resolve it immediately (the Inspector's live
    verification). Returns the bean for chaining.
    @raise Invalid_argument on a duplicate instance name. *)

val find : t -> string -> Bean.t
(** @raise Not_found *)

val beans : t -> Bean.t list

val remove : t -> string -> unit
(** Delete a bean and release its resources (model-to-project
    synchronisation when a block is erased, §5). *)

val verify : t -> (unit, string list) result
(** Re-resolve every bean; [Error] collects all messages, prefixed by the
    bean name. *)

val retarget : t -> Mcu_db.t -> t
(** A new project with the same beans resolved against another MCU. *)

val hal_units : t -> C_ast.cunit list
(** Generated HAL: one C unit per bean plus the shared [PE_Types.h]
    equivalent. @raise Invalid_argument when some bean is unresolved. *)

val hal_loc : t -> int
(** Total generated HAL lines of code (experiment E4's metric). *)
