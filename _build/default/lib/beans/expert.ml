type timer_solution = {
  prescaler : int;
  modulo : int;
  achieved_period : float;
  error_frac : float;
}

let solve_timer_period mcu ~period =
  if period <= 0.0 then Error "timer period must be positive"
  else begin
    let f_cpu = mcu.Mcu_db.f_cpu_hz in
    let max_modulo = 1 lsl mcu.Mcu_db.timer.Mcu_db.counter_bits in
    let target_cycles = period *. f_cpu in
    let candidates =
      List.filter_map
        (fun prescaler ->
          let modulo =
            int_of_float (Float.round (target_cycles /. float_of_int prescaler))
          in
          if modulo < 1 || modulo > max_modulo then None
          else
            let achieved = float_of_int (prescaler * modulo) /. f_cpu in
            Some
              {
                prescaler;
                modulo;
                achieved_period = achieved;
                error_frac = Float.abs (achieved -. period) /. period;
              })
        mcu.Mcu_db.timer.Mcu_db.prescalers
    in
    match candidates with
    | [] ->
        Error
          (Printf.sprintf
             "period %.3g s is unattainable on %s (no prescaler/modulo fits)"
             period mcu.Mcu_db.name)
    | c :: rest ->
        (* Prefer the smallest error; tie-break on the smallest prescaler
           (finest granularity for later adjustment). *)
        let best =
          List.fold_left
            (fun best c ->
              if
                c.error_frac < best.error_frac -. 1e-15
                || (Float.abs (c.error_frac -. best.error_frac) < 1e-15
                    && c.prescaler < best.prescaler)
              then c
              else best)
            c rest
        in
        Ok best
  end

let solve_timer_frequency mcu ~hz =
  if hz <= 0.0 then Error "timer frequency must be positive"
  else solve_timer_period mcu ~period:(1.0 /. hz)

let check_period_tolerance sol ~tolerance_frac =
  if sol.error_frac <= tolerance_frac then Ok ()
  else
    Error
      (Printf.sprintf
         "achieved period %.6g s deviates %.3g %% from request (tolerance %.3g %%)"
         sol.achieved_period (100.0 *. sol.error_frac)
         (100.0 *. tolerance_frac))

let solve_pwm_period mcu ~hz =
  if hz <= 0.0 then Error "PWM frequency must be positive"
  else begin
    let f_cpu = mcu.Mcu_db.f_cpu_hz in
    let max_counts = (1 lsl mcu.Mcu_db.pwm.Mcu_db.pwm_counter_bits) - 1 in
    let counts = int_of_float (Float.round (f_cpu /. hz)) in
    if counts < 2 then
      Error
        (Printf.sprintf "PWM frequency %.3g Hz too high for %s (needs >= 2 counts)"
           hz mcu.Mcu_db.name)
    else if counts > max_counts then
      Error
        (Printf.sprintf
           "PWM frequency %.3g Hz too low for %s (%d counts exceed the %d-bit counter)"
           hz mcu.Mcu_db.name counts mcu.Mcu_db.pwm.Mcu_db.pwm_counter_bits)
    else Ok (counts, f_cpu /. float_of_int counts)
  end

let check_adc_sampling mcu ~sample_period =
  if sample_period <= 0.0 then Error "sample period must be positive"
  else begin
    let conv =
      float_of_int mcu.Mcu_db.adc.Mcu_db.conv_cycles /. mcu.Mcu_db.f_cpu_hz
    in
    (* require 20 % headroom so the EOC interrupt and readout fit *)
    if conv *. 1.2 > sample_period then
      Error
        (Printf.sprintf
           "ADC conversion takes %.3g us; a %.3g us sampling period leaves no headroom"
           (conv *. 1e6) (sample_period *. 1e6))
    else Ok ()
  end

let solve_sci_divisor mcu ~baud =
  if baud <= 0 then Error "baud rate must be positive"
  else begin
    (* classic SCI: baud = f_cpu / (16 * divisor) *)
    let f_cpu = mcu.Mcu_db.f_cpu_hz in
    let div = int_of_float (Float.round (f_cpu /. (16.0 *. float_of_int baud))) in
    if div < 1 || div > 0xFFFF then
      Error (Printf.sprintf "baud %d out of SCI divisor range on %s" baud mcu.Mcu_db.name)
    else begin
      let actual = f_cpu /. (16.0 *. float_of_int div) in
      let err = Float.abs (actual -. float_of_int baud) /. float_of_int baud in
      if err > 0.03 then
        Error
          (Printf.sprintf "baud %d only achievable with %.1f %% error (limit 3 %%)"
             baud (100.0 *. err))
      else Ok (div, err)
    end
  end

let achievable_timer_range mcu =
  let f_cpu = mcu.Mcu_db.f_cpu_hz in
  let max_modulo = 1 lsl mcu.Mcu_db.timer.Mcu_db.counter_bits in
  let ps = mcu.Mcu_db.timer.Mcu_db.prescalers in
  let min_p = List.fold_left Stdlib.min max_int ps in
  let max_p = List.fold_left Stdlib.max 0 ps in
  (float_of_int min_p /. f_cpu, float_of_int (max_p * max_modulo) /. f_cpu)

type pll_solution = {
  multiplier : int;
  divider : int;
  achieved_hz : float;
  pll_error_frac : float;
}

let solve_pll ~crystal_hz ~target_hz ?(mult_range = (1, 64)) ?(div_range = (1, 16))
    ?(vco_max_hz = 400e6) () =
  if crystal_hz <= 0.0 || target_hz <= 0.0 then
    Error "clock frequencies must be positive"
  else begin
    let m_lo, m_hi = mult_range and d_lo, d_hi = div_range in
    let best = ref None in
    for m = m_lo to m_hi do
      if crystal_hz *. float_of_int m <= vco_max_hz then
        for d = d_lo to d_hi do
          let f = crystal_hz *. float_of_int m /. float_of_int d in
          let err = Float.abs (f -. target_hz) /. target_hz in
          match !best with
          | Some (_, _, _, e) when e <= err -> ()
          | _ -> best := Some (m, d, f, err)
        done
    done;
    match !best with
    | Some (multiplier, divider, achieved_hz, pll_error_frac)
      when pll_error_frac <= 0.02 ->
        Ok { multiplier; divider; achieved_hz; pll_error_frac }
    | Some (_, _, f, e) ->
        Error
          (Printf.sprintf
             "target %.4g MHz unreachable from a %.4g MHz crystal (closest %.4g MHz, %.1f %% off)"
             (target_hz /. 1e6) (crystal_hz /. 1e6) (f /. 1e6) (100.0 *. e))
    | None -> Error "VCO ceiling rules out every multiplier"
  end
