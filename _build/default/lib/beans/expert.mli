(** The expert system behind the Bean Inspector.

    Processor Expert's differentiator (§4): "some design parameters, such
    as settings of common prescalers or useable resources for the needed
    functionality are calculated by the expert system. Verification of
    user decisions is provided." These are those calculations: closed-form
    searches over the MCU's legal register settings, returning either the
    best achievable configuration or a diagnosed error. *)

type timer_solution = {
  prescaler : int;
  modulo : int;
  achieved_period : float;  (** seconds *)
  error_frac : float;  (** |achieved - requested| / requested *)
}

val solve_timer_period :
  Mcu_db.t -> period:float -> (timer_solution, string) result
(** Choose the (prescaler, modulo) pair minimising period error for an
    interrupt period in seconds. Fails when the period is outside the
    attainable range of any prescaler at the MCU clock. *)

val solve_timer_frequency :
  Mcu_db.t -> hz:float -> (timer_solution, string) result

val check_period_tolerance :
  timer_solution -> tolerance_frac:float -> (unit, string) result
(** Reject solutions whose residual error exceeds the user tolerance. *)

val solve_pwm_period :
  Mcu_db.t -> hz:float -> (int * float, string) result
(** Counter modulo and achieved frequency for a PWM carrier. *)

val check_adc_sampling :
  Mcu_db.t -> sample_period:float -> (unit, string) result
(** Validate that one conversion fits into the requested sampling period
    with margin — the time-domain validation the paper says existing
    targets lack (§3.1). *)

val solve_sci_divisor : Mcu_db.t -> baud:int -> (int * float, string) result
(** SCI divisor register and the actual baud rate error fraction. Errors
    above 3 % (the RS-232 tolerance budget) are rejected. *)

val achievable_timer_range : Mcu_db.t -> float * float
(** Shortest and longest attainable interrupt periods. *)

type pll_solution = {
  multiplier : int;
  divider : int;
  achieved_hz : float;
  pll_error_frac : float;
}

val solve_pll :
  crystal_hz:float ->
  target_hz:float ->
  ?mult_range:int * int ->
  ?div_range:int * int ->
  ?vco_max_hz:float ->
  unit ->
  (pll_solution, string) result
(** The CPU bean's clock computation: pick PLL multiplier/divider so that
    [crystal * mult / div] approaches the requested core clock without
    the VCO ([crystal * mult]) exceeding its ceiling. Defaults: mult
    1..64, div 1..16, VCO limit 400 MHz. Rejects targets missed by more
    than 2 %. *)
