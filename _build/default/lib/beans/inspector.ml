let render_bean b =
  let buf = Buffer.create 512 in
  let table = Table.create ~title:(Printf.sprintf "Bean Inspector %s:%s"
                                     (Bean.type_name b) b.Bean.bname)
      [ "Property"; "Value" ]
  in
  List.iter (fun (k, v) -> Table.add_row table [ k; v ]) (Bean.properties b);
  Buffer.add_string buf (Table.render ~align:[ Table.Left; Table.Left ] table);
  let methods = Bean.methods b in
  if methods <> [] then begin
    Buffer.add_string buf "Methods:\n";
    List.iter
      (fun (_, proto) -> Buffer.add_string buf (Printf.sprintf "  %s\n" proto))
      methods
  end;
  let events = Bean.events b in
  if events <> [] then begin
    Buffer.add_string buf "Events:\n";
    List.iter (fun e -> Buffer.add_string buf (Printf.sprintf "  %s\n" e)) events
  end;
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "WARNING: %s\n" w))
    b.Bean.warnings;
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "ERROR: %s\n" e))
    b.Bean.errors;
  Buffer.contents buf

let render_project p =
  let mcu = Bean_project.mcu p in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Project window -- CPU bean: %s (%s, %.0f MHz, %d KiB flash, %d KiB RAM)\n"
       mcu.Mcu_db.name mcu.Mcu_db.core
       (mcu.Mcu_db.f_cpu_hz /. 1e6)
       (mcu.Mcu_db.flash_bytes / 1024)
       (mcu.Mcu_db.ram_bytes / 1024));
  let table = Table.create [ "Bean"; "Type"; "Status" ] in
  List.iter
    (fun b ->
      let status =
        if Bean.is_valid b then
          if b.Bean.warnings = [] then "OK"
          else Printf.sprintf "OK (%d warnings)" (List.length b.Bean.warnings)
        else "ERROR"
      in
      Table.add_row table [ b.Bean.bname; Bean.type_name b; status ])
    (Bean_project.beans p);
  Buffer.add_string buf (Table.render table);
  Buffer.add_string buf "Resource allocation:\n";
  List.iter
    (fun (resource, owner) ->
      Buffer.add_string buf (Printf.sprintf "  %-16s -> %s\n" resource owner))
    (Resources.claims (Bean_project.resources p));
  Buffer.contents buf
