(** Bean Inspector rendering (Fig 4.1).

    The Bean Inspector is Processor Expert's dialog of properties,
    methods and events with live verification; this module renders the
    same view as text for the terminal and the experiment harness. *)

val render_bean : Bean.t -> string
(** Properties (configuration plus expert-computed values), methods,
    events, and any errors/warnings of one bean. *)

val render_project : Bean_project.t -> string
(** Project window: the CPU bean and every peripheral bean with its
    status, plus the resource allocation map. *)
