let require_valid bean =
  if not (Bean.is_valid bean) then
    invalid_arg
      (Printf.sprintf
         "Periph_blocks: bean %s is not valid (%s); fix it in the Bean Inspector"
         bean.Bean.bname
         (match bean.Bean.errors with e :: _ -> e | [] -> "unresolved"))

let bean_param bean = ("bean", Param.String bean.Bean.bname)

let timer_int bean =
  require_valid bean;
  let period =
    match bean.Bean.resolved with
    | Some (Bean.R_timer (sol, _)) -> sol.Expert.achieved_period
    | _ -> invalid_arg "Periph_blocks.timer_int: not a TimerInt bean"
  in
  {
    Block.kind = "PE_TimerInt";
    params = [ bean_param bean; ("period", Param.Float period) ];
    n_in = 0;
    n_out = 0;
    feedthrough = [||];
    out_types = [||];
    sample = Sample_time.discrete period;
    event_outs = [| "OnInterrupt" |];
    make =
      (fun ctx ->
        { Block.no_beh_state with update = (fun ~time:_ _ -> ctx.Block.fire 0) });
  }

let adc bean =
  require_valid bean;
  let vref, sample_period, max_code =
    match (bean.Bean.config, bean.Bean.resolved) with
    | Bean.Adc { vref; sample_period; _ }, Some (Bean.R_adc { max_code; _ }) ->
        (vref, sample_period, max_code)
    | _ -> invalid_arg "Periph_blocks.adc: not an ADC bean"
  in
  {
    Block.kind = "PE_Adc";
    params =
      [
        bean_param bean;
        ("vref", Param.Float vref);
        ("max_code", Param.Int max_code);
        ("period", Param.Float sample_period);
      ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Uint16 |];
    sample = Sample_time.discrete sample_period;
    event_outs = [| "OnEnd" |];
    make =
      (fun ctx ->
        let quantize v =
          let code =
            int_of_float (Float.round (v /. vref *. float_of_int max_code))
          in
          if code < 0 then 0 else if code > max_code then max_code else code
        in
        {
          Block.no_beh_state with
          out =
            (fun ~minor:_ ~time:_ ins ->
              [| Value.of_int Dtype.Uint16 (quantize (Value.to_float ins.(0))) |]);
          update = (fun ~time:_ _ -> ctx.Block.fire 0);
        });
  }

let adc_volts_gain bean =
  match (bean.Bean.config, bean.Bean.resolved) with
  | Bean.Adc { vref; _ }, Some (Bean.R_adc { max_code; _ }) ->
      vref /. float_of_int max_code
  | _ -> invalid_arg "Periph_blocks.adc_volts_gain: not a resolved ADC bean"

let pwm bean =
  require_valid bean;
  let period_counts =
    match bean.Bean.resolved with
    | Some (Bean.R_pwm { period_counts; _ }) -> period_counts
    | _ -> invalid_arg "Periph_blocks.pwm: not a PWM bean"
  in
  {
    Block.kind = "PE_Pwm";
    params = [ bean_param bean; ("period_counts", Param.Int period_counts) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        {
          Block.no_beh_state with
          out =
            (fun ~minor:_ ~time:_ ins ->
              (* SetRatio16 semantics including the integer duty counter *)
              let ratio16 = Value.to_int ins.(0) in
              let ratio16 =
                if ratio16 < 0 then 0 else if ratio16 > 65535 then 65535 else ratio16
              in
              let duty_counts = ratio16 * period_counts / 65535 in
              [| Value.F (float_of_int duty_counts /. float_of_int period_counts) |]);
        });
  }

let bit_io_out bean =
  require_valid bean;
  let init =
    match bean.Bean.config with
    | Bean.Bit_io { direction = Bean.Out_pin; init; _ } -> init
    | _ -> invalid_arg "Periph_blocks.bit_io_out: not an output BitIO bean"
  in
  {
    Block.kind = "PE_BitIO_Out";
    params = [ bean_param bean; ("init", Param.Bool init) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Bool |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let latch = ref init in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then latch := Value.to_bool ins.(0);
              [| Value.of_bool !latch |]);
          reset = (fun () -> latch := init);
        });
  }

let bit_io_in bean =
  require_valid bean;
  (match bean.Bean.config with
  | Bean.Bit_io { direction = Bean.In_pin; _ } -> ()
  | _ -> invalid_arg "Periph_blocks.bit_io_in: not an input BitIO bean");
  {
    Block.kind = "PE_BitIO_In";
    params = [ bean_param bean ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Bool |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        {
          Block.no_beh_state with
          out = (fun ~minor:_ ~time:_ ins -> [| Value.of_bool (Value.to_bool ins.(0)) |]);
        });
  }

let quad_decoder bean =
  require_valid bean;
  let lines =
    match bean.Bean.config with
    | Bean.Quad_dec { lines_per_rev } -> lines_per_rev
    | _ -> invalid_arg "Periph_blocks.quad_decoder: not a QuadDecoder bean"
  in
  let counts_per_rev = 4 * lines in
  {
    Block.kind = "PE_QuadDec";
    params = [ bean_param bean; ("counts_per_rev", Param.Int counts_per_rev) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Int32 |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let two_pi = 2.0 *. Float.pi in
        {
          Block.no_beh_state with
          out =
            (fun ~minor:_ ~time:_ ins ->
              let theta = Value.to_float ins.(0) in
              let count =
                int_of_float
                  (Float.floor (theta /. two_pi *. float_of_int counts_per_rev))
              in
              [| Value.of_int Dtype.Int32 count |]);
        });
  }

let free_counter bean =
  require_valid bean;
  let tick =
    match bean.Bean.resolved with
    | Some (Bean.R_free_cntr (sol, _)) -> sol.Expert.achieved_period
    | _ -> invalid_arg "Periph_blocks.free_counter: not a FreeCntr bean"
  in
  {
    Block.kind = "PE_FreeCntr";
    params = [ bean_param bean; ("tick", Param.Float tick) ];
    n_in = 0;
    n_out = 1;
    feedthrough = [||];
    out_types = [| Block.Fixed_type Dtype.Uint16 |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        {
          Block.no_beh_state with
          out =
            (fun ~minor:_ ~time _ ->
              let ticks = int_of_float (Float.floor (time /. tick)) in
              [| Value.of_int Dtype.Uint16 (ticks land 0xFFFF) |]);
        });
  }

let dac bean =
  require_valid bean;
  let vref, max_code =
    match (bean.Bean.config, bean.Bean.resolved) with
    | Bean.Dac { vref; _ }, Some (Bean.R_dac { max_code; _ }) -> (vref, max_code)
    | _ -> invalid_arg "Periph_blocks.dac: not a DAC bean"
  in
  {
    Block.kind = "PE_Dac";
    params =
      [ bean_param bean; ("vref", Param.Float vref);
        ("max_code", Param.Int max_code) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        {
          Block.no_beh_state with
          out =
            (fun ~minor:_ ~time:_ ins ->
              let code = Value.to_int ins.(0) in
              let code =
                if code < 0 then 0 else if code > max_code then max_code else code
              in
              [| Value.F (float_of_int code /. float_of_int max_code *. vref) |]);
        });
  }
