(** The Processor Expert block set (§5).

    Each block corresponds to a bean in the PE project and carries both
    roles of the paper's single-model approach: during simulation the
    block "does not simply pass the data … through, but reflects the main
    HW properties" (a 12-bit ADC block really quantises to 12 bits); at
    code generation time the PEERT emitters translate the same block into
    bean method calls. Event-generating peripherals expose their
    interrupts as function-call event outputs.

    Every constructor validates its bean against the project's knowledge
    base immediately and raises [Invalid_argument] on an unresolved or
    erroneous bean — the live verification of the Bean Inspector. *)

val timer_int : Bean.t -> Block.spec
(** Periodic interrupt bean block: no data ports, one event output
    ["OnInterrupt"] firing every (achieved) period — the trigger of the
    paper's periodic controller task. *)

val adc : Bean.t -> Block.spec
(** Input: analog voltage from the plant model (double, volts). Output:
    conversion code (uint16) at the bean's resolution. Event output 0 is
    ["OnEnd"], the end-of-conversion interrupt. Runs at the bean's sample
    period. *)

val adc_volts_gain : Bean.t -> float
(** Code-to-volts factor of the resolved ADC bean, for scaling blocks
    downstream. *)

val pwm : Bean.t -> Block.spec
(** Input: ratio16 duty command (0..65535). Output: realised duty ratio
    0..1, quantised to the carrier's counter resolution — feed it to the
    {!Plant_blocks.power_stage}. *)

val bit_io_out : Bean.t -> Block.spec
(** Input: boolean; output: the pin latch (boolean). *)

val bit_io_in : Bean.t -> Block.spec
(** Input: the external world's boolean (plant side); output: debounced
    pin reading. *)

val quad_decoder : Bean.t -> Block.spec
(** Input: shaft angle (rad) from the motor model; output: x4-decoded
    position count (int32) exactly as the decoder register accumulates
    it. *)

val dac : Bean.t -> Block.spec
(** Input: output code (uint16); output: the analog voltage the pin
    produces (double, volts), quantised to the DAC's resolution — the
    analog-actuation counterpart of the PWM block. *)

val free_counter : Bean.t -> Block.spec
(** Free-running counter bean block: no inputs, outputs the elapsed tick
    count wrapped at 16 bits — the time-stamp source the PIL profiling
    reads ([FC1_GetCounterValue]). *)
