type kind = Timer_ch | Adc_ch | Pwm_ch | Dac_ch | Sci_port | Pin of string | Qdec_unit

type t = {
  mcu : Mcu_db.t;
  table : (string, string) Hashtbl.t;  (* resource key -> owner *)
}

let create mcu = { mcu; table = Hashtbl.create 16 }
let mcu t = t.mcu

let capacity t = function
  | Timer_ch -> t.mcu.Mcu_db.timer.Mcu_db.timer_channels
  | Adc_ch -> t.mcu.Mcu_db.adc.Mcu_db.adc_channels
  | Pwm_ch -> t.mcu.Mcu_db.pwm.Mcu_db.pwm_channels
  | Dac_ch -> t.mcu.Mcu_db.dac.Mcu_db.dac_channels
  | Sci_port -> t.mcu.Mcu_db.sci_count
  | Qdec_unit -> if t.mcu.Mcu_db.has_qdec then 1 else 0
  | Pin _ -> 1

let describe kind idx =
  match kind with
  | Timer_ch -> Printf.sprintf "timer channel %d" idx
  | Adc_ch -> Printf.sprintf "ADC channel %d" idx
  | Pwm_ch -> Printf.sprintf "PWM channel %d" idx
  | Dac_ch -> Printf.sprintf "DAC channel %d" idx
  | Sci_port -> Printf.sprintf "SCI port %d" idx
  | Qdec_unit -> "quadrature decoder"
  | Pin p -> Printf.sprintf "pin %s" p

let key kind idx =
  match kind with
  | Timer_ch -> Printf.sprintf "timer:%d" idx
  | Adc_ch -> Printf.sprintf "adc:%d" idx
  | Pwm_ch -> Printf.sprintf "pwm:%d" idx
  | Dac_ch -> Printf.sprintf "dac:%d" idx
  | Sci_port -> Printf.sprintf "sci:%d" idx
  | Qdec_unit -> "qdec:0"
  | Pin p -> "pin:" ^ p

let claim t ~owner kind ?unit_index () =
  (match kind with
  | Pin p when not (List.mem p t.mcu.Mcu_db.pins) ->
      Error (Printf.sprintf "%s has no pin %s" t.mcu.Mcu_db.name p)
  | _ -> Ok ())
  |> function
  | Error e -> Error e
  | Ok () -> (
      let cap = capacity t kind in
      if cap = 0 then
        Error
          (Printf.sprintf "%s offers no %s" t.mcu.Mcu_db.name (describe kind 0))
      else
        let try_claim idx =
          let k = key kind idx in
          match Hashtbl.find_opt t.table k with
          | Some other ->
              Error
                (Printf.sprintf "%s already claimed by bean %s"
                   (describe kind idx) other)
          | None ->
              Hashtbl.replace t.table k owner;
              Ok idx
        in
        match unit_index with
        | Some idx ->
            if idx < 0 || idx >= cap then
              Error
                (Printf.sprintf "%s does not exist on %s (capacity %d)"
                   (describe kind idx) t.mcu.Mcu_db.name cap)
            else try_claim idx
        | None ->
            let rec first i =
              if i >= cap then
                Error
                  (Printf.sprintf "all %d units of %s are in use" cap
                     (describe kind 0))
              else
                match try_claim i with Ok idx -> Ok idx | Error _ -> first (i + 1)
            in
            first 0)

let release_owner t owner =
  let keys =
    Hashtbl.fold (fun k o acc -> if o = owner then k :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) keys

let owner_of t kind idx = Hashtbl.find_opt t.table (key kind idx)

let claims t =
  Hashtbl.fold (fun k o acc -> (k, o) :: acc) t.table []
  |> List.sort Stdlib.compare
