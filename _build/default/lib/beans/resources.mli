(** On-chip resource allocator.

    Tracks which pins, timer channels, ADC channels, PWM channels and SCI
    ports the beans of a project have claimed, and rejects conflicts —
    the "useable resources for the needed functionality" bookkeeping of
    §4. Allocation is first-fit when the caller does not pin a specific
    unit. *)

type t
type kind =
  | Timer_ch
  | Adc_ch
  | Pwm_ch
  | Dac_ch
  | Sci_port
  | Pin of string
  | Qdec_unit

val create : Mcu_db.t -> t
val mcu : t -> Mcu_db.t

val claim :
  t -> owner:string -> kind -> ?unit_index:int -> unit -> (int, string) result
(** Claim one unit of a resource for a bean. [unit_index] pins an exact
    channel/port; otherwise the lowest free one is chosen. Pins have no
    index (pass the name in the kind); the returned int is 0 for them.
    Errors name both the resource and the current owner. *)

val release_owner : t -> string -> unit
(** Return everything a bean held (bean deletion in the project). *)

val owner_of : t -> kind -> int -> string option
val claims : t -> (string * string) list
(** [(resource description, owner)] pairs, for the project report. *)
