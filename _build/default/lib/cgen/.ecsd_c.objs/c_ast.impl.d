lib/cgen/c_ast.ml: Dtype Qformat
