lib/cgen/c_ast.mli: Dtype
