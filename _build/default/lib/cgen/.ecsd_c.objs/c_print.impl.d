lib/cgen/c_print.ml: C_ast Float List Printf String
