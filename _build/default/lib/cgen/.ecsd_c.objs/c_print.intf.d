lib/cgen/c_print.mli: C_ast
