type cty =
  | Void
  | Double_t
  | Float_t
  | I8
  | U8
  | I16
  | U16
  | I32
  | U32
  | Named of string
  | Ptr of cty
  | Arr of cty * int

let cty_of_dtype = function
  | Dtype.Double -> Double_t
  | Dtype.Single -> Float_t
  | Dtype.Int8 -> I8
  | Dtype.Uint8 | Dtype.Bool -> U8
  | Dtype.Int16 -> I16
  | Dtype.Uint16 -> U16
  | Dtype.Int32 -> I32
  | Dtype.Uint32 -> U32
  | Dtype.Fix f as t ->
      let bits = Dtype.bits t in
      if f.Qformat.signed then
        (match bits with 8 -> I8 | 16 -> I16 | _ -> I32)
      else (match bits with 8 -> U8 | 16 -> U16 | _ -> U32)

type expr =
  | Int_lit of int
  | Hex_lit of int
  | Float_lit of float
  | Str_lit of string
  | Var of string
  | Field of expr * string
  | Arrow of expr * string
  | Index of expr * expr
  | Call of string * expr list
  | Un of string * expr
  | Bin of string * expr * expr
  | Cast_to of cty * expr
  | Ternary of expr * expr * expr

type stmt =
  | Expr of expr
  | Decl of cty * string * expr option
  | Assign of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr option
  | Comment of string
  | Raw of string
  | Block of stmt list

type func = {
  ret : cty;
  fname : string;
  args : (cty * string) list;
  body : stmt list;
  fcomment : string option;
  static : bool;
}

type item =
  | Include of string
  | Include_local of string
  | Define of string * string
  | Typedef of cty * string
  | Struct_def of string * (cty * string) list
  | Global of { gty : cty; gname : string; ginit : expr option;
                volatile : bool; static : bool }
  | Func_def of func
  | Proto of func
  | Raw_item of string
  | Item_comment of string

type cunit = { unit_name : string; items : item list }

let int_ n = Int_lit n
let flt x = Float_lit x
let var s = Var s
let call f args = Call (f, args)
let ( +! ) a b = Bin ("+", a, b)
let ( -! ) a b = Bin ("-", a, b)
let ( *! ) a b = Bin ("*", a, b)
let ( /! ) a b = Bin ("/", a, b)
let ( >>! ) a n = Bin (">>", a, Int_lit n)
let ( <<! ) a n = Bin ("<<", a, Int_lit n)
let assign lhs rhs = Assign (lhs, rhs)

let func ?(static = false) ?comment ret fname args body =
  { ret; fname; args; body; fcomment = comment; static }
