(** A small C abstract syntax tree.

    Both code generators of the environment — the bean HAL emitter
    (Processor Expert's role) and the PEERT model-code emitter (RTW's
    role) — build this AST and print it with {!C_print}, instead of
    concatenating strings, so the emitted code is structurally
    well-formed by construction. The subset covers what embedded control
    code needs: integer/float scalars, structs, functions, control flow,
    and volatile hardware registers. *)

type cty =
  | Void
  | Double_t
  | Float_t
  | I8
  | U8
  | I16
  | U16
  | I32
  | U32
  | Named of string  (** typedef/struct reference *)
  | Ptr of cty
  | Arr of cty * int

val cty_of_dtype : Dtype.t -> cty
(** Map a signal data type to its C container type. *)

type expr =
  | Int_lit of int
  | Hex_lit of int
  | Float_lit of float
  | Str_lit of string
  | Var of string
  | Field of expr * string  (** [e.f] *)
  | Arrow of expr * string  (** [e->f] *)
  | Index of expr * expr
  | Call of string * expr list
  | Un of string * expr  (** prefix operator *)
  | Bin of string * expr * expr
  | Cast_to of cty * expr
  | Ternary of expr * expr * expr

type stmt =
  | Expr of expr
  | Decl of cty * string * expr option
  | Assign of expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr option
  | Comment of string
  | Raw of string  (** escape hatch for target idioms (e.g. asm) *)
  | Block of stmt list

type func = {
  ret : cty;
  fname : string;
  args : (cty * string) list;
  body : stmt list;
  fcomment : string option;
  static : bool;
}

type item =
  | Include of string  (** without the angle brackets *)
  | Include_local of string
  | Define of string * string
  | Typedef of cty * string
  | Struct_def of string * (cty * string) list
  | Global of { gty : cty; gname : string; ginit : expr option;
                volatile : bool; static : bool }
  | Func_def of func
  | Proto of func  (** declaration only *)
  | Raw_item of string  (** verbatim C text (support runtimes) *)
  | Item_comment of string

type cunit = { unit_name : string; items : item list }

(** {2 Construction helpers} *)

val int_ : int -> expr
val flt : float -> expr
val var : string -> expr
val call : string -> expr list -> expr
val ( +! ) : expr -> expr -> expr
val ( -! ) : expr -> expr -> expr
val ( *! ) : expr -> expr -> expr
val ( /! ) : expr -> expr -> expr
val ( >>! ) : expr -> int -> expr
val ( <<! ) : expr -> int -> expr
val assign : expr -> expr -> stmt
val func :
  ?static:bool -> ?comment:string -> cty -> string -> (cty * string) list ->
  stmt list -> func
