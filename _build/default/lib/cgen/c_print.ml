open C_ast

let rec string_of_cty = function
  | Void -> "void"
  | Double_t -> "double"
  | Float_t -> "float"
  | I8 -> "int8_t"
  | U8 -> "uint8_t"
  | I16 -> "int16_t"
  | U16 -> "uint16_t"
  | I32 -> "int32_t"
  | U32 -> "uint32_t"
  | Named s -> s
  | Ptr t -> string_of_cty t ^ " *"
  | Arr (t, _) -> string_of_cty t

let decl_string ty name =
  match ty with
  | Arr (t, n) -> Printf.sprintf "%s %s[%d]" (string_of_cty t) name n
  | Ptr t -> Printf.sprintf "%s *%s" (string_of_cty t) name
  | t -> Printf.sprintf "%s %s" (string_of_cty t) name

let float_lit x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

(* Precedence levels (C11 subset), higher binds tighter. *)
let prec_of_bin = function
  | "*" | "/" | "%" -> 10
  | "+" | "-" -> 9
  | "<<" | ">>" -> 8
  | "<" | ">" | "<=" | ">=" -> 7
  | "==" | "!=" -> 6
  | "&" -> 5
  | "^" -> 4
  | "|" -> 3
  | "&&" -> 2
  | "||" -> 1
  | _ -> 0

let rec expr_prec = function
  | Int_lit _ | Hex_lit _ | Float_lit _ | Str_lit _ | Var _ -> 100
  | Field _ | Arrow _ | Index _ | Call _ -> 90
  | Un _ | Cast_to _ -> 80
  | Bin (op, _, _) -> prec_of_bin op
  | Ternary _ -> 0

and expr_to_string e =
  let paren_if cond s = if cond then "(" ^ s ^ ")" else s in
  let sub parent_prec child =
    paren_if (expr_prec child < parent_prec) (expr_to_string child)
  in
  match e with
  | Int_lit n -> string_of_int n
  | Hex_lit n -> Printf.sprintf "0x%XU" n
  | Float_lit x -> float_lit x
  | Str_lit s -> Printf.sprintf "%S" s
  | Var s -> s
  | Field (e, f) -> Printf.sprintf "%s.%s" (sub 90 e) f
  | Arrow (e, f) -> Printf.sprintf "%s->%s" (sub 90 e) f
  | Index (e, i) -> Printf.sprintf "%s[%s]" (sub 90 e) (expr_to_string i)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Un (op, e) -> Printf.sprintf "%s%s" op (sub 80 e)
  | Cast_to (t, e) -> Printf.sprintf "(%s)%s" (string_of_cty t) (sub 80 e)
  | Bin (op, a, b) ->
      let p = prec_of_bin op in
      (* left associative: right child needs parens at equal precedence *)
      Printf.sprintf "%s %s %s" (sub p a) op
        (paren_if (expr_prec b <= p && expr_prec b < 90) (expr_to_string b))
  | Ternary (c, a, b) ->
      Printf.sprintf "%s ? %s : %s" (sub 1 c) (expr_to_string a) (expr_to_string b)

let rec stmt_lines ind s =
  let pad = String.make (2 * ind) ' ' in
  match s with
  | Expr e -> [ pad ^ expr_to_string e ^ ";" ]
  | Decl (ty, name, init) ->
      let d = decl_string ty name in
      [ (match init with
        | Some e -> Printf.sprintf "%s%s = %s;" pad d (expr_to_string e)
        | None -> pad ^ d ^ ";") ]
  | Assign (lhs, rhs) ->
      [ Printf.sprintf "%s%s = %s;" pad (expr_to_string lhs) (expr_to_string rhs) ]
  | If (c, thens, []) ->
      (pad ^ "if (" ^ expr_to_string c ^ ") {")
      :: List.concat_map (stmt_lines (ind + 1)) thens
      @ [ pad ^ "}" ]
  | If (c, thens, elses) ->
      (pad ^ "if (" ^ expr_to_string c ^ ") {")
      :: List.concat_map (stmt_lines (ind + 1)) thens
      @ [ pad ^ "} else {" ]
      @ List.concat_map (stmt_lines (ind + 1)) elses
      @ [ pad ^ "}" ]
  | While (c, body) ->
      (pad ^ "while (" ^ expr_to_string c ^ ") {")
      :: List.concat_map (stmt_lines (ind + 1)) body
      @ [ pad ^ "}" ]
  | For (init, cond, step, body) ->
      let strip_semi l =
        match l with
        | [ s ] when String.length s > 0 && s.[String.length s - 1] = ';' ->
            String.sub s 0 (String.length s - 1)
        | _ -> String.concat " " l
      in
      let i = strip_semi (stmt_lines 0 init) in
      let st = strip_semi (stmt_lines 0 step) in
      (Printf.sprintf "%sfor (%s; %s; %s) {" pad i (expr_to_string cond) st)
      :: List.concat_map (stmt_lines (ind + 1)) body
      @ [ pad ^ "}" ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ pad ^ "return " ^ expr_to_string e ^ ";" ]
  | Comment c -> [ pad ^ "/* " ^ c ^ " */" ]
  | Raw s -> List.map (fun l -> pad ^ l) (String.split_on_char '\n' s)
  | Block body ->
      (pad ^ "{")
      :: List.concat_map (stmt_lines (ind + 1)) body
      @ [ pad ^ "}" ]

let print_stmts ?(indent = 0) stmts =
  String.concat "\n" (List.concat_map (stmt_lines indent) stmts)

let func_sig f =
  let args =
    match f.args with
    | [] -> "void"
    | args -> String.concat ", " (List.map (fun (t, n) -> decl_string t n) args)
  in
  Printf.sprintf "%s%s %s(%s)"
    (if f.static then "static " else "")
    (string_of_cty f.ret) f.fname args

let item_lines = function
  | Include h -> [ Printf.sprintf "#include <%s>" h ]
  | Include_local h -> [ Printf.sprintf "#include \"%s\"" h ]
  | Define (k, v) -> [ Printf.sprintf "#define %s %s" k v ]
  | Typedef (t, n) -> [ Printf.sprintf "typedef %s;" (decl_string t n) ]
  | Struct_def (name, fields) ->
      (Printf.sprintf "typedef struct {")
      :: List.map (fun (t, n) -> "  " ^ decl_string t n ^ ";") fields
      @ [ Printf.sprintf "} %s;" name ]
  | Global { gty; gname; ginit; volatile; static } ->
      let quals =
        (if static then "static " else "") ^ if volatile then "volatile " else ""
      in
      [ (match ginit with
        | Some e ->
            Printf.sprintf "%s%s = %s;" quals (decl_string gty gname)
              (expr_to_string e)
        | None -> Printf.sprintf "%s%s;" quals (decl_string gty gname)) ]
  | Proto f -> [ func_sig f ^ ";" ]
  | Raw_item s -> String.split_on_char '\n' s
  | Func_def f ->
      (match f.fcomment with
      | Some c -> [ "/* " ^ c ^ " */" ]
      | None -> [])
      @ [ func_sig f ^ " {" ]
      @ List.concat_map (stmt_lines 1) f.body
      @ [ "}" ]
  | Item_comment c -> [ "/* " ^ c ^ " */" ]

let print_unit u =
  let header =
    [
      Printf.sprintf "/* File: %s" u.unit_name;
      " * Generated by the ECSD integrated environment (PEERT target).";
      " * Model-derived code -- do not edit by hand. */";
      "";
    ]
  in
  let body = List.concat_map (fun i -> item_lines i @ [ "" ]) u.items in
  String.concat "\n" (header @ body)

let loc s =
  List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))
