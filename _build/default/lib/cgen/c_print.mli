(** C pretty-printer for {!C_ast}. *)

val string_of_cty : C_ast.cty -> string
(** Type name as used in declarations (arrays/pointers are handled by
    {!decl_string}). *)

val decl_string : C_ast.cty -> string -> string
(** Full declarator, e.g. [decl_string (Arr (U16, 4)) "buf"] is
    ["uint16_t buf[4]"]. *)

val expr_to_string : C_ast.expr -> string
(** Expression with minimal but safe parenthesisation. *)

val print_unit : C_ast.cunit -> string
(** Render a full compilation unit with a generated-code banner. *)

val print_stmts : ?indent:int -> C_ast.stmt list -> string

val loc : string -> int
(** Count the source lines of a rendered string (the generated-LoC metric
    of experiment E4). *)
