lib/comm/crc16.ml: Char List String
