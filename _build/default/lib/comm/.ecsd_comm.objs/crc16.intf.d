lib/comm/crc16.mli:
