lib/comm/framer.ml: Crc16 List Packet
