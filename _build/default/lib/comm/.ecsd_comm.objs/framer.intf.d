lib/comm/framer.mli: Packet
