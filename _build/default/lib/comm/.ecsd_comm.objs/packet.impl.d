lib/comm/packet.ml: Crc16 List
