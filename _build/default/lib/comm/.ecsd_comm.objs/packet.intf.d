lib/comm/packet.mli:
