let init = 0xFFFF

let update crc byte =
  let crc = ref (crc lxor (byte lsl 8)) in
  for _ = 1 to 8 do
    crc :=
      if !crc land 0x8000 <> 0 then ((!crc lsl 1) lxor 0x1021) land 0xFFFF
      else (!crc lsl 1) land 0xFFFF
  done;
  !crc

let of_bytes bytes = List.fold_left update init bytes
let of_string s = String.fold_left (fun acc c -> update acc (Char.code c)) init s
