(** CRC-16/CCITT-FALSE, the frame check sequence of the PIL link. *)

val init : int
(** Initial register value (0xFFFF). *)

val update : int -> int -> int
(** [update crc byte] folds one byte (0..255) into the register. *)

val of_bytes : int list -> int
val of_string : string -> int
