(** Receive-side framing state machine.

    Feed it one byte at a time (from the SCI receive interrupt); it
    unstuffs, validates the CRC and delivers whole packets. Malformed
    frames are dropped and counted rather than propagated — on a real
    RS-232 link noise hits are routine. *)

type t

val create : on_packet:(Packet.t -> unit) -> t
val feed : t -> int -> unit
(** Process one received byte. *)

val feed_all : t -> int list -> unit

val crc_errors : t -> int
val dropped_bytes : t -> int
(** Bytes discarded while hunting for a start flag. *)

val packets_ok : t -> int
val reset : t -> unit
