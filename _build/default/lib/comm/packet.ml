type t = { ptype : int; seq : int; payload : int list }

let sof = 0x7E
let esc = 0x7D
let ptype_sensor = 0x01
let ptype_actuator = 0x02
let ptype_event = 0x03
let ptype_sync = 0x04

let check_byte b =
  if b < 0 || b > 255 then invalid_arg "Packet: byte out of range"

let stuff bytes =
  List.concat_map
    (fun b -> if b = sof || b = esc then [ esc; b lxor 0x20 ] else [ b ])
    bytes

let encode t =
  check_byte t.ptype;
  check_byte t.seq;
  List.iter check_byte t.payload;
  let len = List.length t.payload in
  if len > 255 then invalid_arg "Packet.encode: payload too long";
  let body = (t.ptype :: t.seq :: len :: t.payload) in
  let crc = Crc16.of_bytes body in
  let framed = body @ [ (crc lsr 8) land 0xFF; crc land 0xFF ] in
  sof :: stuff framed

let wire_length t = List.length (encode t)

let push_u16 v acc =
  let v = v land 0xFFFF in
  (v land 0xFF) :: ((v lsr 8) land 0xFF) :: acc

let push_u8 v acc = (v land 0xFF) :: acc
let finish_payload acc = List.rev acc

let take_u16 = function
  | hi :: lo :: rest -> (((hi land 0xFF) lsl 8) lor (lo land 0xFF), rest)
  | _ -> invalid_arg "Packet.take_u16: payload too short"

let take_u8 = function
  | b :: rest -> (b land 0xFF, rest)
  | [] -> invalid_arg "Packet.take_u8: payload too short"

let u16_to_signed v = if v land 0x8000 <> 0 then v - 0x10000 else v
let signed_to_u16 v = v land 0xFFFF
