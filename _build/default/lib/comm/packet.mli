(** PIL link packet format.

    An HDLC-style byte framing over the RS-232 line: a start flag, byte
    stuffing for transparency, and a CRC-16 trailer. One packet carries
    one simulation step's worth of signals in each direction (§6: the
    plant and controller "exchange the simulation data at the end of each
    simulation step"). Wire layout before stuffing:

    {v SOF | type | seq | len | payload[len] | crc_hi | crc_lo v} *)

type t = { ptype : int; seq : int; payload : int list }

val sof : int
(** 0x7E frame delimiter. *)

val esc : int
(** 0x7D escape; the following byte is XORed with 0x20. *)

(** Conventional packet types of the PIL protocol: *)

val ptype_sensor : int
(** host -> target: sensor/peripheral inputs. *)

val ptype_actuator : int
(** target -> host: actuator outputs. *)

val ptype_event : int
(** asynchronous event notification. *)

val ptype_sync : int
(** step synchronisation / handshake. *)

val encode : t -> int list
(** Serialise to wire bytes (stuffed, CRC appended).
    @raise Invalid_argument if the payload exceeds 255 bytes or any byte
    is out of 0..255. *)

val wire_length : t -> int
(** Number of wire bytes [encode] produces (the comm-overhead metric). *)

(** {2 Payload packing helpers (big endian)} *)

val push_u16 : int -> int list -> int list
(** Prepend a 16-bit value (two bytes) onto an accumulator list kept in
    reverse order; use with {!finish_payload}. *)

val push_u8 : int -> int list -> int list
val finish_payload : int list -> int list
(** Reverse the accumulator into payload order. *)

val take_u16 : int list -> int * int list
(** Pop a 16-bit big-endian value. @raise Invalid_argument if short. *)

val take_u8 : int list -> int * int list
val u16_to_signed : int -> int
(** Reinterpret a 16-bit value as two's-complement. *)

val signed_to_u16 : int -> int
