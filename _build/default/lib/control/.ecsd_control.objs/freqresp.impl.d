lib/control/freqresp.ml: Array Complex Float List Printf Ztransfer
