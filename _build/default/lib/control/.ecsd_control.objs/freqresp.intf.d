lib/control/freqresp.mli: Complex Ztransfer
