lib/control/metrics.ml: Float List Stdlib
