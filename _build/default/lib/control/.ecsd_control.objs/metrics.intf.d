lib/control/metrics.mli:
