lib/control/pid.ml: Fixed Float Qformat
