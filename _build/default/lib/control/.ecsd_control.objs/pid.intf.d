lib/control/pid.mli: Qformat
