lib/control/stability.ml: Array Complex Float List Stdlib Ztransfer
