lib/control/stability.mli: Complex Ztransfer
