lib/control/tuning.ml: Array Complex Dc_motor Float Stability Stdlib Ztransfer
