lib/control/tuning.mli: Dc_motor Ztransfer
