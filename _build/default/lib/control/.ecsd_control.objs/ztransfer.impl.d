lib/control/ztransfer.ml: Array Float List
