lib/control/ztransfer.mli:
