let eval tf ~ts ~w =
  if ts <= 0.0 then invalid_arg "Freqresp.eval: ts";
  let nyquist = Float.pi /. ts in
  if w <= 0.0 || w >= nyquist then
    invalid_arg
      (Printf.sprintf "Freqresp.eval: w = %g rad/s outside (0, %g)" w nyquist);
  let open Complex in
  let z = exp { re = 0.0; im = w *. ts } in
  (* evaluate num/den in powers of z^-1 *)
  let horner coeffs =
    Array.fold_left (fun acc c -> add (div acc z) { re = c; im = 0.0 })
      zero (coeffs : float array)
  in
  (* descending z^-1 coefficients: c0 + c1 z^-1 + ...; Horner needs the
     reverse order *)
  let horner_zinv coeffs =
    let n = Array.length coeffs in
    let rev = Array.init n (fun i -> coeffs.(n - 1 - i)) in
    horner rev
  in
  div (horner_zinv (Ztransfer.num tf)) (horner_zinv (Ztransfer.den tf))

let magnitude_db tf ~ts ~w = 20.0 *. log10 (Complex.norm (eval tf ~ts ~w))

let phase_deg tf ~ts ~w =
  let p = Complex.arg (eval tf ~ts ~w) *. 180.0 /. Float.pi in
  (* unwrap into (-360, 0] so margins read conventionally *)
  if p > 0.0 then p -. 360.0 else p

let bode tf ~ts ?(n = 200) ?(w_min = 0.1) ?w_max () =
  let w_max =
    match w_max with Some w -> w | None -> 0.95 *. Float.pi /. ts
  in
  if w_min <= 0.0 || w_max <= w_min then invalid_arg "Freqresp.bode: range";
  let ratio = (w_max /. w_min) ** (1.0 /. float_of_int (n - 1)) in
  List.init n (fun i ->
      let w = w_min *. (ratio ** float_of_int i) in
      (w, magnitude_db tf ~ts ~w, phase_deg tf ~ts ~w))

type margins = {
  gain_margin_db : float;
  phase_margin_deg : float;
  gain_crossover : float;
  phase_crossover : float;
}

(* Locate a sign change of [f] on a log grid, then bisect. *)
let find_crossing f ~w_min ~w_max =
  let n = 400 in
  let ratio = (w_max /. w_min) ** (1.0 /. float_of_int (n - 1)) in
  let rec scan i prev_w prev_v =
    if i >= n then None
    else
      let w = w_min *. (ratio ** float_of_int i) in
      let v = f w in
      if prev_v *. v <= 0.0 && Float.is_finite prev_v && Float.is_finite v then
        Some (prev_w, w)
      else scan (i + 1) w v
  in
  match scan 1 w_min (f w_min) with
  | None -> None
  | Some (lo0, hi0) ->
      let rec bisect lo hi k =
        if k = 0 then sqrt (lo *. hi)
        else
          let mid = sqrt (lo *. hi) in
          if f lo *. f mid <= 0.0 then bisect lo mid (k - 1)
          else bisect mid hi (k - 1)
      in
      Some (bisect lo0 hi0 60)

let margins ~loop ~ts =
  let w_min = 1e-2 and w_max = 0.999 *. Float.pi /. ts in
  let mag w = magnitude_db loop ~ts ~w in
  let ph w = phase_deg loop ~ts ~w +. 180.0 in
  let gain_crossover = find_crossing mag ~w_min ~w_max in
  let phase_crossover = find_crossing ph ~w_min ~w_max in
  {
    gain_margin_db =
      (match phase_crossover with Some w -> -.mag w | None -> infinity);
    phase_margin_deg =
      (match gain_crossover with Some w -> ph w | None -> infinity);
    gain_crossover = (match gain_crossover with Some w -> w | None -> nan);
    phase_crossover = (match phase_crossover with Some w -> w | None -> nan);
  }
