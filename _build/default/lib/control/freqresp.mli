(** Frequency response of discrete transfer functions.

    The classical loop-shaping view of the controllers this environment
    designs: evaluate H(e^{jwT}), produce Bode data, and compute the gain
    and phase margins of a unity-feedback loop — the "stability" column
    of the requirements the paper's introduction enumerates. *)

val eval : Ztransfer.t -> ts:float -> w:float -> Complex.t
(** H(e^{jwT}) at angular frequency [w] (rad/s).
    @raise Invalid_argument for [w] at or beyond the Nyquist rate. *)

val magnitude_db : Ztransfer.t -> ts:float -> w:float -> float
val phase_deg : Ztransfer.t -> ts:float -> w:float -> float
(** Unwrapped into (-360, 0] for typical lag-dominant loops. *)

val bode :
  Ztransfer.t -> ts:float -> ?n:int -> ?w_min:float -> ?w_max:float -> unit ->
  (float * float * float) list
(** Logarithmically spaced [(w, mag_db, phase_deg)] triples; default 200
    points from [w_min] (default 0.1 rad/s) up to [w_max] (default 95 %
    of Nyquist). *)

type margins = {
  gain_margin_db : float;
      (** margin at the phase crossover; [infinity] when the phase never
          reaches -180 deg *)
  phase_margin_deg : float;
      (** margin at the gain crossover; [infinity] when the loop gain
          never crosses 0 dB *)
  gain_crossover : float;  (** rad/s; [nan] when absent *)
  phase_crossover : float;  (** rad/s; [nan] when absent *)
}

val margins : loop:Ztransfer.t -> ts:float -> margins
(** Margins of the open-loop transfer function [loop] (controller x
    plant) under unity feedback, located by bisection on a log grid. *)
