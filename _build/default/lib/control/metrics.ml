type step_info = {
  rise_time : float;
  overshoot : float;
  settling_time : float;
  peak : float;
  peak_time : float;
  steady_state_error : float;
}

let step_info ?(band = 0.02) ~sp ?(y0 = 0.0) traj =
  if traj = [] then invalid_arg "Metrics.step_info: empty trajectory";
  let step_size = sp -. y0 in
  if step_size = 0.0 then invalid_arg "Metrics.step_info: zero step";
  let t0 = fst (List.hd traj) in
  (* Normalise so the step goes 0 -> 1 regardless of direction. *)
  let norm y = (y -. y0) /. step_size in
  let rise_10 = ref nan and rise_90 = ref nan in
  let peak = ref neg_infinity and peak_time = ref t0 in
  let settle = ref nan in
  let band_lo = 1.0 -. band and band_hi = 1.0 +. band in
  List.iter
    (fun (t, y) ->
      let yn = norm y in
      if Float.is_nan !rise_10 && yn >= 0.1 then rise_10 := t;
      if Float.is_nan !rise_90 && yn >= 0.9 then rise_90 := t;
      if yn > !peak then begin
        peak := yn;
        peak_time := t
      end;
      if yn < band_lo || yn > band_hi then settle := nan
      else if Float.is_nan !settle then settle := t)
    traj;
  let n = List.length traj in
  let tail = List.filteri (fun i _ -> i >= n - Stdlib.max 1 (n / 10)) traj in
  let final_mean =
    List.fold_left (fun acc (_, y) -> acc +. y) 0.0 tail
    /. float_of_int (List.length tail)
  in
  {
    rise_time =
      (if Float.is_nan !rise_10 || Float.is_nan !rise_90 then nan
       else !rise_90 -. !rise_10);
    overshoot = Float.max 0.0 (!peak -. 1.0);
    settling_time = (if Float.is_nan !settle then nan else !settle -. t0);
    peak = y0 +. (!peak *. step_size);
    peak_time = !peak_time;
    steady_state_error = Float.abs (sp -. final_mean);
  }

let integral f traj =
  (* Trapezoidal integration of f(t, y) over the trajectory. *)
  let rec go acc = function
    | (t0, y0) :: ((t1, y1) :: _ as rest) ->
        let a = f t0 y0 and b = f t1 y1 in
        go (acc +. ((t1 -. t0) *. (a +. b) /. 2.0)) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 traj

let iae ~sp traj = integral (fun t y -> Float.abs (sp t -. y)) traj
let ise ~sp traj = integral (fun t y -> (sp t -. y) ** 2.0) traj
let itae ~sp traj = integral (fun t y -> t *. Float.abs (sp t -. y)) traj

let max_deviation t1 t2 =
  let rec go acc l1 l2 =
    match (l1, l2) with
    | (_, y1) :: r1, (_, y2) :: r2 -> go (Float.max acc (Float.abs (y1 -. y2))) r1 r2
    | _, [] | [], _ -> acc
  in
  go 0.0 t1 t2

let diverged ?(limit = 1e6) traj =
  List.exists (fun (_, y) -> Float.is_nan y || Float.abs y > limit) traj
