(** Control-performance metrics.

    The paper motivates tools that capture "the control performance (e.g.
    rise time, overshoot, and stability)" (§1); these are the quantities
    tabulated by the experiment harness for every closed-loop run. A run is
    a sampled trajectory [(t, y)] with a known set-point. *)

type step_info = {
  rise_time : float;  (** 10 %–90 % rise time, s; [nan] if never reached *)
  overshoot : float;  (** peak overshoot as a fraction of the step size *)
  settling_time : float;
      (** first time after which the response stays within the settling
          band; [nan] if it never settles *)
  peak : float;
  peak_time : float;
  steady_state_error : float;
      (** |sp - mean of the final 10 % of the trajectory| *)
}

val step_info :
  ?band:float -> sp:float -> ?y0:float -> (float * float) list -> step_info
(** Analyse a step response from initial value [y0] (default 0) to
    set-point [sp]. [band] is the settling band as a fraction of the step
    size (default 0.02). @raise Invalid_argument on an empty trajectory. *)

val iae : sp:(float -> float) -> (float * float) list -> float
(** Integral of absolute error, trapezoidal, against a possibly
    time-varying set-point. *)

val ise : sp:(float -> float) -> (float * float) list -> float
(** Integral of squared error. *)

val itae : sp:(float -> float) -> (float * float) list -> float
(** Time-weighted integral of absolute error. *)

val max_deviation : (float * float) list -> (float * float) list -> float
(** Largest pointwise |y1 - y2| between two trajectories sampled at the
    same instants (compared index-wise over the common prefix); the
    MIL-vs-PIL and float-vs-fixed fidelity measure. *)

val diverged : ?limit:float -> (float * float) list -> bool
(** True when the trajectory exceeds [limit] in magnitude or becomes
    non-finite — the instability detector of experiment E6. Default limit
    1e6. *)
