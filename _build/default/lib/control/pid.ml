type gains = {
  kp : float;
  ki : float;
  kd : float;
  n : float;
  u_min : float;
  u_max : float;
}

let gains ?(kd = 0.0) ?(n = 100.0) ?(u_min = neg_infinity)
    ?(u_max = infinity) ~kp ~ki () =
  { kp; ki; kd; n; u_min; u_max }

type t = {
  g : gains;
  ts : float;
  mutable integ : float;
  mutable e_prev : float;
  mutable d_prev : float;
}

let create ~ts g =
  if ts <= 0.0 then invalid_arg "Pid.create: ts must be positive";
  { g; ts; integ = 0.0; e_prev = 0.0; d_prev = 0.0 }

let reset t =
  t.integ <- 0.0;
  t.e_prev <- 0.0;
  t.d_prev <- 0.0

let ts t = t.ts
let gains_of t = t.g

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* Filtered derivative, backward Euler:
   u_d,k = (u_d,k-1 + Kd*N*(e_k - e_k-1)) / (1 + N*Ts); with n = 0 it
   degenerates to the unfiltered difference quotient. *)
let derivative t e =
  let g = t.g in
  if g.kd = 0.0 then 0.0
  else if g.n = 0.0 then g.kd *. (e -. t.e_prev) /. t.ts
  else (t.d_prev +. (g.kd *. g.n *. (e -. t.e_prev))) /. (1.0 +. (g.n *. t.ts))

let step t ~sp ~pv =
  let g = t.g in
  let e = sp -. pv in
  let d = derivative t e in
  let u_unsat = (g.kp *. e) +. t.integ +. d in
  let saturating_up = u_unsat > g.u_max && e > 0.0 in
  let saturating_down = u_unsat < g.u_min && e < 0.0 in
  if not (saturating_up || saturating_down) then
    t.integ <- t.integ +. (g.ki *. t.ts *. e);
  t.e_prev <- e;
  t.d_prev <- d;
  clamp g.u_min g.u_max u_unsat

module Fixpoint = struct
  type fx = {
    gf : gains;
    tsf : float;
    sig_fmt : Qformat.t;
    acc_fmt : Qformat.t;
    in_scale : float;
    out_scale : float;
    kp_q : Fixed.t;
    ki_ts_q : Fixed.t;
    kd_c1_q : Fixed.t;  (* Kd*N/(1+N*Ts), or Kd/Ts when n = 0 *)
    d_decay_q : Fixed.t;  (* 1/(1+N*Ts) *)
    u_min_q : Fixed.t;
    u_max_q : Fixed.t;
    mutable integ_q : Fixed.t;
    mutable e_prev_q : Fixed.t;
    mutable d_prev_q : Fixed.t;
  }

  (* Coefficients and accumulators live in a 32-bit 16.16 format so that
     gains above 1.0 remain representable while signals stay in the narrow
     native format (Q15 on the MC56F8367). *)
  let coef_fmt = Qformat.sfix 32 16

  let create ~ts ~fmt ~in_scale ~out_scale g =
    if ts <= 0.0 then invalid_arg "Pid.Fixpoint.create: ts";
    if in_scale <= 0.0 || out_scale <= 0.0 then
      invalid_arg "Pid.Fixpoint.create: scales must be positive";
    let qc x = Fixed.of_float coef_fmt x in
    (* The controller consumes normalised signals: e_norm = e / in_scale,
       u_norm = u / out_scale. Gains are rescaled accordingly. *)
    let k = in_scale /. out_scale in
    let kd_c1 =
      if g.kd = 0.0 then 0.0
      else if g.n = 0.0 then g.kd /. ts
      else g.kd *. g.n /. (1.0 +. (g.n *. ts))
    in
    {
      gf = g;
      tsf = ts;
      sig_fmt = fmt;
      acc_fmt = coef_fmt;
      in_scale;
      out_scale;
      kp_q = qc (g.kp *. k);
      ki_ts_q = qc (g.ki *. ts *. k);
      kd_c1_q = qc (kd_c1 *. k);
      d_decay_q = qc (if g.n = 0.0 then 0.0 else 1.0 /. (1.0 +. (g.n *. ts)));
      u_min_q = qc (Float.max (-2.0) (g.u_min /. out_scale));
      u_max_q = qc (Float.min 2.0 (g.u_max /. out_scale));
      integ_q = Fixed.zero coef_fmt;
      e_prev_q = Fixed.zero fmt;
      d_prev_q = Fixed.zero coef_fmt;
    }

  let reset f =
    f.integ_q <- Fixed.zero f.acc_fmt;
    f.e_prev_q <- Fixed.zero f.sig_fmt;
    f.d_prev_q <- Fixed.zero f.acc_fmt

  let step f ~sp ~pv =
    let e_q = Fixed.of_float f.sig_fmt ((sp -. pv) /. f.in_scale) in
    let p_q = Fixed.mul_to f.acc_fmt f.kp_q e_q in
    let d_q =
      if Fixed.raw f.kd_c1_q = 0 then Fixed.zero f.acc_fmt
      else
        let de = Fixed.sub (Fixed.convert f.acc_fmt e_q)
            (Fixed.convert f.acc_fmt f.e_prev_q) in
        let raw_d = Fixed.mul_to f.acc_fmt f.kd_c1_q de in
        if Fixed.raw f.d_decay_q = 0 then raw_d
        else Fixed.add (Fixed.mul f.d_prev_q f.d_decay_q) raw_d
    in
    let u_unsat = Fixed.add (Fixed.add p_q f.integ_q) d_q in
    let saturating_up = Fixed.compare u_unsat f.u_max_q > 0 && Fixed.raw e_q > 0 in
    let saturating_down = Fixed.compare u_unsat f.u_min_q < 0 && Fixed.raw e_q < 0 in
    if not (saturating_up || saturating_down) then
      f.integ_q <- Fixed.add f.integ_q (Fixed.mul_to f.acc_fmt f.ki_ts_q e_q);
    f.e_prev_q <- e_q;
    f.d_prev_q <- d_q;
    let u_q = Fixed.min (Fixed.max u_unsat f.u_min_q) f.u_max_q in
    Fixed.to_float u_q *. f.out_scale

  type raw_coefficients = {
    kp_raw : int;
    ki_ts_raw : int;
    kd_c1_raw : int;
    d_decay_raw : int;
    u_min_raw : int;
    u_max_raw : int;
    coef_frac_bits : int;
    sig_frac_bits : int;
  }

  let raw_coefficients f =
    {
      kp_raw = Fixed.raw f.kp_q;
      ki_ts_raw = Fixed.raw f.ki_ts_q;
      kd_c1_raw = Fixed.raw f.kd_c1_q;
      d_decay_raw = Fixed.raw f.d_decay_q;
      u_min_raw = Fixed.raw f.u_min_q;
      u_max_raw = Fixed.raw f.u_max_q;
      coef_frac_bits = coef_fmt.Qformat.frac_bits;
      sig_frac_bits = f.sig_fmt.Qformat.frac_bits;
    }

  let quantized_gains f =
    let k = f.in_scale /. f.out_scale in
    ( Fixed.to_float f.kp_q /. k,
      Fixed.to_float f.ki_ts_q /. f.tsf /. k,
      (* report the realised Kd through the inverse of the c1 mapping *)
      (if f.gf.kd = 0.0 then 0.0
       else if f.gf.n = 0.0 then Fixed.to_float f.kd_c1_q *. f.tsf /. k
       else
         Fixed.to_float f.kd_c1_q /. k
         *. (1.0 +. (f.gf.n *. f.tsf))
         /. f.gf.n) )
end
