(** Discrete PID controller with anti-windup.

    The controller form used throughout the case study: parallel PID with
    derivative filtering and back-calculation anti-windup, discretised with
    backward Euler at sample period [ts]:

    {v u = Kp*e + Ki*Ts*sum(e) + Kd/Ts*(ef - ef_prev) v}

    Both a floating-point and a Q15 fixed-point execution of the very same
    gains are provided so that experiment E2 can compare them on equal
    terms. *)

type gains = {
  kp : float;
  ki : float;  (** integral gain (1/s) *)
  kd : float;  (** derivative gain (s) *)
  n : float;  (** derivative filter coefficient; the filtered derivative
                  pole is at [n] rad/s. 0 disables filtering. *)
  u_min : float;
  u_max : float;  (** actuator saturation limits, for anti-windup *)
}

val gains : ?kd:float -> ?n:float -> ?u_min:float -> ?u_max:float ->
  kp:float -> ki:float -> unit -> gains
(** Build gains; defaults: [kd = 0], [n = 100], limits infinite. *)

type t
(** Mutable controller state (integrator + derivative filter memory). *)

val create : ts:float -> gains -> t
val reset : t -> unit
val ts : t -> float
val gains_of : t -> gains

val step : t -> sp:float -> pv:float -> float
(** One control period: set-point [sp], process value [pv]; returns the
    saturated actuator command. Anti-windup by conditional integration. *)

(** Fixed-point execution of the same law. Signals are scaled so that the
    physical range [(-scale, +scale)] maps onto the fixed-point range
    [(-1, 1)]; on a 16-bit DSP this is the native Q15 regime. *)
module Fixpoint : sig
  type fx

  val create :
    ts:float -> fmt:Qformat.t -> in_scale:float -> out_scale:float ->
    gains -> fx
  (** [in_scale] normalises [sp]/[pv], [out_scale] denormalises the
      command. Gains are quantised to [fmt] at build time, exactly as the
      code generator bakes them into flash constants. *)

  val reset : fx -> unit

  val step : fx -> sp:float -> pv:float -> float
  (** Physical-unit interface; all internal arithmetic is fixed-point with
      saturation, matching the generated C code operation for
      operation. *)

  val quantized_gains : fx -> float * float * float
  (** The [kp, ki, kd] values actually realised after quantisation. *)

  type raw_coefficients = {
    kp_raw : int;
    ki_ts_raw : int;
    kd_c1_raw : int;
    d_decay_raw : int;
    u_min_raw : int;
    u_max_raw : int;
    coef_frac_bits : int;  (** fractional bits of the coefficient format *)
    sig_frac_bits : int;  (** fractional bits of the signal format *)
  }

  val raw_coefficients : fx -> raw_coefficients
  (** The integer constants the code generator bakes into the generated
      fixed-point controller, guaranteeing bit-exact agreement between
      simulation and target code. *)
end
