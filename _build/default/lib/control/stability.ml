let jury den =
  let n = Array.length den - 1 in
  if n < 1 then invalid_arg "Stability.jury: degree must be >= 1";
  if den.(0) = 0.0 then invalid_arg "Stability.jury: zero leading coefficient";
  (* Schur-Cohn recursion on ascending-power coefficients: p is stable iff
     |c0| < |cn| and the degree-reduced polynomial
     q(z) = (cn*p(z) - c0*rev(p)(z)) / z is stable. *)
  let ascending = Array.of_list (List.rev (Array.to_list den)) in
  let rec stable c =
    let deg = Array.length c - 1 in
    if deg = 0 then true
    else
      let c0 = c.(0) and cn = c.(deg) in
      if Float.abs c0 >= Float.abs cn then false
      else
        let q =
          Array.init deg (fun i -> (cn *. c.(i + 1)) -. (c0 *. c.(deg - 1 - i)))
        in
        stable q
  in
  stable ascending

(* Durand-Kerner (Weierstrass) simultaneous root iteration. *)
let poly_roots coeffs =
  let n = Array.length coeffs - 1 in
  if n < 1 then [||]
  else begin
    let open Complex in
    let c = Array.map (fun x -> { re = x; im = 0.0 }) coeffs in
    let lead = c.(0) in
    let c = Array.map (fun x -> div x lead) c in
    let eval z =
      Array.fold_left (fun acc ck -> add (mul acc z) ck) zero c
    in
    (* Start from non-real, non-root-of-unity points. *)
    let seed = { re = 0.4; im = 0.9 } in
    let roots = Array.init n (fun i -> pow seed { re = float_of_int (i + 1); im = 0.0 }) in
    for _iter = 1 to 200 do
      for i = 0 to n - 1 do
        let denom = ref one in
        for j = 0 to n - 1 do
          if j <> i then denom := mul !denom (sub roots.(i) roots.(j))
        done;
        if norm !denom > 1e-30 then
          roots.(i) <- sub roots.(i) (div (eval roots.(i)) !denom)
      done
    done;
    roots
  end

let poly_roots_magnitude coeffs =
  let roots = poly_roots coeffs in
  Array.fold_left (fun acc r -> Float.max acc (Complex.norm r)) 0.0 roots

let closed_loop_stable ~plant ~controller =
  (* Characteristic polynomial of the unity feedback loop:
     den_c * den_p + num_c * num_p, built over z^-1 coefficients then
     interpreted as a z-polynomial of the combined order. *)
  let conv a b =
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb - 1) 0.0 in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        r.(i + j) <- r.(i + j) +. (a.(i) *. b.(j))
      done
    done;
    r
  in
  let open Ztransfer in
  let dd = conv (den controller) (den plant) in
  let nn = conv (num controller) (num plant) in
  let len = Stdlib.max (Array.length dd) (Array.length nn) in
  let get a i = if i < Array.length a then a.(i) else 0.0 in
  let char_poly = Array.init len (fun i -> get dd i +. get nn i) in
  jury char_poly
