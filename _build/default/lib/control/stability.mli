(** Discrete-time stability analysis.

    Used by experiment E6 to confirm analytically that the latency/jitter
    sweep crosses a true stability boundary, and by the design tools to
    validate controller discretisations. *)

val jury : float array -> bool
(** [jury den] applies the Jury criterion to a z-polynomial given in
    descending powers; true iff all roots lie strictly inside the unit
    circle. @raise Invalid_argument on degree < 1 or zero leading
    coefficient. *)

val poly_roots : float array -> Complex.t array
(** All roots of a real polynomial (descending powers) by Durand–Kerner
    simultaneous iteration. *)

val poly_roots_magnitude : float array -> float
(** Largest root magnitude of a real polynomial (descending powers),
    computed numerically via companion-matrix power iteration on the
    dominant eigenvalue; a cross-check oracle for {!jury} in tests. *)

val closed_loop_stable :
  plant:Ztransfer.t -> controller:Ztransfer.t -> bool
(** Stability of the unity-feedback loop [C*P / (1 + C*P)] via Jury on the
    closed-loop characteristic polynomial. *)
