let pi_for_first_order ~k ~tau ?closed_loop_tau () =
  if k = 0.0 then invalid_arg "Tuning.pi_for_first_order: zero gain";
  let lambda = match closed_loop_tau with Some l -> l | None -> tau /. 3.0 in
  (* IMC-PI: C(s) = (tau s + 1) / (k lambda s)  =>  kp = tau/(k lambda),
     ki = 1/(k lambda). *)
  let kp = tau /. (k *. lambda) in
  let ki = 1.0 /. (k *. lambda) in
  (kp, ki)

let pi_for_dc_motor_speed p ?closed_loop_tau () =
  let open Dc_motor in
  (* Voltage-to-speed DC gain and the mechanical time constant of the
     reduced first-order model (electrical pole neglected). *)
  let k = p.kt /. ((p.ra *. p.b) +. (p.ke *. p.kt)) in
  let tau = mechanical_time_constant p in
  pi_for_first_order ~k ~tau ?closed_loop_tau ()

let ziegler_nichols_pid ~ku ~tu =
  if ku <= 0.0 || tu <= 0.0 then invalid_arg "Tuning.ziegler_nichols_pid";
  let kp = 0.6 *. ku in
  let ti = tu /. 2.0 and td = tu /. 8.0 in
  (kp, kp /. ti, kp *. td)

let ultimate_gain ~plant ?(k_max = 1e4) ?(step = 1.1) () =
  let stable k =
    let controller = Ztransfer.create ~num:[| k |] ~den:[| 1.0 |] in
    Stability.closed_loop_stable ~plant ~controller
  in
  if not (stable 1e-6) then Some (0.0, 0.0)
  else begin
    (* Geometric sweep to bracket the boundary, then bisection. *)
    let rec sweep k = if k > k_max then None
      else if not (stable k) then Some k
      else sweep (k *. step)
    in
    match sweep 1e-6 with
    | None -> None
    | Some hi0 ->
        let rec bisect lo hi n =
          if n = 0 then (lo, hi)
          else
            let mid = (lo +. hi) /. 2.0 in
            if stable mid then bisect mid hi (n - 1) else bisect lo mid (n - 1)
        in
        let lo, hi = bisect (hi0 /. step) hi0 60 in
        let ku = (lo +. hi) /. 2.0 in
        (* Oscillation period from the dominant closed-loop root angle just
           past the boundary. *)
        let controller = Ztransfer.create ~num:[| hi |] ~den:[| 1.0 |] in
        let conv a b =
          let la = Array.length a and lb = Array.length b in
          let r = Array.make (la + lb - 1) 0.0 in
          for i = 0 to la - 1 do
            for j = 0 to lb - 1 do
              r.(i + j) <- r.(i + j) +. (a.(i) *. b.(j))
            done
          done;
          r
        in
        let open Ztransfer in
        let dd = conv (den controller) (den plant) in
        let nn = conv (num controller) (num plant) in
        let len = Stdlib.max (Array.length dd) (Array.length nn) in
        let get a i = if i < Array.length a then a.(i) else 0.0 in
        let char_poly = Array.init len (fun i -> get dd i +. get nn i) in
        let roots = Stability.poly_roots char_poly in
        let dominant =
          Array.fold_left
            (fun acc r -> if Complex.norm r > Complex.norm acc then r else acc)
            Complex.zero roots
        in
        let angle = Float.abs (Complex.arg dominant) in
        let tu = if angle < 1e-9 then infinity else 2.0 *. Float.pi /. angle in
        Some (ku, tu)
  end
