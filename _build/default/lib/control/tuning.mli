(** Controller tuning rules.

    Closed-form PI/PID designs for the plants of the examples, standing in
    for the manual Simulink tuning loop of the paper's development cycle. *)

val pi_for_first_order :
  k:float -> tau:float -> ?closed_loop_tau:float -> unit -> float * float
(** Internal-model-control PI design for a first-order plant
    [k / (tau s + 1)]: returns [(kp, ki)]. [closed_loop_tau] defaults to
    [tau / 3] (a moderately aggressive loop). *)

val pi_for_dc_motor_speed :
  Dc_motor.params -> ?closed_loop_tau:float -> unit -> float * float
(** PI speed-loop design from the motor's voltage-to-speed DC gain and
    mechanical time constant (the electrical pole is neglected, being two
    orders of magnitude faster). *)

val ziegler_nichols_pid : ku:float -> tu:float -> float * float * float
(** Classic closed-loop Ziegler–Nichols rules from the ultimate gain and
    period: returns [(kp, ki, kd)]. *)

val ultimate_gain :
  plant:Ztransfer.t -> ?k_max:float -> ?step:float -> unit ->
  (float * float) option
(** Numeric search for the ultimate (marginal-stability) proportional gain
    of a unity-feedback loop; returns [(ku, tu)] with [tu] the oscillation
    period in {e samples} (multiply by the sample period for seconds),
    derived from the dominant closed-loop root angle at the marginal gain.
    [None] when the loop stays stable up to [k_max]. *)
