type t = { num : float array; den : float array }

let create ~num ~den =
  if Array.length den = 0 then invalid_arg "Ztransfer.create: empty den";
  if den.(0) = 0.0 then invalid_arg "Ztransfer.create: zero leading den";
  if Array.length num > Array.length den then
    invalid_arg "Ztransfer.create: non-causal (num longer than den)";
  let n = Array.length den in
  let lead = den.(0) in
  let den = Array.map (fun c -> c /. lead) den in
  let num =
    Array.init n (fun i ->
        if i < Array.length num then num.(i) /. lead else 0.0)
  in
  { num; den }

let order t = Array.length t.den - 1
let num t = Array.copy t.num
let den t = Array.copy t.den

type state = float array ref
(* Direct form II transposed delay line, length = order. *)

let init t = ref (Array.make (order t) 0.0)
let reset s = Array.fill !s 0 (Array.length !s) 0.0

let step t s u =
  let w = !s in
  let n = Array.length w in
  let y = (t.num.(0) *. u) +. if n > 0 then w.(0) else 0.0 in
  for i = 0 to n - 1 do
    let next = if i + 1 < n then w.(i + 1) else 0.0 in
    w.(i) <- next +. (t.num.(i + 1) *. u) -. (t.den.(i + 1) *. y)
  done;
  y

let response t inputs =
  let s = init t in
  List.map (step t s) inputs

let dc_gain t =
  let sum a = Array.fold_left ( +. ) 0.0 a in
  let d = sum t.den in
  if Float.abs d < 1e-12 then infinity else sum t.num /. d

(* Polynomial helpers over descending-power coefficient arrays. *)
let poly_mul a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb - 1) 0.0 in
  for i = 0 to la - 1 do
    for j = 0 to lb - 1 do
      r.(i + j) <- r.(i + j) +. (a.(i) *. b.(j))
    done
  done;
  r

let poly_pow p k =
  let rec go acc k = if k = 0 then acc else go (poly_mul acc p) (k - 1) in
  go [| 1.0 |] k

let poly_add_scaled dst src scale =
  (* dst and src are descending-power; align at the low-order end. *)
  let ld = Array.length dst and ls = Array.length src in
  let r = Array.copy dst in
  for i = 0 to ls - 1 do
    let di = ld - ls + i in
    r.(di) <- r.(di) +. (scale *. src.(i))
  done;
  r

let tustin ~num_s ~den_s ~ts =
  if ts <= 0.0 then invalid_arg "Ztransfer.tustin: ts";
  let n = Array.length den_s - 1 in
  if n < 0 || den_s = [||] then invalid_arg "Ztransfer.tustin: empty den";
  if n > 4 then invalid_arg "Ztransfer.tustin: order > 4 unsupported";
  if Array.length num_s > Array.length den_s then
    invalid_arg "Ztransfer.tustin: improper transfer function";
  let c = 2.0 /. ts in
  let zm1 = [| 1.0; -1.0 |] (* z - 1 *) and zp1 = [| 1.0; 1.0 |] (* z + 1 *) in
  (* s^k -> c^k (z-1)^k (z+1)^(n-k); every term padded to degree n in z. *)
  let substitute coeffs =
    let len = Array.length coeffs in
    let acc = ref (Array.make (n + 1) 0.0) in
    Array.iteri
      (fun idx a ->
        (* coefficient of s^(len-1-idx) *)
        let k = len - 1 - idx in
        let term = poly_mul (poly_pow zm1 k) (poly_pow zp1 (n - k)) in
        let scaled = Array.map (fun x -> x *. (c ** float_of_int k)) term in
        acc := poly_add_scaled !acc scaled a)
      coeffs;
    !acc
  in
  create ~num:(substitute num_s) ~den:(substitute den_s)

let zoh_first_order ~k ~tau ~ts =
  if tau <= 0.0 || ts <= 0.0 then invalid_arg "Ztransfer.zoh_first_order";
  let a = exp (-.ts /. tau) in
  create ~num:[| 0.0; k *. (1.0 -. a) |] ~den:[| 1.0; -.a |]
