(** Discrete (z-domain) SISO transfer functions.

    Building block of both the controller library (the model's
    TransferFcn block) and of controller discretisation. A transfer
    function is kept in direct form II transposed, the structure the code
    generator also emits:

    {v H(z) = (b0 + b1 z^-1 + ... + bn z^-n) / (1 + a1 z^-1 + ... + an z^-n) v} *)

type t

val create : num:float array -> den:float array -> t
(** [create ~num ~den] with [den.(0)] the leading coefficient, which must
    be non-zero; coefficients are normalised so it becomes 1.
    @raise Invalid_argument on an empty or zero-leading denominator or
    [num] longer than [den] (non-causal). *)

val order : t -> int
val num : t -> float array
(** Normalised numerator, padded to [order + 1] coefficients. *)

val den : t -> float array
(** Normalised denominator, [1.0] first. *)

type state

val init : t -> state
val reset : state -> unit
val step : t -> state -> float -> float
(** Feed one input sample, produce one output sample. *)

val response : t -> float list -> float list
(** Zero-state response to an input sequence. *)

val dc_gain : t -> float
(** H(1); [infinity] on an integrating system. *)

val tustin : num_s:float array -> den_s:float array -> ts:float -> t
(** Bilinear (Tustin) discretisation of a continuous transfer function
    given by descending-power s-polynomials. Supported up to order 4. *)

val zoh_first_order : k:float -> tau:float -> ts:float -> t
(** Exact zero-order-hold discretisation of [k / (tau s + 1)]. *)
