lib/core/pe_workspace.ml: Bean Bean_project Block Hashtbl List Model Option Param Periph_blocks Printf Sample_time String
