lib/core/pe_workspace.mli: Bean Bean_project Mcu_db Model
