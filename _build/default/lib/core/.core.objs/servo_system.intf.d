lib/core/servo_system.mli: Bean_project Dc_motor Load_profile Mcu_db Model Pid Pil_cosim
