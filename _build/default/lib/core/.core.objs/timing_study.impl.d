lib/core/timing_study.ml: Dc_motor Float Int64 List Metrics Pid Stats Tuning
