lib/core/timing_study.mli: Dc_motor Pid
