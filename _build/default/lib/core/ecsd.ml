(* The umbrella namespace: one module to open (or qualify through) that
   reaches the whole environment. Libraries are unwrapped, so every module
   below is also available top-level; [Ecsd.Model] and [Model] are the
   same module. *)

(* modelling *)
module Model = Model
module Block = Block
module Compile = Compile
module Param = Param
module Sample_time = Sample_time
module Dtype = Dtype
module Value = Value

(* simulation *)
module Sim = Sim
module Ode = Ode
module Chart = Chart
module Chart_block = Chart_block

(* block library *)
module Sources = Sources
module Math_blocks = Math_blocks
module Discrete_blocks = Discrete_blocks
module Continuous_blocks = Continuous_blocks
module Nonlinear_blocks = Nonlinear_blocks
module Routing_blocks = Routing_blocks
module Table_blocks = Table_blocks
module Plant_blocks = Plant_blocks

(* plant & control *)
module Dc_motor = Dc_motor
module Encoder = Encoder
module Power_stage = Power_stage
module Load_profile = Load_profile
module Thermal = Thermal
module Pid = Pid
module Ztransfer = Ztransfer
module Stability = Stability
module Tuning = Tuning
module Freqresp = Freqresp
module Metrics = Metrics
module Qformat = Qformat
module Fixed = Fixed

(* Processor Expert substrate *)
module Bean = Bean
module Bean_project = Bean_project
module Expert = Expert
module Resources = Resources
module Inspector = Inspector
module Periph_blocks = Periph_blocks
module Autosar_blocks = Autosar_blocks
module Autosar_code = Autosar_code
module Bean_code = Bean_code

(* target & virtual hardware *)
module Mcu_db = Mcu_db
module Machine = Machine
module Rta = Rta
module Timer_periph = Timer_periph
module Adc_periph = Adc_periph
module Pwm_periph = Pwm_periph
module Gpio_periph = Gpio_periph
module Qdec_periph = Qdec_periph
module Sci_periph = Sci_periph
module Wdog_periph = Wdog_periph
module Target = Target
module Pil_target = Pil_target
module Sim_target = Sim_target
module Plantgen = Plantgen
module Blockgen = Blockgen
module Cost_model = Cost_model
module C_ast = C_ast
module C_print = C_print

(* validation stages *)
module Pil_cosim = Pil_cosim
module Hil_cosim = Hil_cosim
module Packet = Packet
module Framer = Framer
module Crc16 = Crc16

(* case study & studies *)
module Servo_system = Servo_system
module Pe_workspace = Pe_workspace
module Timing_study = Timing_study

(* reporting *)
module Table = Table
module Ascii_plot = Ascii_plot
module Stats = Stats
module Trace_export = Trace_export
