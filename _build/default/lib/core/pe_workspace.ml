type t = {
  model : Model.t;
  project : Bean_project.t;
  counters : (string, int) Hashtbl.t;
}

let create ~name mcu =
  {
    model = Model.create name;
    project = Bean_project.create mcu;
    counters = Hashtbl.create 8;
  }

let model t = t.model
let project t = t.project

let fresh_name t prefix =
  let n = (Hashtbl.find_opt t.counters prefix |> Option.value ~default:0) + 1 in
  Hashtbl.replace t.counters prefix n;
  Printf.sprintf "%s%d" prefix n

(* Insert bean + block atomically: if the bean fails verification or the
   block constructor rejects it, roll the bean back and report the
   inspector's diagnosis. *)
let add_periph t ~name ~prefix config make_block =
  let bean_name = match name with Some n -> n | None -> fresh_name t prefix in
  let bean = Bean_project.add t.project (Bean.make ~name:bean_name config) in
  if not (Bean.is_valid bean) then begin
    let diagnosis = String.concat "; " bean.Bean.errors in
    Bean_project.remove t.project bean_name;
    invalid_arg
      (Printf.sprintf "Pe_workspace: bean %s rejected: %s" bean_name diagnosis)
  end;
  match Model.add t.model ~name:bean_name (make_block bean) with
  | blk -> blk
  | exception e ->
      Bean_project.remove t.project bean_name;
      raise e

let add_timer_int t ?name ?(tolerance_frac = 0.001) ~period () =
  add_periph t ~name ~prefix:"TI"
    (Bean.Timer_int { period; tolerance_frac })
    Periph_blocks.timer_int

let add_adc t ?name ?channel ?(vref = 3.3) ~resolution ~sample_period () =
  add_periph t ~name ~prefix:"AD"
    (Bean.Adc { channel; resolution; vref; sample_period })
    Periph_blocks.adc

let add_pwm t ?name ?channel ?(initial_ratio = 0.0) ~freq_hz () =
  add_periph t ~name ~prefix:"PWM"
    (Bean.Pwm { channel; freq_hz; initial_ratio })
    Periph_blocks.pwm

let add_dac t ?name ?channel ?(vref = 3.3) ~resolution () =
  add_periph t ~name ~prefix:"DA"
    (Bean.Dac { channel; resolution; vref })
    Periph_blocks.dac

let add_quad_decoder t ?name ~lines_per_rev () =
  add_periph t ~name ~prefix:"QD"
    (Bean.Quad_dec { lines_per_rev })
    Periph_blocks.quad_decoder

let add_bit_io_in t ?name ~pin () =
  add_periph t ~name ~prefix:"SW"
    (Bean.Bit_io { pin; direction = Bean.In_pin; init = false })
    Periph_blocks.bit_io_in

let add_bit_io_out t ?name ?(init = false) ~pin () =
  add_periph t ~name ~prefix:"LED"
    (Bean.Bit_io { pin; direction = Bean.Out_pin; init })
    Periph_blocks.bit_io_out

let serial_placeholder bean =
  {
    Block.kind = "PE_Serial";
    params = [ ("bean", Param.String bean.Bean.bname) ];
    n_in = 0;
    n_out = 0;
    feedthrough = [||];
    out_types = [||];
    sample = Sample_time.Const;
    event_outs = [||];
    make = (fun _ -> Block.no_beh_state);
  }

let add_serial t ?name ?port ~baud () =
  add_periph t ~name ~prefix:"AS" (Bean.Serial { port; baud }) serial_placeholder

let block_bean_name t blk =
  let spec = Model.spec_of t.model blk in
  Param.string_opt spec.Block.params "bean"

let bean_of_block t blk =
  match block_bean_name t blk with
  | Some n -> ( try Some (Bean_project.find t.project n) with Not_found -> None)
  | None -> None

let remove t blk =
  (match block_bean_name t blk with
  | Some bean_name -> Bean_project.remove t.project bean_name
  | None -> ());
  Model.remove_block t.model blk

let check_consistency t =
  let issues = ref [] in
  let referenced = Hashtbl.create 8 in
  List.iter
    (fun blk ->
      match block_bean_name t blk with
      | Some bean_name -> (
          Hashtbl.replace referenced bean_name ();
          match Bean_project.find t.project bean_name with
          | bean ->
              if not (Bean.is_valid bean) then
                issues :=
                  Printf.sprintf "block %s: bean %s is invalid (%s)"
                    (Model.block_name t.model blk)
                    bean_name
                    (String.concat "; " bean.Bean.errors)
                  :: !issues
          | exception Not_found ->
              issues :=
                Printf.sprintf "block %s references missing bean %s"
                  (Model.block_name t.model blk)
                  bean_name
                :: !issues)
      | None -> ())
    (Model.blocks t.model);
  List.iter
    (fun bean ->
      if not (Hashtbl.mem referenced bean.Bean.bname) then
        issues :=
          Printf.sprintf "bean %s has no block in the model (orphaned)"
            bean.Bean.bname
          :: !issues)
    (Bean_project.beans t.project);
  match !issues with [] -> Ok () | l -> Error (List.rev l)
