(** Model/project synchronisation — the PES_COM role (§5).

    "The synchronization of the Simulink model with the PE project and the
    communication of both these tools through the Microsoft Component
    Object Model interface is provided by the PES_COM library … User
    changes in the model (PE block insertion, erasure, rename etc.) are
    propagated to the PE project and opposite."

    A workspace couples one model with one Processor Expert project and
    keeps them consistent: inserting a peripheral block creates and
    resolves the corresponding bean (with auto-generated instance names,
    TI1/AD1/PWM1/…), erasing the block releases the bean and its
    resources, and a consistency check reports any drift. Settings are
    "verified immediately by the PE knowledge base": an invalid
    configuration makes the insertion fail with the inspector's
    diagnosis. *)

type t

val create : name:string -> Mcu_db.t -> t
val model : t -> Model.t
val project : t -> Bean_project.t

(** {2 Peripheral block insertion (block + bean + resolution)}

    Each returns the new block handle. [name] overrides the auto instance
    name (which also names the block in the model).
    @raise Invalid_argument when the expert system rejects the settings,
    with the diagnosis. *)

val add_timer_int :
  t -> ?name:string -> ?tolerance_frac:float -> period:float -> unit -> Model.blk

val add_adc :
  t -> ?name:string -> ?channel:int -> ?vref:float -> resolution:int ->
  sample_period:float -> unit -> Model.blk

val add_pwm :
  t -> ?name:string -> ?channel:int -> ?initial_ratio:float -> freq_hz:float ->
  unit -> Model.blk

val add_dac :
  t -> ?name:string -> ?channel:int -> ?vref:float -> resolution:int -> unit ->
  Model.blk

val add_quad_decoder :
  t -> ?name:string -> lines_per_rev:int -> unit -> Model.blk

val add_bit_io_in : t -> ?name:string -> pin:string -> unit -> Model.blk
val add_bit_io_out :
  t -> ?name:string -> ?init:bool -> pin:string -> unit -> Model.blk

val add_serial : t -> ?name:string -> ?port:int -> baud:int -> unit -> Model.blk
(** The serial bean has no data-flow block; a placeholder block with no
    ports keeps the model and project views aligned. *)

(** {2 Erasure and consistency} *)

val remove : t -> Model.blk -> unit
(** Erase a peripheral block: the bean and its claimed resources go with
    it (§5's erasure propagation). Non-peripheral blocks are removed from
    the model only. *)

val bean_of_block : t -> Model.blk -> Bean.t option
(** The bean behind a peripheral block, if any. *)

val check_consistency : t -> (unit, string list) result
(** Cross-check both views: every peripheral block's bean must exist and
    be valid; beans without any referencing block are reported (the
    project window would show them orphaned). *)
