type config = {
  motor : Dc_motor.params;
  gains : Pid.gains;
  period : float;
  t_end : float;
  setpoint : float;
  jitter_frac : float;
  latency_frac : float;
  seed : int;
}

let default =
  (* an aggressive loop (closed-loop time constant of three periods) so
     that timing imperfections are visible, as in the TrueTime demos *)
  let motor = Dc_motor.default in
  let kp, ki = Tuning.pi_for_dc_motor_speed motor ~closed_loop_tau:0.003 () in
  {
    motor;
    gains = Pid.gains ~kp ~ki ~u_min:(-.motor.Dc_motor.u_max)
        ~u_max:motor.Dc_motor.u_max ();
    period = 1e-3;
    t_end = 0.6;
    setpoint = 100.0;
    jitter_frac = 0.0;
    latency_frac = 0.0;
    seed = 11;
  }

type outcome = {
  trajectory : (float * float) list;
  iae : float;
  ise : float;
  diverged : bool;
  sustained_oscillation : bool;
  max_overshoot : float;
}

let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let r = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical r 11) /. 9007199254740992.0

(* The loop runs on a fine sub-grid (64 ticks per control period) so that
   jittered sampling instants and delayed actuations land between
   controller invocations, exactly as on a loaded CPU. *)
let run cfg =
  let sub = 64 in
  let h = cfg.period /. float_of_int sub in
  let pid = Pid.create ~ts:cfg.period cfg.gains in
  let rng = ref (Int64.of_int cfg.seed) in
  let n_periods = int_of_float (Float.ceil (cfg.t_end /. cfg.period)) in
  let latency_ticks =
    int_of_float (Float.round (cfg.latency_frac *. cfg.period /. h))
  in
  let state = ref Dc_motor.initial in
  let u = ref 0.0 in
  let traj = ref [] in
  let blown = ref false in
  (* absolute-tick queue so latencies may span several periods *)
  let pending = ref [] in
  for k = 0 to n_periods - 1 do
    let t_k = float_of_int k *. cfg.period in
    let jitter = cfg.jitter_frac *. cfg.period *. splitmix rng in
    let sample_tick = (k * sub) + int_of_float (Float.round (jitter /. h)) in
    for i = 0 to sub - 1 do
      let tick = (k * sub) + i in
      if tick = sample_tick && not !blown then begin
        let cmd = Pid.step pid ~sp:cfg.setpoint ~pv:!state.Dc_motor.w in
        pending := !pending @ [ (tick + latency_ticks, cmd) ]
      end;
      let due, future = List.partition (fun (at, _) -> at <= tick) !pending in
      (match List.rev due with (_, cmd) :: _ -> u := cmd | [] -> ());
      pending := future;
      if not !blown then begin
        state := Dc_motor.step cfg.motor ~u:!u ~tau_load:0.0 ~h !state;
        if Float.abs !state.Dc_motor.w > 1e5 || Float.is_nan !state.Dc_motor.w
        then blown := true
      end
    done;
    traj := (t_k +. cfg.period, !state.Dc_motor.w) :: !traj
  done;
  let trajectory = List.rev !traj in
  let sp _ = cfg.setpoint in
  let max_w = List.fold_left (fun a (_, w) -> Float.max a w) 0.0 trajectory in
  let tail =
    List.filter (fun (t, _) -> t > 0.8 *. cfg.t_end) trajectory |> List.map snd
  in
  let tail_p2p = Stats.jitter tail in
  {
    trajectory;
    iae = Metrics.iae ~sp trajectory;
    ise = Metrics.ise ~sp trajectory;
    diverged = !blown || Metrics.diverged trajectory;
    sustained_oscillation = tail_p2p > 0.5 *. Float.abs cfg.setpoint;
    max_overshoot = Float.max 0.0 ((max_w -. cfg.setpoint) /. cfg.setpoint);
  }

let degradation_sweep ?(config = default) ~jitter_fracs ~latency_fracs () =
  List.concat_map
    (fun j ->
      List.map
        (fun l ->
          (j, l, run { config with jitter_frac = j; latency_frac = l }))
        latency_fracs)
    jitter_fracs

let relative_cost ~baseline outcome =
  if outcome.diverged then infinity else outcome.iae /. baseline.iae

let unstable o = o.diverged || o.sustained_oscillation
