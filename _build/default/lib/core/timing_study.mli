(** Timing-robustness study (experiment E6).

    The paper's introduction motivates the whole tool chain with the
    observation that "timing variations in sampling periods and latencies
    degrade the control performance and may in extreme cases lead to the
    instability" (§1), citing TrueTime as the simulation approach. This
    module reproduces that claim quantitatively: the servo speed loop is
    simulated with the sampling instant jittered uniformly within the
    period and the actuation delayed by a fixed input-output latency,
    and the control cost is measured as the degradation curve. *)

type config = {
  motor : Dc_motor.params;
  gains : Pid.gains;
  period : float;
  t_end : float;
  setpoint : float;
  jitter_frac : float;  (** sampling jitter, fraction of the period (0..1) *)
  latency_frac : float;  (** input-output latency, fraction of the period *)
  seed : int;
}

val default : config
(** The case-study loop at 1 kHz, 100 rad/s set-point, no perturbation. *)

type outcome = {
  trajectory : (float * float) list;  (** (time, speed) *)
  iae : float;
  ise : float;
  diverged : bool;
  sustained_oscillation : bool;
      (** the loop never settles: the peak-to-peak speed over the final
          fifth of the run exceeds half the set-point — actuator
          saturation turns instability into a limit cycle rather than a
          numeric blow-up *)
  max_overshoot : float;
}

val run : config -> outcome
(** One simulation under the given timing perturbation. *)

val degradation_sweep :
  ?config:config ->
  jitter_fracs:float list ->
  latency_fracs:float list ->
  unit ->
  (float * float * outcome) list
(** The E6 grid: every (jitter, latency) combination, in row-major
    order. *)

val relative_cost : baseline:outcome -> outcome -> float
(** IAE ratio against the unperturbed baseline; [infinity] when
    diverged. *)

val unstable : outcome -> bool
(** Diverged or locked in a sustained oscillation. *)
