lib/fixpt/fixed.ml: Float Format Printf Qformat
