lib/fixpt/fixed.mli: Format Qformat
