lib/fixpt/qformat.ml: Format Printf
