lib/fixpt/qformat.mli: Format
