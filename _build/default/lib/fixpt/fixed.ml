type overflow = Saturate | Wrap
type rounding = Floor | Nearest | Zero
type t = { raw : int; fmt : Qformat.t }

exception Overflow of string

let in_range fmt raw = raw >= Qformat.min_raw fmt && raw <= Qformat.max_raw fmt

let create fmt raw =
  if not (in_range fmt raw) then
    invalid_arg
      (Printf.sprintf "Fixed.create: raw %d out of range for %s" raw
         (Qformat.to_string fmt));
  { raw; fmt }

(* Reduce an arbitrary integer into the format's range according to the
   overflow policy. Wrapping reproduces two's-complement truncation. *)
let fit ovf fmt raw =
  if in_range fmt raw then { raw; fmt }
  else
    match ovf with
    | Saturate ->
        if raw > Qformat.max_raw fmt then { raw = Qformat.max_raw fmt; fmt }
        else { raw = Qformat.min_raw fmt; fmt }
    | Wrap ->
        let w = fmt.Qformat.word_bits in
        let mask = (1 lsl w) - 1 in
        let low = raw land mask in
        let raw' =
          if fmt.Qformat.signed && low land (1 lsl (w - 1)) <> 0 then
            low - (1 lsl w)
          else low
        in
        { raw = raw'; fmt }

let raw t = t.raw
let fmt t = t.fmt
let to_float t = float_of_int t.raw *. Qformat.resolution t.fmt

let round_div round num den =
  (* Divide [num] by positive [den] with the requested rounding. *)
  match round with
  | Floor ->
      (* OCaml division truncates toward zero; emulate floor. *)
      if num >= 0 then num / den
      else
        let q = num / den in
        if q * den = num then q else q - 1
  | Zero -> num / den
  | Nearest ->
      if num >= 0 then (num + (den / 2)) / den
      else -((-num + (den / 2)) / den)

let of_float ?(round = Nearest) ?(ovf = Saturate) fmt x =
  let scaled = ldexp x fmt.Qformat.frac_bits in
  let r =
    match round with
    | Nearest -> Float.round scaled
    | Floor -> Float.floor scaled
    | Zero -> Float.trunc scaled
  in
  if Float.is_nan r then invalid_arg "Fixed.of_float: nan";
  (* Clamp before int conversion to avoid undefined behaviour on huge
     floats. *)
  let hi = float_of_int (Qformat.max_raw fmt) and lo = float_of_int (Qformat.min_raw fmt) in
  if r > hi then fit ovf fmt (Qformat.max_raw fmt + if ovf = Wrap then 1 else 0)
  else if r < lo then fit ovf fmt (Qformat.min_raw fmt - if ovf = Wrap then 1 else 0)
  else fit ovf fmt (int_of_float r)

let zero fmt = { raw = 0; fmt }
let one fmt = of_float fmt 1.0

let check_same_fmt op a b =
  if not (Qformat.equal a.fmt b.fmt) then
    invalid_arg
      (Printf.sprintf "Fixed.%s: format mismatch (%s vs %s)" op
         (Qformat.to_string a.fmt) (Qformat.to_string b.fmt))

let add ?(ovf = Saturate) a b =
  check_same_fmt "add" a b;
  fit ovf a.fmt (a.raw + b.raw)

let sub ?(ovf = Saturate) a b =
  check_same_fmt "sub" a b;
  fit ovf a.fmt (a.raw - b.raw)

let neg ?(ovf = Saturate) a = fit ovf a.fmt (-a.raw)

let mul_to rfmt ?(ovf = Saturate) ?(round = Nearest) a b =
  (* Full product has frac bits fa + fb; renormalise to rfmt's frac bits. *)
  let prod = a.raw * b.raw in
  let shift_amt =
    a.fmt.Qformat.frac_bits + b.fmt.Qformat.frac_bits - rfmt.Qformat.frac_bits
  in
  let adjusted =
    if shift_amt > 0 then round_div round prod (1 lsl shift_amt)
    else prod lsl -shift_amt
  in
  fit ovf rfmt adjusted

let mul ?(ovf = Saturate) ?(round = Nearest) a b =
  mul_to a.fmt ~ovf ~round a b

let div ?(ovf = Saturate) ?(round = Nearest) a b =
  if b.raw = 0 then raise (Overflow "Fixed.div: division by zero");
  (* a/b in a's format: (a.raw << fb) / b.raw keeps fa frac bits. *)
  let num = a.raw lsl b.fmt.Qformat.frac_bits in
  let q =
    if b.raw > 0 then round_div round num b.raw
    else -(round_div round num (-b.raw))
  in
  fit ovf a.fmt q

let scale_by_int ?(ovf = Saturate) a k = fit ovf a.fmt (a.raw * k)

let shift ?(ovf = Saturate) a n =
  if n >= 0 then fit ovf a.fmt (a.raw lsl n) else fit ovf a.fmt (a.raw asr -n)

let convert ?(ovf = Saturate) ?(round = Nearest) rfmt a =
  let d = a.fmt.Qformat.frac_bits - rfmt.Qformat.frac_bits in
  let raw' =
    if d > 0 then round_div round a.raw (1 lsl d) else a.raw lsl -d
  in
  fit ovf rfmt raw'

let compare a b = Float.compare (to_float a) (to_float b)
let equal a b = compare a b = 0
let abs ?(ovf = Saturate) a = if a.raw < 0 then neg ~ovf a else a
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_saturated t =
  t.raw = Qformat.max_raw t.fmt || t.raw = Qformat.min_raw t.fmt

let to_string t =
  Printf.sprintf "%g[%s]" (to_float t) (Qformat.to_string t.fmt)

let pp ppf t = Format.pp_print_string ppf (to_string t)
