(** Fixed-point values and arithmetic.

    A value couples a raw integer with its {!Qformat.t}. All arithmetic is
    performed on raw integers exactly as a fixed-point C implementation on a
    16/32-bit MCU would, so that the simulated controller and the generated
    code agree bit-for-bit. Out-of-range results are handled according to an
    {!overflow} policy (the paper's case study uses saturation, the DSP
    hardware default). *)

type overflow = Saturate | Wrap

type rounding = Floor | Nearest | Zero

type t = private { raw : int; fmt : Qformat.t }

exception Overflow of string
(** Raised by operations under a [~check:true] policy used in tests. *)

val create : Qformat.t -> int -> t
(** [create fmt raw] wraps a raw value already known to be in range.
    @raise Invalid_argument if [raw] is out of range for [fmt]. *)

val of_float : ?round:rounding -> ?ovf:overflow -> Qformat.t -> float -> t
(** Quantise a real number into the format. Default rounding [Nearest],
    default overflow [Saturate]. *)

val to_float : t -> float
(** Exact real value of the fixed-point number. *)

val raw : t -> int
val fmt : t -> Qformat.t

val zero : Qformat.t -> t
val one : Qformat.t -> t
(** The representation of 1.0, saturated if 1.0 is not representable
    (e.g. Q15 yields 0.999969...). *)

val add : ?ovf:overflow -> t -> t -> t
(** Same-format addition. @raise Invalid_argument on format mismatch. *)

val sub : ?ovf:overflow -> t -> t -> t

val neg : ?ovf:overflow -> t -> t

val mul : ?ovf:overflow -> ?round:rounding -> t -> t -> t
(** Full-precision multiply then renormalise to the left operand's format,
    as a single-instruction fractional multiply does on a DSP. *)

val mul_to : Qformat.t -> ?ovf:overflow -> ?round:rounding -> t -> t -> t
(** Multiply with an explicit result format (e.g. Q15*Q15 -> Q31 MAC). *)

val div : ?ovf:overflow -> ?round:rounding -> t -> t -> t
(** Fractional division, result in the left operand's format. *)

val scale_by_int : ?ovf:overflow -> t -> int -> t
(** Multiply by a plain integer. *)

val shift : ?ovf:overflow -> t -> int -> t
(** Arithmetic shift of the raw value: positive is left (towards larger
    magnitude). *)

val convert : ?ovf:overflow -> ?round:rounding -> Qformat.t -> t -> t
(** Re-quantise into another format. *)

val compare : t -> t -> int
(** Compare by real value (formats may differ). *)

val equal : t -> t -> bool
val abs : ?ovf:overflow -> t -> t
val min : t -> t -> t
val max : t -> t -> t
val is_saturated : t -> bool
(** Whether the value sits at either end of its representable range. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
