type t = { signed : bool; word_bits : int; frac_bits : int }

let make ~signed ~word_bits ~frac_bits =
  if word_bits < 1 || word_bits > 62 then
    invalid_arg "Qformat.make: word_bits must be in 1..62";
  if frac_bits < 0 then invalid_arg "Qformat.make: frac_bits must be >= 0";
  if signed && word_bits < 2 then
    invalid_arg "Qformat.make: a signed format needs at least 2 bits";
  { signed; word_bits; frac_bits }

let q15 = make ~signed:true ~word_bits:16 ~frac_bits:15
let q31 = make ~signed:true ~word_bits:32 ~frac_bits:31
let q7 = make ~signed:true ~word_bits:8 ~frac_bits:7
let ufix w f = make ~signed:false ~word_bits:w ~frac_bits:f
let sfix w f = make ~signed:true ~word_bits:w ~frac_bits:f

let max_raw t =
  if t.signed then (1 lsl (t.word_bits - 1)) - 1 else (1 lsl t.word_bits) - 1

let min_raw t = if t.signed then -(1 lsl (t.word_bits - 1)) else 0
let resolution t = ldexp 1.0 (-t.frac_bits)
let max_value t = float_of_int (max_raw t) *. resolution t
let min_value t = float_of_int (min_raw t) *. resolution t

let equal a b =
  a.signed = b.signed && a.word_bits = b.word_bits && a.frac_bits = b.frac_bits

let to_string t =
  match (t.signed, t.word_bits, t.frac_bits) with
  | true, w, f when f = w - 1 -> Printf.sprintf "Q%d" f
  | true, w, f -> Printf.sprintf "sfix(%d,%d)" w f
  | false, w, f -> Printf.sprintf "ufix(%d,%d)" w f

let pp ppf t = Format.pp_print_string ppf (to_string t)
