(** Fixed-point number formats.

    A format [Q(s, w, f)] describes a binary fixed-point representation with
    [w] total bits, [f] fractional bits and an optional sign bit. The real
    value represented by a raw integer [r] is [r * 2^(-f)]. This mirrors the
    fixed-point data types used by Simulink Fixed-Point and by 16-bit hybrid
    controllers such as the MC56F8367 of the paper's case study (Q15 being
    the canonical DSP format). *)

type t = private {
  signed : bool;  (** whether a sign bit is present *)
  word_bits : int;  (** total width in bits, 1..62 *)
  frac_bits : int;  (** number of fractional bits; may exceed [word_bits] *)
}

val make : signed:bool -> word_bits:int -> frac_bits:int -> t
(** [make ~signed ~word_bits ~frac_bits] builds a format.
    @raise Invalid_argument if [word_bits] is outside 1..62 (raw values are
    kept in native OCaml [int]s) or [frac_bits] is negative. *)

val q15 : t
(** Signed 16-bit, 15 fractional bits: the DSP56800E native format. *)

val q31 : t
(** Signed 32-bit, 31 fractional bits. *)

val q7 : t
(** Signed 8-bit, 7 fractional bits. *)

val ufix : int -> int -> t
(** [ufix w f] is the unsigned format with [w] word bits, [f] fractional. *)

val sfix : int -> int -> t
(** [sfix w f] is the signed format with [w] word bits, [f] fractional. *)

val max_raw : t -> int
(** Largest representable raw value. *)

val min_raw : t -> int
(** Smallest representable raw value (0 when unsigned). *)

val resolution : t -> float
(** The real-value weight of one least-significant bit, [2^(-frac_bits)]. *)

val max_value : t -> float
(** Largest representable real value. *)

val min_value : t -> float
(** Smallest representable real value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** E.g. ["Q15"], ["sfix(16,12)"], ["ufix(12,0)"]. *)
