lib/mcu/adc_periph.ml: Array Float List Machine Mcu_db Printf
