lib/mcu/adc_periph.mli: Machine
