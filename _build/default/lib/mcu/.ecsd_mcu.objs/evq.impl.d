lib/mcu/evq.ml: Array
