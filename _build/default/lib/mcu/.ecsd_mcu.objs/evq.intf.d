lib/mcu/evq.mli:
