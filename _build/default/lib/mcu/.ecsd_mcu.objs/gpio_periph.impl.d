lib/mcu/gpio_periph.ml: Hashtbl List Machine Mcu_db Printf
