lib/mcu/gpio_periph.mli: Machine
