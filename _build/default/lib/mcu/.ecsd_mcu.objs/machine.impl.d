lib/mcu/machine.ml: Array Evq Float List Mcu_db Stdlib
