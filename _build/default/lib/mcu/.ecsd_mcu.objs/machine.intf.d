lib/mcu/machine.mli: Mcu_db
