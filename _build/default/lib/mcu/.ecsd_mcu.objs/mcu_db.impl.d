lib/mcu/mcu_db.ml: List Printf String
