lib/mcu/mcu_db.mli:
