lib/mcu/pwm_periph.ml: Float Machine Mcu_db Printf
