lib/mcu/pwm_periph.mli: Machine
