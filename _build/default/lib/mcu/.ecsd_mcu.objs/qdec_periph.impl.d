lib/mcu/qdec_periph.ml: Machine Mcu_db Printf
