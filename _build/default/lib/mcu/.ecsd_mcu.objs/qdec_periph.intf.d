lib/mcu/qdec_periph.mli: Machine
