lib/mcu/rta.ml: Float List Printf Stdlib
