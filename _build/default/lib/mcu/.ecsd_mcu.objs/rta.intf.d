lib/mcu/rta.mli:
