lib/mcu/sci_periph.ml: Float List Machine Mcu_db Queue
