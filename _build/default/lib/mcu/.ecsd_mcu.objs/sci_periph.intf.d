lib/mcu/sci_periph.mli: Machine
