lib/mcu/timer_periph.ml: List Machine Mcu_db Printf
