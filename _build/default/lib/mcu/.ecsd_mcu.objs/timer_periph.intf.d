lib/mcu/timer_periph.mli: Machine
