lib/mcu/wdog_periph.ml: Machine
