lib/mcu/wdog_periph.mli: Machine
