type t = {
  machine : Machine.t;
  vref : float;
  res_bits : int;
  inputs : (unit -> float) array;
  mutable eoc : unit -> unit;
  mutable busy : bool;
  mutable result : int;
  mutable result_channel : int;
  mutable dropped : int;
}

let create machine ?(vref = 3.3) ~resolution () =
  let traits = Machine.traits machine in
  if not (List.mem resolution traits.Mcu_db.adc.Mcu_db.resolutions) then
    invalid_arg
      (Printf.sprintf "Adc_periph.create: %d-bit mode unavailable on %s"
         resolution traits.Mcu_db.name);
  {
    machine;
    vref;
    res_bits = resolution;
    inputs =
      Array.make traits.Mcu_db.adc.Mcu_db.adc_channels (fun () -> 0.0);
    eoc = (fun () -> ());
    busy = false;
    result = 0;
    result_channel = 0;
    dropped = 0;
  }

let connect_input t ~channel f =
  if channel < 0 || channel >= Array.length t.inputs then
    invalid_arg "Adc_periph.connect_input: bad channel";
  t.inputs.(channel) <- f

let on_end_of_conversion t f = t.eoc <- f
let max_code t = (1 lsl t.res_bits) - 1

let quantize t v =
  let code = int_of_float (Float.round (v /. t.vref *. float_of_int (max_code t))) in
  if code < 0 then 0 else if code > max_code t then max_code t else code

let code_to_volts t c = float_of_int c /. float_of_int (max_code t) *. t.vref

let conversion_seconds t =
  let traits = Machine.traits t.machine in
  float_of_int traits.Mcu_db.adc.Mcu_db.conv_cycles /. traits.Mcu_db.f_cpu_hz

let start_conversion t ~channel =
  if channel < 0 || channel >= Array.length t.inputs then
    invalid_arg "Adc_periph.start_conversion: bad channel";
  if t.busy then t.dropped <- t.dropped + 1
  else begin
    t.busy <- true;
    let traits = Machine.traits t.machine in
    Machine.schedule t.machine ~after:traits.Mcu_db.adc.Mcu_db.conv_cycles
      (fun () ->
        (* sample-and-hold happens at start in real converters; sampling at
           completion keeps the model simpler and differs by < 2 us *)
        t.result <- quantize t (t.inputs.(channel) ());
        t.result_channel <- channel;
        t.busy <- false;
        t.eoc ())
  end

let busy t = t.busy
let read_raw t = t.result
let read_channel t = t.result_channel
let dropped_starts t = t.dropped
let resolution t = t.res_bits
