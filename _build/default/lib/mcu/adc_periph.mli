(** Successive-approximation ADC.

    Models what the paper's ADC block reproduces in simulation: finite
    resolution (the MC56F8367's 12 bits) and a non-zero conversion time
    after which the end-of-conversion event fires (§5: events are
    "function-call ports … e.g. end of conversion in the case of ADC").
    Analog inputs are supplied per channel as closures sampling the plant
    model. *)

type t

val create : Machine.t -> ?vref:float -> resolution:int -> unit -> t
(** @raise Invalid_argument if [resolution] is not offered by the MCU.
    [vref] is the full-scale voltage (default 3.3). *)

val connect_input : t -> channel:int -> (unit -> float) -> unit
(** Attach an analog source (volts) to a channel.
    @raise Invalid_argument on a channel beyond the MCU's count. *)

val on_end_of_conversion : t -> (unit -> unit) -> unit

val start_conversion : t -> channel:int -> unit
(** Begin converting; the result register is loaded and the EOC callback
    fired after the MCU's conversion time. Starting while busy is
    ignored and counted. *)

val busy : t -> bool
val read_raw : t -> int
(** Last conversion result (right-aligned raw code). *)

val read_channel : t -> int
(** Channel of the last completed conversion. *)

val dropped_starts : t -> int
val resolution : t -> int
val max_code : t -> int
val quantize : t -> float -> int
(** The ideal transfer function: volts to output code, clamped. *)

val code_to_volts : t -> int -> float
val conversion_seconds : t -> float
