type entry = { cycle : int; seq : int; action : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable len : int;
  mutable next_seq : int;
}

let dummy = { cycle = 0; seq = 0; action = (fun () -> ()) }
let create () = { heap = Array.make 64 dummy; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less a b = a.cycle < b.cycle || (a.cycle = b.cycle && a.seq < b.seq)

let grow t =
  if t.len = Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) dummy in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end

let push t ~cycle action =
  grow t;
  let e = { cycle; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  (* sift up *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek_cycle t = if t.len = 0 then None else Some t.heap.(0).cycle

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && less t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.len && less t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (top.cycle, top.action)
  end

let clear t =
  Array.fill t.heap 0 t.len dummy;
  t.len <- 0
