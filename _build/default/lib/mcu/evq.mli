(** Event queue of the MCU discrete-event simulator: a binary min-heap of
    actions keyed by (cycle, insertion order), so simultaneous events fire
    in FIFO order. *)

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

val push : t -> cycle:int -> (unit -> unit) -> unit
(** Schedule an action at an absolute cycle. *)

val peek_cycle : t -> int option
(** Cycle of the earliest event. *)

val pop : t -> (int * (unit -> unit)) option
(** Remove and return the earliest event. *)

val clear : t -> unit
