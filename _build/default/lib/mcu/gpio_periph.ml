type direction = Input | Output

type pin_state = {
  dir : direction;
  mutable source : unit -> bool;
  mutable latch : bool;
  mutable notify : bool -> unit;
}

type t = { machine : Machine.t; pins : (string, pin_state) Hashtbl.t }

let create machine = { machine; pins = Hashtbl.create 8 }

let configure t ~pin dir =
  let traits = Machine.traits t.machine in
  if not (List.mem pin traits.Mcu_db.pins) then
    invalid_arg
      (Printf.sprintf "Gpio_periph.configure: %s has no pin %s"
         traits.Mcu_db.name pin);
  if Hashtbl.mem t.pins pin then
    invalid_arg (Printf.sprintf "Gpio_periph.configure: pin %s already claimed" pin);
  Hashtbl.replace t.pins pin
    { dir; source = (fun () -> false); latch = false; notify = (fun _ -> ()) }

let get t pin =
  match Hashtbl.find_opt t.pins pin with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Gpio_periph: pin %s not configured" pin)

let connect_input t ~pin f =
  let p = get t pin in
  match p.dir with
  | Input -> p.source <- f
  | Output -> invalid_arg "Gpio_periph.connect_input: output pin"

let read t ~pin =
  let p = get t pin in
  match p.dir with Input -> p.source () | Output -> p.latch

let write t ~pin v =
  let p = get t pin in
  match p.dir with
  | Output ->
      if p.latch <> v then begin
        p.latch <- v;
        p.notify v
      end
  | Input -> invalid_arg "Gpio_periph.write: input pin"

let on_change t ~pin f = (get t pin).notify <- f
let claimed t = Hashtbl.fold (fun k _ acc -> k :: acc) t.pins []
