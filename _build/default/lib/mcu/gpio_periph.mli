(** General-purpose digital I/O port (the BitIO bean's hardware).

    Pins are named as in the MCU database. Input pins read from attached
    closures (e.g. the case study's push-button keyboard); output pins
    latch values and expose change callbacks. *)

type t
type direction = Input | Output

val create : Machine.t -> t

val configure : t -> pin:string -> direction -> unit
(** Claim and configure a pin.
    @raise Invalid_argument if the MCU lacks the pin or it is already
    claimed. *)

val connect_input : t -> pin:string -> (unit -> bool) -> unit
(** Attach the external world to an input pin. *)

val read : t -> pin:string -> bool
(** Input pins sample their source; output pins read back the latch. *)

val write : t -> pin:string -> bool -> unit
(** @raise Invalid_argument on an input pin. *)

val on_change : t -> pin:string -> (bool -> unit) -> unit
(** Callback on output latch changes. *)

val claimed : t -> string list
