type irq_id = int

type job = {
  jname : string;
  cycles : int;
  action : unit -> unit;
  stack_bytes : int;
}

type irq = {
  iname : string;
  prio : int;
  handler : unit -> job;
  mutable enabled : bool;
  mutable pending : bool;
  mutable pending_since : int;
  mutable dispatches : int;
  mutable overruns : int;
  mutable response_cycles : float list;
  mutable exec_cycles : float list;
  mutable completion_cycles : int list;
}

type running = {
  rjob : job;
  rirq : irq_id option;
  rprio : int;
  mutable remaining : int;
  mutable resumed_at : int;
  raised_at : int;
  started_at : int;
}

type cpu_state = Idle | Busy of running * running list

type t = {
  mcu : Mcu_db.t;
  evq : Evq.t;
  mutable irqs : irq array;
  mutable n_irqs : int;
  mutable cpu : cpu_state;
  preemptive : bool;
  base_stack : int;
  mutable now : int;
  mutable busy_cycles : int;
  mutable max_stack : int;
}

let create ?(preemptive = false) ?(base_stack = 64) mcu =
  {
    mcu;
    evq = Evq.create ();
    irqs = [||];
    n_irqs = 0;
    cpu = Idle;
    preemptive;
    base_stack;
    now = 0;
    busy_cycles = 0;
    max_stack = base_stack;
  }

let traits t = t.mcu
let now_cycles t = t.now
let now t = float_of_int t.now /. t.mcu.Mcu_db.f_cpu_hz
let cycles_of_time t s = int_of_float (Float.round (s *. t.mcu.Mcu_db.f_cpu_hz))

let schedule_at t ~cycle action =
  if cycle < t.now then invalid_arg "Machine.schedule_at: past cycle";
  Evq.push t.evq ~cycle action

let schedule t ~after action =
  if after < 0 then invalid_arg "Machine.schedule: negative delay";
  Evq.push t.evq ~cycle:(t.now + after) action

let register_irq t ~name ~prio ~handler =
  let v =
    {
      iname = name;
      prio;
      handler;
      enabled = true;
      pending = false;
      pending_since = 0;
      dispatches = 0;
      overruns = 0;
      response_cycles = [];
      exec_cycles = [];
      completion_cycles = [];
    }
  in
  t.irqs <- Array.append t.irqs [| v |];
  let id = t.n_irqs in
  t.n_irqs <- id + 1;
  id

let set_irq_enabled t id en = t.irqs.(id).enabled <- en
let irq_name t id = t.irqs.(id).iname

let raise_irq t id =
  let v = t.irqs.(id) in
  if v.pending then v.overruns <- v.overruns + 1
  else begin
    v.pending <- true;
    v.pending_since <- t.now
  end

let highest_pending t =
  let best = ref None in
  Array.iteri
    (fun i v ->
      if v.pending && v.enabled then
        match !best with
        | None -> best := Some i
        | Some j -> if v.prio < t.irqs.(j).prio then best := Some i)
    t.irqs;
  !best

let stack_depth t =
  match t.cpu with
  | Idle -> t.base_stack
  | Busy (r, stack) ->
      List.fold_left
        (fun acc rr -> acc + rr.rjob.stack_bytes)
        (t.base_stack + r.rjob.stack_bytes)
        stack

let start_irq t id =
  let v = t.irqs.(id) in
  v.pending <- false;
  v.dispatches <- v.dispatches + 1;
  let job = v.handler () in
  let total =
    t.mcu.Mcu_db.irq_latency_cycles + job.cycles + t.mcu.Mcu_db.irq_exit_cycles
  in
  v.response_cycles <- float_of_int (t.now - v.pending_since) :: v.response_cycles;
  let r =
    {
      rjob = job;
      rirq = Some id;
      rprio = v.prio;
      remaining = total;
      resumed_at = t.now;
      raised_at = v.pending_since;
      started_at = t.now;
    }
  in
  (match t.cpu with
  | Idle -> t.cpu <- Busy (r, [])
  | Busy (cur, stack) ->
      (* preemption: suspend the current job *)
      cur.remaining <- cur.remaining - (t.now - cur.resumed_at);
      t.cpu <- Busy (r, cur :: stack));
  t.max_stack <- Stdlib.max t.max_stack (stack_depth t)

let rec try_dispatch t =
  match highest_pending t with
  | None -> ()
  | Some id -> (
      match t.cpu with
      | Idle ->
          start_irq t id;
          (* a zero-cycle job would complete immediately; handled by the
             main loop's completion check *)
          ()
      | Busy (cur, _) ->
          if t.preemptive && t.irqs.(id).prio < cur.rprio then begin
            start_irq t id;
            try_dispatch t
          end)

let complete_job t r =
  (match r.rirq with
  | Some id ->
      let v = t.irqs.(id) in
      v.exec_cycles <- float_of_int (t.now - r.started_at) :: v.exec_cycles;
      v.completion_cycles <- t.now :: v.completion_cycles
  | None -> ());
  r.rjob.action ()

let advance_to t ~cycle:target =
  if target < t.now then invalid_arg "Machine.advance_to: target in the past";
  (* interrupts enabled (or raised) outside of an advance are taken up
     front, before the clock moves *)
  try_dispatch t;
  let progress upto =
    (* account CPU busy time while moving the clock *)
    (match t.cpu with
    | Busy (r, _) ->
        t.busy_cycles <- t.busy_cycles + (upto - r.resumed_at);
        r.remaining <- r.remaining - (upto - r.resumed_at);
        r.resumed_at <- upto
    | Idle -> ());
    t.now <- upto
  in
  let rec loop () =
    let completion =
      match t.cpu with
      | Busy (r, _) -> Some (r.resumed_at + r.remaining)
      | Idle -> None
    in
    let next_ev = Evq.peek_cycle t.evq in
    let next_ev = match next_ev with Some c when c <= target -> Some c | _ -> None in
    let completion =
      match completion with Some c when c <= target -> Some c | _ -> None
    in
    match (completion, next_ev) with
    | None, None -> progress target
    | Some c, Some e when c <= e -> finish_at c
    | Some c, None -> finish_at c
    | _, Some e ->
        progress e;
        (* fire all events at this cycle *)
        let rec drain () =
          match Evq.peek_cycle t.evq with
          | Some c when c = e -> (
              match Evq.pop t.evq with
              | Some (_, action) ->
                  action ();
                  drain ()
              | None -> ())
          | _ -> ()
        in
        drain ();
        try_dispatch t;
        loop ()
  and finish_at c =
    progress c;
    match t.cpu with
    | Busy (r, stack) ->
        (match stack with
        | [] -> t.cpu <- Idle
        | top :: rest ->
            top.resumed_at <- t.now;
            t.cpu <- Busy (top, rest));
        complete_job t r;
        try_dispatch t;
        loop ()
    | Idle -> assert false
  in
  loop ()

let advance t ~cycles = advance_to t ~cycle:(t.now + cycles)
let run_until_time t s = advance_to t ~cycle:(cycles_of_time t s)
let busy t = match t.cpu with Busy _ -> true | Idle -> false

type irq_stats = {
  dispatches : int;
  overruns : int;
  response_cycles : float list;
  exec_cycles : float list;
  completion_cycles : int list;
}

let stats_of t id =
  let v = t.irqs.(id) in
  {
    dispatches = v.dispatches;
    overruns = v.overruns;
    response_cycles = v.response_cycles;
    exec_cycles = v.exec_cycles;
    completion_cycles = v.completion_cycles;
  }

let utilization t =
  if t.now = 0 then 0.0 else float_of_int t.busy_cycles /. float_of_int t.now

let max_stack_bytes t = t.max_stack
let busy_cycles t = t.busy_cycles
