(** Cycle-level virtual MCU.

    A discrete-event machine standing in for the development board of the
    paper's PIL setup (§6). It models what the PIL experiments measure —
    CPU occupancy, interrupt dispatch with priorities and entry/exit
    latency, optional preemption, and stack usage — while on-chip
    peripherals ({!Timer_periph}, {!Adc_periph}, {!Sci_periph}, …)
    schedule events and raise interrupts against it. Work executes as
    {e jobs}: named cycle budgets with a completion action, the cost
    coming from the generated code's {!Cost_model}. *)

type t
type irq_id

type job = {
  jname : string;
  cycles : int;  (** execution cost, CPU cycles *)
  action : unit -> unit;  (** semantic effect, applied at completion *)
  stack_bytes : int;
}

val create : ?preemptive:bool -> ?base_stack:int -> Mcu_db.t -> t
(** [preemptive] (default false — the paper's generated code runs model
    steps non-preemptively in the timer ISR) allows higher-priority
    interrupts to suspend a running job. [base_stack] is the main-context
    stack usage in bytes (default 64). *)

val traits : t -> Mcu_db.t
val now_cycles : t -> int
val now : t -> float
(** Simulated wall time in seconds, [cycles / f_cpu]. *)

val cycles_of_time : t -> float -> int
(** Convert seconds to cycles (rounded). *)

(** {2 Event scheduling (peripheral side)} *)

val schedule : t -> after:int -> (unit -> unit) -> unit
(** Run an action [after] cycles from now (asynchronous hardware events;
    the action runs regardless of CPU business). *)

val schedule_at : t -> cycle:int -> (unit -> unit) -> unit

(** {2 Interrupts} *)

val register_irq :
  t -> name:string -> prio:int -> handler:(unit -> job) -> irq_id
(** Register a vector. Lower [prio] preempts/beats higher. The handler
    closure builds the job at dispatch time, so its cost may depend on
    state. *)

val set_irq_enabled : t -> irq_id -> bool -> unit
val raise_irq : t -> irq_id -> unit
(** Mark pending; dispatched when the CPU can take it. Raising an
    already-pending vector records an overrun. *)

val irq_name : t -> irq_id -> string

(** {2 Execution} *)

val advance_to : t -> cycle:int -> unit
(** Process events, dispatch interrupts and retire jobs up to the given
    absolute cycle. *)

val advance : t -> cycles:int -> unit
val run_until_time : t -> float -> unit
(** [advance_to] the cycle corresponding to a wall time. *)

val busy : t -> bool
(** Whether a job is currently executing. *)

(** {2 Measurements (the PIL profiling data of §6)} *)

type irq_stats = {
  dispatches : int;
  overruns : int;  (** raises that found the vector still pending *)
  response_cycles : float list;
      (** raise-to-start latency of each dispatch, newest first *)
  exec_cycles : float list;  (** start-to-finish, including entry/exit *)
  completion_cycles : int list;  (** absolute completion times *)
}

val stats_of : t -> irq_id -> irq_stats
val utilization : t -> float
(** Busy fraction of the elapsed cycles. *)

val max_stack_bytes : t -> int
(** High-water mark over nested contexts. *)

val busy_cycles : t -> int
