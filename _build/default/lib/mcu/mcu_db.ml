type timer_traits = {
  timer_channels : int;
  prescalers : int list;
  counter_bits : int;
}

type adc_traits = {
  adc_channels : int;
  resolutions : int list;
  conv_cycles : int;
}

type pwm_traits = { pwm_channels : int; pwm_counter_bits : int }

type dac_traits = {
  dac_channels : int;
  dac_resolutions : int list;
}

type t = {
  name : string;
  family : string;
  core : string;
  f_cpu_hz : float;
  word_bits : int;
  has_fpu : bool;
  has_mac : bool;
  flash_bytes : int;
  ram_bytes : int;
  irq_latency_cycles : int;
  irq_exit_cycles : int;
  timer : timer_traits;
  adc : adc_traits;
  pwm : pwm_traits;
  dac : dac_traits;
  sci_count : int;
  has_qdec : bool;
  pins : string list;
}

let gpio_pins prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let mc56f8367 =
  {
    name = "MC56F8367";
    family = "56F83xx";
    core = "DSP56800E";
    f_cpu_hz = 60.0e6;
    word_bits = 16;
    has_fpu = false;
    has_mac = true;
    flash_bytes = 512 * 1024;
    ram_bytes = 32 * 1024;
    irq_latency_cycles = 12;
    irq_exit_cycles = 8;
    timer =
      { timer_channels = 8; prescalers = [ 1; 2; 4; 8; 16; 32; 64; 128 ];
        counter_bits = 16 };
    adc = { adc_channels = 16; resolutions = [ 12 ]; conv_cycles = 102 };
    pwm = { pwm_channels = 6; pwm_counter_bits = 15 };
    dac = { dac_channels = 2; dac_resolutions = [ 12 ] };
    sci_count = 2;
    has_qdec = true;
    pins = gpio_pins "GPIOA" 8 @ gpio_pins "GPIOB" 8 @ gpio_pins "GPIOC" 8;
  }

let mc9s12dp256 =
  {
    name = "MC9S12DP256";
    family = "HCS12";
    core = "HCS12";
    f_cpu_hz = 25.0e6;
    word_bits = 16;
    has_fpu = false;
    has_mac = false;
    flash_bytes = 256 * 1024;
    ram_bytes = 12 * 1024;
    irq_latency_cycles = 9;
    irq_exit_cycles = 8;
    timer =
      { timer_channels = 8; prescalers = [ 1; 2; 4; 8; 16; 32; 64; 128 ];
        counter_bits = 16 };
    adc = { adc_channels = 16; resolutions = [ 8; 10 ]; conv_cycles = 140 };
    pwm = { pwm_channels = 8; pwm_counter_bits = 8 };
    dac = { dac_channels = 0; dac_resolutions = [] };
    sci_count = 2;
    has_qdec = false;
    pins = gpio_pins "PORTA" 8 @ gpio_pins "PORTB" 8 @ gpio_pins "PTT" 8;
  }

let mcf5213 =
  {
    name = "MCF5213";
    family = "ColdFire V2";
    core = "V2";
    f_cpu_hz = 80.0e6;
    word_bits = 32;
    has_fpu = false;
    has_mac = true;
    flash_bytes = 256 * 1024;
    ram_bytes = 32 * 1024;
    irq_latency_cycles = 10;
    irq_exit_cycles = 10;
    timer =
      { timer_channels = 4; prescalers = List.init 8 (fun i -> 1 lsl i);
        counter_bits = 16 };
    adc = { adc_channels = 8; resolutions = [ 12 ]; conv_cycles = 96 };
    pwm = { pwm_channels = 8; pwm_counter_bits = 16 };
    dac = { dac_channels = 1; dac_resolutions = [ 12 ] };
    sci_count = 3;
    has_qdec = true;
    pins = gpio_pins "PORTTC" 4 @ gpio_pins "PORTAN" 8 @ gpio_pins "PORTQS" 8;
  }

let mc56f8323 =
  (* the small sibling of the case-study DSC: same core, less of
     everything -- the part a cost-down exercise would try first *)
  {
    mc56f8367 with
    name = "MC56F8323";
    f_cpu_hz = 60.0e6;
    flash_bytes = 64 * 1024;
    ram_bytes = 8 * 1024;
    timer =
      { timer_channels = 4; prescalers = [ 1; 2; 4; 8; 16; 32; 64; 128 ];
        counter_bits = 16 };
    adc = { adc_channels = 8; resolutions = [ 12 ]; conv_cycles = 102 };
    pwm = { pwm_channels = 6; pwm_counter_bits = 15 };
    dac = { dac_channels = 1; dac_resolutions = [ 12 ] };
    sci_count = 1;
    pins = gpio_pins "GPIOA" 8 @ gpio_pins "GPIOB" 4;
  }

let mpc5554 =
  (* 32-bit PowerPC automotive MCU with an FPU: the "power PC" class the
     paper's conclusions mention for the Linux PIL simulator *)
  {
    name = "MPC5554";
    family = "MPC55xx";
    core = "e200z6";
    f_cpu_hz = 132.0e6;
    word_bits = 32;
    has_fpu = true;
    has_mac = true;
    flash_bytes = 2 * 1024 * 1024;
    ram_bytes = 64 * 1024;
    irq_latency_cycles = 14;
    irq_exit_cycles = 12;
    timer =
      { timer_channels = 24; prescalers = List.init 8 (fun i -> 1 lsl i);
        counter_bits = 24 };
    adc = { adc_channels = 40; resolutions = [ 10; 12 ]; conv_cycles = 120 };
    pwm = { pwm_channels = 24; pwm_counter_bits = 16 };
    dac = { dac_channels = 0; dac_resolutions = [] };
    sci_count = 2;
    has_qdec = true;
    pins = gpio_pins "ETPUA" 16 @ gpio_pins "EMIOS" 16;
  }

let all = [ mc56f8367; mc56f8323; mc9s12dp256; mcf5213; mpc5554 ]

let find name =
  let up = String.uppercase_ascii name in
  List.find_opt (fun t -> String.uppercase_ascii t.name = up) all
