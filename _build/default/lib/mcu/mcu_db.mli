(** Database of MCU descriptors.

    Processor Expert's value proposition is that it "contains information
    about supported MCUs and their on-chip peripherals" (§4); this module
    is that knowledge base. Each descriptor carries the traits the expert
    system validates against (clocking, prescalers, resolutions,
    conversion timing, pins) and the traits the execution-time model
    needs (word width, FPU/MAC availability). The three entries cover the
    families named in the paper: the case study's 56F8xxx hybrid DSP/MCU,
    an HCS12, and a ColdFire V2. *)

type timer_traits = {
  timer_channels : int;
  prescalers : int list;  (** selectable clock dividers *)
  counter_bits : int;
}

type adc_traits = {
  adc_channels : int;
  resolutions : int list;  (** selectable bit widths *)
  conv_cycles : int;  (** CPU cycles for one conversion *)
}

type pwm_traits = { pwm_channels : int; pwm_counter_bits : int }

type dac_traits = {
  dac_channels : int;  (** 0 when the part has no DAC *)
  dac_resolutions : int list;
}

type t = {
  name : string;
  family : string;
  core : string;
  f_cpu_hz : float;
  word_bits : int;
  has_fpu : bool;
  has_mac : bool;  (** single-cycle multiply-accumulate (DSC cores) *)
  flash_bytes : int;
  ram_bytes : int;
  irq_latency_cycles : int;  (** interrupt entry overhead *)
  irq_exit_cycles : int;
  timer : timer_traits;
  adc : adc_traits;
  pwm : pwm_traits;
  dac : dac_traits;
  sci_count : int;
  has_qdec : bool;  (** hardware quadrature decoder *)
  pins : string list;
}

val mc56f8367 : t
(** The case study's 16-bit hybrid controller (60 MHz DSP56800E core,
    hardware MAC, quadrature decoder, 12-bit ADC). *)

val mc9s12dp256 : t
(** 16-bit HCS12 automotive MCU, 25 MHz bus, software multiply. *)

val mc56f8323 : t
(** The small sibling of the case-study part: same DSP56800E core, 64 KiB
    flash / 8 KiB RAM, fewer channels. *)

val mcf5213 : t
(** 32-bit ColdFire V2, 80 MHz, hardware multiply, no FPU. *)

val mpc5554 : t
(** 32-bit PowerPC e200z6 automotive MCU, 132 MHz, hardware FPU — the
    "power PC" class the paper's conclusions point to. *)

val all : t list
val find : string -> t option
(** Case-insensitive lookup by name. *)
