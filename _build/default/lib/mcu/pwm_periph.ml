type t = {
  machine : Machine.t;
  channel : int;
  mutable period : int;
  mutable duty : int;
}

let create machine ~channel () =
  let traits = Machine.traits machine in
  if channel < 0 || channel >= traits.Mcu_db.pwm.Mcu_db.pwm_channels then
    invalid_arg
      (Printf.sprintf "Pwm_periph.create: %s has no PWM channel %d"
         traits.Mcu_db.name channel);
  { machine; channel; period = 1000; duty = 0 }

let max_counts t =
  (1 lsl (Machine.traits t.machine).Mcu_db.pwm.Mcu_db.pwm_counter_bits) - 1

let set_period_counts t n =
  if n < 2 || n > max_counts t then
    invalid_arg
      (Printf.sprintf "Pwm_periph.set_period_counts: %d out of 2..%d" n
         (max_counts t));
  t.period <- n;
  if t.duty > n then t.duty <- n

let set_duty_counts t n =
  t.duty <- if n < 0 then 0 else if n > t.period then t.period else n

let set_ratio16 t r =
  let r = if r < 0 then 0 else if r > 65535 then 65535 else r in
  t.duty <- r * t.period / 65535

let set_frequency t ~hz =
  if hz <= 0.0 then invalid_arg "Pwm_periph.set_frequency: hz";
  let f_cpu = (Machine.traits t.machine).Mcu_db.f_cpu_hz in
  let counts = int_of_float (Float.round (f_cpu /. hz)) in
  if counts < 2 || counts > max_counts t then
    invalid_arg
      (Printf.sprintf
         "Pwm_periph.set_frequency: %g Hz needs %d counts (max %d)" hz counts
         (max_counts t));
  set_period_counts t counts

let duty_ratio t = float_of_int t.duty /. float_of_int t.period

let frequency t =
  (Machine.traits t.machine).Mcu_db.f_cpu_hz /. float_of_int t.period

let period_counts t = t.period
let duty_counts t = t.duty

let resolution_bits t =
  int_of_float (Float.floor (log (float_of_int t.period) /. log 2.0))
