(** PWM generator channel.

    A counter/compare channel: the modulo register fixes the PWM period,
    the compare register the duty. Since the electrical model couples
    through the cycle-averaged voltage (see {!Power_stage}), the channel
    exposes its exact duty ratio rather than edge events. *)

type t

val create : Machine.t -> channel:int -> unit -> t
val set_period_counts : t -> int -> unit
(** @raise Invalid_argument beyond the counter width. *)

val set_duty_counts : t -> int -> unit
(** Clamped to the period register. *)

val set_ratio16 : t -> int -> unit
(** The Processor Expert PWM bean's [SetRatio16] method: duty as
    0..65535 mapped onto the period register. *)

val set_frequency : t -> hz:float -> unit
(** Pick the period register for a desired PWM frequency.
    @raise Invalid_argument if unattainable within the counter width. *)

val duty_ratio : t -> float
(** Current ratio 0..1. *)

val frequency : t -> float
val period_counts : t -> int
val duty_counts : t -> int
val resolution_bits : t -> int
(** Effective duty resolution at the current period,
    [log2 period_counts]. *)
