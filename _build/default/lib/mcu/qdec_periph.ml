type t = { bits : int; mutable true_count : int }

let create machine ?(register_bits = 16) () =
  let traits = Machine.traits machine in
  if not traits.Mcu_db.has_qdec then
    invalid_arg
      (Printf.sprintf "Qdec_periph.create: %s has no quadrature decoder"
         traits.Mcu_db.name);
  if register_bits < 4 || register_bits > 32 then
    invalid_arg "Qdec_periph.create: register_bits out of 4..32";
  { bits = register_bits; true_count = 0 }

let set_true_count t c = t.true_count <- c

let read_position t =
  t.true_count land ((1 lsl t.bits) - 1)

let diff t ~prev =
  let m = 1 lsl t.bits in
  let d = (read_position t - prev) land (m - 1) in
  (* interpret as signed difference *)
  if d >= m / 2 then d - m else d

let register_bits t = t.bits
