(** Quadrature decoder peripheral.

    Accumulates x4-decoded edge counts from an incremental encoder into a
    position register, as the MC56F8367's decoder does for the case-study
    IRC feedback. In co-simulation the plant side pushes the ideal count
    (from {!Encoder.count_of_angle}); the peripheral maintains the
    register including its finite width wrap-around, which the reading
    software must handle by differencing. *)

type t

val create : Machine.t -> ?register_bits:int -> unit -> t
(** @raise Invalid_argument when the MCU has no hardware decoder.
    [register_bits] defaults to 16 (the 56F8xxx position register). *)

val set_true_count : t -> int -> unit
(** Drive the decoder with the absolute (unwrapped) encoder count. *)

val read_position : t -> int
(** Position register: the true count modulo the register width,
    interpreted as an unsigned [register_bits] value. *)

val diff : t -> prev:int -> int
(** Wrap-aware difference between the current register and a previous
    reading — what generated code computes each control period. *)

val register_bits : t -> int
