type task = { tname : string; period : float; wcet : float; prio : int }

type verdict = { task : task; response : float; schedulable : bool }

let validate tasks =
  List.iter
    (fun t ->
      if t.period <= 0.0 || t.wcet <= 0.0 then
        invalid_arg (Printf.sprintf "Rta: task %s has non-positive parameters" t.tname))
    tasks;
  let prios = List.map (fun t -> t.prio) tasks in
  if List.length (List.sort_uniq Stdlib.compare prios) <> List.length prios then
    invalid_arg "Rta: duplicate priorities"

let utilization tasks =
  List.fold_left (fun acc t -> acc +. (t.wcet /. t.period)) 0.0 tasks

let rm_bound n =
  if n <= 0 then invalid_arg "Rta.rm_bound";
  float_of_int n *. ((2.0 ** (1.0 /. float_of_int n)) -. 1.0)

let higher_prio tasks t = List.filter (fun j -> j.prio < t.prio) tasks
let lower_prio tasks t = List.filter (fun j -> j.prio > t.prio) tasks

(* Fixed-point iteration with divergence cut-off at 1000 periods. *)
let iterate ~horizon f x0 =
  let rec go x n =
    if n > 10000 || x > horizon then infinity
    else
      let x' = f x in
      if Float.abs (x' -. x) < 1e-12 then x' else go x' (n + 1)
  in
  go x0 0

let preemptive tasks =
  validate tasks;
  List.map
    (fun t ->
      let hp = higher_prio tasks t in
      (* over-utilised priority levels have unbounded backlogs; the
         single-job fixed point would be misleading there *)
      let level_u = utilization (t :: hp) in
      if level_u > 1.0 then
        { task = t; response = infinity; schedulable = false }
      else
      let f r =
        t.wcet
        +. List.fold_left
             (fun acc j -> acc +. (Float.ceil (r /. j.period) *. j.wcet))
             0.0 hp
      in
      let response = iterate ~horizon:(1000.0 *. t.period) f t.wcet in
      { task = t; response; schedulable = response <= t.period +. 1e-12 })
    tasks

let non_preemptive tasks =
  validate tasks;
  List.map
    (fun t ->
      let hp = higher_prio tasks t in
      (* once a lower-priority job has started it runs to completion *)
      let blocking =
        List.fold_left (fun acc j -> Float.max acc j.wcet) 0.0 (lower_prio tasks t)
      in
      let level_u = utilization (t :: hp) in
      if level_u > 1.0 then
        { task = t; response = infinity; schedulable = false }
      else
      (* queueing until the task starts; own execution follows unpreempted *)
      let f w =
        blocking
        +. List.fold_left
             (fun acc j ->
               acc +. ((Float.floor (w /. j.period) +. 1.0) *. j.wcet))
             0.0 hp
      in
      let start = iterate ~horizon:(1000.0 *. t.period) f blocking in
      let response = if Float.is_finite start then start +. t.wcet else infinity in
      { task = t; response; schedulable = response <= t.period +. 1e-12 })
    tasks

let analyze ~preemptive:p tasks =
  let verdicts = if p then preemptive tasks else non_preemptive tasks in
  match List.find_opt (fun v -> not v.schedulable) verdicts with
  | None -> Ok verdicts
  | Some v ->
      Error
        (Printf.sprintf
           "task %s misses its deadline: worst-case response %.6g s > period %.6g s"
           v.task.tname v.response v.task.period)
