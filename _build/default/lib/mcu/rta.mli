(** Fixed-priority response-time analysis.

    The paper motivates tools that capture "the response time" alongside
    control performance (§1) and cites the co-design surveys where
    schedulability analysis is the standard static counterpart of the PIL
    measurement. This module implements the classic exact analysis for
    periodic tasks under fixed priorities — preemptive, and non-preemptive
    (the regime of PEERT's generated code, where each ISR runs to
    completion) — so a generated schedule can be validated before any
    simulation, and the PIL/HIL measurements can be checked against a
    sound bound. *)

type task = {
  tname : string;
  period : float;  (** also the deadline (implicit-deadline model) *)
  wcet : float;  (** worst-case execution time, seconds *)
  prio : int;  (** smaller = more important (matches {!Machine}) *)
}

type verdict = {
  task : task;
  response : float;  (** worst-case response time; [infinity] if unbounded *)
  schedulable : bool;  (** [response <= period] *)
}

val utilization : task list -> float
(** Total CPU demand, sum of wcet/period. *)

val rm_bound : int -> float
(** The Liu–Layland rate-monotonic sufficient bound [n(2^(1/n)-1)]. *)

val preemptive : task list -> verdict list
(** Exact response-time iteration [R = C + sum ceil(R/Tj) Cj] over
    higher-priority interference. Results in input order.
    @raise Invalid_argument on duplicate priorities or non-positive
    parameters. *)

val non_preemptive : task list -> verdict list
(** The non-preemptive variant: each response additionally suffers the
    longest lower-priority execution already in flight (blocking term),
    and interference accumulates until the task {e starts} rather than
    finishes. *)

val analyze :
  preemptive:bool -> task list -> (verdict list, string) result
(** Run the matching analysis and fail with a message naming the first
    unschedulable task, if any. *)
