type t = {
  machine : Machine.t;
  baud : int;
  fifo_depth : int;
  tx_fifo : int Queue.t;
  mutable tx_shifting : bool;
  mutable tx_done_cb : unit -> unit;
  mutable tx_wire : int -> unit;
  mutable rx_cb : int -> unit;
  mutable rx_data : int;
  mutable rx_full : bool;
  mutable rx_overruns : int;
  mutable tx_lost : int;
}

let create machine ?(fifo_depth = 64) ~baud () =
  if baud <= 0 then invalid_arg "Sci_periph.create: baud";
  {
    machine;
    baud;
    fifo_depth;
    tx_fifo = Queue.create ();
    tx_shifting = false;
    tx_done_cb = (fun () -> ());
    tx_wire = (fun _ -> ());
    rx_cb = (fun _ -> ());
    rx_data = 0;
    rx_full = false;
    rx_overruns = 0;
    tx_lost = 0;
  }

let baud t = t.baud

let byte_cycles t =
  let f_cpu = (Machine.traits t.machine).Mcu_db.f_cpu_hz in
  int_of_float (Float.round (10.0 /. float_of_int t.baud *. f_cpu))

let byte_seconds t = 10.0 /. float_of_int t.baud

let rec shift_next t =
  match Queue.take_opt t.tx_fifo with
  | None ->
      t.tx_shifting <- false;
      t.tx_done_cb ()
  | Some byte ->
      t.tx_shifting <- true;
      Machine.schedule t.machine ~after:(byte_cycles t) (fun () ->
          (* the frame is now fully on the wire *)
          t.tx_wire byte;
          shift_next t)

let on_tx_byte t f = t.tx_wire <- f

let send_byte t b =
  if b < 0 || b > 255 then invalid_arg "Sci_periph.send_byte: byte range";
  if Queue.length t.tx_fifo >= t.fifo_depth then begin
    t.tx_lost <- t.tx_lost + 1;
    false
  end
  else begin
    Queue.add b t.tx_fifo;
    if not t.tx_shifting then shift_next t;
    true
  end

let send_bytes t bytes =
  List.fold_left (fun acc b -> if send_byte t b then acc + 1 else acc) 0 bytes

let on_tx_complete t f = t.tx_done_cb <- f
let tx_busy t = t.tx_shifting || not (Queue.is_empty t.tx_fifo)
let tx_lost t = t.tx_lost

let deliver_byte t b =
  Machine.schedule t.machine ~after:(byte_cycles t) (fun () ->
      if t.rx_full then t.rx_overruns <- t.rx_overruns + 1;
      t.rx_data <- b land 0xFF;
      t.rx_full <- true;
      t.rx_cb t.rx_data)

let on_rx t f = t.rx_cb <- f

let read_data t =
  t.rx_full <- false;
  t.rx_data

let rx_overruns t = t.rx_overruns
