(** SCI / UART asynchronous serial channel.

    The PIL transport of §6: "the communication between the simulator PC
    and the development board is provided by RS232 asynchronous serial
    line". Timing is modelled per 10-bit frame (start + 8 data + stop) at
    the configured baud rate; transmit is double-buffered with a shift
    register, receive raises a callback per frame and records overruns
    when software fails to read in time. *)

type t

val create : Machine.t -> ?fifo_depth:int -> baud:int -> unit -> t
(** [fifo_depth] is the software TX queue size (default 64). *)

val baud : t -> int
val byte_cycles : t -> int
(** CPU cycles per 10-bit frame at the configured baud rate. *)

val byte_seconds : t -> float

(** {2 Transmit} *)

val send_byte : t -> int -> bool
(** Queue one byte (0..255); [false] when the FIFO is full (byte lost,
    counted). Transmission proceeds frame by frame on the machine's
    clock. *)

val send_bytes : t -> int list -> int
(** Queue many; returns how many were accepted. *)

val on_tx_byte : t -> (int -> unit) -> unit
(** Wire-side callback: fired when a frame has fully left the shift
    register, with the byte — the hook the serial-line model attaches
    to. *)

val on_tx_complete : t -> (unit -> unit) -> unit
(** Fired when the last queued frame finished shifting out. *)

val tx_busy : t -> bool
val tx_lost : t -> int

(** {2 Receive} *)

val deliver_byte : t -> int -> unit
(** Called by the line model when a frame arrives at the receiver pin;
    the data register loads and the RX callback fires after one frame
    time. *)

val on_rx : t -> (int -> unit) -> unit
(** Per-frame receive callback (normally raising the RX interrupt). *)

val read_data : t -> int
(** Read the last received byte, clearing the full flag. *)

val rx_overruns : t -> int
