type t = {
  machine : Machine.t;
  channel : int;
  mutable prescaler : int;
  mutable modulo : int;
  mutable callback : unit -> unit;
  mutable active : bool;
  mutable epoch : int;  (* invalidates in-flight scheduled ticks on stop *)
}

let create machine ~channel =
  let traits = Machine.traits machine in
  if channel < 0 || channel >= traits.Mcu_db.timer.Mcu_db.timer_channels then
    invalid_arg
      (Printf.sprintf "Timer_periph.create: %s has no timer channel %d"
         traits.Mcu_db.name channel);
  {
    machine;
    channel;
    prescaler = 1;
    modulo = 1;
    callback = (fun () -> ());
    active = false;
    epoch = 0;
  }

let configure t ~prescaler ~modulo =
  let traits = Machine.traits t.machine in
  if not (List.mem prescaler traits.Mcu_db.timer.Mcu_db.prescalers) then
    invalid_arg
      (Printf.sprintf "Timer_periph.configure: prescaler %d unavailable on %s"
         prescaler traits.Mcu_db.name);
  let max_modulo = 1 lsl traits.Mcu_db.timer.Mcu_db.counter_bits in
  if modulo < 1 || modulo > max_modulo then
    invalid_arg
      (Printf.sprintf "Timer_periph.configure: modulo %d out of 1..%d" modulo
         max_modulo);
  t.prescaler <- prescaler;
  t.modulo <- modulo

let on_overflow t f = t.callback <- f
let period_cycles t = t.prescaler * t.modulo

let period_seconds t =
  float_of_int (period_cycles t) /. (Machine.traits t.machine).Mcu_db.f_cpu_hz

let rec schedule_tick t epoch =
  Machine.schedule t.machine ~after:(period_cycles t) (fun () ->
      if t.active && t.epoch = epoch then begin
        t.callback ();
        schedule_tick t epoch
      end)

let start t =
  if not t.active then begin
    t.active <- true;
    t.epoch <- t.epoch + 1;
    schedule_tick t t.epoch
  end

let stop t =
  t.active <- false;
  t.epoch <- t.epoch + 1

let running t = t.active
let channel t = t.channel
