(** General-purpose timer channel with prescaler and modulo counter.

    The hardware beneath the TimerInt bean: counts CPU clocks divided by a
    prescaler; when the count reaches the modulo it reloads and fires the
    overflow callback (normally wired to {!Machine.raise_irq}). The
    achievable periods are exactly [prescaler * modulo / f_cpu] — the
    constraint the expert system solves against (§4). *)

type t

val create : Machine.t -> channel:int -> t
(** Claim a timer channel. @raise Invalid_argument when the channel
    exceeds the MCU's [timer_channels]. *)

val configure : t -> prescaler:int -> modulo:int -> unit
(** @raise Invalid_argument if the prescaler is not offered by the MCU or
    the modulo exceeds the counter width. *)

val on_overflow : t -> (unit -> unit) -> unit
val start : t -> unit
val stop : t -> unit
val running : t -> bool

val period_cycles : t -> int
(** Current period in CPU cycles. *)

val period_seconds : t -> float
val channel : t -> int
