type t = {
  machine : Machine.t;
  timeout_cycles : int;
  mutable active : bool;
  mutable deadline : int;
  mutable epoch : int;
  mutable bite_cb : unit -> unit;
  mutable bite_count : int;
}

let create machine ~timeout () =
  if timeout <= 0.0 then invalid_arg "Wdog_periph.create: timeout";
  {
    machine;
    timeout_cycles = Machine.cycles_of_time machine timeout;
    active = false;
    deadline = 0;
    epoch = 0;
    bite_cb = (fun () -> ());
    bite_count = 0;
  }

let rec arm t =
  t.epoch <- t.epoch + 1;
  t.deadline <- Machine.now_cycles t.machine + t.timeout_cycles;
  let epoch = t.epoch in
  Machine.schedule t.machine ~after:t.timeout_cycles (fun () ->
      (* only the newest arming may bite; refreshes invalidate the rest *)
      if t.active && t.epoch = epoch then begin
        t.bite_count <- t.bite_count + 1;
        t.bite_cb ();
        if t.active then arm t
      end)

let enable t =
  if not t.active then begin
    t.active <- true;
    arm t
  end

let disable t =
  t.active <- false;
  t.epoch <- t.epoch + 1

let refresh t = if t.active then arm t
let on_bite t f = t.bite_cb <- f
let bites t = t.bite_count
let enabled t = t.active
let timeout_cycles t = t.timeout_cycles
