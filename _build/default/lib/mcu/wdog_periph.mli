(** Watchdog timer.

    The last-line safety mechanism of every production ECU: software must
    refresh ("clear") the watchdog within its timeout or the chip resets.
    In the virtual MCU a bite invokes a callback (and is counted) instead
    of resetting, so co-simulations can both detect overruns the way the
    silicon would and keep running to report them. *)

type t

val create : Machine.t -> timeout:float -> unit -> t
(** [timeout] in seconds. @raise Invalid_argument when non-positive. *)

val enable : t -> unit
(** Arm the watchdog; the countdown starts now. *)

val disable : t -> unit
val refresh : t -> unit
(** The service operation (the HAL's [Clear] method). Ignored while
    disabled. *)

val on_bite : t -> (unit -> unit) -> unit
(** Called at each expiry (the reset the real part would perform); the
    watchdog re-arms afterwards. *)

val bites : t -> int
val enabled : t -> bool
val timeout_cycles : t -> int
