lib/model/block.ml: Array Dtype Format Param Sample_time Value
