lib/model/block.mli: Dtype Format Param Sample_time Value
