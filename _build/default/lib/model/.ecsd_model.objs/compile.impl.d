lib/model/compile.ml: Array Block Dtype Float Format Fun Hashtbl List Model Printf Sample_time String
