lib/model/compile.mli: Dtype Format Model Sample_time
