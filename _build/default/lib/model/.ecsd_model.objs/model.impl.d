lib/model/model.ml: Array Block Hashtbl List Param Printf Stdlib
