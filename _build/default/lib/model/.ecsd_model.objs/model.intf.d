lib/model/model.mli: Block
