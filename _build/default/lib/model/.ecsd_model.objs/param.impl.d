lib/model/param.ml: Array Dtype Format List Printf String
