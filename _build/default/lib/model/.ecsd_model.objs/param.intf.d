lib/model/param.mli: Dtype Format
