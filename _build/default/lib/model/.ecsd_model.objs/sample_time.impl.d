lib/model/sample_time.ml: Float Format List Stdlib
