lib/model/sample_time.mli: Format
