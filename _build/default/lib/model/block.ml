type out_type =
  | Fixed_type of Dtype.t
  | Same_as of int
  | Type_fn of (Dtype.t option array -> Dtype.t option)

type ctx = {
  base_dt : float;
  block_dt : float;
  fire : int -> unit;
  in_dtypes : Dtype.t array;
  out_dtypes : Dtype.t array;
}

type beh = {
  ncstates : int;
  out : minor:bool -> time:float -> Value.t array -> Value.t array;
  update : time:float -> Value.t array -> unit;
  deriv : time:float -> Value.t array -> float array;
  get_cstate : unit -> float array;
  set_cstate : float array -> unit;
  reset : unit -> unit;
}

type spec = {
  kind : string;
  params : Param.t;
  n_in : int;
  n_out : int;
  feedthrough : bool array;
  out_types : out_type array;
  sample : Sample_time.spec;
  event_outs : string array;
  make : ctx -> beh;
}

let no_beh_state =
  {
    ncstates = 0;
    out = (fun ~minor:_ ~time:_ _ -> [||]);
    update = (fun ~time:_ _ -> ());
    deriv = (fun ~time:_ _ -> [||]);
    get_cstate = (fun () -> [||]);
    set_cstate = (fun _ -> ());
    reset = (fun () -> ());
  }

let stateless ~kind ?(params = []) ~n_in ~n_out ?out_types
    ?(sample = Sample_time.Inherited) f =
  let out_types =
    match out_types with
    | Some ts -> ts
    | None ->
        if n_in = 0 then Array.make n_out (Fixed_type Dtype.Double)
        else Array.make n_out (Same_as 0)
  in
  {
    kind;
    params;
    n_in;
    n_out;
    feedthrough = Array.make n_in true;
    out_types;
    sample;
    event_outs = [||];
    make =
      (fun ctx ->
        { no_beh_state with out = (fun ~minor:_ ~time:_ ins -> f ctx ins) });
  }

let pp_spec ppf s =
  Format.fprintf ppf "%s(%s) %d->%d [%a]" s.kind (Param.to_string s.params)
    s.n_in s.n_out Sample_time.pp_spec s.sample
