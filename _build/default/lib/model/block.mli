(** Block definitions: the s-function interface of the environment.

    A block couples static metadata (kind, ports, parameters, sample-time
    spec, feedthrough and type information — everything the code generator
    needs) with a behaviour factory producing the simulation callbacks
    (everything the MIL engine needs). This split mirrors the paper's
    architecture where each Simulink block is an s-function for simulation
    plus a TLC script for code generation (§3). *)

(** How an output port's data type is derived. *)
type out_type =
  | Fixed_type of Dtype.t  (** statically known *)
  | Same_as of int  (** copies the type of input port [i] *)
  | Type_fn of (Dtype.t option array -> Dtype.t option)
      (** computed from (partially) known input types; [None] when not yet
          determinable during fixpoint propagation *)

(** Instantiation context handed to the behaviour factory. *)
type ctx = {
  base_dt : float;  (** fundamental step of the compiled model *)
  block_dt : float;  (** resolved period of this block; 0. for continuous *)
  fire : int -> unit;
      (** fire the block's event output port [k]; the engine immediately
          executes the function-call group wired to it *)
  in_dtypes : Dtype.t array;  (** resolved input port types *)
  out_dtypes : Dtype.t array;  (** resolved output port types *)
}

(** Simulation behaviour of one block instance. All arrays indexed by
    port. *)
type beh = {
  ncstates : int;  (** number of continuous states *)
  out : minor:bool -> time:float -> Value.t array -> Value.t array;
      (** compute outputs from inputs; [minor] marks solver sub-steps where
          discrete state must not be touched *)
  update : time:float -> Value.t array -> unit;
      (** advance discrete state after all outputs of the step are up *)
  deriv : time:float -> Value.t array -> float array;
      (** derivatives of the continuous states (length [ncstates]) *)
  get_cstate : unit -> float array;
  set_cstate : float array -> unit;
  reset : unit -> unit;  (** back to initial conditions *)
}

(** Static block definition. *)
type spec = {
  kind : string;  (** block type tag, the codegen dispatch key *)
  params : Param.t;
  n_in : int;
  n_out : int;
  feedthrough : bool array;
      (** per input: does it influence outputs within the same step? *)
  out_types : out_type array;
  sample : Sample_time.spec;
  event_outs : string array;  (** names of event (function-call) outputs *)
  make : ctx -> beh;
}

val stateless :
  kind:string ->
  ?params:Param.t ->
  n_in:int ->
  n_out:int ->
  ?out_types:out_type array ->
  ?sample:Sample_time.spec ->
  (ctx -> Value.t array -> Value.t array) ->
  spec
(** Convenience constructor for memoryless feedthrough blocks: [f] maps
    inputs to outputs. Default sample time [Inherited]; default output
    types [Same_as 0] (or [Fixed_type Double] for sources). *)

val no_beh_state : beh
(** A behaviour skeleton with no state and identity-free callbacks, to be
    overridden with [{no_beh_state with out = ...}]. *)

val pp_spec : Format.formatter -> spec -> unit
