type blk = int
type group = int

exception Model_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Model_error s)) fmt

type entry = {
  spec : Block.spec;
  bname : string;
  mutable egroup : group option;
}

type t = {
  mname : string;
  entries : (blk, entry) Hashtbl.t;
  mutable next_blk : int;
  mutable order : blk list;  (* reversed insertion order *)
  wires : (blk * int, blk * int) Hashtbl.t;  (* dst -> src *)
  events : (blk * int, group) Hashtbl.t;
  group_names : (group, string) Hashtbl.t;
  mutable next_group : int;
  by_name : (string, blk) Hashtbl.t;
}

let create mname =
  {
    mname;
    entries = Hashtbl.create 32;
    next_blk = 0;
    order = [];
    wires = Hashtbl.create 64;
    events = Hashtbl.create 8;
    group_names = Hashtbl.create 4;
    next_group = 0;
    by_name = Hashtbl.create 32;
  }

let name t = t.mname

let entry t b =
  match Hashtbl.find_opt t.entries b with
  | Some e -> e
  | None -> err "model %s: unknown block id %d" t.mname b

let add t ?name spec =
  let id = t.next_blk in
  let bname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s%d" spec.Block.kind id
  in
  if Hashtbl.mem t.by_name bname then
    err "model %s: duplicate block name %S" t.mname bname;
  t.next_blk <- id + 1;
  Hashtbl.replace t.entries id { spec; bname; egroup = None };
  Hashtbl.replace t.by_name bname id;
  t.order <- id :: t.order;
  id

let connect t ~src:(sb, sp) ~dst:(db, dp) =
  let se = entry t sb and de = entry t db in
  if sp < 0 || sp >= se.spec.Block.n_out then
    err "model %s: %s has no output port %d" t.mname se.bname sp;
  if dp < 0 || dp >= de.spec.Block.n_in then
    err "model %s: %s has no input port %d" t.mname de.bname dp;
  if Hashtbl.mem t.wires (db, dp) then
    err "model %s: input %s:%d already driven" t.mname de.bname dp;
  Hashtbl.replace t.wires (db, dp) (sb, sp)

let fc_group t gname =
  let g = t.next_group in
  t.next_group <- g + 1;
  Hashtbl.replace t.group_names g gname;
  g

let assign_group t b g =
  if not (Hashtbl.mem t.group_names g) then
    err "model %s: unknown group %d" t.mname g;
  (entry t b).egroup <- Some g

let connect_event t ~src:(sb, ep) g =
  let se = entry t sb in
  if ep < 0 || ep >= Array.length se.spec.Block.event_outs then
    err "model %s: %s has no event output %d" t.mname se.bname ep;
  if not (Hashtbl.mem t.group_names g) then
    err "model %s: unknown group %d" t.mname g;
  if Hashtbl.mem t.events (sb, ep) then
    err "model %s: event %s:%d already wired" t.mname se.bname ep;
  Hashtbl.replace t.events (sb, ep) g

let remove_block t b =
  let e = entry t b in
  Hashtbl.remove t.entries b;
  Hashtbl.remove t.by_name e.bname;
  t.order <- List.filter (fun x -> x <> b) t.order;
  let dead_wires =
    Hashtbl.fold
      (fun (db, dp) (sb, _) acc ->
        if db = b || sb = b then ((db, dp)) :: acc else acc)
      t.wires []
  in
  List.iter (Hashtbl.remove t.wires) dead_wires;
  let dead_events =
    Hashtbl.fold (fun (sb, ep) _ acc -> if sb = b then (sb, ep) :: acc else acc)
      t.events []
  in
  List.iter (Hashtbl.remove t.events) dead_events

let blocks t = List.rev t.order
let spec_of t b = (entry t b).spec
let block_name t b = (entry t b).bname
let find t n =
  match Hashtbl.find_opt t.by_name n with Some b -> b | None -> raise Not_found

let group_of t b = (entry t b).egroup

let group_name t g =
  match Hashtbl.find_opt t.group_names g with
  | Some n -> n
  | None -> err "model %s: unknown group %d" t.mname g

let groups t = List.init t.next_group (fun i -> i)

let group_blocks t g =
  List.filter (fun b -> (entry t b).egroup = Some g) (blocks t)

let driver t (b, p) = Hashtbl.find_opt t.wires (b, p)
let event_target t (b, p) = Hashtbl.find_opt t.events (b, p)
let n_blocks t = t.next_blk
let blk_index b = b
let group_index g = g

let inline parent ~prefix ~sub ~inputs =
  let port_index spec params_name =
    match Param.int_opt spec.Block.params params_name with
    | Some i -> i
    | None -> err "inline: %s block lacks an index parameter" spec.Block.kind
  in
  (* Map sub groups into parent groups. *)
  let gmap = Hashtbl.create 4 in
  List.iter
    (fun g ->
      let g' = fc_group parent (prefix ^ "/" ^ group_name sub g) in
      Hashtbl.replace gmap g g')
    (groups sub);
  (* Copy non-boundary blocks. *)
  let bmap = Hashtbl.create 16 in
  let outport_srcs = Hashtbl.create 4 in
  let n_outports = ref 0 in
  List.iter
    (fun b ->
      let e = entry sub b in
      match e.spec.Block.kind with
      | "Inport" -> ()
      | "Outport" ->
          let idx = port_index e.spec "index" in
          n_outports := Stdlib.max !n_outports (idx + 1);
          (match driver sub (b, 0) with
          | Some src -> Hashtbl.replace outport_srcs idx src
          | None -> err "inline: Outport %d of %s is unconnected" idx (name sub))
      | _ ->
          let b' = add parent ~name:(prefix ^ "/" ^ e.bname) e.spec in
          (match e.egroup with
          | Some g -> assign_group parent b' (Hashtbl.find gmap g)
          | None -> ());
          Hashtbl.replace bmap b b')
    (blocks sub);
  (* Resolve a sub-side source port to a parent-side one, following Inport
     boundaries out to the provided parent inputs. *)
  let resolve_src (sb, sp) =
    let e = entry sub sb in
    if e.spec.Block.kind = "Inport" then begin
      let idx = port_index e.spec "index" in
      if idx < 0 || idx >= Array.length inputs then
        err "inline: no parent input for Inport %d" idx;
      inputs.(idx)
    end
    else (Hashtbl.find bmap sb, sp)
  in
  (* Copy data wires whose destination survived. *)
  Hashtbl.iter
    (fun (db, dp) src ->
      match Hashtbl.find_opt bmap db with
      | Some db' -> connect parent ~src:(resolve_src src) ~dst:(db', dp)
      | None -> () (* destination was a boundary block *))
    sub.wires;
  (* Copy event wires. *)
  Hashtbl.iter
    (fun (sb, ep) g ->
      match Hashtbl.find_opt bmap sb with
      | Some sb' -> connect_event parent ~src:(sb', ep) (Hashtbl.find gmap g)
      | None -> ())
    sub.events;
  Array.init !n_outports (fun i ->
      match Hashtbl.find_opt outport_srcs i with
      | Some src -> resolve_src src
      | None -> err "inline: missing Outport %d in %s" i (name sub))
