(** Block-diagram models.

    A model is a directed graph of block instances: data connections link
    an output port to input ports, event connections link an event output
    (a hardware interrupt in the peripheral block set, §5) to a
    function-call group of blocks that execute atomically when the event
    fires. Models compose hierarchically through {!inline}, which grafts a
    sub-model (with [Inport]/[Outport] boundary blocks) into a parent — the
    single-model approach of the paper, where the very same controller
    model is simulated inside the closed loop and handed alone to the code
    generator. *)

type blk
(** Block instance handle, valid within its model. *)

type group
(** Function-call group handle. *)

type t

exception Model_error of string
(** Raised on structural mistakes (duplicate wiring, bad port index,
    unknown block). *)

val create : string -> t
val name : t -> string

val add : t -> ?name:string -> Block.spec -> blk
(** Insert a block; [name] defaults to ["<kind><n>"]. Names must be unique
    within the model. *)

val connect : t -> src:blk * int -> dst:blk * int -> unit
(** Wire output port [src] to input port [dst]. Each input accepts exactly
    one driver. @raise Model_error on re-wiring or bad indices. *)

val fc_group : t -> string -> group
(** Declare a function-call group (the body of a triggered subsystem). *)

val assign_group : t -> blk -> group -> unit
(** Place a block into a function-call group; it then executes only when
    the group's event fires. *)

val connect_event : t -> src:blk * int -> group -> unit
(** Wire event output port [src] (index into the block's [event_outs]) to
    a group. Multiple events may target the same group; one event drives at
    most one group. *)

val remove_block : t -> blk -> unit
(** Delete a block: its data wires (both directions), event wiring and
    group membership go with it. Consumers that lose their driver must be
    re-wired before {!Compile.compile} accepts the model again. Handles to
    the removed block become invalid. *)

(** {2 Interrogation} *)

val blocks : t -> blk list
(** All blocks in insertion order. *)

val spec_of : t -> blk -> Block.spec
val block_name : t -> blk -> string
val find : t -> string -> blk
(** Find a block by name. @raise Not_found. *)

val group_of : t -> blk -> group option
val group_name : t -> group -> string
val groups : t -> group list
val group_blocks : t -> group -> blk list
val driver : t -> blk * int -> (blk * int) option
(** The output port feeding an input port, if wired. *)

val event_target : t -> blk * int -> group option
val n_blocks : t -> int
val blk_index : blk -> int
(** Stable dense index of a block (0 .. n_blocks-1), usable as an array
    key by the engine and code generator. *)

val group_index : group -> int

(** {2 Composition} *)

val inline :
  t ->
  prefix:string ->
  sub:t ->
  inputs:(blk * int) array ->
  (blk * int) array
(** [inline parent ~prefix ~sub ~inputs] copies every block of [sub] into
    [parent] with names prefixed by ["prefix/"], rewires internal
    connections, replaces the sub-model's [Inport k] blocks by the parent
    sources [inputs.(k)], and returns, for each [Outport k] of [sub], the
    parent-side port now carrying that signal. Function-call groups and
    event wiring are copied along. @raise Model_error when [inputs] does
    not cover every Inport index or an Outport index is missing. *)
