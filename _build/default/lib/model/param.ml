type value =
  | Float of float
  | Int of int
  | Bool of bool
  | String of string
  | Dtype of Dtype.t
  | Floats of float array

type t = (string * value) list

let find ps k = List.assoc k ps

let clash k what = invalid_arg (Printf.sprintf "Param.%s: %s has another type" what k)

let float ps k =
  match find ps k with
  | Float x -> x
  | Int n -> float_of_int n
  | _ -> clash k "float"

let int ps k = match find ps k with Int n -> n | _ -> clash k "int"
let bool ps k = match find ps k with Bool b -> b | _ -> clash k "bool"
let string ps k = match find ps k with String s -> s | _ -> clash k "string"
let dtype ps k = match find ps k with Dtype d -> d | _ -> clash k "dtype"
let floats ps k = match find ps k with Floats a -> a | _ -> clash k "floats"

let opt f ps k = match List.assoc_opt k ps with None -> None | Some _ -> Some (f ps k)
let float_opt ps k = opt float ps k
let int_opt ps k = opt int ps k
let dtype_opt ps k = opt dtype ps k
let string_opt ps k = opt string ps k

let pp_value ppf = function
  | Float x -> Format.fprintf ppf "%g" x
  | Int n -> Format.fprintf ppf "%d" n
  | Bool b -> Format.fprintf ppf "%b" b
  | String s -> Format.fprintf ppf "%S" s
  | Dtype d -> Dtype.pp ppf d
  | Floats a ->
      Format.fprintf ppf "[%s]"
        (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%g") a)))

let to_string ps =
  String.concat ", "
    (List.map (fun (k, v) -> Format.asprintf "%s=%a" k pp_value v) ps)
