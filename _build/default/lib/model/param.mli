(** Typed block parameters.

    Parameters are what a block's dialog carries in Simulink and what a
    bean's properties carry in Processor Expert: they parameterise both the
    simulation behaviour and the generated code, so they are kept as
    introspectable data rather than baked into closures. *)

type value =
  | Float of float
  | Int of int
  | Bool of bool
  | String of string
  | Dtype of Dtype.t
  | Floats of float array

type t = (string * value) list

val float : t -> string -> float
(** Fetch a float parameter ([Int] values are promoted).
    @raise Not_found when missing, [Invalid_argument] on a type clash. *)

val int : t -> string -> int
val bool : t -> string -> bool
val string : t -> string -> string
val dtype : t -> string -> Dtype.t
val floats : t -> string -> float array

val float_opt : t -> string -> float option
val int_opt : t -> string -> int option
val dtype_opt : t -> string -> Dtype.t option
val string_opt : t -> string -> string option

val pp_value : Format.formatter -> value -> unit
val to_string : t -> string
(** One-line [k=v, ...] rendering for reports and error messages. *)
