type spec =
  | Continuous
  | Discrete of { period : float; offset : float }
  | Inherited
  | Triggered
  | Const

type resolved =
  | R_continuous
  | R_discrete of { period : float; offset : float }
  | R_triggered
  | R_const

let discrete ?(offset = 0.0) period =
  if period <= 0.0 then invalid_arg "Sample_time.discrete: period <= 0";
  if offset < 0.0 || offset >= period then
    invalid_arg "Sample_time.discrete: offset must be in [0, period)";
  Discrete { period; offset }

let eps = 1e-9

let hit r ~time ~base_dt:_ =
  match r with
  | R_continuous -> true
  | R_triggered | R_const -> false
  | R_discrete { period; offset } ->
      let k = Float.round ((time -. offset) /. period) in
      k >= -.eps && Float.abs (time -. offset -. (k *. period)) < eps *. Float.max 1.0 period

(* GCD of floats within tolerance, via rational reduction against a fine
   tick (1 ns) to stay robust against binary-fraction periods. *)
let float_gcd a b =
  let tick = 1e-9 in
  let ia = int_of_float (Float.round (a /. tick)) in
  let ib = int_of_float (Float.round (b /. tick)) in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  float_of_int (gcd (Stdlib.abs ia) (Stdlib.abs ib)) *. tick

let base_step resolveds =
  let ds =
    List.filter_map
      (function
        | R_discrete { period; offset } ->
            Some (if offset > 0.0 then float_gcd period offset else period)
        | R_continuous | R_triggered | R_const -> None)
      resolveds
  in
  match ds with
  | [] -> None
  | d :: rest -> Some (List.fold_left float_gcd d rest)

let pp_spec ppf = function
  | Continuous -> Format.pp_print_string ppf "continuous"
  | Discrete { period; offset } -> Format.fprintf ppf "discrete(%g,%g)" period offset
  | Inherited -> Format.pp_print_string ppf "inherited"
  | Triggered -> Format.pp_print_string ppf "triggered"
  | Const -> Format.pp_print_string ppf "const"

let pp_resolved ppf = function
  | R_continuous -> Format.pp_print_string ppf "continuous"
  | R_discrete { period; offset } -> Format.fprintf ppf "discrete(%g,%g)" period offset
  | R_triggered -> Format.pp_print_string ppf "triggered"
  | R_const -> Format.pp_print_string ppf "const"
