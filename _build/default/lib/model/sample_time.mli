(** Block sample times.

    Every block executes under one of these regimes, mirroring Simulink:
    continuous blocks are integrated by the solver, discrete blocks execute
    at sample hits of their period/offset, inherited blocks take the regime
    of their drivers, and triggered blocks execute only when their
    function-call group fires (the event-driven tasks of §5). *)

type spec =
  | Continuous
  | Discrete of { period : float; offset : float }
  | Inherited
  | Triggered
  | Const  (** evaluated once at initialisation (e.g. Constant block) *)

type resolved =
  | R_continuous
  | R_discrete of { period : float; offset : float }
  | R_triggered
  | R_const

val discrete : ?offset:float -> float -> spec
(** [discrete p] is [Discrete {period = p; offset = 0.}].
    @raise Invalid_argument if the period is not positive or the offset is
    negative or not smaller than the period. *)

val hit : resolved -> time:float -> base_dt:float -> bool
(** Whether a block with the given resolved regime executes at the major
    step starting at [time]; continuous blocks hit every base step. *)

val base_step : resolved list -> float option
(** Greatest common divisor of all discrete periods and offsets (within
    tolerance), i.e. the fundamental sample time of the model; [None] when
    no discrete rate exists. *)

val pp_spec : Format.formatter -> spec -> unit
val pp_resolved : Format.formatter -> resolved -> unit
