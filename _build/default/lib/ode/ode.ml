type deriv = float -> float array -> float array
type method_ = Euler | Heun | Rk4

let order = function Euler -> 1 | Heun -> 2 | Rk4 -> 4

let axpy a x y =
  (* y + a*x, elementwise, fresh array *)
  Array.init (Array.length y) (fun i -> y.(i) +. (a *. x.(i)))

let step m f t x h =
  match m with
  | Euler ->
      let k1 = f t x in
      axpy h k1 x
  | Heun ->
      let k1 = f t x in
      let k2 = f (t +. h) (axpy h k1 x) in
      Array.init (Array.length x) (fun i ->
          x.(i) +. (h /. 2.0 *. (k1.(i) +. k2.(i))))
  | Rk4 ->
      let k1 = f t x in
      let k2 = f (t +. (h /. 2.0)) (axpy (h /. 2.0) k1 x) in
      let k3 = f (t +. (h /. 2.0)) (axpy (h /. 2.0) k2 x) in
      let k4 = f (t +. h) (axpy h k3 x) in
      Array.init (Array.length x) (fun i ->
          x.(i)
          +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))

let integrate m f ~t0 ~t1 ~h x0 =
  if h <= 0.0 then invalid_arg "Ode.integrate: h must be positive";
  let rec go t x acc =
    if t >= t1 -. 1e-12 then List.rev ((t1, x) :: acc)
    else
      let h' = Float.min h (t1 -. t) in
      let x' = step m f t x h' in
      go (t +. h') x' ((t, x) :: acc)
  in
  go t0 x0 []

(* Runge-Kutta-Fehlberg 4(5) coefficients (classical Fehlberg tableau). *)
let rkf45 f ~t0 ~t1 ?(h0 = 1e-3) ?(tol = 1e-6) ?(h_min = 1e-9) x0 =
  let n = Array.length x0 in
  let stage t x h =
    let k1 = f t x in
    let k2 = f (t +. (h /. 4.0)) (axpy (h /. 4.0) k1 x) in
    let k3 =
      f
        (t +. (3.0 /. 8.0 *. h))
        (Array.init n (fun i ->
             x.(i) +. (h *. ((3.0 /. 32.0 *. k1.(i)) +. (9.0 /. 32.0 *. k2.(i))))))
    in
    let k4 =
      f
        (t +. (12.0 /. 13.0 *. h))
        (Array.init n (fun i ->
             x.(i)
             +. h
                *. ((1932.0 /. 2197.0 *. k1.(i))
                   -. (7200.0 /. 2197.0 *. k2.(i))
                   +. (7296.0 /. 2197.0 *. k3.(i)))))
    in
    let k5 =
      f (t +. h)
        (Array.init n (fun i ->
             x.(i)
             +. h
                *. ((439.0 /. 216.0 *. k1.(i)) -. (8.0 *. k2.(i))
                   +. (3680.0 /. 513.0 *. k3.(i))
                   -. (845.0 /. 4104.0 *. k4.(i)))))
    in
    let k6 =
      f
        (t +. (h /. 2.0))
        (Array.init n (fun i ->
             x.(i)
             +. h
                *. ((-8.0 /. 27.0 *. k1.(i)) +. (2.0 *. k2.(i))
                   -. (3544.0 /. 2565.0 *. k3.(i))
                   +. (1859.0 /. 4104.0 *. k4.(i))
                   -. (11.0 /. 40.0 *. k5.(i)))))
    in
    let x4 =
      Array.init n (fun i ->
          x.(i)
          +. h
             *. ((25.0 /. 216.0 *. k1.(i))
                +. (1408.0 /. 2565.0 *. k3.(i))
                +. (2197.0 /. 4104.0 *. k4.(i))
                -. (k5.(i) /. 5.0)))
    in
    let x5 =
      Array.init n (fun i ->
          x.(i)
          +. h
             *. ((16.0 /. 135.0 *. k1.(i))
                +. (6656.0 /. 12825.0 *. k3.(i))
                +. (28561.0 /. 56430.0 *. k4.(i))
                -. (9.0 /. 50.0 *. k5.(i))
                +. (2.0 /. 55.0 *. k6.(i))))
    in
    let err =
      Array.fold_left Float.max 0.0
        (Array.init n (fun i -> Float.abs (x5.(i) -. x4.(i))))
    in
    (x5, err)
  in
  let rec go t x h acc =
    if t >= t1 -. 1e-12 then List.rev ((t1, x) :: acc)
    else
      let h = Float.min h (t1 -. t) in
      let x', err = stage t x h in
      if err <= tol || h <= h_min then begin
        let grow =
          if err = 0.0 then 2.0
          else Float.min 2.0 (0.9 *. ((tol /. err) ** 0.2))
        in
        go (t +. h) x' (Float.max h_min (h *. grow)) ((t, x) :: acc)
      end
      else
        let shrink = Float.max 0.1 (0.9 *. ((tol /. err) ** 0.25)) in
        go t x (Float.max h_min (h *. shrink)) acc
  in
  go t0 x0 h0 []
