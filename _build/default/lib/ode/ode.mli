(** Fixed- and adaptive-step ODE solvers.

    The MIL simulation engine integrates the continuous states of the plant
    model with one of these solvers, exactly as Simulink's fixed-step
    solvers do during the paper's closed-loop simulation (Fig 7.1). The
    derivative function [f t x] returns dx/dt; states are flat float
    arrays. *)

type deriv = float -> float array -> float array

type method_ = Euler | Heun | Rk4
(** Explicit fixed-step methods (Simulink ode1, ode2, ode4). *)

val step : method_ -> deriv -> float -> float array -> float -> float array
(** [step m f t x h] advances [x] from [t] to [t +. h]. The input array is
    not mutated. *)

val integrate :
  method_ ->
  deriv ->
  t0:float ->
  t1:float ->
  h:float ->
  float array ->
  (float * float array) list
(** Dense fixed-step integration from [t0] to [t1]; returns the trajectory
    including both endpoints. The final step is shortened to land exactly
    on [t1]. *)

val rkf45 :
  deriv ->
  t0:float ->
  t1:float ->
  ?h0:float ->
  ?tol:float ->
  ?h_min:float ->
  float array ->
  (float * float array) list
(** Adaptive Runge–Kutta–Fehlberg 4(5) with per-step error control
    (Simulink ode45 equivalent), used to produce reference trajectories
    against which the fixed-step results are validated. *)

val order : method_ -> int
(** Classical convergence order of a method. *)
