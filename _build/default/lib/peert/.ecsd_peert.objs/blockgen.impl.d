lib/peert/blockgen.ml: Array Block C_ast C_print Dtype Float Fun Hashtbl List Option Param Pid Printf String Ztransfer
