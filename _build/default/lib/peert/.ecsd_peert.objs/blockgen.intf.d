lib/peert/blockgen.mli: Block C_ast
