lib/peert/cost_model.ml: Array Block Dtype Float Mcu_db Param String
