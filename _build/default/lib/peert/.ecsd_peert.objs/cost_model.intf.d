lib/peert/cost_model.mli: Block Dtype Mcu_db
