lib/peert/pil_target.ml: Bean Bean_project Block Blockgen C_ast Compile List Model Printf Stdlib String Target
