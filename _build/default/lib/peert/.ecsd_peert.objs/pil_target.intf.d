lib/peert/pil_target.mli: Bean_project C_ast Compile Target
