lib/peert/plantgen.ml: Array Block Blockgen C_ast C_print Float List Param Printf String
