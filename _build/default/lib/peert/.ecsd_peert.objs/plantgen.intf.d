lib/peert/plantgen.mli: Block Blockgen
