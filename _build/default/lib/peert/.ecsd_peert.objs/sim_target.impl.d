lib/peert/sim_target.ml: Array Block Blockgen C_ast C_print Compile Filename List Model Param Plantgen Printf Stdlib String Sys Target
