lib/peert/sim_target.mli: C_ast Compile
