lib/peert/target.mli: Bean_project Blockgen C_ast Compile Model
