type op_mix = {
  adds : int;
  muls : int;
  divs : int;
  compares : int;
  memops : int;
  calls : int;
  fn_evals : int;
}

let zero_mix =
  { adds = 0; muls = 0; divs = 0; compares = 0; memops = 0; calls = 0; fn_evals = 0 }

let mix_of_block spec dtype =
  ignore dtype;
  let m = zero_mix in
  match spec.Block.kind with
  | "Constant" | "Inport" | "Outport" | "ZOH" | "Terminator" | "PE_BitIO_Out"
  | "PE_BitIO_In" ->
      { m with memops = 2 }
  | "Gain" -> { m with muls = 1; memops = 2 }
  | "Sum" ->
      let n = String.length (Param.string spec.Block.params "signs") in
      { m with adds = n; memops = n + 1 }
  | "Product" ->
      let n = Param.int spec.Block.params "n" in
      { m with muls = n - 1; memops = n + 1 }
  | "Divide" -> { m with divs = 1; memops = 3 }
  | "Abs" | "Neg" | "Sign" -> { m with compares = 1; memops = 2 }
  | "Min" | "Max" -> { m with compares = 1; memops = 3 }
  | "Cast" -> { m with muls = 1; memops = 2 }
  | "Compare" -> { m with compares = 1; memops = 3 }
  | "Logic" -> { m with compares = 1; memops = 3 }
  | "MathFn" -> { m with fn_evals = 1; memops = 2 }
  | "UnitDelay" | "DelayN" -> { m with memops = 3 }
  | "DiscreteIntegrator" -> { m with adds = 1; muls = 1; compares = 2; memops = 4 }
  | "DiscreteDerivative" -> { m with adds = 1; muls = 2; memops = 4 }
  | "DiscreteTransferFcn" ->
      let ord = Array.length (Param.floats spec.Block.params "den") - 1 in
      { m with adds = 2 * ord; muls = (2 * ord) + 1; memops = (3 * ord) + 2 }
  | "Pid" | "FixPid" ->
      { m with adds = 6; muls = 4; compares = 4; memops = 10 }
  | "RateLimiter" -> { m with adds = 2; muls = 2; compares = 2; memops = 4 }
  | "MovingAverage" ->
      let n = Param.int spec.Block.params "n" in
      { m with adds = n; divs = 1; memops = n + 4 }
  | "EncoderSpeed" -> { m with adds = 1; muls = 1; divs = 1; memops = 4 }
  | "Saturation" -> { m with compares = 2; memops = 2 }
  | "Quantizer" -> { m with muls = 2; divs = 1; memops = 2 }
  | "DeadZone" -> { m with compares = 2; adds = 1; memops = 2 }
  | "Relay" | "Switch" -> { m with compares = 1; memops = 4 }
  | "CoulombFriction" -> { m with compares = 1; adds = 1; muls = 1; memops = 2 }
  | "Backlash" -> { m with compares = 2; adds = 2; memops = 3 }
  | "Lookup1D" | "Lookup1DNearest" ->
      let n = Array.length (Param.floats spec.Block.params "xs") in
      (* binary search + one interpolation *)
      let log2n = int_of_float (ceil (log (float_of_int n) /. log 2.0)) in
      { m with compares = log2n; adds = 2; muls = 1; divs = 1; memops = log2n + 4 }
  | "Step" | "Ramp" | "Pulse" | "SetpointSchedule" | "Clock" ->
      { m with compares = 1; memops = 2 }
  | "Sine" -> { m with fn_evals = 1; muls = 2; adds = 2; memops = 2 }
  | "UniformNoise" -> { m with muls = 3; adds = 2; memops = 3 }
  | "PE_Adc" -> { m with calls = 2; memops = 3 }
  | "PE_Pwm" -> { m with calls = 1; muls = 1; memops = 2 }
  | "PE_QuadDec" -> { m with calls = 1; memops = 2 }
  | "PE_TimerInt" -> m
  | "Merge2" -> { m with compares = 2; memops = 4 }
  | _ ->
      (* unknown/custom blocks get a conservative default *)
      { m with adds = 2; muls = 2; memops = 4 }

(* Per-operation cycle costs by arithmetic class and CPU traits. *)
let op_costs mcu dtype =
  let soft_float = not mcu.Mcu_db.has_fpu && Dtype.is_float dtype in
  let wide = Dtype.bits dtype > mcu.Mcu_db.word_bits in
  if soft_float then
    (* software floating point library calls *)
    let scale = if Dtype.equal dtype Dtype.Single then 0.6 else 1.0 in
    let c x = int_of_float (Float.round (float_of_int x *. scale)) in
    (c 85, c 120, c 320, c 35, 3, 8, c 900)
  else begin
    let mul = if mcu.Mcu_db.has_mac then 2 else 12 in
    let widen n = if wide then n * 3 else n in
    (widen 1, widen mul, widen 28, widen 1, (if wide then 4 else 2), 8, 600)
  end

let cycles_of_mix mcu dtype mix =
  let add_c, mul_c, div_c, cmp_c, mem_c, call_c, fn_c = op_costs mcu dtype in
  (mix.adds * add_c) + (mix.muls * mul_c) + (mix.divs * div_c)
  + (mix.compares * cmp_c) + (mix.memops * mem_c) + (mix.calls * call_c)
  + (mix.fn_evals * fn_c)

let block_dispatch_overhead = 3

let cycles_of_block mcu spec dtype =
  block_dispatch_overhead + cycles_of_mix mcu dtype (mix_of_block spec dtype)

let stack_bytes_of_block spec =
  match spec.Block.kind with
  | "Pid" | "FixPid" | "DiscreteTransferFcn" -> 24
  | "Lookup1D" | "Lookup1DNearest" | "MovingAverage" -> 16
  | "MathFn" | "Sine" -> 32
  | "PE_Adc" | "PE_Pwm" | "PE_QuadDec" -> 12
  | _ -> 8
