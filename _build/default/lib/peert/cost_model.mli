(** Execution-time model of generated block code.

    The PIL simulation's purpose is to show "the execution times of the
    implemented controller code, interrupts response times, sampling
    jitters, memory and stack requirements" (§6). Since the virtual MCU
    does not interpret machine code, each block's generated step is
    charged a cycle budget derived from its operation mix and the CPU's
    traits: hardware MAC makes fixed-point multiplies single-digit
    cycles, a missing FPU makes every double operation a software-library
    call, and narrower cores pay for wide arithmetic. The absolute
    numbers are engineering estimates; the *relative* behaviour (float
    vs. fixed, 16- vs 32-bit) is what the experiments rely on. *)

type op_mix = {
  adds : int;
  muls : int;
  divs : int;
  compares : int;
  memops : int;  (** loads/stores of signals and states *)
  calls : int;  (** function-call overheads (bean methods etc.) *)
  fn_evals : int;  (** elementary function evaluations (sin, exp, ...) *)
}

val zero_mix : op_mix

val mix_of_block : Block.spec -> Dtype.t -> op_mix
(** Operation mix of one step of a block whose arithmetic runs at the
    given data type. *)

val cycles_of_mix : Mcu_db.t -> Dtype.t -> op_mix -> int
(** Charge a mix at a data type on a CPU. *)

val cycles_of_block : Mcu_db.t -> Block.spec -> Dtype.t -> int
(** [cycles_of_mix] of [mix_of_block], plus the per-block dispatch
    overhead. *)

val stack_bytes_of_block : Block.spec -> int
(** Worst-case stack the block's generated step needs (locals +
    call frames). *)
