open C_ast

let nothing = Blockgen.{ state_fields = []; init = []; step = []; update = []; needs_time = false }

let in0 g = List.nth g.Blockgen.ins 0
let out_ g i = List.nth g.Blockgen.outs i
let out0 g = out_ g 0

(* Load torque expression of the serialised {!Load_profile} (see
   Plant_blocks.load_params); [w] is the current speed expression. *)
let load_torque_expr ps w =
  match Param.string_opt ps "load" with
  | None | Some "none" -> flt 0.0
  | Some "constant" -> flt (Param.float ps "load_tau")
  | Some "viscous" -> Bin ("*", flt (Param.float ps "load_k"), w)
  | Some "step" ->
      Ternary
        ( Bin (">=", Var "model_time", flt (Param.float ps "load_at")),
          flt (Param.float ps "load_tau"), flt 0.0 )
  | Some "pulse" ->
      Ternary
        ( Bin
            ( "&&",
              Bin (">=", Var "model_time", flt (Param.float ps "load_start")),
              Bin ("<", Var "model_time", flt (Param.float ps "load_stop")) ),
          flt (Param.float ps "load_tau"), flt 0.0 )
  | Some _ -> flt 0.0 (* composite profiles have no C realisation *)

let emit_builtin ~dt g spec =
  let ps = spec.Block.params in
  let pf = Param.float ps in
  match spec.Block.kind with
  | "Integrator" ->
      (* dx/dt = k*u with u held: exact update x += k*u*dt *)
      Blockgen.
        {
          nothing with
          state_fields = [ (Double_t, "x") ];
          init = [ Assign (g.Blockgen.state "x", flt (pf "init")) ];
          step = [ Assign (out0 g, g.Blockgen.state "x") ];
          update =
            [
              Assign
                ( g.Blockgen.state "x",
                  Bin ("+", g.Blockgen.state "x",
                       Bin ("*", flt (pf "k" *. dt), in0 g)) );
            ];
        }
  | "FirstOrder" ->
      (* exact ZOH discretisation of k/(tau s + 1) *)
      let k = pf "k" and tau = pf "tau" in
      let a = exp (-.dt /. tau) in
      Blockgen.
        {
          nothing with
          state_fields = [ (Double_t, "x") ];
          init = [ Assign (g.Blockgen.state "x", flt 0.0) ];
          step = [ Assign (out0 g, g.Blockgen.state "x") ];
          update =
            [
              Assign
                ( g.Blockgen.state "x",
                  Bin ("+", Bin ("*", flt a, g.Blockgen.state "x"),
                       Bin ("*", flt (k *. (1.0 -. a)), in0 g)) );
            ];
        }
  | "TransferFcn" | "StateSpace" ->
      (* controllable-canonical / explicit state space under held-input
         RK4; matrices baked as static tables via a Raw block *)
      let n, a_flat, b_vec, c_vec, d =
        match spec.Block.kind with
        | "StateSpace" ->
            ( Param.int ps "n",
              Param.floats ps "a",
              Param.floats ps "b",
              Param.floats ps "c",
              pf "d" )
        | _ ->
            (* rebuild the canonical realisation exactly as the block does *)
            let num = Param.floats ps "num" and den = Param.floats ps "den" in
            let n = Array.length den - 1 in
            let dennorm = Array.map (fun x -> x /. den.(0)) den in
            let numpad =
              let k = Array.length den - Array.length num in
              Array.init (Array.length den) (fun i ->
                  (if i < k then 0.0 else num.(i - k)) /. den.(0))
            in
            let d = numpad.(0) in
            let c = Array.init n (fun i -> numpad.(i + 1) -. (d *. dennorm.(i + 1))) in
            let a =
              Array.init n (fun i ->
                  Array.init n (fun j ->
                      if i = 0 then -.dennorm.(j + 1)
                      else if j = i - 1 then 1.0
                      else 0.0))
            in
            (n, Array.concat (Array.to_list a), Array.init n (fun i -> if i = 0 then 1.0 else 0.0), c, d)
      in
      let arr name values =
        Printf.sprintf "static const double %s_%s[%d] = {%s};" g.Blockgen.name name
          (Array.length values)
          (String.concat ", "
             (Array.to_list (Array.map (Printf.sprintf "%.17g") values)))
      in
      let nm = g.Blockgen.name in
      Blockgen.
        {
          nothing with
          state_fields = [ (Arr (Double_t, n), "x") ];
          init =
            [
              For
                ( Decl (I32, "i", Some (Int_lit 0)),
                  Bin ("<", Var "i", Int_lit n),
                  Expr (Un ("++", Var "i")),
                  [ Assign (Index (g.Blockgen.state "x", Var "i"), flt 0.0) ] );
            ];
          step =
            [
              (* tables first: step and update share one function body in
                 the simulator target *)
              Raw (arr "A" a_flat);
              Raw (arr "B" b_vec);
              Raw (arr "C" c_vec);
              Decl (Double_t, nm ^ "_y", Some (Bin ("*", flt d, in0 g)));
              For
                ( Decl (I32, "i", Some (Int_lit 0)),
                  Bin ("<", Var "i", Int_lit n),
                  Expr (Un ("++", Var "i")),
                  [
                    Assign
                      ( Var (nm ^ "_y"),
                        Bin ("+", Var (nm ^ "_y"),
                             Bin ("*", Index (Var (nm ^ "_C"), Var "i"),
                                  Index (g.Blockgen.state "x", Var "i"))) );
                  ] );
              Assign (out0 g, Var (nm ^ "_y"));
            ];
          update =
            [
              Comment
                (Printf.sprintf
                   "held-input RK4 over one %g s step (4 derivative evaluations)" dt);
              Raw
                (Printf.sprintf
                   "{ double k1[%d], k2[%d], k3[%d], k4[%d], xs[%d]; int i, j, s;\n\
                   \  double u = %s;\n\
                   \  double *ks[4] = {k1, k2, k3, k4};\n\
                   \  double coef[4] = {0.0, 0.5, 0.5, 1.0};\n\
                   \  for (s = 0; s < 4; ++s) {\n\
                   \    for (i = 0; i < %d; ++i) {\n\
                   \      xs[i] = %s[i] + (s ? coef[s] * %g * ks[s-1][i] : 0.0);\n\
                   \    }\n\
                   \    for (i = 0; i < %d; ++i) {\n\
                   \      double acc = %s_B[i] * u;\n\
                   \      for (j = 0; j < %d; ++j) acc += %s_A[i * %d + j] * xs[j];\n\
                   \      ks[s][i] = acc;\n\
                   \    }\n\
                   \  }\n\
                   \  for (i = 0; i < %d; ++i)\n\
                   \    %s[i] += %g / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]); }"
                   n n n n n
                   (C_print.expr_to_string (in0 g))
                   n
                   (C_print.expr_to_string (g.Blockgen.state "x"))
                   dt n nm n nm n n
                   (C_print.expr_to_string (g.Blockgen.state "x"))
                   dt);
            ];
        }
  | "DcMotor" ->
      let nm = g.Blockgen.name in
      let xi = Index (g.Blockgen.state "x", Int_lit 0) in
      let xw = Index (g.Blockgen.state "x", Int_lit 1) in
      let xt = Index (g.Blockgen.state "x", Int_lit 2) in
      Blockgen.
        {
          needs_time = true;
          state_fields = [ (Arr (Double_t, 3), "x") ];
          init =
            List.init 3 (fun i ->
                Assign (Index (g.Blockgen.state "x", Int_lit i), flt 0.0));
          step =
            [
              Assign (out0 g, xw);
              Assign (out_ g 1, xt);
              Assign (out_ g 2, xi);
            ];
          update =
            [
              Comment "electro-mechanical DC motor, held-input RK4";
              Decl (Double_t, nm ^ "_u", Some (in0 g));
              Decl (Double_t, nm ^ "_tau", Some (load_torque_expr ps xw));
              Raw
                (Printf.sprintf
                   "{ double x0[3] = {%s, %s, %s};\n\
                   \  double k[4][3]; double xs[3]; int s, i;\n\
                   \  double coef[4] = {0.0, 0.5, 0.5, 1.0};\n\
                   \  for (s = 0; s < 4; ++s) {\n\
                   \    for (i = 0; i < 3; ++i)\n\
                   \      xs[i] = x0[i] + (s ? coef[s] * %g * k[s-1][i] : 0.0);\n\
                   \    k[s][0] = (%s_u - %.17g * xs[0] - %.17g * xs[1]) / %.17g;\n\
                   \    k[s][1] = (%.17g * xs[0] - %.17g * xs[1] - %s_tau) / %.17g;\n\
                   \    k[s][2] = xs[1];\n\
                   \  }\n\
                   \  %s = x0[0] + %g / 6.0 * (k[0][0] + 2*k[1][0] + 2*k[2][0] + k[3][0]);\n\
                   \  %s = x0[1] + %g / 6.0 * (k[0][1] + 2*k[1][1] + 2*k[2][1] + k[3][1]);\n\
                   \  %s = x0[2] + %g / 6.0 * (k[0][2] + 2*k[1][2] + 2*k[2][2] + k[3][2]); }"
                   (C_print.expr_to_string xi) (C_print.expr_to_string xw)
                   (C_print.expr_to_string xt)
                   dt
                   nm (pf "ra") (pf "ke") (pf "la")
                   (pf "kt") (pf "b") nm (pf "j")
                   (C_print.expr_to_string xi) dt
                   (C_print.expr_to_string xw) dt
                   (C_print.expr_to_string xt) dt);
            ];
        }
  | "PowerStage" ->
      let supply = pf "u_supply" and r_on = pf "r_on" in
      let dead = pf "dead_time_frac" in
      let bipolar = Param.bool ps "bipolar" in
      let nm = g.Blockgen.name in
      let duty_eff =
        Bin ("-", Var (nm ^ "_d"), flt dead)
      in
      Blockgen.
        {
          nothing with
          step =
            [
              Decl (Double_t, nm ^ "_d", Some (in0 g));
              If (Bin ("<", Var (nm ^ "_d"), flt 0.0),
                  [ Assign (Var (nm ^ "_d"), flt 0.0) ], []);
              If (Bin (">", Var (nm ^ "_d"), flt 1.0),
                  [ Assign (Var (nm ^ "_d"), flt 1.0) ], []);
              Decl
                ( Double_t, nm ^ "_de",
                  Some (Ternary (Bin (">", duty_eff, flt 0.0), duty_eff, flt 0.0)) );
              Assign
                ( out0 g,
                  Bin
                    ( "-",
                      (if bipolar then
                         Bin ("*",
                              Bin ("-", Bin ("*", flt 2.0, Var (nm ^ "_de")), flt 1.0),
                              flt supply)
                       else Bin ("*", Var (nm ^ "_de"), flt supply)),
                      Bin ("*", flt r_on, List.nth g.Blockgen.ins 1) ) );
            ];
        }
  | "EncoderCounts" ->
      let cpr = 4 * Param.int ps "lines_per_rev" in
      Blockgen.
        {
          nothing with
          step =
            [
              Assign
                ( out0 g,
                  Cast_to
                    ( I32,
                      call "floor"
                        [
                          Bin ("*", Bin ("/", in0 g, flt (2.0 *. Float.pi)),
                               flt (float_of_int cpr));
                        ] ) );
            ];
        }
  | "ThermalPlant" ->
      (* exact exponential update of the linear thermal model *)
      let c_th = pf "c_th" and r_th = pf "r_th" in
      let t_amb = pf "t_amb" and p_max = pf "p_max" in
      let a = exp (-.dt /. (r_th *. c_th)) in
      let nm = g.Blockgen.name in
      Blockgen.
        {
          nothing with
          state_fields = [ (Double_t, "temp") ];
          init = [ Assign (g.Blockgen.state "temp", flt t_amb) ];
          step = [ Assign (out0 g, g.Blockgen.state "temp") ];
          update =
            [
              Decl (Double_t, nm ^ "_p", Some (in0 g));
              If (Bin ("<", Var (nm ^ "_p"), flt 0.0),
                  [ Assign (Var (nm ^ "_p"), flt 0.0) ], []);
              If (Bin (">", Var (nm ^ "_p"), flt p_max),
                  [ Assign (Var (nm ^ "_p"), flt p_max) ], []);
              Decl
                ( Double_t, nm ^ "_tinf",
                  Some (Bin ("+", flt t_amb, Bin ("*", Var (nm ^ "_p"), flt r_th))) );
              Assign
                ( g.Blockgen.state "temp",
                  Bin ("+", Var (nm ^ "_tinf"),
                       Bin ("*", flt a,
                            Bin ("-", g.Blockgen.state "temp", Var (nm ^ "_tinf")))) );
            ];
        }
  | _ -> Blockgen.emit g spec

let emit ~dt g spec = emit_builtin ~dt g spec

let supported_sim spec =
  match spec.Block.kind with
  | "Integrator" | "FirstOrder" | "TransferFcn" | "StateSpace" | "DcMotor"
  | "PowerStage" | "EncoderCounts" | "ThermalPlant" ->
      true
  | _ -> Blockgen.supported spec
