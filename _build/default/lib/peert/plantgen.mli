(** C emitters for plant-side (continuous) blocks.

    The embedded target refuses these blocks — code is generated "for the
    controller subsystem only" (§5) — but the {e simulator} target needs
    them: the paper generates the plant model "for the xPC target and
    started on the simulator PC" (§6), and its conclusions call for a
    Linux replacement. Continuous dynamics are realised per block with the
    input held over the step (zero-order-hold coupling): linear
    first-order blocks use their exact discretisation, higher-order and
    nonlinear blocks a baked fixed-step RK4. *)

val emit : dt:float -> Blockgen.gctx -> Block.spec -> Blockgen.gen
(** Emit the simulator realisation of a plant block at the simulator step
    [dt]. Kinds covered: Integrator, FirstOrder, TransferFcn, StateSpace,
    DcMotor, PowerStage, EncoderCounts, ThermalPlant; anything else
    falls through to {!Blockgen.emit}. *)

val supported_sim : Block.spec -> bool
(** Whether the block has a simulator-side realisation (embedded-
    supported kinds included). *)
