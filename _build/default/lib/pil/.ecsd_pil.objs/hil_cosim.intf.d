lib/pil/hil_cosim.mli: Dc_motor Encoder Load_profile Mcu_db Sim Stats Target
