lib/pil/pil_cosim.ml: Array Block Compile Dtype Float Framer Int64 List Machine Mcu_db Model Packet Printf Sci_periph Sim Stats Target Value
