lib/pil/pil_cosim.mli: Mcu_db Sim Stats Target
