lib/plant/dc_motor.mli: Ode
