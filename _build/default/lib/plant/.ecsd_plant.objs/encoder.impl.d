lib/plant/encoder.ml: Float
