lib/plant/encoder.mli:
