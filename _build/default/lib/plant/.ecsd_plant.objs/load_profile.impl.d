lib/plant/load_profile.ml: List
