lib/plant/load_profile.mli:
