lib/plant/power_stage.ml: Float
