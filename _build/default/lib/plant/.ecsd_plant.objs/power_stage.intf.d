lib/plant/power_stage.mli:
