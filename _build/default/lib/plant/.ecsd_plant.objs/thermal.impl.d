lib/plant/thermal.ml:
