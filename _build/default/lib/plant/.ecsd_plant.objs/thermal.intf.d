lib/plant/thermal.mli:
