type params = {
  ra : float;
  la : float;
  ke : float;
  kt : float;
  j : float;
  b : float;
  u_max : float;
}

(* A 24 V brushed servo motor: ~0.5 ms electrical and ~60 ms mechanical
   time constant, no-load speed about 460 rad/s at 24 V. *)
let default =
  {
    ra = 2.0;
    la = 1.0e-3;
    ke = 0.05;
    kt = 0.05;
    j = 1.5e-5;
    b = 1.0e-5;
    u_max = 24.0;
  }

type state = { i : float; w : float; theta : float }

let initial = { i = 0.0; w = 0.0; theta = 0.0 }

let derivatives p ~u ~tau_load s =
  let di = (u -. (p.ra *. s.i) -. (p.ke *. s.w)) /. p.la in
  let dw = ((p.kt *. s.i) -. (p.b *. s.w) -. tau_load) /. p.j in
  (di, dw)

let step ?(method_ = Ode.Rk4) p ~u ~tau_load ~h s =
  let f _t x =
    let s = { i = x.(0); w = x.(1); theta = x.(2) } in
    let di, dw = derivatives p ~u ~tau_load s in
    [| di; dw; s.w |]
  in
  let x' = Ode.step method_ f 0.0 [| s.i; s.w; s.theta |] h in
  { i = x'.(0); w = x'.(1); theta = x'.(2) }

let steady_state_speed p ~u ~tau_load =
  ((p.kt *. u) -. (p.ra *. tau_load)) /. ((p.ra *. p.b) +. (p.ke *. p.kt))

let electrical_time_constant p = p.la /. p.ra
let mechanical_time_constant p = p.j *. p.ra /. ((p.ra *. p.b) +. (p.ke *. p.kt))
