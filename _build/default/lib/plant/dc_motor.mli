(** Electro-mechanical model of a mechanically commutated DC motor.

    The plant of the paper's case study (§7): the motor is actuated by a
    power transistor switched by a PWM signal, the feedback is an
    incremental rotary encoder. The standard two-state model is

    {v
      La * di/dt = u - Ra*i - Ke*w
      J  * dw/dt = Kt*i - b*w - tau_load
    v}

    with electrical state [i] (armature current, A) and mechanical state
    [w] (angular velocity, rad/s). *)

type params = {
  ra : float;  (** armature resistance, Ohm *)
  la : float;  (** armature inductance, H *)
  ke : float;  (** back-EMF constant, V.s/rad *)
  kt : float;  (** torque constant, N.m/A *)
  j : float;  (** rotor + load inertia, kg.m^2 *)
  b : float;  (** viscous friction, N.m.s/rad *)
  u_max : float;  (** supply voltage available to the power stage, V *)
}

val default : params
(** A small 24 V servo motor parameterisation (Maxon-class), chosen so the
    closed loop at 1 kHz sampling reproduces the dynamics regime of the
    paper's MC56F8367 servo demo. *)

type state = { i : float; w : float; theta : float }
(** Current, angular velocity, and integrated shaft angle (rad). *)

val initial : state

val derivatives : params -> u:float -> tau_load:float -> state -> float * float
(** [(di/dt, dw/dt)] at the given input voltage and load torque. *)

val step :
  ?method_:Ode.method_ ->
  params ->
  u:float ->
  tau_load:float ->
  h:float ->
  state ->
  state
(** Advance the motor by [h] seconds with the input held constant (the
    zero-order-hold coupling a PWM power stage provides). Integrates
    [theta] alongside the two dynamic states. *)

val steady_state_speed : params -> u:float -> tau_load:float -> float
(** Analytic steady-state speed for a constant voltage, used as a test
    oracle: [w_ss = (Kt*u - Ra*tau) / (Ra*b + Ke*Kt)]. *)

val electrical_time_constant : params -> float
val mechanical_time_constant : params -> float
