type t = { lines : int }

let create ?(lines_per_rev = 100) () =
  if lines_per_rev <= 0 then invalid_arg "Encoder.create: lines_per_rev";
  { lines = lines_per_rev }

let lines_per_rev t = t.lines
let counts_per_rev t = 4 * t.lines
let two_pi = 2.0 *. Float.pi

let signals t ~theta =
  (* Position within one electrical line, in [0, 1). *)
  let frac =
    let f = Float.rem (theta /. two_pi *. float_of_int t.lines) 1.0 in
    if f < 0.0 then f +. 1.0 else f
  in
  (* Quadrature: A leads B by a quarter line for positive rotation. *)
  let a = frac < 0.5 in
  let b = frac >= 0.25 && frac < 0.75 in
  let rev_frac =
    let f = Float.rem (theta /. two_pi) 1.0 in
    if f < 0.0 then f +. 1.0 else f
  in
  let index = rev_frac < 0.25 /. float_of_int t.lines in
  (a, b, index)

let count_of_angle t ~theta =
  int_of_float (Float.floor (theta /. two_pi *. float_of_int (counts_per_rev t)))

let angle_of_count t c = float_of_int c *. two_pi /. float_of_int (counts_per_rev t)

let speed_of_counts t ~dt c0 c1 =
  if dt <= 0.0 then invalid_arg "Encoder.speed_of_counts: dt";
  float_of_int (c1 - c0) *. two_pi /. float_of_int (counts_per_rev t) /. dt
