(** Incremental rotary encoder (IRC) model.

    The case-study feedback device: "100 periods of two phase shifted pulse
    signals A and B per rotation and one index pulse per rotation" (§7).
    The model converts a continuous shaft angle into quadrature signal
    levels and into the edge count a hardware quadrature decoder
    accumulates (4 counts per line in x4 decoding). *)

type t

val create : ?lines_per_rev:int -> unit -> t
(** [lines_per_rev] defaults to the paper's 100. *)

val lines_per_rev : t -> int

val counts_per_rev : t -> int
(** x4 decoding: [4 * lines_per_rev]. *)

val signals : t -> theta:float -> bool * bool * bool
(** [(a, b, index)] signal levels at shaft angle [theta] (rad). The index
    pulse is active in the first quarter line of each revolution. *)

val count_of_angle : t -> theta:float -> int
(** Ideal x4 decoder count for an absolute angle, negative for negative
    angles — the value a {!Qdec} peripheral register converges to. *)

val angle_of_count : t -> int -> float
(** Inverse quantised mapping: angle represented by a count. *)

val speed_of_counts :
  t -> dt:float -> int -> int -> float
(** [speed_of_counts enc ~dt c0 c1] is the angular velocity estimate
    (rad/s) a controller computes from two successive count captures one
    sample period apart; quantisation makes this the dominant measurement
    noise in the loop. *)
