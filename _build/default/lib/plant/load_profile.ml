type t =
  | No_load
  | Constant of float
  | Viscous of float
  | Step of { at : float; torque : float }
  | Pulse of { start : float; stop : float; torque : float }
  | Sum of t list

let rec torque t ~time ~w =
  match t with
  | No_load -> 0.0
  | Constant tau -> tau
  | Viscous k -> k *. w
  | Step { at; torque = tau } -> if time >= at then tau else 0.0
  | Pulse { start; stop; torque = tau } ->
      if time >= start && time < stop then tau else 0.0
  | Sum l -> List.fold_left (fun acc p -> acc +. torque p ~time ~w) 0.0 l
