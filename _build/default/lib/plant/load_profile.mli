(** Load-torque profiles applied to the motor shaft during experiments. *)

type t =
  | No_load
  | Constant of float  (** constant torque, N.m *)
  | Viscous of float  (** torque = k * w *)
  | Step of { at : float; torque : float }
      (** torque applied from time [at] on — the disturbance-rejection
          workload of experiment E1 *)
  | Pulse of { start : float; stop : float; torque : float }
  | Sum of t list

val torque : t -> time:float -> w:float -> float
(** Load torque at a simulation time and shaft speed. *)
