type t = {
  u_supply : float;
  dead_time_frac : float;
  r_on : float;
  bipolar : bool;
}

let ideal ~u_supply =
  { u_supply; dead_time_frac = 0.0; r_on = 0.0; bipolar = false }

let bipolar ~u_supply =
  { u_supply; dead_time_frac = 0.0; r_on = 0.0; bipolar = true }

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let output_voltage t ~duty ~i =
  let d = clamp01 duty in
  let d_eff = Float.max 0.0 (d -. t.dead_time_frac) in
  let u_ideal =
    if t.bipolar then ((2.0 *. d_eff) -. 1.0) *. t.u_supply
    else d_eff *. t.u_supply
  in
  u_ideal -. (t.r_on *. i)

let duty_of_voltage t u =
  if t.bipolar then clamp01 (((u /. t.u_supply) +. 1.0) /. 2.0)
  else clamp01 (u /. t.u_supply)
