(** PWM power stage (switched transistor bridge) model.

    The motor "is actuated by a power transistor switched by a pulse width
    modulated signal from the MCU" (§7). Because the PWM frequency (tens of
    kHz) is far above the electrical pole of the motor, the stage is
    modelled by its cycle-averaged output voltage, plus an optional
    dead-time and resistive-drop non-ideality used in the fidelity
    experiments. *)

type t = {
  u_supply : float;  (** bridge supply voltage, V *)
  dead_time_frac : float;  (** duty lost to switching dead time, 0..1 *)
  r_on : float;  (** conduction resistance of the transistor, Ohm *)
  bipolar : bool;  (** bipolar drive maps duty 0..1 to -U..+U *)
}

val ideal : u_supply:float -> t
(** Lossless unipolar stage. *)

val bipolar : u_supply:float -> t
(** Lossless bipolar (full-bridge) stage: duty 0.5 is 0 V. *)

val output_voltage : t -> duty:float -> i:float -> float
(** Cycle-averaged voltage applied to the motor for a commanded duty ratio
    (clamped to 0..1) at armature current [i]. *)

val duty_of_voltage : t -> float -> float
(** Inverse mapping for the ideal part of the stage (used by controllers to
    convert a commanded voltage into a PWM ratio), clamped to 0..1. *)
