type params = { c_th : float; r_th : float; t_amb : float; p_max : float }

let default = { c_th = 150.0; r_th = 2.0; t_amb = 25.0; p_max = 200.0 }

let clamp_power p x = if x < 0.0 then 0.0 else if x > p.p_max then p.p_max else x

let derivative p ~p_in temp =
  let p_in = clamp_power p p_in in
  (p_in -. ((temp -. p.t_amb) /. p.r_th)) /. p.c_th

let steady_state p ~p_in = p.t_amb +. (clamp_power p p_in *. p.r_th)
let time_constant p = p.r_th *. p.c_th

(* Exact discretisation of the linear first-order model. *)
let step p ~p_in ~h temp =
  let tau = time_constant p in
  let t_inf = steady_state p ~p_in in
  t_inf +. ((temp -. t_inf) *. exp (-.h /. tau))
