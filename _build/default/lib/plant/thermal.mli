(** First-order thermal plant.

    A second application domain for the examples: temperature control of a
    heated mass, [C * dT/dt = P_in - (T - T_amb)/R]. Slow dynamics make it
    the natural workload for the low-rate multitasking examples. *)

type params = {
  c_th : float;  (** heat capacity, J/K *)
  r_th : float;  (** thermal resistance to ambient, K/W *)
  t_amb : float;  (** ambient temperature, degC *)
  p_max : float;  (** heater power ceiling, W *)
}

val default : params

val derivative : params -> p_in:float -> float -> float
(** dT/dt at heater power [p_in] (clamped to 0..p_max) and temperature. *)

val step : params -> p_in:float -> h:float -> float -> float
(** Advance the temperature by [h] seconds (exact exponential update, so
    the model is unconditionally stable for any step). *)

val steady_state : params -> p_in:float -> float
(** Equilibrium temperature for constant power. *)

val time_constant : params -> float
