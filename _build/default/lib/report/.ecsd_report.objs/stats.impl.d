lib/report/stats.ml: Array Float Format List Stdlib
