lib/report/table.mli:
