lib/report/trace_export.ml: Array Buffer Float List Printf String
