lib/report/trace_export.mli:
