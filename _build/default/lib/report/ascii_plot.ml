type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> (0.0, 1.0, 0.0, 1.0)
  | _ ->
      let mn l = List.fold_left Float.min infinity l in
      let mx l = List.fold_left Float.max neg_infinity l in
      let x0 = mn xs and x1 = mx xs and y0 = mn ys and y1 = mx ys in
      let pad lo hi = if hi -. lo < 1e-12 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
      let x0, x1 = pad x0 x1 and y0, y1 = pad y0 y1 in
      (x0, x1, y0, y1)

let plot ?(width = 72) ?(height = 20) ?title ?x_label ?y_label series =
  let x0, x1, y0, y1 = bounds series in
  let grid = Array.make_matrix height width ' ' in
  let place si (x, y) =
    let c = Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1)) in
    let r = Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)) in
    if Float.is_nan c || Float.is_nan r then ()
    else
      let c = int_of_float c and r = height - 1 - int_of_float r in
      if c >= 0 && c < width && r >= 0 && r < height then
        grid.(r).(c) <- glyphs.(si mod Array.length glyphs)
  in
  List.iteri (fun si s -> List.iter (place si) s.points) series;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  (match y_label with
  | Some l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n'
  | None -> ());
  let ylab v = Printf.sprintf "%10.4g" v in
  for r = 0 to height - 1 do
    let label =
      if r = 0 then ylab y1
      else if r = height - 1 then ylab y0
      else if r = (height - 1) / 2 then ylab ((y0 +. y1) /. 2.0)
      else String.make 10 ' '
    in
    Buffer.add_string buf label;
    Buffer.add_string buf " |";
    Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%s%-10.4g%s%10.4g\n" (String.make 12 ' ') x0
       (String.make (max 1 (width - 20)) ' ')
       x1);
  (match x_label with
  | Some l ->
      Buffer.add_string buf (String.make 12 ' ');
      Buffer.add_string buf l;
      Buffer.add_char buf '\n'
  | None -> ());
  if List.length series > 1 then begin
    Buffer.add_string buf "  legend:";
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s" glyphs.(si mod Array.length glyphs) s.label))
      series;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let print ?width ?height ?title ?x_label ?y_label series =
  print_string (plot ?width ?height ?title ?x_label ?y_label series)
