(** ASCII line plots.

    Used to regenerate the paper's figure-shaped results (step responses,
    degradation curves) in a terminal, in the spirit of a Simulink scope. *)

type series = { label : string; points : (float * float) list }

val plot :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Render one or more series into a character raster with axes and a
    legend. Series beyond the first are drawn with distinct glyphs.
    Default raster is 72x20. *)

val print :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  unit
