type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean l =
  match l with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stdev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
      sqrt (ss /. float_of_int (List.length l - 1))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let summarize l =
  match l with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let a = Array.of_list l in
      Array.sort Float.compare a;
      {
        n = Array.length a;
        mean = mean l;
        stdev = stdev l;
        min = a.(0);
        max = a.(Array.length a - 1);
        p50 = percentile a 0.5;
        p95 = percentile a 0.95;
        p99 = percentile a 0.99;
      }

let jitter l =
  match l with
  | [] -> 0.0
  | x :: _ ->
      let mn = List.fold_left Float.min x l in
      let mx = List.fold_left Float.max x l in
      mx -. mn

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.6g sd=%.3g min=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g" s.n
    s.mean s.stdev s.min s.p50 s.p95 s.p99 s.max
