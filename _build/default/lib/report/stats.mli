(** Summary statistics over measurement samples (execution times, jitter,
    latencies) collected by the PIL profiler and the experiment harness. *)

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty sample list. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in 0..1 over an ascending-sorted array,
    with linear interpolation. *)

val mean : float list -> float
val stdev : float list -> float

val jitter : float list -> float
(** Peak-to-peak variation, [max - min]; the paper's notion of sampling
    jitter observed during PIL simulation (§6). *)

val pp_summary : Format.formatter -> summary -> unit
