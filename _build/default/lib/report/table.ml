type align = Left | Right

type t = {
  title : string option;
  headers : string list;
  mutable rows : [ `Row of string list | `Sep ] list;  (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.headers) (List.length cells));
  t.rows <- `Row cells :: t.rows

let add_rows t rows = List.iter (add_row t) rows
let add_sep t = t.rows <- `Sep :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' || c = '%'
         || c = ' ' || c = 'x')
       s

let render ?align t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function `Row cells -> measure cells | `Sep -> ()) rows;
  let aligns =
    match align with
    | Some l when List.length l = ncols -> Array.of_list l
    | Some _ | None ->
        (* Default: a column is right-aligned if all its body cells look
           numeric. *)
        Array.init ncols (fun i ->
            let col_numeric =
              List.for_all
                (function
                  | `Row cells -> looks_numeric (List.nth cells i)
                  | `Sep -> true)
                rows
              && rows <> []
            in
            if col_numeric then Right else Left)
  in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else
      match aligns.(i) with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad i c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  hline ();
  emit_row t.headers;
  hline ();
  List.iter (function `Row cells -> emit_row cells | `Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let print ?align t = print_string (render ?align t)

let cell_f ?(dec = 3) x = Printf.sprintf "%.*f" dec x
let cell_pct ?(dec = 1) x = Printf.sprintf "%.*f %%" dec (100.0 *. x)
