(** ASCII table rendering for the experiment harness.

    Every experiment of EXPERIMENTS.md prints its results through this
    module so that [dune exec bench/main.exe] regenerates the paper's
    tables in a uniform format. *)

type align = Left | Right

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. @raise Invalid_argument if the arity differs from the
    header. *)

val add_rows : t -> string list list -> unit

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : ?align:align list -> t -> string
(** Render to a string; numeric-looking columns default to right
    alignment unless [align] overrides per column. *)

val print : ?align:align list -> t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : ?dec:int -> float -> string
(** Format a float cell with [dec] decimals (default 3). *)

val cell_pct : ?dec:int -> float -> string
(** Format a ratio as a percentage cell, e.g. [0.123] -> ["12.3 %"]. *)
