let csv_of_series ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," ("time" :: header));
  Buffer.add_char buf '\n';
  List.iter
    (fun (t, values) ->
      if List.length values <> List.length header then
        invalid_arg "Trace_export.csv_of_series: row arity mismatch";
      Buffer.add_string buf (Printf.sprintf "%.9g" t);
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.9g" v)) values;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let align traces =
  let header = List.map fst traces in
  let times =
    List.concat_map (fun (_, tr) -> List.map fst tr) traces
    |> List.sort_uniq Float.compare
  in
  (* carry-forward per trace, walking the sorted union of time stamps *)
  let cursors = Array.of_list (List.map snd traces) in
  let currents = Array.make (Array.length cursors) nan in
  let rows =
    List.map
      (fun t ->
        Array.iteri
          (fun i _ ->
            let rec consume () =
              match cursors.(i) with
              | (ti, v) :: rest when ti <= t +. 1e-12 ->
                  currents.(i) <- v;
                  cursors.(i) <- rest;
                  consume ()
              | _ -> ()
            in
            consume ())
          cursors;
        (t, Array.to_list currents))
      times
  in
  (header, rows)

let write_csv ~path traces =
  let header, rows = align traces in
  let oc = open_out path in
  output_string oc (csv_of_series ~header rows);
  close_out oc
