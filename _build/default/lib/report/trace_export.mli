(** Trace export for external visualisation.

    The paper's PIL setup visualises "any chosen data … on the host PC"
    (§6); here traces leave the environment as CSV for whatever plotting
    tool sits outside the terminal. *)

val csv_of_series : header:string list -> (float * float list) list -> string
(** [csv_of_series ~header rows]: a time column plus one column per
    series; the header names the value columns (["time"] is prepended).
    @raise Invalid_argument on arity mismatch between header and rows. *)

val align :
  (string * (float * float) list) list -> string list * (float * float list) list
(** Merge named (time, value) traces into one table on the union of time
    stamps (values carried forward, initial gaps as [nan]); returns the
    header and rows for {!csv_of_series}. *)

val write_csv :
  path:string -> (string * (float * float) list) list -> unit
(** [align] + [csv_of_series] + file output. *)
