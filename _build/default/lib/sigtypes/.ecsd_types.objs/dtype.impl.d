lib/sigtypes/dtype.ml: Format Printf Qformat
