lib/sigtypes/dtype.mli: Format Qformat
