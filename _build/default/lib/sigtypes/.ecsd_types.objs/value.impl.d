lib/sigtypes/value.ml: Dtype Fixed Float Format Printf Qformat
