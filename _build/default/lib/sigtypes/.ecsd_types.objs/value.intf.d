lib/sigtypes/value.mli: Dtype Fixed Format
