type t =
  | Double
  | Single
  | Int8
  | Uint8
  | Int16
  | Uint16
  | Int32
  | Uint32
  | Bool
  | Fix of Qformat.t

let equal a b =
  match (a, b) with
  | Fix fa, Fix fb -> Qformat.equal fa fb
  | Fix _, _ | _, Fix _ -> false
  | a, b -> a = b

let to_string = function
  | Double -> "double"
  | Single -> "single"
  | Int8 -> "int8"
  | Uint8 -> "uint8"
  | Int16 -> "int16"
  | Uint16 -> "uint16"
  | Int32 -> "int32"
  | Uint32 -> "uint32"
  | Bool -> "boolean"
  | Fix f -> Qformat.to_string f

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_float = function Double | Single -> true | _ -> false

let is_integer = function
  | Int8 | Uint8 | Int16 | Uint16 | Int32 | Uint32 -> true
  | _ -> false

let is_fixed = function Fix _ -> true | _ -> false

let bits = function
  | Double -> 64
  | Single -> 32
  | Int8 | Uint8 | Bool -> 8
  | Int16 | Uint16 -> 16
  | Int32 | Uint32 -> 32
  | Fix f ->
      let w = f.Qformat.word_bits in
      if w <= 8 then 8 else if w <= 16 then 16 else if w <= 32 then 32 else 64

let bytes t = bits t / 8

let c_name = function
  | Double -> "double"
  | Single -> "float"
  | Int8 -> "int8_t"
  | Uint8 -> "uint8_t"
  | Int16 -> "int16_t"
  | Uint16 -> "uint16_t"
  | Int32 -> "int32_t"
  | Uint32 -> "uint32_t"
  | Bool -> "uint8_t"
  | Fix f as t ->
      if f.Qformat.signed then
        Printf.sprintf "int%d_t" (bits t)
      else Printf.sprintf "uint%d_t" (bits t)

let integer_range = function
  | Int8 -> Some (-128, 127)
  | Uint8 -> Some (0, 255)
  | Int16 -> Some (-32768, 32767)
  | Uint16 -> Some (0, 65535)
  | Int32 -> Some (-(1 lsl 31), (1 lsl 31) - 1)
  | Uint32 -> Some (0, (1 lsl 32) - 1)
  | Double | Single | Bool | Fix _ -> None

let min_float_value t =
  match t with
  | Double | Single -> neg_infinity
  | Bool -> 0.0
  | Fix f -> Qformat.min_value f
  | _ -> (
      match integer_range t with
      | Some (lo, _) -> float_of_int lo
      | None -> assert false)

let max_float_value t =
  match t with
  | Double | Single -> infinity
  | Bool -> 1.0
  | Fix f -> Qformat.max_value f
  | _ -> (
      match integer_range t with
      | Some (_, hi) -> float_of_int hi
      | None -> assert false)
