(** Signal data types of the block-diagram language.

    These mirror the Simulink built-in types plus fixed-point formats. The
    paper stresses (§7) that the default [double] is inappropriate on a
    16-bit MCU without an FPU and that an appropriate fixed-point
    representation must be chosen and validated in the model; data types
    therefore propagate through the diagram and into the generated C code. *)

type t =
  | Double
  | Single
  | Int8
  | Uint8
  | Int16
  | Uint16
  | Int32
  | Uint32
  | Bool
  | Fix of Qformat.t  (** binary fixed point *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_float : t -> bool
val is_integer : t -> bool
val is_fixed : t -> bool

val bits : t -> int
(** Storage width in bits (8 for [Bool], matching a C [unsigned char]). *)

val bytes : t -> int
(** Storage width in bytes, as allocated in the generated code. *)

val c_name : t -> string
(** The C type name used by the code generator (stdint style; fixed-point
    maps to the integer container type). *)

val integer_range : t -> (int * int) option
(** [Some (lo, hi)] for integer types, [None] for floats/fixed/bool. *)

val min_float_value : t -> float
(** Smallest representable value, as a float ([neg_infinity] for floats). *)

val max_float_value : t -> float
(** Largest representable value, as a float ([infinity] for floats). *)
