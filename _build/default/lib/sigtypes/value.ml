type t = F of float | I of Dtype.t * int | B of bool | X of Fixed.t

let zero = function
  | Dtype.Double | Dtype.Single -> F 0.0
  | Dtype.Bool -> B false
  | Dtype.Fix f -> X (Fixed.zero f)
  | dt -> I (dt, 0)

let dtype = function
  | F _ -> Dtype.Double
  | I (dt, _) -> dt
  | B _ -> Dtype.Bool
  | X fx -> Dtype.Fix (Fixed.fmt fx)

let to_float = function
  | F x -> x
  | I (_, n) -> float_of_int n
  | B b -> if b then 1.0 else 0.0
  | X fx -> Fixed.to_float fx

let saturate_int dt n =
  match Dtype.integer_range dt with
  | Some (lo, hi) -> if n < lo then lo else if n > hi then hi else n
  | None -> n

let of_float dt x =
  match dt with
  | Dtype.Double | Dtype.Single -> F x
  | Dtype.Bool -> B (x <> 0.0)
  | Dtype.Fix f -> X (Fixed.of_float f x)
  | dt ->
      let r = Float.round x in
      let lo, hi =
        match Dtype.integer_range dt with Some p -> p | None -> assert false
      in
      let n =
        if Float.is_nan r then 0
        else if r >= float_of_int hi then hi
        else if r <= float_of_int lo then lo
        else int_of_float r
      in
      I (dt, n)

let of_bool b = B b
let to_bool v = to_float v <> 0.0

let of_int dt n =
  match dt with
  | Dtype.Double | Dtype.Single ->
      invalid_arg "Value.of_int: float type"
  | Dtype.Bool -> B (n <> 0)
  | Dtype.Fix f -> X (Fixed.of_float f (float_of_int n))
  | dt -> I (dt, saturate_int dt n)

let to_int = function
  | F x -> int_of_float (Float.trunc x)
  | I (_, n) -> n
  | B b -> if b then 1 else 0
  | X fx -> Fixed.raw fx

let cast dt v =
  match (dt, v) with
  | Dtype.Fix f, X fx -> X (Fixed.convert f fx)
  | _ -> of_float dt (to_float v)

let equal a b =
  match (a, b) with
  | F x, F y -> Float.equal x y
  | I (ta, x), I (tb, y) -> Dtype.equal ta tb && x = y
  | B x, B y -> x = y
  | X x, X y -> Qformat.equal (Fixed.fmt x) (Fixed.fmt y) && Fixed.raw x = Fixed.raw y
  | _ -> false

let to_string = function
  | F x -> Printf.sprintf "%g" x
  | I (dt, n) -> Printf.sprintf "%d:%s" n (Dtype.to_string dt)
  | B b -> string_of_bool b
  | X fx -> Fixed.to_string fx

let pp ppf v = Format.pp_print_string ppf (to_string v)
