(** Runtime signal values.

    Every signal sample carried between blocks during simulation is a
    {!t}: a scalar tagged with enough structure to reproduce the target
    arithmetic exactly (integers wrap or saturate at their C width,
    fixed-point values carry their raw representation). *)

type t =
  | F of float  (** [Double] or [Single] payload *)
  | I of Dtype.t * int  (** integer payload with its concrete type *)
  | B of bool
  | X of Fixed.t  (** fixed-point payload *)

val zero : Dtype.t -> t
(** The all-zero value of a type. *)

val dtype : t -> Dtype.t
(** The concrete type of a value ([F _] reports [Double]). *)

val to_float : t -> float
(** Numeric reading of any value ([B true] is 1.0). *)

val of_float : Dtype.t -> float -> t
(** Quantise a real number into a type: integers round-to-nearest and
    saturate at the type bounds, fixed-point saturates, [Bool] is
    [x <> 0.0]. This is the semantic of every typed block output and of the
    peripheral blocks (e.g. the 12-bit ADC block of §5). *)

val of_bool : bool -> t
val to_bool : t -> bool
(** [to_bool v] is [to_float v <> 0.0]. *)

val of_int : Dtype.t -> int -> t
(** Saturating integer injection. @raise Invalid_argument on float types. *)

val to_int : t -> int
(** Raw integer reading: the stored integer, the fixed-point raw value, or
    a truncated float. *)

val cast : Dtype.t -> t -> t
(** Convert between types through the real line, saturating; fixed→fixed
    conversions preserve raw semantics via {!Fixed.convert}. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
