lib/statechart/chart.ml: Hashtbl List Option Printf
