lib/statechart/chart.mli:
