lib/statechart/chart_block.ml: Array Block Dtype Sample_time Value
