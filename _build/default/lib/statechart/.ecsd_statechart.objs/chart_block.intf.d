lib/statechart/chart_block.mli: Block Param
