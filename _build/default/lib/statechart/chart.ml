type 'ctx state_def = {
  sname : string;
  parent : string option;
  initial : bool;
  history : bool;
  on_entry : 'ctx -> unit;
  on_exit : 'ctx -> unit;
}

type 'ctx transition_def = {
  src : string;
  dst : string;
  trigger : string option;
  guard : 'ctx -> bool;
  effect : 'ctx -> unit;
}

type 'ctx t = {
  states : (string, 'ctx state_def) Hashtbl.t;
  children : (string, string list) Hashtbl.t;  (* parent -> children *)
  roots : string list;
  transitions : 'ctx transition_def list;
  mutable leaf : string option;
  last_child : (string, string) Hashtbl.t;
      (* per composite: the child that was active when it last exited *)
}

let state ?parent ?(initial = false) ?(history = false)
    ?(on_entry = fun _ -> ()) ?(on_exit = fun _ -> ()) sname =
  { sname; parent; initial; history; on_entry; on_exit }

let transition ?trigger ?(guard = fun _ -> true) ?(effect = fun _ -> ()) ~src
    ~dst () =
  { src; dst; trigger; guard; effect }

let create state_defs transition_defs =
  let states = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem states s.sname then
        invalid_arg (Printf.sprintf "Chart.create: duplicate state %s" s.sname);
      Hashtbl.replace states s.sname s)
    state_defs;
  let check_exists what n =
    if not (Hashtbl.mem states n) then
      invalid_arg (Printf.sprintf "Chart.create: %s references unknown state %s" what n)
  in
  List.iter
    (fun s -> match s.parent with Some p -> check_exists s.sname p | None -> ())
    state_defs;
  List.iter
    (fun tr ->
      check_exists "transition src" tr.src;
      check_exists "transition dst" tr.dst)
    transition_defs;
  (* detect parent cycles *)
  List.iter
    (fun s ->
      let rec walk seen n =
        if List.mem n seen then
          invalid_arg (Printf.sprintf "Chart.create: parent cycle through %s" n);
        match (Hashtbl.find states n).parent with
        | Some p -> walk (n :: seen) p
        | None -> ()
      in
      walk [] s.sname)
    state_defs;
  let children = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.parent with
      | Some p ->
          Hashtbl.replace children p
            (Hashtbl.find_opt children p |> Option.value ~default:[] |> fun l ->
             l @ [ s.sname ])
      | None -> ())
    state_defs;
  let roots = List.filter_map (fun s -> if s.parent = None then Some s.sname else None) state_defs in
  (* every composite state (and the root) needs exactly one initial child *)
  let check_initial name kids =
    let inits = List.filter (fun k -> (Hashtbl.find states k).initial) kids in
    match inits with
    | [ _ ] -> ()
    | [] -> invalid_arg (Printf.sprintf "Chart.create: %s has no initial child" name)
    | _ -> invalid_arg (Printf.sprintf "Chart.create: %s has several initial children" name)
  in
  check_initial "the chart root" roots;
  Hashtbl.iter check_initial children;
  { states; children; roots; transitions = transition_defs; leaf = None;
    last_child = Hashtbl.create 8 }

let path_to_root t name =
  let rec go acc n =
    match (Hashtbl.find t.states n).parent with
    | Some p -> go (p :: acc) p
    | None -> acc
  in
  name :: List.rev (go [] name)
(* leaf first, then ancestors up to root *)

let initial_child t name =
  match Hashtbl.find_opt t.children name with
  | None | Some [] -> None
  | Some kids -> List.find_opt (fun k -> (Hashtbl.find t.states k).initial) kids

(* Descend from a state to its innermost initial leaf, running entries;
   history composites resume their recorded child instead. *)
let rec enter_down t ctx name =
  let def = Hashtbl.find t.states name in
  def.on_entry ctx;
  let next =
    if def.history then
      match Hashtbl.find_opt t.last_child name with
      | Some k -> Some k
      | None -> initial_child t name
    else initial_child t name
  in
  match next with
  | Some k -> enter_down t ctx k
  | None -> t.leaf <- Some name

let start t ctx =
  match List.find_opt (fun r -> (Hashtbl.find t.states r).initial) t.roots with
  | Some r -> enter_down t ctx r
  | None -> invalid_arg "Chart.start: no initial root state"

let active_leaf t =
  match t.leaf with Some l -> l | None -> failwith "Chart: not started"

let active_path t = path_to_root t (active_leaf t)
let is_in t name = List.mem name (active_path t)

let fire t ctx tr =
  (* Exit from the leaf up to (excluding) the LCA of src-path and dst. *)
  let dst_path = path_to_root t tr.dst in
  let leaf_path = active_path t in
  let lca =
    List.find_opt (fun a -> List.mem a dst_path) leaf_path
  in
  (* Self- and descendant-targets re-enter the source: exit the LCA too
     when it is the active leaf itself. *)
  let stop_at = if lca = Some (active_leaf t) then
      (Hashtbl.find t.states (active_leaf t)).parent
    else lca
  in
  let rec exit_up n =
    if Some n <> stop_at then begin
      let def = Hashtbl.find t.states n in
      def.on_exit ctx;
      (* record the exited child for the parent's shallow history *)
      (match def.parent with
      | Some p -> Hashtbl.replace t.last_child p n
      | None -> ());
      match def.parent with Some p -> exit_up p | None -> ()
    end
  in
  exit_up (active_leaf t);
  tr.effect ctx;
  (* Enter from below the LCA down to dst, then to dst's initial leaf. *)
  let entry_chain =
    let rec below acc = function
      | [] -> acc
      | x :: rest ->
          if Some x = lca then acc else below (x :: acc) rest
    in
    below [] dst_path
  in
  let rec enter_chain = function
    | [] -> ()
    | [ last ] -> enter_down t ctx last
    | x :: rest ->
        (Hashtbl.find t.states x).on_entry ctx;
        enter_chain rest
  in
  (match entry_chain with
  | [] -> enter_down t ctx tr.dst
  | chain -> enter_chain chain)

let enabled t ctx event =
  (* innermost source wins: search the active path leaf-outward *)
  let path = active_path t in
  let rec search = function
    | [] -> None
    | s :: rest -> (
        match
          List.find_opt
            (fun tr -> tr.src = s && tr.trigger = event && tr.guard ctx)
            t.transitions
        with
        | Some tr -> Some tr
        | None -> search rest)
  in
  search path

let rec run_eventless t ctx fired =
  if fired > 32 then failwith "Chart: eventless transition livelock";
  match enabled t ctx None with
  | Some tr ->
      fire t ctx tr;
      run_eventless t ctx (fired + 1)
  | None -> fired > 0

let tick t ctx = run_eventless t ctx 0

let dispatch t ctx event =
  match enabled t ctx (Some event) with
  | Some tr ->
      fire t ctx tr;
      ignore (run_eventless t ctx 1);
      true
  | None -> ignore (run_eventless t ctx 0); false

let reset t =
  t.leaf <- None;
  Hashtbl.reset t.last_child
