(** Hierarchical state machines (the StateFlow role in the tool chain).

    Charts capture the mode logic of control applications — the case
    study's "switch between the manual and the automatic control mode"
    (§7). States form a tree; a transition exits up to the least common
    ancestor and enters down to the target's initial leaf, running exit,
    transition and entry actions in UML order. Events are strings;
    eventless ("tick") transitions fire on every evaluation until
    quiescence. The context ['ctx] is the chart's blackboard (the signals
    and locals of a Stateflow chart). *)

type 'ctx t

type 'ctx state_def = {
  sname : string;
  parent : string option;
  initial : bool;  (** initial child of its parent (or of the root) *)
  history : bool;
      (** shallow history: re-entering this composite resumes the child
          that was active when it was last exited, instead of the initial
          one (the H pseudostate) *)
  on_entry : 'ctx -> unit;
  on_exit : 'ctx -> unit;
}

type 'ctx transition_def = {
  src : string;
  dst : string;
  trigger : string option;  (** [None] is an eventless transition *)
  guard : 'ctx -> bool;
  effect : 'ctx -> unit;
}

val state :
  ?parent:string -> ?initial:bool -> ?history:bool ->
  ?on_entry:('ctx -> unit) -> ?on_exit:('ctx -> unit) -> string ->
  'ctx state_def

val transition :
  ?trigger:string -> ?guard:('ctx -> bool) -> ?effect:('ctx -> unit) ->
  src:string -> dst:string -> unit -> 'ctx transition_def

val create : 'ctx state_def list -> 'ctx transition_def list -> 'ctx t
(** @raise Invalid_argument on duplicate state names, unknown parents or
    transition endpoints, a parent cycle, or a composite state without an
    initial child. *)

val start : 'ctx t -> 'ctx -> unit
(** Enter the initial configuration (runs entry actions). *)

val active_leaf : 'ctx t -> string
(** Name of the current leaf state. @raise Failure before [start]. *)

val is_in : 'ctx t -> string -> bool
(** Whether the named state is on the active path (leaf or ancestor). *)

val dispatch : 'ctx t -> 'ctx -> string -> bool
(** Offer an event; the innermost enabled transition wins. Returns
    whether a transition fired. Eventless transitions are then run to
    quiescence. *)

val tick : 'ctx t -> 'ctx -> bool
(** Run eventless transitions only; true if anything fired. *)

val reset : 'ctx t -> unit
(** Forget the configuration (including history); [start] must be called
    again. *)
