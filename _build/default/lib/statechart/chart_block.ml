let block ~kind ~n_in ~n_out ?period ?(params = []) factory =
  {
    Block.kind;
    params;
    n_in;
    n_out;
    feedthrough = Array.make n_in true;
    out_types = Array.make n_out (Block.Fixed_type Dtype.Double);
    sample =
      (match period with
      | Some p -> Sample_time.discrete p
      | None -> Sample_time.Inherited);
    event_outs = [||];
    make =
      (fun _ctx ->
        let step = ref (fun ~time:_ _ -> Array.make n_out 0.0) in
        let do_reset = ref (fun () -> ()) in
        let install () =
          let s, r = factory () in
          step := s;
          do_reset := r
        in
        install ();
        let held = Array.make n_out 0.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time ins ->
              if not minor then begin
                let outs = !step ~time (Array.map Value.to_float ins) in
                if Array.length outs <> n_out then
                  failwith (kind ^ ": chart returned wrong output arity");
                Array.blit outs 0 held 0 n_out
              end;
              Array.map (fun x -> Value.F x) held);
          reset =
            (fun () ->
              !do_reset ();
              Array.fill held 0 n_out 0.0);
        });
  }
