(** Wrapping a state chart (or any stateful decision logic) as a model
    block, the counterpart of a Stateflow chart block in Simulink.

    The factory runs once per simulation instance and returns the chart's
    step function; inputs and outputs cross the boundary as numeric
    signals, as chart inputs/outputs do in Simulink. *)

val block :
  kind:string ->
  n_in:int ->
  n_out:int ->
  ?period:float ->
  ?params:Param.t ->
  (unit -> (time:float -> float array -> float array) * (unit -> unit)) ->
  Block.spec
(** [block ~kind ~n_in ~n_out factory]: [factory ()] must return
    [(step, reset)]. The step runs once per sample hit (never on solver
    minor steps); outputs are held between hits. [period] pins a discrete
    rate (otherwise inherited). *)
