lib/stdblocks/continuous_blocks.ml: Array Block Dtype Param Sample_time Value
