lib/stdblocks/continuous_blocks.mli: Block
