lib/stdblocks/discrete_blocks.ml: Array Block Dtype Float Param Pid Sample_time Stdlib Value Ztransfer
