lib/stdblocks/discrete_blocks.mli: Block Pid Qformat
