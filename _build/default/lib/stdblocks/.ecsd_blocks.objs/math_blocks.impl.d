lib/stdblocks/math_blocks.ml: Array Block Dtype Float Param String Value
