lib/stdblocks/math_blocks.mli: Block Dtype
