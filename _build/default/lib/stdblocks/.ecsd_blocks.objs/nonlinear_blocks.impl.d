lib/stdblocks/nonlinear_blocks.ml: Array Block Dtype Float Param Sample_time Value
