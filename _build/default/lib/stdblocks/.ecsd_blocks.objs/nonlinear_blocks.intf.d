lib/stdblocks/nonlinear_blocks.mli: Block
