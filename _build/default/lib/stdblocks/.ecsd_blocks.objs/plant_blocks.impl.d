lib/stdblocks/plant_blocks.ml: Array Block Dc_motor Dtype Encoder Load_profile Param Power_stage Sample_time Thermal Value
