lib/stdblocks/plant_blocks.mli: Block Dc_motor Encoder Load_profile Power_stage Thermal
