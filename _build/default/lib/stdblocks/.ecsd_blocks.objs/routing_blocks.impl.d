lib/stdblocks/routing_blocks.ml: Array Block Dtype Param Sample_time Value
