lib/stdblocks/routing_blocks.mli: Block Dtype
