lib/stdblocks/sources.ml: Array Block Dtype Float Int64 List Param Sample_time Value
