lib/stdblocks/sources.mli: Block Dtype
