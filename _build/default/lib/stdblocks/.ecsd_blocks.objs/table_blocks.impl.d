lib/stdblocks/table_blocks.ml: Array Block Dtype Float Param Value
