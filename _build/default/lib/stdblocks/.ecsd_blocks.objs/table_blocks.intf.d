lib/stdblocks/table_blocks.mli: Block
