let integrator ?(init = 0.0) ?(k = 1.0) () =
  {
    Block.kind = "Integrator";
    params = [ ("init", Param.Float init); ("k", Param.Float k) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| false |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Continuous;
    event_outs = [||];
    make =
      (fun _ctx ->
        let x = ref init in
        {
          Block.no_beh_state with
          ncstates = 1;
          out = (fun ~minor:_ ~time:_ _ -> [| Value.F !x |]);
          deriv = (fun ~time:_ ins -> [| k *. Value.to_float ins.(0) |]);
          get_cstate = (fun () -> [| !x |]);
          set_cstate = (fun s -> x := s.(0));
          reset = (fun () -> x := init);
        });
  }

let state_space ~a ~b ~c ?(d = 0.0) () =
  let n = Array.length b in
  if Array.length a <> n || Array.exists (fun row -> Array.length row <> n) a
  then invalid_arg "Continuous_blocks.state_space: A/B dimension mismatch";
  if Array.length c <> n then
    invalid_arg "Continuous_blocks.state_space: C dimension mismatch";
  let flat_a = Array.concat (Array.to_list a) in
  {
    Block.kind = "StateSpace";
    params =
      [
        ("n", Param.Int n);
        ("a", Param.Floats flat_a);
        ("b", Param.Floats b);
        ("c", Param.Floats c);
        ("d", Param.Float d);
      ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| d <> 0.0 |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Continuous;
    event_outs = [||];
    make =
      (fun _ctx ->
        let x = Array.make n 0.0 in
        {
          Block.no_beh_state with
          ncstates = n;
          out =
            (fun ~minor:_ ~time:_ ins ->
              let y = ref (d *. Value.to_float ins.(0)) in
              for i = 0 to n - 1 do
                y := !y +. (c.(i) *. x.(i))
              done;
              [| Value.F !y |]);
          deriv =
            (fun ~time:_ ins ->
              let u = Value.to_float ins.(0) in
              Array.init n (fun i ->
                  let acc = ref (b.(i) *. u) in
                  for j = 0 to n - 1 do
                    acc := !acc +. (a.(i).(j) *. x.(j))
                  done;
                  !acc));
          get_cstate = (fun () -> Array.copy x);
          set_cstate = (fun s -> Array.blit s 0 x 0 n);
          reset = (fun () -> Array.fill x 0 n 0.0);
        });
  }

(* Controllable canonical realisation of num(s)/den(s). *)
let transfer_fcn ~num ~den =
  let n = Array.length den - 1 in
  if n < 1 then invalid_arg "Continuous_blocks.transfer_fcn: constant system";
  if Array.length num > Array.length den then
    invalid_arg "Continuous_blocks.transfer_fcn: improper";
  if den.(0) = 0.0 then invalid_arg "Continuous_blocks.transfer_fcn: zero lead";
  let dennorm = Array.map (fun x -> x /. den.(0)) den in
  let numpad =
    let k = Array.length den - Array.length num in
    Array.init (Array.length den) (fun i ->
        (if i < k then 0.0 else num.(i - k)) /. den.(0))
  in
  let d = numpad.(0) in
  (* y = sum (num_i - d*den_i) x_i + d*u over canonical states. *)
  let cvec = Array.init n (fun i -> numpad.(i + 1) -. (d *. dennorm.(i + 1))) in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = 0 then -.dennorm.(j + 1)
            else if j = i - 1 then 1.0
            else 0.0))
  in
  let b = Array.init n (fun i -> if i = 0 then 1.0 else 0.0) in
  let spec = state_space ~a ~b ~c:cvec ~d () in
  {
    spec with
    Block.kind = "TransferFcn";
    params = [ ("num", Param.Floats num); ("den", Param.Floats den) ];
  }

let first_order ~k ~tau =
  if tau <= 0.0 then invalid_arg "Continuous_blocks.first_order: tau";
  let spec = transfer_fcn ~num:[| k |] ~den:[| tau; 1.0 |] in
  { spec with Block.kind = "FirstOrder";
    params = [ ("k", Param.Float k); ("tau", Param.Float tau) ] }
