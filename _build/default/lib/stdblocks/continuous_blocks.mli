(** Continuous-time blocks, integrated by the engine's solver. *)

val integrator : ?init:float -> ?k:float -> unit -> Block.spec
(** [y' = k*u], one continuous state. *)

val transfer_fcn : num:float array -> den:float array -> Block.spec
(** Strictly proper (or biproper) continuous SISO transfer function given
    by descending-power s-polynomials, realised in controllable canonical
    form. @raise Invalid_argument when [num] is longer than [den]. *)

val state_space :
  a:float array array ->
  b:float array ->
  c:float array ->
  ?d:float ->
  unit ->
  Block.spec
(** Single-input single-output continuous state space
    [x' = A x + B u; y = C x + D u]. *)

val first_order : k:float -> tau:float -> Block.spec
(** [k / (tau s + 1)], the canonical test plant. *)
