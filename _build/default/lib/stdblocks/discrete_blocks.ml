let sample_of period =
  match period with
  | Some p -> Sample_time.discrete p
  | None -> Sample_time.Inherited

let unit_delay ?(init = 0.0) ?period () =
  {
    Block.kind = "UnitDelay";
    params = [ ("init", Param.Float init) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| false |];
    out_types = [| Block.Same_as 0 |];
    sample = sample_of period;
    event_outs = [||];
    make =
      (fun ctx ->
        let state = ref (Value.of_float ctx.Block.out_dtypes.(0) init) in
        {
          Block.no_beh_state with
          out = (fun ~minor:_ ~time:_ _ -> [| !state |]);
          update = (fun ~time:_ ins -> state := Value.cast ctx.Block.out_dtypes.(0) ins.(0));
          reset = (fun () -> state := Value.of_float ctx.Block.out_dtypes.(0) init);
        });
  }

let zoh ?(offset = 0.0) ~period () =
  {
    Block.kind = "ZOH";
    params = [ ("period", Param.Float period); ("offset", Param.Float offset) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Same_as 0 |];
    sample = Sample_time.discrete ~offset period;
    event_outs = [||];
    make =
      (fun _ctx ->
        { Block.no_beh_state with out = (fun ~minor:_ ~time:_ ins -> [| ins.(0) |]) });
  }

let discrete_integrator ?(k = 1.0) ?(init = 0.0) ?(lo = neg_infinity)
    ?(hi = infinity) () =
  {
    Block.kind = "DiscreteIntegrator";
    params =
      [
        ("k", Param.Float k);
        ("init", Param.Float init);
        ("lo", Param.Float lo);
        ("hi", Param.Float hi);
      ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| false |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        let y = ref init in
        let clamp x = Float.min hi (Float.max lo x) in
        {
          Block.no_beh_state with
          out = (fun ~minor:_ ~time:_ _ -> [| Value.F !y |]);
          update =
            (fun ~time:_ ins ->
              y := clamp (!y +. (k *. ctx.Block.block_dt *. Value.to_float ins.(0))));
          reset = (fun () -> y := init);
        });
  }

let discrete_derivative ?(k = 1.0) () =
  {
    Block.kind = "DiscreteDerivative";
    params = [ ("k", Param.Float k) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        let prev = ref 0.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor:_ ~time:_ ins ->
              [| Value.F (k *. (Value.to_float ins.(0) -. !prev) /. ctx.Block.block_dt) |]);
          update = (fun ~time:_ ins -> prev := Value.to_float ins.(0));
          reset = (fun () -> prev := 0.0);
        });
  }

let discrete_tf ~num ~den =
  let tf = Ztransfer.create ~num ~den in
  let feed = Array.length num = Array.length den && num.(0) <> 0.0 in
  {
    Block.kind = "DiscreteTransferFcn";
    params = [ ("num", Param.Floats num); ("den", Param.Floats den) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| feed |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let st = Ztransfer.init tf in
        (* Direct form II transposed produces output and advances state in
           one sweep; evaluate once per major step, at output time. *)
        let current = ref 0.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then current := Ztransfer.step tf st (Value.to_float ins.(0));
              [| Value.F !current |]);
          reset =
            (fun () ->
              Ztransfer.reset st;
              current := 0.0);
        });
  }

let pid ~ts g =
  {
    Block.kind = "Pid";
    params =
      [
        ("kp", Param.Float g.Pid.kp);
        ("ki", Param.Float g.Pid.ki);
        ("kd", Param.Float g.Pid.kd);
        ("n", Param.Float g.Pid.n);
        ("u_min", Param.Float g.Pid.u_min);
        ("u_max", Param.Float g.Pid.u_max);
        ("ts", Param.Float ts);
      ];
    n_in = 2;
    n_out = 1;
    feedthrough = [| true; true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.discrete ts;
    event_outs = [||];
    make =
      (fun _ctx ->
        let c = Pid.create ~ts g in
        let current = ref 0.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then
                current :=
                  Pid.step c ~sp:(Value.to_float ins.(0)) ~pv:(Value.to_float ins.(1));
              [| Value.F !current |]);
          reset =
            (fun () ->
              Pid.reset c;
              current := 0.0);
        });
  }

let fix_pid ~ts ~fmt ~in_scale ~out_scale g =
  {
    Block.kind = "FixPid";
    params =
      [
        ("kp", Param.Float g.Pid.kp);
        ("ki", Param.Float g.Pid.ki);
        ("kd", Param.Float g.Pid.kd);
        ("n", Param.Float g.Pid.n);
        ("u_min", Param.Float g.Pid.u_min);
        ("u_max", Param.Float g.Pid.u_max);
        ("ts", Param.Float ts);
        ("fmt", Param.Dtype (Dtype.Fix fmt));
        ("in_scale", Param.Float in_scale);
        ("out_scale", Param.Float out_scale);
      ];
    n_in = 2;
    n_out = 1;
    feedthrough = [| true; true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.discrete ts;
    event_outs = [||];
    make =
      (fun _ctx ->
        let c = Pid.Fixpoint.create ~ts ~fmt ~in_scale ~out_scale g in
        let current = ref 0.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then
                current :=
                  Pid.Fixpoint.step c ~sp:(Value.to_float ins.(0))
                    ~pv:(Value.to_float ins.(1));
              [| Value.F !current |]);
          reset =
            (fun () ->
              Pid.Fixpoint.reset c;
              current := 0.0);
        });
  }

let rate_limiter ~rising ~falling =
  if rising < 0.0 || falling < 0.0 then
    invalid_arg "Discrete_blocks.rate_limiter: rates must be non-negative";
  {
    Block.kind = "RateLimiter";
    params = [ ("rising", Param.Float rising); ("falling", Param.Float falling) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        let prev = ref 0.0 in
        let started = ref false in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              let u = Value.to_float ins.(0) in
              if not minor then begin
                let dt = ctx.Block.block_dt in
                let y =
                  if not !started then u
                  else
                    let dy = u -. !prev in
                    let up = rising *. dt and down = -.falling *. dt in
                    !prev +. Float.min up (Float.max down dy)
                in
                started := true;
                prev := y
              end;
              [| Value.F !prev |]);
          reset =
            (fun () ->
              prev := 0.0;
              started := false);
        });
  }

let moving_average n =
  if n < 1 then invalid_arg "Discrete_blocks.moving_average: n < 1";
  {
    Block.kind = "MovingAverage";
    params = [ ("n", Param.Int n) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let buf = Array.make n 0.0 in
        let idx = ref 0 and filled = ref 0 in
        let current = ref 0.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then begin
                buf.(!idx) <- Value.to_float ins.(0);
                idx := (!idx + 1) mod n;
                filled := Stdlib.min n (!filled + 1);
                let s = Array.fold_left ( +. ) 0.0 buf in
                current := s /. float_of_int !filled
              end;
              [| Value.F !current |]);
          reset =
            (fun () ->
              Array.fill buf 0 n 0.0;
              idx := 0;
              filled := 0;
              current := 0.0);
        });
  }

let encoder_speed ~counts_per_rev =
  if counts_per_rev <= 0 then invalid_arg "Discrete_blocks.encoder_speed";
  {
    Block.kind = "EncoderSpeed";
    params = [ ("counts_per_rev", Param.Int counts_per_rev) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        let prev = ref 0 in
        let current = ref 0.0 in
        let k = 2.0 *. Float.pi /. float_of_int counts_per_rev in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then begin
                let c = Value.to_int ins.(0) in
                (* wrap-aware 16-bit difference, as the generated C does
                   with an (int16_t) cast: correct for both absolute and
                   wrapped position registers while |delta| < 2^15 *)
                let dc = (c - !prev) land 0xFFFF in
                let dc = if dc >= 0x8000 then dc - 0x10000 else dc in
                current := float_of_int dc *. k /. ctx.Block.block_dt;
                prev := c
              end;
              [| Value.F !current |]);
          reset =
            (fun () ->
              prev := 0;
              current := 0.0);
        });
  }

let delay_n n =
  if n < 0 then invalid_arg "Discrete_blocks.delay_n: n < 0";
  {
    Block.kind = "DelayN";
    params = [ ("n", Param.Int n) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| n = 0 |];
    out_types = [| Block.Same_as 0 |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        if n = 0 then
          { Block.no_beh_state with out = (fun ~minor:_ ~time:_ ins -> [| ins.(0) |]) }
        else begin
          let zero = Value.zero ctx.Block.out_dtypes.(0) in
          let buf = Array.make n zero in
          let idx = ref 0 in
          {
            Block.no_beh_state with
            out = (fun ~minor:_ ~time:_ _ -> [| buf.(!idx) |]);
            update =
              (fun ~time:_ ins ->
                buf.(!idx) <- Value.cast ctx.Block.out_dtypes.(0) ins.(0);
                idx := (!idx + 1) mod n);
            reset =
              (fun () ->
                Array.fill buf 0 n zero;
                idx := 0);
          }
        end);
  }
