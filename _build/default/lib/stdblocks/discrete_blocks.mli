(** Discrete-time blocks (states advance at sample hits). *)

val unit_delay : ?init:float -> ?period:float -> unit -> Block.spec
(** One-sample delay, the fundamental state element; breaks algebraic
    loops (no direct feedthrough). Sample time inherited unless [period]
    is given. *)

val zoh : ?offset:float -> period:float -> unit -> Block.spec
(** Zero-order hold: samples its input at [period] (with an optional
    phase [offset] within the period) and holds it — the rate-transition
    block between plant and controller rates. *)

val discrete_integrator :
  ?k:float -> ?init:float -> ?lo:float -> ?hi:float -> unit -> Block.spec
(** Forward-Euler integrator [y(k) = y(k-1) + K*Ts*u(k-1)], with optional
    output clamping. *)

val discrete_derivative : ?k:float -> unit -> Block.spec
(** Difference quotient [K * (u(k) - u(k-1)) / Ts]. *)

val discrete_tf : num:float array -> den:float array -> Block.spec
(** SISO z-domain transfer function in direct form II transposed (see
    {!Ztransfer}); direct feedthrough iff [num] has the full length. *)

val pid : ts:float -> Pid.gains -> Block.spec
(** Floating-point PID with anti-windup (see {!Pid}), two inputs
    (set-point, process value), one output. Runs at its own period
    [ts]. *)

val fix_pid :
  ts:float ->
  fmt:Qformat.t ->
  in_scale:float ->
  out_scale:float ->
  Pid.gains ->
  Block.spec
(** Bit-exact fixed-point PID (see {!Pid.Fixpoint}) — the controller the
    code generator deploys on a 16-bit MCU without an FPU (§7). *)

val rate_limiter : rising:float -> falling:float -> Block.spec
(** Slew-rate limiter in units per second. *)

val moving_average : int -> Block.spec
(** FIR average over the last [n] samples. *)

val encoder_speed : counts_per_rev:int -> Block.spec
(** Angular-velocity estimate (rad/s) from successive position counts of a
    quadrature decoder, the measurement path of the servo case study.
    Input: count (integer); output: speed (double). *)

val delay_n : int -> Block.spec
(** [delay_n n] delays its input by [n] samples — models input/output
    latency in the E6 timing experiments. *)
