(* Numeric blocks evaluate in double and quantise to the block's resolved
   output type, so range saturation of integer/fixed signals is honoured. *)

let typed_out ctx x = Value.of_float ctx.Block.out_dtypes.(0) x

let gain ?dtype k =
  let out_types =
    match dtype with
    | Some dt -> [| Block.Fixed_type dt |]
    | None -> [| Block.Same_as 0 |]
  in
  let params =
    ("k", Param.Float k)
    :: (match dtype with Some dt -> [ ("dtype", Param.Dtype dt) ] | None -> [])
  in
  Block.stateless ~kind:"Gain" ~params ~n_in:1 ~n_out:1 ~out_types
    (fun ctx ins -> [| typed_out ctx (k *. Value.to_float ins.(0)) |])

let sum signs =
  let n = String.length signs in
  if n = 0 then invalid_arg "Math_blocks.sum: empty signs";
  String.iter
    (fun c -> if c <> '+' && c <> '-' then invalid_arg "Math_blocks.sum: signs")
    signs;
  Block.stateless ~kind:"Sum"
    ~params:[ ("signs", Param.String signs) ]
    ~n_in:n ~n_out:1
    (fun ctx ins ->
      let acc = ref 0.0 in
      String.iteri
        (fun i c ->
          let x = Value.to_float ins.(i) in
          acc := if c = '+' then !acc +. x else !acc -. x)
        signs;
      [| typed_out ctx !acc |])

let product n =
  if n < 1 then invalid_arg "Math_blocks.product: n < 1";
  Block.stateless ~kind:"Product"
    ~params:[ ("n", Param.Int n) ]
    ~n_in:n ~n_out:1
    (fun ctx ins ->
      let acc = Array.fold_left (fun a v -> a *. Value.to_float v) 1.0 ins in
      [| typed_out ctx acc |])

let divide =
  Block.stateless ~kind:"Divide" ~n_in:2 ~n_out:1 (fun ctx ins ->
      let a = Value.to_float ins.(0) and b = Value.to_float ins.(1) in
      [| typed_out ctx (a /. b) |])

let unary ~kind f =
  Block.stateless ~kind ~n_in:1 ~n_out:1 (fun ctx ins ->
      [| typed_out ctx (f (Value.to_float ins.(0))) |])

let abs_block = unary ~kind:"Abs" Float.abs
let neg = unary ~kind:"Neg" (fun x -> -.x)

let binary ~kind f =
  Block.stateless ~kind ~n_in:2 ~n_out:1 (fun ctx ins ->
      [| typed_out ctx (f (Value.to_float ins.(0)) (Value.to_float ins.(1))) |])

let min_block = binary ~kind:"Min" Float.min
let max_block = binary ~kind:"Max" Float.max

let cast dtype =
  Block.stateless ~kind:"Cast"
    ~params:[ ("dtype", Param.Dtype dtype) ]
    ~n_in:1 ~n_out:1
    ~out_types:[| Block.Fixed_type dtype |]
    (fun _ctx ins -> [| Value.cast dtype ins.(0) |])

let compare op =
  let name, f =
    match op with
    | `Lt -> ("lt", ( < ))
    | `Le -> ("le", ( <= ))
    | `Gt -> ("gt", ( > ))
    | `Ge -> ("ge", ( >= ))
    | `Eq -> ("eq", fun (a : float) b -> a = b)
    | `Ne -> ("ne", fun (a : float) b -> a <> b)
  in
  Block.stateless ~kind:"Compare"
    ~params:[ ("op", Param.String name) ]
    ~n_in:2 ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Bool |]
    (fun _ctx ins ->
      [| Value.of_bool (f (Value.to_float ins.(0)) (Value.to_float ins.(1))) |])

let logic op =
  let name, n_in =
    match op with
    | `And -> ("and", 2)
    | `Or -> ("or", 2)
    | `Xor -> ("xor", 2)
    | `Not -> ("not", 1)
  in
  Block.stateless ~kind:"Logic"
    ~params:[ ("op", Param.String name) ]
    ~n_in ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Bool |]
    (fun _ctx ins ->
      let a = Value.to_bool ins.(0) in
      let r =
        match op with
        | `Not -> not a
        | `And -> a && Value.to_bool ins.(1)
        | `Or -> a || Value.to_bool ins.(1)
        | `Xor -> a <> Value.to_bool ins.(1)
      in
      [| Value.of_bool r |])

let math_fn op =
  let name, f =
    match op with
    | `Sin -> ("sin", sin)
    | `Cos -> ("cos", cos)
    | `Exp -> ("exp", exp)
    | `Sqrt -> ("sqrt", sqrt)
    | `Log -> ("log", log)
  in
  Block.stateless ~kind:"MathFn"
    ~params:[ ("fn", Param.String name) ]
    ~n_in:1 ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Double |]
    (fun _ctx ins -> [| Value.F (f (Value.to_float ins.(0))) |])
