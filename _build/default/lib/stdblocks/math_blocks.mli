(** Arithmetic, relational and logic blocks.

    Numeric blocks compute in double precision and quantise the result to
    the block's output type (saturating), so integer- and fixed-typed
    diagrams see the target's range limits. Bit-exact fixed-point
    controller arithmetic is provided by the dedicated
    {!Discrete_blocks.fix_pid} block. *)

val gain : ?dtype:Dtype.t -> float -> Block.spec
(** Multiply by a constant; output type follows the input unless [dtype]
    forces it. *)

val sum : string -> Block.spec
(** [sum "+-"] builds an n-input add/subtract block, one sign per input.
    @raise Invalid_argument on characters other than '+'/'-'. *)

val product : int -> Block.spec
(** n-input multiplier, n >= 1. *)

val divide : Block.spec
(** Two inputs, [in0 / in1]; division by zero saturates to the output
    type's extremum (IEEE inf on float types). *)

val abs_block : Block.spec
val neg : Block.spec
val min_block : Block.spec
val max_block : Block.spec
val cast : Dtype.t -> Block.spec
(** Data Type Conversion block. *)

val compare : [ `Lt | `Le | `Gt | `Ge | `Eq | `Ne ] -> Block.spec
(** Two-input relational operator, boolean output. *)

val logic : [ `And | `Or | `Xor | `Not ] -> Block.spec
(** Boolean logic; [`Not] takes one input, the others two. *)

val math_fn : [ `Sin | `Cos | `Exp | `Sqrt | `Log ] -> Block.spec
(** Elementary function block (double output). *)
