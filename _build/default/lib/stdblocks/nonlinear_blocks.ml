let typed_out ctx x = Value.of_float ctx.Block.out_dtypes.(0) x

let saturation ~lo ~hi =
  if lo > hi then invalid_arg "Nonlinear_blocks.saturation: lo > hi";
  Block.stateless ~kind:"Saturation"
    ~params:[ ("lo", Param.Float lo); ("hi", Param.Float hi) ]
    ~n_in:1 ~n_out:1
    (fun ctx ins ->
      [| typed_out ctx (Float.min hi (Float.max lo (Value.to_float ins.(0)))) |])

let quantizer ~interval =
  if interval <= 0.0 then invalid_arg "Nonlinear_blocks.quantizer: interval";
  Block.stateless ~kind:"Quantizer"
    ~params:[ ("interval", Param.Float interval) ]
    ~n_in:1 ~n_out:1
    (fun ctx ins ->
      [| typed_out ctx (interval *. Float.round (Value.to_float ins.(0) /. interval)) |])

let dead_zone ~lo ~hi =
  if lo > hi then invalid_arg "Nonlinear_blocks.dead_zone: lo > hi";
  Block.stateless ~kind:"DeadZone"
    ~params:[ ("lo", Param.Float lo); ("hi", Param.Float hi) ]
    ~n_in:1 ~n_out:1
    (fun ctx ins ->
      let u = Value.to_float ins.(0) in
      let y = if u > hi then u -. hi else if u < lo then u -. lo else 0.0 in
      [| typed_out ctx y |])

let relay ?(on_point = 0.5) ?(off_point = -0.5) ~on_value ~off_value () =
  if off_point > on_point then invalid_arg "Nonlinear_blocks.relay: hysteresis";
  {
    Block.kind = "Relay";
    params =
      [
        ("on_point", Param.Float on_point);
        ("off_point", Param.Float off_point);
        ("on_value", Param.Float on_value);
        ("off_value", Param.Float off_value);
      ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let on = ref false in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              let u = Value.to_float ins.(0) in
              if not minor then begin
                if u >= on_point then on := true
                else if u <= off_point then on := false
              end;
              [| Value.F (if !on then on_value else off_value) |]);
          reset = (fun () -> on := false);
        });
  }

let switch ~threshold =
  Block.stateless ~kind:"Switch"
    ~params:[ ("threshold", Param.Float threshold) ]
    ~n_in:3 ~n_out:1
    (fun _ctx ins ->
      [| (if Value.to_float ins.(1) >= threshold then ins.(0) else ins.(2)) |])

let sign_block =
  Block.stateless ~kind:"Sign" ~n_in:1 ~n_out:1 (fun ctx ins ->
      let u = Value.to_float ins.(0) in
      [| typed_out ctx (if u > 0.0 then 1.0 else if u < 0.0 then -1.0 else 0.0) |])

let coulomb_friction ~level =
  Block.stateless ~kind:"CoulombFriction"
    ~params:[ ("level", Param.Float level) ]
    ~n_in:1 ~n_out:1
    (fun ctx ins ->
      let u = Value.to_float ins.(0) in
      let s = if u > 0.0 then 1.0 else if u < 0.0 then -1.0 else 0.0 in
      [| typed_out ctx (u +. (level *. s)) |])

let backlash ~width =
  if width < 0.0 then invalid_arg "Nonlinear_blocks.backlash: width";
  {
    Block.kind = "Backlash";
    params = [ ("width", Param.Float width) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let y = ref 0.0 in
        let half = width /. 2.0 in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              let u = Value.to_float ins.(0) in
              if not minor then begin
                if u -. !y > half then y := u -. half
                else if !y -. u > half then y := u +. half
              end;
              [| Value.F !y |]);
          reset = (fun () -> y := 0.0);
        });
  }
