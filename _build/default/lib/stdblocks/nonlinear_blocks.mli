(** Discontinuous / nonlinear blocks. *)

val saturation : lo:float -> hi:float -> Block.spec
(** Clamp to [lo, hi]. @raise Invalid_argument when [lo > hi]. *)

val quantizer : interval:float -> Block.spec
(** Round to the nearest multiple of [interval]. *)

val dead_zone : lo:float -> hi:float -> Block.spec
(** Output zero inside the zone; outside, offset by the nearest edge. *)

val relay :
  ?on_point:float -> ?off_point:float -> on_value:float -> off_value:float ->
  unit -> Block.spec
(** Hysteresis relay: switches on above [on_point], off below
    [off_point]. *)

val switch : threshold:float -> Block.spec
(** Three inputs [(in0, control, in1)]: output is [in0] when
    [control >= threshold], else [in1]. *)

val sign_block : Block.spec
(** -1 / 0 / +1. *)

val coulomb_friction : level:float -> Block.spec
(** [y = u + level*sign(u)] static friction compensation block. *)

val backlash : width:float -> Block.spec
(** Mechanical backlash (play) of total [width]. *)
