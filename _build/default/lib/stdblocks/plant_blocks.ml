(* Serialise the load profile into block parameters so the simulator
   code generator can rebuild it; composite profiles fall back to the
   closest simple form. *)
let load_params load =
  match load with
  | Load_profile.No_load -> [ ("load", Param.String "none") ]
  | Load_profile.Constant tau ->
      [ ("load", Param.String "constant"); ("load_tau", Param.Float tau) ]
  | Load_profile.Viscous k ->
      [ ("load", Param.String "viscous"); ("load_k", Param.Float k) ]
  | Load_profile.Step { at; torque } ->
      [ ("load", Param.String "step"); ("load_at", Param.Float at);
        ("load_tau", Param.Float torque) ]
  | Load_profile.Pulse { start; stop; torque } ->
      [ ("load", Param.String "pulse"); ("load_start", Param.Float start);
        ("load_stop", Param.Float stop); ("load_tau", Param.Float torque) ]
  | Load_profile.Sum _ -> [ ("load", Param.String "composite") ]

let dc_motor ?(params = Dc_motor.default) ?(load = Load_profile.No_load) () =
  let p = params in
  {
    Block.kind = "DcMotor";
    params =
      [
        ("ra", Param.Float p.Dc_motor.ra);
        ("la", Param.Float p.Dc_motor.la);
        ("ke", Param.Float p.Dc_motor.ke);
        ("kt", Param.Float p.Dc_motor.kt);
        ("j", Param.Float p.Dc_motor.j);
        ("b", Param.Float p.Dc_motor.b);
      ]
      @ load_params load;
    n_in = 1;
    n_out = 3;
    feedthrough = [| false |];
    out_types = Array.make 3 (Block.Fixed_type Dtype.Double);
    sample = Sample_time.Continuous;
    event_outs = [||];
    make =
      (fun _ctx ->
        let x = [| 0.0; 0.0; 0.0 |] in
        (* i, w, theta *)
        {
          Block.no_beh_state with
          ncstates = 3;
          out =
            (fun ~minor:_ ~time:_ _ ->
              [| Value.F x.(1); Value.F x.(2); Value.F x.(0) |]);
          deriv =
            (fun ~time ins ->
              let u = Value.to_float ins.(0) in
              let s = { Dc_motor.i = x.(0); w = x.(1); theta = x.(2) } in
              let tau = Load_profile.torque load ~time ~w:s.Dc_motor.w in
              let di, dw = Dc_motor.derivatives p ~u ~tau_load:tau s in
              [| di; dw; s.Dc_motor.w |]);
          get_cstate = (fun () -> Array.copy x);
          set_cstate = (fun s -> Array.blit s 0 x 0 3);
          reset = (fun () -> Array.fill x 0 3 0.0);
        });
  }

let power_stage stage =
  Block.stateless ~kind:"PowerStage"
    ~params:
      [
        ("u_supply", Param.Float stage.Power_stage.u_supply);
        ("dead_time_frac", Param.Float stage.Power_stage.dead_time_frac);
        ("r_on", Param.Float stage.Power_stage.r_on);
        ("bipolar", Param.Bool stage.Power_stage.bipolar);
      ]
    ~n_in:2 ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Double |]
    (fun _ctx ins ->
      let duty = Value.to_float ins.(0) and i = Value.to_float ins.(1) in
      [| Value.F (Power_stage.output_voltage stage ~duty ~i) |])

let encoder_counts ?(enc = Encoder.create ()) () =
  Block.stateless ~kind:"EncoderCounts"
    ~params:[ ("lines_per_rev", Param.Int (Encoder.lines_per_rev enc)) ]
    ~n_in:1 ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Int32 |]
    (fun _ctx ins ->
      let theta = Value.to_float ins.(0) in
      [| Value.of_int Dtype.Int32 (Encoder.count_of_angle enc ~theta) |])

let thermal_plant ?(params = Thermal.default) () =
  let p = params in
  {
    Block.kind = "ThermalPlant";
    params =
      [
        ("c_th", Param.Float p.Thermal.c_th);
        ("r_th", Param.Float p.Thermal.r_th);
        ("t_amb", Param.Float p.Thermal.t_amb);
        ("p_max", Param.Float p.Thermal.p_max);
      ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| false |];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        let temp = ref p.Thermal.t_amb in
        {
          Block.no_beh_state with
          out = (fun ~minor:_ ~time:_ _ -> [| Value.F !temp |]);
          update =
            (fun ~time:_ ins ->
              temp :=
                Thermal.step p ~p_in:(Value.to_float ins.(0))
                  ~h:ctx.Block.block_dt !temp);
          reset = (fun () -> temp := p.Thermal.t_amb);
        });
  }
