(** Plant blocks wrapping the physical models of {!Dc_motor} and friends
    into the block diagram — the "plant subsystem" of Fig 7.1. *)

val dc_motor :
  ?params:Dc_motor.params -> ?load:Load_profile.t -> unit -> Block.spec
(** Continuous DC-motor block. Input 0: armature voltage (V). Outputs:
    0 speed (rad/s), 1 shaft angle (rad), 2 armature current (A). The load
    torque profile is part of the block. *)

val power_stage : Power_stage.t -> Block.spec
(** Inputs: 0 duty ratio (0..1), 1 armature current (A, for the resistive
    drop). Output: averaged bridge voltage (V). *)

val encoder_counts : ?enc:Encoder.t -> unit -> Block.spec
(** Ideal quadrature-decoder count of a shaft angle input; output int32
    count — what the MCU's decoder register would read. *)

val thermal_plant : ?params:Thermal.params -> unit -> Block.spec
(** Discrete-exact first-order thermal plant; input heater power (W),
    output temperature (degC). Runs at the model base rate. *)
