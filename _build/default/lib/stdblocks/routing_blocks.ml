let inport ?(dtype = Dtype.Double) index =
  {
    Block.kind = "Inport";
    params = [ ("index", Param.Int index); ("dtype", Param.Dtype dtype) ];
    n_in = 0;
    n_out = 1;
    feedthrough = [||];
    out_types = [| Block.Fixed_type dtype |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        (* Standalone compilation: a zero placeholder; the PIL harness and
           the codegen external-input struct take its place otherwise. *)
        let z = Value.zero dtype in
        { Block.no_beh_state with out = (fun ~minor:_ ~time:_ _ -> [| z |]) });
  }

let outport index =
  {
    Block.kind = "Outport";
    params = [ ("index", Param.Int index) ];
    n_in = 1;
    n_out = 1;
    feedthrough = [| true |];
    out_types = [| Block.Same_as 0 |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        { Block.no_beh_state with out = (fun ~minor:_ ~time:_ ins -> [| ins.(0) |]) });
  }

let terminator =
  {
    Block.kind = "Terminator";
    params = [];
    n_in = 1;
    n_out = 0;
    feedthrough = [| false |];
    out_types = [||];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make = (fun _ctx -> { Block.no_beh_state with out = (fun ~minor:_ ~time:_ _ -> [||]) });
  }

let merge2 =
  {
    Block.kind = "Merge2";
    params = [];
    n_in = 2;
    n_out = 1;
    feedthrough = [| true; true |];
    out_types = [| Block.Same_as 0 |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun ctx ->
        let zero = Value.zero ctx.Block.out_dtypes.(0) in
        let prev0 = ref zero and prev1 = ref zero and held = ref zero in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ ins ->
              if not minor then begin
                if not (Value.equal ins.(0) !prev0) then held := ins.(0)
                else if not (Value.equal ins.(1) !prev1) then held := ins.(1);
                prev0 := ins.(0);
                prev1 := ins.(1)
              end;
              [| !held |]);
          reset =
            (fun () ->
              prev0 := zero;
              prev1 := zero;
              held := zero);
        });
  }
