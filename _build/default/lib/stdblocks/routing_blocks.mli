(** Boundary and routing blocks for hierarchical composition. *)

val inport : ?dtype:Dtype.t -> int -> Block.spec
(** [inport k] is boundary input [k] of a sub-model; {!Model.inline}
    replaces it by the parent-side source. When the sub-model is compiled
    standalone (code generation of the controller alone), it behaves as an
    external-input placeholder emitting zero of [dtype] (default
    [Double]). *)

val outport : int -> Block.spec
(** [outport k] marks boundary output [k] of a sub-model. *)

val terminator : Block.spec
(** Swallows an unused signal (every input must be wired). *)

val merge2 : Block.spec
(** Two-input merge passing the most recently updated value — combines
    the outputs of mutually exclusive function-call branches. *)
