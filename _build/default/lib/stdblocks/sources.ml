let dv x = Value.F x

let constant ?(dtype = Dtype.Double) value =
  {
    Block.kind = "Constant";
    params = [ ("value", Param.Float value); ("dtype", Param.Dtype dtype) ];
    n_in = 0;
    n_out = 1;
    feedthrough = [||];
    out_types = [| Block.Fixed_type dtype |];
    sample = Sample_time.Const;
    event_outs = [||];
    make =
      (fun _ctx ->
        let v = Value.of_float dtype value in
        { Block.no_beh_state with out = (fun ~minor:_ ~time:_ _ -> [| v |]) });
  }

let time_source ~kind ~params f =
  {
    Block.kind;
    params;
    n_in = 0;
    n_out = 1;
    feedthrough = [||];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        { Block.no_beh_state with out = (fun ~minor:_ ~time _ -> [| dv (f time) |]) });
  }

let step ?(t_step = 0.0) ?(before = 0.0) ~after () =
  time_source ~kind:"Step"
    ~params:
      [
        ("t_step", Param.Float t_step);
        ("before", Param.Float before);
        ("after", Param.Float after);
      ]
    (fun t -> if t >= t_step then after else before)

let ramp ?(start = 0.0) ~slope () =
  time_source ~kind:"Ramp"
    ~params:[ ("start", Param.Float start); ("slope", Param.Float slope) ]
    (fun t -> if t >= start then slope *. (t -. start) else 0.0)

let sine ?(amp = 1.0) ?(freq_hz = 1.0) ?(phase = 0.0) ?(bias = 0.0) () =
  time_source ~kind:"Sine"
    ~params:
      [
        ("amp", Param.Float amp);
        ("freq_hz", Param.Float freq_hz);
        ("phase", Param.Float phase);
        ("bias", Param.Float bias);
      ]
    (fun t -> bias +. (amp *. sin ((2.0 *. Float.pi *. freq_hz *. t) +. phase)))

let pulse ~period ?(duty = 0.5) ?(amp = 1.0) () =
  if period <= 0.0 then invalid_arg "Sources.pulse: period";
  time_source ~kind:"Pulse"
    ~params:
      [
        ("period", Param.Float period);
        ("duty", Param.Float duty);
        ("amp", Param.Float amp);
      ]
    (fun t ->
      let frac = Float.rem t period /. period in
      if frac < duty then amp else 0.0)

let setpoint_schedule entries =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) entries in
  let times = Array.of_list (List.map fst sorted) in
  let values = Array.of_list (List.map snd sorted) in
  time_source ~kind:"SetpointSchedule"
    ~params:[ ("times", Param.Floats times); ("values", Param.Floats values) ]
    (fun t ->
      let v = ref 0.0 in
      Array.iteri (fun i ti -> if t >= ti then v := values.(i)) times;
      !v)

(* SplitMix64, kept local for reproducibility independent of Stdlib.Random. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform_noise ?(seed = 42) ?(lo = -1.0) ?(hi = 1.0) () =
  {
    Block.kind = "UniformNoise";
    params =
      [
        ("seed", Param.Int seed);
        ("lo", Param.Float lo);
        ("hi", Param.Float hi);
      ];
    n_in = 0;
    n_out = 1;
    feedthrough = [||];
    out_types = [| Block.Fixed_type Dtype.Double |];
    sample = Sample_time.Inherited;
    event_outs = [||];
    make =
      (fun _ctx ->
        let state = ref (Int64.of_int seed) in
        let current = ref 0.0 in
        let draw () =
          let bits = Int64.shift_right_logical (splitmix_next state) 11 in
          let u = Int64.to_float bits /. 9007199254740992.0 in
          lo +. (u *. (hi -. lo))
        in
        {
          Block.no_beh_state with
          out =
            (fun ~minor ~time:_ _ ->
              if not minor then current := draw ();
              [| dv !current |]);
          reset =
            (fun () ->
              state := Int64.of_int seed;
              current := 0.0);
        });
  }

let clock =
  time_source ~kind:"Clock" ~params:[] (fun t -> t)
