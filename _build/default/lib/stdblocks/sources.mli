(** Source blocks (no inputs). *)

val constant : ?dtype:Dtype.t -> float -> Block.spec
(** Constant value, evaluated once ([Const] sample time). Default type
    [Double]. *)

val step : ?t_step:float -> ?before:float -> after:float -> unit -> Block.spec
(** Step source: [before] (default 0) until [t_step] (default 0), then
    [after]. *)

val ramp : ?start:float -> slope:float -> unit -> Block.spec
val sine : ?amp:float -> ?freq_hz:float -> ?phase:float -> ?bias:float -> unit -> Block.spec

val pulse : period:float -> ?duty:float -> ?amp:float -> unit -> Block.spec
(** Rectangular pulse train: high [amp] for the first [duty] fraction
    (default 0.5) of each [period]. *)

val setpoint_schedule : (float * float) list -> Block.spec
(** Piecewise-constant set-point profile given as [(from_time, value)]
    pairs sorted by time; the case-study "keyboard" set-point source. *)

val uniform_noise : ?seed:int -> ?lo:float -> ?hi:float -> unit -> Block.spec
(** Deterministic uniform noise in [lo, hi) (default [-1, 1)) from a
    64-bit SplitMix generator, reproducible across runs for a given
    [seed]. *)

val clock : Block.spec
(** Emits the current simulation time. *)
