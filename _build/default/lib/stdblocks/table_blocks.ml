let validate xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Table_blocks: xs/ys length mismatch";
  if Array.length xs < 2 then invalid_arg "Table_blocks: need >= 2 breakpoints";
  for i = 1 to Array.length xs - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Table_blocks: xs must be strictly increasing"
  done

let interp xs ys x =
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the bracketing segment *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = xs.(!lo) and x1 = xs.(!hi) in
    ys.(!lo) +. ((ys.(!hi) -. ys.(!lo)) *. (x -. x0) /. (x1 -. x0))
  end

let lookup1d ~xs ~ys =
  validate xs ys;
  Block.stateless ~kind:"Lookup1D"
    ~params:[ ("xs", Param.Floats xs); ("ys", Param.Floats ys) ]
    ~n_in:1 ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Double |]
    (fun _ctx ins -> [| Value.F (interp xs ys (Value.to_float ins.(0))) |])

let lookup1d_nearest ~xs ~ys =
  validate xs ys;
  Block.stateless ~kind:"Lookup1DNearest"
    ~params:[ ("xs", Param.Floats xs); ("ys", Param.Floats ys) ]
    ~n_in:1 ~n_out:1
    ~out_types:[| Block.Fixed_type Dtype.Double |]
    (fun _ctx ins ->
      let x = Value.to_float ins.(0) in
      let best = ref 0 in
      Array.iteri
        (fun i xi ->
          if Float.abs (xi -. x) < Float.abs (xs.(!best) -. x) then best := i)
        xs;
      [| Value.F ys.(!best) |])
