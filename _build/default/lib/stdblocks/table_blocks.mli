(** Lookup-table blocks. *)

val lookup1d : xs:float array -> ys:float array -> Block.spec
(** Piecewise-linear interpolation through breakpoints [xs] (strictly
    increasing) with end clamping — the calibration-map block of
    automotive applications. @raise Invalid_argument on length mismatch or
    non-monotone [xs]. *)

val lookup1d_nearest : xs:float array -> ys:float array -> Block.spec
(** Nearest-breakpoint (staircase) variant. *)

val interp : float array -> float array -> float -> float
(** The interpolation kernel itself, exposed for tests and for the code
    generator's constant folding. *)
