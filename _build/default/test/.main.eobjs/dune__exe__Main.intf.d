test/main.mli:
