test/test_autosar.ml: Alcotest Astring_contains Autosar_blocks Autosar_code Bean Bean_project C_ast C_print Compile Lazy List Mcu_db Pil_cosim Pil_target Servo_system Sim Target
