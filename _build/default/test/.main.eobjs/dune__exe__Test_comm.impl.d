test/test_comm.ml: Alcotest Crc16 Framer List Packet QCheck2 QCheck_alcotest
