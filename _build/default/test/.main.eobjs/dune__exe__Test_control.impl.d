test/test_control.ml: Alcotest Array Dc_motor Float Freqresp List Metrics Pid Qformat Stability Tuning Ztransfer
