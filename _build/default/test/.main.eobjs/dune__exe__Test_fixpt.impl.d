test/test_fixpt.ml: Alcotest Fixed Float List QCheck2 QCheck_alcotest Qformat Stdlib
