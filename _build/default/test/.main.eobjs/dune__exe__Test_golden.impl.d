test/test_golden.ml: Alcotest Astring_contains C_print Compile List Servo_system String Target
