test/test_hil.ml: Alcotest Compile Dc_motor Encoder Float Hil_cosim List Load_profile Option Servo_system Sim Stats Target
