test/test_mcu.ml: Adc_periph Alcotest Compile Cost_model Dtype Float Gpio_periph List Machine Math_blocks Mcu_db Pwm_periph Qdec_periph Sci_periph Servo_system Target Timer_periph Wdog_periph
