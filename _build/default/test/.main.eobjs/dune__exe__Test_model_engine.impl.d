test/test_model_engine.ml: Alcotest Array Astring_contains Block Compile Continuous_blocks Discrete_blocks Dtype List Math_blocks Model Pid Routing_blocks Sample_time Sim Sources Tuning Value
