test/test_ode.ml: Alcotest Array Float List Ode QCheck2 QCheck_alcotest
