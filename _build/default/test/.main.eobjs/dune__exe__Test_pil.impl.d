test/test_pil.ml: Alcotest Astring_contains Compile Float List Option Pil_cosim Pil_target Servo_system Sim Stats Target
