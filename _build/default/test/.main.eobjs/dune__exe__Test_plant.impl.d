test/test_plant.ml: Alcotest Dc_motor Encoder Float List Load_profile Power_stage QCheck2 QCheck_alcotest Thermal
