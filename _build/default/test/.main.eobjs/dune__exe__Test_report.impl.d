test/test_report.ml: Alcotest Ascii_plot Astring_contains Filename List Stats String Sys Table Trace_export
