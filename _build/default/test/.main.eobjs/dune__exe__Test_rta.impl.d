test/test_rta.ml: Alcotest Astring_contains Float List Machine Mcu_db Printf Rta Timer_periph
