test/test_servo.ml: Alcotest Astring_contains Compile Dc_motor Float Inspector List Load_profile Metrics Model Servo_system Sim Value
