test/test_sim_target.ml: Alcotest Astring_contains C_print Compile Continuous_blocks Filename Float Fun List Model Pil_target Printf Routing_blocks Servo_system Sim Sim_target Sys Target Unix Value
