test/test_statechart.ml: Alcotest Astring_contains Chart Chart_block Compile Float List Model Servo_system Sim Sources
