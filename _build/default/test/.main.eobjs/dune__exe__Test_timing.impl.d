test/test_timing.ml: Alcotest List Timing_study
