test/test_types.ml: Alcotest Dtype QCheck2 QCheck_alcotest Qformat Value
