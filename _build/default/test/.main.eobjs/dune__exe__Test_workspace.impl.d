test/test_workspace.ml: Alcotest Astring_contains Bean Bean_project Compile List Math_blocks Mcu_db Model Pe_workspace Sim Sources Target Value
