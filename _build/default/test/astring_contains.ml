(* Tiny substring helper for test assertions on error messages. *)
let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  if ln = 0 then true
  else begin
    let found = ref false in
    for i = 0 to lh - ln do
      if (not !found) && String.sub haystack i ln = needle then found := true
    done;
    !found
  end
