(* The AUTOSAR block-set variant (§8): functionally identical blocks,
   MCAL-style generated API. *)

let check_bool = Alcotest.(check bool)
let contains = Astring_contains.contains

let ar_cfg =
  { Servo_system.default_config with
    Servo_system.block_set = Servo_system.Autosar_blocks }

let test_behaviour_identical () =
  (* the paper: "the blocks of both variants are the same from the
     functional point of view" -- MIL trajectories must match exactly *)
  let pe = Servo_system.build () in
  let ar = Servo_system.build ~config:ar_cfg () in
  let sp_pe, _ = Servo_system.mil_run pe ~t_end:0.6 in
  let sp_ar, _ = Servo_system.mil_run ar ~t_end:0.6 in
  check_bool "identical MIL trajectories" true (sp_pe = sp_ar)

let artifacts =
  lazy
    (let b = Servo_system.build ~config:ar_cfg () in
     let comp = Compile.compile b.Servo_system.controller in
     Target.generate ~name:"servo" ~project:b.Servo_system.project comp)

let test_mcal_api_in_code () =
  let c = C_print.print_unit (Lazy.force artifacts).Target.model_c in
  check_bool "Adc group conversion" false (contains c "QD1_GetPosition");
  check_bool "Icu position read" true (contains c "Icu_GetEdgeNumbers(IcuChannel_QD1)");
  check_bool "Pwm MCAL duty" true (contains c "Pwm_SetDutyCycle(PwmChannel_PWM1");
  check_bool "Dio read" true (contains c "Dio_ReadChannel(DioChannel_SW1)");
  check_bool "Mcal header" true (contains c "#include \"Mcal.h\"");
  check_bool "no PE method calls" false (contains c "PWM1_SetRatio16")

let test_gpt_notification_schedules () =
  let m = C_print.print_unit (Lazy.force artifacts).Target.main_c in
  check_bool "Gpt notification runs the step" true
    (contains m "void Gpt_Notification_TI1(void)");
  check_bool "Mcal_Init in main" true (contains m "Mcal_Init();");
  check_bool "Gpt started" true (contains m "Gpt_StartTimer(GptChannel_TI1");
  check_bool "no PE enable calls" false (contains m "TI1_Enable();")

let test_mcal_hal_units () =
  let hal = (Lazy.force artifacts).Target.hal in
  let names = List.map (fun u -> u.C_ast.unit_name) hal in
  List.iter
    (fun n -> check_bool ("unit " ^ n) true (List.mem n names))
    [ "Std_Types.h"; "Mcal_Cfg.h"; "Mcal.h"; "Gpt.c"; "Pwm.c"; "Dio.c"; "Icu.c";
      "CddUart.c"; "Mcal.c" ];
  let cfgh = List.find (fun u -> u.C_ast.unit_name = "Mcal_Cfg.h") hal in
  let s = C_print.print_unit cfgh in
  check_bool "symbolic channels resolved" true (contains s "#define PwmChannel_PWM1");
  let gpt = List.find (fun u -> u.C_ast.unit_name = "Gpt.c") hal in
  let s = C_print.print_unit gpt in
  check_bool "expert-resolved modulo baked into Gpt_Init" true (contains s "59999")

let test_autosar_pil_variant () =
  (* the PIL redirection applies to the AUTOSAR blocks too *)
  let cfg = { ar_cfg with Servo_system.control_period = 5e-3 } in
  let b = Servo_system.build ~config:cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Pil_target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let c = C_print.print_unit a.Target.model_c in
  check_bool "sensor redirected" true (contains c "pil_sensor_buf[");
  check_bool "no MCAL hardware access" false (contains c "Icu_GetEdgeNumbers");
  (* and the co-simulation behaves like the PE one *)
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant b in
  let driver = Servo_system.pil_driver b in
  let r =
    Pil_cosim.run ~mcu:cfg.Servo_system.mcu ~schedule:a.Target.schedule ~controller
      ~plant ~driver ~periods:250 ()
  in
  match List.rev (Servo_system.pil_speed_trace r.Pil_cosim.trace) with
  | (_, w) :: _ -> Alcotest.(check (float 5.0)) "AUTOSAR PIL tracks" 150.0 w
  | [] -> Alcotest.fail "no trace"

let test_is_autosar_kind () =
  check_bool "AR kind" true (Autosar_blocks.is_autosar_kind "AR_Adc");
  check_bool "PE kind" false (Autosar_blocks.is_autosar_kind "PE_Adc")

let test_notification_names () =
  let p = Bean_project.create Mcu_db.mc56f8367 in
  let ti = Bean_project.add p (Bean.make ~name:"TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.01 })) in
  let pwm = Bean_project.add p (Bean.make ~name:"PWM1" (Bean.Pwm { channel = None; freq_hz = 20e3; initial_ratio = 0.0 })) in
  Alcotest.(check (option string)) "gpt notification" (Some "Gpt_Notification_TI1")
    (Autosar_code.notification_name ti);
  Alcotest.(check (option string)) "pwm has none" None
    (Autosar_code.notification_name pwm);
  Alcotest.(check string) "symbolic id" "GptChannel_TI1" (Autosar_code.symbolic_id ti)

let suite =
  [
    Alcotest.test_case "behaviour identical to PE" `Quick test_behaviour_identical;
    Alcotest.test_case "MCAL API in code" `Quick test_mcal_api_in_code;
    Alcotest.test_case "Gpt notification scheduling" `Quick test_gpt_notification_schedules;
    Alcotest.test_case "MCAL HAL units" `Quick test_mcal_hal_units;
    Alcotest.test_case "AUTOSAR PIL" `Quick test_autosar_pil_variant;
    Alcotest.test_case "kind predicate" `Quick test_is_autosar_kind;
    Alcotest.test_case "notification names" `Quick test_notification_names;
  ]
