(* Processor Expert substrate: expert system, resources, beans, projects,
   inspector and HAL generation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))
let mcu = Mcu_db.mc56f8367

(* ---------- expert system ---------- *)

let test_timer_solver_exact () =
  (* 1 ms at 60 MHz: 60000 cycles = prescaler 1 x modulo 60000 or 2x30000;
     the solver must land exactly with zero error *)
  match Expert.solve_timer_period mcu ~period:1e-3 with
  | Ok sol ->
      check_float 1e-15 "zero error" 0.0 sol.Expert.error_frac;
      check_int "cycles" 60000 (sol.Expert.prescaler * sol.Expert.modulo);
      check_bool "modulo within 16 bits" true (sol.Expert.modulo <= 65536)
  | Error e -> Alcotest.fail e

let test_timer_solver_rounding () =
  (* a prime-ish period needs rounding; error must be small and reported *)
  match Expert.solve_timer_period mcu ~period:1.00001e-3 with
  | Ok sol ->
      check_bool "tiny error" true
        (sol.Expert.error_frac > 0.0 && sol.Expert.error_frac < 1e-4);
      check_bool "achieved close" true
        (Float.abs (sol.Expert.achieved_period -. 1.00001e-3) < 1e-7)
  | Error e -> Alcotest.fail e

let test_timer_solver_range () =
  let lo, hi = Expert.achievable_timer_range mcu in
  check_bool "range sane" true (lo < 1e-6 && hi > 0.1);
  (match Expert.solve_timer_period mcu ~period:(hi *. 2.0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-range period accepted");
  match Expert.solve_timer_period mcu ~period:(-1.0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative period accepted"

let test_timer_tolerance_check () =
  match Expert.solve_timer_period mcu ~period:1.00001e-3 with
  | Ok sol -> (
      (match Expert.check_period_tolerance sol ~tolerance_frac:0.01 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Expert.check_period_tolerance sol ~tolerance_frac:1e-9 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "zero tolerance should reject rounding")
  | Error e -> Alcotest.fail e

let test_pll_solver () =
  (* the case-study clock: 8 MHz crystal to a 60 MHz core *)
  (match Expert.solve_pll ~crystal_hz:8e6 ~target_hz:60e6 () with
  | Ok sol ->
      check_float 1e-6 "exact 60 MHz" 60e6 sol.Expert.achieved_hz;
      check_float 1e-12 "zero error" 0.0 sol.Expert.pll_error_frac;
      check_bool "vco legal" true
        (8e6 *. float_of_int sol.Expert.multiplier <= 400e6)
  | Error e -> Alcotest.fail e);
  (* an unreachable target is diagnosed with the closest alternative *)
  (match Expert.solve_pll ~crystal_hz:8e6 ~target_hz:61.3e6 ~mult_range:(1, 8)
           ~div_range:(1, 1) () with
  | Error msg -> check_bool "closest named" true (Astring_contains.contains msg "closest")
  | Ok _ -> Alcotest.fail "rough target accepted");
  match Expert.solve_pll ~crystal_hz:8e6 ~target_hz:60e6 ~vco_max_hz:10e6 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "VCO ceiling ignored"

let test_pwm_solver () =
  (match Expert.solve_pwm_period mcu ~hz:20e3 with
  | Ok (counts, actual) ->
      check_int "counts" 3000 counts;
      check_float 1e-6 "exact carrier" 20e3 actual
  | Error e -> Alcotest.fail e);
  (match Expert.solve_pwm_period mcu ~hz:100.0 with
  | Error _ -> () (* needs 600000 counts > 15 bits *)
  | Ok _ -> Alcotest.fail "too-slow carrier accepted");
  match Expert.solve_pwm_period mcu ~hz:100e6 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too-fast carrier accepted"

let test_adc_timing_check () =
  (* conversion is 102 cycles = 1.7 us on the 56F8367 *)
  (match Expert.check_adc_sampling mcu ~sample_period:1e-3 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Expert.check_adc_sampling mcu ~sample_period:1e-6 with
  | Error e -> check_bool "explains headroom" true (Astring_contains.contains e "headroom")
  | Ok () -> Alcotest.fail "impossible sampling accepted"

let test_sci_solver () =
  (match Expert.solve_sci_divisor mcu ~baud:115200 with
  | Ok (div, err) ->
      check_bool "divisor positive" true (div >= 1);
      check_bool "error within budget" true (err <= 0.03)
  | Error e -> Alcotest.fail e);
  match Expert.solve_sci_divisor mcu ~baud:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero baud accepted"

(* ---------- resources ---------- *)

let test_resource_conflicts () =
  let r = Resources.create mcu in
  (match Resources.claim r ~owner:"A" Resources.Pwm_ch ~unit_index:0 () with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "first claim failed");
  (match Resources.claim r ~owner:"B" Resources.Pwm_ch ~unit_index:0 () with
  | Error msg ->
      check_bool "names the owner" true (Astring_contains.contains msg "A")
  | Ok _ -> Alcotest.fail "conflict accepted");
  (* auto allocation skips the taken channel *)
  match Resources.claim r ~owner:"B" Resources.Pwm_ch () with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "auto allocation wrong"

let test_resource_exhaustion () =
  let r = Resources.create mcu in
  let n = mcu.Mcu_db.sci_count in
  for i = 0 to n - 1 do
    match Resources.claim r ~owner:(Printf.sprintf "S%d" i) Resources.Sci_port () with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  match Resources.claim r ~owner:"extra" Resources.Sci_port () with
  | Error msg -> check_bool "reports exhaustion" true (Astring_contains.contains msg "in use")
  | Ok _ -> Alcotest.fail "over-allocation accepted"

let test_resource_release () =
  let r = Resources.create mcu in
  ignore (Resources.claim r ~owner:"A" Resources.Qdec_unit ());
  Resources.release_owner r "A";
  match Resources.claim r ~owner:"B" Resources.Qdec_unit () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_unknown_pin () =
  let r = Resources.create mcu in
  match Resources.claim r ~owner:"A" (Resources.Pin "NOPE") () with
  | Error msg -> check_bool "names the MCU" true (Astring_contains.contains msg "MC56F8367")
  | Ok _ -> Alcotest.fail "unknown pin accepted"

(* ---------- beans & projects ---------- *)

let test_bean_resolution () =
  let p = Bean_project.create mcu in
  let ti =
    Bean_project.add p
      (Bean.make ~name:"TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.001 }))
  in
  check_bool "resolved ok" true (Bean.is_valid ti);
  match ti.Bean.resolved with
  | Some (Bean.R_timer (sol, ch)) ->
      check_int "first channel" 0 ch;
      check_float 1e-12 "period" 1e-3 sol.Expert.achieved_period
  | _ -> Alcotest.fail "wrong resolution"

let test_bean_error_reported () =
  let p = Bean_project.create mcu in
  let b =
    Bean_project.add p
      (Bean.make ~name:"AD1"
         (Bean.Adc { channel = None; resolution = 10; vref = 3.3; sample_period = 1e-3 }))
  in
  check_bool "invalid" false (Bean.is_valid b);
  check_bool "message mentions resolution" true
    (List.exists (fun e -> Astring_contains.contains e "resolution") b.Bean.errors)

let test_project_verify_collects_errors () =
  let p = Bean_project.create mcu in
  ignore
    (Bean_project.add p
       (Bean.make ~name:"PWM1"
          (Bean.Pwm { channel = None; freq_hz = 10.0; initial_ratio = 0.0 })));
  match Bean_project.verify p with
  | Error msgs ->
      check_bool "prefixed with bean name" true
        (List.exists (fun m -> Astring_contains.contains m "PWM1") msgs)
  | Ok () -> Alcotest.fail "expected verification failure"

let test_project_duplicate_name () =
  let p = Bean_project.create mcu in
  ignore (Bean_project.add p (Bean.make ~name:"X" (Bean.Quad_dec { lines_per_rev = 100 })));
  match
    Bean_project.add p (Bean.make ~name:"X" (Bean.Quad_dec { lines_per_rev = 50 }))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let test_project_remove_releases () =
  let p = Bean_project.create mcu in
  ignore (Bean_project.add p (Bean.make ~name:"Q1" (Bean.Quad_dec { lines_per_rev = 100 })));
  Bean_project.remove p "Q1";
  let b = Bean_project.add p (Bean.make ~name:"Q2" (Bean.Quad_dec { lines_per_rev = 100 })) in
  check_bool "resource available again" true (Bean.is_valid b)

let test_retarget () =
  (* the paper's portability story: the same beans on another CPU *)
  let p = Bean_project.create mcu in
  ignore
    (Bean_project.add p
       (Bean.make ~name:"TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.001 })));
  ignore
    (Bean_project.add p
       (Bean.make ~name:"QD1" (Bean.Quad_dec { lines_per_rev = 100 })));
  let p' = Bean_project.retarget p Mcu_db.mcf5213 in
  (match Bean_project.verify p' with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  (* retargeting to an MCU without a decoder must surface an error *)
  let p'' = Bean_project.retarget p Mcu_db.mc9s12dp256 in
  match Bean_project.verify p'' with
  | Error msgs ->
      check_bool "decoder missing reported" true
        (List.exists (fun m -> Astring_contains.contains m "QD1") msgs)
  | Ok () -> Alcotest.fail "HCS12 should fail the decoder bean"

let test_bean_methods_events () =
  let b = Bean.make ~name:"AD1" (Bean.Adc { channel = None; resolution = 12; vref = 3.3; sample_period = 1e-3 }) in
  let names = List.map fst (Bean.methods b) in
  check_bool "Measure" true (List.mem "AD1_Measure" names);
  check_bool "GetValue" true (List.mem "AD1_GetValue" names);
  Alcotest.(check (list string)) "events" [ "AD1_OnEnd" ] (Bean.events b)

let test_inspector_output () =
  let p = Bean_project.create mcu in
  let ti =
    Bean_project.add p
      (Bean.make ~name:"TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.001 }))
  in
  let s = Inspector.render_bean ti in
  check_bool "shows type" true (Astring_contains.contains s "TimerInt");
  check_bool "shows computed prescaler" true (Astring_contains.contains s "Prescaler");
  check_bool "shows methods" true (Astring_contains.contains s "TI1_Enable");
  let proj = Inspector.render_project p in
  check_bool "project shows CPU" true (Astring_contains.contains proj "MC56F8367");
  check_bool "project shows status" true (Astring_contains.contains proj "OK")

(* ---------- HAL generation ---------- *)

let servo_project () =
  let p = Bean_project.create mcu in
  let add name c = ignore (Bean_project.add p (Bean.make ~name c)) in
  add "TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.001 });
  add "PWM1" (Bean.Pwm { channel = None; freq_hz = 20e3; initial_ratio = 0.0 });
  add "AD1" (Bean.Adc { channel = None; resolution = 12; vref = 3.3; sample_period = 1e-3 });
  add "QD1" (Bean.Quad_dec { lines_per_rev = 100 });
  add "AS1" (Bean.Serial { port = None; baud = 115200 });
  add "LED1"
    (Bean.Bit_io { pin = List.hd mcu.Mcu_db.pins; direction = Bean.Out_pin; init = false });
  p

let test_hal_units () =
  let p = servo_project () in
  let units = Bean_project.hal_units p in
  let names = List.map (fun u -> u.C_ast.unit_name) units in
  check_bool "types header" true (List.mem "PE_Types.h" names);
  check_bool "vectors" true (List.mem "Vectors.c" names);
  check_bool "per-bean unit" true (List.mem "TI1.c" names);
  let ti1 = List.find (fun u -> u.C_ast.unit_name = "TI1.c") units in
  let src = C_print.print_unit ti1 in
  check_bool "enable method" true (Astring_contains.contains src "byte TI1_Enable(void)");
  check_bool "modulo baked in" true (Astring_contains.contains src "59999");
  let pwm = List.find (fun u -> u.C_ast.unit_name = "PWM1.c") units in
  let src = C_print.print_unit pwm in
  check_bool "ratio method" true (Astring_contains.contains src "PWM1_SetRatio16");
  check_bool "period constant" true (Astring_contains.contains src "3000");
  check_bool "substantial HAL" true (Bean_project.hal_loc p > 100)

let test_hal_rejects_unresolved () =
  let p = Bean_project.create mcu in
  ignore
    (Bean_project.add p
       (Bean.make ~name:"PWM1"
          (Bean.Pwm { channel = None; freq_hz = 10.0; initial_ratio = 0.0 })));
  match Bean_project.hal_units p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "HAL generated from a broken project"

let test_vector_table_routes_events () =
  let p = servo_project () in
  let units = Bean_project.hal_units p in
  let v = List.find (fun u -> u.C_ast.unit_name = "Vectors.c") units in
  let src = C_print.print_unit v in
  check_bool "routes timer event" true (Astring_contains.contains src "TI1_OnInterrupt");
  check_bool "routes adc event" true (Astring_contains.contains src "AD1_OnEnd");
  check_bool "routes serial rx" true (Astring_contains.contains src "AS1_OnRxChar")

let test_free_counter_block () =
  let p = Bean_project.create mcu in
  let fc =
    Bean_project.add p (Bean.make ~name:"FC1" (Bean.Free_cntr { tick = 1e-5 }))
  in
  Alcotest.(check bool) "resolved" true (Bean.is_valid fc);
  let m = Model.create "fc" in
  let blk = Model.add m ~name:"fc" (Periph_blocks.free_counter fc) in
  let z = Model.add m (Discrete_blocks.zoh ~period:1e-3 ()) in
  Model.connect m ~src:(blk, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:10e-3 ();
  (* at t = 9 ms (last executed step) the 10 us counter reads 900 *)
  check_int "tick count" 900 (Value.to_int (Sim.value_named sim "fc" 0));
  (* and its generated code reads the bean *)
  let comp = Compile.compile m in
  let a = Target.generate ~name:"fc" ~project:p comp in
  check_bool "codegen reads the counter" true
    (Astring_contains.contains (C_print.print_unit a.Target.model_c)
       "FC1_GetCounterValue()")

let test_dac_end_to_end () =
  (* bean -> block -> simulation -> HAL codegen, plus the no-DAC part *)
  let w = Pe_workspace.create ~name:"dacapp" Mcu_db.mc56f8367 in
  let dac = Pe_workspace.add_dac w ~resolution:12 () in
  let m = Pe_workspace.model w in
  let code = Model.add m ~name:"code" (Sources.constant ~dtype:Dtype.Uint16 2048.0) in
  Model.connect m ~src:(code, 0) ~dst:(dac, 0);
  let sim = Sim.create (Compile.compile ~default_dt:1e-3 m) in
  Sim.step sim;
  (* mid code on a 12-bit 3.3 V DAC: 2048/4095 * 3.3 V *)
  Alcotest.(check (float 1e-9)) "analog out"
    (2048.0 /. 4095.0 *. 3.3)
    (Value.to_float (Sim.value_named sim "DA1" 0));
  (* generated application calls the bean method *)
  let a =
    Target.generate ~name:"dacapp" ~project:(Pe_workspace.project w)
      (Compile.compile ~default_dt:1e-3 m)
  in
  check_bool "SetValue call" true
    (Astring_contains.contains (C_print.print_unit a.Target.model_c)
       "DA1_SetValue(");
  let hal = Bean_project.hal_units (Pe_workspace.project w) in
  let da1 = List.find (fun u -> u.C_ast.unit_name = "DA1.c") hal in
  check_bool "HAL clamps" true
    (Astring_contains.contains (C_print.print_unit da1) "4095");
  (* a part without a DAC rejects the bean with a diagnosis *)
  let p = Bean_project.create Mcu_db.mc9s12dp256 in
  let b = Bean_project.add p (Bean.make ~name:"DA1" (Bean.Dac { channel = None; resolution = 12; vref = 3.3 })) in
  check_bool "HCS12 has no DAC" false (Bean.is_valid b);
  check_bool "diagnosed" true
    (List.exists (fun e -> Astring_contains.contains e "no DAC") b.Bean.errors)

let test_watchdog_bean () =
  let p = Bean_project.create mcu in
  let wd = Bean_project.add p (Bean.make ~name:"WD1" (Bean.Watch_dog { timeout = 5e-3 })) in
  check_bool "resolved" true (Bean.is_valid wd);
  let names = List.map fst (Bean.methods wd) in
  check_bool "Clear method" true (List.mem "WD1_Clear" names);
  let units = Bean_project.hal_units p in
  let u = List.find (fun u -> u.C_ast.unit_name = "WD1.c") units in
  let src = C_print.print_unit u in
  check_bool "service sequence" true (Astring_contains.contains src "0x5555");
  (* nonsense timeout rejected *)
  let bad = Bean_project.add p (Bean.make ~name:"WD2" (Bean.Watch_dog { timeout = -1.0 })) in
  check_bool "negative timeout" false (Bean.is_valid bad)

let suite =
  [
    Alcotest.test_case "watchdog bean" `Quick test_watchdog_bean;
    Alcotest.test_case "dac end to end" `Quick test_dac_end_to_end;
    Alcotest.test_case "free counter block" `Quick test_free_counter_block;
    Alcotest.test_case "timer solver exact" `Quick test_timer_solver_exact;
    Alcotest.test_case "timer solver rounding" `Quick test_timer_solver_rounding;
    Alcotest.test_case "timer range" `Quick test_timer_solver_range;
    Alcotest.test_case "timer tolerance" `Quick test_timer_tolerance_check;
    Alcotest.test_case "pll solver" `Quick test_pll_solver;
    Alcotest.test_case "pwm solver" `Quick test_pwm_solver;
    Alcotest.test_case "adc timing check" `Quick test_adc_timing_check;
    Alcotest.test_case "sci solver" `Quick test_sci_solver;
    Alcotest.test_case "resource conflicts" `Quick test_resource_conflicts;
    Alcotest.test_case "resource exhaustion" `Quick test_resource_exhaustion;
    Alcotest.test_case "resource release" `Quick test_resource_release;
    Alcotest.test_case "unknown pin" `Quick test_unknown_pin;
    Alcotest.test_case "bean resolution" `Quick test_bean_resolution;
    Alcotest.test_case "bean error" `Quick test_bean_error_reported;
    Alcotest.test_case "project verify" `Quick test_project_verify_collects_errors;
    Alcotest.test_case "duplicate bean" `Quick test_project_duplicate_name;
    Alcotest.test_case "remove releases" `Quick test_project_remove_releases;
    Alcotest.test_case "retarget" `Quick test_retarget;
    Alcotest.test_case "methods/events" `Quick test_bean_methods_events;
    Alcotest.test_case "inspector" `Quick test_inspector_output;
    Alcotest.test_case "hal units" `Quick test_hal_units;
    Alcotest.test_case "hal rejects unresolved" `Quick test_hal_rejects_unresolved;
    Alcotest.test_case "vector table" `Quick test_vector_table_routes_events;
  ]
