(* Behaviour of the standard block library, one small harness per block. *)

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

(* Run a single block fed by constant sources for n steps at dt, return
   the numeric value of output 0 after the last step. *)
let run_block ?(n = 1) ?(dt = 0.1) spec inputs =
  let m = Model.create "harness" in
  let blk = Model.add m ~name:"dut" spec in
  List.iteri
    (fun i v ->
      let src = Model.add m (Sources.constant v) in
      Model.connect m ~src:(src, 0) ~dst:(blk, i))
    inputs;
  (* keep unconnected outputs legal: nothing requires them to be wired *)
  let sim = Sim.create (Compile.compile ~default_dt:dt m) in
  for _ = 1 to n do
    Sim.step sim
  done;
  Sim.value_named sim "dut" 0

(* Run a block against a time-indexed input function, returning the
   output sequence. *)
let run_sequence ?(dt = 0.1) spec input_fn n =
  let m = Model.create "harness" in
  let feeder =
    Block.stateless ~kind:"Feeder" ~n_in:0 ~n_out:1
      ~out_types:[| Block.Fixed_type Dtype.Double |]
      (fun _ctx _ -> [| Value.F 0.0 |])
  in
  let feeder =
    {
      feeder with
      Block.make =
        (fun _ctx ->
          let k = ref 0 in
          {
            Block.no_beh_state with
            out =
              (fun ~minor ~time:_ _ ->
                let v = input_fn !k in
                if not minor then incr k;
                [| Value.F v |]);
            reset = (fun () -> k := 0);
          });
      sample = Sample_time.discrete dt;
    }
  in
  let src = Model.add m ~name:"src" feeder in
  let blk = Model.add m ~name:"dut" spec in
  Model.connect m ~src:(src, 0) ~dst:(blk, 0);
  let sim = Sim.create (Compile.compile ~default_dt:dt m) in
  List.init n (fun _ ->
      Sim.step sim;
      Value.to_float (Sim.value_named sim "dut" 0))

let test_sources () =
  check_float 1e-12 "constant" 4.2 (Value.to_float (run_block (Sources.constant 4.2) []));
  check_float 1e-12 "step before" 0.0
    (Value.to_float (run_block (Sources.step ~t_step:1.0 ~after:2.0 ()) []));
  check_float 1e-12 "ramp" 0.0
    (Value.to_float (run_block (Sources.ramp ~slope:3.0 ()) []));
  check_float 1e-12 "sine at 0 with bias" 1.0
    (Value.to_float (run_block (Sources.sine ~bias:1.0 ()) []))

let test_setpoint_schedule () =
  let spec = Sources.setpoint_schedule [ (0.0, 1.0); (0.5, 2.0) ] in
  check_float 1e-12 "first segment" 1.0 (Value.to_float (run_block ~n:2 spec []));
  check_float 1e-12 "second segment" 2.0 (Value.to_float (run_block ~n:7 spec []))

let test_pulse () =
  let outs = run_sequence (Discrete_blocks.zoh ~period:0.1 ()) (fun _ -> 0.0) 1 in
  ignore outs;
  let spec = Sources.pulse ~period:1.0 ~duty:0.3 ~amp:5.0 () in
  check_float 1e-12 "pulse high at t=0.2" 5.0 (Value.to_float (run_block ~n:3 spec []));
  check_float 1e-12 "pulse low at t=0.5" 0.0 (Value.to_float (run_block ~n:6 spec []))

let test_math_blocks () =
  check_float 1e-12 "sum +-" 1.5
    (Value.to_float (run_block (Math_blocks.sum "+-") [ 2.0; 0.5 ]));
  check_float 1e-12 "product" 6.0
    (Value.to_float (run_block (Math_blocks.product 3) [ 1.0; 2.0; 3.0 ]));
  check_float 1e-12 "divide" 2.5 (Value.to_float (run_block Math_blocks.divide [ 5.0; 2.0 ]));
  check_float 1e-12 "abs" 3.0 (Value.to_float (run_block Math_blocks.abs_block [ -3.0 ]));
  check_float 1e-12 "neg" (-3.0) (Value.to_float (run_block Math_blocks.neg [ 3.0 ]));
  check_float 1e-12 "min" 1.0 (Value.to_float (run_block Math_blocks.min_block [ 1.0; 2.0 ]));
  check_float 1e-12 "max" 2.0 (Value.to_float (run_block Math_blocks.max_block [ 1.0; 2.0 ]));
  check_float 1e-12 "sqrt" 3.0
    (Value.to_float (run_block (Math_blocks.math_fn `Sqrt) [ 9.0 ]))

let test_compare_logic () =
  check_bool "lt" true (Value.to_bool (run_block (Math_blocks.compare `Lt) [ 1.0; 2.0 ]));
  check_bool "ge" false (Value.to_bool (run_block (Math_blocks.compare `Ge) [ 1.0; 2.0 ]));
  check_bool "and" false
    (Value.to_bool (run_block (Math_blocks.logic `And) [ 1.0; 0.0 ]));
  check_bool "or" true (Value.to_bool (run_block (Math_blocks.logic `Or) [ 1.0; 0.0 ]));
  check_bool "not" true (Value.to_bool (run_block (Math_blocks.logic `Not) [ 0.0 ]));
  check_bool "xor" true (Value.to_bool (run_block (Math_blocks.logic `Xor) [ 1.0; 0.0 ]))

let test_cast_saturates () =
  let v = run_block (Math_blocks.cast Dtype.Int8) [ 300.0 ] in
  Alcotest.(check int) "int8 saturation" 127 (Value.to_int v);
  let v = run_block (Math_blocks.cast (Dtype.Fix Qformat.q15)) [ 0.5 ] in
  Alcotest.(check int) "q15 raw" 16384 (Value.to_int v)

let test_unit_delay () =
  let outs = run_sequence (Discrete_blocks.unit_delay ~init:9.0 ()) float_of_int 3 in
  Alcotest.(check (list (float 1e-12))) "delayed" [ 9.0; 0.0; 1.0 ] outs

let test_delay_n () =
  let outs = run_sequence (Discrete_blocks.delay_n 2) float_of_int 4 in
  Alcotest.(check (list (float 1e-12))) "two samples" [ 0.0; 0.0; 0.0; 1.0 ] outs

let test_discrete_integrator () =
  let outs =
    run_sequence (Discrete_blocks.discrete_integrator ~k:2.0 ()) (fun _ -> 1.0) 3
  in
  (* forward Euler: y lags by one sample; dt = 0.1, k = 2: 0, 0.2, 0.4 *)
  Alcotest.(check (list (float 1e-9))) "euler" [ 0.0; 0.2; 0.4 ] outs

let test_discrete_integrator_clamp () =
  let outs =
    run_sequence
      (Discrete_blocks.discrete_integrator ~hi:0.25 ())
      (fun _ -> 1.0)
      6
  in
  check_float 1e-12 "clamped" 0.25 (List.nth outs 5)

let test_discrete_derivative () =
  let outs = run_sequence (Discrete_blocks.discrete_derivative ()) float_of_int 3 in
  (* du = 1 per 0.1 s -> 10 *)
  Alcotest.(check (list (float 1e-9))) "derivative" [ 0.0; 10.0; 10.0 ] outs

let test_rate_limiter () =
  let outs =
    run_sequence
      (Discrete_blocks.rate_limiter ~rising:1.0 ~falling:1.0)
      (fun k -> if k = 0 then 0.0 else 10.0)
      4
  in
  (* slew 0.1 per step after the initial sample *)
  Alcotest.(check (list (float 1e-9))) "slew" [ 0.0; 0.1; 0.2; 0.3 ] outs

let test_moving_average () =
  let outs = run_sequence (Discrete_blocks.moving_average 2) float_of_int 4 in
  Alcotest.(check (list (float 1e-9))) "window" [ 0.0; 0.5; 1.5; 2.5 ] outs

let test_encoder_speed_block () =
  let outs =
    run_sequence ~dt:0.001
      (Discrete_blocks.encoder_speed ~counts_per_rev:400)
      (fun k -> float_of_int (k * 4))
      3
  in
  (* 4 counts per ms = 4/400 rev/ms = 62.8 rad/s *)
  check_float 1e-6 "speed" (4.0 /. 400.0 *. 2.0 *. Float.pi /. 0.001) (List.nth outs 2)

let test_encoder_speed_wraps () =
  (* position register wrap at 65536 must not glitch the estimate *)
  let outs =
    run_sequence ~dt:0.001
      (Discrete_blocks.encoder_speed ~counts_per_rev:400)
      (fun k -> float_of_int ((65530 + (4 * k)) land 0xFFFF))
      4
  in
  check_float 1e-6 "wrap transparent"
    (4.0 /. 400.0 *. 2.0 *. Float.pi /. 0.001)
    (List.nth outs 3)

let test_nonlinear_blocks () =
  check_float 1e-12 "saturation hi" 1.0
    (Value.to_float (run_block (Nonlinear_blocks.saturation ~lo:(-1.0) ~hi:1.0) [ 5.0 ]));
  check_float 1e-12 "quantizer" 0.4
    (Value.to_float (run_block (Nonlinear_blocks.quantizer ~interval:0.2) [ 0.45 ]));
  check_float 1e-12 "dead zone inside" 0.0
    (Value.to_float (run_block (Nonlinear_blocks.dead_zone ~lo:(-0.5) ~hi:0.5) [ 0.3 ]));
  check_float 1e-12 "dead zone outside" 0.5
    (Value.to_float (run_block (Nonlinear_blocks.dead_zone ~lo:(-0.5) ~hi:0.5) [ 1.0 ]));
  check_float 1e-12 "sign" (-1.0)
    (Value.to_float (run_block Nonlinear_blocks.sign_block [ -0.1 ]));
  check_float 1e-12 "switch true branch" 1.0
    (Value.to_float (run_block (Nonlinear_blocks.switch ~threshold:0.5) [ 1.0; 0.7; 2.0 ]));
  check_float 1e-12 "switch false branch" 2.0
    (Value.to_float (run_block (Nonlinear_blocks.switch ~threshold:0.5) [ 1.0; 0.2; 2.0 ]));
  check_float 1e-12 "coulomb" 1.5
    (Value.to_float (run_block (Nonlinear_blocks.coulomb_friction ~level:0.5) [ 1.0 ]))

let test_relay_hysteresis () =
  let spec =
    Nonlinear_blocks.relay ~on_point:1.0 ~off_point:(-1.0) ~on_value:5.0
      ~off_value:0.0 ()
  in
  let outs =
    run_sequence spec (fun k -> [| 0.0; 2.0; 0.0; -2.0; 0.0 |].(k)) 5
  in
  Alcotest.(check (list (float 1e-12)))
    "hysteresis memory" [ 0.0; 5.0; 5.0; 0.0; 0.0 ] outs

let test_backlash () =
  let spec = Nonlinear_blocks.backlash ~width:1.0 in
  let outs = run_sequence spec (fun k -> [| 0.0; 1.0; 0.8; 0.0 |].(k)) 4 in
  Alcotest.(check (list (float 1e-12))) "play" [ 0.0; 0.5; 0.5; 0.5 ] outs

let test_lookup1d () =
  check_float 1e-12 "interior" 15.0
    (Value.to_float
       (run_block (Table_blocks.lookup1d ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 10.0; 20.0; 40.0 |])
          [ 0.5 ]));
  check_float 1e-12 "clamped low" 10.0
    (Value.to_float
       (run_block (Table_blocks.lookup1d ~xs:[| 0.0; 1.0 |] ~ys:[| 10.0; 20.0 |]) [ -5.0 ]));
  check_float 1e-12 "nearest" 20.0
    (Value.to_float
       (run_block (Table_blocks.lookup1d_nearest ~xs:[| 0.0; 1.0 |] ~ys:[| 10.0; 20.0 |])
          [ 0.7 ]))

let test_lookup_validation () =
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Table_blocks: xs must be strictly increasing") (fun () ->
      ignore (Table_blocks.lookup1d ~xs:[| 0.0; 0.0 |] ~ys:[| 1.0; 2.0 |]))

let test_discrete_tf_block () =
  let outs =
    run_sequence
      (Discrete_blocks.discrete_tf ~num:[| 0.2 |] ~den:[| 1.0; -0.8 |])
      (fun _ -> 1.0)
      3
  in
  Alcotest.(check (list (float 1e-9))) "matches Ztransfer" [ 0.2; 0.36; 0.488 ] outs

let test_noise_bounds () =
  let outs = run_sequence (Discrete_blocks.zoh ~period:0.1 ()) (fun _ -> 0.0) 1 in
  ignore outs;
  let m = Model.create "noise" in
  let n = Model.add m ~name:"n" (Sources.uniform_noise ~seed:3 ~lo:(-2.0) ~hi:2.0 ()) in
  let z = Model.add m (Discrete_blocks.zoh ~period:0.01 ()) in
  Model.connect m ~src:(n, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.probe_named sim "n" 0;
  Sim.run sim ~until:2.0 ();
  let samples = List.map snd (Sim.trace_named sim "n" 0) in
  check_bool "bounded" true (List.for_all (fun x -> x >= -2.0 && x < 2.0) samples);
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples) in
  check_bool "roughly centred" true (Float.abs mean < 0.2)

let test_merge2 () =
  (* input 0 constant, input 1 changing: merge follows input 1 *)
  let m = Model.create "merge" in
  let c = Model.add m (Sources.constant 5.0) in
  let r = Model.add m ~name:"r" (Sources.ramp ~slope:1.0 ()) in
  let mg = Model.add m ~name:"mg" Routing_blocks.merge2 in
  let z = Model.add m (Discrete_blocks.zoh ~period:0.1 ()) in
  Model.connect m ~src:(c, 0) ~dst:(mg, 0);
  Model.connect m ~src:(r, 0) ~dst:(mg, 1);
  Model.connect m ~src:(mg, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:0.55 ();
  check_float 1e-9 "follows the changing input" 0.5
    (Value.to_float (Sim.value_named sim "mg" 0))

let test_thermal_block () =
  let m = Model.create "th" in
  let p = Model.add m (Sources.constant 100.0) in
  let th = Model.add m ~name:"th" (Plant_blocks.thermal_plant ()) in
  let z = Model.add m (Discrete_blocks.zoh ~period:1.0 ()) in
  Model.connect m ~src:(p, 0) ~dst:(th, 0);
  Model.connect m ~src:(th, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:(10.0 *. Thermal.time_constant Thermal.default) ();
  check_float 0.5 "thermal block converges"
    (Thermal.steady_state Thermal.default ~p_in:100.0)
    (Value.to_float (Sim.value_named sim "th" 0))

let suite =
  [
    Alcotest.test_case "sources" `Quick test_sources;
    Alcotest.test_case "setpoint schedule" `Quick test_setpoint_schedule;
    Alcotest.test_case "pulse" `Quick test_pulse;
    Alcotest.test_case "math blocks" `Quick test_math_blocks;
    Alcotest.test_case "compare/logic" `Quick test_compare_logic;
    Alcotest.test_case "cast saturates" `Quick test_cast_saturates;
    Alcotest.test_case "unit delay" `Quick test_unit_delay;
    Alcotest.test_case "delay n" `Quick test_delay_n;
    Alcotest.test_case "discrete integrator" `Quick test_discrete_integrator;
    Alcotest.test_case "integrator clamp" `Quick test_discrete_integrator_clamp;
    Alcotest.test_case "discrete derivative" `Quick test_discrete_derivative;
    Alcotest.test_case "rate limiter" `Quick test_rate_limiter;
    Alcotest.test_case "moving average" `Quick test_moving_average;
    Alcotest.test_case "encoder speed" `Quick test_encoder_speed_block;
    Alcotest.test_case "encoder speed wrap" `Quick test_encoder_speed_wraps;
    Alcotest.test_case "nonlinear blocks" `Quick test_nonlinear_blocks;
    Alcotest.test_case "relay hysteresis" `Quick test_relay_hysteresis;
    Alcotest.test_case "backlash" `Quick test_backlash;
    Alcotest.test_case "lookup1d" `Quick test_lookup1d;
    Alcotest.test_case "lookup validation" `Quick test_lookup_validation;
    Alcotest.test_case "discrete tf block" `Quick test_discrete_tf_block;
    Alcotest.test_case "noise bounds" `Quick test_noise_bounds;
    Alcotest.test_case "merge2" `Quick test_merge2;
    Alcotest.test_case "thermal block" `Quick test_thermal_block;
  ]
