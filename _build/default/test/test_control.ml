(* Control substrate: PID, transfer functions, stability, tuning, metrics. *)

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

(* ---------- PID ---------- *)

let test_pid_proportional_only () =
  let c = Pid.create ~ts:0.01 (Pid.gains ~kp:2.0 ~ki:0.0 ()) in
  check_float 1e-12 "p action" 6.0 (Pid.step c ~sp:5.0 ~pv:2.0)

let test_pid_integral_accumulates () =
  let c = Pid.create ~ts:0.1 (Pid.gains ~kp:0.0 ~ki:1.0 ()) in
  ignore (Pid.step c ~sp:1.0 ~pv:0.0);
  (* first step integrates e*ts = 0.1 after output; second step shows it *)
  check_float 1e-12 "second step" 0.1 (Pid.step c ~sp:1.0 ~pv:0.0);
  check_float 1e-12 "third step" 0.2 (Pid.step c ~sp:1.0 ~pv:0.0)

let test_pid_saturation_and_antiwindup () =
  let c = Pid.create ~ts:0.1 (Pid.gains ~kp:0.0 ~ki:10.0 ~u_max:1.0 ~u_min:(-1.0) ()) in
  for _ = 1 to 100 do
    ignore (Pid.step c ~sp:10.0 ~pv:0.0)
  done;
  check_float 1e-12 "clamped" 1.0 (Pid.step c ~sp:10.0 ~pv:0.0);
  (* with conditional integration the integrator must not have wound far
     past the limit: a reversal must unwind quickly *)
  let rec recover n =
    let u = Pid.step c ~sp:(-10.0) ~pv:0.0 in
    if u <= -0.99 then n else recover (n + 1)
  in
  Alcotest.(check bool) "recovers fast" true (recover 0 <= 3)

let test_pid_derivative_kick () =
  let c = Pid.create ~ts:0.01 (Pid.gains ~kp:0.0 ~ki:0.0 ~kd:0.1 ~n:0.0 ()) in
  let u1 = Pid.step c ~sp:1.0 ~pv:0.0 in
  let u2 = Pid.step c ~sp:1.0 ~pv:0.0 in
  check_float 1e-9 "kick on step" 10.0 u1;
  check_float 1e-9 "decays to zero" 0.0 u2

let test_pid_derivative_filter () =
  (* with filtering the kick is spread over several samples *)
  let c = Pid.create ~ts:0.01 (Pid.gains ~kp:0.0 ~ki:0.0 ~kd:0.1 ~n:50.0 ()) in
  let u1 = Pid.step c ~sp:1.0 ~pv:0.0 in
  let u2 = Pid.step c ~sp:1.0 ~pv:0.0 in
  check_bool "filtered kick smaller" true (u1 < 10.0);
  check_bool "second sample nonzero" true (u2 > 0.0 && u2 < u1)

let test_pid_reset () =
  let c = Pid.create ~ts:0.1 (Pid.gains ~kp:1.0 ~ki:1.0 ()) in
  ignore (Pid.step c ~sp:1.0 ~pv:0.0);
  ignore (Pid.step c ~sp:1.0 ~pv:0.0);
  Pid.reset c;
  check_float 1e-12 "fresh after reset" 1.0 (Pid.step c ~sp:1.0 ~pv:0.0)

let test_fixpid_matches_float_small_signals () =
  let g = Pid.gains ~kp:0.5 ~ki:2.0 ~u_min:(-10.0) ~u_max:10.0 () in
  let fc = Pid.create ~ts:1e-3 g in
  let xc =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:100.0 ~out_scale:10.0 g
  in
  (* drive both with the same quasi-sinusoidal profile *)
  let max_err = ref 0.0 in
  for k = 0 to 999 do
    let sp = 50.0 *. sin (float_of_int k /. 100.0) in
    let pv = 40.0 *. sin ((float_of_int k /. 100.0) -. 0.2) in
    let uf = Pid.step fc ~sp ~pv in
    let ux = Pid.Fixpoint.step xc ~sp ~pv in
    max_err := Float.max !max_err (Float.abs (uf -. ux))
  done;
  (* quantisation of Q15 signals at in_scale 100 is ~3e-3; allow a small
     accumulation margin *)
  check_bool "fixed tracks float" true (!max_err < 0.1)

let test_fixpid_saturates_cleanly () =
  let g = Pid.gains ~kp:10.0 ~ki:0.0 ~u_min:0.0 ~u_max:24.0 () in
  let xc =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:500.0 ~out_scale:24.0 g
  in
  let u = Pid.Fixpoint.step xc ~sp:500.0 ~pv:0.0 in
  check_float 1e-6 "clamps at u_max" 24.0 u;
  let u = Pid.Fixpoint.step xc ~sp:(-500.0) ~pv:0.0 in
  check_float 1e-6 "clamps at u_min" 0.0 u

let test_fixpid_quantized_gains_close () =
  let g = Pid.gains ~kp:0.0304 ~ki:2.53 () in
  let xc =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:512.0 ~out_scale:24.0 g
  in
  let kp, ki, _ = Pid.Fixpoint.quantized_gains xc in
  check_bool "kp within 1%" true (Float.abs (kp -. 0.0304) /. 0.0304 < 0.01);
  check_bool "ki within 1%" true (Float.abs (ki -. 2.53) /. 2.53 < 0.01)

(* ---------- Ztransfer ---------- *)

let test_tf_dc_gain () =
  (* H(z) = 0.2 / (1 - 0.8 z^-1): dc gain 1 *)
  let tf = Ztransfer.create ~num:[| 0.2 |] ~den:[| 1.0; -0.8 |] in
  check_float 1e-12 "dc gain" 1.0 (Ztransfer.dc_gain tf)

let test_tf_first_order_response () =
  let tf = Ztransfer.create ~num:[| 0.2 |] ~den:[| 1.0; -0.8 |] in
  let resp = Ztransfer.response tf [ 1.0; 1.0; 1.0; 1.0 ] in
  (* y(k) = 0.2 * sum 0.8^i *)
  let expected = [ 0.2; 0.36; 0.488; 0.5904 ] in
  List.iter2 (fun a b -> check_float 1e-9 "sample" a b) expected resp

let test_tf_feedthrough () =
  (* biproper H(z) = (1 - 0.5 z^-1)/(1 - 0.2 z^-1) responds instantly *)
  let tf = Ztransfer.create ~num:[| 1.0; -0.5 |] ~den:[| 1.0; -0.2 |] in
  (match Ztransfer.response tf [ 1.0 ] with
  | [ y ] -> check_float 1e-12 "instant" 1.0 y
  | _ -> Alcotest.fail "arity")

let test_tf_normalisation () =
  let tf = Ztransfer.create ~num:[| 2.0 |] ~den:[| 2.0; -1.0 |] in
  check_float 1e-12 "den normalised" 1.0 (Ztransfer.den tf).(0);
  check_float 1e-12 "num scaled" 1.0 (Ztransfer.num tf).(0)

let test_tf_invalid () =
  Alcotest.check_raises "non-causal"
    (Invalid_argument "Ztransfer.create: non-causal (num longer than den)")
    (fun () -> ignore (Ztransfer.create ~num:[| 1.0; 2.0 |] ~den:[| 1.0 |]))

let test_tustin_first_order () =
  (* 1/(s+1) via Tustin at ts, compare with the continuous step response *)
  let ts = 0.01 in
  let tf = Ztransfer.tustin ~num_s:[| 1.0 |] ~den_s:[| 1.0; 1.0 |] ~ts in
  (* output sample k of the Tustin model approximates t = (k + 1/2) ts *)
  let n = 100 in
  let resp = Ztransfer.response tf (List.init n (fun _ -> 1.0)) in
  let y_end = List.nth resp (n - 1) in
  check_float 1e-4 "step at t=99.5 ts" (1.0 -. exp (-0.995)) y_end

let test_tustin_integrator () =
  (* 1/s -> trapezoidal integrator: dc gain infinite, ramp slope ts *)
  let tf = Ztransfer.tustin ~num_s:[| 1.0 |] ~den_s:[| 1.0; 0.0 |] ~ts:0.1 in
  let resp = Ztransfer.response tf [ 1.0; 1.0; 1.0 ] in
  (* trapezoid of constant 1: 0.05, 0.15, 0.25 *)
  List.iter2
    (fun a b -> check_float 1e-9 "trapezoid" a b)
    [ 0.05; 0.15; 0.25 ] resp

let test_zoh_first_order () =
  let tf = Ztransfer.zoh_first_order ~k:2.0 ~tau:0.5 ~ts:0.01 in
  check_float 1e-9 "dc gain" 2.0 (Ztransfer.dc_gain tf);
  (* ZOH discretisation is exact at the sample instants: y[k] = y(k ts) *)
  let resp = Ztransfer.response tf (List.init 101 (fun _ -> 1.0)) in
  check_float 1e-9 "exact zoh at t=1"
    (2.0 *. (1.0 -. exp (-1.0 /. 0.5)))
    (List.nth resp 100)

(* ---------- Stability ---------- *)

let test_jury_simple () =
  check_bool "z - 0.5 stable" true (Stability.jury [| 1.0; -0.5 |]);
  check_bool "z - 1.5 unstable" false (Stability.jury [| 1.0; -1.5 |]);
  check_bool "marginal z - 1 unstable" false (Stability.jury [| 1.0; -1.0 |])

let test_jury_second_order () =
  (* roots at 0.5 +- 0.5i: |r| = 0.707 stable *)
  check_bool "complex stable" true (Stability.jury [| 1.0; -1.0; 0.5 |]);
  (* roots at 1.2, 0.3 *)
  check_bool "real unstable" false (Stability.jury [| 1.0; -1.5; 0.36 |])

let test_jury_vs_roots_oracle () =
  (* cross-check jury against numeric roots on a grid of coefficients *)
  let mismatches = ref 0 in
  for i = -8 to 8 do
    for j = -8 to 8 do
      let a1 = float_of_int i /. 5.0 and a2 = float_of_int j /. 5.0 in
      let poly = [| 1.0; a1; a2 |] in
      let stable_jury = Stability.jury poly in
      let mag = Stability.poly_roots_magnitude poly in
      (* skip near-marginal cases where numeric root finding is fuzzy *)
      if Float.abs (mag -. 1.0) > 1e-3 && stable_jury <> (mag < 1.0) then
        incr mismatches
    done
  done;
  Alcotest.(check int) "jury agrees with roots" 0 !mismatches

let test_closed_loop_stability () =
  let plant = Ztransfer.create ~num:[| 0.0; 0.1 |] ~den:[| 1.0; -0.9 |] in
  let c_small = Ztransfer.create ~num:[| 1.0 |] ~den:[| 1.0 |] in
  let c_huge = Ztransfer.create ~num:[| 100.0 |] ~den:[| 1.0 |] in
  check_bool "small gain stable" true
    (Stability.closed_loop_stable ~plant ~controller:c_small);
  check_bool "huge gain unstable" false
    (Stability.closed_loop_stable ~plant ~controller:c_huge)

(* ---------- Tuning ---------- *)

let test_imc_pi_design () =
  let kp, ki = Tuning.pi_for_first_order ~k:2.0 ~tau:0.5 ~closed_loop_tau:0.1 () in
  check_float 1e-12 "kp" (0.5 /. (2.0 *. 0.1)) kp;
  check_float 1e-12 "ki" (1.0 /. (2.0 *. 0.1)) ki

let test_ultimate_gain () =
  (* delayed first-order plant has a finite ultimate gain *)
  let plant = Ztransfer.create ~num:[| 0.0; 0.0; 0.1 |] ~den:[| 1.0; -0.9; 0.0 |] in
  match Tuning.ultimate_gain ~plant () with
  | Some (ku, tu) ->
      check_bool "ku positive finite" true (ku > 0.0 && Float.is_finite ku);
      check_bool "tu in samples > 2" true (tu > 2.0);
      (* verify marginality: 0.9*ku stable, 1.1*ku unstable *)
      let stable k =
        Stability.closed_loop_stable ~plant
          ~controller:(Ztransfer.create ~num:[| k |] ~den:[| 1.0 |])
      in
      check_bool "below ku stable" true (stable (0.9 *. ku));
      check_bool "above ku unstable" false (stable (1.1 *. ku))
  | None -> Alcotest.fail "expected an ultimate gain"

let test_zn_rules () =
  let kp, ki, kd = Tuning.ziegler_nichols_pid ~ku:10.0 ~tu:0.5 in
  check_float 1e-12 "kp" 6.0 kp;
  check_float 1e-12 "ki" (6.0 /. 0.25) ki;
  check_float 1e-12 "kd" (6.0 *. 0.0625) kd

(* ---------- Metrics ---------- *)

let first_order_step k tau sp ts n =
  List.init n (fun i ->
      let t = float_of_int i *. ts in
      (t, k *. sp *. (1.0 -. exp (-.t /. tau))))

let test_step_info_first_order () =
  let traj = first_order_step 1.0 0.1 1.0 1e-3 2000 in
  let si = Metrics.step_info ~sp:1.0 traj in
  (* analytic 10-90 rise of a first order lag: tau * ln 9 *)
  check_float 3e-3 "rise time" (0.1 *. log 9.0) si.Metrics.rise_time;
  check_float 1e-6 "no overshoot" 0.0 si.Metrics.overshoot;
  check_float 5e-3 "settling at tau ln 50" (0.1 *. log 50.0) si.Metrics.settling_time;
  check_bool "sse small" true (si.Metrics.steady_state_error < 1e-3)

let test_step_info_overshoot () =
  (* synthetic damped oscillation peaking at 1.3 *)
  let traj =
    List.init 3000 (fun i ->
        let t = float_of_int i *. 1e-3 in
        (t, 1.0 -. (exp (-3.0 *. t) *. cos (10.0 *. t) *. 1.0)
            +. (0.0 *. t)))
  in
  let si = Metrics.step_info ~sp:1.0 traj in
  check_bool "overshoot detected" true (si.Metrics.overshoot > 0.1);
  check_bool "peak after rise" true (si.Metrics.peak_time > 0.0)

let test_integral_criteria () =
  (* constant error of 0.5 over 2 s: IAE 1.0, ISE 0.5, ITAE 1.0 *)
  let traj = List.init 2001 (fun i -> (float_of_int i *. 1e-3, 0.5)) in
  let sp _ = 1.0 in
  check_float 1e-6 "iae" 1.0 (Metrics.iae ~sp traj);
  check_float 1e-6 "ise" 0.5 (Metrics.ise ~sp traj);
  check_float 1e-3 "itae" 1.0 (Metrics.itae ~sp traj)

let test_max_deviation_and_divergence () =
  let a = [ (0.0, 1.0); (1.0, 2.0) ] and b = [ (0.0, 1.5); (1.0, 1.0) ] in
  check_float 1e-12 "max dev" 1.0 (Metrics.max_deviation a b);
  check_bool "no divergence" false (Metrics.diverged a);
  check_bool "divergence" true (Metrics.diverged [ (0.0, 1e9) ]);
  check_bool "nan divergence" true (Metrics.diverged [ (0.0, nan) ])

(* ---------- Frequency response ---------- *)

let test_freqresp_first_order () =
  (* ZOH-discretised k/(tau s + 1): at w = 1/tau the continuous magnitude
     is k/sqrt(2); the discrete one matches closely well below Nyquist *)
  let k = 2.0 and tau = 0.05 and ts = 1e-3 in
  let tf = Ztransfer.zoh_first_order ~k ~tau ~ts in
  let w = 1.0 /. tau in
  Alcotest.(check (float 0.05)) "corner magnitude"
    (20.0 *. log10 (k /. sqrt 2.0))
    (Freqresp.magnitude_db tf ~ts ~w);
  Alcotest.(check (float 1.0)) "corner phase" (-45.0) (Freqresp.phase_deg tf ~ts ~w);
  (* dc-ish magnitude *)
  Alcotest.(check (float 0.01)) "low-frequency gain" (20.0 *. log10 k)
    (Freqresp.magnitude_db tf ~ts ~w:0.1)

let test_freqresp_validation () =
  let tf = Ztransfer.create ~num:[| 1.0 |] ~den:[| 1.0; -0.5 |] in
  match Freqresp.eval tf ~ts:1e-3 ~w:(Float.pi /. 1e-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Nyquist accepted"

let test_bode_shape () =
  let tf = Ztransfer.zoh_first_order ~k:1.0 ~tau:0.05 ~ts:1e-3 in
  let pts = Freqresp.bode tf ~ts:1e-3 ~n:50 () in
  Alcotest.(check int) "points" 50 (List.length pts);
  (* magnitude decreases monotonically for a first-order lag *)
  let mags = List.map (fun (_, m, _) -> m) pts in
  check_bool "monotone decreasing" true
    (List.for_all2 (fun a b -> a >= b -. 1e-9) (List.filteri (fun i _ -> i < 49) mags)
       (List.tl mags))

let test_margins_of_servo_loop () =
  (* open loop = PI * ZOH plant of the servo speed loop *)
  let motor = Dc_motor.default in
  let k_dc = motor.Dc_motor.kt /. ((motor.Dc_motor.ra *. motor.Dc_motor.b) +. (motor.Dc_motor.ke *. motor.Dc_motor.kt)) in
  let tau_m = Dc_motor.mechanical_time_constant motor in
  let ts = 1e-3 in
  let plant = Ztransfer.zoh_first_order ~k:k_dc ~tau:tau_m ~ts in
  let kp, ki = Tuning.pi_for_dc_motor_speed motor ~closed_loop_tau:0.02 () in
  let pi_tf =
    Ztransfer.create ~num:[| kp +. (ki *. ts); -.kp |] ~den:[| 1.0; -1.0 |]
  in
  let conv a b =
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb - 1) 0.0 in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        r.(i + j) <- r.(i + j) +. (a.(i) *. b.(j))
      done
    done;
    r
  in
  let loop =
    Ztransfer.create
      ~num:(conv (Ztransfer.num pi_tf) (Ztransfer.num plant))
      ~den:(conv (Ztransfer.den pi_tf) (Ztransfer.den plant))
  in
  let m = Freqresp.margins ~loop ~ts in
  (* IMC tuning with lambda = 20 ms: crossover near 1/lambda = 50 rad/s,
     healthy phase margin, large gain margin *)
  check_bool "crossover near 50 rad/s" true
    (m.Freqresp.gain_crossover > 30.0 && m.Freqresp.gain_crossover < 70.0);
  check_bool "phase margin healthy" true
    (m.Freqresp.phase_margin_deg > 60.0 && m.Freqresp.phase_margin_deg < 100.0);
  check_bool "gain margin large" true (m.Freqresp.gain_margin_db > 20.0)

let test_margins_detect_fragile_loop () =
  (* crank the gain up 50x: the margins must shrink drastically *)
  let ts = 1e-3 in
  let plant = Ztransfer.zoh_first_order ~k:19.8 ~tau:0.012 ~ts in
  let loop_of kp =
    let pi_tf = Ztransfer.create ~num:[| kp; -.kp *. 0.98 |] ~den:[| 1.0; -1.0 |] in
    let conv a b =
      let la = Array.length a and lb = Array.length b in
      let r = Array.make (la + lb - 1) 0.0 in
      for i = 0 to la - 1 do
        for j = 0 to lb - 1 do
          r.(i + j) <- r.(i + j) +. (a.(i) *. b.(j))
        done
      done;
      r
    in
    Ztransfer.create
      ~num:(conv (Ztransfer.num pi_tf) (Ztransfer.num plant))
      ~den:(conv (Ztransfer.den pi_tf) (Ztransfer.den plant))
  in
  let tame = Freqresp.margins ~loop:(loop_of 0.03) ~ts in
  let hot = Freqresp.margins ~loop:(loop_of 0.3) ~ts in
  check_bool "hot loop loses phase margin" true
    (hot.Freqresp.phase_margin_deg < tame.Freqresp.phase_margin_deg -. 10.0);
  (* at 50x the crossover leaves the sampled band entirely: no margin to
     report, which margins encodes as infinity with nan crossovers *)
  let wild = Freqresp.margins ~loop:(loop_of 1.5) ~ts in
  check_bool "no crossover at wild gain" true (Float.is_nan wild.Freqresp.gain_crossover)

let suite =
  [
    Alcotest.test_case "freqresp first order" `Quick test_freqresp_first_order;
    Alcotest.test_case "freqresp validation" `Quick test_freqresp_validation;
    Alcotest.test_case "bode shape" `Quick test_bode_shape;
    Alcotest.test_case "servo loop margins" `Quick test_margins_of_servo_loop;
    Alcotest.test_case "fragile loop margins" `Quick test_margins_detect_fragile_loop;
    Alcotest.test_case "pid proportional" `Quick test_pid_proportional_only;
    Alcotest.test_case "pid integral" `Quick test_pid_integral_accumulates;
    Alcotest.test_case "pid anti-windup" `Quick test_pid_saturation_and_antiwindup;
    Alcotest.test_case "pid derivative kick" `Quick test_pid_derivative_kick;
    Alcotest.test_case "pid derivative filter" `Quick test_pid_derivative_filter;
    Alcotest.test_case "pid reset" `Quick test_pid_reset;
    Alcotest.test_case "fixpid tracks float" `Quick test_fixpid_matches_float_small_signals;
    Alcotest.test_case "fixpid saturation" `Quick test_fixpid_saturates_cleanly;
    Alcotest.test_case "fixpid quantised gains" `Quick test_fixpid_quantized_gains_close;
    Alcotest.test_case "tf dc gain" `Quick test_tf_dc_gain;
    Alcotest.test_case "tf first order" `Quick test_tf_first_order_response;
    Alcotest.test_case "tf feedthrough" `Quick test_tf_feedthrough;
    Alcotest.test_case "tf normalisation" `Quick test_tf_normalisation;
    Alcotest.test_case "tf invalid" `Quick test_tf_invalid;
    Alcotest.test_case "tustin first order" `Quick test_tustin_first_order;
    Alcotest.test_case "tustin integrator" `Quick test_tustin_integrator;
    Alcotest.test_case "zoh first order" `Quick test_zoh_first_order;
    Alcotest.test_case "jury simple" `Quick test_jury_simple;
    Alcotest.test_case "jury 2nd order" `Quick test_jury_second_order;
    Alcotest.test_case "jury vs roots" `Quick test_jury_vs_roots_oracle;
    Alcotest.test_case "closed-loop stability" `Quick test_closed_loop_stability;
    Alcotest.test_case "imc pi" `Quick test_imc_pi_design;
    Alcotest.test_case "ultimate gain" `Quick test_ultimate_gain;
    Alcotest.test_case "ziegler-nichols" `Quick test_zn_rules;
    Alcotest.test_case "step info first order" `Quick test_step_info_first_order;
    Alcotest.test_case "step info overshoot" `Quick test_step_info_overshoot;
    Alcotest.test_case "integral criteria" `Quick test_integral_criteria;
    Alcotest.test_case "deviation/divergence" `Quick test_max_deviation_and_divergence;
  ]
