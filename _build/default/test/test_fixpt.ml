(* Unit and property tests for the fixed-point substrate. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_format_ranges () =
  check_int "q15 max raw" 32767 (Qformat.max_raw Qformat.q15);
  check_int "q15 min raw" (-32768) (Qformat.min_raw Qformat.q15);
  check_float "q15 resolution" (1.0 /. 32768.0) (Qformat.resolution Qformat.q15);
  check_float "q15 max value" (32767.0 /. 32768.0) (Qformat.max_value Qformat.q15);
  check_int "ufix12 max" 4095 (Qformat.max_raw (Qformat.ufix 12 0));
  check_int "ufix12 min" 0 (Qformat.min_raw (Qformat.ufix 12 0))

let test_format_invalid () =
  Alcotest.check_raises "word_bits too large" (Invalid_argument "Qformat.make: word_bits must be in 1..62")
    (fun () -> ignore (Qformat.make ~signed:false ~word_bits:63 ~frac_bits:0));
  Alcotest.check_raises "negative frac" (Invalid_argument "Qformat.make: frac_bits must be >= 0")
    (fun () -> ignore (Qformat.make ~signed:false ~word_bits:8 ~frac_bits:(-1)))

let test_of_float_roundtrip () =
  let fx = Fixed.of_float Qformat.q15 0.5 in
  check_int "0.5 raw" 16384 (Fixed.raw fx);
  check_float "0.5 back" 0.5 (Fixed.to_float fx);
  let fx = Fixed.of_float Qformat.q15 (-0.25) in
  check_int "-0.25 raw" (-8192) (Fixed.raw fx)

let test_saturation () =
  let fx = Fixed.of_float Qformat.q15 1.5 in
  check_int "saturated to max" 32767 (Fixed.raw fx);
  check_bool "is_saturated" true (Fixed.is_saturated fx);
  let fx = Fixed.of_float Qformat.q15 (-3.0) in
  check_int "saturated to min" (-32768) (Fixed.raw fx)

let test_wrap () =
  (* 1.0 in Q15 wraps to -1.0 under two's-complement truncation. *)
  let fx = Fixed.of_float ~ovf:Fixed.Wrap Qformat.q15 1.0 in
  check_int "wrap(1.0)" (-32768) (Fixed.raw fx);
  let a = Fixed.of_float Qformat.q15 0.75 in
  let s = Fixed.add ~ovf:Fixed.Wrap a a in
  check_float "0.75+0.75 wraps negative" (-0.5) (Fixed.to_float s)

let test_add_sub () =
  let q = Qformat.q15 in
  let a = Fixed.of_float q 0.25 and b = Fixed.of_float q 0.5 in
  check_float "add" 0.75 (Fixed.to_float (Fixed.add a b));
  check_float "sub" (-0.25) (Fixed.to_float (Fixed.sub a b));
  check_float "neg" (-0.25) (Fixed.to_float (Fixed.neg a));
  (* saturating add at the top of the range *)
  let m = Fixed.create q (Qformat.max_raw q) in
  check_int "sat add" (Qformat.max_raw q) (Fixed.raw (Fixed.add m b))

let test_mul () =
  let q = Qformat.q15 in
  let a = Fixed.of_float q 0.5 and b = Fixed.of_float q 0.5 in
  check_float "0.5*0.5" 0.25 (Fixed.to_float (Fixed.mul a b));
  (* Q15*Q15 -> Q30 kept in a 32-bit accumulator *)
  let acc = Qformat.sfix 32 30 in
  let p = Fixed.mul_to acc a b in
  check_float "mac result" 0.25 (Fixed.to_float p);
  check_int "mac raw" (16384 * 16384) (Fixed.raw p)

let test_div () =
  let q = Qformat.q15 in
  let a = Fixed.of_float q 0.25 and b = Fixed.of_float q 0.5 in
  check_float "0.25/0.5" 0.5 (Fixed.to_float (Fixed.div a b));
  Alcotest.check_raises "div by zero" (Fixed.Overflow "Fixed.div: division by zero")
    (fun () -> ignore (Fixed.div a (Fixed.zero q)))

let test_convert () =
  let a = Fixed.of_float Qformat.q15 0.123456 in
  let b = Fixed.convert Qformat.q31 a in
  check_float "q15->q31 lossless" (Fixed.to_float a) (Fixed.to_float b);
  let c = Fixed.convert Qformat.q7 a in
  Alcotest.(check bool) "q15->q7 error bounded" true
    (Float.abs (Fixed.to_float c -. Fixed.to_float a) <= Qformat.resolution Qformat.q7 /. 2.0 +. 1e-12)

let test_shift_scale () =
  let q = Qformat.sfix 16 8 in
  let a = Fixed.of_float q 1.5 in
  check_float "shift left" 3.0 (Fixed.to_float (Fixed.shift a 1));
  check_float "shift right" 0.75 (Fixed.to_float (Fixed.shift a (-1)));
  check_float "scale 3x" 4.5 (Fixed.to_float (Fixed.scale_by_int a 3))

let test_compare_order () =
  let a = Fixed.of_float Qformat.q15 0.5 in
  let b = Fixed.of_float Qformat.q7 0.25 in
  check_bool "cross-format compare" true (Fixed.compare a b > 0);
  check_float "min" 0.25 (Fixed.to_float (Fixed.min a b));
  check_float "max" 0.5 (Fixed.to_float (Fixed.max a b))

let test_one () =
  check_float "q15 one saturates" (32767.0 /. 32768.0)
    (Fixed.to_float (Fixed.one Qformat.q15));
  let u = Qformat.ufix 8 4 in
  check_float "ufix one exact" 1.0 (Fixed.to_float (Fixed.one u))

let test_rounding_modes () =
  let q = Qformat.sfix 16 0 in
  let half = Fixed.of_float (Qformat.sfix 16 1) 0.5 in
  check_int "nearest rounds up" 1
    (Fixed.raw (Fixed.convert ~round:Fixed.Nearest q half));
  check_int "floor rounds down" 0
    (Fixed.raw (Fixed.convert ~round:Fixed.Floor q half));
  let neg_half = Fixed.of_float (Qformat.sfix 16 1) (-0.5) in
  check_int "floor of -0.5" (-1)
    (Fixed.raw (Fixed.convert ~round:Fixed.Floor q neg_half));
  check_int "zero of -0.5" 0
    (Fixed.raw (Fixed.convert ~round:Fixed.Zero q neg_half))

(* Property tests *)

let fmt_gen =
  QCheck2.Gen.(
    let* signed = bool in
    let* w = int_range (if signed then 2 else 1) 30 in
    let* f = int_range 0 w in
    return (Qformat.make ~signed ~word_bits:w ~frac_bits:f))

let fixed_gen =
  QCheck2.Gen.(
    let* fmt = fmt_gen in
    let* raw = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
    return (Fixed.create fmt raw))

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_float/to_float roundtrip is identity on representables"
    ~count:500 fixed_gen (fun fx ->
      let fx' = Fixed.of_float (Fixed.fmt fx) (Fixed.to_float fx) in
      Fixed.raw fx' = Fixed.raw fx)

let prop_quantization_error =
  QCheck2.Test.make ~name:"quantisation error bounded by half resolution"
    ~count:500
    QCheck2.Gen.(pair fmt_gen (float_range (-100.0) 100.0))
    (fun (fmt, x) ->
      let clamped = Float.min (Qformat.max_value fmt) (Float.max (Qformat.min_value fmt) x) in
      let fx = Fixed.of_float fmt x in
      Float.abs (Fixed.to_float fx -. clamped) <= (Qformat.resolution fmt /. 2.0) +. 1e-12)

let prop_add_comm =
  QCheck2.Test.make ~name:"saturating add commutes" ~count:500
    QCheck2.Gen.(
      let* fmt = fmt_gen in
      let* r1 = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
      let* r2 = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
      return (Fixed.create fmt r1, Fixed.create fmt r2))
    (fun (a, b) -> Fixed.raw (Fixed.add a b) = Fixed.raw (Fixed.add b a))

let prop_mul_range =
  QCheck2.Test.make ~name:"multiply of in-range q15 values stays in range"
    ~count:500
    QCheck2.Gen.(pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0))
    (fun (x, y) ->
      let q = Qformat.q15 in
      let p = Fixed.mul (Fixed.of_float q x) (Fixed.of_float q y) in
      Fixed.raw p >= Qformat.min_raw q && Fixed.raw p <= Qformat.max_raw q)

let prop_convert_widening_exact =
  QCheck2.Test.make ~name:"widening conversion is exact" ~count:500 fixed_gen
    (fun fx ->
      let f = Fixed.fmt fx in
      let wide =
        Qformat.make ~signed:true
          ~word_bits:(Stdlib.min 62 (f.Qformat.word_bits + 8))
          ~frac_bits:(f.Qformat.frac_bits + 4)
      in
      let w = Fixed.convert wide fx in
      Float.abs (Fixed.to_float w -. Fixed.to_float fx) < 1e-15)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_quantization_error; prop_add_comm; prop_mul_range;
      prop_convert_widening_exact ]

let suite =
  [
    Alcotest.test_case "format ranges" `Quick test_format_ranges;
    Alcotest.test_case "format validation" `Quick test_format_invalid;
    Alcotest.test_case "of_float roundtrip" `Quick test_of_float_roundtrip;
    Alcotest.test_case "saturation" `Quick test_saturation;
    Alcotest.test_case "wrapping" `Quick test_wrap;
    Alcotest.test_case "add/sub/neg" `Quick test_add_sub;
    Alcotest.test_case "multiply" `Quick test_mul;
    Alcotest.test_case "divide" `Quick test_div;
    Alcotest.test_case "convert" `Quick test_convert;
    Alcotest.test_case "shift/scale" `Quick test_shift_scale;
    Alcotest.test_case "compare across formats" `Quick test_compare_order;
    Alcotest.test_case "one" `Quick test_one;
    Alcotest.test_case "rounding modes" `Quick test_rounding_modes;
  ]
  @ qsuite
