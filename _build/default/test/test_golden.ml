(* Golden structural test of the generated servo application: the
   interface of the generated code (struct layouts and entry points) is a
   contract; unintended churn here would break hand-written integration
   code downstream. Float formatting and statement bodies are left out on
   purpose — behaviour is covered by the gcc execution tests. *)

let signature_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0
         && (String.length l > 5 && String.sub l 0 5 = "void "
            || (String.length l > 8 && String.sub l 0 8 = "typedef ")
            || (String.length l > 2 && String.sub l 0 2 = "} ")
            || (String.length l >= 2 && l.[String.length l - 1] = ';'
                && String.contains l ' ' && not (String.contains l '=')
                && not (String.contains l '('))))
  |> List.map String.trim

let expected_header =
  [
    "typedef struct {";
    "double theta_in_o0;";
    "double theta_smp_o0;";
    "int32_t qd_o0;";
    "double speed_o0;";
    "double sp_o0;";
    "double pid_o0;";
    "double volt2duty_o0;";
    "double duty_sat_o0;";
    "double btn_in_o0;";
    "uint8_t sw1_o0;";
    "double mode_chart_o0;";
    "double manual_duty_o0;";
    "double mode_switch_o0;";
    "double duty2ratio_o0;";
    "uint16_t ratio_u16_o0;";
    "double pwm_o0;";
    "double duty_out_o0;";
    "} servo_B_t;";
    "typedef struct {";
    "int32_t speed_prev;";
    "double pid_integ;";
    "double pid_e_prev;";
    "double pid_d_prev;";
    "uint8_t mode_chart_auto;";
    "uint8_t mode_chart_prev;";
    "} servo_DW_t;";
    "typedef struct {";
    "double in0;";
    "double in1;";
    "} servo_U_t;";
    "typedef struct {";
    "double out0;";
    "} servo_Y_t;";
    "void servo_initialize(void);";
    "void servo_step(void);";
  ]

let test_header_interface_stable () =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let got = signature_lines (C_print.print_unit a.Target.model_h) in
  Alcotest.(check (list string)) "servo.h interface" expected_header got

let test_entry_points_stable () =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let c = C_print.print_unit a.Target.main_c in
  List.iter
    (fun sig_ ->
      Alcotest.(check bool) ("has " ^ sig_) true (Astring_contains.contains c sig_))
    [
      "void TI1_OnInterrupt(void) {";
      "static void background_task(void) {";
      "int main(void) {";
    ]

let test_determinism () =
  (* two generations of the same model must be byte-identical *)
  let gen () =
    let b = Servo_system.build () in
    let comp = Compile.compile b.Servo_system.controller in
    let a = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
    C_print.print_unit a.Target.model_c
  in
  Alcotest.(check bool) "deterministic codegen" true (gen () = gen ())

let suite =
  [
    Alcotest.test_case "header interface golden" `Quick test_header_interface_stable;
    Alcotest.test_case "entry points" `Quick test_entry_points_stable;
    Alcotest.test_case "deterministic" `Quick test_determinism;
  ]
