(* HIL stage: the deployment execution model against the virtual
   peripherals, no communication redirection. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_hil ?(periods = 600) ?preemptive ?background_load ?button cfg =
  let b = Servo_system.build ~config:cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let arts = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let controller = Sim.create comp in
  ( b,
    Hil_cosim.servo_run ?preemptive ?background_load ?button
      ~built_mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule ~controller
      ~motor:cfg.Servo_system.motor ~load:cfg.Servo_system.load
      ~encoder:(Encoder.create ~lines_per_rev:cfg.Servo_system.encoder_lines ())
      ~periods () )

let speed_of trace =
  List.filter_map
    (fun (t, obs) -> Option.map (fun w -> (t, w)) (List.assoc_opt "speed" obs))
    trace

let test_hil_converges_at_1khz () =
  (* HIL has no RS-232 bottleneck: the paper's 1 kHz loop runs *)
  let _, r = run_hil Servo_system.default_config ~periods:1100 in
  match List.rev (speed_of r.Hil_cosim.trace) with
  | (_, w) :: _ -> Alcotest.(check (float 5.0)) "tracks 150" 150.0 w
  | [] -> Alcotest.fail "no trace"

let test_hil_profile () =
  let _, r = run_hil Servo_system.default_config ~periods:500 in
  let p = r.Hil_cosim.profile in
  check_int "no overruns" 0 p.Hil_cosim.overruns;
  check_bool "exec ~46 us" true
    (p.Hil_cosim.controller_exec.Stats.mean > 20e-6
     && p.Hil_cosim.controller_exec.Stats.mean < 100e-6);
  check_bool "release latency ~0 when idle" true
    (p.Hil_cosim.release_latency.Stats.p95 < 1e-6);
  check_bool "utilization a few %" true
    (p.Hil_cosim.cpu_utilization > 0.01 && p.Hil_cosim.cpu_utilization < 0.2);
  check_bool "stack tracked" true (p.Hil_cosim.max_stack_bytes > 96)

let test_hil_background_load_jitter () =
  (* a competing ISR delays the non-preemptive control step *)
  let _, quiet = run_hil Servo_system.default_config ~periods:400 in
  let _, loaded =
    run_hil Servo_system.default_config ~periods:400 ~background_load:0.5
  in
  check_bool "loaded jitter larger" true
    (loaded.Hil_cosim.profile.Hil_cosim.release_jitter
     > quiet.Hil_cosim.profile.Hil_cosim.release_jitter +. 1e-6);
  (* but the loop still works *)
  match List.rev (speed_of loaded.Hil_cosim.trace) with
  | (_, w) :: _ -> check_bool "still regulates" true (Float.abs (w -. 50.0) < 10.0)
  | [] -> Alcotest.fail "no trace"

let test_hil_button_switches_mode () =
  let _, r =
    run_hil
      { Servo_system.default_config with
        Servo_system.setpoints = [ (0.0, 100.0) ];
        load = Load_profile.No_load }
      ~periods:1000
      ~button:(fun t -> t > 0.5)
  in
  let speed = speed_of r.Hil_cosim.trace in
  let final = match List.rev speed with (_, w) :: _ -> w | [] -> nan in
  let open_loop =
    Dc_motor.steady_state_speed Dc_motor.default ~u:(0.3 *. 24.0) ~tau_load:0.0
  in
  Alcotest.(check (float 10.0)) "manual mode after press" open_loop final

let test_hil_vs_mil_fidelity () =
  let b, r = run_hil Servo_system.default_config ~periods:1000 in
  let mil_speed, _ = Servo_system.mil_run b ~t_end:1.0 in
  let hil_speed = speed_of r.Hil_cosim.trace in
  let mil_at t =
    List.fold_left
      (fun best (ti, w) ->
        match best with
        | Some (tb, _) when Float.abs (ti -. t) >= Float.abs (tb -. t) -> best
        | _ -> Some (ti, w))
      None mil_speed
    |> Option.map snd
  in
  let dev =
    List.fold_left
      (fun acc (t, w) ->
        match mil_at t with Some wm -> Float.max acc (Float.abs (w -. wm)) | None -> acc)
      0.0
      (List.filter (fun (t, _) -> t > 0.05) hil_speed)
  in
  check_bool "HIL within 6 rad/s of MIL" true (dev < 6.0)

let test_hil_watchdog () =
  (* serviced every period: a 3-period timeout never bites *)
  let _, ok = run_hil Servo_system.default_config ~periods:300 in
  ignore ok;
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.controller in
  let arts = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let run watchdog =
    let controller = Sim.create (Compile.compile b.Servo_system.controller) in
    ignore arts;
    Hil_cosim.servo_run ~watchdog
      ~built_mcu:Servo_system.default_config.Servo_system.mcu
      ~schedule:arts.Target.schedule ~controller
      ~motor:Servo_system.default_config.Servo_system.motor
      ~load:Servo_system.default_config.Servo_system.load
      ~encoder:(Encoder.create ()) ~periods:200 ()
  in
  let healthy = run 3e-3 in
  check_int "no bites when serviced" 0
    healthy.Hil_cosim.profile.Hil_cosim.watchdog_bites;
  (* a timeout shorter than the control period must bite repeatedly *)
  let starved = run 0.4e-3 in
  check_bool "short timeout bites" true
    (starved.Hil_cosim.profile.Hil_cosim.watchdog_bites > 100)

let suite =
  [
    Alcotest.test_case "watchdog" `Quick test_hil_watchdog;
    Alcotest.test_case "1 kHz loop runs (no comm bottleneck)" `Quick
      test_hil_converges_at_1khz;
    Alcotest.test_case "profile" `Quick test_hil_profile;
    Alcotest.test_case "background load jitter" `Quick test_hil_background_load_jitter;
    Alcotest.test_case "button mode switch" `Quick test_hil_button_switches_mode;
    Alcotest.test_case "HIL vs MIL fidelity" `Quick test_hil_vs_mil_fidelity;
  ]
