(* Virtual MCU: discrete-event machine, interrupt dispatch, peripherals. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let mk () = Machine.create Mcu_db.mc56f8367

let job ?(stack = 16) name cycles action =
  { Machine.jname = name; cycles; action; stack_bytes = stack }

let test_schedule_order () =
  let m = mk () in
  let log = ref [] in
  Machine.schedule m ~after:100 (fun () -> log := "b" :: !log);
  Machine.schedule m ~after:50 (fun () -> log := "a" :: !log);
  Machine.schedule m ~after:150 (fun () -> log := "c" :: !log);
  Machine.advance m ~cycles:200;
  Alcotest.(check (list string)) "event order" [ "a"; "b"; "c" ] (List.rev !log);
  check_int "time advanced" 200 (Machine.now_cycles m)

let test_simultaneous_events_fifo () =
  let m = mk () in
  let log = ref [] in
  Machine.schedule m ~after:10 (fun () -> log := 1 :: !log);
  Machine.schedule m ~after:10 (fun () -> log := 2 :: !log);
  Machine.advance m ~cycles:20;
  Alcotest.(check (list int)) "fifo at same cycle" [ 1; 2 ] (List.rev !log)

let test_irq_dispatch_and_latency () =
  let m = mk () in
  let done_at = ref 0 in
  let irq =
    Machine.register_irq m ~name:"t" ~prio:1 ~handler:(fun () ->
        job "work" 100 (fun () -> done_at := Machine.now_cycles m))
  in
  Machine.schedule m ~after:50 (fun () -> Machine.raise_irq m irq);
  Machine.advance m ~cycles:1000;
  let t = Machine.traits m in
  check_int "completion includes entry+exit latency"
    (50 + t.Mcu_db.irq_latency_cycles + 100 + t.Mcu_db.irq_exit_cycles)
    !done_at;
  let stats = Machine.stats_of m irq in
  check_int "one dispatch" 1 stats.Machine.dispatches;
  check_float 1e-9 "zero response delay when idle" 0.0
    (List.hd stats.Machine.response_cycles)

let test_priority_order () =
  let m = mk () in
  let log = ref [] in
  let lo =
    Machine.register_irq m ~name:"lo" ~prio:5 ~handler:(fun () ->
        job "lo" 10 (fun () -> log := "lo" :: !log))
  in
  let hi =
    Machine.register_irq m ~name:"hi" ~prio:1 ~handler:(fun () ->
        job "hi" 10 (fun () -> log := "hi" :: !log))
  in
  (* raise both while the CPU is busy with a long job *)
  let blocker =
    Machine.register_irq m ~name:"blk" ~prio:9 ~handler:(fun () ->
        job "blk" 500 (fun () -> log := "blk" :: !log))
  in
  Machine.schedule m ~after:1 (fun () -> Machine.raise_irq m blocker);
  Machine.schedule m ~after:10 (fun () ->
      Machine.raise_irq m lo;
      Machine.raise_irq m hi);
  Machine.advance m ~cycles:2000;
  Alcotest.(check (list string)) "priority after blocker" [ "blk"; "hi"; "lo" ]
    (List.rev !log)

let test_nonpreemptive_blocks_high_prio () =
  let m = Machine.create ~preemptive:false Mcu_db.mc56f8367 in
  let hi_start = ref 0 in
  let blocker =
    Machine.register_irq m ~name:"blk" ~prio:9 ~handler:(fun () ->
        job "blk" 1000 (fun () -> ()))
  in
  let hi =
    Machine.register_irq m ~name:"hi" ~prio:1 ~handler:(fun () ->
        job "hi" 10 (fun () -> hi_start := Machine.now_cycles m))
  in
  Machine.schedule m ~after:0 (fun () -> Machine.raise_irq m blocker);
  Machine.schedule m ~after:100 (fun () -> Machine.raise_irq m hi);
  Machine.advance m ~cycles:3000;
  let stats = Machine.stats_of m hi in
  (* the high-priority ISR had to wait for the blocker to finish *)
  check_bool "blocked > 800 cycles" true (List.hd stats.Machine.response_cycles > 800.0)

let test_preemptive_interrupts_low_prio () =
  let m = Machine.create ~preemptive:true Mcu_db.mc56f8367 in
  let order = ref [] in
  let blocker =
    Machine.register_irq m ~name:"blk" ~prio:9 ~handler:(fun () ->
        job "blk" 1000 (fun () -> order := "blk" :: !order))
  in
  let hi =
    Machine.register_irq m ~name:"hi" ~prio:1 ~handler:(fun () ->
        job "hi" 10 (fun () -> order := "hi" :: !order))
  in
  Machine.schedule m ~after:0 (fun () -> Machine.raise_irq m blocker);
  Machine.schedule m ~after:100 (fun () -> Machine.raise_irq m hi);
  Machine.advance m ~cycles:3000;
  Alcotest.(check (list string)) "high finishes first" [ "hi"; "blk" ]
    (List.rev !order);
  let stats = Machine.stats_of m hi in
  check_bool "response is just the latency" true
    (List.hd stats.Machine.response_cycles < 5.0)

let test_overrun_counted () =
  let m = mk () in
  let irq =
    Machine.register_irq m ~name:"x" ~prio:1 ~handler:(fun () -> job "x" 10 (fun () -> ()))
  in
  (* raise twice without giving the CPU a chance to dispatch *)
  Machine.schedule m ~after:5 (fun () ->
      Machine.raise_irq m irq;
      Machine.raise_irq m irq);
  Machine.advance m ~cycles:100;
  check_int "overrun" 1 (Machine.stats_of m irq).Machine.overruns

let test_utilization_and_stack () =
  let m = mk () in
  let irq =
    Machine.register_irq m ~name:"x" ~prio:1 ~handler:(fun () ->
        job ~stack:100 "x" 480 (fun () -> ()))
  in
  Machine.schedule m ~after:0 (fun () -> Machine.raise_irq m irq);
  Machine.advance m ~cycles:1000;
  check_bool "utilization ~50%" true
    (Machine.utilization m > 0.45 && Machine.utilization m < 0.55);
  check_int "stack watermark" (64 + 100) (Machine.max_stack_bytes m)

let test_disabled_irq_not_dispatched () =
  let m = mk () in
  let ran = ref false in
  let irq =
    Machine.register_irq m ~name:"x" ~prio:1 ~handler:(fun () ->
        job "x" 10 (fun () -> ran := true))
  in
  Machine.set_irq_enabled m irq false;
  Machine.schedule m ~after:5 (fun () -> Machine.raise_irq m irq);
  Machine.advance m ~cycles:100;
  check_bool "not run while disabled" false !ran;
  (* enabling later releases the pending interrupt *)
  Machine.set_irq_enabled m irq true;
  Machine.advance m ~cycles:100;
  check_bool "runs after enable" true !ran

(* ---------- peripherals ---------- *)

let test_timer_periph () =
  let m = mk () in
  let t = Timer_periph.create m ~channel:0 in
  Timer_periph.configure t ~prescaler:4 ~modulo:1500;
  check_int "period cycles" 6000 (Timer_periph.period_cycles t);
  check_float 1e-12 "period seconds" 1e-4 (Timer_periph.period_seconds t);
  let ticks = ref 0 in
  Timer_periph.on_overflow t (fun () -> incr ticks);
  Timer_periph.start t;
  Machine.advance m ~cycles:60000;
  check_int "10 ticks in 1 ms" 10 !ticks;
  Timer_periph.stop t;
  Machine.advance m ~cycles:60000;
  check_int "no ticks when stopped" 10 !ticks

let test_timer_validation () =
  let m = mk () in
  let t = Timer_periph.create m ~channel:0 in
  (match Timer_periph.configure t ~prescaler:3 ~modulo:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad prescaler accepted");
  match Timer_periph.configure t ~prescaler:1 ~modulo:100000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized modulo accepted"

let test_adc_conversion () =
  let m = mk () in
  let adc = Adc_periph.create m ~resolution:12 () in
  Adc_periph.connect_input adc ~channel:2 (fun () -> 1.65);
  let eoc = ref 0 in
  Adc_periph.on_end_of_conversion adc (fun () -> incr eoc);
  Adc_periph.start_conversion adc ~channel:2;
  check_bool "busy during conversion" true (Adc_periph.busy adc);
  Machine.advance m ~cycles:200;
  check_int "eoc fired" 1 !eoc;
  check_bool "not busy after" false (Adc_periph.busy adc);
  (* 1.65 V of 3.3 V full scale at 12 bits = mid code *)
  check_int "mid code" 2048 (Adc_periph.read_raw adc);
  check_int "channel" 2 (Adc_periph.read_channel adc)

let test_adc_quantization_clamp () =
  let m = mk () in
  let adc = Adc_periph.create m ~resolution:12 () in
  check_int "over range clamps" 4095 (Adc_periph.quantize adc 5.0);
  check_int "under range clamps" 0 (Adc_periph.quantize adc (-1.0));
  check_float 1e-9 "code to volts roundtrip" 3.3 (Adc_periph.code_to_volts adc 4095)

let test_adc_busy_drop () =
  let m = mk () in
  let adc = Adc_periph.create m ~resolution:12 () in
  Adc_periph.start_conversion adc ~channel:0;
  Adc_periph.start_conversion adc ~channel:1;
  check_int "second start dropped" 1 (Adc_periph.dropped_starts adc);
  ignore m

let test_adc_resolution_validation () =
  let m = mk () in
  match Adc_periph.create m ~resolution:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "56F8367 has no 10-bit mode"

let test_pwm () =
  let m = mk () in
  let pwm = Pwm_periph.create m ~channel:0 () in
  Pwm_periph.set_frequency pwm ~hz:20000.0;
  check_int "period counts at 60 MHz" 3000 (Pwm_periph.period_counts pwm);
  Pwm_periph.set_ratio16 pwm 32768;
  check_float 1e-3 "half duty" 0.5 (Pwm_periph.duty_ratio pwm);
  Pwm_periph.set_ratio16 pwm 70000;
  check_float 1e-9 "ratio clamped" 1.0 (Pwm_periph.duty_ratio pwm);
  check_int "resolution bits" 11 (Pwm_periph.resolution_bits pwm)

let test_pwm_validation () =
  let m = mk () in
  let pwm = Pwm_periph.create m ~channel:0 () in
  match Pwm_periph.set_frequency pwm ~hz:100.0 with
  | exception Invalid_argument _ -> () (* 600000 counts > 15-bit counter *)
  | _ -> Alcotest.fail "unattainable PWM frequency accepted"

let test_qdec_wrap_diff () =
  let m = mk () in
  let qd = Qdec_periph.create m () in
  Qdec_periph.set_true_count qd 65530;
  let prev = Qdec_periph.read_position qd in
  Qdec_periph.set_true_count qd 65540;
  check_int "wrapped register" (65540 land 0xFFFF) (Qdec_periph.read_position qd);
  check_int "wrap-aware diff" 10 (Qdec_periph.diff qd ~prev);
  Qdec_periph.set_true_count qd 65500;
  check_int "negative diff" (-30) (Qdec_periph.diff qd ~prev)

let test_qdec_requires_hardware () =
  let m = Machine.create Mcu_db.mc9s12dp256 in
  match Qdec_periph.create m () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "HCS12 has no decoder"

let test_gpio () =
  let m = mk () in
  let g = Gpio_periph.create m in
  let pin_in = List.hd Mcu_db.mc56f8367.Mcu_db.pins in
  let pin_out = List.nth Mcu_db.mc56f8367.Mcu_db.pins 1 in
  Gpio_periph.configure g ~pin:pin_in Gpio_periph.Input;
  Gpio_periph.configure g ~pin:pin_out Gpio_periph.Output;
  let level = ref false in
  Gpio_periph.connect_input g ~pin:pin_in (fun () -> !level);
  check_bool "reads low" false (Gpio_periph.read g ~pin:pin_in);
  level := true;
  check_bool "reads high" true (Gpio_periph.read g ~pin:pin_in);
  let changes = ref 0 in
  Gpio_periph.on_change g ~pin:pin_out (fun _ -> incr changes);
  Gpio_periph.write g ~pin:pin_out true;
  Gpio_periph.write g ~pin:pin_out true;
  check_int "change fires once" 1 !changes;
  (match Gpio_periph.write g ~pin:pin_in true with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "write to input accepted");
  match Gpio_periph.configure g ~pin:pin_in Gpio_periph.Input with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double claim accepted"

let test_sci_timing () =
  let m = mk () in
  let sci = Sci_periph.create m ~baud:115200 () in
  (* 10 bits at 115200 baud on a 60 MHz clock *)
  check_int "byte cycles" (int_of_float (Float.round (10.0 /. 115200.0 *. 60e6)))
    (Sci_periph.byte_cycles sci);
  let sent = ref [] in
  Sci_periph.on_tx_byte sci (fun b -> sent := b :: !sent);
  ignore (Sci_periph.send_byte sci 0x41);
  ignore (Sci_periph.send_byte sci 0x42);
  check_bool "busy while shifting" true (Sci_periph.tx_busy sci);
  Machine.advance m ~cycles:(3 * Sci_periph.byte_cycles sci);
  Alcotest.(check (list int)) "bytes on the wire" [ 0x41; 0x42 ] (List.rev !sent);
  check_bool "idle after" false (Sci_periph.tx_busy sci)

let test_sci_rx_and_overrun () =
  let m = mk () in
  let sci = Sci_periph.create m ~baud:115200 () in
  let got = ref [] in
  Sci_periph.on_rx sci (fun b -> got := b :: !got);
  Sci_periph.deliver_byte sci 0x10;
  Machine.advance m ~cycles:(2 * Sci_periph.byte_cycles sci);
  Alcotest.(check (list int)) "received" [ 0x10 ] !got;
  check_int "read data" 0x10 (Sci_periph.read_data sci);
  (* two deliveries without reading in between -> overrun *)
  Sci_periph.deliver_byte sci 0x20;
  Machine.advance m ~cycles:(2 * Sci_periph.byte_cycles sci);
  Sci_periph.deliver_byte sci 0x30;
  Machine.advance m ~cycles:(2 * Sci_periph.byte_cycles sci);
  check_int "overrun counted" 1 (Sci_periph.rx_overruns sci)

let test_sci_fifo_overflow () =
  let m = mk () in
  let sci = Sci_periph.create m ~fifo_depth:2 ~baud:9600 () in
  ignore (Sci_periph.send_bytes sci [ 1; 2; 3; 4 ]);
  check_bool "lost bytes counted" true (Sci_periph.tx_lost sci >= 1);
  ignore m

let test_mcu_db_entries () =
  check_int "five parts" 5 (List.length Mcu_db.all);
  check_bool "find case-insensitive" true (Mcu_db.find "mpc5554" <> None);
  check_bool "unknown part" true (Mcu_db.find "AT91SAM7" = None);
  (* the PowerPC part has an FPU: the cost model must make doubles cheap *)
  let gain = Math_blocks.gain 2.0 in
  let ppc = Cost_model.cycles_of_block Mcu_db.mpc5554 gain Dtype.Double in
  let dsc = Cost_model.cycles_of_block Mcu_db.mc56f8367 gain Dtype.Double in
  check_bool "FPU double much cheaper" true (dsc > 5 * ppc)

let test_small_sibling_fits_servo () =
  (* the MC56F8323 still runs the full case study and fits its 8 KiB RAM *)
  let cfg = { Servo_system.default_config with Servo_system.mcu = Mcu_db.mc56f8323 } in
  let b = Servo_system.build ~config:cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  check_bool "fits RAM" true
    (a.Target.report.Target.est_ram_bytes < Mcu_db.mc56f8323.Mcu_db.ram_bytes);
  check_bool "no warnings" true (a.Target.report.Target.warnings = [])

let test_watchdog () =
  let m = mk () in
  let wd = Wdog_periph.create m ~timeout:1e-3 () in
  let resets = ref 0 in
  Wdog_periph.on_bite wd (fun () -> incr resets);
  Wdog_periph.enable wd;
  (* refreshed in time: no bite *)
  for _ = 1 to 5 do
    Machine.advance m ~cycles:(Wdog_periph.timeout_cycles wd / 2);
    Wdog_periph.refresh wd
  done;
  check_int "no bites while serviced" 0 (Wdog_periph.bites wd);
  (* starve it: bites accumulate and it re-arms *)
  Machine.advance m ~cycles:(3 * Wdog_periph.timeout_cycles wd);
  check_bool "bites when starved" true (Wdog_periph.bites wd >= 2);
  check_int "callback fired" (Wdog_periph.bites wd) !resets;
  (* disabled: silent *)
  Wdog_periph.disable wd;
  let before = Wdog_periph.bites wd in
  Machine.advance m ~cycles:(3 * Wdog_periph.timeout_cycles wd);
  check_int "quiet when disabled" before (Wdog_periph.bites wd)

let suite =
  [
    Alcotest.test_case "watchdog" `Quick test_watchdog;
    Alcotest.test_case "mcu database" `Quick test_mcu_db_entries;
    Alcotest.test_case "small sibling servo" `Quick test_small_sibling_fits_servo;
    Alcotest.test_case "event order" `Quick test_schedule_order;
    Alcotest.test_case "simultaneous fifo" `Quick test_simultaneous_events_fifo;
    Alcotest.test_case "irq dispatch latency" `Quick test_irq_dispatch_and_latency;
    Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "non-preemptive blocking" `Quick test_nonpreemptive_blocks_high_prio;
    Alcotest.test_case "preemption" `Quick test_preemptive_interrupts_low_prio;
    Alcotest.test_case "overrun counted" `Quick test_overrun_counted;
    Alcotest.test_case "utilization + stack" `Quick test_utilization_and_stack;
    Alcotest.test_case "irq enable/disable" `Quick test_disabled_irq_not_dispatched;
    Alcotest.test_case "timer periph" `Quick test_timer_periph;
    Alcotest.test_case "timer validation" `Quick test_timer_validation;
    Alcotest.test_case "adc conversion" `Quick test_adc_conversion;
    Alcotest.test_case "adc quantization" `Quick test_adc_quantization_clamp;
    Alcotest.test_case "adc busy drop" `Quick test_adc_busy_drop;
    Alcotest.test_case "adc resolution check" `Quick test_adc_resolution_validation;
    Alcotest.test_case "pwm" `Quick test_pwm;
    Alcotest.test_case "pwm validation" `Quick test_pwm_validation;
    Alcotest.test_case "qdec wrap" `Quick test_qdec_wrap_diff;
    Alcotest.test_case "qdec hw check" `Quick test_qdec_requires_hardware;
    Alcotest.test_case "gpio" `Quick test_gpio;
    Alcotest.test_case "sci timing" `Quick test_sci_timing;
    Alcotest.test_case "sci rx overrun" `Quick test_sci_rx_and_overrun;
    Alcotest.test_case "sci fifo overflow" `Quick test_sci_fifo_overflow;
  ]
