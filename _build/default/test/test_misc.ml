(* Gap-filling coverage: report warnings, schedule pretty-printing,
   solver odds and ends. *)

let check_bool = Alcotest.(check bool)
let contains = Astring_contains.contains

let test_ram_warning () =
  (* a model whose state exceeds the MC56F8323's 8 KiB RAM must be
     flagged by the footprint estimator *)
  let p = Bean_project.create Mcu_db.mc56f8323 in
  let m = Model.create "fat" in
  let s = Model.add m (Sources.constant 1.0) in
  let z = Model.add m (Discrete_blocks.zoh ~period:1e-3 ()) in
  let d = Model.add m (Discrete_blocks.delay_n 2000) in
  Model.connect m ~src:(s, 0) ~dst:(z, 0);
  Model.connect m ~src:(z, 0) ~dst:(d, 0);
  let a = Target.generate ~name:"fat" ~project:p (Compile.compile m) in
  check_bool "state dominated by the delay line" true
    (a.Target.report.Target.state_bytes > 15000);
  check_bool "RAM warning raised" true
    (List.exists (fun w -> contains w "RAM") a.Target.report.Target.warnings)

let test_pp_schedule () =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.closed_loop in
  let s = Format.asprintf "%a" Compile.pp_schedule comp in
  check_bool "lists blocks" true (contains s "plant/motor");
  check_bool "shows rates" true (contains s "discrete(0.001");
  check_bool "shows continuous" true (contains s "continuous")

let test_solve_timer_frequency () =
  match Expert.solve_timer_frequency Mcu_db.mc56f8367 ~hz:1000.0 with
  | Ok sol ->
      Alcotest.(check (float 1e-12)) "1 kHz" 1e-3 sol.Expert.achieved_period
  | Error e -> Alcotest.fail e

let test_inspector_warning_display () =
  let p = Bean_project.create Mcu_db.mc56f8367 in
  (* 115200 baud has a small but nonzero divisor error on 60 MHz *)
  let b = Bean_project.add p (Bean.make ~name:"AS1" (Bean.Serial { port = None; baud = 115200 })) in
  let s = Inspector.render_bean b in
  check_bool "shows computed divisor" true (contains s "Divisor");
  check_bool "warning line present" true
    (b.Bean.warnings = [] || contains s "WARNING")

let test_free_cntr_inspector () =
  let p = Bean_project.create Mcu_db.mc56f8367 in
  let b = Bean_project.add p (Bean.make ~name:"FC1" (Bean.Free_cntr { tick = 1e-5 })) in
  let s = Inspector.render_bean b in
  check_bool "tick shown" true (contains s "Tick");
  check_bool "get method" true (contains s "FC1_GetCounterValue")

let test_machine_busy_flag () =
  let m = Machine.create Mcu_db.mc56f8367 in
  let irq =
    Machine.register_irq m ~name:"x" ~prio:1 ~handler:(fun () ->
        { Machine.jname = "x"; cycles = 1000; action = (fun () -> ());
          stack_bytes = 8 })
  in
  check_bool "idle initially" false (Machine.busy m);
  Machine.raise_irq m irq;
  Machine.advance m ~cycles:100;
  check_bool "busy mid-job" true (Machine.busy m);
  Machine.advance m ~cycles:2000;
  check_bool "idle after" false (Machine.busy m)

let test_param_introspection () =
  let spec = Math_blocks.gain ~dtype:Dtype.Int16 2.5 in
  Alcotest.(check (float 1e-12)) "float param" 2.5 (Param.float spec.Block.params "k");
  check_bool "dtype param" true
    (Dtype.equal (Param.dtype spec.Block.params "dtype") Dtype.Int16);
  check_bool "to_string renders" true
    (contains (Param.to_string spec.Block.params) "k=2.5");
  (match Param.int spec.Block.params "k" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash accepted");
  check_bool "opt miss" true (Param.float_opt spec.Block.params "nope" = None)

let test_block_pp () =
  let s = Format.asprintf "%a" Block.pp_spec (Math_blocks.sum "+-") in
  check_bool "kind shown" true (contains s "Sum");
  check_bool "ports shown" true (contains s "2->1")

let test_packet_constants_distinct () =
  let l = [ Packet.ptype_sensor; Packet.ptype_actuator; Packet.ptype_event;
            Packet.ptype_sync ] in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare l))

let test_sim_step_events_counter () =
  let b = Servo_system.build () in
  let comp = Compile.compile b.Servo_system.closed_loop in
  let sim = Sim.create comp in
  Sim.step sim;
  (* the TimerInt bean fires its (unwired) interrupt every period *)
  check_bool "events counted" true (Sim.step_events sim >= 1)

let suite =
  [
    Alcotest.test_case "RAM warning" `Quick test_ram_warning;
    Alcotest.test_case "pp_schedule" `Quick test_pp_schedule;
    Alcotest.test_case "solve by frequency" `Quick test_solve_timer_frequency;
    Alcotest.test_case "inspector warning" `Quick test_inspector_warning_display;
    Alcotest.test_case "free counter inspector" `Quick test_free_cntr_inspector;
    Alcotest.test_case "machine busy flag" `Quick test_machine_busy_flag;
    Alcotest.test_case "param introspection" `Quick test_param_introspection;
    Alcotest.test_case "block pp" `Quick test_block_pp;
    Alcotest.test_case "packet constants" `Quick test_packet_constants_distinct;
    Alcotest.test_case "step events counter" `Quick test_sim_step_events_counter;
  ]
