(* Tests of the block-diagram core: compilation analyses and the MIL
   engine, including a full closed loop against an analytic oracle. *)

let check_float = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build_gain_chain () =
  let m = Model.create "chain" in
  let src = Model.add m ~name:"src" (Sources.step ~after:2.0 ()) in
  let g1 = Model.add m ~name:"g1" (Math_blocks.gain 3.0) in
  let g2 = Model.add m ~name:"g2" (Math_blocks.gain (-0.5)) in
  Model.connect m ~src:(src, 0) ~dst:(g1, 0);
  Model.connect m ~src:(g1, 0) ~dst:(g2, 0);
  m

let test_chain_output () =
  let m = build_gain_chain () in
  let comp = Compile.compile ~default_dt:0.1 m in
  let sim = Sim.create comp in
  Sim.step sim;
  check_float "g2 = 2*3*-0.5" (-3.0) (Value.to_float (Sim.value_named sim "g2" 0))

let test_unconnected_input_rejected () =
  let m = Model.create "bad" in
  let _ = Model.add m (Math_blocks.gain 1.0) in
  (match Compile.compile m with
  | exception Compile.Compile_error msg ->
      check_bool "mentions unconnected" true
        (Astring_contains.contains msg "unconnected")
  | _ -> Alcotest.fail "expected Compile_error")

let test_algebraic_loop_detected () =
  let m = Model.create "loop" in
  let g1 = Model.add m ~name:"a" (Math_blocks.gain 1.0) in
  let g2 = Model.add m ~name:"b" (Math_blocks.gain 1.0) in
  Model.connect m ~src:(g1, 0) ~dst:(g2, 0);
  Model.connect m ~src:(g2, 0) ~dst:(g1, 0);
  (match Compile.compile m with
  | exception Compile.Compile_error msg ->
      check_bool "mentions loop" true (Astring_contains.contains msg "algebraic loop")
  | _ -> Alcotest.fail "expected algebraic loop error")

let test_loop_broken_by_delay () =
  let m = Model.create "okloop" in
  let g = Model.add m ~name:"g" (Math_blocks.gain 0.5) in
  let d = Model.add m ~name:"d" (Discrete_blocks.unit_delay ~init:1.0 ~period:0.1 ()) in
  Model.connect m ~src:(g, 0) ~dst:(d, 0);
  Model.connect m ~src:(d, 0) ~dst:(g, 0);
  let comp = Compile.compile m in
  let sim = Sim.create comp in
  (* x(k+1) = 0.5 x(k), starting at 1: geometric decay. *)
  Sim.step sim;
  check_float "after 1 step" 0.5 (Value.to_float (Sim.value_named sim "g" 0));
  Sim.step sim;
  check_float "after 2 steps" 0.25 (Value.to_float (Sim.value_named sim "g" 0))

let test_double_wire_rejected () =
  let m = Model.create "dw" in
  let s = Model.add m (Sources.constant 1.0) in
  let g = Model.add m (Math_blocks.gain 1.0) in
  Model.connect m ~src:(s, 0) ~dst:(g, 0);
  (match Model.connect m ~src:(s, 0) ~dst:(g, 0) with
  | exception Model.Model_error _ -> ()
  | _ -> Alcotest.fail "expected Model_error on double wiring")

let test_type_propagation () =
  let m = Model.create "types" in
  let src = Model.add m ~name:"c" (Sources.constant ~dtype:Dtype.Int16 100.0) in
  let g = Model.add m ~name:"g" (Math_blocks.gain 2.0) in
  let cast = Model.add m ~name:"cast" (Math_blocks.cast Dtype.Uint8) in
  Model.connect m ~src:(src, 0) ~dst:(g, 0);
  Model.connect m ~src:(g, 0) ~dst:(cast, 0);
  let comp = Compile.compile ~default_dt:0.1 m in
  check_bool "gain type follows input" true
    (Dtype.equal (Compile.out_type comp (g, 0)) Dtype.Int16);
  check_bool "cast type fixed" true
    (Dtype.equal (Compile.out_type comp (cast, 0)) Dtype.Uint8);
  let sim = Sim.create comp in
  Sim.step sim;
  (* 100 * 2 = 200 fits uint8; and int16 saturation applies upstream *)
  check_int "cast value" 200 (Value.to_int (Sim.value_named sim "cast" 0))

let test_integer_saturation_in_diagram () =
  let m = Model.create "sat" in
  let src = Model.add m ~name:"c" (Sources.constant ~dtype:Dtype.Int8 100.0) in
  let g = Model.add m ~name:"g" (Math_blocks.gain 2.0) in
  Model.connect m ~src:(src, 0) ~dst:(g, 0);
  let sim = Sim.create (Compile.compile ~default_dt:0.1 m) in
  Sim.step sim;
  check_int "int8 saturates at 127" 127 (Value.to_int (Sim.value_named sim "g" 0))

let test_sample_time_resolution () =
  let m = Model.create "rates" in
  let src = Model.add m ~name:"s" (Sources.step ~after:1.0 ()) in
  let z = Model.add m ~name:"z" (Discrete_blocks.zoh ~period:0.01 ()) in
  let g = Model.add m ~name:"g" (Math_blocks.gain 1.0) in
  Model.connect m ~src:(src, 0) ~dst:(z, 0);
  Model.connect m ~src:(z, 0) ~dst:(g, 0);
  let comp = Compile.compile m in
  check_float "base dt from zoh" 0.01 comp.Compile.base_dt;
  (match Compile.resolved_of comp g with
  | Sample_time.R_discrete { period; _ } -> check_float "gain inherits" 0.01 period
  | _ -> Alcotest.fail "gain should inherit the discrete rate")

let test_sample_offset () =
  (* a ZOH offset by half its period samples mid-period values of a ramp *)
  let m = Model.create "offset" in
  let r = Model.add m (Sources.ramp ~slope:1.0 ()) in
  let z0 = Model.add m ~name:"z0" (Discrete_blocks.zoh ~period:0.1 ()) in
  let z5 = Model.add m ~name:"z5" (Discrete_blocks.zoh ~offset:0.05 ~period:0.1 ()) in
  Model.connect m ~src:(r, 0) ~dst:(z0, 0);
  Model.connect m ~src:(r, 0) ~dst:(z5, 0);
  let comp = Compile.compile m in
  check_float "offset refines base step" 0.05 comp.Compile.base_dt;
  let sim = Sim.create comp in
  Sim.run sim ~until:0.401 ();
  (* after t in [0.4, 0.45): z0 sampled at 0.4, z5 last sampled at 0.35 *)
  check_float "aligned hold" 0.4 (Value.to_float (Sim.value_named sim "z0" 0));
  check_float "offset hold" 0.35 (Value.to_float (Sim.value_named sim "z5" 0))

let test_multirate_base_step () =
  let m = Model.create "multirate" in
  let s = Model.add m (Sources.constant 1.0) in
  let z1 = Model.add m (Discrete_blocks.zoh ~period:0.02 ()) in
  let z2 = Model.add m (Discrete_blocks.zoh ~period:0.03 ()) in
  Model.connect m ~src:(s, 0) ~dst:(z1, 0);
  Model.connect m ~src:(s, 0) ~dst:(z2, 0);
  let comp = Compile.compile m in
  check_float "gcd(0.02,0.03)" 0.01 comp.Compile.base_dt

let test_continuous_integrator () =
  (* dx/dt = 1 -> x(t) = t, exact for RK4. *)
  let m = Model.create "int" in
  let c = Model.add m (Sources.constant 1.0) in
  let i = Model.add m ~name:"i" (Continuous_blocks.integrator ()) in
  let z = Model.add m (Discrete_blocks.zoh ~period:0.1 ()) in
  Model.connect m ~src:(c, 0) ~dst:(i, 0);
  Model.connect m ~src:(i, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:1.0 ();
  check_float "x(1) = 1" 1.0 (Value.to_float (Sim.value_named sim "i" 0))

let test_first_order_step_response () =
  (* k/(tau s + 1) step response: y(t) = k(1 - exp(-t/tau)). *)
  let m = Model.create "fo" in
  let s = Model.add m (Sources.step ~after:1.0 ()) in
  let p = Model.add m ~name:"p" (Continuous_blocks.first_order ~k:2.0 ~tau:0.5) in
  let z = Model.add m (Discrete_blocks.zoh ~period:0.001 ()) in
  Model.connect m ~src:(s, 0) ~dst:(p, 0);
  Model.connect m ~src:(p, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:1.0 ();
  let expected = 2.0 *. (1.0 -. exp (-1.0 /. 0.5)) in
  Alcotest.(check (float 1e-4)) "y(1)" expected
    (Value.to_float (Sim.value_named sim "p" 0))

let test_closed_loop_pi_converges () =
  (* PI-controlled first-order plant must settle at the set-point. *)
  let m = Model.create "cl" in
  let sp = Model.add m (Sources.step ~after:5.0 ()) in
  let k, tau = (2.0, 0.5) in
  let kp, ki = Tuning.pi_for_first_order ~k ~tau () in
  let pid =
    Model.add m ~name:"pid"
      (Discrete_blocks.pid ~ts:0.001 (Pid.gains ~kp ~ki ~u_min:(-100.) ~u_max:100. ()))
  in
  let plant = Model.add m ~name:"plant" (Continuous_blocks.first_order ~k ~tau) in
  Model.connect m ~src:(sp, 0) ~dst:(pid, 0);
  Model.connect m ~src:(plant, 0) ~dst:(pid, 1);
  Model.connect m ~src:(pid, 0) ~dst:(plant, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:3.0 ();
  Alcotest.(check (float 0.02)) "tracks set-point" 5.0
    (Value.to_float (Sim.value_named sim "plant" 0))

let test_probe_trace () =
  let m = build_gain_chain () in
  let sim = Sim.create (Compile.compile ~default_dt:0.1 m) in
  Sim.probe_named sim "g2" 0;
  Sim.run sim ~until:0.5 ();
  let tr = Sim.trace_named sim "g2" 0 in
  check_int "5 samples" 5 (List.length tr);
  List.iter (fun (_, y) -> check_float "all -3" (-3.0) y) tr

let test_function_call_group () =
  (* A source block that fires an event every step; the triggered group
     contains a counter built from a sum + unit delay. *)
  let firing =
    {
      Block.kind = "TestFiring";
      params = [];
      n_in = 0;
      n_out = 0;
      feedthrough = [||];
      out_types = [||];
      sample = Sample_time.discrete 0.1;
      event_outs = [| "tick" |];
      make =
        (fun ctx ->
          {
            Block.no_beh_state with
            update = (fun ~time:_ _ -> ctx.Block.fire 0);
          });
    }
  in
  let m = Model.create "fc" in
  let f = Model.add m ~name:"f" firing in
  let one = Model.add m ~name:"one" (Sources.constant 1.0) in
  let sum = Model.add m ~name:"sum" (Math_blocks.sum "++") in
  let d = Model.add m ~name:"d" (Discrete_blocks.unit_delay ()) in
  Model.connect m ~src:(one, 0) ~dst:(sum, 0);
  Model.connect m ~src:(d, 0) ~dst:(sum, 1);
  Model.connect m ~src:(sum, 0) ~dst:(d, 0);
  let g = Model.fc_group m "tick_handler" in
  Model.assign_group m sum g;
  Model.assign_group m d g;
  Model.connect_event m ~src:(f, 0) g;
  let sim = Sim.create (Compile.compile m) in
  Sim.run sim ~until:1.0 ();
  (* 10 update-phase firings in 1 s at 0.1 s period. *)
  Alcotest.(check (float 0.0)) "counter" 10.0
    (Value.to_float (Sim.value_named sim "sum" 0))

let test_inline_subsystem () =
  (* Sub-model: y = 2*u + 1; inline into a parent feeding u = 3. *)
  let sub = Model.create "sub" in
  let inp = Model.add sub (Routing_blocks.inport 0) in
  let g = Model.add sub (Math_blocks.gain 2.0) in
  let c = Model.add sub (Sources.constant 1.0) in
  let s = Model.add sub (Math_blocks.sum "++") in
  let outp = Model.add sub (Routing_blocks.outport 0) in
  Model.connect sub ~src:(inp, 0) ~dst:(g, 0);
  Model.connect sub ~src:(g, 0) ~dst:(s, 0);
  Model.connect sub ~src:(c, 0) ~dst:(s, 1);
  Model.connect sub ~src:(s, 0) ~dst:(outp, 0);
  let parent = Model.create "parent" in
  let u = Model.add parent ~name:"u" (Sources.constant 3.0) in
  let outs = Model.inline parent ~prefix:"inner" ~sub ~inputs:[| (u, 0) |] in
  Alcotest.(check int) "one boundary output" 1 (Array.length outs);
  let probe = Model.add parent ~name:"y" (Math_blocks.gain 1.0) in
  Model.connect parent ~src:outs.(0) ~dst:(probe, 0);
  let sim = Sim.create (Compile.compile ~default_dt:0.1 parent) in
  Sim.step sim;
  check_float "y = 2*3+1" 7.0 (Value.to_float (Sim.value_named sim "y" 0))

let test_override_output () =
  let m = build_gain_chain () in
  let comp = Compile.compile ~default_dt:0.1 m in
  let sim = Sim.create comp in
  let src = Model.find m "src" in
  Sim.override_output sim (src, 0) (Some (Value.F 10.0));
  Sim.step sim;
  check_float "forced input" (-15.0) (Value.to_float (Sim.value_named sim "g2" 0))

let test_reset_reproducibility () =
  let m = Model.create "rng" in
  let n = Model.add m ~name:"n" (Sources.uniform_noise ~seed:7 ()) in
  let z = Model.add m (Discrete_blocks.zoh ~period:0.1 ()) in
  Model.connect m ~src:(n, 0) ~dst:(z, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.probe_named sim "n" 0;
  Sim.run sim ~until:1.0 ();
  let t1 = Sim.trace_named sim "n" 0 in
  Sim.reset sim;
  Sim.run sim ~until:1.0 ();
  let t2 = Sim.trace_named sim "n" 0 in
  check_bool "same noise after reset" true (t1 = t2)

let suite =
  [
    Alcotest.test_case "gain chain output" `Quick test_chain_output;
    Alcotest.test_case "unconnected input rejected" `Quick test_unconnected_input_rejected;
    Alcotest.test_case "algebraic loop detected" `Quick test_algebraic_loop_detected;
    Alcotest.test_case "delay breaks loops" `Quick test_loop_broken_by_delay;
    Alcotest.test_case "double wiring rejected" `Quick test_double_wire_rejected;
    Alcotest.test_case "type propagation" `Quick test_type_propagation;
    Alcotest.test_case "integer saturation" `Quick test_integer_saturation_in_diagram;
    Alcotest.test_case "sample time inheritance" `Quick test_sample_time_resolution;
    Alcotest.test_case "sample offset" `Quick test_sample_offset;
    Alcotest.test_case "multirate base step" `Quick test_multirate_base_step;
    Alcotest.test_case "continuous integrator" `Quick test_continuous_integrator;
    Alcotest.test_case "first-order step response" `Quick test_first_order_step_response;
    Alcotest.test_case "closed-loop PI converges" `Quick test_closed_loop_pi_converges;
    Alcotest.test_case "probe traces" `Quick test_probe_trace;
    Alcotest.test_case "function-call group" `Quick test_function_call_group;
    Alcotest.test_case "inline subsystem" `Quick test_inline_subsystem;
    Alcotest.test_case "override output (PIL hook)" `Quick test_override_output;
    Alcotest.test_case "reset reproducibility" `Quick test_reset_reproducibility;
  ]
