(* Property-based fuzzing of the model/compile/engine stack: random
   diagrams must compile and simulate without crashes, and acyclic
   bounded diagrams must stay finite. *)

(* A palette of block generators: (spec, n_in). All parameters bounded so
   acyclic compositions cannot blow up. *)
let palette rng =
  let pick l = List.nth l (QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.int_bound (List.length l - 1))) in
  let g = QCheck2.Gen.generate1 ~rand:rng in
  pick
    [
      (fun () -> Sources.constant (g (QCheck2.Gen.float_range (-2.0) 2.0)));
      (fun () -> Sources.step ~t_step:(g (QCheck2.Gen.float_range 0.0 0.5))
          ~after:(g (QCheck2.Gen.float_range (-1.0) 1.0)) ());
      (fun () -> Sources.sine ~amp:(g (QCheck2.Gen.float_range 0.1 2.0)) ());
      (fun () -> Math_blocks.gain (g (QCheck2.Gen.float_range (-0.9) 0.9)));
      (fun () -> Math_blocks.sum "+-");
      (fun () -> Math_blocks.abs_block);
      (fun () -> Math_blocks.min_block);
      (fun () -> Nonlinear_blocks.saturation ~lo:(-3.0) ~hi:3.0);
      (fun () -> Nonlinear_blocks.quantizer ~interval:0.25);
      (fun () -> Discrete_blocks.unit_delay ());
      (fun () -> Discrete_blocks.moving_average 3);
      (fun () -> Discrete_blocks.zoh ~period:0.01 ());
      (fun () -> Discrete_blocks.discrete_tf ~num:[| 0.3 |] ~den:[| 1.0; -0.5 |]);
      (fun () -> Math_blocks.cast Dtype.Int16);
    ]
    ()

(* Build a random acyclic diagram: every input wired to an earlier
   block's output; terminates sources-first so inputs always exist. *)
let random_dag ~seed ~size =
  let rng = Random.State.make [| seed |] in
  let m = Model.create (Printf.sprintf "fuzz%d" seed) in
  let outputs = ref [] in
  (* prime with two sources so inputs are always wireable *)
  let s1 = Model.add m (Sources.constant 1.0) in
  let s2 = Model.add m (Sources.sine ()) in
  outputs := [ (s1, 0); (s2, 0) ];
  for _ = 1 to size do
    let spec = palette rng in
    let blk = Model.add m spec in
    for p = 0 to spec.Block.n_in - 1 do
      let src = List.nth !outputs (Random.State.int rng (List.length !outputs)) in
      Model.connect m ~src ~dst:(blk, p)
    done;
    for p = 0 to spec.Block.n_out - 1 do
      outputs := (blk, p) :: !outputs
    done
  done;
  m

let prop_dag_simulates_finite =
  QCheck2.Test.make ~name:"random acyclic diagrams compile and stay finite"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 25))
    (fun (seed, size) ->
      let m = random_dag ~seed ~size in
      let comp = Compile.compile ~default_dt:0.01 m in
      let sim = Sim.create comp in
      Sim.run sim ~until:0.5 ();
      List.for_all
        (fun b ->
          let spec = Model.spec_of m b in
          List.for_all
            (fun p -> Float.is_finite (Value.to_float (Sim.value sim (b, p))))
            (List.init spec.Block.n_out Fun.id))
        (Model.blocks m))

(* Arbitrary wiring (cycles allowed): compilation either succeeds or
   raises Compile_error -- never anything else -- and on success the
   engine must step without raising. *)
let random_tangle ~seed ~size =
  let rng = Random.State.make [| seed; 77 |] in
  let m = Model.create (Printf.sprintf "tangle%d" seed) in
  let blocks = ref [] in
  let s = Model.add m (Sources.constant 0.5) in
  blocks := [ s ];
  for _ = 1 to size do
    let spec = palette rng in
    blocks := Model.add m spec :: !blocks
  done;
  (* wire every input to a uniformly random output (maybe later blocks) *)
  let all = !blocks in
  let all_outs =
    List.concat_map
      (fun b ->
        let spec = Model.spec_of m b in
        List.init spec.Block.n_out (fun p -> (b, p)))
      all
  in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      for p = 0 to spec.Block.n_in - 1 do
        let src = List.nth all_outs (Random.State.int rng (List.length all_outs)) in
        Model.connect m ~src ~dst:(b, p)
      done)
    all;
  m

let prop_tangle_never_crashes =
  QCheck2.Test.make ~name:"random cyclic wirings: compile succeeds or Compile_error"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 20))
    (fun (seed, size) ->
      let m = random_tangle ~seed ~size in
      match Compile.compile ~default_dt:0.01 m with
      | comp ->
          let sim = Sim.create comp in
          Sim.run sim ~until:0.2 ();
          true
      | exception Compile.Compile_error _ -> true)

let prop_reset_equals_fresh =
  QCheck2.Test.make ~name:"Sim.reset replays identically on random diagrams"
    ~count:40
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 15))
    (fun (seed, size) ->
      let m = random_dag ~seed ~size in
      let comp = Compile.compile ~default_dt:0.01 m in
      let sim = Sim.create comp in
      let last = List.hd (Model.blocks m) in
      Sim.probe sim (last, 0);
      Sim.run sim ~until:0.3 ();
      let t1 = Sim.trace sim (last, 0) in
      Sim.reset sim;
      Sim.run sim ~until:0.3 ();
      t1 = Sim.trace sim (last, 0))

let prop_codegen_never_crashes_on_dags =
  QCheck2.Test.make
    ~name:"code generation handles random discrete diagrams" ~count:40
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 15))
    (fun (seed, size) ->
      let m = random_dag ~seed ~size in
      let comp = Compile.compile ~default_dt:0.01 m in
      let project = Bean_project.create Mcu_db.mc56f8367 in
      match Target.generate ~name:"fuzz" ~project comp with
      | arts ->
          (* the generated C must at least be non-trivial and well formed
             enough to print *)
          String.length (C_print.print_unit arts.Target.model_c) > 100
      | exception Target.Codegen_error _ -> true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dag_simulates_finite;
      prop_tangle_never_crashes;
      prop_reset_equals_fresh;
      prop_codegen_never_crashes_on_dags;
    ]
