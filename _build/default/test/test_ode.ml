(* Solver correctness: convergence orders against closed-form solutions. *)

let check_float eps = Alcotest.(check (float eps))

(* dy/dt = -y, y(0) = 1 -> y(t) = exp(-t) *)
let decay _t x = [| -.x.(0) |]

let final_error m h =
  let traj = Ode.integrate m decay ~t0:0.0 ~t1:1.0 ~h [| 1.0 |] in
  match List.rev traj with
  | (_, x) :: _ -> Float.abs (x.(0) -. exp (-1.0))
  | [] -> assert false

let test_euler_first_order () =
  (* halving h should roughly halve the error (order 1) *)
  let e1 = final_error Ode.Euler 0.01 and e2 = final_error Ode.Euler 0.005 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool) "euler order ~1" true (ratio > 1.7 && ratio < 2.3)

let test_heun_second_order () =
  let e1 = final_error Ode.Heun 0.01 and e2 = final_error Ode.Heun 0.005 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool) "heun order ~2" true (ratio > 3.4 && ratio < 4.6)

let test_rk4_fourth_order () =
  let e1 = final_error Ode.Rk4 0.02 and e2 = final_error Ode.Rk4 0.01 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool) "rk4 order ~4" true (ratio > 12.0 && ratio < 20.0)

let test_rk4_accuracy () =
  check_float 1e-9 "rk4 exp(-1)" (exp (-1.0))
    (match List.rev (Ode.integrate Ode.Rk4 decay ~t0:0.0 ~t1:1.0 ~h:1e-3 [| 1.0 |]) with
    | (_, x) :: _ -> x.(0)
    | [] -> assert false)

let test_harmonic_oscillator_energy () =
  (* x'' = -x: RK4 should conserve energy to high accuracy over 10 periods *)
  let f _t x = [| x.(1); -.x.(0) |] in
  let traj =
    Ode.integrate Ode.Rk4 f ~t0:0.0 ~t1:(20.0 *. Float.pi) ~h:1e-3 [| 1.0; 0.0 |]
  in
  let _, x = List.nth traj (List.length traj - 1) in
  let energy = (x.(0) ** 2.0) +. (x.(1) ** 2.0) in
  check_float 1e-6 "energy conserved" 1.0 energy

let test_rkf45_adaptive () =
  let traj = Ode.rkf45 decay ~t0:0.0 ~t1:1.0 ~tol:1e-9 [| 1.0 |] in
  (match List.rev traj with
  | (_, x) :: _ -> check_float 1e-7 "rkf45 accurate" (exp (-1.0)) x.(0)
  | [] -> Alcotest.fail "empty trajectory");
  (* adaptivity: a loose tolerance should use far fewer steps *)
  let loose = Ode.rkf45 decay ~t0:0.0 ~t1:1.0 ~tol:1e-3 [| 1.0 |] in
  Alcotest.(check bool) "fewer steps at loose tol" true
    (List.length loose < List.length traj)

let test_integrate_endpoint () =
  (* the final sample must land exactly on t1 even for non-divisible h *)
  let traj = Ode.integrate Ode.Euler decay ~t0:0.0 ~t1:0.35 ~h:0.1 [| 1.0 |] in
  let t_last, _ = List.nth traj (List.length traj - 1) in
  check_float 1e-12 "endpoint" 0.35 t_last

let test_bad_step_rejected () =
  Alcotest.check_raises "h <= 0"
    (Invalid_argument "Ode.integrate: h must be positive") (fun () ->
      ignore (Ode.integrate Ode.Euler decay ~t0:0.0 ~t1:1.0 ~h:0.0 [| 1.0 |]))

let prop_linear_system_matches_exact =
  QCheck2.Test.make ~name:"rk4 matches exp decay for random rates" ~count:100
    QCheck2.Gen.(float_range 0.1 5.0)
    (fun a ->
      let f _t x = [| -.a *. x.(0) |] in
      let x = Ode.step Ode.Rk4 f 0.0 [| 1.0 |] 0.01 in
      Float.abs (x.(0) -. exp (-.a *. 0.01)) < 1e-8)

let suite =
  [
    Alcotest.test_case "euler order 1" `Quick test_euler_first_order;
    Alcotest.test_case "heun order 2" `Quick test_heun_second_order;
    Alcotest.test_case "rk4 order 4" `Quick test_rk4_fourth_order;
    Alcotest.test_case "rk4 accuracy" `Quick test_rk4_accuracy;
    Alcotest.test_case "oscillator energy" `Quick test_harmonic_oscillator_energy;
    Alcotest.test_case "rkf45 adaptive" `Quick test_rkf45_adaptive;
    Alcotest.test_case "endpoint exact" `Quick test_integrate_endpoint;
    Alcotest.test_case "bad step rejected" `Quick test_bad_step_rejected;
    QCheck_alcotest.to_alcotest prop_linear_system_matches_exact;
  ]
