(* The PEERT code generator: structure and content of the generated C. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

let built = lazy (Servo_system.build ())

let artifacts =
  lazy
    (let b = Lazy.force built in
     let comp = Compile.compile b.Servo_system.controller in
     Target.generate ~name:"servo" ~project:b.Servo_system.project comp)

let model_c () = C_print.print_unit (Lazy.force artifacts).Target.model_c
let model_h () = C_print.print_unit (Lazy.force artifacts).Target.model_h
let main_c () = C_print.print_unit (Lazy.force artifacts).Target.main_c

let test_model_functions_present () =
  let c = model_c () in
  check_bool "initialize" true (contains c "void servo_initialize(void)");
  check_bool "step" true (contains c "void servo_step(void)");
  check_bool "tick counter" true (contains c "servo_tick")

let test_structs_declared () =
  let h = model_h () in
  check_bool "block io struct" true (contains h "servo_B_t");
  check_bool "state struct" true (contains h "servo_DW_t");
  check_bool "external inputs" true (contains h "servo_U_t")

let test_bean_methods_called () =
  let c = model_c () in
  check_bool "pwm ratio call" true (contains c "PWM1_SetRatio16(");
  check_bool "decoder read" true (contains c "QD1_GetPosition()");
  check_bool "button read" true (contains c "SW1_GetVal()")

let test_timer_isr_runs_step () =
  let m = main_c () in
  check_bool "timer event defined" true (contains m "void TI1_OnInterrupt(void)");
  check_bool "step called from ISR" true (contains m "servo_step();");
  check_bool "bean inits in main" true (contains m "TI1_Enable();");
  check_bool "background loop" true (contains m "background_task")

let test_encoder_wrap_code () =
  let c = model_c () in
  (* the wrap-aware diff must go through an int16 cast *)
  check_bool "int16 cast diff" true (contains c "(int16_t)")

let test_report_sane () =
  let r = (Lazy.force artifacts).Target.report in
  check_bool "blocks counted" true (r.Target.n_blocks >= 15);
  check_bool "app loc" true (r.Target.app_loc > 100);
  check_bool "hal loc" true (r.Target.hal_loc > 80);
  check_bool "state bytes positive" true (r.Target.state_bytes > 0);
  check_bool "step time < period" true (r.Target.step_time < 1e-3);
  check_bool "ram within part" true
    (r.Target.est_ram_bytes < Mcu_db.mc56f8367.Mcu_db.ram_bytes);
  check_bool "no warnings" true (r.Target.warnings = [])

let test_schedule_slots () =
  let s = (Lazy.force artifacts).Target.schedule in
  (* sensors: quadrature decoder and mode button; actuator: PWM *)
  check_int "sensor slots" 2 (List.length s.Target.sensor_slots);
  check_int "actuator slots" 1 (List.length s.Target.actuator_slots);
  Alcotest.(check (option string)) "timer bean" (Some "TI1") s.Target.timer_bean;
  check_bool "cycles positive" true (s.Target.total_step_cycles > 100)

let test_plant_blocks_rejected () =
  let b = Lazy.force built in
  let comp = Compile.compile b.Servo_system.closed_loop in
  match Target.generate ~name:"bad" ~project:b.Servo_system.project comp with
  | exception Target.Codegen_error msg ->
      check_bool "names the plant block" true (contains msg "controller subsystem")
  | _ -> Alcotest.fail "closed-loop model must not generate"

let test_pil_variant_redirects () =
  let b = Lazy.force built in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Pil_target.generate ~name:"servo" ~project:b.Servo_system.project comp in
  let c = C_print.print_unit a.Target.model_c in
  check_bool "sensor buffer read" true (contains c "pil_sensor_buf[");
  check_bool "actuator buffer write" true (contains c "pil_actuator_buf[");
  check_bool "no hardware access" false (contains c "QD1_GetPosition()");
  let rt =
    List.find (fun u -> u.C_ast.unit_name = "pil_rt.c") a.Target.hal
  in
  let rts = C_print.print_unit rt in
  check_bool "rx ISR over the serial bean" true (contains rts "AS1_OnRxChar");
  check_bool "crc in runtime" true (contains rts "pil_crc16");
  check_bool "step from comm" true (contains rts "servo_step();")

let test_pil_needs_serial_bean () =
  let p = Bean_project.create Mcu_db.mc56f8367 in
  ignore
    (Bean_project.add p
       (Bean.make ~name:"TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.01 })));
  let m = Model.create "tiny" in
  let c = Model.add m (Sources.constant 1.0) in
  let g = Model.add m (Math_blocks.gain 2.0) in
  Model.connect m ~src:(c, 0) ~dst:(g, 0);
  let comp = Compile.compile ~default_dt:1e-3 m in
  match Pil_target.generate ~name:"tiny" ~project:p comp with
  | exception Target.Codegen_error msg ->
      check_bool "mentions serial" true (contains msg "AsynchroSerial")
  | _ -> Alcotest.fail "PIL without a serial bean accepted"

let test_fixpid_constants_match_simulation () =
  (* the generated fixed-point controller must carry the same raw
     coefficients the simulation uses *)
  let cfg = { Servo_system.default_config with Servo_system.variant = Servo_system.Fixed_pid } in
  let b = Servo_system.build ~config:cfg () in
  let comp = Compile.compile b.Servo_system.controller in
  let a = Target.generate ~name:"servofx" ~project:b.Servo_system.project comp in
  let c = C_print.print_unit a.Target.model_c in
  let fx =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:512.0
      ~out_scale:Dc_motor.default.Dc_motor.u_max b.Servo_system.gains
  in
  let rc = Pid.Fixpoint.raw_coefficients fx in
  check_bool "kp raw baked in" true
    (contains c (string_of_int rc.Pid.Fixpoint.kp_raw));
  check_bool "ki*ts raw baked in" true
    (contains c (string_of_int rc.Pid.Fixpoint.ki_ts_raw));
  check_bool "saturating helpers" true (contains c "pe_sat_add32")

let test_multirate_sections () =
  (* a model with 1 ms and 4 ms rates gets a modulo-guarded section *)
  let m = Model.create "rates" in
  let s = Model.add m (Sources.constant 1.0) in
  let z1 = Model.add m (Discrete_blocks.zoh ~period:1e-3 ()) in
  let z4 = Model.add m (Discrete_blocks.zoh ~period:4e-3 ()) in
  let g1 = Model.add m (Math_blocks.gain 1.0) in
  let g4 = Model.add m (Math_blocks.gain 1.0) in
  Model.connect m ~src:(s, 0) ~dst:(z1, 0);
  Model.connect m ~src:(s, 0) ~dst:(z4, 0);
  Model.connect m ~src:(z1, 0) ~dst:(g1, 0);
  Model.connect m ~src:(z4, 0) ~dst:(g4, 0);
  let p = Bean_project.create Mcu_db.mc56f8367 in
  let comp = Compile.compile m in
  let a = Target.generate ~name:"rates" ~project:p comp in
  let c = C_print.print_unit a.Target.model_c in
  check_bool "subrate guard" true (contains c "% 4 == 0")

let test_fc_group_isr () =
  (* an event-driven function-call subsystem becomes a dedicated function
     called from the bean event ISR *)
  let p = Bean_project.create Mcu_db.mc56f8367 in
  ignore
    (Bean_project.add p
       (Bean.make ~name:"AD1"
          (Bean.Adc { channel = None; resolution = 12; vref = 3.3; sample_period = 1e-3 })));
  let m = Model.create "evt" in
  let src = Model.add m (Sources.constant 1.0) in
  let adc = Model.add m ~name:"adc" (Periph_blocks.adc (Bean_project.find p "AD1")) in
  let g = Model.add m ~name:"g" (Math_blocks.gain 2.0) in
  Model.connect m ~src:(src, 0) ~dst:(adc, 0);
  Model.connect m ~src:(adc, 0) ~dst:(g, 0);
  let grp = Model.fc_group m "on_sample" in
  Model.assign_group m g grp;
  Model.connect_event m ~src:(adc, 0) grp;
  let comp = Compile.compile m in
  let a = Target.generate ~name:"evt" ~project:p comp in
  let c = C_print.print_unit a.Target.model_c in
  let mn = C_print.print_unit a.Target.main_c in
  check_bool "group function" true (contains c "void evt_on_sample(void)");
  check_bool "wired from the event ISR" true (contains mn "void AD1_OnEnd(void)");
  check_bool "isr calls group" true (contains mn "evt_on_sample();")

let test_write_to_dir () =
  let a = Lazy.force artifacts in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "peert_out" in
  let files = Target.write_to_dir a ~dir in
  check_bool "several files" true (List.length files >= 5);
  check_bool "makefile written" true
    (List.exists (fun f -> Filename.basename f = "Makefile") files);
  List.iter (fun f -> check_bool ("exists " ^ f) true (Sys.file_exists f)) files

let test_cost_model_orderings () =
  let mcu = Mcu_db.mc56f8367 in
  let gain = Math_blocks.gain 2.0 in
  let float_cost = Cost_model.cycles_of_block mcu gain Dtype.Double in
  let fix_cost = Cost_model.cycles_of_block mcu gain (Dtype.Fix Qformat.q15) in
  check_bool "soft-float double costs more than native fixed" true
    (float_cost > 5 * fix_cost);
  (* a MAC-less CPU pays more for fixed multiplies than a DSC *)
  let hc12_cost = Cost_model.cycles_of_block Mcu_db.mc9s12dp256 gain (Dtype.Fix Qformat.q15) in
  check_bool "mac advantage" true (hc12_cost > fix_cost)

let suite =
  [
    Alcotest.test_case "model functions" `Quick test_model_functions_present;
    Alcotest.test_case "structs" `Quick test_structs_declared;
    Alcotest.test_case "bean method calls" `Quick test_bean_methods_called;
    Alcotest.test_case "timer ISR" `Quick test_timer_isr_runs_step;
    Alcotest.test_case "encoder wrap code" `Quick test_encoder_wrap_code;
    Alcotest.test_case "report sane" `Quick test_report_sane;
    Alcotest.test_case "schedule slots" `Quick test_schedule_slots;
    Alcotest.test_case "plant blocks rejected" `Quick test_plant_blocks_rejected;
    Alcotest.test_case "pil redirection" `Quick test_pil_variant_redirects;
    Alcotest.test_case "pil needs serial" `Quick test_pil_needs_serial_bean;
    Alcotest.test_case "fixpid constants" `Quick test_fixpid_constants_match_simulation;
    Alcotest.test_case "multirate sections" `Quick test_multirate_sections;
    Alcotest.test_case "fc group isr" `Quick test_fc_group_isr;
    Alcotest.test_case "write to dir" `Quick test_write_to_dir;
    Alcotest.test_case "cost model" `Quick test_cost_model_orderings;
  ]
