(* Physical models against their analytic oracles. *)

let check_float eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_motor p ~u ~tau ~t_end =
  let h = 1e-5 in
  let rec go s t = if t >= t_end then s else go (Dc_motor.step p ~u ~tau_load:tau ~h s) (t +. h) in
  go Dc_motor.initial 0.0

let test_motor_steady_state () =
  let p = Dc_motor.default in
  let s = run_motor p ~u:12.0 ~tau:0.0 ~t_end:0.5 in
  let w_ss = Dc_motor.steady_state_speed p ~u:12.0 ~tau_load:0.0 in
  check_float 0.5 "no-load speed" w_ss s.Dc_motor.w;
  (* steady-state current balances friction: Kt*i = b*w *)
  check_float 1e-3 "friction current"
    (p.Dc_motor.b *. s.Dc_motor.w /. p.Dc_motor.kt)
    s.Dc_motor.i

let test_motor_loaded_steady_state () =
  let p = Dc_motor.default in
  let tau = 5e-3 in
  let s = run_motor p ~u:12.0 ~tau ~t_end:0.5 in
  check_float 0.5 "loaded speed"
    (Dc_motor.steady_state_speed p ~u:12.0 ~tau_load:tau)
    s.Dc_motor.w

let test_motor_time_constants () =
  let p = Dc_motor.default in
  check_float 1e-9 "electrical tau" 5e-4 (Dc_motor.electrical_time_constant p);
  Alcotest.(check bool) "mech >> elec" true
    (Dc_motor.mechanical_time_constant p
     > 10.0 *. Dc_motor.electrical_time_constant p)

let test_motor_theta_integrates_speed () =
  let p = Dc_motor.default in
  let s = run_motor p ~u:12.0 ~tau:0.0 ~t_end:0.3 in
  (* after the transient, theta ~ w_ss * (t - t_startup); crude bound *)
  check_bool "theta positive and bounded" true
    (s.Dc_motor.theta > 0.0 && s.Dc_motor.theta < s.Dc_motor.w *. 0.3 +. 1.0)

let test_encoder_counts_per_rev () =
  let e = Encoder.create ~lines_per_rev:100 () in
  check_int "x4 counts" 400 (Encoder.counts_per_rev e);
  check_int "one rev" 400 (Encoder.count_of_angle e ~theta:(2.0 *. Float.pi));
  check_int "half rev" 200 (Encoder.count_of_angle e ~theta:Float.pi);
  check_int "negative" (-200) (Encoder.count_of_angle e ~theta:(-.Float.pi))

let test_encoder_quadrature_sequence () =
  let e = Encoder.create ~lines_per_rev:100 () in
  (* within one line the (A,B) sequence must be the gray code 11,01,00,10
     (A leads B) as the angle increases *)
  let line_angle = 2.0 *. Float.pi /. 100.0 in
  let states =
    List.map
      (fun k ->
        let theta = (0.125 +. (0.25 *. float_of_int k)) *. line_angle in
        let a, b, _ = Encoder.signals e ~theta in
        (a, b))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (pair bool bool)))
    "quadrature sequence"
    [ (true, false); (true, true); (false, true); (false, false) ]
    states

let test_encoder_index_pulse () =
  let e = Encoder.create ~lines_per_rev:100 () in
  let _, _, idx0 = Encoder.signals e ~theta:1e-4 in
  let _, _, idx_half = Encoder.signals e ~theta:Float.pi in
  check_bool "index at zero" true idx0;
  check_bool "no index elsewhere" false idx_half

let test_encoder_speed_estimate () =
  let e = Encoder.create ~lines_per_rev:100 () in
  let w = 100.0 and dt = 1e-3 in
  let c0 = Encoder.count_of_angle e ~theta:0.0 in
  let c1 = Encoder.count_of_angle e ~theta:(w *. dt) in
  let est = Encoder.speed_of_counts e ~dt c0 c1 in
  (* quantisation bounds the estimate error to one count per period *)
  check_bool "speed within one count" true
    (Float.abs (est -. w) <= 2.0 *. Float.pi /. 400.0 /. dt +. 1e-9)

let test_power_stage_ideal () =
  let s = Power_stage.ideal ~u_supply:24.0 in
  check_float 1e-12 "50% duty" 12.0 (Power_stage.output_voltage s ~duty:0.5 ~i:0.0);
  check_float 1e-12 "clamped high" 24.0 (Power_stage.output_voltage s ~duty:1.5 ~i:0.0);
  check_float 1e-12 "clamped low" 0.0 (Power_stage.output_voltage s ~duty:(-0.2) ~i:0.0);
  check_float 1e-12 "inverse" 0.5 (Power_stage.duty_of_voltage s 12.0)

let test_power_stage_bipolar () =
  let s = Power_stage.bipolar ~u_supply:24.0 in
  check_float 1e-12 "mid duty is 0V" 0.0 (Power_stage.output_voltage s ~duty:0.5 ~i:0.0);
  check_float 1e-12 "full reverse" (-24.0) (Power_stage.output_voltage s ~duty:0.0 ~i:0.0);
  check_float 1e-12 "inverse of -12" 0.25 (Power_stage.duty_of_voltage s (-12.0))

let test_power_stage_nonideal () =
  let s = { (Power_stage.ideal ~u_supply:24.0) with Power_stage.r_on = 0.5 } in
  check_float 1e-12 "resistive drop" (12.0 -. (0.5 *. 2.0))
    (Power_stage.output_voltage s ~duty:0.5 ~i:2.0)

let test_thermal_steady_state () =
  let p = Thermal.default in
  let t_inf = Thermal.steady_state p ~p_in:50.0 in
  check_float 1e-9 "analytic" (25.0 +. (50.0 *. 2.0)) t_inf;
  (* exact exponential step: after 5 tau we are within 1 % *)
  let tau = Thermal.time_constant p in
  let t = Thermal.step p ~p_in:50.0 ~h:(5.0 *. tau) p.Thermal.t_amb in
  check_bool "converged after 5 tau" true (Float.abs (t -. t_inf) < 0.01 *. (t_inf -. 25.0))

let test_thermal_power_clamp () =
  let p = Thermal.default in
  check_float 1e-9 "clamped at p_max"
    (Thermal.steady_state p ~p_in:p.Thermal.p_max)
    (Thermal.steady_state p ~p_in:(10.0 *. p.Thermal.p_max))

let test_load_profiles () =
  let open Load_profile in
  Alcotest.(check (float 0.0)) "no load" 0.0 (torque No_load ~time:1.0 ~w:10.0);
  Alcotest.(check (float 0.0)) "constant" 0.5 (torque (Constant 0.5) ~time:0.0 ~w:0.0);
  Alcotest.(check (float 1e-12)) "viscous" 0.02 (torque (Viscous 2e-3) ~time:0.0 ~w:10.0);
  Alcotest.(check (float 0.0)) "step before" 0.0
    (torque (Step { at = 1.0; torque = 0.3 }) ~time:0.5 ~w:0.0);
  Alcotest.(check (float 0.0)) "step after" 0.3
    (torque (Step { at = 1.0; torque = 0.3 }) ~time:1.5 ~w:0.0);
  Alcotest.(check (float 0.0)) "pulse inside" 0.2
    (torque (Pulse { start = 1.0; stop = 2.0; torque = 0.2 }) ~time:1.5 ~w:0.0);
  Alcotest.(check (float 1e-12)) "sum" 0.52
    (torque (Sum [ Constant 0.5; Viscous 2e-3 ]) ~time:0.0 ~w:10.0)

let prop_encoder_count_monotone =
  QCheck2.Test.make ~name:"encoder count monotone in angle" ~count:200
    QCheck2.Gen.(pair (float_range (-50.0) 50.0) (float_range 0.0 1.0))
    (fun (theta, dtheta) ->
      let e = Encoder.create () in
      Encoder.count_of_angle e ~theta:(theta +. dtheta)
      >= Encoder.count_of_angle e ~theta)

let prop_encoder_angle_roundtrip =
  QCheck2.Test.make ~name:"angle_of_count inverts count within resolution"
    ~count:200
    QCheck2.Gen.(float_range (-20.0) 20.0)
    (fun theta ->
      let e = Encoder.create () in
      let c = Encoder.count_of_angle e ~theta in
      let back = Encoder.angle_of_count e c in
      theta -. back >= -.1e-9 && theta -. back < (2.0 *. Float.pi /. 400.0) +. 1e-9)

let suite =
  [
    Alcotest.test_case "motor steady state" `Quick test_motor_steady_state;
    Alcotest.test_case "motor loaded" `Quick test_motor_loaded_steady_state;
    Alcotest.test_case "motor time constants" `Quick test_motor_time_constants;
    Alcotest.test_case "motor theta" `Quick test_motor_theta_integrates_speed;
    Alcotest.test_case "encoder counts/rev" `Quick test_encoder_counts_per_rev;
    Alcotest.test_case "encoder quadrature" `Quick test_encoder_quadrature_sequence;
    Alcotest.test_case "encoder index" `Quick test_encoder_index_pulse;
    Alcotest.test_case "encoder speed" `Quick test_encoder_speed_estimate;
    Alcotest.test_case "power stage ideal" `Quick test_power_stage_ideal;
    Alcotest.test_case "power stage bipolar" `Quick test_power_stage_bipolar;
    Alcotest.test_case "power stage non-ideal" `Quick test_power_stage_nonideal;
    Alcotest.test_case "thermal steady state" `Quick test_thermal_steady_state;
    Alcotest.test_case "thermal clamp" `Quick test_thermal_power_clamp;
    Alcotest.test_case "load profiles" `Quick test_load_profiles;
    QCheck_alcotest.to_alcotest prop_encoder_count_monotone;
    QCheck_alcotest.to_alcotest prop_encoder_angle_roundtrip;
  ]
