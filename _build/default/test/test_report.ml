(* Reporting utilities: tables, statistics, plots. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))
let contains = Astring_contains.contains

let test_table_render () =
  let t = Table.create ~title:"demo" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_sep t;
  Table.add_row t [ "beta"; "22.0" ];
  let s = Table.render t in
  check_bool "title" true (contains s "demo");
  check_bool "header" true (contains s "name");
  check_bool "rows" true (contains s "alpha" && contains s "22.0");
  (* numeric column right-aligned: " 1.5" with leading spaces *)
  check_bool "alignment" true (contains s "  1.5")

let test_table_arity_check () =
  let t = Table.create [ "a"; "b" ] in
  match Table.add_row t [ "only one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong arity accepted"

let test_table_cells () =
  check_bool "cell_f" true (Table.cell_f ~dec:2 3.14159 = "3.14");
  check_bool "cell_pct" true (Table.cell_pct 0.123 = "12.3 %")

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_int "n" 5 s.Stats.n;
  check_float 1e-12 "mean" 3.0 s.Stats.mean;
  check_float 1e-12 "min" 1.0 s.Stats.min;
  check_float 1e-12 "max" 5.0 s.Stats.max;
  check_float 1e-12 "median" 3.0 s.Stats.p50;
  check_float 1e-9 "stdev" (sqrt 2.5) s.Stats.stdev

let test_percentile_interpolation () =
  let a = [| 0.0; 10.0 |] in
  check_float 1e-12 "p25" 2.5 (Stats.percentile a 0.25);
  check_float 1e-12 "p100" 10.0 (Stats.percentile a 1.0)

let test_jitter () =
  check_float 1e-12 "peak to peak" 4.0 (Stats.jitter [ 1.0; 3.0; 5.0 ]);
  check_float 1e-12 "empty" 0.0 (Stats.jitter [])

let test_empty_stats_rejected () =
  match Stats.summarize [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sample accepted"

let test_ascii_plot () =
  let series =
    [
      { Ascii_plot.label = "sin";
        points = List.init 50 (fun i -> (float_of_int i /. 10.0, sin (float_of_int i /. 10.0))) };
      { Ascii_plot.label = "cos";
        points = List.init 50 (fun i -> (float_of_int i /. 10.0, cos (float_of_int i /. 10.0))) };
    ]
  in
  let s = Ascii_plot.plot ~title:"waves" series in
  check_bool "title" true (contains s "waves");
  check_bool "legend" true (contains s "sin" && contains s "cos");
  check_bool "axis" true (contains s "+----");
  check_bool "marks present" true (contains s "*" && contains s "+")

let test_ascii_plot_degenerate () =
  (* constant series must not divide by zero *)
  let s =
    Ascii_plot.plot [ { Ascii_plot.label = "flat"; points = [ (0.0, 1.0); (1.0, 1.0) ] } ]
  in
  check_bool "renders" true (String.length s > 0)

let test_csv_export () =
  let a = [ (0.0, 1.0); (0.1, 2.0) ] and b = [ (0.05, 9.0); (0.1, 8.0) ] in
  let header, rows = Trace_export.align [ ("a", a); ("b", b) ] in
  Alcotest.(check (list string)) "header" [ "a"; "b" ] header;
  Alcotest.(check int) "union of stamps" 3 (List.length rows);
  (* carry-forward semantics at t=0.05: a holds 1.0, b becomes 9.0 *)
  (match List.nth rows 1 with
  | t, [ va; vb ] ->
      check_float 1e-12 "t" 0.05 t;
      check_float 1e-12 "a held" 1.0 va;
      check_float 1e-12 "b fresh" 9.0 vb
  | _ -> Alcotest.fail "row shape");
  let csv = Trace_export.csv_of_series ~header rows in
  check_bool "csv header" true (contains csv "time,a,b");
  check_bool "csv row" true (contains csv "0.1,2,8")

let test_csv_write () =
  let path = Filename.temp_file "ecsd" ".csv" in
  Trace_export.write_csv ~path [ ("x", [ (0.0, 1.0) ]) ];
  let ic = open_in path in
  let line1 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header line" "time,x" line1

let suite =
  [
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "csv write" `Quick test_csv_write;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_check;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "percentiles" `Quick test_percentile_interpolation;
    Alcotest.test_case "jitter" `Quick test_jitter;
    Alcotest.test_case "empty stats" `Quick test_empty_stats_rejected;
    Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
    Alcotest.test_case "plot degenerate" `Quick test_ascii_plot_degenerate;
  ]
