(* Response-time analysis, cross-validated against the virtual MCU. *)

let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let t name period wcet prio = { Rta.tname = name; period; wcet; prio }

let test_utilization_and_bound () =
  let tasks = [ t "a" 10.0 2.0 1; t "b" 20.0 4.0 2 ] in
  check_float 1e-12 "utilization" 0.4 (Rta.utilization tasks);
  check_float 1e-9 "LL bound n=2" (2.0 *. (sqrt 2.0 -. 1.0)) (Rta.rm_bound 2);
  check_bool "bound decreasing" true (Rta.rm_bound 5 < Rta.rm_bound 2)

let test_preemptive_textbook () =
  (* C=(1,2,3), T=(4,8,16), rate-monotonic priorities:
     R1 = 1; R2 = 3; R3 = 7 (window of 7 holds 2 jobs of t1 + 1 of t2) *)
  let tasks = [ t "t1" 4.0 1.0 1; t "t2" 8.0 2.0 2; t "t3" 16.0 3.0 3 ] in
  match Rta.preemptive tasks with
  | [ v1; v2; v3 ] ->
      check_float 1e-9 "R1" 1.0 v1.Rta.response;
      check_float 1e-9 "R2" 3.0 v2.Rta.response;
      check_float 1e-9 "R3" 7.0 v3.Rta.response;
      check_bool "all schedulable" true
        (v1.Rta.schedulable && v2.Rta.schedulable && v3.Rta.schedulable)
  | _ -> Alcotest.fail "arity"

let test_preemptive_overload_diverges () =
  let tasks = [ t "a" 1.0 0.6 1; t "b" 1.0 0.6 2 ] in
  match Rta.preemptive tasks with
  | [ _; v ] ->
      check_bool "unbounded response" true (v.Rta.response = infinity);
      check_bool "unschedulable" false v.Rta.schedulable
  | _ -> Alcotest.fail "arity"

let test_non_preemptive_blocking () =
  (* the highest-priority task suffers the longest lower-priority WCET *)
  let tasks = [ t "hi" 10.0 1.0 1; t "lo" 100.0 5.0 2 ] in
  (match Rta.preemptive tasks with
  | [ v; _ ] -> check_float 1e-9 "preemptive: no blocking" 1.0 v.Rta.response
  | _ -> Alcotest.fail "arity");
  match Rta.non_preemptive tasks with
  | [ v; _ ] -> check_float 1e-9 "non-preemptive: blocked" 6.0 v.Rta.response
  | _ -> Alcotest.fail "arity"

let test_analyze_messages () =
  let bad = [ t "ctrl" 1.0 0.9 1; t "bg" 2.0 1.0 2 ] in
  (match Rta.analyze ~preemptive:true bad with
  | Error msg -> check_bool "names the task" true (Astring_contains.contains msg "bg")
  | Ok _ -> Alcotest.fail "overload accepted");
  match Rta.analyze ~preemptive:true [ t "a" 10.0 1.0 1 ] with
  | Ok [ v ] -> check_bool "ok" true v.Rta.schedulable
  | _ -> Alcotest.fail "single task"

let test_validation () =
  (match Rta.preemptive [ t "a" 1.0 0.1 1; t "b" 1.0 0.1 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate priorities accepted");
  match Rta.preemptive [ t "a" 0.0 0.1 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero period accepted"

(* The soundness check: the analytical worst case must dominate every
   response the virtual MCU actually produces, in both policies. *)
let observed_worst_response ~preemptive =
  let mcu = Mcu_db.mc56f8367 in
  let machine = Machine.create ~preemptive mcu in
  let mk_task name prio cycles ch period_s =
    let irq =
      Machine.register_irq machine ~name ~prio ~handler:(fun () ->
          { Machine.jname = name; cycles; action = (fun () -> ()); stack_bytes = 16 })
    in
    let timer = Timer_periph.create machine ~channel:ch in
    (* pick prescaler 1 when it fits the 16-bit counter, else 16 *)
    let cycles_p = Machine.cycles_of_time machine period_s in
    let prescaler = if cycles_p <= 65536 then 1 else 16 in
    Timer_periph.configure timer ~prescaler ~modulo:(cycles_p / prescaler);
    Timer_periph.on_overflow timer (fun () -> Machine.raise_irq machine irq);
    Timer_periph.start timer;
    irq
  in
  (* ctrl: 1 ms period, 150 us wcet, high prio; bg: 0.7 ms, 250 us, low *)
  let ctrl = mk_task "ctrl" 1 9000 0 1e-3 in
  let _bg = mk_task "bg" 5 15000 1 0.7e-3 in
  Machine.run_until_time machine 0.5;
  let st = Machine.stats_of machine ctrl in
  let f_cpu = mcu.Mcu_db.f_cpu_hz in
  let lat = float_of_int mcu.Mcu_db.irq_latency_cycles /. f_cpu in
  let exit_c = float_of_int mcu.Mcu_db.irq_exit_cycles /. f_cpu in
  (* observed response = release delay + entry latency + execution + exit *)
  List.fold_left
    (fun acc r -> Float.max acc ((r /. f_cpu) +. lat +. (9000.0 /. f_cpu) +. exit_c))
    0.0 st.Machine.response_cycles

let test_rta_bounds_machine () =
  let tasks = [ t "ctrl" 1e-3 (9020.0 /. 60e6) 1; t "bg" 0.7e-3 (15020.0 /. 60e6) 5 ] in
  let bound_np =
    match Rta.non_preemptive tasks with v :: _ -> v.Rta.response | [] -> nan
  in
  let bound_p =
    match Rta.preemptive tasks with v :: _ -> v.Rta.response | [] -> nan
  in
  let obs_np = observed_worst_response ~preemptive:false in
  let obs_p = observed_worst_response ~preemptive:true in
  check_bool
    (Printf.sprintf "non-preemptive bound sound (%.1f us >= %.1f us)"
       (bound_np *. 1e6) (obs_np *. 1e6))
    true (bound_np >= obs_np);
  check_bool
    (Printf.sprintf "preemptive bound sound (%.1f us >= %.1f us)"
       (bound_p *. 1e6) (obs_p *. 1e6))
    true (bound_p >= obs_p);
  check_bool "preemption helps the high-priority task" true (bound_p < bound_np)

let suite =
  [
    Alcotest.test_case "utilization + LL bound" `Quick test_utilization_and_bound;
    Alcotest.test_case "preemptive textbook" `Quick test_preemptive_textbook;
    Alcotest.test_case "overload diverges" `Quick test_preemptive_overload_diverges;
    Alcotest.test_case "non-preemptive blocking" `Quick test_non_preemptive_blocking;
    Alcotest.test_case "analyze messages" `Quick test_analyze_messages;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "RTA bounds the machine" `Quick test_rta_bounds_machine;
  ]
