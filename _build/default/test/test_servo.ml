(* Case-study integration (the paper's section 7 demo, end to end). *)

let check_bool = Alcotest.(check bool)

let test_mil_tracks_schedule () =
  let b = Servo_system.build () in
  let speed, _ = Servo_system.mil_run b ~t_end:0.35 in
  (match List.rev speed with
  | (_, w) :: _ -> Alcotest.(check (float 2.0)) "first set-point" 50.0 w
  | [] -> Alcotest.fail "no trace");
  let w_end = Servo_system.mil_speed_at b ~t_end:1.1 in
  Alcotest.(check (float 2.0)) "final set-point" 150.0 w_end

let test_mil_rejects_load_step () =
  let b = Servo_system.build () in
  let speed, _ = Servo_system.mil_run b ~t_end:1.6 in
  (* the 4 mN.m load step at 1.2 s must be rejected by the PI loop *)
  let after_load = List.filter (fun (t, _) -> t > 1.5) speed in
  let avg =
    List.fold_left (fun a (_, w) -> a +. w) 0.0 after_load
    /. float_of_int (List.length after_load)
  in
  Alcotest.(check (float 3.0)) "recovered from the load step" 150.0 avg;
  (* and there must have been a visible dip right after the step *)
  let dip =
    List.fold_left
      (fun acc (t, w) -> if t > 1.2 && t < 1.3 then Float.min acc w else acc)
      infinity speed
  in
  check_bool "load dip visible" true (dip < 149.0)

let test_step_metrics_reasonable () =
  let cfg =
    { Servo_system.default_config with
      Servo_system.setpoints = [ (0.0, 100.0) ];
      load = Load_profile.No_load }
  in
  let b = Servo_system.build ~config:cfg () in
  let speed, _ = Servo_system.mil_run b ~t_end:0.4 in
  let si = Metrics.step_info ~sp:100.0 speed in
  check_bool "rise time in tens of ms" true
    (si.Metrics.rise_time > 5e-3 && si.Metrics.rise_time < 0.1);
  check_bool "overshoot small" true (si.Metrics.overshoot < 0.1);
  check_bool "settles" true (Float.is_finite si.Metrics.settling_time);
  check_bool "sse small" true (si.Metrics.steady_state_error < 1.0)

let test_fixed_vs_float_close () =
  let fl = Servo_system.build () in
  let fx =
    Servo_system.build
      ~config:{ Servo_system.default_config with Servo_system.variant = Servo_system.Fixed_pid }
      ()
  in
  let sp_fl, _ = Servo_system.mil_run fl ~t_end:1.0 in
  let sp_fx, _ = Servo_system.mil_run fx ~t_end:1.0 in
  let dev = Metrics.max_deviation sp_fl sp_fx in
  check_bool "fixed within 5 rad/s of float" true (dev < 5.0);
  check_bool "fixed not identical (quantisation visible)" true (dev > 1e-6)

let test_duty_saturation_during_transient () =
  let b = Servo_system.build () in
  let _, duty = Servo_system.mil_run b ~t_end:1.1 in
  check_bool "duty within [0,1]" true
    (List.for_all (fun (_, d) -> d >= 0.0 && d <= 1.0) duty);
  (* at the 150 rad/s plateau the PWM works at roughly a third of the
     supply: w/k_v = 150/19.8 rad/s/V over 24 V *)
  check_bool "plateau duty plausible" true
    (List.exists (fun (_, d) -> d > 0.28) duty)

let test_mode_switch_drops_to_manual () =
  (* pressing the button switches to manual 30 % duty: speed diverges from
     the set-point towards the open-loop speed for that duty *)
  let cfg =
    { Servo_system.default_config with
      Servo_system.setpoints = [ (0.0, 100.0) ];
      load = Load_profile.No_load }
  in
  let b = Servo_system.build ~config:cfg () in
  (* rebuild the closed loop with a button press at t = 0.5 s *)
  let m = b.Servo_system.closed_loop in
  let sim = Sim.create (Compile.compile m) in
  let btn = Model.find m "button" in
  Sim.probe_named sim b.Servo_system.speed_block 0;
  Sim.run sim ~until:0.5 ();
  Sim.override_output sim (btn, 0) (Some (Value.F 1.0));
  Sim.run sim ~until:1.2 ();
  let speed = Sim.trace_named sim b.Servo_system.speed_block 0 in
  let final = match List.rev speed with (_, w) :: _ -> w | [] -> nan in
  let open_loop =
    Dc_motor.steady_state_speed Dc_motor.default ~u:(0.3 *. 24.0) ~tau_load:0.0
  in
  Alcotest.(check (float 10.0)) "manual mode open-loop speed" open_loop final

let test_without_mode_logic () =
  let cfg = { Servo_system.default_config with Servo_system.with_mode_logic = false } in
  let b = Servo_system.build ~config:cfg () in
  let w = Servo_system.mil_speed_at b ~t_end:1.1 in
  Alcotest.(check (float 2.0)) "tracks without chart" 150.0 w

let test_project_inspector_case_study () =
  let b = Servo_system.build () in
  let s = Inspector.render_project b.Servo_system.project in
  List.iter
    (fun bean -> check_bool ("lists " ^ bean) true (Astring_contains.contains s bean))
    [ "TI1"; "PWM1"; "QD1"; "SW1"; "AS1" ]

let suite =
  [
    Alcotest.test_case "tracks set-point schedule" `Quick test_mil_tracks_schedule;
    Alcotest.test_case "rejects load step" `Quick test_mil_rejects_load_step;
    Alcotest.test_case "step metrics" `Quick test_step_metrics_reasonable;
    Alcotest.test_case "fixed vs float" `Quick test_fixed_vs_float_close;
    Alcotest.test_case "duty saturation" `Quick test_duty_saturation_during_transient;
    Alcotest.test_case "mode switch" `Quick test_mode_switch_drops_to_manual;
    Alcotest.test_case "no mode logic variant" `Quick test_without_mode_logic;
    Alcotest.test_case "project inspector" `Quick test_project_inspector_case_study;
  ]
