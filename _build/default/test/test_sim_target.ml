(* The Linux simulator target (§8): generated plant code + POSIX runtime.
   Because a C compiler is available here, these tests do what the paper's
   build step does: actually compile the generated sources — and for the
   plant step, execute them and compare against the OCaml simulation. *)

let check_bool = Alcotest.(check bool)
let contains = Astring_contains.contains

let have_gcc = Sys.command "command -v gcc > /dev/null 2>&1" = 0

let with_tmpdir f =
  let dir = Filename.temp_file "ecsd_sim" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let sh dir cmd = Sys.command (Printf.sprintf "cd %s && %s" (Filename.quote dir) cmd)

let plant_artifacts () =
  let m = Servo_system.plant_model Servo_system.default_config in
  let comp = Compile.compile ~default_dt:1e-4 m in
  (m, comp, Sim_target.generate ~name:"servo" comp)

let test_structure () =
  let _, _, a = plant_artifacts () in
  let main = C_print.print_unit a.Sim_target.sim_main_c in
  check_bool "termios serial" true (contains main "cfmakeraw");
  check_bool "real-time pacing" true (contains main "clock_nanosleep");
  check_bool "crc on the host side" true (contains main "crc16");
  check_bool "overridable mapping" true (contains main "sim_read_sensors");
  let plant = C_print.print_unit a.Sim_target.plant_c in
  check_bool "motor rk4" true (contains plant "held-input RK4");
  check_bool "plant step fn" true (contains plant "void servo_plant_step(void)");
  check_bool "report sane" true
    (a.Sim_target.report.Sim_target.plant_loc > 40
     && a.Sim_target.report.Sim_target.runtime_loc > 60)

let test_compiles_with_gcc () =
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let _, _, a = plant_artifacts () in
        let files = Sim_target.write_to_dir a ~dir in
        check_bool "files written" true (List.length files = 4);
        check_bool "plant compiles" true
          (sh dir "gcc -c -Wall -Werror servo_plant.c -o plant.o 2> gcc.log" = 0
           || (ignore (Sys.command (Printf.sprintf "cat %s/gcc.log 1>&2" dir)); false));
        check_bool "runtime compiles" true
          (sh dir "gcc -c sim_main.c -o sim.o 2>> gcc.log" = 0
           || (ignore (Sys.command (Printf.sprintf "cat %s/gcc.log 1>&2" dir)); false)))

let test_generated_plant_matches_ocaml () =
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let m, comp, a = plant_artifacts () in
        ignore (Sim_target.write_to_dir a ~dir);
        (* a driver that steps the generated plant at 50 % duty for 0.2 s
           and prints the final speed *)
        let driver =
          {|#include <stdio.h>
#include "servo_plant.h"
int main(void) {
  int k;
  servo_plant_initialize();
  /* one extra iteration: Y is computed in the output phase, so the
     k-th print reflects k-1 state updates */
  for (k = 0; k < 2001; ++k) {
    servo_U.in0 = 0.5;
    servo_plant_step();
  }
  printf("%.9f\n", servo_Y.out1);
  return 0;
}|}
        in
        let oc = open_out (Filename.concat dir "driver.c") in
        output_string oc driver;
        close_out oc;
        check_bool "driver builds" true
          (sh dir "gcc -O2 -o driver driver.c servo_plant.c -lm 2> gcc.log" = 0
           || (ignore (Sys.command (Printf.sprintf "cat %s/gcc.log 1>&2" dir)); false));
        let ic = Unix.open_process_in (Printf.sprintf "cd %s && ./driver" (Filename.quote dir)) in
        let line = input_line ic in
        ignore (Unix.close_process_in ic);
        let w_c = float_of_string line in
        (* the same scenario through the OCaml engine *)
        let sim = Sim.create comp in
        let duty_in = Model.find m "duty_in" in
        Sim.override_output sim (duty_in, 0) (Some (Value.F 0.5));
        Sim.run sim ~until:0.2 ();
        let w_ml = Value.to_float (Sim.value_named sim "motor" 0) in
        check_bool
          (Printf.sprintf "generated C (%.4f) matches OCaml (%.4f)" w_c w_ml)
          true
          (Float.abs (w_c -. w_ml) < 1e-6 *. Float.max 1.0 (Float.abs w_ml)))

let test_embedded_code_compiles () =
  (* the deployment build (application + HAL) must be valid C too *)
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let b = Servo_system.build () in
        let comp = Compile.compile b.Servo_system.controller in
        let a = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
        let files = Target.write_to_dir a ~dir in
        let c_files =
          List.filter (fun f -> Filename.check_suffix f ".c") files
          |> List.map Filename.basename
        in
        List.iter
          (fun f ->
            check_bool (f ^ " compiles") true
              (sh dir (Printf.sprintf "gcc -c -I. %s -o /dev/null 2> gcc.log" f) = 0
               || (ignore (Sys.command (Printf.sprintf "echo '== %s =='; cat %s/gcc.log 1>&2" f dir)); false)))
          c_files)

let test_pil_code_compiles () =
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let cfg = { Servo_system.default_config with Servo_system.control_period = 5e-3 } in
        let b = Servo_system.build ~config:cfg () in
        let comp = Compile.compile b.Servo_system.controller in
        let a = Pil_target.generate ~name:"servo" ~project:b.Servo_system.project comp in
        let files = Target.write_to_dir a ~dir in
        let c_files =
          List.filter (fun f -> Filename.check_suffix f ".c") files
          |> List.map Filename.basename
        in
        List.iter
          (fun f ->
            check_bool (f ^ " compiles") true
              (sh dir (Printf.sprintf "gcc -c -I. %s -o /dev/null 2> gcc.log" f) = 0
               || (ignore (Sys.command (Printf.sprintf "echo '== %s =='; cat %s/gcc.log 1>&2" f dir)); false)))
          c_files)

let test_autosar_pil_code_compiles () =
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let cfg =
          { Servo_system.default_config with
            Servo_system.block_set = Servo_system.Autosar_blocks;
            control_period = 5e-3 }
        in
        let b = Servo_system.build ~config:cfg () in
        let comp = Compile.compile b.Servo_system.controller in
        let a = Pil_target.generate ~name:"servo" ~project:b.Servo_system.project comp in
        let files = Target.write_to_dir a ~dir in
        let c_files =
          List.filter (fun f -> Filename.check_suffix f ".c") files
          |> List.map Filename.basename
        in
        List.iter
          (fun f ->
            check_bool (f ^ " compiles") true
              (sh dir (Printf.sprintf "gcc -c -I. %s -o /dev/null 2> gcc.log" f) = 0
               || (ignore (Sys.command (Printf.sprintf "echo '== %s =='; cat %s/gcc.log 1>&2" f dir)); false)))
          c_files)

let test_autosar_code_compiles () =
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let cfg =
          { Servo_system.default_config with
            Servo_system.block_set = Servo_system.Autosar_blocks }
        in
        let b = Servo_system.build ~config:cfg () in
        let comp = Compile.compile b.Servo_system.controller in
        let a = Target.generate ~name:"servo" ~project:b.Servo_system.project comp in
        let files = Target.write_to_dir a ~dir in
        let c_files =
          List.filter (fun f -> Filename.check_suffix f ".c") files
          |> List.map Filename.basename
        in
        List.iter
          (fun f ->
            check_bool (f ^ " compiles") true
              (sh dir (Printf.sprintf "gcc -c -I. %s -o /dev/null 2> gcc.log" f) = 0
               || (ignore (Sys.command (Printf.sprintf "echo '== %s =='; cat %s/gcc.log 1>&2" f dir)); false)))
          c_files)

let test_generated_tf_plant_matches_ocaml () =
  (* the held-input RK4 emitter (TransferFcn/StateSpace) against the
     engine's global solver on a second-order lag *)
  if not have_gcc then ()
  else
    with_tmpdir (fun dir ->
        let m = Model.create "lag2" in
        let inp = Model.add m ~name:"u_in" (Routing_blocks.inport 0) in
        let tf =
          Model.add m ~name:"tf"
            (Continuous_blocks.transfer_fcn ~num:[| 2.0 |]
               ~den:[| 0.01; 0.25; 1.0 |])
        in
        let outp = Model.add m ~name:"y_out" (Routing_blocks.outport 0) in
        Model.connect m ~src:(inp, 0) ~dst:(tf, 0);
        Model.connect m ~src:(tf, 0) ~dst:(outp, 0);
        let comp = Compile.compile ~default_dt:1e-3 m in
        let a = Sim_target.generate ~name:"lag2" comp in
        ignore (Sim_target.write_to_dir a ~dir);
        let driver =
          {|#include <stdio.h>
#include "lag2_plant.h"
int main(void) {
  int k;
  lag2_plant_initialize();
  for (k = 0; k < 1001; ++k) {
    lag2_U.in0 = 1.0;
    lag2_plant_step();
  }
  printf("%.9f\n", lag2_Y.out0);
  return 0;
}|}
        in
        let oc = open_out (Filename.concat dir "driver.c") in
        output_string oc driver;
        close_out oc;
        check_bool "tf driver builds" true
          (sh dir "gcc -O2 -o driver driver.c lag2_plant.c -lm 2> gcc.log" = 0
           || (ignore (Sys.command (Printf.sprintf "cat %s/gcc.log 1>&2" dir)); false));
        let ic = Unix.open_process_in (Printf.sprintf "cd %s && ./driver" (Filename.quote dir)) in
        let y_c = float_of_string (input_line ic) in
        ignore (Unix.close_process_in ic);
        let sim = Sim.create comp in
        Sim.override_output sim (Model.find m "u_in", 0) (Some (Value.F 1.0));
        Sim.run sim ~until:1.0 ();
        let y_ml = Value.to_float (Sim.value_named sim "tf" 0) in
        check_bool
          (Printf.sprintf "C (%.6f) ~ OCaml (%.6f)" y_c y_ml)
          true
          (Float.abs (y_c -. y_ml) < 1e-6))

let suite =
  [
    Alcotest.test_case "tf plant == OCaml sim" `Quick
      test_generated_tf_plant_matches_ocaml;
    Alcotest.test_case "simulator structure" `Quick test_structure;
    Alcotest.test_case "simulator compiles (gcc)" `Quick test_compiles_with_gcc;
    Alcotest.test_case "generated plant == OCaml sim" `Quick
      test_generated_plant_matches_ocaml;
    Alcotest.test_case "embedded code compiles (gcc)" `Quick test_embedded_code_compiles;
    Alcotest.test_case "PIL code compiles (gcc)" `Quick test_pil_code_compiles;
    Alcotest.test_case "AUTOSAR code compiles (gcc)" `Quick test_autosar_code_compiles;
    Alcotest.test_case "AUTOSAR PIL code compiles (gcc)" `Quick
      test_autosar_pil_code_compiles;
  ]
