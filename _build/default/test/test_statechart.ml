(* Hierarchical state machine semantics. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let toggle_chart () =
  Chart.create
    [
      Chart.state ~initial:true "A";
      Chart.state "B";
    ]
    [
      Chart.transition ~trigger:"go" ~src:"A" ~dst:"B" ();
      Chart.transition ~trigger:"go" ~src:"B" ~dst:"A" ();
    ]

let test_basic_toggle () =
  let c = toggle_chart () in
  Chart.start c ();
  check_string "initial" "A" (Chart.active_leaf c);
  check_bool "fires" true (Chart.dispatch c () "go");
  check_string "toggled" "B" (Chart.active_leaf c);
  check_bool "unknown event ignored" false (Chart.dispatch c () "nope");
  check_string "unchanged" "B" (Chart.active_leaf c)

let test_guards () =
  let enabled = ref false in
  let c =
    Chart.create
      [ Chart.state ~initial:true "A"; Chart.state "B" ]
      [ Chart.transition ~trigger:"go" ~guard:(fun () -> !enabled) ~src:"A" ~dst:"B" () ]
  in
  Chart.start c ();
  check_bool "guard blocks" false (Chart.dispatch c () "go");
  enabled := true;
  check_bool "guard passes" true (Chart.dispatch c () "go")

let test_entry_exit_order () =
  let log = ref [] in
  let push s _ = log := s :: !log in
  let c =
    Chart.create
      [
        Chart.state ~initial:true ~on_entry:(push "enter-P") ~on_exit:(push "exit-P") "P";
        Chart.state ~parent:"P" ~initial:true ~on_entry:(push "enter-A")
          ~on_exit:(push "exit-A") "A";
        Chart.state ~parent:"P" ~on_entry:(push "enter-B") ~on_exit:(push "exit-B") "B";
        Chart.state ~on_entry:(push "enter-Q") ~on_exit:(push "exit-Q") "Q";
      ]
      [
        Chart.transition ~trigger:"inner" ~src:"A" ~dst:"B" ();
        Chart.transition ~trigger:"outer" ~src:"B" ~dst:"Q" ();
      ]
  in
  Chart.start c ();
  Alcotest.(check (list string)) "start enters outside-in" [ "enter-P"; "enter-A" ]
    (List.rev !log);
  log := [];
  ignore (Chart.dispatch c () "inner");
  (* A -> B within P: P must not exit *)
  Alcotest.(check (list string)) "sibling transition" [ "exit-A"; "enter-B" ]
    (List.rev !log);
  log := [];
  ignore (Chart.dispatch c () "outer");
  Alcotest.(check (list string)) "cross-composite exits inside-out"
    [ "exit-B"; "exit-P"; "enter-Q" ]
    (List.rev !log)

let test_initial_leaf_descent () =
  let c =
    Chart.create
      [
        Chart.state ~initial:true "Top";
        Chart.state ~parent:"Top" ~initial:true "Mid";
        Chart.state ~parent:"Mid" ~initial:true "Leaf";
        Chart.state ~parent:"Mid" "Other";
      ]
      []
  in
  Chart.start c ();
  check_string "descends to the leaf" "Leaf" (Chart.active_leaf c);
  check_bool "ancestors active" true (Chart.is_in c "Top" && Chart.is_in c "Mid")

let test_transition_to_composite () =
  let c =
    Chart.create
      [
        Chart.state ~initial:true "Off";
        Chart.state "Run";
        Chart.state ~parent:"Run" ~initial:true "Slow";
        Chart.state ~parent:"Run" "Fast";
      ]
      [ Chart.transition ~trigger:"start" ~src:"Off" ~dst:"Run" () ]
  in
  Chart.start c ();
  ignore (Chart.dispatch c () "start");
  check_string "enters the initial child" "Slow" (Chart.active_leaf c)

let test_eventless_chain () =
  let c =
    Chart.create
      [ Chart.state ~initial:true "A"; Chart.state "B"; Chart.state "C" ]
      [
        Chart.transition ~trigger:"go" ~src:"A" ~dst:"B" ();
        Chart.transition ~src:"B" ~dst:"C" ();  (* eventless *)
      ]
  in
  Chart.start c ();
  ignore (Chart.dispatch c () "go");
  check_string "chained through B" "C" (Chart.active_leaf c)

let test_eventless_livelock_detected () =
  let c =
    Chart.create
      [ Chart.state ~initial:true "A"; Chart.state "B" ]
      [
        Chart.transition ~src:"A" ~dst:"B" ();
        Chart.transition ~src:"B" ~dst:"A" ();
      ]
  in
  Chart.start c ();
  (match Chart.tick c () with
  | exception Failure msg ->
      check_bool "mentions livelock" true (Astring_contains.contains msg "livelock")
  | _ -> Alcotest.fail "expected livelock failure")

let test_innermost_wins () =
  (* both the leaf and its parent have a transition on the same event;
     the leaf's must win *)
  let c =
    Chart.create
      [
        Chart.state ~initial:true "P";
        Chart.state ~parent:"P" ~initial:true "A";
        Chart.state "FromLeaf";
        Chart.state "FromParent";
      ]
      [
        Chart.transition ~trigger:"e" ~src:"P" ~dst:"FromParent" ();
        Chart.transition ~trigger:"e" ~src:"A" ~dst:"FromLeaf" ();
      ]
  in
  Chart.start c ();
  ignore (Chart.dispatch c () "e");
  check_string "leaf transition wins" "FromLeaf" (Chart.active_leaf c)

let test_parent_handles_when_leaf_does_not () =
  let c =
    Chart.create
      [
        Chart.state ~initial:true "P";
        Chart.state ~parent:"P" ~initial:true "A";
        Chart.state "Out";
      ]
      [ Chart.transition ~trigger:"e" ~src:"P" ~dst:"Out" () ]
  in
  Chart.start c ();
  check_bool "parent fires" true (Chart.dispatch c () "e");
  check_string "left the composite" "Out" (Chart.active_leaf c)

let test_shallow_history () =
  (* Run is a history composite: leaving to Off and returning resumes
     Fast, not the initial Slow *)
  let c =
    Chart.create
      [
        Chart.state ~initial:true "Off";
        Chart.state ~history:true "Run";
        Chart.state ~parent:"Run" ~initial:true "Slow";
        Chart.state ~parent:"Run" "Fast";
      ]
      [
        Chart.transition ~trigger:"start" ~src:"Off" ~dst:"Run" ();
        Chart.transition ~trigger:"stop" ~src:"Run" ~dst:"Off" ();
        Chart.transition ~trigger:"shift" ~src:"Slow" ~dst:"Fast" ();
      ]
  in
  Chart.start c ();
  ignore (Chart.dispatch c () "start");
  check_string "initial child first" "Slow" (Chart.active_leaf c);
  ignore (Chart.dispatch c () "shift");
  ignore (Chart.dispatch c () "stop");
  check_string "parked" "Off" (Chart.active_leaf c);
  ignore (Chart.dispatch c () "start");
  check_string "history resumes Fast" "Fast" (Chart.active_leaf c);
  (* reset clears the memory *)
  Chart.reset c;
  Chart.start c ();
  ignore (Chart.dispatch c () "start");
  check_string "fresh after reset" "Slow" (Chart.active_leaf c)

let test_no_history_takes_initial () =
  let c =
    Chart.create
      [
        Chart.state ~initial:true "Off";
        Chart.state "Run";
        Chart.state ~parent:"Run" ~initial:true "Slow";
        Chart.state ~parent:"Run" "Fast";
      ]
      [
        Chart.transition ~trigger:"start" ~src:"Off" ~dst:"Run" ();
        Chart.transition ~trigger:"stop" ~src:"Run" ~dst:"Off" ();
        Chart.transition ~trigger:"shift" ~src:"Slow" ~dst:"Fast" ();
      ]
  in
  Chart.start c ();
  ignore (Chart.dispatch c () "start");
  ignore (Chart.dispatch c () "shift");
  ignore (Chart.dispatch c () "stop");
  ignore (Chart.dispatch c () "start");
  check_string "no history: initial again" "Slow" (Chart.active_leaf c)

let test_validation_errors () =
  let dup () =
    ignore (Chart.create [ Chart.state ~initial:true "A"; Chart.state "A" ] [])
  in
  (match dup () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate state accepted");
  let no_initial () = ignore (Chart.create [ Chart.state "A" ] []) in
  (match no_initial () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing initial accepted");
  let bad_target () =
    ignore
      (Chart.create
         [ Chart.state ~initial:true "A" ]
         [ Chart.transition ~src:"A" ~dst:"Z" () ])
  in
  (match bad_target () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown target accepted")

let test_effects_and_context () =
  let counter = ref 0 in
  let c =
    Chart.create
      [ Chart.state ~initial:true "A"; Chart.state "B" ]
      [
        Chart.transition ~trigger:"go" ~effect:(fun r -> incr r) ~src:"A" ~dst:"B" ();
      ]
  in
  Chart.start c counter;
  ignore (Chart.dispatch c counter "go");
  Alcotest.(check int) "effect ran once" 1 !counter

let test_mode_chart_block_in_model () =
  (* the case study's manual/auto chart toggles on button rising edges *)
  let m = Model.create "modes" in
  let btn =
    Model.add m ~name:"btn" (Sources.pulse ~period:1.0 ~duty:0.2 ~amp:1.0 ())
  in
  let chart =
    Model.add m ~name:"chart"
      (Chart_block.block ~kind:"ModeChart" ~n_in:1 ~n_out:1 ~period:0.1
         Servo_system.mode_chart_factory)
  in
  Model.connect m ~src:(btn, 0) ~dst:(chart, 0);
  let sim = Sim.create (Compile.compile m) in
  Sim.probe_named sim "chart" 0;
  Sim.run sim ~until:2.05 ();
  let tr = Sim.trace_named sim "chart" 0 in
  (* starts Auto (1), first press at t=0 toggles to Manual (0), next
     rising edge at t=1.0 back to Auto *)
  let value_at t =
    List.find_map (fun (ti, v) -> if Float.abs (ti -. t) < 1e-9 then Some v else None) tr
  in
  Alcotest.(check (option (float 0.0))) "manual after first press" (Some 0.0)
    (value_at 0.5);
  Alcotest.(check (option (float 0.0))) "auto after second press" (Some 1.0)
    (value_at 1.5)

let suite =
  [
    Alcotest.test_case "basic toggle" `Quick test_basic_toggle;
    Alcotest.test_case "guards" `Quick test_guards;
    Alcotest.test_case "entry/exit order" `Quick test_entry_exit_order;
    Alcotest.test_case "initial descent" `Quick test_initial_leaf_descent;
    Alcotest.test_case "composite target" `Quick test_transition_to_composite;
    Alcotest.test_case "eventless chain" `Quick test_eventless_chain;
    Alcotest.test_case "livelock detected" `Quick test_eventless_livelock_detected;
    Alcotest.test_case "innermost wins" `Quick test_innermost_wins;
    Alcotest.test_case "parent fallback" `Quick test_parent_handles_when_leaf_does_not;
    Alcotest.test_case "shallow history" `Quick test_shallow_history;
    Alcotest.test_case "no history default" `Quick test_no_history_takes_initial;
    Alcotest.test_case "validation" `Quick test_validation_errors;
    Alcotest.test_case "effects" `Quick test_effects_and_context;
    Alcotest.test_case "mode chart block" `Quick test_mode_chart_block_in_model;
  ]
