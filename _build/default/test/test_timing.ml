(* The E6 timing-robustness machinery. *)

let check_bool = Alcotest.(check bool)

let test_baseline_healthy () =
  let o = Timing_study.run Timing_study.default in
  check_bool "no divergence" false o.Timing_study.diverged;
  check_bool "no oscillation" false o.Timing_study.sustained_oscillation;
  (* converges to the set-point *)
  match List.rev o.Timing_study.trajectory with
  | (_, w) :: _ -> Alcotest.(check (float 3.0)) "tracks" 100.0 w
  | [] -> Alcotest.fail "no trajectory"

let test_latency_degrades_monotonically () =
  let base = Timing_study.run Timing_study.default in
  let costs =
    List.map
      (fun l ->
        Timing_study.relative_cost ~baseline:base
          (Timing_study.run { Timing_study.default with Timing_study.latency_frac = l }))
      [ 0.0; 1.0; 2.0 ]
  in
  (match costs with
  | [ c0; c1; c2 ] ->
      check_bool "cost grows with latency" true (c0 < c1 && c1 < c2);
      check_bool "two periods clearly worse" true (c2 > 2.0)
  | _ -> Alcotest.fail "arity")

let test_jitter_degrades () =
  let base = Timing_study.run Timing_study.default in
  let jit =
    Timing_study.run { Timing_study.default with Timing_study.jitter_frac = 0.8 }
  in
  check_bool "jitter costs something" true
    (Timing_study.relative_cost ~baseline:base jit > 1.02)

let test_extreme_latency_destabilises () =
  (* the paper: "may in extreme cases lead to the instability" *)
  let o =
    Timing_study.run { Timing_study.default with Timing_study.latency_frac = 8.0 }
  in
  check_bool "unstable at 8 periods of delay" true (Timing_study.unstable o)

let test_sweep_shape () =
  let rows =
    Timing_study.degradation_sweep ~jitter_fracs:[ 0.0; 0.5 ]
      ~latency_fracs:[ 0.0; 1.0; 2.0 ] ()
  in
  Alcotest.(check int) "grid size" 6 (List.length rows);
  check_bool "row-major order" true
    (match rows with (0.0, 0.0, _) :: (0.0, 1.0, _) :: _ -> true | _ -> false)

let test_reproducible () =
  let a = Timing_study.run { Timing_study.default with Timing_study.jitter_frac = 0.5 } in
  let b = Timing_study.run { Timing_study.default with Timing_study.jitter_frac = 0.5 } in
  check_bool "same seed, same trajectory" true
    (a.Timing_study.trajectory = b.Timing_study.trajectory)

let suite =
  [
    Alcotest.test_case "baseline healthy" `Quick test_baseline_healthy;
    Alcotest.test_case "latency degrades" `Quick test_latency_degrades_monotonically;
    Alcotest.test_case "jitter degrades" `Quick test_jitter_degrades;
    Alcotest.test_case "extreme latency unstable" `Quick test_extreme_latency_destabilises;
    Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
    Alcotest.test_case "reproducible" `Quick test_reproducible;
  ]
