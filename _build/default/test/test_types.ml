(* Signal data types and runtime values. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float eps = Alcotest.(check (float eps))

let test_dtype_storage () =
  check_int "double bits" 64 (Dtype.bits Dtype.Double);
  check_int "uint16 bytes" 2 (Dtype.bytes Dtype.Uint16);
  check_int "bool as byte" 1 (Dtype.bytes Dtype.Bool);
  check_int "q15 container" 16 (Dtype.bits (Dtype.Fix Qformat.q15));
  check_int "ufix12 rounds up to 16" 16 (Dtype.bits (Dtype.Fix (Qformat.ufix 12 0)))

let test_c_names () =
  Alcotest.(check string) "uint16" "uint16_t" (Dtype.c_name Dtype.Uint16);
  Alcotest.(check string) "double" "double" (Dtype.c_name Dtype.Double);
  Alcotest.(check string) "q15 signed container" "int16_t"
    (Dtype.c_name (Dtype.Fix Qformat.q15));
  Alcotest.(check string) "ufix12 unsigned container" "uint16_t"
    (Dtype.c_name (Dtype.Fix (Qformat.ufix 12 0)))

let test_integer_ranges () =
  Alcotest.(check (option (pair int int))) "int8" (Some (-128, 127))
    (Dtype.integer_range Dtype.Int8);
  Alcotest.(check (option (pair int int))) "none for double" None
    (Dtype.integer_range Dtype.Double);
  check_float 1e-9 "uint16 max" 65535.0 (Dtype.max_float_value Dtype.Uint16);
  check_float 1e-9 "q15 min" (-1.0) (Dtype.min_float_value (Dtype.Fix Qformat.q15))

let test_value_quantisation () =
  check_int "uint8 saturates" 255 (Value.to_int (Value.of_float Dtype.Uint8 300.0));
  check_int "int16 saturates low" (-32768)
    (Value.to_int (Value.of_float Dtype.Int16 (-1e9)));
  check_int "rounds to nearest" 3 (Value.to_int (Value.of_float Dtype.Int32 2.6));
  check_bool "bool from nonzero" true (Value.to_bool (Value.of_float Dtype.Bool 0.1));
  check_int "nan to integer is 0" 0 (Value.to_int (Value.of_float Dtype.Int16 nan))

let test_value_fixed_payload () =
  let v = Value.of_float (Dtype.Fix Qformat.q15) 0.25 in
  check_int "raw q15" 8192 (Value.to_int v);
  check_float 1e-12 "real value" 0.25 (Value.to_float v);
  check_bool "dtype preserved" true
    (Dtype.equal (Value.dtype v) (Dtype.Fix Qformat.q15))

let test_value_cast () =
  let v = Value.of_float Dtype.Double 100.7 in
  check_int "double -> uint8" 101 (Value.to_int (Value.cast Dtype.Uint8 v));
  let q = Value.cast (Dtype.Fix Qformat.q7) (Value.of_float (Dtype.Fix Qformat.q15) 0.5) in
  check_int "q15 -> q7 raw" 64 (Value.to_int q)

let test_value_equal () =
  check_bool "typed equality" true
    (Value.equal (Value.of_int Dtype.Int16 5) (Value.of_int Dtype.Int16 5));
  check_bool "different types differ" false
    (Value.equal (Value.of_int Dtype.Int16 5) (Value.of_int Dtype.Int32 5));
  check_bool "zero helper" true
    (Value.equal (Value.zero Dtype.Uint16) (Value.of_int Dtype.Uint16 0))

let test_of_int_rejects_floats () =
  match Value.of_int Dtype.Double 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_int on a float type accepted"

let prop_of_float_within_type_bounds =
  QCheck2.Test.make ~name:"of_float lands within the type bounds" ~count:300
    QCheck2.Gen.(
      pair
        (oneofl [ Dtype.Int8; Dtype.Uint8; Dtype.Int16; Dtype.Uint16;
                  Dtype.Fix Qformat.q15; Dtype.Bool ])
        (float_range (-1e6) 1e6))
    (fun (dt, x) ->
      let v = Value.to_float (Value.of_float dt x) in
      v >= Dtype.min_float_value dt && v <= Dtype.max_float_value dt)

let prop_cast_idempotent =
  QCheck2.Test.make ~name:"cast to the same type is idempotent" ~count:300
    QCheck2.Gen.(
      pair
        (oneofl [ Dtype.Int16; Dtype.Uint8; Dtype.Fix Qformat.q15; Dtype.Double ])
        (float_range (-100.0) 100.0))
    (fun (dt, x) ->
      let v = Value.of_float dt x in
      Value.equal v (Value.cast dt v))

let suite =
  [
    Alcotest.test_case "dtype storage" `Quick test_dtype_storage;
    Alcotest.test_case "c names" `Quick test_c_names;
    Alcotest.test_case "integer ranges" `Quick test_integer_ranges;
    Alcotest.test_case "value quantisation" `Quick test_value_quantisation;
    Alcotest.test_case "fixed payload" `Quick test_value_fixed_payload;
    Alcotest.test_case "value cast" `Quick test_value_cast;
    Alcotest.test_case "value equality" `Quick test_value_equal;
    Alcotest.test_case "of_int float rejection" `Quick test_of_int_rejects_floats;
    QCheck_alcotest.to_alcotest prop_of_float_within_type_bounds;
    QCheck_alcotest.to_alcotest prop_cast_idempotent;
  ]
