(* The PES_COM synchronisation layer: model <-> PE project consistency. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

let ws () = Pe_workspace.create ~name:"app" Mcu_db.mc56f8367

let test_insertion_creates_bean () =
  let w = ws () in
  let blk = Pe_workspace.add_pwm w ~freq_hz:20e3 () in
  (* auto name propagated to both views *)
  Alcotest.(check string) "block name" "PWM1" (Model.block_name (Pe_workspace.model w) blk);
  let bean = Bean_project.find (Pe_workspace.project w) "PWM1" in
  check_bool "bean resolved" true (Bean.is_valid bean);
  check_bool "linked" true (Pe_workspace.bean_of_block w blk = Some bean)

let test_auto_numbering () =
  let w = ws () in
  let _ = Pe_workspace.add_timer_int w ~period:1e-3 () in
  let b2 = Pe_workspace.add_timer_int w ~period:2e-3 () in
  Alcotest.(check string) "second instance" "TI2"
    (Model.block_name (Pe_workspace.model w) b2)

let test_invalid_setting_rejected_atomically () =
  let w = ws () in
  (* 100 Hz PWM is unattainable: insertion must fail AND leave no bean *)
  (match Pe_workspace.add_pwm w ~freq_hz:100.0 () with
  | exception Invalid_argument msg ->
      check_bool "diagnosis included" true (contains msg "15-bit counter")
  | _ -> Alcotest.fail "invalid setting accepted");
  check_int "no orphan bean" 0 (List.length (Bean_project.beans (Pe_workspace.project w)));
  (* and the instance counter did not burn the name *)
  let blk = Pe_workspace.add_pwm w ~freq_hz:20e3 () in
  ignore blk;
  check_bool "project clean" true
    (Bean_project.verify (Pe_workspace.project w) = Ok ())

let test_erasure_releases_resources () =
  let w = ws () in
  let qd = Pe_workspace.add_quad_decoder w ~lines_per_rev:100 () in
  (* the single decoder unit is now claimed *)
  (match Pe_workspace.add_quad_decoder w ~lines_per_rev:50 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double decoder accepted");
  Pe_workspace.remove w qd;
  (* erasure propagated: the unit is free again *)
  let qd2 = Pe_workspace.add_quad_decoder w ~lines_per_rev:50 () in
  check_bool "re-claimed after erasure" true
    (Pe_workspace.bean_of_block w qd2 <> None)

let test_consistency_detects_orphans () =
  let w = ws () in
  let _ = Pe_workspace.add_timer_int w ~period:1e-3 () in
  check_bool "consistent" true (Pe_workspace.check_consistency w = Ok ());
  (* remove the block behind the workspace's back: orphaned bean *)
  Model.remove_block (Pe_workspace.model w) (Model.find (Pe_workspace.model w) "TI1");
  (match Pe_workspace.check_consistency w with
  | Error [ msg ] -> check_bool "orphan reported" true (contains msg "orphaned")
  | _ -> Alcotest.fail "expected one orphan issue")

let test_consistency_detects_missing_bean () =
  let w = ws () in
  let _ = Pe_workspace.add_adc w ~resolution:12 ~sample_period:1e-3 () in
  Bean_project.remove (Pe_workspace.project w) "AD1";
  match Pe_workspace.check_consistency w with
  | Error msgs ->
      check_bool "missing bean reported" true
        (List.exists (fun m -> contains m "missing bean") msgs)
  | Ok () -> Alcotest.fail "missing bean not detected"

let test_full_app_through_workspace () =
  (* build a runnable mini-app entirely through the workspace, then wire
     the signal chain and simulate *)
  let w = ws () in
  let _ti = Pe_workspace.add_timer_int w ~period:1e-3 () in
  let adc = Pe_workspace.add_adc w ~resolution:12 ~sample_period:1e-3 () in
  let pwm = Pe_workspace.add_pwm w ~freq_hz:20e3 () in
  let m = Pe_workspace.model w in
  let src = Model.add m ~name:"vin" (Sources.constant 1.65) in
  let scale = Model.add m ~name:"scale" (Math_blocks.gain 16.0) in
  Model.connect m ~src:(src, 0) ~dst:(adc, 0);
  Model.connect m ~src:(adc, 0) ~dst:(scale, 0);
  Model.connect m ~src:(scale, 0) ~dst:(pwm, 0);
  check_bool "consistent" true (Pe_workspace.check_consistency w = Ok ());
  let sim = Sim.create (Compile.compile m) in
  Sim.step sim;
  (* mid-scale input: code 2048, x16 = 32768 ratio16 -> ~0.5 duty *)
  Alcotest.(check (float 0.01)) "duty" 0.5
    (Value.to_float (Sim.value_named sim "PWM1" 0));
  (* and it still generates code *)
  let arts =
    Target.generate ~name:"mini" ~project:(Pe_workspace.project w)
      (Compile.compile m)
  in
  check_bool "codegen works" true (arts.Target.report.Target.app_loc > 40)

let test_remove_plain_block () =
  let w = ws () in
  let m = Pe_workspace.model w in
  let c = Model.add m (Sources.constant 1.0) in
  Pe_workspace.remove w c;
  check_int "model empty" 0 (List.length (Model.blocks m))

let suite =
  [
    Alcotest.test_case "insertion creates bean" `Quick test_insertion_creates_bean;
    Alcotest.test_case "auto numbering" `Quick test_auto_numbering;
    Alcotest.test_case "invalid setting atomic" `Quick test_invalid_setting_rejected_atomically;
    Alcotest.test_case "erasure releases resources" `Quick test_erasure_releases_resources;
    Alcotest.test_case "orphan detection" `Quick test_consistency_detects_orphans;
    Alcotest.test_case "missing bean detection" `Quick test_consistency_detects_missing_bean;
    Alcotest.test_case "full app via workspace" `Quick test_full_app_through_workspace;
    Alcotest.test_case "remove plain block" `Quick test_remove_plain_block;
  ]
