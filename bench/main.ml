(* The experiment harness: regenerates every table- and figure-shaped
   result of the paper's evaluation (see DESIGN.md's per-experiment index
   and EXPERIMENTS.md for paper-vs-measured), then runs the bechamel
   performance benches.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- e5 e6   -- selected experiments only
     dune exec bench/main.exe -- --list  -- list experiment names

   The perf experiment also writes BENCH_perf.json (see Bench_json);
   ECSD_BENCH_STEPS / ECSD_BENCH_QUICK shrink it for CI smoke runs. *)

let experiments =
  [
    ("e1", Exp_e1.run);
    ("e2", Exp_e2.run);
    ("e3", Exp_e3.run);
    ("e4", Exp_e4.run);
    ("e5", Exp_e5.run);
    ("e6", Exp_e6.run);
    ("e7", Exp_e7.run);
    ("e8", Exp_e8.run);
    ("perf", Perf.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (fun a -> a = "--list" || a = "-l") args then begin
    List.iter (fun (name, _) -> print_endline name) experiments;
    exit 0
  end;
  let names = List.map String.lowercase_ascii args in
  (* validate the whole selection before running anything, so a typo in
     the last name does not waste the minutes spent on the first ones *)
  let unknown =
    List.filter (fun n -> not (List.mem_assoc n experiments)) names
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment%s %s; available: %s (or --list)\n"
      (if List.length unknown > 1 then "s" else "")
      (String.concat ", " (List.map (Printf.sprintf "%S") unknown))
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  let selected = if names = [] then List.map fst experiments else names in
  List.iter (fun name -> (List.assoc name experiments) ()) selected
