(* P1-P8: performance of the environment itself (bechamel micro-benches).
   One Test.make per metric; time-per-run estimated by OLS against the
   monotonic clock. *)

open Bechamel
open Toolkit

(* P1: MIL engine throughput on the servo closed loop *)
let bench_mil =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.closed_loop in
  let sim = Sim.create ~solver_substeps:3 comp in
  Test.make ~name:"P1 MIL engine step (servo, 21 blocks)"
    (Staged.stage (fun () -> Sim.step sim))

(* P2: virtual-MCU event throughput *)
let bench_machine =
  let machine = Machine.create Mcu_db.mc56f8367 in
  let irq =
    Machine.register_irq machine ~name:"x" ~prio:1 ~handler:(fun () ->
        { Machine.jname = "x"; cycles = 100; action = (fun () -> ());
          stack_bytes = 16 })
  in
  Test.make ~name:"P2 virtual MCU: event + ISR dispatch"
    (Staged.stage (fun () ->
         Machine.raise_irq machine irq;
         Machine.advance machine ~cycles:500))

(* P3: full code generation of the servo controller *)
let bench_codegen =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.controller in
  Test.make ~name:"P3 PEERT codegen (servo controller)"
    (Staged.stage (fun () ->
         ignore (Target.generate ~name:"servo" ~project:built.Servo_system.project comp)))

(* P4: comm path: packet encode + framer decode roundtrip *)
let bench_comm =
  let payload = List.init 16 (fun i -> i * 7 land 0xFF) in
  let sink = Framer.create ~on_packet:(fun _ -> ()) in
  Test.make ~name:"P4 packet encode + frame decode (16 B payload)"
    (Staged.stage (fun () ->
         Framer.feed_all sink
           (Packet.encode { Packet.ptype = 1; seq = 0; payload })))

(* P5: controller arithmetic, float vs Q15 *)
let bench_pid_float =
  let c = Pid.create ~ts:1e-3 (Pid.gains ~kp:0.03 ~ki:2.5 ~u_min:0.0 ~u_max:24.0 ()) in
  let x = ref 0.0 in
  Test.make ~name:"P5a PID step (double)"
    (Staged.stage (fun () ->
         x := Pid.step c ~sp:100.0 ~pv:!x *. 0.99))

let bench_pid_fixed =
  let c =
    Pid.Fixpoint.create ~ts:1e-3 ~fmt:Qformat.q15 ~in_scale:512.0 ~out_scale:24.0
      (Pid.gains ~kp:0.03 ~ki:2.5 ~u_min:0.0 ~u_max:24.0 ())
  in
  let x = ref 0.0 in
  Test.make ~name:"P5b PID step (Q15 fixed)"
    (Staged.stage (fun () ->
         x := Pid.Fixpoint.step c ~sp:100.0 ~pv:!x *. 0.99))

(* P6: one full PIL co-simulated control period *)
let bench_pil =
  let cfg = { Servo_system.default_config with Servo_system.control_period = 5e-3 } in
  let built = Servo_system.build ~config:cfg () in
  let comp = Compile.compile built.Servo_system.controller in
  let arts = Pil_target.generate ~name:"servo" ~project:built.Servo_system.project comp in
  Test.make ~name:"P6 PIL co-simulation (100 control periods)"
    (Staged.stage (fun () ->
         let controller = Sim.create comp in
         let plant = Servo_system.pil_plant built in
         let driver = Servo_system.pil_driver built in
         ignore
           (Pil_cosim.run ~mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule
              ~controller ~plant ~driver ~periods:100 ())))

(* P8: the whole static-analysis pipeline (model lint, interval
   fixpoint, concurrency, MISRA over the generated units) on the servo
   controller — the cost of one `ecsd check` *)
let bench_check =
  let built = Servo_system.build () in
  Test.make ~name:"P8 static analysis: ecsd check (servo)"
    (Staged.stage (fun () ->
         ignore
           (Check.run ~project:built.Servo_system.project
              built.Servo_system.controller)))

(* P9: one SIL step — the interpreted generated servo application
   (servo_step plus the exchange-buffer reads) against P1's MIL step *)
let bench_sil =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.controller in
  let app =
    Silvm_app.create ~engine:`Interp ~name:"servo"
      ~project:built.Servo_system.project comp
  in
  Silvm_app.initialize app;
  Silvm_app.set_sensor app 0 2048;
  Silvm_app.set_sensor app 1 0;
  Test.make ~name:"P9 SIL interpreter step (servo generated app)"
    (Staged.stage (fun () ->
         Silvm_app.step app;
         ignore (Silvm_app.actuator app 0)))

(* P13: the same step through the closure-compiled engine *)
let bench_sil_compiled =
  let built = Servo_system.build () in
  let comp = Compile.compile built.Servo_system.controller in
  let app =
    Silvm_app.create ~engine:`Compiled ~name:"servo"
      ~project:built.Servo_system.project comp
  in
  Silvm_app.initialize app;
  Silvm_app.set_sensor app 0 2048;
  Silvm_app.set_sensor app 1 0;
  Test.make ~name:"P13 SIL compiled step (servo generated app)"
    (Staged.stage (fun () ->
         Silvm_app.step app;
         ignore (Silvm_app.actuator app 0)))

(* P7: sustained MIL throughput with probes on, measured wall-clock and
   recorded — with the metrics layer — into BENCH_perf.json, the
   machine-readable perf trajectory of the repo. ECSD_BENCH_STEPS
   overrides the step count; ECSD_BENCH_QUICK=1 shrinks everything to a
   CI smoke run. *)

let quick () =
  match Sys.getenv_opt "ECSD_BENCH_QUICK" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let bench_steps () =
  match Sys.getenv_opt "ECSD_BENCH_STEPS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> invalid_arg "ECSD_BENCH_STEPS must be a positive integer")
  | None -> if quick () then 20_000 else 200_000

let bench_json () =
  Obs.reset ();
  Obs.set_enabled true;
  let built = Servo_system.build () in
  (* MIL throughput, every block output probed (the configuration the
     probe-buffer hot path serves) *)
  let comp = Compile.compile built.Servo_system.closed_loop in
  let sim = Sim.create ~solver_substeps:3 comp in
  List.iter
    (fun b ->
      let spec = Model.spec_of comp.Compile.model b in
      for p = 0 to spec.Block.n_out - 1 do
        Sim.probe sim (b, p)
      done)
    (Model.blocks comp.Compile.model);
  let steps = bench_steps () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to steps do
    Sim.step sim
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  (* one PIL co-simulation to populate the response-latency histograms
     and the comm counters *)
  let cfg =
    { Servo_system.default_config with Servo_system.control_period = 5e-3 }
  in
  let built_pil = Servo_system.build ~config:cfg () in
  let comp_pil = Compile.compile built_pil.Servo_system.controller in
  let arts =
    Pil_target.generate ~name:"servo" ~project:built_pil.Servo_system.project
      comp_pil
  in
  let controller = Sim.create comp_pil in
  let plant = Servo_system.pil_plant built_pil in
  let driver = Servo_system.pil_driver built_pil in
  let periods = if quick () then 60 else 320 in
  ignore
    (Pil_cosim.run ~mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule
       ~controller ~plant ~driver ~periods ());
  (* static analysis throughput; the analysis.check spans and the
     models-checked counter ride into the snapshot below *)
  let checks = if quick () then 3 else 10 in
  let t0_chk = Unix.gettimeofday () in
  for _ = 1 to checks do
    ignore
      (Check.run ~project:built.Servo_system.project
         built.Servo_system.controller)
  done;
  let chk_wall = Unix.gettimeofday () -. t0_chk in
  (* P9: MIL<->SIL differential execution rate on the servo in closed
     loop — every block output of every step compared bit-for-bit *)
  let diff_steps = if quick () then 200 else 1000 in
  let comp_diff = Compile.compile built_pil.Servo_system.controller in
  let diff_report =
    Silvm_diff.run ~steps:diff_steps ~engine:Silvm_diff.Interp
      ~plant:
        (Silvm_diff.Plant
           (Servo_system.pil_plant built_pil, Servo_system.pil_driver built_pil))
      ~name:"servo" ~project:built_pil.Servo_system.project comp_diff
  in
  (match diff_report.Silvm_diff.divergence with
  | None -> ()
  | Some d ->
      failwith
        (Printf.sprintf "P9: MIL/SIL divergence at step %d on %s"
           d.Silvm_diff.d_step d.Silvm_diff.d_block));
  let sil_rate =
    if diff_report.Silvm_diff.sil_seconds > 0.0 then
      float_of_int diff_report.Silvm_diff.steps_run
      /. diff_report.Silvm_diff.sil_seconds
    else 0.0
  in
  (* P10: fault-injection hook overhead — the same supervised closed
     loop stepped with the injector armed (encoder-dropout) and with the
     hook absent; the gap is what arming costs, the unarmed rate is what
     merely having the hook point in Sim costs everyone else *)
  let fault_scn =
    match Fault_scenario.find "encoder-dropout" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let fault_subject, _ = Servo_system.faultsim_subject ~scenario:fault_scn () in
  let fault_steps = if quick () then 2_000 else 20_000 in
  let unarmed_sps = Fault_campaign.throughput ~steps:fault_steps fault_subject in
  let armed_sps =
    Fault_campaign.throughput ~scenario:fault_scn ~steps:fault_steps
      fault_subject
  in
  let armed_overhead =
    if unarmed_sps > 0.0 then 1.0 -. (armed_sps /. unarmed_sps) else 0.0
  in
  (* P11: campaign scaling — the 64-seed encoder-dropout campaign run
     through the work-stealing pool at --jobs 1 and --jobs 4. The
     speedup is whatever this machine's cores allow (recorded next to
     [domains_available] so the number can be judged); the merged
     report must be identical either way, which is asserted here. *)
  let scaling_seeds = if quick () then 16 else 64 in
  let scaling_t_end = if quick () then 0.5 else 2.0 in
  let mk_subject () =
    fst (Servo_system.faultsim_subject ~scenario:fault_scn ())
  in
  let campaign jobs =
    Exec_pool.with_pool ~workers:jobs (fun pool ->
        let t0 = Unix.gettimeofday () in
        let r =
          Fault_campaign.run_parallel ~t_end:scaling_t_end ~seeds:scaling_seeds
            ~pool ~scenario:fault_scn mk_subject
        in
        (r, Unix.gettimeofday () -. t0))
  in
  let r1, wall1 = campaign 1 in
  let r4, wall4 = campaign 4 in
  if r1.Fault_campaign.runs <> r4.Fault_campaign.runs then
    failwith "P11: --jobs 4 campaign differs from --jobs 1";
  let speedup = if wall4 > 0.0 then wall1 /. wall4 else 0.0 in
  (* P12: MIR optimization-pass ablation — the same servo controller
     generated with and without --opt: emitted code size and SIL
     interpreter throughput, with the MIL<->SIL diff re-run on the
     optimized build as the bit-exactness witness *)
  let gen_loc opt =
    let arts =
      Target.generate ~opt ~name:"servo"
        ~project:built_pil.Servo_system.project comp_pil
    in
    let count u =
      String.fold_left
        (fun n c -> if c = '\n' then n + 1 else n)
        0
        (C_print.print_unit u)
    in
    count arts.Target.model_c + count arts.Target.main_c
  in
  let loc_noopt = gen_loc false and loc_opt = gen_loc true in
  let diff_opt =
    Silvm_diff.run ~steps:diff_steps ~opt:true ~engine:Silvm_diff.Interp
      ~plant:
        (Silvm_diff.Plant
           (Servo_system.pil_plant built_pil, Servo_system.pil_driver built_pil))
      ~name:"servo" ~project:built_pil.Servo_system.project comp_diff
  in
  (match diff_opt.Silvm_diff.divergence with
  | None -> ()
  | Some d ->
      failwith
        (Printf.sprintf "P12: --opt MIL/SIL divergence at step %d on %s"
           d.Silvm_diff.d_step d.Silvm_diff.d_block));
  let opt_rate =
    if diff_opt.Silvm_diff.sil_seconds > 0.0 then
      float_of_int diff_opt.Silvm_diff.steps_run
      /. diff_opt.Silvm_diff.sil_seconds
    else 0.0
  in
  (* P13: compiled SIL execution — the closure-compiled servo app
     through the batched Bigarray path, wall-clocked against the
     interpreter on the same stimulus, with a tri-lockstep diff as the
     bit-exactness witness for the numbers being compared *)
  let compiled_steps = if quick () then 20_000 else 400_000 in
  let interp_steps = if quick () then 5_000 else 40_000 in
  let stim_buf = [| 0 |] in
  let stimulus k =
    stim_buf.(0) <- 2048 + (k * 37 land 1023);
    stim_buf
  in
  let batched_rate engine n =
    let app =
      Silvm_app.create ~engine ~name:"servo"
        ~project:built_pil.Servo_system.project comp_pil
    in
    Silvm_app.initialize app;
    let t0 = Unix.gettimeofday () in
    ignore (Silvm_app.run_n_steps ~stimulus app n);
    let w = Unix.gettimeofday () -. t0 in
    if w > 0.0 then float_of_int n /. w else 0.0
  in
  let compiled_rate = batched_rate `Compiled compiled_steps in
  let interp_batched_rate = batched_rate `Interp interp_steps in
  let diff_tri =
    Silvm_diff.run ~steps:diff_steps ~engine:Silvm_diff.Both
      ~plant:
        (Silvm_diff.Plant
           (Servo_system.pil_plant built_pil, Servo_system.pil_driver built_pil))
      ~name:"servo" ~project:built_pil.Servo_system.project comp_diff
  in
  (match diff_tri.Silvm_diff.divergence with
  | None -> ()
  | Some d ->
      failwith
        (Printf.sprintf "P13: compiled/interp divergence at step %d on %s"
           d.Silvm_diff.d_step d.Silvm_diff.d_block));
  (* P14: flight-recorder overhead — the always-on claim, quantified.
     The same three hot paths timed with the recorder off and on:
     probed MIL stepping (every event is a ring store), the compiled
     batched SIL path, and the armed fault campaign. Best-of-3 rates on
     both sides squeeze scheduler noise out of the ratio. *)
  (* alternate off/on repetitions so machine drift during the
     measurement hits both sides, and keep the best rate of each; the
     first pair is an untimed warmup so caches and code paths are hot
     on both sides before anything counts *)
  let paired_best n f_off f_on =
    let bo = ref 0.0 and bn = ref 0.0 in
    for i = 0 to n do
      let o = f_off () in
      let x = f_on () in
      if i > 0 then begin
        if o > !bo then bo := o;
        if x > !bn then bn := x
      end;
      if Sys.getenv_opt "ECSD_BENCH_DEBUG" <> None then
        Printf.printf "  rep off %.0f on %.0f%s\n%!" o x
          (if i = 0 then " (warmup)" else "")
    done;
    (!bo, !bn)
  in
  let flight_on f =
    Flight.reset ();
    Flight.set_enabled true;
    Flight.begin_track ~id:1 ~name:"bench";
    (* pre-touch every ring page so first-write faults on the freshly
       allocated arrays land here, not inside the timed region *)
    for k = 0 to Flight.capacity () - 1 do
      Flight.mark ~step:k "warm"
    done;
    Fun.protect
      ~finally:(fun () ->
        Flight.set_enabled false;
        Flight.reset ())
      f
  in
  (* short repetitions keep each off/on pair tightly adjacent in time,
     which is what makes the ratio robust on a loaded machine *)
  let fr_mil_steps = if quick () then 5_000 else 20_000 in
  let probed_rate () =
    let sim2 = Sim.create ~solver_substeps:3 comp in
    List.iter
      (fun b ->
        let spec = Model.spec_of comp.Compile.model b in
        for p = 0 to spec.Block.n_out - 1 do
          Sim.probe sim2 (b, p)
        done)
      (Model.blocks comp.Compile.model);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to fr_mil_steps do
      Sim.step sim2
    done;
    let w = Unix.gettimeofday () -. t0 in
    if w > 0.0 then float_of_int fr_mil_steps /. w else 0.0
  in
  (* the probed MIL path records the most events per step (a marker plus
     every probed output), so it gets the most repetitions *)
  let mil_off, mil_on =
    paired_best
      (if quick () then 5 else 10)
      probed_rate
      (fun () -> flight_on probed_rate)
  in
  let fr_sil_steps = if quick () then 20_000 else 200_000 in
  let sil_off, sil_on =
    paired_best 3
      (fun () -> batched_rate `Compiled fr_sil_steps)
      (fun () -> flight_on (fun () -> batched_rate `Compiled fr_sil_steps))
  in
  let armed_rate () =
    Fault_campaign.throughput ~scenario:fault_scn ~steps:fault_steps
      fault_subject
  in
  let armed_off, armed_on =
    paired_best 3 armed_rate (fun () -> flight_on armed_rate)
  in
  let overhead off on = if off > 0.0 then 1.0 -. (on /. off) else 0.0 in
  (* P15: supervised-execution overhead + retry/backoff latency. The
     supervision tax is the cancellation poll at the engines' step-loop
     fuel points: one domain-local read when no token is armed, plus an
     amortized clock read when a deadline is. Measured on the armed
     campaign path with a (never-firing) deadline token installed — the
     worst case — against the raw rate, using the same paired best-of
     protocol as the recorder numbers. *)
  let supervised_rate () =
    let tok = Cancel.make ~deadline_s:3600.0 () in
    Cancel.with_token tok armed_rate
  in
  let sup_off, sup_on = paired_best 3 armed_rate supervised_rate in
  let sup_overhead = overhead sup_off sup_on in
  (* retry/backoff latency: supervise a transient-once job many times
     under a small backoff policy; the wall latency of each call is
     dominated by the deterministic backoff sleep, so its quantiles
     characterize what one transient failure costs a campaign job *)
  let retry_calls = if quick () then 100 else 200 in
  let retry_policy =
    {
      Supervise.default_policy with
      Supervise.retries = 2;
      backoff_base_s = 2e-4;
      backoff_max_s = 2e-3;
    }
  in
  let lat =
    Array.init retry_calls (fun i ->
        let first = ref true in
        let t0 = Unix.gettimeofday () in
        let o =
          Supervise.supervise ~policy:retry_policy
            ~label:(Printf.sprintf "bench-retry-%d" i)
            (fun () ->
              if !first then begin
                first := false;
                raise (Supervise.Transient_failure "bench blip")
              end)
        in
        (match o.Supervise.result with
        | Ok () -> ()
        | Error _ -> failwith "P15: transient retry failed to recover");
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare lat;
  let pct p =
    lat.(min (retry_calls - 1) (int_of_float (p *. float_of_int retry_calls)))
  in
  let backoffs =
    List.init retry_calls (fun i ->
        Supervise.backoff_s retry_policy
          ~label:(Printf.sprintf "bench-retry-%d" i)
          ~attempt:0)
  in
  let bmin = List.fold_left Float.min infinity backoffs in
  let bmax = List.fold_left Float.max 0.0 backoffs in
  let bmean = List.fold_left ( +. ) 0.0 backoffs /. float_of_int retry_calls in
  Obs.set_enabled false;
  let snap = Obs.snapshot () in
  let extra =
    [
      ( "sil_diff",
        Bench_json.Obj
          [
            ("steps", Bench_json.Int diff_report.Silvm_diff.steps_run);
            ("signals", Bench_json.Int diff_report.Silvm_diff.signals);
            ("divergences", Bench_json.Int 0);
            ( "mil_seconds",
              Bench_json.Float diff_report.Silvm_diff.mil_seconds );
            ( "sil_seconds",
              Bench_json.Float diff_report.Silvm_diff.sil_seconds );
            ("sil_steps_per_s", Bench_json.Float sil_rate);
          ] );
      ( "faultsim",
        Bench_json.Obj
          [
            ("steps", Bench_json.Int fault_steps);
            ("unarmed_steps_per_s", Bench_json.Float unarmed_sps);
            ("armed_steps_per_s", Bench_json.Float armed_sps);
            ("armed_overhead_frac", Bench_json.Float armed_overhead);
          ] );
      ( "campaign_scaling",
        Bench_json.Obj
          [
            ("seeds", Bench_json.Int scaling_seeds);
            ("t_end", Bench_json.Float scaling_t_end);
            ("steps_per_run", Bench_json.Int r1.Fault_campaign.steps_per_run);
            ("jobs1_wall_s", Bench_json.Float wall1);
            ("jobs4_wall_s", Bench_json.Float wall4);
            ("speedup_jobs4", Bench_json.Float speedup);
            ( "domains_available",
              Bench_json.Int (Domain.recommended_domain_count ()) );
            ("identical_reports", Bench_json.Bool true);
          ] );
      ( "mir_opt",
        Bench_json.Obj
          [
            ("generated_loc_noopt", Bench_json.Int loc_noopt);
            ("generated_loc_opt", Bench_json.Int loc_opt);
            ("sil_steps_per_s_noopt", Bench_json.Float sil_rate);
            ("sil_steps_per_s_opt", Bench_json.Float opt_rate);
            ("opt_divergences", Bench_json.Int 0);
          ] );
      ( "sil_compiled",
        Bench_json.Obj
          [
            ("steps", Bench_json.Int compiled_steps);
            ("sil_compiled_steps_per_s", Bench_json.Float compiled_rate);
            ("sil_interp_steps_per_s", Bench_json.Float interp_batched_rate);
            ( "speedup_vs_interp",
              Bench_json.Float
                (if interp_batched_rate > 0.0 then
                   compiled_rate /. interp_batched_rate
                 else 0.0) );
            ("tri_lockstep_steps", Bench_json.Int diff_tri.Silvm_diff.steps_run);
            ("divergences", Bench_json.Int 0);
          ] );
      ( "recorder",
        Bench_json.Obj
          [
            ("mil_probed_steps", Bench_json.Int fr_mil_steps);
            ("mil_probed_steps_per_s_off", Bench_json.Float mil_off);
            ("mil_probed_steps_per_s_on", Bench_json.Float mil_on);
            ("mil_overhead_frac", Bench_json.Float (overhead mil_off mil_on));
            ("sil_compiled_steps", Bench_json.Int fr_sil_steps);
            ("sil_compiled_steps_per_s_off", Bench_json.Float sil_off);
            ("sil_compiled_steps_per_s_on", Bench_json.Float sil_on);
            ( "sil_compiled_overhead_frac",
              Bench_json.Float (overhead sil_off sil_on) );
            ("armed_campaign_steps", Bench_json.Int fault_steps);
            ("armed_campaign_steps_per_s_off", Bench_json.Float armed_off);
            ("armed_campaign_steps_per_s_on", Bench_json.Float armed_on);
            ( "armed_campaign_overhead_frac",
              Bench_json.Float (overhead armed_off armed_on) );
          ] );
      ( "supervised",
        Bench_json.Obj
          [
            ("armed_campaign_steps", Bench_json.Int fault_steps);
            ("raw_steps_per_s", Bench_json.Float sup_off);
            ("supervised_steps_per_s", Bench_json.Float sup_on);
            ("overhead_frac", Bench_json.Float sup_overhead);
            ("retry_calls", Bench_json.Int retry_calls);
            ("retry_latency_p50_s", Bench_json.Float (pct 0.5));
            ("retry_latency_p95_s", Bench_json.Float (pct 0.95));
            ("retry_latency_max_s", Bench_json.Float lat.(retry_calls - 1));
            ("backoff_first_min_s", Bench_json.Float bmin);
            ("backoff_first_mean_s", Bench_json.Float bmean);
            ("backoff_first_max_s", Bench_json.Float bmax);
          ] );
    ]
  in
  let doc = Bench_json.bench ~name:"perf" ~steps ~wall_s ~extra snap in
  let path = "BENCH_perf.json" in
  Bench_json.write ~path doc;
  (* read back through the parser: the file must stay machine-readable *)
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let parsed = Bench_json.parse text in
  (match Bench_json.member "steps_per_s" parsed with
  | Some (Bench_json.Float sps) ->
      Printf.printf
        "P7 MIL throughput (servo, all outputs probed): %.0f steps/s\n" sps
  | _ -> failwith "BENCH_perf.json: missing steps_per_s");
  Printf.printf "P8 static analysis (servo controller): %.1f models checked/s\n"
    (float_of_int checks /. chk_wall);
  Printf.printf
    "P9 MIL<->SIL diff (servo, %d signals): %.0f SIL steps/s, 0 divergences\n"
    diff_report.Silvm_diff.signals sil_rate;
  Printf.printf
    "P10 faultsim (servo + supervisor): %.0f steps/s unarmed, %.0f armed \
     (%.1f %% overhead)\n"
    unarmed_sps armed_sps (100.0 *. armed_overhead);
  Printf.printf
    "P11 campaign scaling (%d seeds): %.2f s at --jobs 1, %.2f s at --jobs 4 \
     (%.2fx, %d domains available, reports identical)\n"
    scaling_seeds wall1 wall4 speedup
    (Domain.recommended_domain_count ());
  Printf.printf
    "P12 MIR opt ablation (servo): %d -> %d generated LoC, %.0f -> %.0f SIL \
     steps/s, 0 divergences\n"
    loc_noopt loc_opt sil_rate opt_rate;
  Printf.printf
    "P13 compiled SIL (servo, batched): %.0f steps/s compiled vs %.0f \
     interpreted (%.1fx), tri-lockstep 0 divergences\n"
    compiled_rate interp_batched_rate
    (if interp_batched_rate > 0.0 then compiled_rate /. interp_batched_rate
     else 0.0);
  Printf.printf
    "P14 flight recorder overhead: MIL probed %.1f %%, compiled SIL %.1f %%, \
     armed campaign %.1f %%\n"
    (100.0 *. overhead mil_off mil_on)
    (100.0 *. overhead sil_off sil_on)
    (100.0 *. overhead armed_off armed_on);
  Printf.printf
    "P15 supervised execution: %.0f steps/s raw, %.0f supervised (%.1f %% \
     overhead); transient-retry latency p50 %.2f ms / p95 %.2f ms over %d \
     calls\n"
    sup_off sup_on (100.0 *. sup_overhead)
    (1e3 *. pct 0.5)
    (1e3 *. pct 0.95)
    retry_calls;
  Printf.printf "wrote %s (git %s)\n\n" path (Bench_json.git_rev ())

let run () =
  print_endline "==================================================================";
  print_endline "P1-P6, P8-P9: environment performance (bechamel, ns per run)";
  print_endline "==================================================================";
  let tests =
    Test.make_grouped ~name:"perf" ~fmt:"%s %s"
      [ bench_mil; bench_machine; bench_codegen; bench_comm; bench_pid_float;
        bench_pid_fixed; bench_pil; bench_check; bench_sil;
        bench_sil_compiled ]
  in
  let cfg =
    Benchmark.cfg ~limit:1500
      ~quota:(Time.second (if quick () then 0.05 else 0.4))
      ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let t = Table.create [ "benchmark"; "time/run"; "runs/s" ] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          Table.add_row t
            [
              name;
              (if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
               else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
               else Printf.sprintf "%.0f ns" ns);
              Printf.sprintf "%.3g" (1e9 /. ns);
            ]
      | _ -> Table.add_row t [ name; "n/a"; "n/a" ])
    rows;
  Table.print ~align:[ Table.Left; Table.Right; Table.Right ] t;
  print_newline ();
  bench_json ()
