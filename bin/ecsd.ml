(* ecsd -- command-line driver of the integrated environment.

   Sub-commands mirror the development cycle of the paper's Fig 6.1 on the
   built-in servo case study:

     ecsd inspect   -- the PE project window and Bean Inspector (Fig 4.1)
     ecsd mil       -- closed-loop model-in-the-loop simulation (Fig 7.1)
     ecsd codegen   -- PEERT code generation into a directory
     ecsd pil       -- processor-in-the-loop co-simulation (Fig 6.2)
     ecsd diff      -- MIL vs SIL differential execution of generated code
     ecsd faultsim  -- fault-injection campaign with recovery metrics
     ecsd serve     -- long-running campaign queue over a domain pool
     ecsd check     -- static analysis: model advisor, range, ISR, MISRA
     ecsd mcus      -- the supported-MCU database
*)

open Cmdliner

let mcu_conv =
  let parse s =
    match Mcu_db.find s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown MCU %S (use `ecsd mcus` to list them)" s))
  in
  let print ppf m = Format.pp_print_string ppf m.Mcu_db.name in
  Arg.conv (parse, print)

let mcu_arg =
  Arg.(
    value
    & opt mcu_conv Mcu_db.mc56f8367
    & info [ "mcu" ] ~docv:"MCU" ~doc:"Target MCU (default MC56F8367).")

let period_arg =
  Arg.(
    value
    & opt float 1e-3
    & info [ "period" ] ~docv:"SECONDS" ~doc:"Control period (default 1 ms).")

let fixed_arg =
  Arg.(
    value & flag
    & info [ "fixed" ] ~doc:"Use the Q15 fixed-point controller variant.")

let config mcu period fixed =
  {
    Servo_system.default_config with
    Servo_system.mcu;
    control_period = period;
    variant = (if fixed then Servo_system.Fixed_pid else Servo_system.Float_pid);
  }

(* The one error-reporting path of every sub-command: report on stderr,
   exit 2 (distinct from `check --strict`'s findings exit code 1). *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2)
    fmt

(* Flush-on-error: `die` exits without unwinding through the command
   body, so anything that must reach disk even on a failed run (trace
   spans, flight bundles, partial reports) registers a sink here and
   at_exit drains them exactly once, whatever the exit path. *)
let on_exit_flush : (unit -> unit) list ref = ref []
let exit_flushed = ref false
let register_exit_flush f = on_exit_flush := f :: !on_exit_flush

let () =
  at_exit (fun () ->
      if not !exit_flushed then begin
        exit_flushed := true;
        List.iter (fun f -> try f () with _ -> ()) (List.rev !on_exit_flush)
      end)

let build_or_fail cfg =
  try Servo_system.build ~config:cfg ()
  with Invalid_argument msg -> die "%s" msg

(* ---- observability flags, shared by the heavy sub-commands ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record tracing spans during the run and write them to $(docv) as \
           Chrome-trace JSON (load in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect metrics during the run and print the counters, latency \
           histograms and an ASCII span summary afterwards.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Collect the tool's self-profiling timers (per-pass analysis \
           and codegen timing, compiled-SIL phase timing) and print them \
           as a calls/total/mean/max table afterwards.")

let with_obs ?(profile = false) trace metrics f =
  let active = trace <> None || metrics || profile in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      Obs.set_enabled false;
      (match trace with
      | Some path ->
          Obs.write_chrome_trace ~path;
          Printf.printf "trace spans written to %s\n" path
      | None -> ());
      if metrics then begin
        print_newline ();
        print_string (Obs_report.metrics_table (Obs.snapshot ()));
        print_newline ();
        print_string (Obs_report.flame_summary (Obs.spans ()))
      end;
      if profile then begin
        print_newline ();
        print_string (Obs_report.profile_table (Obs.snapshot ()))
      end
    end
  in
  if active then begin
    Obs.reset ();
    Obs.set_enabled true;
    (* a `die` mid-run still flushes the trace and tables *)
    register_exit_flush finish
  end;
  let code = f () in
  if active then finish ();
  code

(* ---- flight recorder, on by default in the campaign commands ---- *)

let no_flight_arg =
  Arg.(
    value & flag
    & info [ "no-flight" ]
        ~doc:
          "Disable the flight recorder. It is on by default here: each \
           run logs its last events (step markers, probed signals, fault \
           transitions, engine activity) into a fixed per-domain ring, \
           and the first divergence or unrecovered run dumps the rings \
           as a forensics bundle (FLIGHT_<name>.jsonl plus a Chrome \
           trace). Ring capacity: $(b,ECSD_FLIGHT_EVENTS) environment \
           variable, default 4096 events per domain.")

let enable_flight no_flight =
  if no_flight then Flight.set_enabled false
  else begin
    (match Sys.getenv_opt "ECSD_FLIGHT_EVENTS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Flight.set_capacity n
        | _ -> die "ECSD_FLIGHT_EVENTS must be a positive integer, got %S" s)
    | None -> ());
    Flight.set_enabled true
  end

let flight_bundle_written = ref false

(* The bundle notice goes to stderr so `serve`'s stdout stays pure
   JSON-lines; the guard keeps the direct call and the exit-flush
   registration from writing twice. *)
let write_flight_bundle name =
  if not !flight_bundle_written then
    match Flight.write_captures ~prefix:("FLIGHT_" ^ name) with
    | Some (jsonl, trace) ->
        flight_bundle_written := true;
        Printf.eprintf "flight bundle written to %s and %s\n%!" jsonl trace
    | None -> ()

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the campaign across $(docv) worker domains (default 1: \
           run serially on this domain). The merged report is identical \
           whatever $(docv) is — only wall_s, the elapsed time, differs.")

(* ---- inspect ---- *)

let inspect mcu period fixed bean =
  let built = build_or_fail (config mcu period fixed) in
  (match bean with
  | None -> print_string (Inspector.render_project built.Servo_system.project)
  | Some name -> (
      match Bean_project.find built.Servo_system.project name with
      | b -> print_string (Inspector.render_bean b)
      | exception Not_found -> die "no bean named %S in the project" name));
  0

let inspect_cmd =
  let bean =
    Arg.(
      value
      & opt (some string) None
      & info [ "bean" ] ~docv:"NAME" ~doc:"Show one bean's inspector instead.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Project window and Bean Inspector (Fig 4.1)")
    Term.(const inspect $ mcu_arg $ period_arg $ fixed_arg $ bean)

(* ---- mil ---- *)

let mil mcu period fixed t_end csv trace metrics =
  with_obs trace metrics @@ fun () ->
  let built = build_or_fail (config mcu period fixed) in
  let speed, duty = Servo_system.mil_run built ~t_end in
  Ascii_plot.print ~title:"MIL: motor speed" ~x_label:"time [s]"
    [ { Ascii_plot.label = "speed [rad/s]"; points = speed } ];
  (match List.rev speed with
  | (_, w) :: _ -> Printf.printf "final speed %.2f rad/s\n" w
  | [] -> ());
  let max_duty = List.fold_left (fun a (_, d) -> Float.max a d) 0.0 duty in
  Printf.printf "peak duty %.3f\n" max_duty;
  (match csv with
  | Some path ->
      Trace_export.write_csv ~path [ ("speed", speed); ("duty", duty) ];
      Printf.printf "trace written to %s\n" path
  | None -> ());
  0

let mil_cmd =
  let t_end =
    Arg.(
      value & opt float 1.6
      & info [ "t-end" ] ~docv:"SECONDS" ~doc:"Simulation horizon.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export the traces as CSV.")
  in
  Cmd.v
    (Cmd.info "mil" ~doc:"Model-in-the-loop closed-loop simulation (Fig 7.1)")
    Term.(
      const mil $ mcu_arg $ period_arg $ fixed_arg $ t_end $ csv $ trace_arg
      $ metrics_arg)

(* ---- codegen ---- *)

let codegen mcu period fixed pil opt out_dir trace metrics =
  with_obs trace metrics @@ fun () ->
  let built = build_or_fail (config mcu period fixed) in
  let comp = Compile.compile built.Servo_system.controller in
  let arts =
    try
      if pil then
        Pil_target.generate ~opt ~name:"servo"
          ~project:built.Servo_system.project comp
      else
        Target.generate ~opt ~name:"servo"
          ~project:built.Servo_system.project comp
    with Target.Codegen_error msg -> die "code generation failed: %s" msg
  in
  let files = Target.write_to_dir arts ~dir:out_dir in
  let r = arts.Target.report in
  Printf.printf "%s target: %d blocks -> %d + %d LoC, step %.1f us, RAM est. %d B\n"
    (if pil then "PEERT_PIL" else "PEERT")
    r.Target.n_blocks r.Target.app_loc r.Target.hal_loc
    (r.Target.step_time *. 1e6) r.Target.est_ram_bytes;
  List.iter (fun w -> Printf.printf "warning: %s\n" w) r.Target.warnings;
  Printf.printf "wrote %d files to %s\n" (List.length files) out_dir;
  0

let opt_arg =
  Arg.(
    value & flag
    & info [ "opt" ]
        ~doc:
          "Run the MIR optimization passes (constant folding, copy \
           propagation, saturation fusion, dead-store elimination) on the \
           model unit. The output is bit-exact with the unoptimized code; \
           $(b,ecsd diff --opt) is the oracle.")

let codegen_cmd =
  let pil = Arg.(value & flag & info [ "pil" ] ~doc:"Generate the PIL variant.") in
  let out =
    Arg.(
      value & opt string "servo_generated"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Generate the embedded application (PEERT, Fig 6.1)")
    Term.(
      const codegen $ mcu_arg $ period_arg $ fixed_arg $ pil $ opt_arg $ out
      $ trace_arg $ metrics_arg)

(* ---- pil ---- *)

let pil mcu period fixed baud periods trace metrics =
  with_obs trace metrics @@ fun () ->
  let cfg = config mcu period fixed in
  let built = build_or_fail cfg in
  let comp = Compile.compile built.Servo_system.controller in
  let arts =
    Pil_target.generate ~name:"servo" ~project:built.Servo_system.project comp
  in
  let controller = Sim.create comp in
  let plant = Servo_system.pil_plant built in
  let driver = Servo_system.pil_driver built in
  match
    Pil_cosim.run ~baud ~mcu:cfg.Servo_system.mcu ~schedule:arts.Target.schedule
      ~controller ~plant ~driver ~periods ()
  with
  | exception Invalid_argument msg -> die "PIL infeasible: %s" msg
  | r ->
      let p = r.Pil_cosim.profile in
      Printf.printf "periods            : %d\n" p.Pil_cosim.periods;
      Printf.printf "exec time          : %.1f us\n"
        (p.Pil_cosim.controller_exec.Stats.mean *. 1e6);
      Printf.printf "latency p50/p95    : %.0f / %.0f us\n"
        (p.Pil_cosim.response_latency.Stats.p50 *. 1e6)
        (p.Pil_cosim.response_latency.Stats.p95 *. 1e6);
      Printf.printf "sampling jitter    : %.1f us\n"
        (p.Pil_cosim.step_start_jitter *. 1e6);
      Printf.printf "comm               : %d B = %.2f ms per period\n"
        p.Pil_cosim.comm_bytes_per_period
        (p.Pil_cosim.comm_time_per_period *. 1e3);
      Printf.printf "utilisation        : %.1f %%\n"
        (100.0 *. p.Pil_cosim.cpu_utilization);
      Printf.printf "stack high-water   : %d B\n" p.Pil_cosim.max_stack_bytes;
      Printf.printf "overruns           : %d\n" p.Pil_cosim.overruns;
      (match List.rev (Servo_system.pil_speed_trace r.Pil_cosim.trace) with
      | (_, w) :: _ -> Printf.printf "final speed        : %.2f rad/s\n" w
      | [] -> ());
      0

let pil_cmd =
  let baud =
    Arg.(value & opt int 115200 & info [ "baud" ] ~docv:"BAUD" ~doc:"RS-232 rate.")
  in
  let periods =
    Arg.(
      value & opt int 320
      & info [ "periods" ] ~docv:"N" ~doc:"Control periods to co-simulate.")
  in
  Cmd.v
    (Cmd.info "pil" ~doc:"Processor-in-the-loop co-simulation (Fig 6.2)")
    Term.(const pil $ mcu_arg $ Arg.(value & opt float 5e-3 & info [ "period" ]
            ~docv:"SECONDS" ~doc:"Control period (default 5 ms; RS-232 limits it).")
          $ fixed_arg $ baud $ periods $ trace_arg $ metrics_arg)

(* ---- diff ---- *)

let scenario_or_die ref_ =
  match Fault_scenario.find ref_ with
  | Ok s -> s
  | Error e -> die "%s" e

let injector_of scenario seed =
  let inj = Fault_inject.arm ~seed scenario in
  {
    Silvm_diff.inj_sensors =
      (fun ~step:_ ~time codes ->
        Array.mapi
          (fun slot v -> Fault_inject.sensor inj ~slot ~time v land 0xFFFF)
          codes);
    inj_active = (fun ~time -> Fault_inject.active_names inj ~time);
  }

let engine_name = function
  | Silvm_diff.Interp -> "interp"
  | Silvm_diff.Compiled -> "compiled"
  | Silvm_diff.Both -> "both"

let engine_of_name = function
  | "interp" -> Some Silvm_diff.Interp
  | "compiled" -> Some Silvm_diff.Compiled
  | "both" -> Some Silvm_diff.Both
  | _ -> None

let divergence_json (d : Silvm_diff.divergence option) =
  let open Bench_json in
  match d with
  | None -> Null
  | Some d ->
      Obj
        [
          ("step", Int d.Silvm_diff.d_step);
          ("time", Float d.Silvm_diff.d_time);
          ("block", Str d.Silvm_diff.d_block);
          ("port", Int d.Silvm_diff.d_port);
          ("mil", Str d.Silvm_diff.d_mil);
          ("sil", Str d.Silvm_diff.d_sil);
          ( "active_faults",
            Arr (List.map (fun f -> Str f) d.Silvm_diff.d_faults) );
        ]

(* Seed sweep: one differential run per fault seed 1..N, sharded over a
   domain pool. Each domain builds its own model/plant context (the
   compile dedups through the content-hashed cache); reports merge in
   seed order, so the sweep output — table and JSON, which carries no
   timing field — is identical whatever --jobs is. *)
let diff_sweep ~cfg ~mcu ~float_mode ~opt ~engine ~steps ~ulp ~scenario ~seeds
    ~jobs ~json model_name =
  let mk_ctx () =
    match model_name with
    | "servo" ->
        let built = build_or_fail cfg in
        let comp = Compile_cache.compile built.Servo_system.controller in
        `Servo (built, comp)
    | "isr-demo" ->
        let m, project = Check.hazard_demo ~mcu () in
        let comp = Compile_cache.compile m in
        `Isr (project, comp)
    | other -> die "unknown model %S (choose servo or isr-demo)" other
  in
  let run_one ctx seed =
    Flight.begin_track ~id:seed ~name:scenario.Fault_scenario.sname;
    let injector = Some (injector_of scenario seed) in
    try
      match ctx with
      | `Servo (built, comp) ->
          let plant = Servo_system.pil_plant built in
          let driver = Servo_system.pil_driver built in
          Silvm_diff.run ~steps ~float_mode ~opt ~engine
            ~plant:(Silvm_diff.Plant (plant, driver))
            ?injector ~name:"servo" ~project:built.Servo_system.project comp
      | `Isr (project, comp) ->
          let stimulus k = [| k * 37 mod 4096 |] in
          Silvm_diff.run ~steps ~float_mode ~opt ~engine ~stimulus ?injector
            ~name:"isr_demo" ~project comp
    with Target.Codegen_error msg -> die "code generation failed: %s" msg
  in
  let name = if model_name = "isr-demo" then "isr_demo" else model_name in
  let ctx_key = Domain.DLS.new_key mk_ctx in
  (* build on this domain first: config errors die here, not on a
     worker, and the workers' compiles then hit the cache *)
  ignore (Domain.DLS.get ctx_key);
  (* completed runs accumulate here so a `die` mid-sweep still leaves a
     partial report on disk (satellite of the flight-recorder work) *)
  let completed_lock = Mutex.create () in
  let completed = ref [] in
  let sweep_done = ref false in
  register_exit_flush (fun () ->
      write_flight_bundle name;
      if json && not !sweep_done then begin
        let runs =
          List.sort (fun (a, _) (b, _) -> compare a b) !completed
        in
        let path = Printf.sprintf "DIFF_%s.partial.json" name in
        let open Bench_json in
        write ~path
          (Obj
             [
               ("name", Str name);
               ("partial", Bool true);
               ("scenario", Str scenario.Fault_scenario.sname);
               ("seeds_requested", Int seeds);
               ("seeds_done", Int (List.length runs));
               ( "runs",
                 Arr
                   (List.map
                      (fun (seed, r) ->
                        Obj
                          [
                            ("seed", Int seed);
                            ("steps_run", Int r.Silvm_diff.steps_run);
                            ( "divergence",
                              divergence_json r.Silvm_diff.divergence );
                          ])
                      runs) );
             ]);
        Printf.eprintf "partial JSON report written to %s\n%!" path
      end);
  let f i =
    let r = run_one (Domain.DLS.get ctx_key) (i + 1) in
    Mutex.lock completed_lock;
    completed := (i + 1, r) :: !completed;
    Mutex.unlock completed_lock;
    r
  in
  let reports =
    if jobs <= 1 then Array.init seeds f
    else
      Exec_pool.with_pool ~workers:jobs (fun pool ->
          Exec_pool.run_map pool seeds f)
  in
  sweep_done := true;
  Printf.printf "model              : %s\n" name;
  Printf.printf "fault scenario     : %s (seeds 1..%d)\n"
    scenario.Fault_scenario.sname seeds;
  Printf.printf "signals compared   : %d per step\n"
    reports.(0).Silvm_diff.signals;
  Printf.printf "steps per run      : %d\n" steps;
  let t = Table.create [ "seed"; "result" ] in
  Array.iteri
    (fun i r ->
      Table.add_row t
        [
          string_of_int (i + 1);
          (match r.Silvm_diff.divergence with
          | None -> "ok"
          | Some d ->
              Printf.sprintf "DIVERGENCE at step %d on %s port %d"
                d.Silvm_diff.d_step d.Silvm_diff.d_block d.Silvm_diff.d_port);
        ])
    reports;
  Table.print t;
  let diverged =
    Array.fold_left
      (fun a r -> if r.Silvm_diff.divergence = None then a else a + 1)
      0 reports
  in
  Printf.printf "divergences        : %d / %d\n" diverged seeds;
  (if json then
     let path = Printf.sprintf "DIFF_%s.json" name in
     let open Bench_json in
     write ~path
       (Obj
          [
            ("name", Str name);
            ("git_rev", Str (git_rev ()));
            ("engine", Str (engine_name engine));
            ("steps_requested", Int steps);
            ("signals", Int reports.(0).Silvm_diff.signals);
            ("float_ulp", Int ulp);
            ("scenario", Str scenario.Fault_scenario.sname);
            ("seeds", Int seeds);
            ("divergences", Int diverged);
            ( "runs",
              Arr
                (List.mapi
                   (fun i r ->
                     Obj
                       [
                         ("seed", Int (i + 1));
                         ("steps_run", Int r.Silvm_diff.steps_run);
                         ("divergence", divergence_json r.Silvm_diff.divergence);
                       ])
                   (Array.to_list reports)) );
          ]);
     Printf.printf "JSON report written to %s\n" path);
  write_flight_bundle name;
  if diverged = 0 then 0 else 1

let diff mcu period fixed model_name steps ulp opt engine scenario_ref
    fault_seed seeds jobs json no_flight profile trace metrics =
  with_obs ~profile trace metrics @@ fun () ->
  enable_flight no_flight;
  let scenario = Option.map scenario_or_die scenario_ref in
  let injector = Option.map (fun s -> injector_of s fault_seed) scenario in
  let cfg =
    (* fault scenarios exercise the supervisor's recovery paths *)
    let c = config mcu period fixed in
    if scenario = None then c else { c with Servo_system.with_supervisor = true }
  in
  let float_mode = if ulp > 0 then Silvm_diff.Ulp ulp else Silvm_diff.Exact in
  if seeds > 1 then
    match scenario with
    | None -> die "--seeds %d: a seed sweep varies the fault stream; give --scenario" seeds
    | Some scn ->
        diff_sweep ~cfg ~mcu ~float_mode ~opt ~engine ~steps ~ulp ~scenario:scn
          ~seeds ~jobs ~json model_name
  else
  let fname = if model_name = "isr-demo" then "isr_demo" else model_name in
  register_exit_flush (fun () -> write_flight_bundle fname);
  Flight.begin_track ~id:fault_seed ~name:fname;
  let name, report =
    try
      match model_name with
      | "servo" ->
          let built = build_or_fail cfg in
          let comp = Compile.compile built.Servo_system.controller in
          let plant = Servo_system.pil_plant built in
          let driver = Servo_system.pil_driver built in
          ( "servo",
            Silvm_diff.run ~steps ~float_mode ~opt ~engine
              ~plant:(Silvm_diff.Plant (plant, driver))
              ?injector ~name:"servo" ~project:built.Servo_system.project comp )
      | "isr-demo" ->
          let m, project = Check.hazard_demo ~mcu () in
          let comp = Compile.compile m in
          (* deterministic sweep across the 12-bit ADC range *)
          let stimulus k = [| k * 37 mod 4096 |] in
          ( "isr_demo",
            Silvm_diff.run ~steps ~float_mode ~opt ~engine ~stimulus ?injector
              ~name:"isr_demo" ~project comp )
      | other -> die "unknown model %S (choose servo or isr-demo)" other
    with Target.Codegen_error msg -> die "code generation failed: %s" msg
  in
  let rate t =
    if t > 0.0 then float_of_int report.Silvm_diff.steps_run /. t else 0.0
  in
  Printf.printf "model              : %s\n" name;
  Printf.printf "engine             : %s\n" (engine_name engine);
  (match scenario with
  | Some s ->
      Printf.printf "fault scenario     : %s (seed %d)\n" s.Fault_scenario.sname
        fault_seed
  | None -> ());
  Printf.printf "signals compared   : %d per step\n" report.Silvm_diff.signals;
  Printf.printf "steps              : %d / %d\n" report.Silvm_diff.steps_run
    report.Silvm_diff.steps_requested;
  Printf.printf "MIL rate           : %.0f steps/s\n"
    (rate report.Silvm_diff.mil_seconds);
  Printf.printf "SIL rate           : %.0f steps/s\n"
    (rate report.Silvm_diff.sil_seconds);
  (match report.Silvm_diff.divergence with
  | None -> Printf.printf "result             : zero divergence\n"
  | Some d ->
      Printf.printf
        "result             : DIVERGENCE at step %d (t=%g) on %s port %d\n"
        d.Silvm_diff.d_step d.Silvm_diff.d_time d.Silvm_diff.d_block
        d.Silvm_diff.d_port;
      Printf.printf "                     MIL %s  vs  SIL %s\n"
        d.Silvm_diff.d_mil d.Silvm_diff.d_sil;
      if d.Silvm_diff.d_faults <> [] then
        Printf.printf "                     active faults: %s\n"
          (String.concat ", " d.Silvm_diff.d_faults));
  (if json then
     let path = Printf.sprintf "DIFF_%s.json" name in
     let open Bench_json in
     let divergence = divergence_json report.Silvm_diff.divergence in
     write ~path
       (Obj
          [
            ("name", Str name);
            ("git_rev", Str (git_rev ()));
            ("engine", Str (engine_name engine));
            ("steps_requested", Int report.Silvm_diff.steps_requested);
            ("steps_run", Int report.Silvm_diff.steps_run);
            ("signals", Int report.Silvm_diff.signals);
            ("float_ulp", Int ulp);
            ( "scenario",
              match scenario with
              | Some s -> Str s.Fault_scenario.sname
              | None -> Null );
            ("mil_steps_per_s", Float (rate report.Silvm_diff.mil_seconds));
            ("sil_steps_per_s", Float (rate report.Silvm_diff.sil_seconds));
            ("divergence", divergence);
          ]);
     Printf.printf "JSON report written to %s\n" path);
  write_flight_bundle name;
  match report.Silvm_diff.divergence with None -> 0 | Some _ -> 1

let diff_cmd =
  let model_arg =
    Arg.(
      value
      & pos 0 string "servo"
      & info [] ~docv:"MODEL"
          ~doc:
            "Model to diff: $(b,servo) (the controller in closed loop with \
             the DC-motor plant) or $(b,isr-demo) (ADC event-triggered \
             function-call group).")
  in
  let steps =
    Arg.(
      value & opt int 1000
      & info [ "steps" ] ~docv:"N" ~doc:"Lock-steps to compare (default 1000).")
  in
  let ulp =
    Arg.(
      value & opt int 0
      & info [ "ulp" ] ~docv:"N"
          ~doc:
            "Tolerate $(docv) representable values of float drift per signal \
             (default 0: bit-exact IEEE equality).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Also write the report as DIFF_<model>.json.")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("compiled", Silvm_diff.Compiled);
               ("interp", Silvm_diff.Interp);
               ("both", Silvm_diff.Both);
             ])
          Silvm_diff.Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "SIL execution engine: $(b,compiled) (closure-compiled, the \
             default), $(b,interp) (C AST interpreter), or $(b,both) \
             (tri-lockstep: the compiled engine additionally shadows the \
             interpreter and must match it bit-for-bit).")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME|FILE"
          ~doc:
            "Inject this fault scenario (a built-in name or a $(b,.fault) \
             file) into the sensor stream both sides consume; the servo \
             model gains its safe-state supervisor so the diff covers the \
             recovery paths. A divergence report names the active faults.")
  in
  let fault_seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Seed of the fault injector's random stream (default 1).")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Sweep the differential run over fault seeds 1..$(docv) \
             (default 1: one run with --fault-seed). Needs --scenario; \
             shard across domains with --jobs.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "MIL vs SIL differential execution: run the compiled diagram and \
          the interpreted generated application in lock-step and report the \
          first diverging block output")
    Term.(
      const diff $ mcu_arg $ period_arg $ fixed_arg $ model_arg $ steps $ ulp
      $ opt_arg $ engine $ scenario $ fault_seed $ seeds $ jobs_arg $ json
      $ no_flight_arg $ profile_arg $ trace_arg $ metrics_arg)

(* ---- supervised execution, shared by faultsim and serve ---- *)

(* Validate ECSD_CHAOS_SEED / ECSD_CHAOS_RATE before any job runs, so a
   typo dies with a clear message instead of failing lazily inside a
   worker domain mid-campaign. *)
let validate_chaos () =
  try ignore (Supervise.Chaos.enabled ())
  with Invalid_argument msg -> die "%s" msg

(* Per-job exit-code semantics, documented in `ecsd serve --help`:
   0 success, 1 job-criterion failure (divergence / unrecovered run),
   2 bad request, 3 deadline timeout, 4 crash, 5 poisoned (retries
   exhausted), 6 shed (refused or killed). The serve process itself
   exits 0 after a clean drain. *)
let supervised_exit = function
  | Supervise.Timeout _ -> 3
  | Supervise.Crashed (Supervise.Bad_request _) -> 2
  | Supervise.Crashed _ -> 4
  | Supervise.Transient _ -> 4
  | Supervise.Poisoned _ -> 5
  | Supervise.Shed -> 6

let policy_of_flags ~deadline_s ~retries =
  {
    Supervise.default_policy with
    Supervise.deadline_s = (if deadline_s > 0.0 then Some deadline_s else None);
    retries = (if retries >= 0 then retries else 0);
  }

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-s" ] ~docv:"SECONDS"
        ~doc:
          "Per-job deadline: a job (one seed's run, or one serve job) \
           running longer than $(docv) is cancelled at the next engine \
           step and reported as a $(b,timeout) failure record. Default \
           0: no deadline.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts for jobs that fail transiently (e.g. under \
           injected chaos), with deterministic exponential backoff; a \
           job still transient after all attempts is quarantined as \
           $(b,poisoned). Default 2.")

(* ---- faultsim ---- *)

let faultsim mcu period fixed model_name scenario_ref seeds t_end jobs
    on_error deadline_s retries list_scn json json_out no_flight trace metrics
    =
  if list_scn then begin
    List.iter
      (fun s ->
        Printf.printf "%-16s %s\n" s.Fault_scenario.sname
          (String.concat "; " (List.map Fault.name s.Fault_scenario.faults)))
      Fault_scenario.builtins;
    0
  end
  else
    with_obs trace metrics @@ fun () ->
    enable_flight no_flight;
    validate_chaos ();
    if model_name <> "servo" then
      die "unknown model %S (faultsim drives the servo case study)" model_name;
    (* supervised mode: a failing seed becomes a failure row in the
       report instead of aborting the whole campaign *)
    let policy =
      match on_error with
      | `Abort -> None
      | `Record -> Some (policy_of_flags ~deadline_s ~retries)
    in
    let scenario = scenario_or_die scenario_ref in
    let mk_subject () =
      try
        fst
          (Servo_system.faultsim_subject ~config:(config mcu period fixed)
             ~scenario ())
      with Invalid_argument msg -> die "%s" msg
    in
    (* completed runs accumulate so a `die` mid-campaign still leaves a
       partial report on disk, next to any flight bundle *)
    let want_json = json || json_out <> None in
    let completed_lock = Mutex.create () in
    let completed = ref [] in
    let campaign_done = ref false in
    let on_run rr =
      Mutex.lock completed_lock;
      completed := rr :: !completed;
      Mutex.unlock completed_lock
    in
    register_exit_flush (fun () ->
        write_flight_bundle model_name;
        if want_json && not !campaign_done then begin
          let runs =
            List.sort
              (fun (a : Fault_campaign.run_result) b ->
                compare a.Fault_campaign.seed b.Fault_campaign.seed)
              !completed
          in
          let path =
            match json_out with
            | Some p -> p ^ ".partial"
            | None -> Printf.sprintf "FAULT_%s.partial.json" model_name
          in
          let open Bench_json in
          let opt_f = function Some s -> Float s | None -> Null in
          write ~path
            (Obj
               [
                 ("partial", Bool true);
                 ("model", Str model_name);
                 ("scenario", Str scenario.Fault_scenario.sname);
                 ("seeds_requested", Int seeds);
                 ("seeds_done", Int (List.length runs));
                 ( "runs",
                   Arr
                     (List.map
                        (fun (r : Fault_campaign.run_result) ->
                          Obj
                            [
                              ("seed", Int r.Fault_campaign.seed);
                              ("detection_s", opt_f r.Fault_campaign.detection_s);
                              ("recovery_s", opt_f r.Fault_campaign.recovery_s);
                              ("wdog_bites", Int r.Fault_campaign.wdog_bites);
                            ])
                        runs) );
               ]);
          Printf.eprintf "partial JSON report written to %s\n%!" path
        end);
    let r =
      if jobs <= 1 then
        Fault_campaign.run ~t_end ~seeds ~scenario ~on_run ?policy
          (mk_subject ())
      else
        Exec_pool.with_pool ~workers:jobs (fun pool ->
            Fault_campaign.run_parallel ~t_end ~seeds ~pool ~scenario ~on_run
              ?policy mk_subject)
    in
    campaign_done := true;
    Printf.printf "model              : %s\n" model_name;
    Printf.printf "scenario           : %s\n" r.Fault_campaign.scenario.Fault_scenario.sname;
    List.iter
      (fun f -> Printf.printf "fault              : %s\n" (Fault.name f))
      r.Fault_campaign.scenario.Fault_scenario.faults;
    Printf.printf "runs               : %d seeds x %.2f s (%d steps)\n" seeds
      r.Fault_campaign.t_end r.Fault_campaign.steps_per_run;
    let fmt_opt = function
      | Some s -> Printf.sprintf "%6.1f ms" (1e3 *. s)
      | None -> "      --"
    in
    let t =
      Table.create
        [ "seed"; "detect"; "recovery"; "degraded"; "safestop"; "max";
          "resid rms"; "bites" ]
    in
    List.iter
      (fun (run : Fault_campaign.run_result) ->
        Table.add_row t
          [
            string_of_int run.Fault_campaign.seed;
            fmt_opt run.Fault_campaign.detection_s;
            fmt_opt run.Fault_campaign.recovery_s;
            string_of_int run.Fault_campaign.steps_degraded;
            string_of_int run.Fault_campaign.steps_safestop;
            string_of_int run.Fault_campaign.max_mode;
            Printf.sprintf "%.2f" run.Fault_campaign.residual_rms;
            string_of_int run.Fault_campaign.wdog_bites;
          ])
      r.Fault_campaign.runs;
    Table.print t;
    List.iter
      (fun (seed, e) ->
        Printf.printf "failure            : seed %d %s (%s)\n" seed
          (Supervise.error_class e) (Supervise.error_message e))
      r.Fault_campaign.failures;
    if policy <> None then
      Printf.printf "supervision        : %d/%d seeds ok, %d failed, %d retries\n"
        (List.length r.Fault_campaign.runs)
        seeds
        (List.length r.Fault_campaign.failures)
        r.Fault_campaign.retries_total;
    let detected = Fault_campaign.all_detected r in
    let recovered = Fault_campaign.all_recovered r in
    Printf.printf "detected           : %s\n" (if detected then "all runs" else "NOT ALL");
    Printf.printf "recovered          : %s\n" (if recovered then "all runs" else "NOT ALL");
    (match (json, json_out) with
    | false, None -> ()
    | _ ->
        let path =
          match json_out with
          | Some p -> p
          | None -> Printf.sprintf "FAULT_%s.json" model_name
        in
        Bench_json.write ~path (Fault_campaign.to_json ~model:model_name r);
        Printf.printf "JSON report written to %s\n" path);
    write_flight_bundle model_name;
    if recovered && r.Fault_campaign.failures = [] then 0 else 1

let faultsim_cmd =
  let model_arg =
    Arg.(
      value
      & pos 0 string "servo"
      & info [] ~docv:"MODEL" ~doc:"Model to abuse (currently $(b,servo)).")
  in
  let scenario =
    Arg.(
      value
      & opt string "encoder-dropout"
      & info [ "scenario" ] ~docv:"NAME|FILE"
          ~doc:
            "Fault scenario: a built-in name (see $(b,--list)) or a \
             $(b,.fault) file.")
  in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Campaign size: one run per seed 1..$(docv) (default 5).")
  in
  let t_end =
    Arg.(
      value & opt float 2.0
      & info [ "t-end" ] ~docv:"SECONDS" ~doc:"Length of each run (default 2 s).")
  in
  let list_scn =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the built-in scenarios and exit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Also write the campaign as FAULT_<model>.json.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the campaign JSON to $(docv) (implies $(b,--json)).")
  in
  let on_error =
    Arg.(
      value
      & opt (enum [ ("abort", `Abort); ("record", `Record) ]) `Abort
      & info [ "on-error" ] ~docv:"abort|record"
          ~doc:
            "What a failing seed does to the campaign. $(b,abort) \
             (default): the first failure kills the run, as before. \
             $(b,record): supervised execution — each seed runs under \
             the $(b,--deadline-s)/$(b,--retries) envelope (and any \
             $(b,ECSD_CHAOS_SEED) chaos), failures become per-seed \
             rows in the report, and the campaign completes; exit 1 if \
             any seed failed or never recovered. Failure rows are \
             deterministic, so the report stays byte-identical across \
             $(b,--jobs).")
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Fault-injection campaign: sweep a fault scenario over seeds on the \
          closed loop and report the safe-state supervisor's detection \
          latency, recovery time and watchdog bites (exit 1 if any run never \
          recovers)")
    Term.(
      const faultsim $ mcu_arg $ period_arg $ fixed_arg $ model_arg $ scenario
      $ seeds $ t_end $ jobs_arg $ on_error $ deadline_arg $ retries_arg
      $ list_scn $ json $ json_out $ no_flight_arg $ trace_arg $ metrics_arg)

(* ---- serve ---- *)

(* Long-running campaign queue: one job per stdin line, sharded over the
   worker pool, one JSON result line per job on stdout. Results stream
   in submission order (a reorder buffer holds finished jobs whose
   predecessors are still running), so the output is a deterministic
   function of the input whatever the pool schedule does. *)

let serve_usage =
  "faultsim SCENARIO [SEEDS [T_END]]  |  diff MODEL [STEPS [SCENARIO [SEED \
   [ENGINE]]]]  |  stats  (SCENARIO '-' = none; ENGINE \
   compiled|interp|both)"

let serve mcu period fixed jobs heartbeat prom no_flight deadline_s retries
    queue_hw =
  let cfg = config mcu period fixed in
  (* serve always runs instrumented: the registry feeds the heartbeat
     lines, the `stats` job and the --prom snapshot; the flight recorder
     captures forensics of any diverging or unrecovered job *)
  Obs.reset ();
  Obs.set_enabled true;
  enable_flight no_flight;
  validate_chaos ();
  let policy = policy_of_flags ~deadline_s ~retries in
  (* Graceful degradation: the first SIGINT/SIGTERM stops intake and
     drains the jobs already admitted; a second one flips [killed], so
     in-flight jobs cancel at their next fuel point and report as shed.
     OCaml 5 delivers signals on an arbitrary domain, so the handler
     only sets flags — the read loop polls [draining] (it reads stdin
     through select for exactly this reason) and Cancel tokens poll
     [killed]. *)
  let draining = Atomic.make false in
  let killed = Atomic.make false in
  let on_signal _ =
    if Atomic.get draining then Atomic.set killed true
    else Atomic.set draining true
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let t0 = Obs.now_ns () in
  let workers = if jobs >= 1 then jobs else Domain.recommended_domain_count () in
  let pool = Exec_pool.create ~workers () in
  let lock = Mutex.create () in
  let drained = Condition.create () in
  let pending = ref 0 in
  let jobs_done = ref 0 in
  let next_out = ref 0 in
  let ready : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let emit id line =
    Mutex.lock lock;
    Hashtbl.replace ready id line;
    let rec drain () =
      match Hashtbl.find_opt ready !next_out with
      | Some l ->
          print_endline l;
          flush stdout;
          Hashtbl.remove ready !next_out;
          incr next_out;
          drain ()
      | None -> ()
    in
    drain ();
    decr pending;
    incr jobs_done;
    if heartbeat > 0 && !jobs_done mod heartbeat = 0 then begin
      (* interleaves with result lines but is itself one JSON line, so
         line-by-line consumers stay happy; distinguished by the
         "heartbeat":true field (result lines carry "id") *)
      print_endline
        (Telemetry.heartbeat_line ~jobs_done:!jobs_done ~inflight:!pending
           ~wall_s:((Obs.now_ns () -. t0) *. 1e-9));
      flush stdout
    end;
    Condition.broadcast drained;
    Mutex.unlock lock
  in
  let open Bench_json in
  (* runtime request errors (unknown scenario/model) are bad requests:
     classified, never retried, worker survives *)
  let scenario_or_fail s =
    match Fault_scenario.find s with
    | Ok scn -> scn
    | Error e -> raise (Supervise.Bad_request e)
  in
  let run_faultsim scn_ref seeds t_end =
    let scenario = scenario_or_fail scn_ref in
    let subject, _ =
      Servo_system.faultsim_subject ~config:cfg ~scenario ()
    in
    let r = Fault_campaign.run ~t_end ~seeds ~scenario subject in
    let recovered = Fault_campaign.all_recovered r in
    [
      ("job", Str "faultsim");
      ("scenario", Str r.Fault_campaign.scenario.Fault_scenario.sname);
      ("seeds", Int seeds);
      ("t_end", Float r.Fault_campaign.t_end);
      ("all_detected", Bool (Fault_campaign.all_detected r));
      ("all_recovered", Bool recovered);
      ( "wdog_bites",
        Int
          (List.fold_left
             (fun a x -> a + x.Fault_campaign.wdog_bites)
             0 r.Fault_campaign.runs) );
      ("wall_s", Float r.Fault_campaign.wall_s);
      ("exit", Int (if recovered then 0 else 1));
    ]
  in
  let run_diff model steps scn_ref seed engine =
    let scenario = Option.map scenario_or_fail scn_ref in
    let injector = Option.map (fun s -> injector_of s seed) scenario in
    let dcfg =
      if scenario = None then cfg
      else { cfg with Servo_system.with_supervisor = true }
    in
    let name, report =
      match model with
      | "servo" ->
          let built = Servo_system.build ~config:dcfg () in
          let comp = Compile_cache.compile built.Servo_system.controller in
          let plant = Servo_system.pil_plant built in
          let driver = Servo_system.pil_driver built in
          ( "servo",
            Silvm_diff.run ~steps ~float_mode:Silvm_diff.Exact ~engine
              ~plant:(Silvm_diff.Plant (plant, driver))
              ?injector ~name:"servo" ~project:built.Servo_system.project comp
          )
      | "isr-demo" ->
          let m, project = Check.hazard_demo ~mcu () in
          let comp = Compile_cache.compile m in
          let stimulus k = [| k * 37 mod 4096 |] in
          ( "isr_demo",
            Silvm_diff.run ~steps ~float_mode:Silvm_diff.Exact ~engine ~stimulus
              ?injector ~name:"isr_demo" ~project comp )
      | other ->
          raise (Supervise.Bad_request (Printf.sprintf "unknown model %S" other))
    in
    let ok = report.Silvm_diff.divergence = None in
    [
      ("job", Str "diff");
      ("model", Str name);
      ("engine", Str (engine_name engine));
      ("steps_run", Int report.Silvm_diff.steps_run);
      ( "scenario",
        match scenario with
        | Some s -> Str s.Fault_scenario.sname
        | None -> Null );
      ("divergence", divergence_json report.Silvm_diff.divergence);
      ("exit", Int (if ok then 0 else 1));
    ]
  in
  (* live introspection of the metrics registry, as a queue job so it
     serialises with the real work in submission order *)
  let run_stats () =
    let snap = Obs.snapshot () in
    let done_now =
      Mutex.lock lock;
      let d = !jobs_done in
      Mutex.unlock lock;
      d
    in
    [
      ("job", Str "stats");
      ("jobs_done", Int done_now);
      ("wall_s", Float (Telemetry.wall ((Obs.now_ns () -. t0) *. 1e-9)));
      ( "counters",
        Obj
          (List.filter_map
             (fun (k, v) -> if v = 0 then None else Some (k, Int v))
             snap.Obs.counters) );
      ("gauges", Obj (List.map (fun (k, v) -> (k, Float v)) snap.Obs.gauges));
      ( "hists",
        Obj
          (List.filter_map
             (fun (k, hs) ->
               if hs.Obs.hs_count = 0 then None
               else
                 Some
                   ( k,
                     Obj
                       [
                         ("count", Int hs.Obs.hs_count);
                         ("p50", Float hs.Obs.hs_p50);
                         ("p95", Float hs.Obs.hs_p95);
                         ("max", Float hs.Obs.hs_max);
                       ] ))
             snap.Obs.hists) );
      ("exit", Int 0);
    ]
  in
  (* Malformed lines are rejected at parse time — numeric arguments
     validate eagerly, so a bad count never reaches a worker — and
     reported as structured bad-request records instead of a free-form
     failwith string. *)
  let parse_job line =
    let usage what = Error (Printf.sprintf "%s (expected: %s)" what serve_usage) in
    let int_arg what s k =
      match int_of_string_opt s with
      | Some v -> k v
      | None -> usage (Printf.sprintf "bad %s %S" what s)
    in
    let float_arg what s k =
      match float_of_string_opt s with
      | Some v -> k v
      | None -> usage (Printf.sprintf "bad %s %S" what s)
    in
    match
      String.split_on_char ' ' line
      |> List.filter (fun s -> String.trim s <> "")
    with
    | [ "stats" ] -> Ok (fun () -> run_stats ())
    | [ "faultsim"; scn ] -> Ok (fun () -> run_faultsim scn 5 2.0)
    | [ "faultsim"; scn; seeds ] ->
        int_arg "seed count" seeds @@ fun seeds ->
        Ok (fun () -> run_faultsim scn seeds 2.0)
    | [ "faultsim"; scn; seeds; t_end ] ->
        int_arg "seed count" seeds @@ fun seeds ->
        float_arg "t_end" t_end @@ fun t_end ->
        Ok (fun () -> run_faultsim scn seeds t_end)
    | [ "diff"; model ] ->
        Ok (fun () -> run_diff model 1000 None 1 Silvm_diff.Compiled)
    | [ "diff"; model; steps ] ->
        int_arg "step count" steps @@ fun steps ->
        Ok (fun () -> run_diff model steps None 1 Silvm_diff.Compiled)
    | [ "diff"; model; steps; scn ] ->
        let scn = if scn = "-" then None else Some scn in
        int_arg "step count" steps @@ fun steps ->
        Ok (fun () -> run_diff model steps scn 1 Silvm_diff.Compiled)
    | [ "diff"; model; steps; scn; seed ] ->
        let scn = if scn = "-" then None else Some scn in
        int_arg "step count" steps @@ fun steps ->
        int_arg "seed" seed @@ fun seed ->
        Ok (fun () -> run_diff model steps scn seed Silvm_diff.Compiled)
    | [ "diff"; model; steps; scn; seed; eng ] -> (
        let scn = if scn = "-" then None else Some scn in
        int_arg "step count" steps @@ fun steps ->
        int_arg "seed" seed @@ fun seed ->
        match engine_of_name eng with
        | Some engine -> Ok (fun () -> run_diff model steps scn seed engine)
        | None -> usage (Printf.sprintf "bad engine %S (compiled|interp|both)" eng))
    | _ -> usage "bad job line"
  in
  let error_fields ~job ~attempts err =
    [
      ("job", Str job);
      ("class", Str (Supervise.error_class err));
      ("error", Str (Supervise.error_message err));
      ("attempts", Int attempts);
      ("exit", Int (supervised_exit err));
    ]
  in
  let submit_job id line =
    Mutex.lock lock;
    incr pending;
    Mutex.unlock lock;
    Exec_pool.submit pool (fun () ->
        Flight.begin_track ~id ~name:line;
        let t_start = Obs.now_ns () in
        let fields =
          match parse_job line with
          | Error msg ->
              error_fields ~job:"error" ~attempts:0
                (Supervise.Crashed (Supervise.Bad_request msg))
          | Ok thunk -> (
              (* the supervised envelope: deadline, retry/backoff,
                 chaos, kill-on-second-signal; never raises, so the
                 worker always survives the job *)
              let o = Supervise.supervise ~policy ~killed ~label:line thunk in
              match o.Supervise.result with
              | Ok fields ->
                  if o.Supervise.attempts > 1 then
                    fields @ [ ("attempts", Int o.Supervise.attempts) ]
                  else fields
              | Error (Supervise.Shed as err) ->
                  error_fields ~job:"shed" ~attempts:o.Supervise.attempts err
              | Error err ->
                  error_fields ~job:"error" ~attempts:o.Supervise.attempts err)
        in
        Obs.record_named "serve.job_s" ((Obs.now_ns () -. t_start) *. 1e-9);
        (* publish before emit so the heartbeat taken there (and any
           later `stats` job) sees this job's latency sample *)
        Obs.publish ();
        emit id (to_string (Obj (("id", Int id) :: fields))))
  in
  (* Bounded queue: past the high-water mark of admitted-but-unfinished
     jobs the server sheds instead of buffering without bound — the
     shed record streams back in order like any result, so the client
     sees the backpressure immediately and can re-submit. *)
  let shed_job id =
    Supervise.record_shed ();
    Mutex.lock lock;
    incr pending;
    Mutex.unlock lock;
    emit id
      (to_string
         (Obj
            (("id", Int id)
            :: error_fields ~job:"shed" ~attempts:0 Supervise.Shed)))
  in
  let admit id line =
    let backlog =
      Mutex.lock lock;
      let p = !pending in
      Mutex.unlock lock;
      p
    in
    if queue_hw > 0 && backlog >= queue_hw then shed_job id else submit_job id line
  in
  (* The read loop polls stdin through select so a drain signal is
     noticed within 200 ms even with no input flowing ([input_line]
     would block until the next line). Lines are reassembled from raw
     reads; a trailing unterminated line still runs at EOF. *)
  let inbuf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let submit_lines id =
    let data = Buffer.contents inbuf in
    Buffer.clear inbuf;
    let n = String.length data in
    let id = ref id in
    let start = ref 0 in
    (try
       while not (Atomic.get draining) do
         match String.index_from data !start '\n' with
         | exception Not_found -> raise Exit
         | nl ->
             let l = String.trim (String.sub data !start (nl - !start)) in
             start := nl + 1;
             if l <> "" && l.[0] <> '#' then begin
               admit !id l;
               incr id
             end
       done
     with Exit -> ());
    (* keep the partial tail for the next read *)
    if !start < n then Buffer.add_substring inbuf data !start (n - !start);
    !id
  in
  let rec read_loop id =
    if not (Atomic.get draining) then
      match Unix.select [ Unix.stdin ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop id
      | [], _, _ -> read_loop id
      | _ -> (
          match Unix.read Unix.stdin chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop id
          | 0 ->
              (* EOF: run any unterminated final line *)
              if Buffer.length inbuf > 0 then begin
                Buffer.add_char inbuf '\n';
                ignore (submit_lines id)
              end
          | n ->
              Buffer.add_subbytes inbuf chunk 0 n;
              read_loop (submit_lines id))
  in
  read_loop 0;
  if Atomic.get draining then begin
    Printf.eprintf
      "draining: intake stopped, %d job(s) in flight (signal again to shed \
       them)\n\
       %!"
      (let () = Mutex.lock lock in
       let p = !pending in
       Mutex.unlock lock;
       p);
    (* forensics of the interrupted session: dump the rings so the
       flight bundle below records what every job was doing *)
    if Flight.enabled () then
      Flight.capture ~reason:"serve: drain on signal"
  end;
  (* shutdown drops queued injector tasks, so drain first *)
  Mutex.lock lock;
  while !pending > 0 do
    Condition.wait drained lock
  done;
  Mutex.unlock lock;
  Exec_pool.shutdown pool;
  (match prom with
  | Some path ->
      Telemetry.write_prometheus ~path;
      Printf.eprintf "prometheus snapshot written to %s\n%!" path
  | None -> ());
  write_flight_bundle "serve";
  0

let serve_cmd =
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains (default 0: one per recommended domain, i.e. \
             the machine's cores).")
  in
  let heartbeat =
    Arg.(
      value & opt int 0
      & info [ "heartbeat" ] ~docv:"N"
          ~doc:
            "Every $(docv) completed jobs, emit one JSON heartbeat line \
             on stdout carrying throughput, the in-flight count and the \
             job-latency quantiles; heartbeat lines have a \
             $(b,heartbeat) field, result lines an $(b,id) field. \
             Default 0: off.")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "After the queue drains, write the metrics registry as a \
             Prometheus text-exposition snapshot to $(docv).")
  in
  let queue =
    Arg.(
      value & opt int 0
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded-queue high-water mark: while $(docv) jobs are \
             admitted but unfinished, further lines are refused with a \
             $(b,\"job\":\"shed\") record (exit field 6) instead of \
             buffering without bound. Default 0: unbounded.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Campaign queue mode: read jobs from stdin (one per line: \
          $(b,faultsim SCENARIO [SEEDS [T_END]]), $(b,diff MODEL [STEPS \
          [SCENARIO [SEED]]]) or $(b,stats)), run them on a work-stealing \
          domain pool and stream one JSON result line per job on stdout, \
          in submission order. Blank lines and $(b,#) comments are \
          skipped. Every job runs supervised: $(b,--deadline-s) bounds \
          its runtime, transient failures retry up to $(b,--retries) \
          times with deterministic backoff, and failures come back as \
          structured records — $(b,\"class\") is one of bad_request | \
          timeout | crashed | transient | poisoned | shed, and the \
          per-job $(b,\"exit\") field is 0 success, 1 criterion failure \
          (divergence or unrecovered run), 2 bad request, 3 timeout, 4 \
          crash, 5 poisoned, 6 shed. SIGINT/SIGTERM stops intake and \
          drains in-flight jobs, then flushes the $(b,--prom) snapshot \
          and the flight bundle before exiting 0; a second signal sheds \
          the in-flight jobs too.")
    Term.(
      const serve $ mcu_arg $ period_arg $ fixed_arg $ jobs $ heartbeat $ prom
      $ no_flight_arg $ deadline_arg $ retries_arg $ queue)

(* ---- analyze ---- *)

let analyze mcu period fixed bg_load =
  let cfg = config mcu period fixed in
  let built = build_or_fail cfg in
  let comp = Compile.compile built.Servo_system.controller in
  let arts = Target.generate ~name:"servo" ~project:built.Servo_system.project comp in
  let f_cpu = mcu.Mcu_db.f_cpu_hz in
  let ctrl_wcet =
    float_of_int arts.Target.schedule.Target.total_step_cycles /. f_cpu
  in
  let tasks =
    { Rta.tname = "model_step"; period; wcet = ctrl_wcet; prio = 2 }
    ::
    (if bg_load > 0.0 then
       [ { Rta.tname = "background"; period = 0.73 *. period;
           wcet = bg_load *. 0.73 *. period; prio = 5 } ]
     else [])
  in
  Printf.printf "schedulability of the generated application on %s\n" mcu.Mcu_db.name;
  Printf.printf "utilization: %.2f %% (Liu-Layland bound for %d tasks: %.2f %%)\n"
    (100.0 *. Rta.utilization tasks)
    (List.length tasks)
    (100.0 *. Rta.rm_bound (List.length tasks));
  let t = Table.create [ "task"; "period"; "wcet"; "worst response"; "verdict" ] in
  List.iter
    (fun v ->
      Table.add_row t
        [
          v.Rta.task.Rta.tname;
          Printf.sprintf "%.3f ms" (v.Rta.task.Rta.period *. 1e3);
          Printf.sprintf "%.1f us" (v.Rta.task.Rta.wcet *. 1e6);
          (if Float.is_finite v.Rta.response then
             Printf.sprintf "%.1f us" (v.Rta.response *. 1e6)
           else "unbounded");
          (if v.Rta.schedulable then "OK" else "DEADLINE MISS");
        ])
    (Rta.non_preemptive tasks);
  Table.print t;
  print_endline "(non-preemptive analysis, the policy of the generated code)";
  match Rta.analyze ~preemptive:false tasks with Ok _ -> 0 | Error _ -> 1

let analyze_cmd =
  let bg =
    Arg.(
      value & opt float 0.0
      & info [ "bg-load" ] ~docv:"FRACTION"
          ~doc:"Add a competing background ISR with this CPU share.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static schedulability (response-time analysis) of the generated schedule")
    Term.(const analyze $ mcu_arg $ period_arg $ fixed_arg $ bg)

(* ---- check ---- *)

let check_models = [ "servo"; "closed-loop"; "plant"; "isr-demo" ]

(* Several models shard over a domain pool like `diff --sweep`: each
   worker builds its own model (compiles dedup through the cache) and
   the reports print in argument order, so stdout and the JSON file are
   byte-identical whatever --jobs is. *)
let check mcu period fixed model_name preemptive rules suppress jobs json
    strict profile =
  with_obs ~profile None false @@ fun () ->
  let model_names =
    if model_name = "all" then check_models
    else
      String.split_on_char ',' model_name
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
  in
  if model_names = [] then die "no model named in %S" model_name;
  List.iter
    (fun m ->
      if not (List.mem m check_models) then
        die
          "unknown model %S (choose servo, closed-loop, plant, isr-demo, a \
           comma-separated list of those, or all)"
          m)
    model_names;
  let rules =
    match rules with
    | None -> None
    | Some list ->
        let pats = String.split_on_char ',' list |> List.map String.trim in
        List.iter
          (fun r ->
            if
              not
                (List.exists
                   (fun ri -> ri.Diag.id = r || ri.Diag.family = r)
                   Diag.catalogue)
            then die "unknown rule %S in --rules" r)
          pats;
        Some pats
  in
  let suppress =
    List.map
      (fun s ->
        match Diag.parse_suppression s with
        | Ok sup -> sup
        | Error msg -> die "--suppress %s: %s" s msg)
      suppress
  in
  (* die on a bad --mcu/--period before any worker domain spawns *)
  let cfg = config mcu period fixed in
  if List.exists (fun m -> m <> "plant" && m <> "isr-demo") model_names then
    ignore (build_or_fail cfg);
  let check_one name =
    let model, project =
      match name with
      | "servo" ->
          let built = build_or_fail cfg in
          (built.Servo_system.controller, Some built.Servo_system.project)
      | "closed-loop" ->
          let built = build_or_fail cfg in
          (built.Servo_system.closed_loop, Some built.Servo_system.project)
      | "plant" -> (Servo_system.plant_model cfg, None)
      | "isr-demo" ->
          let m, p = Check.hazard_demo ~mcu () in
          (m, Some p)
      | _ -> assert false
    in
    Check.run ?rules ~suppress ~preemptive ?project model
  in
  let names = Array.of_list model_names in
  let n = Array.length names in
  let reports =
    if jobs <= 1 || n <= 1 then Array.init n (fun i -> check_one names.(i))
    else
      Exec_pool.with_pool ~workers:(min jobs n) (fun pool ->
          Exec_pool.run_map pool ~chunk:1 n (fun i -> check_one names.(i)))
  in
  Array.iter (fun r -> print_string (Check.render r)) reports;
  (match json with
  | Some path ->
      let doc =
        if n = 1 then Check.to_json reports.(0)
        else
          Bench_json.Obj
            [
              ("schema", Bench_json.Str "ecsd-check-multi-1");
              ("git_rev", Bench_json.Str (Bench_json.git_rev ()));
              ( "reports",
                Bench_json.Arr
                  (Array.to_list (Array.map Check.to_json reports)) );
            ]
      in
      Bench_json.write ~path doc;
      Printf.printf "JSON report written to %s\n" path
  | None -> ());
  Array.fold_left (fun acc r -> max acc (Check.exit_code ~strict r)) 0 reports

let check_cmd =
  let model_arg =
    Arg.(
      value
      & pos 0 string "servo"
      & info [] ~docv:"MODEL"
          ~doc:
            "Model(s) to check: $(b,servo) (the controller), \
             $(b,closed-loop), $(b,plant), $(b,isr-demo) (a model with an \
             injected ISR shared-state hazard), a comma-separated list of \
             those, or $(b,all). Several models shard across $(b,--jobs) \
             worker domains; the output is identical whatever $(b,--jobs) \
             is.")
  in
  let preemptive =
    Arg.(
      value & flag
      & info [ "preemptive" ]
          ~doc:
            "Assume preemptive ISRs for the concurrency rules (the generated \
             code is non-preemptive; this models enabling nested interrupts).")
  in
  let rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"LIST"
          ~doc:
            "Comma-separated rule IDs or families to run (e.g. \
             $(b,FXP,CON001)). Default: all.")
  in
  let suppress =
    Arg.(
      value
      & opt_all string []
      & info [ "suppress" ] ~docv:"SUBJECT:RULE"
          ~doc:
            "Suppress a rule for one subject ($(b,pid:FXP002)) or everywhere \
             ($(b,MIS005)). Repeatable. Suppressed findings stay in the \
             report but do not affect $(b,--strict).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit 1 when any unsuppressed error-severity finding remains.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static analysis: model advisor, fixed-point range analysis, ISR \
          shared-state detection, MISRA-subset C lint")
    Term.(
      const check $ mcu_arg $ period_arg $ fixed_arg $ model_arg $ preemptive
      $ rules $ suppress $ jobs_arg $ json $ strict $ profile_arg)

(* ---- simgen ---- *)

let simgen mcu period fixed out_dir =
  let cfg = config mcu period fixed in
  ignore (build_or_fail cfg);
  let m = Servo_system.plant_model cfg in
  let comp = Compile.compile ~default_dt:1e-4 m in
  let arts = Sim_target.generate ~name:"servo" ~baud:cfg.Servo_system.baud comp in
  let files = Sim_target.write_to_dir arts ~dir:out_dir in
  Printf.printf
    "Linux simulator target: %d plant blocks -> %d LoC plant + %d LoC runtime, %.0f us step\n"
    arts.Sim_target.report.Sim_target.n_blocks
    arts.Sim_target.report.Sim_target.plant_loc
    arts.Sim_target.report.Sim_target.runtime_loc
    (arts.Sim_target.report.Sim_target.sim_step *. 1e6);
  Printf.printf "wrote %d files to %s (build with make, run: ./sim /dev/ttyS0)\n"
    (List.length files) out_dir;
  0

let simgen_cmd =
  let out =
    Arg.(
      value & opt string "sim_generated"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "simgen"
       ~doc:"Generate the plant for the Linux simulator PC (the xPC replacement, section 8)")
    Term.(const simgen $ mcu_arg $ period_arg $ fixed_arg $ out)

(* ---- mcus ---- *)

let mcus () =
  let t =
    Table.create [ "name"; "family"; "core"; "clock"; "flash"; "RAM"; "ADC"; "qdec" ]
  in
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.Mcu_db.name;
          m.Mcu_db.family;
          m.Mcu_db.core;
          Printf.sprintf "%.0f MHz" (m.Mcu_db.f_cpu_hz /. 1e6);
          Printf.sprintf "%d KiB" (m.Mcu_db.flash_bytes / 1024);
          Printf.sprintf "%d KiB" (m.Mcu_db.ram_bytes / 1024);
          String.concat "/"
            (List.map string_of_int m.Mcu_db.adc.Mcu_db.resolutions)
          ^ " bit";
          (if m.Mcu_db.has_qdec then "yes" else "no");
        ])
    Mcu_db.all;
  Table.print t;
  0

let mcus_cmd =
  Cmd.v (Cmd.info "mcus" ~doc:"List the MCU database") Term.(const mcus $ const ())

let () =
  let doc = "integrated environment for embedded control systems design" in
  let info = Cmd.info "ecsd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ inspect_cmd; mil_cmd; codegen_cmd; pil_cmd; diff_cmd; faultsim_cmd;
            serve_cmd; check_cmd; simgen_cmd; analyze_cmd; mcus_cmd ]))
