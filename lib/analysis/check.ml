type report = {
  model_name : string;
  findings : Diag.finding list;
  notes : string list;
}

(* per-pass self-profiling: each analysis pass gets an Obs span (flame
   view) and a profile.check.<pass>_s histogram (--profile table,
   BENCH_perf.json) *)
let pass name f =
  if not (Obs.enabled ()) then f ()
  else begin
    let t0 = Obs.now_ns () in
    let r = Obs.span ("check." ^ name) f in
    Obs.record_named
      ("profile.check." ^ name ^ "_s")
      ((Obs.now_ns () -. t0) *. 1e-9);
    r
  end

let run ?rules ?(suppress = []) ?(preemptive = false) ?project m =
  Obs.span "analysis.check" @@ fun () ->
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let comp =
    match pass "compile" (fun () -> Compile.compile m) with
    | c -> Some c
    | exception Compile.Compile_error _ ->
        note
          "range/concurrency/MISRA analyses skipped: the model does not \
           compile (see MDL findings)";
        None
  in
  let lint = pass "lint" (fun () -> Model_lint.findings ?project ?comp m) in
  let deep =
    match comp with
    | None -> []
    | Some comp ->
        let word_bits =
          match project with
          | Some p -> (Bean_project.mcu p).Mcu_db.word_bits
          | None -> 16
        in
        let range_findings =
          pass "range" (fun () -> Range.findings (Range.analyze comp))
        in
        let concurrency_findings =
          pass "concurrency" (fun () ->
              Concurrency.findings ~preemptive ~word_bits comp
              @
              match project with
              | Some p -> Concurrency.watchdog_findings ~project:p comp
              | None -> [])
        in
        let misra_findings =
          match project with
          | None ->
              note "MISRA C lint skipped: no Processor Expert project attached";
              []
          | Some project -> (
              let unsupported =
                List.filter
                  (fun b -> not (Blockgen.supported (Model.spec_of m b)))
                  (Model.blocks m)
              in
              if unsupported <> [] then begin
                note "MISRA C lint skipped: no embedded realisation for %s"
                  (String.concat ", "
                     (List.map
                        (fun b ->
                          Printf.sprintf "%s (%s)" (Model.block_name m b)
                            (Model.spec_of m b).Block.kind)
                        unsupported));
                []
              end
              else
                match
                  pass "codegen" (fun () ->
                      Target.generate ~name:(Model.name m) ~project comp)
                with
                | arts ->
                    pass "misra" (fun () ->
                        Misra.lint
                          (arts.Target.model_h :: arts.Target.model_c
                         :: arts.Target.main_c :: arts.Target.hal)
                        @ Mir_rules.findings arts)
                | exception Target.Codegen_error msg ->
                    note "MISRA C lint skipped: code generation failed: %s" msg;
                    [])
        in
        range_findings @ concurrency_findings @ misra_findings
  in
  let findings =
    List.filter (fun f -> Diag.rule_selected ?rules f.Diag.rule) (lint @ deep)
    |> Diag.apply_suppressions suppress
    |> List.stable_sort Diag.compare_finding
  in
  Obs.incr_counter "analysis.models_checked";
  Obs.incr_counter ~by:(List.length findings) "analysis.findings";
  { model_name = Model.name m; findings; notes = List.rev !notes }

let counts r =
  List.fold_left
    (fun (e, w, i) f ->
      if f.Diag.suppressed then (e, w, i)
      else
        match f.Diag.severity with
        | Diag.Error -> (e + 1, w, i)
        | Diag.Warning -> (e, w + 1, i)
        | Diag.Info -> (e, w, i + 1))
    (0, 0, 0) r.findings

let errors r =
  let e, _, _ = counts r in
  e

let exit_code ~strict r = if strict && errors r > 0 then 1 else 0

let render r =
  let buf = Buffer.create 1024 in
  let e, w, i = counts r in
  Buffer.add_string buf
    (Printf.sprintf "check %s: %d error%s, %d warning%s, %d info\n"
       r.model_name e
       (if e = 1 then "" else "s")
       w
       (if w = 1 then "" else "s")
       i);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %-7s %s %-14s %s%s\n"
           (Diag.severity_to_string f.Diag.severity)
           f.Diag.rule
           (if f.Diag.subject = "" then "-" else f.Diag.subject)
           f.Diag.detail
           (if f.Diag.suppressed then "  [suppressed]" else "")))
    r.findings;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  note: %s\n" n))
    r.notes;
  Buffer.contents buf

let to_json r =
  let e, w, i = counts r in
  Bench_json.Obj
    [
      ("schema", Bench_json.Str "ecsd-check-1");
      ("model", Bench_json.Str r.model_name);
      ("git_rev", Bench_json.Str (Bench_json.git_rev ()));
      ("errors", Bench_json.Int e);
      ("warnings", Bench_json.Int w);
      ("infos", Bench_json.Int i);
      ( "findings",
        Bench_json.Arr
          (List.map
             (fun f ->
               Bench_json.Obj
                 [
                   ("rule", Bench_json.Str f.Diag.rule);
                   ( "severity",
                     Bench_json.Str (Diag.severity_to_string f.Diag.severity) );
                   ("subject", Bench_json.Str f.Diag.subject);
                   ("detail", Bench_json.Str f.Diag.detail);
                   ("suppressed", Bench_json.Bool f.Diag.suppressed);
                 ])
             r.findings) );
      ("notes", Bench_json.Arr (List.map (fun n -> Bench_json.Str n) r.notes));
    ]

(* The injected ISR shared-state hazard: an ADC end-of-conversion event
   triggers a function-call group that rescales the sample; the periodic
   timer step consumes the rescaled value for the duty command. Two
   signals cross execution contexts: the raw code into the group, the
   filtered volts out of it. *)
let hazard_demo ?(mcu = Mcu_db.mc56f8367) () =
  let p = Bean_project.create mcu in
  let add_bean name config = Bean_project.add p (Bean.make ~name config) in
  let ti = add_bean "TI1" (Bean.Timer_int { period = 1e-3; tolerance_frac = 0.01 }) in
  let ad =
    add_bean "AD1"
      (Bean.Adc { channel = None; resolution = 12; vref = 3.3; sample_period = 1e-3 })
  in
  let pw =
    add_bean "PWM1" (Bean.Pwm { channel = None; freq_hz = 20e3; initial_ratio = 0.0 })
  in
  let m = Model.create "isr_demo" in
  let _timer = Model.add m ~name:"ti" (Periph_blocks.timer_int ti) in
  let pot = Model.add m ~name:"pot" (Sources.constant 1.5) in
  let adc = Model.add m ~name:"adc" (Periph_blocks.adc ad) in
  Model.connect m ~src:(pot, 0) ~dst:(adc, 0);
  (* the end-of-conversion ISR: rescale the sample to volts *)
  let g = Model.fc_group m "adc_filter" in
  let filt =
    Model.add m ~name:"filt"
      (Math_blocks.gain ~dtype:Dtype.Double (Periph_blocks.adc_volts_gain ad))
  in
  Model.assign_group m filt g;
  Model.connect_event m ~src:(adc, 0) g;
  Model.connect m ~src:(adc, 0) ~dst:(filt, 0);
  (* the periodic step consumes the ISR-written value *)
  let duty = Model.add m ~name:"duty" (Math_blocks.gain (1.0 /. 3.3)) in
  let sat = Model.add m ~name:"duty_sat" (Nonlinear_blocks.saturation ~lo:0.0 ~hi:1.0) in
  let pwm = Model.add m ~name:"pwm" (Periph_blocks.pwm pw) in
  Model.connect m ~src:(filt, 0) ~dst:(duty, 0);
  Model.connect m ~src:(duty, 0) ~dst:(sat, 0);
  Model.connect m ~src:(sat, 0) ~dst:(pwm, 0);
  (m, p)
