(** The analysis driver behind [ecsd check]: runs every rule family
    over a model (and, when the Processor Expert project is given, over
    the generated C), filters and suppresses, and renders the result as
    an ASCII report or a machine-readable JSON document
    ({!Bench_json}). *)

type report = {
  model_name : string;
  findings : Diag.finding list;  (** filtered, suppression-marked, sorted *)
  notes : string list;
      (** analyses skipped and why (e.g. codegen not possible) *)
}

val run :
  ?rules:string list ->
  ?suppress:Diag.suppression list ->
  ?preemptive:bool ->
  ?project:Bean_project.t ->
  Model.t ->
  report
(** Run model lint always; range and concurrency analysis when the
    model compiles; MISRA C lint when [project] is given and every
    block has an embedded realisation (so {!Target.generate} applies).
    [rules] restricts to the given IDs or family prefixes;
    [preemptive] selects the CON severity regime. Never raises. *)

val errors : report -> int
(** Unsuppressed error-severity findings. *)

val counts : report -> int * int * int
(** Unsuppressed (errors, warnings, infos). *)

val render : report -> string
(** The ASCII report. *)

val to_json : report -> Bench_json.t

val exit_code : strict:bool -> report -> int
(** [0], or [1] under [~strict:true] when {!errors} is nonzero. *)

val hazard_demo : ?mcu:Mcu_db.t -> unit -> Model.t * Bean_project.t
(** The built-in [isr-demo] example: an ADC end-of-conversion ISR
    (function-call group) filtering a signal that the periodic timer
    step consumes — the injected shared-state hazard the CON rules
    flag. *)
