type context = Periodic | Isr of Model.group

let context_of m b =
  match Model.group_of m b with Some g -> Isr g | None -> Periodic

let context_name m = function
  | Periodic -> "the periodic timer step"
  | Isr g -> Printf.sprintf "ISR group %S" (Model.group_name m g)

(* CON004: a Watch_dog bean only earns its keep if the periodic step
   services it. A watchdog cleared from no generated context at all, or
   only from an event-driven ISR (which stops firing exactly when the
   system wedges), will bite in deployment the first time the periodic
   step stalls — or, worse, never protect anything. Blocks advertise
   their service call through a "wdog_bean" string parameter (the
   {!Supervisor} block does). *)
let watchdog_findings ~project comp =
  let m = comp.Compile.model in
  List.filter_map
    (fun bean ->
      match bean.Bean.config with
      | Bean.Watch_dog _ ->
          let bn = bean.Bean.bname in
          let clearers =
            List.filter
              (fun b ->
                match
                  List.assoc_opt "wdog_bean" (Model.spec_of m b).Block.params
                with
                | Some (Param.String s) -> s = bn
                | _ -> false)
              (Model.blocks m)
          in
          let contexts = List.map (context_of m) clearers in
          if List.mem Periodic contexts then None
          else
            let detail =
              match clearers with
              | [] ->
                  Printf.sprintf
                    "watchdog bean %s is enabled at startup but no block in \
                     the model services it (%s_Clear is never called): it \
                     will bite on deployment"
                    bn bn
              | _ ->
                  Printf.sprintf
                    "watchdog bean %s is serviced only from %s; an \
                     event-driven ISR stops firing exactly when the system \
                     wedges, so the periodic step must call %s_Clear"
                    bn
                    (String.concat ", "
                       (List.map (context_name m) contexts))
                    bn
            in
            Some (Diag.make ~rule:"CON004" ~subject:bn detail)
      | _ -> None)
    (Bean_project.beans project)

let findings ?(preemptive = false) ?(word_bits = 16) comp =
  let m = comp.Compile.model in
  (* readers of each output port that live in a different execution
     context than the writer *)
  let shared = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      for p = 0 to spec.Block.n_in - 1 do
        match Model.driver m (b, p) with
        | Some (sb, sp) ->
            let wctx = context_of m sb and rctx = context_of m b in
            if wctx <> rctx then begin
              let key = (Model.blk_index sb, sp) in
              let prev =
                match Hashtbl.find_opt shared key with
                | Some (_, _, readers) -> readers
                | None -> []
              in
              if not (List.mem rctx prev) then
                Hashtbl.replace shared key (sb, wctx, rctx :: prev)
            end
        | None -> ()
      done)
    (Model.blocks m);
  let per_signal =
    Hashtbl.fold (fun (_, sp) (sb, wctx, readers) acc ->
        (sb, sp, wctx, List.rev readers) :: acc)
      shared []
    |> List.sort (fun (a, ap, _, _) (b, bp, _, _) ->
           compare (Model.blk_index a, ap) (Model.blk_index b, bp))
  in
  List.concat_map
    (fun (sb, sp, wctx, readers) ->
      let name = Model.block_name m sb in
      let dt = comp.Compile.out_types.(Model.blk_index sb).(sp) in
      let where =
        Printf.sprintf "signal %s:%d (%s) is written in %s and read in %s" name
          sp (Dtype.to_string dt) (context_name m wctx)
          (String.concat ", " (List.map (context_name m) readers))
      in
      let sharing =
        if preemptive then
          Diag.make ~rule:"CON001" ~subject:name
            (where
           ^ "; ISR preemption is enabled and the access is unprotected \
              (no critical section in the generated code)")
        else
          Diag.make ~rule:"CON002" ~subject:name
            (where
           ^ "; safe only because the generated ISRs run to completion \
              (non-preemptive scheme)")
      in
      let atomicity =
        if Dtype.bits dt > word_bits then
          [
            Diag.make ~rule:"CON003" ~subject:name
              (Printf.sprintf
                 "%s; the %d-bit value cannot be accessed atomically on a \
                  %d-bit word machine (torn read if preemption is ever \
                  enabled)"
                 where (Dtype.bits dt) word_bits);
          ]
        else []
      in
      sharing :: atomicity)
    per_signal
