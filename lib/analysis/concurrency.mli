(** Concurrency analysis of the PEERT schedule: the CON rule family.

    The generated application runs the periodic part of the model
    inside the timer interrupt and each function-call group inside the
    ISR of its triggering event (§5). Every signal whose producer and
    consumer resolve to different execution contexts is state shared
    between interrupt handlers. Under the non-preemptive scheme the
    paper's generated code uses ({!Rta.non_preemptive}), run-to-
    completion makes the sharing safe (CON002, informational); if the
    ISRs are made preemptive the interleaving is unprotected (CON001,
    error). Signals wider than the MCU word cannot be read atomically
    regardless (CON003). *)

type context = Periodic | Isr of Model.group

val context_of : Model.t -> Model.blk -> context
val context_name : Model.t -> context -> string

val findings :
  ?preemptive:bool -> ?word_bits:int -> Compile.t -> Diag.finding list
(** [preemptive] defaults to [false], the policy of the generated code
    (mirrors {!Rta.analyze}'s mode); [word_bits] defaults to 16, the
    paper's MC56F8367 word size — pass the project MCU's value. *)

val watchdog_findings :
  project:Bean_project.t -> Compile.t -> Diag.finding list
(** CON004: every [Watch_dog] bean of the project must be serviced from
    the periodic execution context. A block advertises its service call
    through a ["wdog_bean"] string parameter naming the bean (as the
    {!Supervisor} safe-state block does). *)
