type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  subject : string;
  detail : string;
  suppressed : bool;
}

type rule_info = {
  id : string;
  family : string;
  title : string;
  default_severity : severity;
}

let r id family title default_severity = { id; family; title; default_severity }

let catalogue =
  [
    (* model lint ("Model Advisor") *)
    r "MDL001" "MDL" "input port is unconnected" Error;
    r "MDL002" "MDL" "Triggered block belongs to no function-call group" Error;
    r "MDL003" "MDL" "algebraic loop" Error;
    r "MDL004" "MDL" "empty model" Error;
    r "MDL005" "MDL" "dead block: no output reaches a sink or actuator" Warning;
    r "MDL006" "MDL" "output port drives nothing" Info;
    r "MDL007" "MDL" "bean project does not verify on the target MCU" Error;
    r "MDL008" "MDL" "peripheral block references a bean absent from the project"
      Error;
    r "MDL009" "MDL" "discrete rate is not an integer multiple of the base step"
      Warning;
    (* fixed-point range analysis *)
    r "FXP001" "FXP" "computed signal range exceeds the port data type" Warning;
    r "FXP002" "FXP" "fixed-point PID input exceeds its Q-format normalisation"
      Error;
    r "FXP003" "FXP" "cast always saturates: range entirely outside the target type"
      Error;
    r "FXP004" "FXP" "divisor range contains zero" Warning;
    (* concurrency (ISR shared state) *)
    r "CON001" "CON" "unprotected shared state across preemptive execution contexts"
      Error;
    r "CON002" "CON" "cross-context shared state, safe only by run-to-completion"
      Info;
    r "CON003" "CON" "shared signal wider than the MCU word (non-atomic access)"
      Warning;
    r "CON004" "CON" "Watch_dog bean with no _Clear path in the periodic context"
      Error;
    (* MIR def-use / value-range checks on the generated model unit *)
    r "MIR001" "MIR" "local may be read before it is assigned" Warning;
    r "MIR002" "MIR" "dead store: the value is never read" Info;
    r "MIR003" "MIR" "unreachable statement" Warning;
    r "MIR004" "MIR" "saturation-site verdict from the range prover" Info;
    (* MISRA-subset C lint *)
    r "MIS001" "MIS" "function has more than one return statement" Warning;
    r "MIS002" "MIS" "declaration shadows an outer identifier" Warning;
    r "MIS003" "MIS" "implicit narrowing conversion in assignment" Warning;
    r "MIS004" "MIS" "side effect in controlling expression" Warning;
    r "MIS005" "MIS" "verbatim C escapes static analysis" Info;
  ]

let rule_info id =
  match List.find_opt (fun ri -> ri.id = id) catalogue with
  | Some ri -> ri
  | None -> invalid_arg (Printf.sprintf "Diag.rule_info: unknown rule %S" id)

let make ~rule ~subject detail =
  let ri = rule_info rule in
  { rule; severity = ri.default_severity; subject; detail; suppressed = false }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_finding a b =
  match compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.subject b.subject
      | c -> c)
  | c -> c

let matches_rule pat id =
  pat = id || (String.length pat = 3 && String.sub id 0 3 = pat)

let rule_selected ?rules id =
  match rules with
  | None -> true
  | Some pats -> List.exists (fun p -> matches_rule p id) pats

type suppression = { s_subject : string; s_rule : string }

let parse_suppression s =
  let valid_rule r =
    List.exists (fun ri -> ri.id = r || ri.family = r) catalogue
  in
  match String.index_opt s ':' with
  | None ->
      if valid_rule s then Ok { s_subject = "*"; s_rule = s }
      else Error (Printf.sprintf "unknown rule %S in suppression" s)
  | Some i ->
      let subject = String.sub s 0 i in
      let rule = String.sub s (i + 1) (String.length s - i - 1) in
      if subject = "" then Error "empty subject in suppression"
      else if valid_rule rule then Ok { s_subject = subject; s_rule = rule }
      else Error (Printf.sprintf "unknown rule %S in suppression" rule)

let suppression_to_string s =
  if s.s_subject = "*" then s.s_rule else s.s_subject ^ ":" ^ s.s_rule

let apply_suppressions sups findings =
  List.map
    (fun f ->
      let hit =
        List.exists
          (fun s ->
            (s.s_subject = "*" || s.s_subject = f.subject)
            && matches_rule s.s_rule f.rule)
          sups
      in
      if hit then { f with suppressed = true } else f)
    findings
