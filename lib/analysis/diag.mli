(** The diagnostic core of the static-analysis engine.

    Every analysis family (model lint, fixed-point range, concurrency,
    MISRA-subset C lint) reports {!finding}s carrying a stable rule ID
    from the {!catalogue}. The IDs are part of the tool's contract:
    suppressions, CI gating and the JSON report all key on them, so an
    ID is never reused for a different meaning. *)

type severity = Error | Warning | Info

type finding = {
  rule : string;  (** stable rule ID, e.g. ["FXP002"] *)
  severity : severity;
  subject : string;
      (** what the finding is about: a block name, a ["unit.c:function"]
          location for C lint, or [""] for whole-model findings *)
  detail : string;  (** human-readable message *)
  suppressed : bool;  (** matched a suppression; kept for the report *)
}

type rule_info = {
  id : string;
  family : string;  (** ["MDL"], ["FXP"], ["CON"] or ["MIS"] *)
  title : string;
  default_severity : severity;
}

val catalogue : rule_info list
(** Every rule the engine can emit, in ID order. *)

val rule_info : string -> rule_info
(** @raise Invalid_argument on an ID absent from the {!catalogue}. *)

val make : rule:string -> subject:string -> string -> finding
(** Build a finding with the rule's default severity.
    @raise Invalid_argument on an unknown rule ID. *)

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** [0] for [Error] (most severe), then [1], [2]. *)

val compare_finding : finding -> finding -> int
(** Severity first, then rule ID, then subject — the report order. *)

(** {2 Rule selection and suppression} *)

val rule_selected : ?rules:string list -> string -> bool
(** [rule_selected ~rules id] is true when [rules] is absent, or
    contains [id] itself or its family prefix (["FXP"]). *)

type suppression = { s_subject : string; s_rule : string }
(** [s_subject] is a subject to match exactly or ["*"] for any;
    [s_rule] is a rule ID or family prefix. *)

val parse_suppression : string -> (suppression, string) result
(** Parse ["subject:RULE"] or ["RULE"] (any subject). *)

val suppression_to_string : suppression -> string

val apply_suppressions : suppression list -> finding list -> finding list
(** Mark (not drop) matching findings as [suppressed]. *)
