(* MIR-based checkers over the generated model unit: lift <model>.c
   into the typed IR (with the header's declarations in scope) and run

   - MIR001: definite-assignment analysis — a local read before any
     path assigns it
   - MIR002: liveness analysis — a store no path ever reads
   - MIR003: CFG reachability — statements control can never reach
   - MIR004: the saturation prover — each pe_sat16 / pe_sat_add32 /
     pe_cast_* call site classified as never / may / always saturating
     from the stabilised value ranges

   Only <model>.c is analysed: main.c's event loop ends in the
   conventional unreachable `return 0;`, and the HAL is bean-template
   code outside the model's semantics. The pe_* helper bodies are
   skipped too — their saturation branches are the feature. *)

let findings (arts : Target.artifacts) : Diag.finding list =
  let header = arts.Target.model_h.C_ast.items in
  let { Mir_unit.env; funcs } = Mir_unit.lift ~header arts.Target.model_c in
  List.concat_map
    (fun ((f : C_ast.func), body) ->
      if Mir_unit.is_helper f.C_ast.fname then []
      else begin
        let subject = f.C_ast.fname in
        let dfa =
          Mir_dfa.analyze body ~args:(List.map snd f.C_ast.args)
          |> List.map (function
               | Mir_dfa.Uninit_read { var; loc } ->
                   Diag.make ~rule:"MIR001" ~subject
                     (Printf.sprintf
                        "local `%s` may be read before it is assigned, at \
                         `%s`"
                        var loc)
               | Mir_dfa.Dead_store { var; loc } ->
                   Diag.make ~rule:"MIR002" ~subject
                     (Printf.sprintf
                        "store to `%s` is never read: `%s`" var loc)
               | Mir_dfa.Unreachable { loc } ->
                   Diag.make ~rule:"MIR003" ~subject
                     (Printf.sprintf "statement `%s` is unreachable" loc))
        in
        let sats =
          Mir_range.analyze env f body
          |> List.map (fun (s : Mir_range.sat_fact) ->
                 let lo_b, hi_b = s.Mir_range.bounds in
                 Diag.make ~rule:"MIR004" ~subject
                   (Printf.sprintf
                      "%s %s: `%s` has range [%g, %g] against bounds [%g, \
                       %g]"
                      s.Mir_range.op
                      (Mir_range.verdict_name s.Mir_range.verdict)
                      s.Mir_range.site s.Mir_range.arg.Mir_range.lo
                      s.Mir_range.arg.Mir_range.hi lo_b hi_b))
        in
        dfa @ sats
      end)
    funcs
