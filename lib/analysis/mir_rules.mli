(** MIR-based def-use and value-range checkers (rules MIR001–MIR004),
    run over the generated [<model>.c] unit lifted into the typed IR.
    See {!Mir_dfa} and {!Mir_range} for the underlying analyses. *)

val findings : Target.artifacts -> Diag.finding list
