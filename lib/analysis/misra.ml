open C_ast

(* ---- a small type evaluator over the generated AST ---- *)

type ety = Ty of cty | Lit of int | Unknown

type env = {
  structs : (string, (cty * string) list) Hashtbl.t;
  typedefs : (string, cty) Hashtbl.t;
  globals : (string, cty) Hashtbl.t;
  funcs : (string, cty) Hashtbl.t;
  macros : (string, unit) Hashtbl.t;
      (** function-like [#define]s of the unit; calls to them are macro
          expansions (register reads), not side-effecting calls *)
}

let build_env cus =
  let env =
    {
      structs = Hashtbl.create 16;
      typedefs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      macros = Hashtbl.create 16;
    }
  in
  List.concat_map (fun cu -> cu.items) cus
  |> List.iter
    (function
      | Struct_def (name, fields) -> Hashtbl.replace env.structs name fields
      | Typedef (ty, name) -> Hashtbl.replace env.typedefs name ty
      | Global { gty; gname; _ } -> Hashtbl.replace env.globals gname gty
      | Func_def f | Proto f -> Hashtbl.replace env.funcs f.fname f.ret
      | Define (name, _) -> (
          match String.index_opt name '(' with
          | Some i -> Hashtbl.replace env.macros (String.sub name 0 i) ()
          | None -> ())
      | _ -> ());
  env

let rec resolve env ty =
  match ty with
  | Named n -> (
      match Hashtbl.find_opt env.typedefs n with
      | Some t when t <> ty -> resolve env t
      | _ -> ty)
  | t -> t

(* (bits, class); class: `Sint, `Uint, `Flt, `Other *)
let num_class env ty =
  match resolve env ty with
  | I8 -> Some (8, `Sint)
  | U8 -> Some (8, `Uint)
  | I16 -> Some (16, `Sint)
  | U16 -> Some (16, `Uint)
  | I32 -> Some (32, `Sint)
  | U32 -> Some (32, `Uint)
  | Float_t -> Some (32, `Flt)
  | Double_t -> Some (64, `Flt)
  | Named ("int64_t" | "long long") -> Some (64, `Sint)
  | Named ("uint64_t" | "unsigned long long") -> Some (64, `Uint)
  | _ -> None

let int_range = function
  | I8 -> Some (-128, 127)
  | U8 -> Some (0, 255)
  | I16 -> Some (-32768, 32767)
  | U16 -> Some (0, 65535)
  | I32 -> Some (-0x4000_0000 * 2, 0x3FFF_FFFF * 2 + 1)
  | U32 -> Some (0, 0xFFFF_FFFF)
  | _ -> None

let lookup_var scopes env v =
  let rec in_scopes = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt v frame with
        | Some t -> Some t
        | None -> in_scopes rest)
  in
  match in_scopes scopes with
  | Some t -> Some t
  | None -> Hashtbl.find_opt env.globals v

let combine env a b =
  match (a, b) with
  | Ty ta, Ty tb -> (
      match (num_class env ta, num_class env tb) with
      | Some (wa, `Flt), Some (wb, `Flt) -> Ty (if wa >= wb then ta else tb)
      | Some (_, `Flt), Some _ -> Ty ta
      | Some _, Some (_, `Flt) -> Ty tb
      | Some (wa, _), Some (wb, _) -> Ty (if wa >= wb then ta else tb)
      | _ -> Unknown)
  | (Ty _ as t), Lit _ | Lit _, (Ty _ as t) -> t
  | Lit _, Lit _ -> Unknown
  | _ -> Unknown

let rec infer env scopes e =
  match e with
  | Int_lit n | Hex_lit n -> Lit n
  | Float_lit _ -> Ty Double_t
  | Str_lit _ -> Ty (Ptr U8)
  | Var v -> (
      match lookup_var scopes env v with Some t -> Ty t | None -> Unknown)
  | Field (b, f) -> field_type env scopes b f
  | Arrow (b, f) -> (
      match infer env scopes b with
      | Ty t -> (
          match resolve env t with
          | Ptr t -> struct_field env t f
          | _ -> Unknown)
      | _ -> Unknown)
  | Index (b, _) -> (
      match infer env scopes b with
      | Ty t -> (
          match resolve env t with Arr (t, _) | Ptr t -> Ty t | _ -> Unknown)
      | _ -> Unknown)
  | Call (f, _) -> (
      match Hashtbl.find_opt env.funcs f with Some t -> Ty t | None -> Unknown)
  | Un ("!", _) -> Ty I32
  | Un ("*", b) -> (
      match infer env scopes b with
      | Ty t -> (
          match resolve env t with Ptr t -> Ty t | _ -> Unknown)
      | _ -> Unknown)
  | Un ("&", _) -> Unknown
  | Un (_, b) -> infer env scopes b
  | Bin (("==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||"), _, _) -> Ty I32
  | Bin (("<<" | ">>"), a, _) -> infer env scopes a
  | Bin (_, a, b) -> combine env (infer env scopes a) (infer env scopes b)
  | Cast_to (t, _) -> Ty t
  | Ternary (_, a, b) -> combine env (infer env scopes a) (infer env scopes b)

and field_type env scopes b f =
  match infer env scopes b with
  | Ty t -> struct_field env t f
  | _ -> Unknown

and struct_field env t f =
  match resolve env t with
  | Named n -> (
      match Hashtbl.find_opt env.structs n with
      | Some fields -> (
          match List.find_opt (fun (_, fn) -> fn = f) fields with
          | Some (ft, _) -> Ty ft
          | None -> Unknown)
      | None -> Unknown)
  | _ -> Unknown

let rec has_side_effect env e =
  match e with
  | Call (f, args) ->
      (* a call to a function-like macro of the unit is a register-read
         expansion, not a function call *)
      (not (Hashtbl.mem env.macros f))
      || List.exists (has_side_effect env) args
  | Un (("++" | "--"), _) -> true
  | Bin (("=" | "+=" | "-=" | "*=" | "/=" | "|=" | "&=" | "^="), _, _) -> true
  | Int_lit _ | Hex_lit _ | Float_lit _ | Str_lit _ | Var _ -> false
  | Field (b, _) | Arrow (b, _) | Un (_, b) | Cast_to (_, b) ->
      has_side_effect env b
  | Index (a, b) | Bin (_, a, b) -> has_side_effect env a || has_side_effect env b
  | Ternary (a, b, c) ->
      has_side_effect env a || has_side_effect env b || has_side_effect env c

let rec cty_name = function
  | Void -> "void"
  | Double_t -> "double"
  | Float_t -> "float"
  | I8 -> "int8_t"
  | U8 -> "uint8_t"
  | I16 -> "int16_t"
  | U16 -> "uint16_t"
  | I32 -> "int32_t"
  | U32 -> "uint32_t"
  | Named n -> n
  | Ptr t -> cty_name t ^ " *"
  | Arr (t, n) -> Printf.sprintf "%s[%d]" (cty_name t) n

(* ---- the MIS rules over one function ---- *)

let lint_func env ~unit_name f =
  let acc = ref [] in
  let subject = Printf.sprintf "%s:%s" unit_name f.fname in
  let emit rule detail = acc := Diag.make ~rule ~subject detail :: !acc in
  (* MIS001: single point of exit *)
  let rec count_returns stmts =
    List.fold_left
      (fun n s ->
        n
        +
        match s with
        | Return _ -> 1
        | If (_, a, b) -> count_returns a + count_returns b
        | While (_, b) | For (_, _, _, b) | Block b -> count_returns b
        | _ -> 0)
      0 stmts
  in
  let returns = count_returns f.body in
  if returns > 1 then
    emit "MIS001" (Printf.sprintf "%d return statements (MISRA wants one exit point)" returns);
  (* walk with scoping *)
  let check_narrowing lhs_ty rhs ~what scopes =
    match num_class env lhs_ty with
    | None -> ()
    | Some (lw, lc) -> (
        match infer env scopes rhs with
        | Lit n -> (
            match int_range (resolve env lhs_ty) with
            | Some (lo, hi) when n < lo || n > hi ->
                emit "MIS003"
                  (Printf.sprintf "%s: literal %d does not fit %s" what n
                     (cty_name lhs_ty))
            | _ -> ())
        | Ty rt -> (
            match num_class env rt with
            | Some (_, `Flt) when lc <> `Flt ->
                emit "MIS003"
                  (Printf.sprintf
                     "%s: implicit %s -> %s conversion loses the fraction"
                     what (cty_name rt) (cty_name lhs_ty))
            | Some (rw, _) when rw > lw ->
                emit "MIS003"
                  (Printf.sprintf "%s: implicit narrowing %s -> %s" what
                     (cty_name rt) (cty_name lhs_ty))
            | _ -> ())
        | Unknown -> ())
  in
  let check_cond e ~what scopes =
    let _ = scopes in
    if has_side_effect env e then
      emit "MIS004"
        (Printf.sprintf "%s contains a side effect: %s" what
           (C_print.expr_to_string e))
  in
  let declare frame name ty =
    let outer = lookup_var !frame env name <> None in
    (match !frame with
    | top :: rest ->
        if outer || List.mem_assoc name top then
          emit "MIS002"
            (Printf.sprintf "declaration of %S shadows an outer identifier"
               name);
        frame := ((name, ty) :: top) :: rest
    | [] -> assert false)
  in
  let raw_count = ref 0 in
  let rec walk scopes stmts =
    let frame = ref ([] :: scopes) in
    List.iter
      (fun s ->
        match s with
        | Decl (ty, name, init) ->
            (match init with
            | Some e ->
                check_narrowing ty e
                  ~what:(Printf.sprintf "initialisation of %s" name)
                  !frame
            | None -> ());
            declare frame name ty
        | Assign (lhs, rhs) -> (
            match infer env !frame lhs with
            | Ty lt ->
                check_narrowing lt rhs
                  ~what:
                    (Printf.sprintf "assignment to %s"
                       (C_print.expr_to_string lhs))
                  !frame
            | _ -> ())
        | If (c, a, b) ->
            check_cond c ~what:"if condition" !frame;
            walk !frame a;
            walk !frame b
        | While (c, b) ->
            check_cond c ~what:"while condition" !frame;
            walk !frame b
        | For (init, c, incr, b) ->
            walk !frame [ init ];
            check_cond c ~what:"for condition" !frame;
            walk !frame (b @ [ incr ])
        | Block b -> walk !frame b
        | Raw _ -> incr raw_count
        | Expr _ | Return _ | Comment _ -> ())
      stmts
  in
  let param_frame = List.map (fun (ty, name) -> (name, ty)) f.args in
  walk [ param_frame ] f.body;
  if !raw_count > 0 then
    emit "MIS005"
      (Printf.sprintf "%d verbatim statement%s escape%s the lint" !raw_count
         (if !raw_count > 1 then "s" else "")
         (if !raw_count > 1 then "" else "s"));
  List.rev !acc

let lint_unit_in env cu =
  let raw_items =
    List.length (List.filter (function Raw_item _ -> true | _ -> false) cu.items)
  in
  let from_items =
    if raw_items > 0 then
      [
        Diag.make ~rule:"MIS005" ~subject:cu.unit_name
          (Printf.sprintf "%d verbatim item%s escape%s the lint" raw_items
             (if raw_items > 1 then "s" else "")
             (if raw_items > 1 then "" else "s"));
      ]
    else []
  in
  from_items
  @ List.concat_map
      (function
        | Func_def f -> lint_func env ~unit_name:cu.unit_name f
        | _ -> [])
      cu.items

let lint_unit cu = lint_unit_in (build_env [ cu ]) cu

let lint units =
  (* one environment over the whole translation set: macros, typedefs
     and structs live in shared headers (PE_Types.h, <model>.h) *)
  let env = build_env units in
  List.concat_map (lint_unit_in env) units
