(** MISRA-subset lint over the generated C AST: the MIS rule family.

    Runs on {!C_ast.cunit} values straight from the code generators, so
    every generated compilation unit (model code, main, HAL) is checked
    before it is ever written to disk. The subset covers the rules the
    AST can express (it has no [switch] statement, so the
    default-clause rule does not apply):

    - MIS001: a function body has more than one [return];
    - MIS002: a local declaration shadows a parameter, an outer local
      or a file-scope global;
    - MIS003: an assignment (or initialised declaration) implicitly
      narrows — wider integer into narrower, or floating into integer —
      without an explicit cast;
    - MIS004: a controlling expression ([if]/[while]/[for]/[?:]
      condition) contains a side effect (function call, [++]/[--],
      assignment operator);
    - MIS005: verbatim [Raw]/[Raw_item] text escapes the analysis
      (informational). *)

val lint_unit : C_ast.cunit -> Diag.finding list
val lint : C_ast.cunit list -> Diag.finding list
