let structural m =
  List.map
    (fun d ->
      let rule =
        match d.Compile.d_kind with
        | Compile.Unconnected_input _ -> "MDL001"
        | Compile.Triggered_without_group -> "MDL002"
        | Compile.Algebraic_loop _ -> "MDL003"
        | Compile.Empty_model -> "MDL004"
      in
      let subject = Option.value d.Compile.d_block ~default:"" in
      Diag.make ~rule ~subject d.Compile.d_msg)
    (Compile.diagnose m)

(* Backward reachability from the model's sinks: a block is live when
   one of its outputs (transitively) reaches a sink, an actuator
   (n_out = 0), an Outport, or fires a function-call group. *)
let liveness m =
  let n = Model.n_blocks m in
  let live = Array.make n false in
  let blocks = Model.blocks m in
  let is_seed b =
    let spec = Model.spec_of m b in
    spec.Block.n_out = 0
    || spec.Block.kind = "Outport"
    || Target.is_actuator_kind spec.Block.kind
    || Array.exists
         (fun e -> e)
         (Array.mapi
            (fun e _ -> Model.event_target m (b, e) <> None)
            spec.Block.event_outs)
  in
  let rec mark b =
    let bi = Model.blk_index b in
    if not live.(bi) then begin
      live.(bi) <- true;
      let spec = Model.spec_of m b in
      for p = 0 to spec.Block.n_in - 1 do
        match Model.driver m (b, p) with
        | Some (sb, _) -> mark sb
        | None -> ()
      done
    end
  in
  List.iter (fun b -> if is_seed b then mark b) blocks;
  live

let advisory m =
  let live = liveness m in
  let blocks = Model.blocks m in
  (* which output ports have at least one consumer *)
  let consumed = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      for p = 0 to spec.Block.n_in - 1 do
        match Model.driver m (b, p) with
        | Some (sb, sp) -> Hashtbl.replace consumed (Model.blk_index sb, sp) ()
        | None -> ()
      done)
    blocks;
  List.concat_map
    (fun b ->
      let spec = Model.spec_of m b in
      let bi = Model.blk_index b in
      let name = Model.block_name m b in
      if not live.(bi) then
        [
          Diag.make ~rule:"MDL005" ~subject:name
            (Printf.sprintf
               "%s (%s): no output reaches a sink, actuator or Outport; the \
                block is dead code"
               name spec.Block.kind);
        ]
      else if
        spec.Block.n_out > 0
        && spec.Block.kind <> "Outport"
        && not (Target.is_actuator_kind spec.Block.kind)
      then
        List.filter_map
          (fun p ->
            if Hashtbl.mem consumed (bi, p) then None
            else
              Some
                (Diag.make ~rule:"MDL006" ~subject:name
                   (Printf.sprintf "%s: output port %d drives nothing" name p)))
          (List.init spec.Block.n_out Fun.id)
      else [])
    blocks

let bean_subject msg =
  match String.index_opt msg ':' with
  | Some i when i > 0 && i <= 12 && not (String.contains (String.sub msg 0 i) ' ')
    ->
      String.sub msg 0 i
  | _ -> ""

let project_findings project m =
  let missing =
    List.filter_map
      (fun b ->
        let spec = Model.spec_of m b in
        match Param.string_opt spec.Block.params "bean" with
        | Some bn -> (
            match Bean_project.find project bn with
            | _ -> None
            | exception Not_found ->
                Some
                  (Diag.make ~rule:"MDL008" ~subject:(Model.block_name m b)
                     (Printf.sprintf
                        "%s (%s) references bean %S, absent from the project \
                         (MCU %s)"
                        (Model.block_name m b) spec.Block.kind bn
                        (Bean_project.mcu project).Mcu_db.name)))
        | None -> None)
      (Model.blocks m)
  in
  let verify =
    match Bean_project.verify project with
    | Ok () -> []
    | Error msgs ->
        List.map
          (fun msg -> Diag.make ~rule:"MDL007" ~subject:(bean_subject msg) msg)
          msgs
  in
  missing @ verify

let rate_findings comp =
  let m = comp.Compile.model in
  List.filter_map
    (fun b ->
      match Compile.resolved_of comp b with
      | Sample_time.R_discrete { period; _ } ->
          let ratio = period /. comp.Compile.base_dt in
          if Float.abs (ratio -. Float.round ratio) > 1e-6 *. ratio then
            Some
              (Diag.make ~rule:"MDL009" ~subject:(Model.block_name m b)
                 (Printf.sprintf
                    "%s: period %g s is not an integer multiple of the base \
                     step %g s; the generated schedule rounds it"
                    (Model.block_name m b) period comp.Compile.base_dt))
          else None
      | _ -> None)
    (Model.blocks m)

let findings ?project ?comp m =
  structural m @ advisory m
  @ (match project with Some p -> project_findings p m | None -> [])
  @ match comp with Some c -> rate_findings c | None -> []
