(** Model lint ("Model Advisor"): the MDL rule family.

    Recovers {e every} structural violation ({!Compile.diagnose}) as a
    located finding instead of the first [Compile_error], then adds
    advisory rules the compiler never checks: dead blocks, unused
    output ports, rate/base-step mismatches, and — when the Processor
    Expert project is given — bean conflicts found by the expert system
    ({!Bean_project.verify}) and peripheral blocks referencing beans
    absent from the project. *)

val findings :
  ?project:Bean_project.t -> ?comp:Compile.t -> Model.t -> Diag.finding list
(** [comp] enables the rate rules (MDL009); pass it when compilation
    succeeded. Never raises. *)
