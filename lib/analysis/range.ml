type itv = { lo : float; hi : float }

let itv lo hi = { lo; hi }
let top = { lo = neg_infinity; hi = infinity }
let point v = { lo = v; hi = v }
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let hull_pt a v = hull a (point v)
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let neg a = { lo = -.a.hi; hi = -.a.lo }
let sub a b = add a (neg b)

(* 0 * inf would be nan; the mathematically right product with a zero
   factor is zero, which is also what the engine computes. *)
let pmul a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let mul a b =
  let c = [| pmul a.lo b.lo; pmul a.lo b.hi; pmul a.hi b.lo; pmul a.hi b.hi |] in
  { lo = Array.fold_left Float.min c.(0) c; hi = Array.fold_left Float.max c.(0) c }

let scale k a = mul (point k) a

let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then top
  else
    let pdiv x y = if x = 0.0 then 0.0 else x /. y in
    let c = [| pdiv a.lo b.lo; pdiv a.lo b.hi; pdiv a.hi b.lo; pdiv a.hi b.hi |] in
    { lo = Array.fold_left Float.min c.(0) c;
      hi = Array.fold_left Float.max c.(0) c }

let abs_itv a =
  if a.lo >= 0.0 then a
  else if a.hi <= 0.0 then neg a
  else { lo = 0.0; hi = Float.max (-.a.lo) a.hi }

let meet_clamp ~min_v ~max_v a =
  (* saturation semantics of [Value.of_float]: values outside the type
     range land exactly on the nearest bound *)
  if a.lo > max_v then point max_v
  else if a.hi < min_v then point min_v
  else { lo = Float.max a.lo min_v; hi = Float.min a.hi max_v }

type t = {
  comp : Compile.t;
  clamped : itv option array array;
  raw : itv option array array;
}

let dt_of comp b =
  match Compile.resolved_of comp b with
  | Sample_time.R_discrete { period; _ } -> period
  | _ -> comp.Compile.base_dt

let dtype_range dt =
  (Dtype.min_float_value dt, Dtype.max_float_value dt)

(* Transfer function: raw output intervals of one block from its input
   intervals. [None] is bottom (not yet computed); unknown kinds go to
   the full range of their declared output type, which is sound. *)
let transfer comp b (ins : itv option array) : itv option array =
  let m = comp.Compile.model in
  let spec = Model.spec_of m b in
  let params = spec.Block.params in
  let bi = Model.blk_index b in
  let n_out = spec.Block.n_out in
  let out_dt p = comp.Compile.out_types.(bi).(p) in
  let pf name = Param.float params name in
  let all_out i = Array.make n_out (Some i) in
  let need p k = match ins.(p) with Some i -> k i | None -> Array.make n_out None in
  let dt = dt_of comp b in
  let top_of_type = Array.init n_out (fun p ->
      let min_v, max_v = dtype_range (out_dt p) in
      Some (itv min_v max_v))
  in
  if n_out = 0 then [||]
  else
    match spec.Block.kind with
    | "Constant" -> all_out (point (pf "value"))
    | "Step" -> all_out (hull (point (pf "before")) (point (pf "after")))
    | "Ramp" ->
        let start = pf "start" and slope = pf "slope" in
        all_out
          (if slope > 0.0 then itv start infinity
           else if slope < 0.0 then itv neg_infinity start
           else point start)
    | "Sine" ->
        let amp = Float.abs (pf "amp") and bias = pf "bias" in
        all_out (itv (bias -. amp) (bias +. amp))
    | "Pulse" -> all_out (hull_pt (point (pf "amp")) 0.0)
    | "SetpointSchedule" ->
        (* the schedule outputs 0.0 before the first breakpoint *)
        let values = Param.floats params "values" in
        all_out (Array.fold_left hull_pt (point 0.0) values)
    | "UniformNoise" -> all_out (itv (pf "lo") (pf "hi"))
    | "Clock" -> all_out (itv 0.0 infinity)
    | "Inport" -> top_of_type
    | "Outport" | "ZOH" | "Merge2" | "Cast" | "Abs" | "Neg" | "Min" | "Max"
    | "Sum" | "Gain" | "Product" | "Divide" | "MathFn" | "Switch"
    | "Saturation" | "Quantizer" | "DeadZone" | "Sign" | "CoulombFriction"
    | "Backlash" | "UnitDelay" | "DelayN" | "DiscreteDerivative"
    | "RateLimiter" | "MovingAverage" | "EncoderSpeed" -> (
        match spec.Block.kind with
        | "Outport" | "ZOH" | "Cast" -> need 0 (fun i -> all_out i)
        | "Merge2" ->
            need 0 (fun a -> need 1 (fun b -> all_out (hull a b)))
        | "Abs" -> need 0 (fun i -> all_out (abs_itv i))
        | "Neg" -> need 0 (fun i -> all_out (neg i))
        | "Min" ->
            need 0 (fun a ->
                need 1 (fun b ->
                    all_out (itv (Float.min a.lo b.lo) (Float.min a.hi b.hi))))
        | "Max" ->
            need 0 (fun a ->
                need 1 (fun b ->
                    all_out (itv (Float.max a.lo b.lo) (Float.max a.hi b.hi))))
        | "Sum" ->
            let signs = Param.string params "signs" in
            let acc = ref (Some (point 0.0)) in
            String.iteri
              (fun p sign ->
                match (!acc, ins.(p)) with
                | Some a, Some i ->
                    acc := Some (if sign = '-' then sub a i else add a i)
                | _ -> acc := None)
              signs;
            (match !acc with Some i -> all_out i | None -> Array.make n_out None)
        | "Gain" -> need 0 (fun i -> all_out (scale (pf "k") i))
        | "Product" ->
            let acc = ref (Some (point 1.0)) in
            Array.iteri
              (fun _ i ->
                match (!acc, i) with
                | Some a, Some b -> acc := Some (mul a b)
                | _ -> acc := None)
              ins;
            (match !acc with Some i -> all_out i | None -> Array.make n_out None)
        | "Divide" -> need 0 (fun a -> need 1 (fun b -> all_out (div a b)))
        | "MathFn" -> (
            match Param.string params "fn" with
            | "sin" | "cos" -> all_out (itv (-1.0) 1.0)
            | "exp" -> need 0 (fun i -> all_out (itv (exp i.lo) (exp i.hi)))
            | "sqrt" ->
                need 0 (fun i -> all_out (itv 0.0 (sqrt (Float.max 0.0 i.hi))))
            | "log" ->
                need 0 (fun i ->
                    if i.lo > 0.0 then all_out (itv (log i.lo) (log i.hi))
                    else all_out top)
            | _ -> top_of_type)
        | "Switch" -> need 0 (fun a -> need 2 (fun b -> all_out (hull a b)))
        | "Saturation" -> all_out (itv (pf "lo") (pf "hi"))
        | "Quantizer" ->
            let q = pf "interval" in
            need 0 (fun i -> all_out (itv (i.lo -. (q /. 2.0)) (i.hi +. (q /. 2.0))))
        | "DeadZone" ->
            let lo = pf "lo" and hi = pf "hi" in
            need 0 (fun i ->
                all_out (itv (Float.min 0.0 (i.lo -. lo)) (Float.max 0.0 (i.hi -. hi))))
        | "Sign" -> all_out (itv (-1.0) 1.0)
        | "CoulombFriction" ->
            let l = Float.abs (pf "level") in
            need 0 (fun i -> all_out (itv (i.lo -. l) (i.hi +. l)))
        | "Backlash" ->
            let w = pf "width" in
            need 0 (fun i -> all_out (hull_pt (itv (i.lo -. w) (i.hi +. w)) 0.0))
        | "UnitDelay" ->
            let init = point (pf "init") in
            all_out (match ins.(0) with Some i -> hull init i | None -> init)
        | "DelayN" ->
            if Param.int params "n" = 0 then need 0 (fun i -> all_out i)
            else
              all_out
                (match ins.(0) with
                | Some i -> hull_pt i 0.0
                | None -> point 0.0)
        | "DiscreteDerivative" ->
            let k = Float.abs (pf "k") in
            need 0 (fun i ->
                let h = hull_pt i 0.0 in
                let w = k *. (h.hi -. h.lo) /. dt in
                all_out (itv (-.w) w))
        | "RateLimiter" | "MovingAverage" ->
            need 0 (fun i -> all_out (hull_pt i 0.0))
        | "EncoderSpeed" ->
            (* wrap-aware 16-bit count difference: |delta| <= 2^15 *)
            let cpr = Param.int params "counts_per_rev" in
            let k = 2.0 *. Float.pi /. float_of_int cpr in
            let w = 32768.0 *. k /. dt in
            all_out (itv (-.w) w)
        | _ -> assert false)
    | "DiscreteIntegrator" ->
        all_out (hull_pt (itv (pf "lo") (pf "hi")) (pf "init"))
    | "Pid" -> all_out (itv (pf "u_min") (pf "u_max"))
    | "FixPid" ->
        (* the Q-format accumulator clamps u/out_scale to +-2.0 *)
        let s = pf "out_scale" in
        all_out
          (itv (Float.max (pf "u_min") (-2.0 *. s))
             (Float.min (pf "u_max") (2.0 *. s)))
    | "Compare" | "Logic" -> all_out (itv 0.0 1.0)
    | "Relay" ->
        all_out (hull (point (pf "on_value")) (point (pf "off_value")))
    | "Lookup1D" | "Lookup1DNearest" ->
        let ys = Param.floats params "ys" in
        if Array.length ys = 0 then top_of_type
        else all_out (Array.fold_left hull_pt (point ys.(0)) ys)
    | "PE_Adc" | "AR_Adc" -> (
        match Param.int_opt params "max_code" with
        | Some mc -> all_out (itv 0.0 (float_of_int mc))
        | None -> top_of_type)
    | "PE_Pwm" | "AR_Pwm" -> all_out (itv 0.0 1.0)
    | "PE_BitIO_In" | "AR_BitIO_In" -> all_out (itv 0.0 1.0)
    | _ -> top_of_type

(* The fixpoint engine is the shared [Dataflow.Round_robin] solver
   (Gauss–Seidel chaotic iteration in block order): one lattice row of
   per-port intervals per block, with the round-counter widening hook
   carrying the original policy — a bound still moving after the graph
   diameter has been exceeded is in a feedback loop and goes straight
   to the type bound. *)
module Row = struct
  type t = itv option array

  let equal = ( = )
end

module Fix = Dataflow.Round_robin (Row)

let analyze comp =
  let m = comp.Compile.model in
  let n = Model.n_blocks m in
  let blocks = Array.of_list (Model.blocks m) in
  let pos = Array.make n 0 in
  Array.iteri (fun i b -> pos.(Model.blk_index b) <- i) blocks;
  let input_itvs get b =
    let spec = Model.spec_of m b in
    Array.init spec.Block.n_in (fun p ->
        match Model.driver m (b, p) with
        | Some (sb, sp) -> (get pos.(Model.blk_index sb)).(sp)
        | None -> None)
  in
  let clamp_port b p i =
    let dt = comp.Compile.out_types.(Model.blk_index b).(p) in
    let min_v, max_v = dtype_range dt in
    (* an integer-typed port stores a rounding of the computed value;
       [floor, ceil] covers truncation and round-to-nearest alike *)
    let i =
      if Dtype.is_integer dt then itv (Float.floor i.lo) (Float.ceil i.hi)
      else i
    in
    meet_clamp ~min_v ~max_v i
  in
  let widen_after = n + 2 in
  let max_rounds = (2 * n) + 8 in
  let step ~round ~get i =
    let b = blocks.(i) in
    let cur = get i in
    let outs = transfer comp b (input_itvs get b) in
    let next = Array.copy cur in
    Array.iteri
      (fun p o ->
        match o with
        | None -> ()
        | Some iv ->
            let iv = clamp_port b p iv in
            let joined =
              match cur.(p) with None -> iv | Some c -> hull c iv
            in
            if cur.(p) <> Some joined then
              next.(p) <-
                Some
                  (if round <= widen_after then joined
                   else
                     let c =
                       match cur.(p) with Some c -> c | None -> joined
                     in
                     clamp_port b p
                       (itv
                          (if joined.lo < c.lo then neg_infinity else joined.lo)
                          (if joined.hi > c.hi then infinity else joined.hi))))
      outs;
    next
  in
  let solution =
    Fix.solve ~max_rounds
      {
        Fix.n;
        init =
          (fun i ->
            Array.make (Model.spec_of m blocks.(i)).Block.n_out None);
        transfer = step;
      }
  in
  let clamped = Array.make n [||] in
  let raw = Array.make n [||] in
  Array.iteri (fun i b -> clamped.(Model.blk_index b) <- solution i) blocks;
  (* one final pass records the pre-clamp intervals consistently with
     the fixpoint inputs *)
  Array.iter
    (fun b ->
      raw.(Model.blk_index b) <- transfer comp b (input_itvs solution b))
    blocks;
  { comp; clamped; raw }

let interval t (b, p) = t.clamped.(Model.blk_index b).(p)
let raw_interval t (b, p) = t.raw.(Model.blk_index b).(p)

let pp_itv i = Printf.sprintf "[%g, %g]" i.lo i.hi

let findings t =
  let comp = t.comp in
  let m = comp.Compile.model in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  List.iter
    (fun b ->
      let bi = Model.blk_index b in
      let spec = Model.spec_of m b in
      let name = Model.block_name m b in
      (* FXP001 / FXP003: raw range vs bounded port type *)
      Array.iteri
        (fun p r ->
          match r with
          | None -> ()
          | Some r ->
              let dt = comp.Compile.out_types.(bi).(p) in
              let min_v, max_v = dtype_range dt in
              if Float.is_finite min_v || Float.is_finite max_v then
                if r.lo > max_v || r.hi < min_v then
                  emit
                    (Diag.make ~rule:"FXP003" ~subject:name
                       (Printf.sprintf
                          "output %d range %s lies entirely outside %s range \
                           [%g, %g]; the cast always saturates"
                          p (pp_itv r) (Dtype.to_string dt) min_v max_v))
                else if r.lo < min_v || r.hi > max_v then
                  emit
                    (Diag.make ~rule:"FXP001" ~subject:name
                       (Printf.sprintf
                          "output %d range %s exceeds %s range [%g, %g]; \
                           generated code saturates"
                          p (pp_itv r) (Dtype.to_string dt) min_v max_v)))
        t.raw.(bi);
      (* FXP002: fixed-point PID normalisation *)
      (if spec.Block.kind = "FixPid" then
         match Param.dtype_opt spec.Block.params "fmt" with
         | Some (Dtype.Fix qf) ->
             let s = Param.float spec.Block.params "in_scale" in
             let qmax = Qformat.max_value qf and qmin = Qformat.min_value qf in
             List.iteri
               (fun p input ->
                 match
                   match Model.driver m (b, p) with
                   | Some (sb, sp) -> interval t (sb, sp)
                   | None -> None
                 with
                 | None -> ()
                 | Some i ->
                     if i.hi /. s > qmax || i.lo /. s < qmin then
                       emit
                         (Diag.make ~rule:"FXP002" ~subject:name
                            (Printf.sprintf
                               "input %s (%d) range %s exceeds %s at \
                                in_scale %g: representable span is [%g, %g]"
                               input p (pp_itv i) (Qformat.to_string qf) s
                               (qmin *. s) (qmax *. s))))
               [ "sp"; "pv" ]
         | _ -> ());
      (* FXP004: divisor range containing zero *)
      if spec.Block.kind = "Divide" then
        match Model.driver m (b, 1) with
        | Some (sb, sp) -> (
            match interval t (sb, sp) with
            | Some i when i.lo <= 0.0 && i.hi >= 0.0 ->
                emit
                  (Diag.make ~rule:"FXP004" ~subject:name
                     (Printf.sprintf "divisor range %s contains zero" (pp_itv i)))
            | _ -> ())
        | None -> ())
    (Model.blocks m);
  List.rev !acc
