(** Fixed-point range analysis: abstract interpretation over intervals.

    Propagates a [[lo, hi]] interval for every output port through the
    block graph — sources, gains, sums, delays, saturations, lookup
    tables, peripheral blocks — iterating to a fixpoint with widening
    for feedback loops. Every interval is then clamped to the port's
    data-type range, which matches the engine's semantics exactly:
    [Value.of_float] saturates at the type bounds, so a simulated
    signal value always lies inside the computed (clamped) interval.

    The [FXP] rules compare the {e pre-clamp} ("raw") interval against
    the port type: a raw range that sticks out of a bounded type means
    the generated fixed-point code can saturate (FXP001/FXP003), and a
    fixed-point PID whose input range exceeds its Q-format
    normalisation overflows the paper's E2 experiment statically
    (FXP002). *)

type itv = { lo : float; hi : float }

type t

val analyze : Compile.t -> t
(** Run the interval fixpoint over a compiled model. *)

val interval : t -> Model.blk * int -> itv option
(** Clamped interval of an output port; [None] when the port is
    unreachable (bottom). Sound for simulation: any value the engine
    produces on this port lies within. *)

val raw_interval : t -> Model.blk * int -> itv option
(** The pre-clamp interval the block arithmetic can produce before
    [Value.of_float] saturation. *)

val findings : t -> Diag.finding list
(** The FXP rule family over the analysis result. *)
