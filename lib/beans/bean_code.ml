open C_ast

(* Synthesised register maps: per peripheral class, a family base address
   and per-channel stride. The layout is invented but stable, so the
   generated HAL has realistic register traffic without vendor headers. *)
let base_of mcu kind =
  let family_base =
    match mcu.Mcu_db.family with
    | "56F83xx" -> 0xF000
    | "HCS12" -> 0x0040
    | _ -> 0x4000_0000
  in
  let offset =
    match kind with
    | `Timer -> 0x0C0
    | `Adc -> 0x180
    | `Pwm -> 0x200
    | `Dac -> 0x260
    | `Gpio -> 0x2C0
    | `Qdec -> 0x300
    | `Sci -> 0x340
    | `Wdog -> 0x3C0
  in
  family_base + offset

let reg name = Call ("REG16", [ Var name ])

let def_reg defs nm addr = defs := Define (nm, Printf.sprintf "0x%04X" addr) :: !defs

let method_comment t what =
  Printf.sprintf "%s_%s - %s (bean %s, generated method)" t.Bean.bname what what
    (Bean.type_name t)

let unresolved t =
  invalid_arg (Printf.sprintf "Bean_code: bean %s is not resolved" t.Bean.bname)

let unit_of_bean mcu t =
  let n = t.Bean.bname in
  let defs = ref [] in
  let items =
    match (t.Bean.config, t.Bean.resolved) with
    | Bean.Timer_int _, Some (Bean.R_timer (sol, ch)) ->
        let base = base_of mcu `Timer + (ch * 0x10) in
        def_reg defs (n ^ "_CTRL") base;
        def_reg defs (n ^ "_LOAD") (base + 2);
        def_reg defs (n ^ "_CMPLD") (base + 4);
        def_reg defs (n ^ "_SCR") (base + 6);
        let prescaler_bits =
          (* encode the prescaler selection as its log2 in CTRL[8:11] *)
          int_of_float (log (float_of_int sol.Expert.prescaler) /. log 2.0)
        in
        [
          Func_def
            (func ~comment:(method_comment t "Enable") (Named "byte")
               (n ^ "_Enable") []
               [
                 Comment
                   (Printf.sprintf "prescaler /%d, modulo %d -> %.6g ms period"
                      sol.Expert.prescaler sol.Expert.modulo
                      (sol.Expert.achieved_period *. 1e3));
                 Assign (reg (n ^ "_CMPLD"), Int_lit (sol.Expert.modulo - 1));
                 Assign
                   ( reg (n ^ "_CTRL"),
                     Bin
                       ( "|",
                         Hex_lit 0x3001 (* count rising edges, reload, run *),
                         Int_lit (prescaler_bits lsl 8) ) );
                 Assign (reg (n ^ "_SCR"), Hex_lit 0x4000 (* compare IRQ enable *));
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "Disable") (Named "byte")
               (n ^ "_Disable") []
               [
                 Assign (reg (n ^ "_CTRL"), Hex_lit 0x0000);
                 Return (Some (Var "ERR_OK"));
               ]);
        ]
    | Bean.Adc { resolution; _ }, Some (Bean.R_adc { channel; max_code; _ }) ->
        let base = base_of mcu `Adc in
        def_reg defs (n ^ "_CTRL1") base;
        def_reg defs (n ^ "_STAT") (base + 2);
        def_reg defs (n ^ "_RSLT") (base + 4 + (2 * channel));
        [
          Func_def
            (func ~comment:(method_comment t "Measure") (Named "byte")
               (n ^ "_Measure")
               [ (Named "bool", "wait") ]
               [
                 Comment
                   (Printf.sprintf "start single conversion, channel %d, %d-bit"
                      channel resolution);
                 Assign
                   ( reg (n ^ "_CTRL1"),
                     Bin ("|", Hex_lit 0x2000, Int_lit channel) );
                 If
                   ( Var "wait",
                     [
                       While
                         ( Bin ("==", Bin ("&", reg (n ^ "_STAT"), Hex_lit 0x0800),
                                Int_lit 0),
                           [ Comment "busy-wait for end of scan" ] );
                     ],
                     [] );
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "GetValue") (Named "byte")
               (n ^ "_GetValue")
               [ (Ptr U16, "value") ]
               [
                 Comment (Printf.sprintf "right-aligned result, full scale %d" max_code);
                 Assign (Un ("*", Var "value"), reg (n ^ "_RSLT"));
                 Return (Some (Var "ERR_OK"));
               ]);
        ]
    | Bean.Pwm _, Some (Bean.R_pwm { channel; period_counts; actual_freq; _ }) ->
        let base = base_of mcu `Pwm + (channel * 0x08) in
        def_reg defs (n ^ "_CMOD") base;
        def_reg defs (n ^ "_CVAL") (base + 2);
        def_reg defs (n ^ "_CTRL") (base + 4);
        [
          Func_def
            (func ~comment:(method_comment t "Enable") (Named "byte")
               (n ^ "_Enable") []
               [
                 Comment
                   (Printf.sprintf "carrier %.6g Hz (%d counts)" actual_freq
                      period_counts);
                 Assign (reg (n ^ "_CMOD"), Int_lit period_counts);
                 Assign (reg (n ^ "_CTRL"), Hex_lit 0x0001);
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "SetRatio16") (Named "byte")
               (n ^ "_SetRatio16")
               [ (U16, "ratio") ]
               [
                 Decl
                   ( U32, "val",
                     Some
                       (Bin
                          ( ">>",
                            Bin
                              ( "*",
                                Cast_to (U32, Var "ratio"),
                                Cast_to (U32, Int_lit period_counts) ),
                            Int_lit 16 )) );
                 Assign (reg (n ^ "_CVAL"), Cast_to (U16, Var "val"));
                 Return (Some (Var "ERR_OK"));
               ]);
        ]
    | Bean.Dac { resolution; vref; _ }, Some (Bean.R_dac { channel; max_code }) ->
        let base = base_of mcu `Dac + (channel * 0x08) in
        def_reg defs (n ^ "_CTRL") base;
        def_reg defs (n ^ "_DATA") (base + 2);
        [
          Func_def
            (func ~comment:(method_comment t "Enable") (Named "byte")
               (n ^ "_Enable") []
               [
                 Comment
                   (Printf.sprintf "%d-bit DAC, %g V full scale" resolution vref);
                 Assign (reg (n ^ "_CTRL"), Hex_lit 0x0001);
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "SetValue") (Named "byte")
               (n ^ "_SetValue")
               [ (U16, "value") ]
               [
                 Comment (Printf.sprintf "clamped to the %d full-scale code" max_code);
                 If
                   ( Bin (">", Var "value", Int_lit max_code),
                     [ Assign (Var "value", Int_lit max_code) ],
                     [] );
                 Assign (reg (n ^ "_DATA"), Var "value");
                 Return (Some (Var "ERR_OK"));
               ]);
        ]
    | Bean.Bit_io { pin; direction; init }, Some Bean.R_bitio ->
        let base = base_of mcu `Gpio in
        def_reg defs (n ^ "_DATA") base;
        def_reg defs (n ^ "_DDIR") (base + 2);
        let bit = Hashtbl.hash pin land 0x7 in
        let mask = 1 lsl bit in
        (match direction with
        | Bean.Out_pin ->
            [
              Func_def
                (func ~comment:(method_comment t "Init") Void (n ^ "_Init") []
                   [
                     Comment (Printf.sprintf "pin %s as output, init %b" pin init);
                     Assign
                       (reg (n ^ "_DDIR"), Bin ("|", reg (n ^ "_DDIR"), Hex_lit mask));
                     (if init then
                        Assign
                          (reg (n ^ "_DATA"),
                           Bin ("|", reg (n ^ "_DATA"), Hex_lit mask))
                      else
                        Assign
                          (reg (n ^ "_DATA"),
                           Bin ("&", reg (n ^ "_DATA"), Hex_lit (lnot mask land 0xFFFF))));
                   ]);
              Func_def
                (func ~comment:(method_comment t "PutVal") Void (n ^ "_PutVal")
                   [ (Named "bool", "value") ]
                   [
                     If
                       ( Var "value",
                         [
                           Assign
                             ( reg (n ^ "_DATA"),
                               Bin ("|", reg (n ^ "_DATA"), Hex_lit mask) );
                         ],
                         [
                           Assign
                             ( reg (n ^ "_DATA"),
                               Bin
                                 ( "&",
                                   reg (n ^ "_DATA"),
                                   Hex_lit (lnot mask land 0xFFFF) ) );
                         ] );
                   ]);
            ]
        | Bean.In_pin ->
            [
              Func_def
                (func ~comment:(method_comment t "GetVal") (Named "bool")
                   (n ^ "_GetVal") []
                   [
                     Return
                       (Some
                          (Ternary
                             ( Bin ("&", reg (n ^ "_DATA"), Hex_lit mask),
                               Int_lit 1, Int_lit 0 )));
                   ]);
            ])
    | Bean.Quad_dec _, Some (Bean.R_qdec { register_bits }) ->
        let base = base_of mcu `Qdec in
        def_reg defs (n ^ "_POSD") base;
        def_reg defs (n ^ "_CTRL") (base + 2);
        [
          Func_def
            (func ~comment:(method_comment t "GetPosition") U16
               (n ^ "_GetPosition") []
               [
                 Comment (Printf.sprintf "%d-bit position register" register_bits);
                 Return (Some (reg (n ^ "_POSD")));
               ]);
          Func_def
            (func ~comment:(method_comment t "ResetPosition") (Named "byte")
               (n ^ "_ResetPosition") []
               [
                 Assign (reg (n ^ "_POSD"), Int_lit 0);
                 Return (Some (Var "ERR_OK"));
               ]);
        ]
    | Bean.Serial { baud; _ }, Some (Bean.R_serial { port; divisor; _ }) ->
        let base = base_of mcu `Sci + (port * 0x10) in
        def_reg defs (n ^ "_BAUD") base;
        def_reg defs (n ^ "_CTRL") (base + 2);
        def_reg defs (n ^ "_STAT") (base + 4);
        def_reg defs (n ^ "_DATA") (base + 6);
        [
          Func_def
            (func ~comment:(method_comment t "Init") Void (n ^ "_Init") []
               [
                 Comment (Printf.sprintf "%d baud (divisor %d)" baud divisor);
                 Assign (reg (n ^ "_BAUD"), Int_lit divisor);
                 Assign (reg (n ^ "_CTRL"), Hex_lit 0x002C (* TE|RE|RIE *));
               ]);
          Func_def
            (func ~comment:(method_comment t "SendChar") (Named "byte")
               (n ^ "_SendChar")
               [ (Named "byte", "chr") ]
               [
                 While
                   ( Bin ("==", Bin ("&", reg (n ^ "_STAT"), Hex_lit 0x8000), Int_lit 0),
                     [ Comment "wait for transmit data register empty" ] );
                 Assign (reg (n ^ "_DATA"), Var "chr");
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "RecvChar") (Named "byte")
               (n ^ "_RecvChar")
               [ (Ptr (Named "byte"), "chr") ]
               [
                 (* single exit point (MISRA) *)
                 Decl (Named "byte", "err", Some (Var "ERR_RXEMPTY"));
                 If
                   ( Bin ("!=", Bin ("&", reg (n ^ "_STAT"), Hex_lit 0x4000), Int_lit 0),
                     [
                       Assign
                         (Un ("*", Var "chr"), Cast_to (Named "byte", reg (n ^ "_DATA")));
                       Assign (Var "err", Var "ERR_OK");
                     ],
                     [] );
                 Return (Some (Var "err"));
               ]);
        ]
    | Bean.Watch_dog { timeout }, Some (Bean.R_wdog { timeout_cycles }) ->
        let base = base_of mcu `Wdog in
        def_reg defs (n ^ "_CTRL") base;
        def_reg defs (n ^ "_CNT") (base + 2);
        [
          Func_def
            (func ~comment:(method_comment t "Enable") (Named "byte")
               (n ^ "_Enable") []
               [
                 Comment
                   (Printf.sprintf "%g ms timeout (%d cycles)" (timeout *. 1e3)
                      timeout_cycles);
                 Assign (reg (n ^ "_CTRL"), Hex_lit 0x0001);
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "Clear") (Named "byte")
               (n ^ "_Clear") []
               [
                 Comment "service sequence: 0x5555 then 0xAAAA";
                 Assign (reg (n ^ "_CNT"), Hex_lit 0x5555);
                 Assign (reg (n ^ "_CNT"), Hex_lit 0xAAAA);
                 Return (Some (Var "ERR_OK"));
               ]);
        ]
    | Bean.Free_cntr _, Some (Bean.R_free_cntr (sol, ch)) ->
        let base = base_of mcu `Timer + (ch * 0x10) in
        def_reg defs (n ^ "_CNTR") base;
        def_reg defs (n ^ "_CTRL") (base + 2);
        [
          Func_def
            (func ~comment:(method_comment t "Reset") (Named "byte") (n ^ "_Reset")
               []
               [
                 Assign (reg (n ^ "_CNTR"), Int_lit 0);
                 Return (Some (Var "ERR_OK"));
               ]);
          Func_def
            (func ~comment:(method_comment t "GetCounterValue") U16
               (n ^ "_GetCounterValue") []
               [
                 Comment
                   (Printf.sprintf "tick %.4g us"
                      (sol.Expert.achieved_period *. 1e6));
                 Return (Some (reg (n ^ "_CNTR")));
               ]);
        ]
    | _, None -> unresolved t
    | _, Some _ -> unresolved t
  in
  {
    unit_name = n ^ ".c";
    items =
      Include_local "PE_Types.h"
      :: Item_comment
           (Printf.sprintf "Bean %s of type %s on %s" n (Bean.type_name t)
              mcu.Mcu_db.name)
      :: List.rev !defs
      @ items;
  }

let types_header mcu =
  {
    unit_name = "PE_Types.h";
    items =
      [
        Item_comment
          (Printf.sprintf "Shared HAL types and register access for %s (%s core)"
             mcu.Mcu_db.name mcu.Mcu_db.core);
        Include "stdint.h";
        Typedef (U8, "byte");
        Typedef (U16, "word");
        Typedef (U32, "dword");
        Typedef (U8, "bool");
        Define ("ERR_OK", "0");
        Define ("ERR_RXEMPTY", "12");
        Define ("REG16(addr)", "(*(volatile uint16_t *)(uintptr_t)(addr))");
      ];
  }

let isr_vector_table mcu beans =
  let handlers =
    List.concat_map
      (fun b -> List.map (fun ev -> (b, ev)) (Bean.events b))
      beans
  in
  {
    unit_name = "Vectors.c";
    items =
      Item_comment
        (Printf.sprintf "Interrupt dispatch for %s: hardware vectors to bean events"
           mcu.Mcu_db.name)
      :: Include_local "PE_Types.h"
      :: List.concat
           (List.mapi
              (fun i (b, ev) ->
                [
                  Proto (func Void ev [] []);
                  Func_def
                    (func
                       ~comment:
                         (Printf.sprintf "vector %d -> %s (%s)" (i + 16) ev
                            (Bean.type_name b))
                       Void
                       (Printf.sprintf "ISR_Vector%d" (i + 16))
                       []
                       [ Expr (Call (ev, [])) ]);
                ])
              handlers);
  }
