type config = {
  corrupt_rate : float;
  drop_rate : float;
  dup_rate : float;
  delay_rate : float;
  seed : int;
}

let clean =
  { corrupt_rate = 0.0; drop_rate = 0.0; dup_rate = 0.0; delay_rate = 0.0;
    seed = 1 }

type t = {
  cfg : config;
  sink : int -> unit;
  state : int64 ref;
  mutable held : int option;  (** a byte delayed past its successor *)
  mutable corrupted : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
}

(* SplitMix64, the same deterministic generator the PIL co-simulator
   uses for line-error injection *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform t =
  Int64.to_float (Int64.shift_right_logical (splitmix t.state) 11)
  /. 9007199254740992.0

let bits t n = Int64.to_int (Int64.logand (splitmix t.state) (Int64.of_int (n - 1)))

let create cfg ~sink =
  {
    cfg;
    sink;
    state = ref (Int64.of_int cfg.seed);
    held = None;
    corrupted = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
  }

let emit t b =
  t.sink b;
  (* a held-back byte goes out right after the byte that overtook it *)
  match t.held with
  | Some h ->
      t.held <- None;
      t.sink h
  | None -> ()

let send t b =
  let b =
    if t.cfg.corrupt_rate > 0.0 && uniform t < t.cfg.corrupt_rate then begin
      t.corrupted <- t.corrupted + 1;
      b lxor (1 lsl bits t 8)
    end
    else b
  in
  if t.cfg.drop_rate > 0.0 && uniform t < t.cfg.drop_rate then
    t.dropped <- t.dropped + 1
  else if t.cfg.dup_rate > 0.0 && uniform t < t.cfg.dup_rate then begin
    t.duplicated <- t.duplicated + 1;
    emit t b;
    emit t b
  end
  else if
    t.cfg.delay_rate > 0.0 && t.held = None && uniform t < t.cfg.delay_rate
  then begin
    t.delayed <- t.delayed + 1;
    t.held <- Some b
  end
  else emit t b

let send_all t l = List.iter (send t) l

let flush t =
  match t.held with
  | Some h ->
      t.held <- None;
      t.sink h
  | None -> ()

let corrupted t = t.corrupted
let dropped t = t.dropped
let duplicated t = t.duplicated
let delayed t = t.delayed
