(** Seeded fault injection for the framed RS-232 byte stream.

    Wraps any byte sink with a deterministic noise source: each byte
    pushed through the wrapper may be bit-corrupted, dropped,
    duplicated or held back one byte (reordered), with independent
    per-byte probabilities drawn from a SplitMix64 generator. Every run
    with the same seed injects the same fault pattern, so a CRC/framer
    failure found under noise replays exactly.

    This is the line-noise model of the PIL/HIL serial link: use it to
    prove the CRC16 + framing layer rejects (never mis-parses) damaged
    frames and recovers on the next clean one. *)

type config = {
  corrupt_rate : float;  (** probability a byte gets one bit flipped *)
  drop_rate : float;  (** probability a byte vanishes *)
  dup_rate : float;  (** probability a byte is sent twice *)
  delay_rate : float;
      (** probability a byte is held back and emitted after the
          following byte (one-byte reorder) *)
  seed : int;
}

val clean : config
(** All rates zero, seed 1: the identity channel. *)

type t

val create : config -> sink:(int -> unit) -> t
(** [create cfg ~sink] wraps [sink] with the fault model. *)

val send : t -> int -> unit
(** Push one byte through the channel. *)

val send_all : t -> int list -> unit

val flush : t -> unit
(** Emit any byte still held back by a delay fault (end of stream). *)

(** Fault counters, for assertions and reporting: *)

val corrupted : t -> int

val dropped : t -> int

val duplicated : t -> int

val delayed : t -> int
