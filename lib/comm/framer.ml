(* link-level metrics, aggregated over every framer in the process *)
let c_rx_bytes = Obs.counter "comm.rx_bytes"
let c_frames_ok = Obs.counter "comm.frames_ok"
let c_crc_errors = Obs.counter "comm.crc_errors"
let c_dropped_bytes = Obs.counter "comm.dropped_bytes"

type state = Hunting | In_frame | In_escape

type t = {
  on_packet : Packet.t -> unit;
  mutable state : state;
  mutable buf : int list;  (* unstuffed frame bytes, reversed *)
  mutable count : int;
  mutable expected_len : int option;  (* payload length once the header is in *)
  mutable crc_errors : int;
  mutable dropped : int;
  mutable ok : int;
}

let create ~on_packet =
  {
    on_packet;
    state = Hunting;
    buf = [];
    count = 0;
    expected_len = None;
    crc_errors = 0;
    dropped = 0;
    ok = 0;
  }

let restart t =
  t.buf <- [];
  t.count <- 0;
  t.expected_len <- None

let finish_frame t =
  let bytes = List.rev t.buf in
  restart t;
  t.state <- Hunting;
  match bytes with
  | ptype :: seq :: len :: rest when List.length rest = len + 2 ->
      let payload = List.filteri (fun i _ -> i < len) rest in
      let crc_bytes = List.filteri (fun i _ -> i >= len) rest in
      let expected = Crc16.of_bytes (ptype :: seq :: len :: payload) in
      (match crc_bytes with
      | [ hi; lo ] when ((hi lsl 8) lor lo) = expected ->
          t.ok <- t.ok + 1;
          Obs.add c_frames_ok 1;
          t.on_packet { Packet.ptype; seq; payload }
      | _ ->
          t.crc_errors <- t.crc_errors + 1;
          Obs.add c_crc_errors 1)
  | _ ->
      t.crc_errors <- t.crc_errors + 1;
      Obs.add c_crc_errors 1

let accept t byte =
  t.buf <- byte :: t.buf;
  t.count <- t.count + 1;
  (* the third header byte is the payload length; the frame is complete at
     3 + len + 2 unstuffed bytes *)
  if t.count = 3 then t.expected_len <- Some byte;
  match t.expected_len with
  | Some len when t.count = 3 + len + 2 -> finish_frame t
  | _ -> ()

let feed t byte =
  let byte = byte land 0xFF in
  Obs.add c_rx_bytes 1;
  match t.state with
  | Hunting ->
      if byte = Packet.sof then begin
        t.state <- In_frame;
        restart t
      end
      else begin
        t.dropped <- t.dropped + 1;
        Obs.add c_dropped_bytes 1
      end
  | In_frame ->
      if byte = Packet.sof then begin
        (* unterminated frame: count it lost, resynchronise *)
        if t.count > 0 then begin
          t.crc_errors <- t.crc_errors + 1;
          Obs.add c_crc_errors 1
        end;
        t.state <- In_frame;
        restart t
      end
      else if byte = Packet.esc then t.state <- In_escape
      else accept t byte
  | In_escape ->
      t.state <- In_frame;
      accept t (byte lxor 0x20)

let feed_all t bytes = List.iter (feed t) bytes
let crc_errors t = t.crc_errors
let dropped_bytes t = t.dropped
let packets_ok t = t.ok

let reset t =
  t.state <- Hunting;
  restart t
