type variant = Float_pid | Fixed_pid
type block_set = Pe_blocks | Autosar_blocks

type config = {
  mcu : Mcu_db.t;
  control_period : float;
  pwm_freq : float;
  encoder_lines : int;
  variant : variant;
  setpoints : (float * float) list;
  load : Load_profile.t;
  motor : Dc_motor.params;
  baud : int;
  with_mode_logic : bool;
  block_set : block_set;
  with_supervisor : bool;
}

let default_config =
  {
    mcu = Mcu_db.mc56f8367;
    control_period = 1e-3;
    pwm_freq = 20e3;
    encoder_lines = 100;
    variant = Float_pid;
    setpoints = [ (0.0, 50.0); (0.4, 100.0); (0.8, 150.0) ];
    load = Load_profile.Step { at = 1.2; torque = 4.0e-3 };
    motor = Dc_motor.default;
    baud = 115200;
    with_mode_logic = true;
    block_set = Pe_blocks;
    with_supervisor = false;
  }

type built = {
  config : config;
  project : Bean_project.t;
  controller : Model.t;
  closed_loop : Model.t;
  gains : Pid.gains;
  speed_block : string;
  duty_block : string;
  setpoint_block : string;
  supervisor_block : string option;
}

(* The speed normalisation of the Q15 controller: set-points stay well
   below the no-load speed of the 24 V motor (~480 rad/s). *)
let fixed_in_scale = 512.0

let tuned_gains cfg =
  let kp, ki = Tuning.pi_for_dc_motor_speed cfg.motor ~closed_loop_tau:0.02 () in
  Pid.gains ~kp ~ki ~u_min:0.0 ~u_max:cfg.motor.Dc_motor.u_max ()

let make_project cfg =
  let p = Bean_project.create cfg.mcu in
  let add name config = ignore (Bean_project.add p (Bean.make ~name config)) in
  add "TI1" (Bean.Timer_int { period = cfg.control_period; tolerance_frac = 0.001 });
  add "PWM1" (Bean.Pwm { channel = None; freq_hz = cfg.pwm_freq; initial_ratio = 0.0 });
  add "QD1" (Bean.Quad_dec { lines_per_rev = cfg.encoder_lines });
  if cfg.with_mode_logic then
    add "SW1"
      (Bean.Bit_io { pin = List.hd cfg.mcu.Mcu_db.pins; direction = Bean.In_pin;
                     init = false });
  add "AS1" (Bean.Serial { port = None; baud = cfg.baud });
  if cfg.with_supervisor then
    (* serviced by the supervisor block's generated step; timeout covers
       several missed periods so PIL jitter alone never bites *)
    add "WD1" (Bean.Watch_dog { timeout = 8.0 *. cfg.control_period });
  (match Bean_project.verify p with
  | Ok () -> ()
  | Error msgs ->
      invalid_arg
        ("Servo_system: bean project does not verify: " ^ String.concat "; " msgs));
  p

(* Manual/Auto mode chart: starts in Auto, each button press toggles. *)
let mode_chart_factory () =
  let ctx = ref (true, false) in
  (* (auto, prev_button) -- kept outside the chart for reset simplicity *)
  let chart =
    Chart.create
      [
        Chart.state ~initial:true "Operate";
        Chart.state ~parent:"Operate" ~initial:true "Auto";
        Chart.state ~parent:"Operate" "Manual";
      ]
      [
        Chart.transition ~trigger:"button" ~src:"Auto" ~dst:"Manual" ();
        Chart.transition ~trigger:"button" ~src:"Manual" ~dst:"Auto" ();
      ]
  in
  Chart.start chart ();
  let step ~time:_ ins =
    let btn = ins.(0) > 0.5 in
    let _, prev = !ctx in
    if btn && not prev then ignore (Chart.dispatch chart () "button");
    ctx := (Chart.is_in chart "Auto", btn);
    [| (if Chart.is_in chart "Auto" then 1.0 else 0.0) |]
  in
  let reset () =
    Chart.reset chart;
    Chart.start chart ();
    ctx := (true, false)
  in
  (step, reset)

(* Embedded realisation of the mode chart: the TLC script of the
   user-written s-function block (Blockgen's custom-emitter hook). *)
let () =
  Blockgen.register "ModeChart" (fun g _spec ->
      let open C_ast in
      let btn = Var (g.Blockgen.name ^ "_btn") in
      {
        Blockgen.state_fields = [ (U8, "auto"); (U8, "prev") ];
        init =
          [
            Assign (g.Blockgen.state "auto", Int_lit 1);
            Assign (g.Blockgen.state "prev", Int_lit 0);
          ];
        step =
          [
            Decl
              ( U8, g.Blockgen.name ^ "_btn",
                Some
                  (Ternary
                     ( Bin (">", List.nth g.Blockgen.ins 0, flt 0.5),
                       Int_lit 1, Int_lit 0 )) );
            If
              ( Bin ("&&", btn, Un ("!", g.Blockgen.state "prev")),
                [
                  Assign
                    ( g.Blockgen.state "auto",
                      Cast_to (U8, Un ("!", g.Blockgen.state "auto")) );
                ],
                [] );
            Assign (g.Blockgen.state "prev", btn);
            Assign
              ( List.nth g.Blockgen.outs 0,
                Ternary (g.Blockgen.state "auto", flt 1.0, flt 0.0) );
          ];
        update = [];
        needs_time = false;
      })

let build_controller cfg project gains =
  let ts = cfg.control_period in
  (* the two block-set variants are behaviourally identical; only the
     generated-code API differs (section 8) *)
  let mk_timer, mk_qdec, mk_bitio_in, mk_pwm =
    match cfg.block_set with
    | Pe_blocks ->
        ( Periph_blocks.timer_int, Periph_blocks.quad_decoder,
          Periph_blocks.bit_io_in, Periph_blocks.pwm )
    | Autosar_blocks ->
        ( Autosar_blocks.timer_int, Autosar_blocks.icu_position,
          Autosar_blocks.dio_in, Autosar_blocks.pwm )
  in
  let m = Model.create "servo_ctl" in
  let add = Model.add m in
  let connect = Model.connect m in
  let in_theta = add ~name:"theta_in" (Routing_blocks.inport 0) in
  (* the TimerInt bean block defines the periodic execution (§5) *)
  let _ti = add ~name:"ti" (mk_timer (Bean_project.find project "TI1")) in
  let zoh = add ~name:"theta_smp" (Discrete_blocks.zoh ~period:ts ()) in
  let qd = add ~name:"qd" (mk_qdec (Bean_project.find project "QD1")) in
  let spd =
    add ~name:"speed"
      (Discrete_blocks.encoder_speed ~counts_per_rev:(4 * cfg.encoder_lines))
  in
  let sp = add ~name:"sp" (Sources.setpoint_schedule cfg.setpoints) in
  let pid =
    match cfg.variant with
    | Float_pid -> add ~name:"pid" (Discrete_blocks.pid ~ts gains)
    | Fixed_pid ->
        add ~name:"pid"
          (Discrete_blocks.fix_pid ~ts ~fmt:Qformat.q15 ~in_scale:fixed_in_scale
             ~out_scale:cfg.motor.Dc_motor.u_max gains)
  in
  let duty =
    add ~name:"volt2duty" (Math_blocks.gain (1.0 /. cfg.motor.Dc_motor.u_max))
  in
  let sat = add ~name:"duty_sat" (Nonlinear_blocks.saturation ~lo:0.0 ~hi:1.0) in
  connect ~src:(in_theta, 0) ~dst:(zoh, 0);
  connect ~src:(zoh, 0) ~dst:(qd, 0);
  connect ~src:(qd, 0) ~dst:(spd, 0);
  connect ~src:(sp, 0) ~dst:(pid, 0);
  connect ~src:(spd, 0) ~dst:(pid, 1);
  connect ~src:(pid, 0) ~dst:(duty, 0);
  connect ~src:(duty, 0) ~dst:(sat, 0);
  let duty_src =
    if cfg.with_mode_logic then begin
      let in_btn = add ~name:"btn_in" (Routing_blocks.inport 1) in
      let sw1 = add ~name:"sw1" (mk_bitio_in (Bean_project.find project "SW1")) in
      let mode =
        add ~name:"mode_chart"
          (Chart_block.block ~kind:"ModeChart" ~n_in:1 ~n_out:1 ~period:ts
             mode_chart_factory)
      in
      let manual = add ~name:"manual_duty" (Sources.constant 0.3) in
      let select = add ~name:"mode_switch" (Nonlinear_blocks.switch ~threshold:0.5) in
      connect ~src:(in_btn, 0) ~dst:(sw1, 0);
      connect ~src:(sw1, 0) ~dst:(mode, 0);
      connect ~src:(sat, 0) ~dst:(select, 0);
      connect ~src:(mode, 0) ~dst:(select, 1);
      connect ~src:(manual, 0) ~dst:(select, 2);
      (select, 0)
    end
    else (sat, 0)
  in
  let duty_src =
    if cfg.with_supervisor then begin
      (* the safe-state supervisor rides between the controller and the
         PWM: raw count + measured speed in, supervised duty out *)
      let sup =
        add ~name:"supervisor"
          (Supervisor.block ~period:ts
             { Supervisor.default with Supervisor.wdog_bean = Some "WD1" })
      in
      connect ~src:(qd, 0) ~dst:(sup, 0);
      connect ~src:(spd, 0) ~dst:(sup, 1);
      connect ~src:duty_src ~dst:(sup, 2);
      (sup, 0)
    end
    else duty_src
  in
  let ratio = add ~name:"duty2ratio" (Math_blocks.gain 65535.0) in
  let cast = add ~name:"ratio_u16" (Math_blocks.cast Dtype.Uint16) in
  let pwm = add ~name:"pwm" (mk_pwm (Bean_project.find project "PWM1")) in
  let out = add ~name:"duty_out" (Routing_blocks.outport 0) in
  connect ~src:duty_src ~dst:(ratio, 0);
  connect ~src:(ratio, 0) ~dst:(cast, 0);
  connect ~src:(cast, 0) ~dst:(pwm, 0);
  connect ~src:(pwm, 0) ~dst:(out, 0);
  m

let build_plant cfg =
  let m = Model.create "servo_plant" in
  let add = Model.add m in
  let connect = Model.connect m in
  let in_duty = add ~name:"duty_in" (Routing_blocks.inport 0) in
  let stage =
    add ~name:"stage"
      (Plant_blocks.power_stage (Power_stage.ideal ~u_supply:cfg.motor.Dc_motor.u_max))
  in
  let motor = add ~name:"motor" (Plant_blocks.dc_motor ~params:cfg.motor ~load:cfg.load ()) in
  let out_theta = add ~name:"theta_out" (Routing_blocks.outport 0) in
  let out_w = add ~name:"w_out" (Routing_blocks.outport 1) in
  connect ~src:(in_duty, 0) ~dst:(stage, 0);
  connect ~src:(motor, 2) ~dst:(stage, 1);
  connect ~src:(stage, 0) ~dst:(motor, 0);
  connect ~src:(motor, 1) ~dst:(out_theta, 0);
  connect ~src:(motor, 0) ~dst:(out_w, 0);
  m

let plant_model cfg = build_plant cfg

let build ?(config = default_config) () =
  let cfg = config in
  let project = make_project cfg in
  let gains = tuned_gains cfg in
  let controller = build_controller cfg project gains in
  let plant = build_plant cfg in
  (* single-model closed loop (Fig 7.1): a unit junction carries the duty
     signal into the plant; the loop is broken inside the motor states *)
  let closed = Model.create "servo" in
  let junction = Model.add closed ~name:"duty_junction" (Math_blocks.gain 1.0) in
  let plant_outs =
    Model.inline closed ~prefix:"plant" ~sub:plant ~inputs:[| (junction, 0) |]
  in
  let button =
    Model.add closed ~name:"button"
      (Sources.step ~t_step:1e9 ~before:0.0 ~after:1.0 ())
  in
  let ctl_inputs =
    if cfg.with_mode_logic then [| plant_outs.(0); (button, 0) |]
    else [| plant_outs.(0) |]
  in
  if not cfg.with_mode_logic then
    ignore (Model.add closed ~name:"button_sink" Routing_blocks.terminator |> fun b ->
            Model.connect closed ~src:(button, 0) ~dst:(b, 0));
  let ctl_outs =
    Model.inline closed ~prefix:"ctl" ~sub:controller ~inputs:ctl_inputs
  in
  Model.connect closed ~src:ctl_outs.(0) ~dst:(junction, 0);
  {
    config = cfg;
    project;
    controller;
    closed_loop = closed;
    gains;
    speed_block = "plant/motor";
    duty_block = "duty_junction";
    setpoint_block = "ctl/sp";
    supervisor_block =
      (if cfg.with_supervisor then Some "ctl/supervisor" else None);
  }

let solver_substeps_for built comp =
  (* keep the RK4 sub-step below ~40 % of the electrical time constant *)
  let tau_e = Dc_motor.electrical_time_constant built.config.motor in
  Stdlib.max 1
    (int_of_float (Float.ceil (comp.Compile.base_dt /. (0.4 *. tau_e))))

(* ---------- fault-campaign subject ---------- *)

let faultsim_subject ?(config = default_config) ~scenario () =
  (* plant-side load faults fold into the load profile — the MIL plant
     computes its shaft torque internally, not through a signal port *)
  let load =
    List.fold_left
      (fun acc f ->
        match f.Fault.kind with
        | Fault.Load_torque torque ->
            let stop =
              match f.Fault.every with
              | None -> f.Fault.at +. f.Fault.duration
              | Some _ -> infinity
            in
            Load_profile.Sum
              [ acc; Load_profile.Pulse { start = f.Fault.at; stop; torque } ]
        | _ -> acc)
      config.load scenario.Fault_scenario.faults
  in
  let cfg = { config with with_supervisor = true; load } in
  let built = build ~config:cfg () in
  (* campaigns build one subject per worker domain — the content-hashed
     cache collapses those to a single compile per distinct model *)
  let comp = Compile_cache.compile built.closed_loop in
  let sim = Sim.create ~solver_substeps:(solver_substeps_for built comp) comp in
  let find n = Model.find built.closed_loop n in
  let subject =
    {
      Fault_campaign.sim;
      ports =
        {
          Fault_campaign.sensor_ports = [| (find "ctl/qd", 0) |];
          duty_port = Some (find built.duty_block, 0);
          mode_port = (find "ctl/supervisor", 1);
          speed_port = (find built.speed_block, 0);
          setpoint_port = Some (find built.setpoint_block, 0);
        };
      mcu = cfg.mcu;
    }
  in
  (subject, built)

let mil_run built ~t_end =
  let comp = Compile.compile built.closed_loop in
  let sim = Sim.create ~solver_substeps:(solver_substeps_for built comp) comp in
  Sim.probe_named sim built.speed_block 0;
  Sim.probe_named sim built.duty_block 0;
  Sim.run sim ~until:t_end ();
  (Sim.trace_named sim built.speed_block 0, Sim.trace_named sim built.duty_block 0)

let mil_speed_at built ~t_end =
  let speed, _ = mil_run built ~t_end in
  match List.rev speed with (_, w) :: _ -> w | [] -> 0.0

(* ---------- PIL side ---------- *)

type pil_plant = {
  cfg : config;
  stage : Power_stage.t;
  enc : Encoder.t;
  mutable state : Dc_motor.state;
  mutable duty : float;
  mutable time : float;
  button : float -> bool;
}

let pil_plant built =
  {
    cfg = built.config;
    stage = Power_stage.ideal ~u_supply:built.config.motor.Dc_motor.u_max;
    enc = Encoder.create ~lines_per_rev:built.config.encoder_lines ();
    state = Dc_motor.initial;
    duty = 0.0;
    time = 0.0;
    button = (fun _ -> false);
  }

let pil_driver built =
  let with_btn = built.config.with_mode_logic in
  {
    Pil_cosim.read_sensors =
      (fun p ~time:_ ->
        let count =
          Encoder.count_of_angle p.enc ~theta:p.state.Dc_motor.theta land 0xFFFF
        in
        if with_btn then [| count; (if p.button p.time then 1 else 0) |]
        else [| count |]);
    apply_actuators =
      (fun p acts ->
        if Array.length acts > 0 then p.duty <- float_of_int acts.(0) /. 65535.0);
    advance =
      (fun p ~dt ->
        (* sub-step the electrical dynamics inside one control period *)
        let substeps = 8 in
        let h = dt /. float_of_int substeps in
        for _ = 1 to substeps do
          let u =
            Power_stage.output_voltage p.stage ~duty:p.duty ~i:p.state.Dc_motor.i
          in
          let tau =
            Load_profile.torque p.cfg.load ~time:p.time ~w:p.state.Dc_motor.w
          in
          p.state <- Dc_motor.step p.cfg.motor ~u ~tau_load:tau ~h p.state;
          p.time <- p.time +. h
        done);
    observe =
      (fun p ->
        [
          ("speed", p.state.Dc_motor.w);
          ("theta", p.state.Dc_motor.theta);
          ("duty", p.duty);
          ("current", p.state.Dc_motor.i);
        ]);
  }

let pil_speed_trace trace =
  List.filter_map
    (fun (t, obs) ->
      match List.assoc_opt "speed" obs with Some w -> Some (t, w) | None -> None)
    trace
