(** The paper's case study (§7): speed control of a mechanically
    commutated DC motor.

    "The motor is actuated by a power transistor switched by a pulse
    width modulated signal from the MCU. The feedback is provided by an
    incremental rotating encoder … These signals are handled by the MCU
    counters. A few button keyboard is used to set the speed set-point
    and switch between the manual and the automatic control mode. The MCU
    is 16-bit Hybrid Controller (DSP and MCU functionality) MC56F8367."

    This module builds the whole experiment: the Processor Expert project
    (TimerInt, PWM, QuadDecoder, BitIO, AsynchroSerial beans), the
    controller sub-model with PE blocks, the plant sub-model, the single
    closed-loop model of Fig 7.1, and the PIL plant driver — shared by
    the examples, tests and the benchmark harness. *)

type variant = Float_pid | Fixed_pid
(** Controller arithmetic: ideal double, or the Q15 realisation a 16-bit
    MCU without an FPU needs (§7's fixed-point discussion). *)

type block_set = Pe_blocks | Autosar_blocks
(** Which peripheral block-set variant the controller uses (§8): blocks
    representing PE beans, or blocks representing AUTOSAR peripherals —
    "the same from the functional point of view, but they differ in HW
    settings and the API of generated code". *)

type config = {
  mcu : Mcu_db.t;
  control_period : float;  (** controller rate, s (default 1 ms) *)
  pwm_freq : float;  (** PWM carrier, Hz (default 20 kHz) *)
  encoder_lines : int;  (** IRC lines/rev (the paper's 100) *)
  variant : variant;
  setpoints : (float * float) list;  (** (time, rad/s) schedule *)
  load : Load_profile.t;
  motor : Dc_motor.params;
  baud : int;  (** PIL serial line rate *)
  with_mode_logic : bool;  (** include the manual/auto chart + button *)
  block_set : block_set;
  with_supervisor : bool;
      (** insert the {!Supervisor} safe-state block between the
          controller and the PWM, plus a WD1 watchdog bean it services *)
}

val default_config : config
(** MC56F8367, 1 kHz control, 20 kHz PWM, 100-line encoder, float PID,
    set-points 50/100/150 rad/s at 0/0.4/0.8 s, load step at 1.2 s,
    115200 baud, mode logic on. *)

type built = {
  config : config;
  project : Bean_project.t;  (** the verified PE project *)
  controller : Model.t;  (** standalone controller sub-model (codegen input) *)
  closed_loop : Model.t;  (** the single model: plant + controller inlined *)
  gains : Pid.gains;  (** the tuned speed-loop gains *)
  speed_block : string;  (** closed-loop block name carrying motor speed *)
  duty_block : string;  (** closed-loop block name carrying the PWM duty *)
  setpoint_block : string;
  supervisor_block : string option;
      (** closed-loop name of the safe-state supervisor (port 1 = mode),
          when [with_supervisor] is set *)
}

val mode_chart_factory :
  unit -> (time:float -> float array -> float array) * (unit -> unit)
(** The manual/auto mode chart of the case study as a {!Chart_block}
    factory: starts in Auto, toggles on each button rising edge. *)

val plant_model : config -> Model.t
(** The standalone plant sub-model (Inport 0 = duty ratio; Outport 0 =
    shaft angle, Outport 1 = speed) — the input of the Linux simulator
    target ({!Sim_target}). *)

val build : ?config:config -> unit -> built
(** Construct and verify everything.
    @raise Invalid_argument when the bean project does not verify. *)

val solver_substeps_for : built -> Compile.t -> int
(** Solver sub-steps keeping the motor's electrical pole stable at the
    configured control rate. *)

val faultsim_subject :
  ?config:config ->
  scenario:Fault_scenario.t ->
  unit ->
  Fault_campaign.subject * built
(** Build the servo closed loop as a fault-campaign subject: forces
    [with_supervisor] on, folds the scenario's [Load_torque] faults into
    the plant's load profile, and maps the campaign ports (sensor slot 0
    = the quadrature count, the duty junction, the supervisor mode, the
    motor speed and the set-point). *)

val mil_run :
  built -> t_end:float -> (float * float) list * (float * float) list
(** Closed-loop MIL simulation: returns the (time, speed) and
    (time, duty-ratio) trajectories. *)

val mil_speed_at : built -> t_end:float -> float
(** Final speed of a MIL run (convergence checks). *)

(** The PIL-side physical plant: motor + power stage + encoder register,
    advanced by the host between packet exchanges. *)
type pil_plant

val pil_plant : built -> pil_plant
val pil_driver : built -> pil_plant Pil_cosim.plant_driver
(** Driver matching the controller's PIL slot layout (quadrature count
    and button in, PWM ratio out). *)

val pil_speed_trace :
  (float * (string * float) list) list -> (float * float) list
(** Extract the (time, speed) series from a PIL trace. *)
