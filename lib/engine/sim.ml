(* Growable probe storage: two parallel float arrays, doubling growth.
   Replaces the original [(float * float) list ref] accumulation — no
   per-sample boxing/consing on the hot path, and [trace] no longer
   needs a List.rev. *)
type probe_buf = {
  mutable pb_t : float array;
  mutable pb_v : float array;
  mutable pb_len : int;
  pb_name : string;  (* block name, so the flight recorder can label
                        probed-signal events without a lookup per step *)
}

let probe_buf_create name =
  { pb_t = Array.make 64 0.0; pb_v = Array.make 64 0.0; pb_len = 0; pb_name = name }

let probe_buf_push pb t v =
  let cap = Array.length pb.pb_t in
  if pb.pb_len = cap then begin
    let nt = Array.make (2 * cap) 0.0 and nv = Array.make (2 * cap) 0.0 in
    Array.blit pb.pb_t 0 nt 0 cap;
    Array.blit pb.pb_v 0 nv 0 cap;
    pb.pb_t <- nt;
    pb.pb_v <- nv
  end;
  pb.pb_t.(pb.pb_len) <- t;
  pb.pb_v.(pb.pb_len) <- v;
  pb.pb_len <- pb.pb_len + 1

type t = {
  comp : Compile.t;
  behs : Block.beh array;
  signals : Value.t array array;
  overrides : Value.t option array array;
  srcs : (Model.blk * int) array array;
  mutable now : float;
  mutable nstep : int;
  probes : (int * int, probe_buf) Hashtbl.t;
  mutable events_this_step : int;
  cstate_blocks : Model.blk array;  (* owners of continuous states, in order *)
  solver : Ode.method_;
  solver_substeps : int;
  group_exec : Model.blk array array;
      (* execution order per function-call group, indexed by
         [Model.group_index] — replaces the List.assoc_opt lookup that
         used to sit on every event dispatch *)
  group_counters : Obs.counter array;  (* same indexing *)
  mutable fault_hook :
    (time:float -> Model.blk * int -> Value.t -> Value.t) option;
      (* fault-injection perturbation applied to every written output
         port (after overrides); None = unarmed, near-zero cost *)
}

(* process-wide engine metrics *)
let c_steps = Obs.counter "sim.steps"
let c_events = Obs.counter "sim.events"
let h_substep = Obs.hist "sim.ode.substep_s"

let bi = Model.blk_index

let gather t b = Array.map (fun (sb, sp) -> t.signals.(bi sb).(sp)) t.srcs.(bi b)

let write_outputs t b outs =
  let spec = Model.spec_of t.comp.Compile.model b in
  if Array.length outs <> spec.Block.n_out then
    failwith
      (Printf.sprintf "block %s returned %d outputs, expected %d"
         (Model.block_name t.comp.Compile.model b)
         (Array.length outs) spec.Block.n_out);
  Array.iteri
    (fun p v ->
      let v =
        match t.overrides.(bi b).(p) with Some ov -> ov | None -> v
      in
      let v =
        match t.fault_hook with
        | None -> v
        | Some h -> h ~time:t.now (b, p) v
      in
      t.signals.(bi b).(p) <- v)
    outs

let rec exec_group t g =
  let gi = Model.group_index g in
  let order =
    if gi < Array.length t.group_exec then t.group_exec.(gi) else [||]
  in
  if gi < Array.length t.group_counters then Obs.add t.group_counters.(gi) 1;
  Array.iter
    (fun b ->
      let outs = t.behs.(bi b).Block.out ~minor:false ~time:t.now (gather t b) in
      write_outputs t b outs)
    order;
  Array.iter (fun b -> t.behs.(bi b).Block.update ~time:t.now (gather t b)) order

and fire_event t b k =
  t.events_this_step <- t.events_this_step + 1;
  Obs.add c_events 1;
  match Model.event_target t.comp.Compile.model (b, k) with
  | Some g -> exec_group t g
  | None -> ()

let create ?(solver = Ode.Rk4) ?(solver_substeps = 1) comp =
  if solver_substeps < 1 then invalid_arg "Sim.create: solver_substeps";
  let m = comp.Compile.model in
  let n = Model.n_blocks m in
  let signals = Array.make n [||] in
  let overrides = Array.make n [||] in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      signals.(bi b) <-
        Array.init spec.Block.n_out (fun p ->
            Value.zero comp.Compile.out_types.(bi b).(p));
      overrides.(bi b) <- Array.make spec.Block.n_out None)
    (Model.blocks m);
  let t_ref = ref None in
  let behs = Array.make n Block.no_beh_state in
  List.iter
    (fun b ->
      let spec = Model.spec_of m b in
      let block_dt =
        match comp.Compile.sample.(bi b) with
        | Sample_time.R_discrete { period; _ } -> period
        | Sample_time.R_continuous -> 0.0
        | Sample_time.R_triggered | Sample_time.R_const -> comp.Compile.base_dt
      in
      let ctx =
        {
          Block.base_dt = comp.Compile.base_dt;
          block_dt;
          fire =
            (fun k ->
              match !t_ref with
              | Some t -> fire_event t b k
              | None -> ());
          in_dtypes = comp.Compile.in_types.(bi b);
          out_dtypes = comp.Compile.out_types.(bi b);
        }
      in
      behs.(bi b) <- spec.Block.make ctx)
    (Model.blocks m);
  let cstate_blocks =
    Array.of_list
      (List.filter (fun b -> behs.(bi b).Block.ncstates > 0)
         (Array.to_list comp.Compile.order))
  in
  let n_groups =
    List.fold_left
      (fun acc g -> max acc (Model.group_index g + 1))
      0 (Model.groups m)
  in
  let group_exec = Array.make n_groups [||] in
  List.iter
    (fun (g, order) -> group_exec.(Model.group_index g) <- order)
    comp.Compile.group_order;
  let group_counters =
    Array.init n_groups (fun _ -> Obs.counter "sim.group.unused")
  in
  List.iter
    (fun g ->
      group_counters.(Model.group_index g) <-
        Obs.counter ("sim.group." ^ Model.group_name m g))
    (Model.groups m);
  let t =
    {
      comp;
      behs;
      signals;
      overrides;
      srcs = Compile.signal_sources comp;
      now = 0.0;
      nstep = 0;
      probes = Hashtbl.create 8;
      events_this_step = 0;
      cstate_blocks;
      solver;
      solver_substeps;
      group_exec;
      group_counters;
      fault_hook = None;
    }
  in
  t_ref := Some t;
  t

let reset t =
  Array.iter (fun beh -> beh.Block.reset ()) t.behs;
  List.iter
    (fun b ->
      let spec = Model.spec_of t.comp.Compile.model b in
      for p = 0 to spec.Block.n_out - 1 do
        t.signals.(bi b).(p) <- Value.zero t.comp.Compile.out_types.(bi b).(p)
      done)
    (Model.blocks t.comp.Compile.model);
  Hashtbl.iter (fun _ pb -> pb.pb_len <- 0) t.probes;
  t.now <- 0.0;
  t.nstep <- 0

let time t = t.now
let base_dt t = t.comp.Compile.base_dt
let compiled t = t.comp

let probe t (b, p) =
  let key = (bi b, p) in
  if not (Hashtbl.mem t.probes key) then
    Hashtbl.replace t.probes key
      (probe_buf_create (Model.block_name t.comp.Compile.model b))

let probe_named t name p = probe t (Model.find t.comp.Compile.model name, p)

let hit t b =
  match t.comp.Compile.sample.(bi b) with
  | Sample_time.R_const -> t.nstep = 0
  | r -> Sample_time.hit r ~time:t.now ~base_dt:t.comp.Compile.base_dt

(* Continuous-state integration over one base step: the derivative
   function re-evaluates the outputs of continuous-rate blocks (minor
   pass) at the stage state, discrete outputs being held. *)
let integrate t =
  if Array.length t.cstate_blocks > 0 then begin
    let sizes =
      Array.map (fun b -> t.behs.(bi b).Block.ncstates) t.cstate_blocks
    in
    let total = Array.fold_left ( + ) 0 sizes in
    let pack () =
      let x = Array.make total 0.0 in
      let off = ref 0 in
      Array.iter
        (fun b ->
          let s = t.behs.(bi b).Block.get_cstate () in
          Array.blit s 0 x !off (Array.length s);
          off := !off + Array.length s)
        t.cstate_blocks;
      x
    in
    let unpack x =
      let off = ref 0 in
      Array.iteri
        (fun i b ->
          t.behs.(bi b).Block.set_cstate (Array.sub x !off sizes.(i));
          off := !off + sizes.(i))
        t.cstate_blocks
    in
    let minor_pass time =
      Array.iter
        (fun b ->
          if t.comp.Compile.sample.(bi b) = Sample_time.R_continuous then
            write_outputs t b
              (t.behs.(bi b).Block.out ~minor:true ~time (gather t b)))
        t.comp.Compile.order
    in
    let f time x =
      unpack x;
      minor_pass time;
      let d = Array.make total 0.0 in
      let off = ref 0 in
      Array.iteri
        (fun i b ->
          let db = t.behs.(bi b).Block.deriv ~time (gather t b) in
          Array.blit db 0 d !off sizes.(i);
          off := !off + sizes.(i))
        t.cstate_blocks;
      d
    in
    (* sub-stepping keeps stiff continuous dynamics (e.g. the motor's
       electrical pole) stable when the discrete base rate is slow *)
    let n = t.solver_substeps in
    let h = t.comp.Compile.base_dt /. float_of_int n in
    let x = ref (pack ()) in
    if Obs.enabled () then
      for i = 0 to n - 1 do
        let t0 = Obs.now_ns () in
        x := Ode.step t.solver f (t.now +. (float_of_int i *. h)) !x h;
        Obs.record h_substep ((Obs.now_ns () -. t0) *. 1e-9)
      done
    else
      for i = 0 to n - 1 do
        x := Ode.step t.solver f (t.now +. (float_of_int i *. h)) !x h
      done;
    unpack !x;
    (* leave the continuous signals consistent with the final state, not
       with the solver's last stage evaluation *)
    minor_pass (t.now +. t.comp.Compile.base_dt)
  end

let record_probes t fr =
  match fr with
  | Some r ->
      Hashtbl.iter
        (fun (b, p) pb ->
          let v = Value.to_float t.signals.(b).(p) in
          probe_buf_push pb t.now v;
          Flight.signal_r r ~step:t.nstep ~time:t.now ~port:p ~value:v
            pb.pb_name)
        t.probes
  | None ->
      Hashtbl.iter
        (fun (b, p) pb ->
          probe_buf_push pb t.now (Value.to_float t.signals.(b).(p)))
        t.probes

let step t =
  (* supervision fuel point: a deadline or kill on the ambient token
     abandons the run between steps, where all state is reset-able *)
  Cancel.poll ();
  Obs.span_begin "sim.step";
  (* one ring fetch per step, shared with the probe burst below *)
  let fr = if Flight.enabled () then Some (Flight.recorder ()) else None in
  (match fr with
  | Some r ->
      Flight.step_mark_r r ~step:t.nstep ~time:t.now
        (Model.name t.comp.Compile.model)
  | None -> ());
  t.events_this_step <- 0;
  Array.iter
    (fun b ->
      if hit t b then
        write_outputs t b (t.behs.(bi b).Block.out ~minor:false ~time:t.now (gather t b)))
    t.comp.Compile.order;
  Array.iter
    (fun b -> if hit t b then t.behs.(bi b).Block.update ~time:t.now (gather t b))
    t.comp.Compile.order;
  record_probes t fr;
  integrate t;
  t.now <- t.now +. t.comp.Compile.base_dt;
  t.nstep <- t.nstep + 1;
  Obs.add c_steps 1;
  Obs.bump t.events_this_step;
  Obs.span_end ()

let run t ?(steps = max_int) ~until () =
  let n = ref 0 in
  while t.now < until -. 1e-12 && !n < steps do
    step t;
    incr n
  done

let value t (b, p) = t.signals.(bi b).(p)
let value_named t name p = value t (Model.find t.comp.Compile.model name, p)

let trace t (b, p) =
  match Hashtbl.find_opt t.probes (bi b, p) with
  | Some pb -> List.init pb.pb_len (fun i -> (pb.pb_t.(i), pb.pb_v.(i)))
  | None -> raise Not_found

let trace_named t name p = trace t (Model.find t.comp.Compile.model name, p)
let fire_group t g = exec_group t g

let override_output t (b, p) v =
  t.overrides.(bi b).(p) <- v;
  match v with Some v -> t.signals.(bi b).(p) <- v | None -> ()

let set_fault_hook t h = t.fault_hook <- h

let step_events t = t.events_this_step
