(** Fixed-step simulation engine (model-in-the-loop).

    Executes a compiled model: at every major step the engine runs the
    output pass over the blocks scheduled at that instant, then the
    discrete update pass, then integrates all continuous states over the
    step with the selected solver (minor steps re-evaluate only the
    continuous subgraph, with discrete outputs held — Simulink fixed-step
    semantics). Events fired by blocks execute their function-call group
    immediately and atomically, reproducing the event-driven tasks of the
    paper's execution model (§5). *)

type t

val create : ?solver:Ode.method_ -> ?solver_substeps:int -> Compile.t -> t
(** Instantiate every block behaviour. Default solver [Rk4] (ode4).
    [solver_substeps] (default 1) integrates the continuous states with
    that many sub-steps per major step — needed when a slow discrete base
    rate meets fast continuous dynamics (stiffness). *)

val reset : t -> unit
(** Back to time zero and initial block states. *)

val time : t -> float
val base_dt : t -> float
val compiled : t -> Compile.t

val probe : t -> Model.blk * int -> unit
(** Record the signal at an output port at every major step. *)

val probe_named : t -> string -> int -> unit
(** [probe_named sim block_name port]. @raise Not_found on a bad name. *)

val step : t -> unit
(** Advance one major step. *)

val run : t -> ?steps:int -> until:float -> unit -> unit
(** Step until [time >= until] (or at most [steps] steps). *)

val value : t -> Model.blk * int -> Value.t
(** Current signal at an output port. *)

val value_named : t -> string -> int -> Value.t

val trace : t -> Model.blk * int -> (float * float) list
(** Recorded probe samples as (time, numeric value), oldest first.
    @raise Not_found if the port was never probed. *)

val trace_named : t -> string -> int -> (float * float) list

val fire_group : t -> Model.group -> unit
(** Manually fire a function-call group (used by test harnesses and the
    PIL target executive). *)

val override_output : t -> Model.blk * int -> Value.t option -> unit
(** Force an output port to a fixed value (or release it with [None]) —
    the mechanism the PIL harness uses to redirect peripheral blocks to
    communication buffers, as PEERT_PIL does in §6. *)

val set_fault_hook :
  t -> (time:float -> Model.blk * int -> Value.t -> Value.t) option -> unit
(** Install (or clear, with [None]) a fault-injection hook: a perturbation
    applied to every output-port value as it is written (after
    {!override_output} overrides). Unarmed, the hook costs one option
    check per port write. This is the MIL attachment point of the fault
    campaign subsystem — the hook decides per (block, port) whether and
    how to corrupt the sample. *)

val step_events : t -> int
(** Number of events fired during the last major step. *)
