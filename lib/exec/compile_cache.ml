(* Content-hashed compile cache.

   Parallel campaigns build the same (model, config) once per job —
   [ecsd diff --seeds 32] constructs 32 structurally identical servo
   models and would compile (rate resolution, type fixpoint, execution
   ordering) each of them. The cache keys on a digest of everything
   [Compile.compile] can observe — block kinds, parameters, port and
   event wiring, sample-time specs, group membership, base dt — so
   structurally identical models share one [Compile.t]. The compiled
   artifact is immutable after construction and is only ever read by
   [Sim.create] and the code generators, so sharing one across domains
   is safe.

   Behaviour closures ([Block.spec.make]) are not hashed: a block's
   behaviour is a function of its kind and parameters, which are. *)

let mutex = Mutex.create ()
let table : (string, Compile.t) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let misses = ref 0
let evictions = ref 0

(* FIFO bound: long serve sessions cycling through many model configs
   must not grow the table without limit. Insertion order is a fine
   eviction policy here — campaign reuse is bursty, not LRU-shaped. *)
let max_entries = ref 64
let order : string Queue.t = Queue.create ()
let c_hits = Obs.counter "exec.cache.hits"
let c_misses = Obs.counter "exec.cache.misses"
let c_evictions = Obs.counter "exec.cache.evictions"

let digest m =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "model=%s\n" (Model.name m);
  List.iter
    (fun blk ->
      let spec = Model.spec_of m blk in
      addf "blk %d %s kind=%s in=%d out=%d params=[%s]" (Model.blk_index blk)
        (Model.block_name m blk) spec.Block.kind spec.Block.n_in
        spec.Block.n_out
        (Param.to_string spec.Block.params);
      addf " sample=%s"
        (Format.asprintf "%a" Sample_time.pp_spec spec.Block.sample);
      addf " ft=%s"
        (String.concat ""
           (Array.to_list
              (Array.map (fun f -> if f then "1" else "0") spec.Block.feedthrough)));
      Array.iteri
        (fun p ot ->
          match ot with
          | Block.Fixed_type d -> addf " o%d=%s" p (Dtype.to_string d)
          | Block.Same_as i -> addf " o%d=in%d" p i
          | Block.Type_fn _ -> addf " o%d=fn" p)
        spec.Block.out_types;
      (match Model.group_of m blk with
      | Some g -> addf " grp=%s" (Model.group_name m g)
      | None -> ());
      for p = 0 to spec.Block.n_in - 1 do
        match Model.driver m (blk, p) with
        | Some (src, sp) ->
            addf " i%d<-%d.%d" p (Model.blk_index src) sp
        | None -> addf " i%d<-_" p
      done;
      Array.iteri
        (fun k name ->
          match Model.event_target m (blk, k) with
          | Some g -> addf " ev%d(%s)->%s" k name (Model.group_name m g)
          | None -> addf " ev%d(%s)->_" k name)
        spec.Block.event_outs;
      addf "\n")
    (Model.blocks m);
  Digest.to_hex (Digest.string (Buffer.contents b))

let compile ?default_dt m =
  let key =
    Printf.sprintf "%s@dt=%s" (digest m)
      (match default_dt with None -> "-" | Some dt -> Printf.sprintf "%h" dt)
  in
  Mutex.lock mutex;
  match Hashtbl.find_opt table key with
  | Some comp ->
      incr hits;
      Mutex.unlock mutex;
      Obs.add c_hits 1;
      Flight.engine ("mil.cache.hit " ^ String.sub key 0 8);
      comp
  | None ->
      Mutex.unlock mutex;
      Obs.add c_misses 1;
      Flight.engine ("mil.compile " ^ String.sub key 0 8);
      (* compile outside the lock: concurrent first-compiles of the same
         key may race and both do the work — last write wins, both
         results are equivalent, and campaign throughput never blocks
         behind one long compile *)
      let comp = Compile.compile ?default_dt m in
      Mutex.lock mutex;
      (match Hashtbl.find_opt table key with
      | Some existing ->
          incr hits;
          Mutex.unlock mutex;
          ignore comp;
          existing
      | None ->
          incr misses;
          Hashtbl.replace table key comp;
          Queue.push key order;
          let evicted = ref 0 in
          while Queue.length order > !max_entries do
            let victim = Queue.pop order in
            if Hashtbl.mem table victim then begin
              Hashtbl.remove table victim;
              incr evictions;
              incr evicted
            end
          done;
          Mutex.unlock mutex;
          if !evicted > 0 then Obs.add c_evictions !evicted;
          comp)

let set_max_entries n =
  if n < 1 then invalid_arg "Compile_cache.set_max_entries";
  Mutex.lock mutex;
  max_entries := n;
  Mutex.unlock mutex

let stats () =
  Mutex.lock mutex;
  let r = (!hits, !misses, !evictions) in
  Mutex.unlock mutex;
  r

let clear () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Queue.clear order;
  hits := 0;
  misses := 0;
  evictions := 0;
  Mutex.unlock mutex
