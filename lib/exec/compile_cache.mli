(** Content-hashed compile cache: deduplicate identical (model, config)
    compiles across campaign jobs and worker domains.

    {!digest} hashes everything the compiler observes — block kinds,
    parameters, port/event wiring, sample times, group membership —
    but not behaviour closures (behaviour is a function of kind and
    parameters). Two independently constructed but structurally
    identical models therefore share one compiled artifact, which is
    immutable and safe to read from any domain. *)

val digest : Model.t -> string
(** Hex content hash of the model's compile-relevant structure. *)

val compile : ?default_dt:float -> Model.t -> Compile.t
(** Memoized [Compile.compile], keyed on [digest model] and
    [default_dt]. Thread-safe; a first-compile race may duplicate work
    but never blocks other keys and always returns the cached winner. *)

val stats : unit -> int * int * int
(** [(hits, misses, evictions)] since start or {!clear}. *)

val set_max_entries : int -> unit
(** FIFO capacity bound (default 64 entries); oldest insertions are
    evicted first when exceeded. *)

val clear : unit -> unit
