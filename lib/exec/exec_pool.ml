(* Work-stealing domain pool.

   One deque per worker domain (Chase-Lev: owner LIFO, thieves FIFO)
   plus a mutex-guarded injector queue for work submitted from outside
   the pool. Fork-join work ([run_map]) divides its index range
   recursively: each split pushes one half to the executing worker's
   own deque and recurses on the other, so parallelism materialises
   exactly as fast as idle workers steal — the classic Cilk shape.

   Sleeping is conservative: a worker that finds nothing spins through
   a few scavenging rounds, publishes its observability sink, then
   blocks on a condition variable. Producers broadcast only when a
   sleeper is registered, so the steady-state hot path (busy workers
   trading tasks through deques) takes no lock. *)

type task = unit -> unit

type t = {
  workers : int;
  deques : task Wsdeque.t array;
  injector : task Queue.t; (* guarded by [lock] *)
  lock : Mutex.t;
  work_cond : Condition.t;
  mutable live : bool;
  mutable domains : unit Domain.t array;
  sleepers : int Atomic.t;
  mutable on_task_error : (exn -> unit) option;
  c_tasks : Obs.counter;
  c_task_errors : Obs.counter;
  c_steals : Obs.counter;
  h_task : Obs.hist;  (* per-task latency, seconds *)
}

(* which pool + worker slot the current domain belongs to, if any *)
let self_key : (t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let wake_all pool =
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.lock
  end

let submit pool task =
  Mutex.lock pool.lock;
  Queue.push task pool.injector;
  if Obs.enabled () then
    Obs.set_gauge "exec.injector_depth" (float_of_int (Queue.length pool.injector));
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.lock

(* push from inside a task: to the executing worker's own deque when we
   are on a pool worker, through the injector otherwise *)
let push_task pool task =
  match !(Domain.DLS.get self_key) with
  | Some (p, w) when p == pool ->
      Wsdeque.push pool.deques.(w) task;
      wake_all pool
  | _ -> submit pool task

let take_injector pool =
  if Queue.is_empty pool.injector then None
  else begin
    Mutex.lock pool.lock;
    let r = Queue.take_opt pool.injector in
    Mutex.unlock pool.lock;
    r
  end

let steal_round pool w =
  let n = pool.workers in
  let rec go i =
    if i >= n then None
    else
      match Wsdeque.steal pool.deques.((w + i) mod n) with
      | Some _ as r ->
          Obs.add pool.c_steals 1;
          r
      | None -> go (i + 1)
  in
  go 1

let find_task pool w =
  match Wsdeque.pop pool.deques.(w) with
  | Some _ as r -> r
  | None -> (
      match take_injector pool with
      | Some _ as r -> r
      | None -> steal_round pool w)

let run_task pool task =
  Obs.add pool.c_tasks 1;
  (* a task must not kill its worker; fork-join wrappers catch and
     re-raise on the joining domain, so anything arriving here escaped
     a fire-and-forget submission — count it, route it through the
     error hook (or stderr), keep serving. Submitted jobs can no
     longer vanish silently. *)
  try task ()
  with e ->
    Obs.add pool.c_task_errors 1;
    (match pool.on_task_error with
    | Some hook -> ( try hook e with _ -> ())
    | None ->
        prerr_endline
          ("exec_pool: uncaught exception in task: " ^ Printexc.to_string e))

let run_task_timed pool task =
  if Obs.enabled () then begin
    let t0 = Obs.now_ns () in
    run_task pool task;
    let d = (Obs.now_ns () -. t0) *. 1e-9 in
    Obs.record pool.h_task d;
    d
  end
  else begin
    run_task pool task;
    0.0
  end

let has_visible_work pool w =
  (not (Queue.is_empty pool.injector))
  || Array.exists (fun d -> Wsdeque.size d > 0) pool.deques
  || Wsdeque.size pool.deques.(w) > 0

let worker_loop pool w () =
  Domain.DLS.get self_key := Some (pool, w);
  let spin_budget = 64 in
  (* utilization = task time / wall time since the worker started; the
     gauge is refreshed whenever the worker goes idle *)
  let t_start = Obs.now_ns () in
  let busy = ref 0.0 in
  let rec loop spins =
    if pool.live then begin
      match find_task pool w with
      | Some task ->
          busy := !busy +. run_task_timed pool task;
          loop spin_budget
      | None ->
          if spins > 0 then begin
            Domain.cpu_relax ();
            loop (spins - 1)
          end
          else begin
            (* going idle: hand our sink to the spawning domain *)
            if Obs.enabled () then begin
              let total = (Obs.now_ns () -. t_start) *. 1e-9 in
              if total > 0.0 then
                Obs.set_gauge
                  (Printf.sprintf "exec.util.w%d" w)
                  (!busy /. total)
            end;
            Obs.publish ();
            Mutex.lock pool.lock;
            Atomic.incr pool.sleepers;
            (* rescan under the lock: a producer that saw sleepers = 0
               before our increment must have completed its push, which
               this scan observes; one that sees > 0 will broadcast and
               the broadcast serialises behind this critical section *)
            if pool.live && not (has_visible_work pool w) then
              Condition.wait pool.work_cond pool.lock;
            Atomic.decr pool.sleepers;
            Mutex.unlock pool.lock;
            loop spin_budget
          end
    end
  in
  loop spin_budget;
  Obs.publish ()

let create ?workers () =
  let workers =
    match workers with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Exec_pool.create: workers must be >= 1"
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    {
      workers;
      deques = Array.init workers (fun _ -> Wsdeque.create ());
      injector = Queue.create ();
      lock = Mutex.create ();
      work_cond = Condition.create ();
      live = true;
      domains = [||];
      sleepers = Atomic.make 0;
      on_task_error = None;
      c_tasks = Obs.counter "exec.tasks";
      c_task_errors = Obs.counter "exec.task_errors";
      c_steals = Obs.counter "exec.steals";
      h_task = Obs.hist "exec.task_s";
    }
  in
  pool.domains <-
    Array.init workers (fun w -> Domain.spawn (worker_loop pool w));
  pool

let shutdown pool =
  if pool.live then begin
    Mutex.lock pool.lock;
    pool.live <- false;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.domains
  end

let size pool = pool.workers
let set_error_hook pool hook = pool.on_task_error <- Some hook

let queue_depth pool =
  Mutex.lock pool.lock;
  let n = Queue.length pool.injector in
  Mutex.unlock pool.lock;
  n

let with_pool ?workers f =
  let pool = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ---- fork-join map ---- *)

let record_failure failed i e bt =
  (* keep the lowest-index failure: deterministic regardless of which
     leaf's exception lost the race *)
  let rec go () =
    let cur = Atomic.get failed in
    let better = match cur with None -> true | Some (j, _, _) -> i < j in
    if better && not (Atomic.compare_and_set failed cur (Some (i, e, bt)))
    then go ()
  in
  go ()

let run_map pool ?(chunk = 1) ?(on_error = `Abort) n f =
  if n < 0 then invalid_arg "Exec_pool.run_map";
  if chunk < 1 then invalid_arg "Exec_pool.run_map: chunk";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let failed = Atomic.make None in
    let bm = Mutex.create () and bc = Condition.create () in
    let finish k =
      if Atomic.fetch_and_add remaining (-k) = k then begin
        Mutex.lock bm;
        Condition.signal bc;
        Mutex.unlock bm
      end
    in
    let leaf i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> (
          match on_error with
          | `Abort -> record_failure failed i e (Printexc.get_raw_backtrace ())
          | `Record handler -> (
              (* the handler turns the exception into slot [i]'s record;
                 its value depends only on (i, e), so the merged array
                 is deterministic under any schedule *)
              match handler i e with
              | v -> results.(i) <- Some v
              | exception e2 ->
                  record_failure failed i e2 (Printexc.get_raw_backtrace ())))
    in
    let rec range lo hi () =
      if hi - lo <= chunk then begin
        for i = lo to hi - 1 do
          leaf i
        done;
        (* publish before the barrier releases so the joining domain's
           snapshot includes this leaf's counts *)
        if Obs.enabled () then Obs.publish ();
        finish (hi - lo)
      end
      else begin
        let mid = lo + ((hi - lo) / 2) in
        push_task pool (range mid hi);
        range lo mid ()
      end
    in
    submit pool (range 0 n);
    Mutex.lock bm;
    while Atomic.get remaining > 0 do
      Condition.wait bc bm
    done;
    Mutex.unlock bm;
    (match Atomic.get failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
