(** Work-stealing domain pool: the campaign job engine.

    A fixed set of worker domains, one {!Wsdeque} each, plus an
    injector queue for outside submissions. Two front doors:

    - {!run_map} — fork-join: evaluate [f 0 .. f (n-1)] across the
      pool and return the results in index order. The range splits
      recursively through the deques, so load balances by stealing;
      results land in their slots regardless of which domain computed
      them, making the output deterministic under any schedule.
    - {!submit} — fire-and-forget: queue a task for whichever worker
      picks it up first ([ecsd serve]'s entry point; ordering is the
      caller's business).

    Workers publish their observability sinks ({!Obs.publish}) when a
    fork-join leaf completes and when they go idle, so campaign
    counters and histograms survive the pool. *)

type t

val create : ?workers:int -> unit -> t
(** Spawn [workers] domains (default
    [Domain.recommended_domain_count ()]). *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [create], run, always {!shutdown}. *)

val shutdown : t -> unit
(** Stop accepting scheduled work, wake every worker and join their
    domains. Idempotent. Pending injector tasks are dropped; in-flight
    tasks complete. *)

val size : t -> int
(** Number of worker domains. *)

val run_map : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [run_map pool n f] evaluates [f] at [0..n-1] on the pool and
    returns [[| f 0; ...; f (n-1) |]]. Blocks the calling domain until
    all leaves finish. [chunk] (default 1) is the largest index range
    one leaf executes serially. If any [f i] raises, the exception of
    the {e lowest} failing index is re-raised here (after all leaves
    have finished) — deterministic under any schedule. *)

val submit : t -> (unit -> unit) -> unit
(** Queue one task. Exceptions escaping it are reported on stderr and
    swallowed — wrap the body if you need the error. *)
