(** Work-stealing domain pool: the campaign job engine.

    A fixed set of worker domains, one {!Wsdeque} each, plus an
    injector queue for outside submissions. Two front doors:

    - {!run_map} — fork-join: evaluate [f 0 .. f (n-1)] across the
      pool and return the results in index order. The range splits
      recursively through the deques, so load balances by stealing;
      results land in their slots regardless of which domain computed
      them, making the output deterministic under any schedule.
    - {!submit} — fire-and-forget: queue a task for whichever worker
      picks it up first ([ecsd serve]'s entry point; ordering is the
      caller's business).

    Workers publish their observability sinks ({!Obs.publish}) when a
    fork-join leaf completes and when they go idle, so campaign
    counters and histograms survive the pool. *)

type t

val create : ?workers:int -> unit -> t
(** Spawn [workers] domains (default
    [Domain.recommended_domain_count ()]). *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [create], run, always {!shutdown}. *)

val shutdown : t -> unit
(** Stop accepting scheduled work, wake every worker and join their
    domains. Idempotent. Pending injector tasks are dropped; in-flight
    tasks complete. *)

val size : t -> int
(** Number of worker domains. *)

val run_map :
  t ->
  ?chunk:int ->
  ?on_error:[ `Abort | `Record of int -> exn -> 'a ] ->
  int ->
  (int -> 'a) ->
  'a array
(** [run_map pool n f] evaluates [f] at [0..n-1] on the pool and
    returns [[| f 0; ...; f (n-1) |]]. Blocks the calling domain until
    all leaves finish. [chunk] (default 1) is the largest index range
    one leaf executes serially.

    [on_error] decides what a raising [f i] does to the campaign:
    - [`Abort] (default): the exception of the {e lowest} failing index
      is re-raised here after all leaves have finished — deterministic
      under any schedule.
    - [`Record handler]: slot [i] gets [handler i e] instead, so the
      campaign completes with per-item error records; the merged array
      stays deterministic because the record depends only on [(i, e)].
      An exception escaping the handler itself aborts as above. *)

val submit : t -> (unit -> unit) -> unit
(** Queue one task. An exception escaping it is counted
    ([exec.task_errors]) and routed to the pool's error hook — or
    stderr when none is set — and the worker keeps serving. *)

val set_error_hook : t -> (exn -> unit) -> unit
(** Route exceptions escaping {!submit}ted tasks to [hook] instead of
    stderr. The hook runs on the worker domain that ran the task and
    must synchronize its own state; exceptions it raises are dropped. *)

val queue_depth : t -> int
(** Tasks sitting in the injector queue (submitted, not yet picked up)
    — the backpressure signal for bounded-queue admission. *)
