(* Supervised job execution: the error taxonomy, deadline enforcement,
   bounded retry with deterministic backoff, and the seeded
   orchestrator-chaos injector.

   Campaigns and `ecsd serve` wrap every job in [supervise]: the job
   runs under a {!Cancel} token (its deadline polled at the engines'
   step-loop fuel points), transient failures are retried with
   exponential backoff and seeded jitter, repeat offenders are
   quarantined as [Poisoned], and everything else is classified into
   the taxonomy instead of escaping -- one raising seed can no longer
   abort a whole campaign, and a wedged serve job dies at its deadline
   with the worker surviving to take the next job.

   Everything that influences a job's *outcome* is a deterministic
   function of (seed/label, attempt): chaos decisions and jitter come
   from a splitmix64 hash, never from wall clock or scheduling, so a
   supervised campaign report is byte-identical whatever --jobs is.
   Only wall-clock effects (actual backoff sleeps, deadline expiry)
   are nondeterministic, and those never feed report bytes.

   The module is named [Supervise] (not [Supervisor]) because the
   PEERT layer already owns the top-level [Supervisor] module -- the
   generated safe-state statechart -- and every library here builds
   with (wrapped false). *)

type error =
  | Timeout of float  (** the per-attempt deadline, seconds *)
  | Crashed of exn
  | Transient of string  (** transient failure with no retry budget *)
  | Poisoned of { attempts : int; last : string }
      (** quarantined: still transient after every allowed attempt *)
  | Shed  (** refused admission or killed by shutdown *)

exception Transient_failure of string
exception Bad_request of string

let error_class = function
  | Timeout _ -> "timeout"
  | Crashed (Bad_request _) -> "bad_request"
  | Crashed _ -> "crashed"
  | Transient _ -> "transient"
  | Poisoned _ -> "poisoned"
  | Shed -> "shed"

let error_message = function
  | Timeout d -> Printf.sprintf "deadline of %gs exceeded" d
  | Crashed (Bad_request msg) -> msg
  | Crashed e -> Printexc.to_string e
  | Transient msg -> msg
  | Poisoned { attempts; last } ->
      Printf.sprintf "quarantined after %d attempts: %s" attempts last
  | Shed -> "shed by backpressure or shutdown"

type policy = {
  deadline_s : float option;
  retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  jitter_seed : int;
}

let default_policy =
  {
    deadline_s = None;
    retries = 2;
    backoff_base_s = 0.01;
    backoff_max_s = 0.5;
    jitter_seed = 1;
  }

type 'a outcome = { result : ('a, error) result; attempts : int }

(* ---- deterministic randomness: splitmix64 over (seed, label, attempt).
   [Hashtbl.hash] on strings is deterministic for a given runtime, and
   the same hash is computed on every domain, so decisions derived here
   cannot depend on scheduling. ---- *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* uniform in [0,1), 53 mantissa bits *)
let rand_unit ~seed ~label ~attempt =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
      (Int64.of_int ((Hashtbl.hash label * 2654435761) + attempt))
  in
  Int64.to_float (Int64.shift_right_logical (mix64 z) 11) /. 9007199254740992.0

let backoff_s policy ~label ~attempt =
  let nominal =
    Float.min policy.backoff_max_s
      (policy.backoff_base_s *. Float.pow 2.0 (float_of_int attempt))
  in
  (* jitter in [0.5, 1.5) x nominal: desynchronises retry herds while
     staying reproducible from (jitter_seed, label, attempt) *)
  Float.min policy.backoff_max_s
    (nominal *. (0.5 +. rand_unit ~seed:policy.jitter_seed ~label ~attempt))

(* ---- orchestrator chaos: the fault taxonomy turned on the executor
   itself. Seeded by ECSD_CHAOS_SEED (rate ECSD_CHAOS_RATE, default
   0.2); every injection decision is a pure function of (seed, label,
   attempt). ---- *)

module Chaos = struct
  type kind = Worker_crash | Job_delay | Spurious_transient

  let kind_name = function
    | Worker_crash -> "worker-crash"
    | Job_delay -> "job-delay"
    | Spurious_transient -> "spurious-transient"

  exception Chaos_crash of string

  (* None = env not read yet; Some None = chaos off *)
  let cfg : (int * float) option option ref = ref None

  let configure ~seed ~rate =
    if rate < 0.0 || rate > 1.0 then
      invalid_arg "Supervise.Chaos.configure: rate must be in [0,1]";
    cfg := Some (Some (seed, rate))

  let disable () = cfg := Some None

  let config () =
    match !cfg with
    | Some c -> c
    | None ->
        let c =
          match Sys.getenv_opt "ECSD_CHAOS_SEED" with
          | None | Some "" -> None
          | Some s -> (
              match int_of_string_opt s with
              | None ->
                  invalid_arg
                    (Printf.sprintf "ECSD_CHAOS_SEED must be an integer, got %S"
                       s)
              | Some seed ->
                  let rate =
                    match Sys.getenv_opt "ECSD_CHAOS_RATE" with
                    | None | Some "" -> 0.2
                    | Some r -> (
                        match float_of_string_opt r with
                        | Some f when f >= 0.0 && f <= 1.0 -> f
                        | _ ->
                            invalid_arg
                              (Printf.sprintf
                                 "ECSD_CHAOS_RATE must be a float in [0,1], \
                                  got %S"
                                 r))
                  in
                  Some (seed, rate))
        in
        cfg := Some c;
        c

  let enabled () = config () <> None

  let decide ~label ~attempt =
    match config () with
    | None -> None
    | Some (seed, rate) ->
        (* distinct streams for the gate and the class pick, both
           disjoint from the backoff jitter stream *)
        if rand_unit ~seed:((seed * 3) + 1) ~label ~attempt >= rate then None
        else
          let v = rand_unit ~seed:((seed * 5) + 2) ~label ~attempt in
          if v < 0.4 then Some Job_delay
          else if v < 0.8 then Some Spurious_transient
          else Some Worker_crash

  let c_injected = Obs.counter "chaos.injected"

  (* run [f] through this attempt's chaos decision: a delay stalls the
     job (exercising deadlines and queue depth without changing its
     result), a spurious transient exercises the retry path, a worker
     crash exercises Crashed recording *)
  let apply ~label ~attempt f =
    match decide ~label ~attempt with
    | None -> f ()
    | Some k -> (
        Obs.add c_injected 1;
        Flight.mark (Printf.sprintf "chaos:%s attempt %d" (kind_name k) attempt);
        match k with
        | Job_delay ->
            Unix.sleepf
              (0.001 +. (0.004 *. rand_unit ~seed:7 ~label ~attempt));
            f ()
        | Spurious_transient ->
            raise
              (Transient_failure
                 (Printf.sprintf "chaos: spurious transient failure (attempt %d)"
                    attempt))
        | Worker_crash ->
            raise (Chaos_crash (Printf.sprintf "chaos: worker crash in %s" label)))
end

(* ---- the supervised run ---- *)

let c_retries = Obs.counter "supervisor.retries"
let c_timeouts = Obs.counter "supervisor.timeouts"
let c_crashes = Obs.counter "supervisor.crashes"
let c_transients = Obs.counter "supervisor.transients"
let c_poisoned = Obs.counter "supervisor.poisoned"
let c_shed = Obs.counter "supervisor.shed"
let h_backoff = Obs.hist "supervisor.backoff_s"

let record_shed () = Obs.add c_shed 1

let supervise ?(policy = default_policy) ?killed ~label f =
  let rec attempt k =
    match
      (* a fresh token per attempt: the deadline budgets one attempt,
         not the retry chain *)
      let tok = Cancel.make ?deadline_s:policy.deadline_s ?killed () in
      Cancel.with_token tok (fun () -> Chaos.apply ~label ~attempt:k f)
    with
    | v -> { result = Ok v; attempts = k + 1 }
    | exception Cancel.Cancelled Cancel.Deadline ->
        Obs.add c_timeouts 1;
        Flight.mark (label ^ ": timeout");
        {
          result = Error (Timeout (Option.value policy.deadline_s ~default:0.0));
          attempts = k + 1;
        }
    | exception Cancel.Cancelled Cancel.Killed ->
        Obs.add c_shed 1;
        { result = Error Shed; attempts = k + 1 }
    | exception Transient_failure msg ->
        Obs.add c_transients 1;
        if k < policy.retries then begin
          Obs.add c_retries 1;
          let d = backoff_s policy ~label ~attempt:k in
          Obs.record h_backoff d;
          Flight.mark (Printf.sprintf "%s: retry %d after %.3fs" label (k + 1) d);
          Unix.sleepf d;
          attempt (k + 1)
        end
        else if k = 0 then { result = Error (Transient msg); attempts = 1 }
        else begin
          Obs.add c_poisoned 1;
          Flight.mark (label ^ ": poisoned");
          { result = Error (Poisoned { attempts = k + 1; last = msg }); attempts = k + 1 }
        end
    | exception e ->
        Obs.add c_crashes 1;
        Flight.mark (label ^ ": crashed");
        { result = Error (Crashed e); attempts = k + 1 }
  in
  attempt 0
