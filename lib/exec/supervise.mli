(** Supervised job execution for campaigns and [ecsd serve].

    {!supervise} runs one job under a {!Cancel} token (deadline polled
    at the engines' step-loop fuel points), retries transient failures
    with deterministic exponential backoff + seeded jitter, quarantines
    repeat offenders, and classifies every failure into a structured
    taxonomy instead of letting it escape. Outcome-affecting decisions
    (chaos injection, jitter) are pure functions of (seed, label,
    attempt), so supervised campaign reports are byte-identical
    whatever [--jobs] is.

    Named [Supervise] because the PEERT layer owns the top-level
    [Supervisor] module (the generated safe-state statechart). *)

type error =
  | Timeout of float  (** per-attempt deadline, seconds *)
  | Crashed of exn  (** non-transient exception ([Bad_request] included) *)
  | Transient of string  (** transient failure and [retries = 0] *)
  | Poisoned of { attempts : int; last : string }
      (** still transient after every allowed attempt — quarantined *)
  | Shed  (** refused admission, or killed mid-flight by shutdown *)

exception Transient_failure of string
(** Raise from a job to classify its failure as transient (retryable). *)

exception Bad_request of string
(** Raise from a job to classify its failure as a malformed request;
    never retried, reported with [error_class] ["bad_request"]. *)

val error_class : error -> string
(** Stable class enum: ["timeout" | "crashed" | "bad_request" |
    "transient" | "poisoned" | "shed"]. *)

val error_message : error -> string
(** Deterministic human-readable detail (uses [Printexc.to_string] for
    [Crashed]). *)

type policy = {
  deadline_s : float option;  (** per-attempt deadline; [None] = none *)
  retries : int;  (** extra attempts allowed for transient failures *)
  backoff_base_s : float;  (** backoff before retry 1 (doubles each) *)
  backoff_max_s : float;  (** backoff ceiling *)
  jitter_seed : int;  (** seeds the deterministic jitter stream *)
}

val default_policy : policy
(** No deadline, 2 retries, 10 ms base backoff capped at 500 ms. *)

type 'a outcome = {
  result : ('a, error) result;
  attempts : int;  (** attempts actually made, >= 1 *)
}

val supervise :
  ?policy:policy -> ?killed:bool Atomic.t -> label:string -> (unit -> 'a) -> 'a outcome
(** Run [f] supervised. [label] identifies the job for chaos/jitter
    determinism and flight-recorder marks; [killed] shares an external
    kill flag (shutdown cancels in-flight jobs as [Shed]). Never
    raises: every failure lands in [result]. *)

val backoff_s : policy -> label:string -> attempt:int -> float
(** The deterministic backoff before retrying [attempt] (0-based):
    [min max (base * 2^attempt) * jitter(seed, label, attempt)] with
    jitter in [0.5, 1.5). Exposed for tests and the bench. *)

(** Orchestrator chaos: seeded fault injection against the executor
    itself, proving the recovery invariants deterministically.
    Enabled by [ECSD_CHAOS_SEED] (integer seed) with injection
    probability [ECSD_CHAOS_RATE] (default 0.2), or programmatically
    via {!Chaos.configure}. Injection only happens inside
    {!supervise}d jobs. *)
module Chaos : sig
  type kind =
    | Worker_crash  (** the job dies with {!Chaos_crash} → [Crashed] *)
    | Job_delay  (** a 1–5 ms stall → exercises deadlines/backpressure *)
    | Spurious_transient  (** {!Transient_failure} → exercises retry *)

  val kind_name : kind -> string

  exception Chaos_crash of string

  val configure : seed:int -> rate:float -> unit
  (** Override the environment (rate in [0,1]). *)

  val disable : unit -> unit
  val enabled : unit -> bool

  val decide : label:string -> attempt:int -> kind option
  (** The injection decision for one attempt — a pure function of
      (seed, label, attempt); scheduling-independent by construction. *)

  val apply : label:string -> attempt:int -> (unit -> 'a) -> 'a
  (** Run [f] through this attempt's decision (used by {!supervise}). *)
end

val record_shed : unit -> unit
(** Count one load-shedding refusal (the [supervisor.shed] counter) —
    called by serve's admission path, which sheds before any job (and
    therefore any {!supervise} call) exists. *)
