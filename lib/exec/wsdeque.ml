(* Chase-Lev work-stealing deque on OCaml 5 atomics.

   One owner domain pushes and pops at the bottom (LIFO — good locality
   for fork-join splits); any other domain steals from the top (FIFO —
   thieves take the oldest, largest-granularity task). [top] only ever
   increases, so the compare-and-set on it cannot ABA. The backing
   array lives behind an [Atomic.t] so a thief that races an owner-side
   grow still reads a consistent (array, mask) pair; the old array is
   never mutated after a grow, and slot values written before the
   [Atomic.set] of [bottom] are published to thieves by that fence. *)

type 'a buf = { tab : 'a option array; mask : int }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buf Atomic.t;
}

let buf_make cap = { tab = Array.make cap None; mask = cap - 1 }
let buf_get b i = b.tab.(i land b.mask)
let buf_set b i v = b.tab.(i land b.mask) <- v

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Wsdeque.create";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (buf_make !cap) }

let size q =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  max 0 (b - t)

let grow q t b =
  let old = Atomic.get q.buf in
  let nu = buf_make (2 * (old.mask + 1)) in
  for i = t to b - 1 do
    buf_set nu i (buf_get old i)
  done;
  Atomic.set q.buf nu;
  nu

(* owner only *)
let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t > buf.mask then grow q t b else buf in
  buf_set buf b (Some v);
  Atomic.set q.bottom (b + 1)

(* owner only *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the canonical empty state *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let v = buf_get buf b in
    if b > t then begin
      buf_set buf b None;
      v
    end
    else begin
      (* last element: race the thieves for it via top *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf_set buf b None;
        v
      end
      else None
    end
  end

(* any domain *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if b - t <= 0 then None
  else begin
    let buf = Atomic.get q.buf in
    let v = buf_get buf t in
    if Atomic.compare_and_set q.top t (t + 1) then v else None
  end
