(** Chase-Lev work-stealing deque.

    Single-owner double-ended queue: the owner domain {!push}es and
    {!pop}s at the bottom (LIFO), other domains {!steal} from the top
    (FIFO). Lock-free — the only synchronisation is a compare-and-set
    on the monotonically increasing top index, so a steal and a pop of
    the last element race safely and exactly one side wins.

    The pop/steal results are options rather than exceptions: an empty
    answer is the common case in a scheduler's scavenging loop. A lost
    steal race also reports [None] — callers retry or move to the next
    victim, which is what a work-stealing scheduler wants to do anyway. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 64, rounded up to a power of two) is only the
    initial size — the owner grows the backing array as needed. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: newest element, [None] when empty (or when the very
    last element was lost to a concurrent thief). *)

val steal : 'a t -> 'a option
(** Any domain: oldest element, [None] when empty or on a lost race. *)

val size : 'a t -> int
(** Snapshot of the current length — advisory under concurrency. *)
