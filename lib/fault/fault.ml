(* Fault models for robustness campaigns: what can go wrong between the
   controller and the physical world, each with a deterministic schedule
   (onset, duration, optional recurrence) so a seeded campaign replays
   exactly. Byte-level communication faults delegate to Comm.Faulty. *)

type kind =
  | Sensor_stuck
  | Sensor_offset of int
  | Sensor_noise of int
  | Sensor_dropout
  | Encoder_glitch of int
  | Actuator_saturation of float
  | Actuator_jam of float
  | Load_torque of float
  | Overrun of int
  | Wdog_suppress
  | Comm of Faulty.config

type t = {
  kind : kind;
  slot : int;
  at : float;
  duration : float;
  every : float option;
}

let make ?(slot = 0) ?every ~at ~duration kind =
  if at < 0.0 then invalid_arg "Fault.make: onset before time zero";
  if duration <= 0.0 then invalid_arg "Fault.make: non-positive duration";
  (match every with
  | Some p when p <= 0.0 -> invalid_arg "Fault.make: non-positive period"
  | Some p when p < duration ->
      invalid_arg "Fault.make: recurrence period shorter than the window"
  | _ -> ());
  { kind; slot; at; duration; every }

let active f ~time =
  time >= f.at
  &&
  match f.every with
  | None -> time < f.at +. f.duration
  | Some p -> Float.rem (time -. f.at) p < f.duration

(* The window edges below are the exact float expressions [active]
   compares against, so a cached activity decision is valid for every
   [time'] in [time, next_transition) — no rounding slack. Periodic
   faults answer [time] ("revalidate at every new instant"): deriving
   their next edge needs arithmetic that can land one ulp off the
   [Float.rem] the predicate uses, and a one-step-late fault arming is
   exactly the kind of silent semantic drift campaigns must not have. *)
let next_transition f ~time =
  match f.every with
  | Some _ -> time
  | None ->
      if time < f.at then f.at
      else if time < f.at +. f.duration then f.at +. f.duration
      else infinity

let kind_name = function
  | Sensor_stuck -> "sensor-stuck"
  | Sensor_offset n -> Printf.sprintf "sensor-offset(%+d)" n
  | Sensor_noise n -> Printf.sprintf "sensor-noise(+-%d)" n
  | Sensor_dropout -> "sensor-dropout"
  | Encoder_glitch n -> Printf.sprintf "encoder-glitch(+-%d)" n
  | Actuator_saturation x -> Printf.sprintf "actuator-saturation(%g)" x
  | Actuator_jam x -> Printf.sprintf "actuator-jam(%g)" x
  | Load_torque x -> Printf.sprintf "load-torque(%g N.m)" x
  | Overrun n -> Printf.sprintf "overrun(+%d cycles)" n
  | Wdog_suppress -> "wdog-suppress"
  | Comm c -> Printf.sprintf "comm(corrupt=%g)" c.Faulty.corrupt_rate

let is_sensor = function
  | Sensor_stuck | Sensor_offset _ | Sensor_noise _ | Sensor_dropout
  | Encoder_glitch _ ->
      true
  | _ -> false

let is_actuator = function
  | Actuator_saturation _ | Actuator_jam _ -> true
  | _ -> false

let name f =
  let window =
    match f.every with
    | None -> Printf.sprintf "[%g,%g)" f.at (f.at +. f.duration)
    | Some p -> Printf.sprintf "[%g,+%g) every %g" f.at f.duration p
  in
  if is_sensor f.kind then
    Printf.sprintf "%s@%d %s" (kind_name f.kind) f.slot window
  else Printf.sprintf "%s %s" (kind_name f.kind) window

let onset f = f.at

let clear_time f ~horizon =
  match f.every with
  | None -> Float.min horizon (f.at +. f.duration)
  | Some _ -> horizon
