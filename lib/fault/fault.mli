(** Fault models for robustness campaigns.

    The PIL harness of the paper answers "does the generated application
    meet its deadlines and control objectives" — for nominal runs. A
    credible validation also drives the closed loop through abnormal
    operating conditions (the Sensors 2008 companion paper makes the same
    point), so this taxonomy names what can go wrong between the
    controller and the physical world: sensor faults on the raw peripheral
    codes, actuator faults on the commanded duty, plant load surges, and
    timing faults (injected step overruns, suppressed watchdog service).
    Byte-level communication faults are delegated to {!Faulty}, the
    serial-line fault model of PR 3.

    Every fault carries a deterministic schedule — an onset time, a
    duration and an optional recurrence period — so a campaign run with
    the same seed replays exactly. *)

type kind =
  | Sensor_stuck  (** the raw code freezes at its pre-fault value *)
  | Sensor_offset of int  (** a constant bias on the raw code *)
  | Sensor_noise of int  (** uniform noise of the given amplitude, counts *)
  | Sensor_dropout  (** the sensor reads 0 (line cut / power loss) *)
  | Encoder_glitch of int
      (** sporadic count jumps of up to the given amplitude (sparking
          contact): each sample glitches with probability 0.2 *)
  | Actuator_saturation of float  (** the duty cannot exceed this ceiling *)
  | Actuator_jam of float  (** the duty is stuck at this value *)
  | Load_torque of float  (** additional shaft load torque, N.m *)
  | Overrun of int
      (** the control step takes this many extra CPU cycles (a cache
          stall, a runaway interrupt) *)
  | Wdog_suppress  (** the watchdog service call is lost *)
  | Comm of Faulty.config
      (** serial-line byte faults, delegated to {!Faulty}; armed for the
          whole run, ignoring the window *)

type t = {
  kind : kind;
  slot : int;  (** sensor slot the fault attaches to (sensor kinds only) *)
  at : float;  (** onset, seconds *)
  duration : float;  (** window length, seconds *)
  every : float option;  (** recurrence period, [None] = one-shot *)
}

val make : ?slot:int -> ?every:float -> at:float -> duration:float -> kind -> t
(** @raise Invalid_argument on a negative onset or non-positive
    duration/period. *)

val active : t -> time:float -> bool
(** Whether the fault's window covers [time] (any occurrence, for
    periodic faults). *)

val next_transition : t -> time:float -> float
(** The earliest instant at which {!active}'s answer for times after
    [time] may change: the exact window edge for a one-shot fault
    ([infinity] once it has cleared for good), or [time] itself for a
    periodic fault — meaning "revalidate at every new instant". The
    injector's hot-path cache is built on the guarantee that the answer
    is constant over [\[time, next_transition)]. *)

val kind_name : kind -> string
val name : t -> string
(** Human-readable identity, e.g. ["sensor-dropout@0 [0.9,1.05)"] — used
    by divergence reports and campaign tables. *)

val onset : t -> float

val clear_time : t -> horizon:float -> float
(** When the fault is gone for good: [at + duration] for a one-shot
    fault, [horizon] for a periodic one (it keeps recurring). *)

val is_sensor : kind -> bool
val is_actuator : kind -> bool
