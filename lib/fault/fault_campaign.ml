(* Campaign runner: per-seed faulted runs of a MIL closed loop with a
   virtual MCU + watchdog alongside, reduced to recovery metrics. *)

type ports = {
  sensor_ports : (Model.blk * int) array;
  duty_port : (Model.blk * int) option;
  mode_port : Model.blk * int;
  speed_port : Model.blk * int;
  setpoint_port : (Model.blk * int) option;
}

type subject = { sim : Sim.t; ports : ports; mcu : Mcu_db.t }

type run_result = {
  seed : int;
  detected : bool;
  detection_s : float option;
  recovered : bool;
  recovery_s : float option;
  steps_degraded : int;
  steps_safestop : int;
  max_mode : int;
  residual_rms : float;
  wdog_bites : int;
}

type result = {
  scenario : Fault_scenario.t;
  t_end : float;
  period : float;
  runs : run_result list;
  failures : (int * Supervise.error) list;
      (* supervised mode: seeds whose run ended in an error record
         instead of metrics, sorted by seed *)
  retries_total : int;
  steps_per_run : int;
  wall_s : float;
}

let arm subject ?seed scn =
  let inj = Fault_inject.arm ?seed scn in
  Sim.set_fault_hook subject.sim
    (Fault_inject.sim_hook inj ~sensor_ports:subject.ports.sensor_ports
       ?duty_port:subject.ports.duty_port ());
  inj

let disarm subject = Sim.set_fault_hook subject.sim None

let one_run subject ~scenario ~seed ~steps ~period ~t_end ~wdog_timeout =
  Sim.reset subject.sim;
  (* the seed is the forensic track id: whichever domain executes this
     run, its events and any failure capture belong to the seed *)
  Flight.begin_track ~id:seed ~name:scenario.Fault_scenario.sname;
  let inj = arm subject ~seed scenario in
  let machine = Machine.create subject.mcu in
  let wdog = Wdog_periph.create machine ~timeout:wdog_timeout () in
  Wdog_periph.enable wdog;
  let period_cycles = Machine.cycles_of_time machine period in
  let modes = Array.make steps 0 in
  let err = Array.make steps 0.0 in
  for k = 0 to steps - 1 do
    (* supervision fuel point (Sim.step polls too; this one covers the
       MCU/watchdog half of the loop) *)
    Cancel.poll ();
    let time = Sim.time subject.sim in
    Sim.step subject.sim;
    (* the virtual MCU lives the same period, stretched by any injected
       overrun; the watchdog is serviced at the end of the step unless
       the scenario eats the service call *)
    let extra = Fault_inject.overrun_cycles inj ~time in
    Machine.advance machine ~cycles:(period_cycles + extra);
    if not (Fault_inject.wdog_suppressed inj ~time) then
      Wdog_periph.refresh wdog;
    modes.(k) <-
      int_of_float (Value.to_float (Sim.value subject.sim subject.ports.mode_port));
    let speed = Value.to_float (Sim.value subject.sim subject.ports.speed_port) in
    let sp =
      match subject.ports.setpoint_port with
      | Some p -> Value.to_float (Sim.value subject.sim p)
      | None -> 0.0
    in
    err.(k) <- speed -. sp
  done;
  disarm subject;
  let onset = Fault_scenario.onset scenario in
  let clear = Fault_scenario.clear_time scenario ~horizon:t_end in
  let onset_step = int_of_float (onset /. period) in
  let detection_s =
    let rec find k =
      if k >= steps then None
      else if modes.(k) > 0 then
        Some (Float.max 0.0 ((float_of_int k *. period) -. onset))
      else find (k + 1)
    in
    find (max 0 onset_step)
  in
  let wdog_bites = Wdog_periph.bites wdog in
  let last_nz = ref (-1) in
  Array.iteri (fun k m -> if m > 0 then last_nz := k) modes;
  let recovered, recovery_s =
    if !last_nz < 0 then (true, Some 0.0)
    else if !last_nz = steps - 1 then (false, None)
    else
      ( true,
        Some
          (Float.max 0.0 ((float_of_int (!last_nz + 1) *. period) -. clear)) )
  in
  let count m = Array.fold_left (fun a x -> if x = m then a + 1 else a) 0 modes in
  let tail = max 1 (steps / 8) in
  let sq = ref 0.0 in
  for k = steps - tail to steps - 1 do
    sq := !sq +. (err.(k) *. err.(k))
  done;
  if (not recovered) && Flight.enabled () then
    Flight.capture
      ~reason:
        (Printf.sprintf "unrecovered run: scenario=%s seed=%d"
           scenario.Fault_scenario.sname seed);
  {
    seed;
    detected = detection_s <> None || wdog_bites > 0;
    detection_s;
    recovered;
    recovery_s;
    steps_degraded = count 1;
    steps_safestop = count 2;
    max_mode = Array.fold_left max 0 modes;
    residual_rms = sqrt (!sq /. float_of_int tail);
    wdog_bites;
  }

(* wall_s is the one timing-dependent field of the campaign document;
   ECSD_WALL_ZERO=1 zeroes it so CI can assert a --jobs N report
   byte-identical to the --jobs 1 one with plain cmp. *)
let wall s =
  match Sys.getenv_opt "ECSD_WALL_ZERO" with
  | None | Some "" -> s
  | Some _ -> 0.0

(* One supervised (or raw) per-seed run. Without a policy the run is
   executed bare and any exception propagates — the historical abort
   behaviour. With a policy, deadlines / retries / chaos apply and the
   outcome is a record, never an exception, so a campaign degrades to
   per-seed failure rows instead of dying. The label feeds the chaos
   and jitter hashes, so a given (seed, attempt) fails the same way on
   every schedule. *)
let supervised_one ?policy subject ~scenario ~seed ~steps ~period ~t_end
    ~wdog_timeout =
  let go () =
    one_run subject ~scenario ~seed ~steps ~period ~t_end ~wdog_timeout
  in
  match policy with
  | None -> { Supervise.result = Ok (go ()); attempts = 1 }
  | Some policy ->
      Supervise.supervise ~policy
        ~label:
          (Printf.sprintf "faultsim:%s:seed%d" scenario.Fault_scenario.sname
             seed)
        go

let merge ~scenario ~t_end ~period ~steps ~wall_s outcomes =
  let runs =
    List.filter_map
      (fun (_, o) ->
        match o.Supervise.result with Ok r -> Some r | Error _ -> None)
      outcomes
  in
  let failures =
    List.filter_map
      (fun (seed, o) ->
        match o.Supervise.result with
        | Error e -> Some (seed, e)
        | Ok _ -> None)
      outcomes
  in
  let retries_total =
    List.fold_left (fun a (_, o) -> a + o.Supervise.attempts - 1) 0 outcomes
  in
  {
    scenario;
    t_end;
    period;
    runs;
    failures;
    retries_total;
    steps_per_run = steps;
    wall_s;
  }

let run ?(t_end = 2.0) ?(seeds = 5) ?wdog_timeout ?on_run ?policy ~scenario
    subject =
  let period = Sim.base_dt subject.sim in
  let wdog_timeout =
    match wdog_timeout with Some t -> t | None -> 8.0 *. period
  in
  let steps = int_of_float ((t_end /. period) +. 0.5) in
  let t0 = Obs.now_ns () in
  let outcomes =
    List.init seeds (fun i ->
        let seed = i + 1 in
        let o =
          supervised_one ?policy subject ~scenario ~seed ~steps ~period ~t_end
            ~wdog_timeout
        in
        (match (o.Supervise.result, on_run) with
        | Ok r, Some f -> f r
        | _ -> ());
        (seed, o))
  in
  let wall_s = wall ((Obs.now_ns () -. t0) *. 1e-9) in
  merge ~scenario ~t_end ~period ~steps ~wall_s outcomes

let run_parallel ?(t_end = 2.0) ?(seeds = 5) ?wdog_timeout ?on_run ?policy
    ~pool ~scenario mk_subject =
  (* Every domain — workers and this one — lazily builds its own
     subject: Sim state is mutable and must stay domain-local. The
     probe below runs on the calling domain, warming the compile cache
     so the workers' builds dedup against it; per-seed runs are then
     sharded by [Exec_pool.run_map], whose results land in index order,
     so the merged report is identical to the sequential one (runs are
     seed-deterministic and independent — [one_run] starts from
     [Sim.reset]) no matter which domain computed what. *)
  let subj_key = Domain.DLS.new_key mk_subject in
  let period, steps, wdog_timeout =
    let probe = Domain.DLS.get subj_key in
    let period = Sim.base_dt probe.sim in
    let wdog_timeout =
      match wdog_timeout with Some t -> t | None -> 8.0 *. period
    in
    (period, int_of_float ((t_end /. period) +. 0.5), wdog_timeout)
  in
  let t0 = Obs.now_ns () in
  let outcomes =
    Exec_pool.run_map pool seeds (fun i ->
        let subject = Domain.DLS.get subj_key in
        let seed = i + 1 in
        let o =
          supervised_one ?policy subject ~scenario ~seed ~steps ~period ~t_end
            ~wdog_timeout
        in
        (* called from worker domains: the callback must synchronize *)
        (match (o.Supervise.result, on_run) with
        | Ok r, Some f -> f r
        | _ -> ());
        (seed, o))
  in
  let wall_s = wall ((Obs.now_ns () -. t0) *. 1e-9) in
  merge ~scenario ~t_end ~period ~steps ~wall_s (Array.to_list outcomes)

let throughput ?scenario ~steps subject =
  Sim.reset subject.sim;
  (match scenario with
  | Some scn -> ignore (arm subject ~seed:1 scn)
  | None -> disarm subject);
  let t0 = Obs.now_ns () in
  for _ = 1 to steps do
    Sim.step subject.sim
  done;
  let dt = Float.max 1e-9 ((Obs.now_ns () -. t0) *. 1e-9) in
  disarm subject;
  Sim.reset subject.sim;
  float_of_int steps /. dt

let all_detected r = List.for_all (fun x -> x.detected) r.runs
let all_recovered r = List.for_all (fun x -> x.recovered) r.runs

let stats xs =
  match xs with
  | [] -> None
  | x :: rest ->
      let lo, hi, sum =
        List.fold_left
          (fun (lo, hi, s) v -> (Float.min lo v, Float.max hi v, s +. v))
          (x, x, x) rest
      in
      Some (lo, sum /. float_of_int (List.length xs), hi)

let json_stats xs =
  let open Bench_json in
  match stats xs with
  | None -> Null
  | Some (lo, mean, hi) ->
      Obj [ ("min", Float lo); ("mean", Float mean); ("max", Float hi) ]

let to_json ~model r =
  let open Bench_json in
  let opt_f = function None -> Null | Some x -> Float x in
  let run_row x =
    Obj
      [
        ("seed", Int x.seed);
        ("detected", Bool x.detected);
        ("detection_s", opt_f x.detection_s);
        ("recovered", Bool x.recovered);
        ("recovery_s", opt_f x.recovery_s);
        ("steps_degraded", Int x.steps_degraded);
        ("steps_safestop", Int x.steps_safestop);
        ("max_mode", Int x.max_mode);
        ("residual_rms", Float x.residual_rms);
        ("wdog_bites", Int x.wdog_bites);
      ]
  in
  Obj
    [
      ("schema", Str "ecsd-fault-1");
      ("model", Str model);
      ("git_rev", Str (git_rev ()));
      ("scenario", Str r.scenario.Fault_scenario.sname);
      ( "faults",
        Arr
          (List.map
             (fun f -> Str (Fault.name f))
             r.scenario.Fault_scenario.faults) );
      ("t_end", Float r.t_end);
      ("period", Float r.period);
      ("steps_per_run", Int r.steps_per_run);
      ("seeds", Int (List.length r.runs + List.length r.failures));
      ("wall_s", Float r.wall_s);
      ("runs", Arr (List.map run_row r.runs));
      ( "failures",
        Arr
          (List.map
             (fun (seed, e) ->
               Obj
                 [
                   ("seed", Int seed);
                   ("class", Str (Supervise.error_class e));
                   ("error", Str (Supervise.error_message e));
                 ])
             r.failures) );
      ("retries_total", Int r.retries_total);
      ("all_detected", Bool (all_detected r));
      ("all_recovered", Bool (all_recovered r));
      ("detection_s", json_stats (List.filter_map (fun x -> x.detection_s) r.runs));
      ("recovery_s", json_stats (List.filter_map (fun x -> x.recovery_s) r.runs));
      ( "residual_rms_max",
        Float
          (List.fold_left (fun a x -> Float.max a x.residual_rms) 0.0 r.runs) );
      ( "wdog_bites_total",
        Int (List.fold_left (fun a x -> a + x.wdog_bites) 0 r.runs) );
    ]
