(** Fault campaigns: sweep a scenario over seeds on a MIL closed loop
    and measure how the safe-state supervisor rides out the fault.

    A campaign binds a scenario to a {e subject} — a closed-loop
    simulation plus the ports that carry its sensor codes, commanded
    duty, supervisor mode, measured speed and set-point — then runs it
    once per seed with a fresh virtual MCU and watchdog alongside, and
    reports recovery metrics per run: detection latency, recovery time
    after the fault clears, steps spent degraded / safe-stopped, the
    residual control error once nominal again, and watchdog bites. *)

type ports = {
  sensor_ports : (Model.blk * int) array;
      (** output port carrying sensor slot [i]'s raw code *)
  duty_port : (Model.blk * int) option;  (** commanded duty (float) *)
  mode_port : Model.blk * int;
      (** supervisor mode output: 0 nominal, 1 degraded, 2 safe-stop *)
  speed_port : Model.blk * int;  (** controlled variable *)
  setpoint_port : (Model.blk * int) option;
      (** reference for the residual error ([None] = reference 0) *)
}

type subject = { sim : Sim.t; ports : ports; mcu : Mcu_db.t }

type run_result = {
  seed : int;
  detected : bool;
      (** the supervisor left Nominal after onset, or the watchdog bit *)
  detection_s : float option;  (** onset → first non-Nominal mode *)
  recovered : bool;
      (** back in Nominal (and staying there) after the fault cleared;
          trivially true when the fault never perturbed the loop *)
  recovery_s : float option;  (** fault clear → Nominal for good *)
  steps_degraded : int;
  steps_safestop : int;
  max_mode : int;
  residual_rms : float;
      (** RMS control error over the last eighth of the run *)
  wdog_bites : int;
}

type result = {
  scenario : Fault_scenario.t;
  t_end : float;
  period : float;
  runs : run_result list;
  failures : (int * Supervise.error) list;
      (** supervised campaigns only: seeds whose run ended in an error
          record (timeout, crash, poisoned, ...) instead of metrics, in
          seed order. Empty when no policy is given. *)
  retries_total : int;
      (** total retry attempts spent across all seeds (supervised) *)
  steps_per_run : int;
  wall_s : float;
}

val arm : subject -> ?seed:int -> Fault_scenario.t -> Fault_inject.t
(** Install an injector on the subject's simulation (outside a campaign —
    e.g. for a one-off faulted run). *)

val disarm : subject -> unit

val run :
  ?t_end:float ->
  ?seeds:int ->
  ?wdog_timeout:float ->
  ?on_run:(run_result -> unit) ->
  ?policy:Supervise.policy ->
  scenario:Fault_scenario.t ->
  subject ->
  result
(** Run the campaign: [seeds] runs (seeds 1..N, default 5) of [t_end]
    seconds (default 2.0) each, resetting the simulation between runs.
    [wdog_timeout] defaults to 8 control periods. The watchdog is
    serviced once per control step unless the scenario suppresses it;
    injected overruns stretch the step's cycle budget so a long enough
    burst starves the watchdog exactly as it would on the bench.
    [on_run] fires after each completed run — the CLI uses it to keep a
    partial report it can flush if a later run dies.

    [policy] turns on supervised execution: each seed's run gets a
    {!Supervise} deadline/retry envelope (and any configured chaos),
    a failing seed lands in [failures] instead of aborting the
    campaign, and [on_run] fires only for successful runs. Without a
    [policy] any exception propagates, as before. *)

val run_parallel :
  ?t_end:float ->
  ?seeds:int ->
  ?wdog_timeout:float ->
  ?on_run:(run_result -> unit) ->
  ?policy:Supervise.policy ->
  pool:Exec_pool.t ->
  scenario:Fault_scenario.t ->
  (unit -> subject) ->
  result
(** {!run} sharded across a work-stealing domain pool: the seed range
    splits over the pool's workers, each domain lazily building its own
    subject through [mk_subject] (simulation state is mutable and must
    stay domain-local — the compile inside dedups through
    {!Compile_cache}). Per-seed runs are independent and
    seed-deterministic, and results merge in seed order, so the report
    equals the sequential one field-for-field except [wall_s]
    (set [ECSD_WALL_ZERO=1] to zero that too and compare bytes).
    [on_run] fires on the worker domain that completed the run and must
    synchronize its own state. [policy] is as in {!run}; supervised
    outcomes (including chaos decisions and backoff jitter) are pure
    functions of (seed, attempt), so the supervised report stays
    byte-identical across [--jobs] settings. *)

val throughput : ?scenario:Fault_scenario.t -> steps:int -> subject -> float
(** Steps per second over a fresh run, armed with [scenario] when given
    and unarmed otherwise — the P10 bench measuring the injection
    hooks' overhead. *)

val all_detected : result -> bool
val all_recovered : result -> bool

val to_json : model:string -> result -> Bench_json.t
(** The [FAULT_<model>.json] document (schema ["ecsd-fault-1"]): per-run
    rows plus detection/recovery aggregates. *)
