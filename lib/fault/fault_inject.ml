(* Seeded fault injector. The randomness is a private SplitMix64 stream
   (same idiom as the PIL byte-fault model) advanced only when a random
   fault actually samples it, so runs with the same seed replay exactly. *)

let c_sensor = Obs.counter "fault.sensor_perturbations"
let c_actuator = Obs.counter "fault.actuator_perturbations"
let c_overrun = Obs.counter "fault.injected_overrun_periods"
let c_wdog = Obs.counter "fault.wdog_clears_suppressed"

type t = {
  scn : Fault_scenario.t;
  sd : int;
  rng : int64 ref;
  last : (int, int) Hashtbl.t;  (* slot -> last clean code, for stuck *)
  (* Active-set cache: the scenario-ordered sublist of faults whose
     window covers [cache_time], valid for every query time in
     [cache_time, cache_until). With one-shot faults (all the builtin
     scenarios) the cache survives whole quiescent or steady-active
     stretches; a periodic fault collapses [cache_until] to [cache_time],
     i.e. a per-instant memo — still one filter per step instead of one
     per port write, since the engine calls the hook with a constant
     time within a step. *)
  mutable cache_time : float;
  mutable cache_until : float;
  mutable cache_active : Fault.t list;
}

let arm ?(seed = 1) scn =
  if Flight.enabled () then
    Flight.fault ~time:0.0 ~fired:false
      (Printf.sprintf "arm %s seed=%d" scn.Fault_scenario.sname seed);
  {
    scn;
    sd = seed;
    rng = ref (Int64.of_int (0x5DEECE66D + (seed * 0x9E3779B9)));
    last = Hashtbl.create 4;
    cache_time = nan;  (* nan compares false to everything: first
                          query always recomputes *)
    cache_until = nan;
    cache_active = [];
  }

let scenario t = t.scn
let seed t = t.sd

let next t =
  t.rng := Int64.add !(t.rng) 0x9E3779B97F4A7C15L;
  let z = !(t.rng) in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform01 t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

(* uniform integer in [-n, n] *)
let rand_pm t n =
  if n <= 0 then 0
  else int_of_float (uniform01 t *. float_of_int ((2 * n) + 1)) - n

(* [List.filter] preserves scenario order, so folding the cached
   sublist applies faults — and advances the RNG — in exactly the same
   sequence as filtering inline did: seeded replays are unaffected. *)
let refresh t ~time =
  if not (time = t.cache_time || (time > t.cache_time && time < t.cache_until))
  then begin
    let faults = t.scn.Fault_scenario.faults in
    let prev = t.cache_active in
    t.cache_active <- List.filter (fun fl -> Fault.active fl ~time) faults;
    t.cache_time <- time;
    t.cache_until <-
      List.fold_left
        (fun acc fl -> Float.min acc (Fault.next_transition fl ~time))
        infinity faults;
    (* fire/clear transitions are exactly the active-set edges; rare, so
       the recorder work (and Fault.name's allocation) stays off the
       steady-state path *)
    if Flight.enabled () && t.cache_active != prev then begin
      List.iter
        (fun fl ->
          if not (List.memq fl prev) then
            Flight.fault ~time ~fired:true (Fault.name fl))
        t.cache_active;
      List.iter
        (fun fl ->
          if not (List.memq fl t.cache_active) then
            Flight.fault ~time ~fired:false (Fault.name fl))
        prev
    end
  end

let quiescent t ~time =
  refresh t ~time;
  t.cache_active = []

let fold_active t ~time f init =
  refresh t ~time;
  List.fold_left f init t.cache_active

let sensor t ~slot ~time v =
  let stuck = ref false in
  let out =
    fold_active t ~time
      (fun v fl ->
        if fl.Fault.slot <> slot then v
        else
          match fl.Fault.kind with
          | Fault.Sensor_stuck ->
              stuck := true;
              Obs.add c_sensor 1;
              (match Hashtbl.find_opt t.last slot with Some p -> p | None -> v)
          | Fault.Sensor_dropout ->
              Obs.add c_sensor 1;
              0
          | Fault.Sensor_offset d ->
              Obs.add c_sensor 1;
              v + d
          | Fault.Sensor_noise a ->
              Obs.add c_sensor 1;
              v + rand_pm t a
          | Fault.Encoder_glitch a ->
              if uniform01 t < 0.2 then begin
                Obs.add c_sensor 1;
                v + rand_pm t a
              end
              else v
          | _ -> v)
      v
  in
  if not !stuck then Hashtbl.replace t.last slot out;
  out

let duty t ~time u =
  fold_active t ~time
    (fun u fl ->
      match fl.Fault.kind with
      | Fault.Actuator_jam x ->
          Obs.add c_actuator 1;
          x
      | Fault.Actuator_saturation c ->
          let clamped = if u > c then c else if u < -.c then -.c else u in
          if clamped <> u then Obs.add c_actuator 1;
          clamped
      | _ -> u)
    u

let load_torque t ~time =
  fold_active t ~time
    (fun acc fl ->
      match fl.Fault.kind with Fault.Load_torque x -> acc +. x | _ -> acc)
    0.0

let overrun_cycles t ~time =
  let n =
    fold_active t ~time
      (fun acc fl ->
        match fl.Fault.kind with Fault.Overrun c -> acc + c | _ -> acc)
      0
  in
  if n > 0 then Obs.add c_overrun 1;
  n

let wdog_suppressed t ~time =
  let s =
    fold_active t ~time
      (fun acc fl ->
        match fl.Fault.kind with Fault.Wdog_suppress -> true | _ -> acc)
      false
  in
  if s then Obs.add c_wdog 1;
  s

let comm_config t =
  List.find_map
    (fun fl ->
      match fl.Fault.kind with Fault.Comm c -> Some c | _ -> None)
    t.scn.Fault_scenario.faults

let active_names t ~time = Fault_scenario.active_names t.scn ~time

let sim_hook t ~sensor_ports ?duty_port () =
  if t.scn.Fault_scenario.faults = [] then None
  else begin
    let key (b, p) = (Model.blk_index b, p) in
    let sensors = Hashtbl.create 4 in
    Array.iteri
      (fun slot bp -> Hashtbl.replace sensors (key bp) slot)
      sensor_ports;
    let dk = Option.map key duty_port in
    (* Sensor_stuck freezes at the last value [sensor] returned while
       the fault was inactive, so slots carrying a stuck fault must keep
       flowing through [sensor] even in quiescent stretches to refresh
       [t.last]. Scenarios without stuck faults take the cheap exit: one
       cached-window check per write instead of a fold plus a hashtable
       probe — this is where the armed-campaign overhead was going. *)
    let track_stuck =
      List.exists
        (fun fl -> fl.Fault.kind = Fault.Sensor_stuck)
        t.scn.Fault_scenario.faults
    in
    Some
      (fun ~time bp v ->
        if (not track_stuck) && quiescent t ~time then v
        else
          let k = key bp in
          match Hashtbl.find_opt sensors k with
          | Some slot -> (
              match v with
              | Value.I (dt, c) -> Value.of_int dt (sensor t ~slot ~time c)
              | v -> v)
          | None -> (
              if dk <> Some k then v
              else
                match v with
                | Value.F u -> Value.F (duty t ~time u)
                | v -> v))
  end
