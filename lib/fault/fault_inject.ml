(* Seeded fault injector. The randomness is a private SplitMix64 stream
   (same idiom as the PIL byte-fault model) advanced only when a random
   fault actually samples it, so runs with the same seed replay exactly. *)

let c_sensor = Obs.counter "fault.sensor_perturbations"
let c_actuator = Obs.counter "fault.actuator_perturbations"
let c_overrun = Obs.counter "fault.injected_overrun_periods"
let c_wdog = Obs.counter "fault.wdog_clears_suppressed"

type t = {
  scn : Fault_scenario.t;
  sd : int;
  rng : int64 ref;
  last : (int, int) Hashtbl.t;  (* slot -> last clean code, for stuck *)
}

let arm ?(seed = 1) scn =
  {
    scn;
    sd = seed;
    rng = ref (Int64.of_int (0x5DEECE66D + (seed * 0x9E3779B9)));
    last = Hashtbl.create 4;
  }

let scenario t = t.scn
let seed t = t.sd

let next t =
  t.rng := Int64.add !(t.rng) 0x9E3779B97F4A7C15L;
  let z = !(t.rng) in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform01 t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

(* uniform integer in [-n, n] *)
let rand_pm t n =
  if n <= 0 then 0
  else int_of_float (uniform01 t *. float_of_int ((2 * n) + 1)) - n

let fold_active t ~time f init =
  List.fold_left
    (fun acc fl -> if Fault.active fl ~time then f acc fl else acc)
    init t.scn.Fault_scenario.faults

let sensor t ~slot ~time v =
  let stuck = ref false in
  let out =
    fold_active t ~time
      (fun v fl ->
        if fl.Fault.slot <> slot then v
        else
          match fl.Fault.kind with
          | Fault.Sensor_stuck ->
              stuck := true;
              Obs.add c_sensor 1;
              (match Hashtbl.find_opt t.last slot with Some p -> p | None -> v)
          | Fault.Sensor_dropout ->
              Obs.add c_sensor 1;
              0
          | Fault.Sensor_offset d ->
              Obs.add c_sensor 1;
              v + d
          | Fault.Sensor_noise a ->
              Obs.add c_sensor 1;
              v + rand_pm t a
          | Fault.Encoder_glitch a ->
              if uniform01 t < 0.2 then begin
                Obs.add c_sensor 1;
                v + rand_pm t a
              end
              else v
          | _ -> v)
      v
  in
  if not !stuck then Hashtbl.replace t.last slot out;
  out

let duty t ~time u =
  fold_active t ~time
    (fun u fl ->
      match fl.Fault.kind with
      | Fault.Actuator_jam x ->
          Obs.add c_actuator 1;
          x
      | Fault.Actuator_saturation c ->
          let clamped = if u > c then c else if u < -.c then -.c else u in
          if clamped <> u then Obs.add c_actuator 1;
          clamped
      | _ -> u)
    u

let load_torque t ~time =
  fold_active t ~time
    (fun acc fl ->
      match fl.Fault.kind with Fault.Load_torque x -> acc +. x | _ -> acc)
    0.0

let overrun_cycles t ~time =
  let n =
    fold_active t ~time
      (fun acc fl ->
        match fl.Fault.kind with Fault.Overrun c -> acc + c | _ -> acc)
      0
  in
  if n > 0 then Obs.add c_overrun 1;
  n

let wdog_suppressed t ~time =
  let s =
    fold_active t ~time
      (fun acc fl ->
        match fl.Fault.kind with Fault.Wdog_suppress -> true | _ -> acc)
      false
  in
  if s then Obs.add c_wdog 1;
  s

let comm_config t =
  List.find_map
    (fun fl ->
      match fl.Fault.kind with Fault.Comm c -> Some c | _ -> None)
    t.scn.Fault_scenario.faults

let active_names t ~time = Fault_scenario.active_names t.scn ~time

let sim_hook t ~sensor_ports ?duty_port () =
  if t.scn.Fault_scenario.faults = [] then None
  else begin
    let key (b, p) = (Model.blk_index b, p) in
    let sensors = Hashtbl.create 4 in
    Array.iteri
      (fun slot bp -> Hashtbl.replace sensors (key bp) slot)
      sensor_ports;
    let dk = Option.map key duty_port in
    Some
      (fun ~time bp v ->
        let k = key bp in
        match Hashtbl.find_opt sensors k with
        | Some slot -> (
            match v with
            | Value.I (dt, c) -> Value.of_int dt (sensor t ~slot ~time c)
            | v -> v)
        | None -> (
            if dk <> Some k then v
            else
              match v with
              | Value.F u -> Value.F (duty t ~time u)
              | v -> v))
  end
