(** Seeded fault injector: evaluates a {!Fault_scenario.t} against
    simulation time and perturbs the signals that cross the
    controller/world boundary.

    One injector = one armed run. All randomness (noise amplitudes,
    glitch occurrences) comes from a SplitMix64 stream derived from the
    seed, so a campaign run is replayed exactly by re-arming with the
    same seed. The injector itself is engine-agnostic: the MIL engine
    attaches it through {!sim_hook}, the SIL/PIL harnesses call
    {!sensor} / {!overrun_cycles} / {!wdog_suppressed} directly.

    The per-query activity scan is hoisted out of the hot path: the
    injector caches the scenario-ordered active sublist together with
    the exact window edge ({!Fault.next_transition}) up to which it
    stays valid, so an armed run pays one filter per window transition
    (one-shot faults) or per step (periodic faults) instead of one
    fold over the whole scenario per port write. The cache changes
    neither results nor the RNG stream. *)

type t

val arm : ?seed:int -> Fault_scenario.t -> t
(** Default seed 1. *)

val scenario : t -> Fault_scenario.t
val seed : t -> int

val sensor : t -> slot:int -> time:float -> int -> int
(** Perturb one raw sensor code. Applies every active sensor fault bound
    to [slot], in scenario order. [Sensor_stuck] freezes the code at the
    last value this function returned for the slot while the fault was
    inactive. The result is not masked — callers that model a 16-bit
    peripheral register mask it themselves. *)

val duty : t -> time:float -> float -> float
(** Perturb the commanded actuator duty (jam / saturation). *)

val load_torque : t -> time:float -> float
(** Extra shaft load torque at [time] (sum of active [Load_torque]). *)

val overrun_cycles : t -> time:float -> int
(** Extra CPU cycles the control step burns at [time] (sum of active
    [Overrun] faults). *)

val wdog_suppressed : t -> time:float -> bool
(** Whether the watchdog service call is lost at [time]. *)

val comm_config : t -> Faulty.config option
(** The serial-line fault model, if the scenario carries one ([Comm]
    faults arm the line for the whole run — the window is ignored). *)

val active_names : t -> time:float -> string list

val sim_hook :
  t ->
  sensor_ports:(Model.blk * int) array ->
  ?duty_port:Model.blk * int ->
  unit ->
  (time:float -> Model.blk * int -> Value.t -> Value.t) option
(** Build the perturbation function for {!Sim.set_fault_hook}:
    [sensor_ports.(slot)] is the output port carrying sensor slot
    [slot]'s raw code, [duty_port] the commanded duty. Returns [None]
    for an empty scenario (nothing to arm). *)
