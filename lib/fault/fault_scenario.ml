(* Named fault scenarios: the built-in abuse set for the servo case
   study plus a small line-based [.fault] file format, so campaigns can
   be described next to the model instead of in code. *)

type t = { sname : string; faults : Fault.t list }

let v ?slot ?every ~at ~duration kind = Fault.make ?slot ?every ~at ~duration kind

(* The fault window opens at 0.9 s — after the last set-point step of
   the default servo schedule, with the loop settled at 150 rad/s — and
   closes early enough for the supervisor to recover well before the
   2 s campaign horizon. *)
let builtins =
  [
    { sname = "encoder-dropout";
      faults = [ v ~at:0.9 ~duration:0.15 Fault.Sensor_dropout ] };
    { sname = "sensor-stuck";
      faults = [ v ~at:0.9 ~duration:0.15 Fault.Sensor_stuck ] };
    { sname = "noise-burst";
      faults = [ v ~at:0.9 ~duration:0.2 (Fault.Sensor_noise 40) ] };
    { sname = "encoder-glitch";
      faults = [ v ~at:0.9 ~duration:0.2 (Fault.Encoder_glitch 500) ] };
    { sname = "actuator-jam";
      faults = [ v ~at:0.9 ~duration:0.2 (Fault.Actuator_jam 1.0) ] };
    { sname = "overrun-burst";
      faults = [ v ~at:0.9 ~duration:0.1 (Fault.Overrun 600_000) ] };
    { sname = "wdog-suppress";
      faults = [ v ~at:0.9 ~duration:0.1 Fault.Wdog_suppress ] };
  ]

let builtin name = List.find_opt (fun s -> s.sname = name) builtins

(* ---- the .fault line format ---- *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_line lineno line =
  let err fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt in
  match split_ws line with
  | [] -> Ok None
  | kind_word :: rest ->
      let kv =
        List.filter_map
          (fun tok ->
            match String.index_opt tok '=' with
            | Some i ->
                Some
                  ( String.sub tok 0 i,
                    String.sub tok (i + 1) (String.length tok - i - 1) )
            | None -> None)
          rest
      in
      let bad = List.filter (fun tok -> not (String.contains tok '=')) rest in
      if bad <> [] then err "stray token %S (expected key=value)" (List.hd bad)
      else
        let fget k =
          match List.assoc_opt k kv with
          | None -> Ok None
          | Some s -> (
              match float_of_string_opt s with
              | Some x -> Ok (Some x)
              | None -> Error (Printf.sprintf "line %d: %s=%S is not a number" lineno k s))
        in
        let ( let* ) = Result.bind in
        let* at = fget "at" in
        let* duration = fget "duration" in
        let* slot = fget "slot" in
        let* value = fget "value" in
        let* every = fget "every" in
        let known = [ "at"; "duration"; "slot"; "value"; "every" ] in
        (match List.find_opt (fun (k, _) -> not (List.mem k known)) kv with
        | Some (k, _) -> err "unknown key %S" k
        | None ->
            let need_value mk =
              match value with
              | Some x -> Ok (mk x)
              | None -> err "kind %S needs value=" kind_word |> Result.map (fun _ -> assert false)
            in
            let* kind =
              match kind_word with
              | "stuck" -> Ok Fault.Sensor_stuck
              | "dropout" -> Ok Fault.Sensor_dropout
              | "wdog-suppress" -> Ok Fault.Wdog_suppress
              | "offset" -> need_value (fun x -> Fault.Sensor_offset (int_of_float x))
              | "noise" -> need_value (fun x -> Fault.Sensor_noise (int_of_float x))
              | "glitch" -> need_value (fun x -> Fault.Encoder_glitch (int_of_float x))
              | "saturation" -> need_value (fun x -> Fault.Actuator_saturation x)
              | "jam" -> need_value (fun x -> Fault.Actuator_jam x)
              | "load" -> need_value (fun x -> Fault.Load_torque x)
              | "overrun" -> need_value (fun x -> Fault.Overrun (int_of_float x))
              | "comm" ->
                  need_value (fun x ->
                      Fault.Comm { Faulty.clean with Faulty.corrupt_rate = x })
              | k -> err "unknown fault kind %S" k |> Result.map (fun _ -> assert false)
            in
            let* at =
              match at with Some a -> Ok a | None -> err "missing at=" |> Result.map (fun _ -> 0.0)
            in
            let* duration =
              match duration with
              | Some d -> Ok d
              | None -> err "missing duration=" |> Result.map (fun _ -> 0.0)
            in
            let slot = match slot with Some s -> int_of_float s | None -> 0 in
            (match Fault.make ~slot ?every ~at ~duration kind with
            | f -> Ok (Some f)
            | exception Invalid_argument m -> err "%s" m))

let of_string ~name text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok { sname = name; faults = List.rev acc }
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
        else
          match parse_line lineno line with
          | Ok (Some f) -> go (lineno + 1) (f :: acc) rest
          | Ok None -> go (lineno + 1) acc rest
          | Error e -> Error e)
  in
  match go 1 [] lines with
  | Ok { faults = []; _ } -> Error "scenario declares no faults"
  | r -> r

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      let name = Filename.remove_extension (Filename.basename path) in
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (of_string ~name text)

let find ref_ =
  match builtin ref_ with
  | Some s -> Ok s
  | None ->
      if Sys.file_exists ref_ then load ref_
      else
        Error
          (Printf.sprintf
             "no scenario %S: not a built-in (%s) and not a file" ref_
             (String.concat ", " (List.map (fun s -> s.sname) builtins)))

let onset s =
  List.fold_left (fun acc f -> Float.min acc (Fault.onset f)) infinity s.faults

let clear_time s ~horizon =
  List.fold_left
    (fun acc f -> Float.max acc (Fault.clear_time f ~horizon))
    0.0 s.faults

let active_names s ~time =
  List.filter_map
    (fun f -> if Fault.active f ~time then Some (Fault.name f) else None)
    s.faults
