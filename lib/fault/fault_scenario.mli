(** Named fault scenarios and the [.fault] file format.

    A scenario is a named list of scheduled faults — the unit a campaign
    sweeps over. Scenarios come from the built-in catalogue (the servo
    study's standard abuse set) or from a [.fault] file, one fault per
    line:

    {v
    # comment
    <kind> at=<s> duration=<s> [slot=<n>] [value=<x>] [every=<s>]
    v}

    Kinds: [stuck], [dropout], [offset], [noise], [glitch], [saturation],
    [jam], [load], [overrun], [wdog-suppress], [comm]. [value] is the
    kind's magnitude (counts for sensor kinds, duty for actuator kinds,
    N.m for [load], CPU cycles for [overrun], corrupt probability for
    [comm]); kinds without a magnitude ignore it. *)

type t = { sname : string; faults : Fault.t list }

val builtins : t list
(** The standard abuse set for the servo case study (fault window at
    0.9 s, after the last set-point step). *)

val builtin : string -> t option

val of_string : name:string -> string -> (t, string) result
(** Parse the [.fault] line format. Errors name the offending line. *)

val load : string -> (t, string) result
(** Read a [.fault] file; the scenario is named after the basename. *)

val find : string -> (t, string) result
(** Resolve a built-in scenario name, else a file path. The error lists
    the built-in names. *)

val onset : t -> float
(** Earliest fault onset ([infinity] for an empty scenario). *)

val clear_time : t -> horizon:float -> float
(** When every fault is gone for good (capped at [horizon]). *)

val active_names : t -> time:float -> string list
(** Names of the faults whose windows cover [time]. *)
