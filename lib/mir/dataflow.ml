(* Unified dataflow-analysis framework: one fixpoint engine with
   pluggable lattices, shared by every checker.

   Two solver shapes cover the repo's analyses:

   - [Round_robin]: Gauss–Seidel chaotic iteration over an arbitrary
     dependency graph with a caller-supplied widening hook driven by
     the global round counter. The block-diagram range analysis
     (lib/analysis/range.ml) is this solver instantiated with
     per-block interval vectors.

   - [Solve]: the classic worklist algorithm over a [Mir_cfg] control
     flow graph, forward or backward, with per-node visit counts for
     widening. The MIR def-use, liveness and value-range analyses are
     instances. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
end

module type JOIN_LATTICE = sig
  type t

  val bottom : t  (** the "not yet visited" element *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

(* ---- Gauss–Seidel round-robin over an indexed node set ---- *)

module Round_robin (L : LATTICE) = struct
  type problem = {
    n : int;  (** nodes are 0 .. n-1, visited in index order *)
    init : int -> L.t;
    transfer : round:int -> get:(int -> L.t) -> int -> L.t;
        (** next state of node [i]; reads any node's current state
            (including its own) through [get]; widening against the
            current state belongs in here, keyed on [round] *)
  }

  (* iterate all nodes in order until a full round changes nothing, or
     [max_rounds] is hit (termination backstop for widening-free
     instantiations) *)
  let solve ~max_rounds (p : problem) : int -> L.t =
    let state = Array.init p.n p.init in
    let get i = state.(i) in
    let changed = ref true in
    let round = ref 0 in
    while !changed && !round < max_rounds do
      incr round;
      changed := false;
      for i = 0 to p.n - 1 do
        let next = p.transfer ~round:!round ~get i in
        if not (L.equal state.(i) next) then begin
          state.(i) <- next;
          changed := true
        end
      done
    done;
    get
end

(* ---- worklist solver over a CFG ---- *)

type direction = Forward | Backward

module Solve (L : JOIN_LATTICE) = struct
  type result = {
    inp : L.t array;  (** fact at node entry (Forward) / exit (Backward) *)
    out : L.t array;  (** fact after the node's transfer *)
  }

  (* [entry] seeds the boundary fact at the CFG entry (Forward) or at
     the exit node (Backward). [transfer] maps the joined incoming
     fact through one node. [widen] (optional) is applied to the
     joined input after [widen_after] visits of the same node —
     loop-breaking for infinite-height lattices. *)
  let run ?widen ?(widen_after = 8) (dir : direction) (cfg : Mir_cfg.t)
      ~(entry : L.t) ~(transfer : int -> L.t -> L.t) : result =
    let n = Array.length cfg.Mir_cfg.nodes in
    let inp = Array.make n L.bottom in
    let out = Array.make n L.bottom in
    let visits = Array.make n 0 in
    let preds_of i =
      match dir with
      | Forward -> cfg.Mir_cfg.nodes.(i).Mir_cfg.preds
      | Backward -> cfg.Mir_cfg.nodes.(i).Mir_cfg.succs
    and succs_of i =
      match dir with
      | Forward -> cfg.Mir_cfg.nodes.(i).Mir_cfg.succs
      | Backward -> cfg.Mir_cfg.nodes.(i).Mir_cfg.preds
    in
    let boundary =
      match dir with Forward -> cfg.Mir_cfg.entry | Backward -> cfg.Mir_cfg.exit_
    in
    let work = Queue.create () in
    let on_work = Array.make n false in
    let push i =
      if not on_work.(i) then begin
        on_work.(i) <- true;
        Queue.push i work
      end
    in
    (* seed every node so unreachable code still gets bottom facts *)
    for i = 0 to n - 1 do
      push i
    done;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      on_work.(i) <- false;
      let joined =
        List.fold_left
          (fun acc p -> L.join acc out.(p))
          (if i = boundary then entry else L.bottom)
          (preds_of i)
      in
      let joined =
        match widen with
        | Some w when visits.(i) > widen_after -> w ~old:inp.(i) ~next:joined
        | _ -> joined
      in
      visits.(i) <- visits.(i) + 1;
      let next_out = transfer i joined in
      let input_changed = not (L.equal inp.(i) joined) in
      inp.(i) <- joined;
      if input_changed || not (L.equal out.(i) next_out) then begin
        out.(i) <- next_out;
        List.iter push (succs_of i)
      end
    done;
    { inp; out }
end
