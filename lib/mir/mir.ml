(* Typed mid-level IR between the block diagram and the C AST.

   Blockgen's per-block C fragments are lifted into this IR, analysed
   and optionally optimised, and printed back out through the C
   emitter. The design rule (after Blaze's PIL) is one explicitly
   widthed op per constructor: saturation, wrap and quantisation are
   first-class nodes instead of pattern-matched helper calls, so the
   range analysis, the def-use rules, the sat-op prover and the
   optimiser all share one semantics.

   The second design rule is exact round-tripping: [Mir_to_c.lower] is
   the inverse of [Mir_of_c.lift] on every construct the lifter
   understands, and anything it does not understand is carried through
   verbatim as an opaque node. Lifting then lowering a generated
   translation unit therefore reproduces it structurally unchanged,
   which keeps golden SIL traces and MISRA findings stable when the
   MIR pipeline is inserted into the codegen path. *)

type ity = { bits : int; signed : bool }

type ty =
  | Tint of ity
  | Tf32
  | Tf64
  | Tnamed of string  (** opaque scalar typedef (AUTOSAR driver types) *)
  | Tunknown

let i8 = Tint { bits = 8; signed = true }
let u8 = Tint { bits = 8; signed = false }
let i16 = Tint { bits = 16; signed = true }
let u16 = Tint { bits = 16; signed = false }
let i32 = Tint { bits = 32; signed = true }
let u32 = Tint { bits = 32; signed = false }
let i64 = Tint { bits = 64; signed = true }
let u64 = Tint { bits = 64; signed = false }

(* literal spelling, preserved for exact lowering *)
type style = Dec | Hex

type uop = Neg | Lnot

type bop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor

(* quantisation targets of the generated pe_cast_* helpers: round half
   away from zero, saturate at the dtype range, NaN -> 0 *)
type qkind = Qb | Qi8 | Qu8 | Qi16 | Qu16 | Qi32 | Qu32

type place =
  | Pvar of string
  | Pfield of place * string
  | Pindex of place * expr

and expr =
  | Kint of int * style  (** C int literal (Hex spelling is unsigned) *)
  | Kfloat of float  (** C double literal *)
  | Load of place
  | Eun of uop * expr
  | Ebin of bop * expr * expr
  | Ecast of C_ast.cty * expr  (** plain C cast: truncate / wrap *)
  | Equantize of qkind * expr  (** pe_cast_<k>: round + saturate *)
  | Esat16 of expr  (** pe_sat16: clamp an int32 into int16 range *)
  | Esat_add32 of expr * expr  (** pe_sat_add32: saturating add *)
  | Emul_shift of expr * expr * expr  (** pe_mul_shift: (a*b+2^(s-1))>>s *)
  | Ecall of string * expr list  (** external / opaque call *)
  | Eselect of expr * expr * expr  (** ternary *)
  | Eopaque of C_ast.expr  (** unliftable fragment, lowered verbatim *)

type stmt =
  | Sdecl of C_ast.cty * string * expr option
  | Sassign of place * expr
  | Sexpr of expr
  | Sincr of place  (** prefix ++ *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt * expr * stmt * stmt list
  | Sreturn of expr option
  | Scomment of string
  | Sblock of stmt list
  | Sopaque of C_ast.stmt  (** unliftable statement, lowered verbatim *)

let qkind_name = function
  | Qb -> "pe_cast_b"
  | Qi8 -> "pe_cast_i8"
  | Qu8 -> "pe_cast_u8"
  | Qi16 -> "pe_cast_i16"
  | Qu16 -> "pe_cast_u16"
  | Qi32 -> "pe_cast_i32"
  | Qu32 -> "pe_cast_u32"

let qkind_of_name = function
  | "pe_cast_b" -> Some Qb
  | "pe_cast_i8" -> Some Qi8
  | "pe_cast_u8" -> Some Qu8
  | "pe_cast_i16" -> Some Qi16
  | "pe_cast_u16" -> Some Qu16
  | "pe_cast_i32" -> Some Qi32
  | "pe_cast_u32" -> Some Qu32
  | _ -> None

(* result type of each quantiser (pe_cast_b returns uint8_t) *)
let qkind_ty = function
  | Qb -> u8
  | Qi8 -> i8
  | Qu8 -> u8
  | Qi16 -> i16
  | Qu16 -> u16
  | Qi32 -> i32
  | Qu32 -> u32

(* saturation bounds of a quantiser, as exact doubles (the helper
   compares against these literals) *)
let qkind_bounds = function
  | Qb -> (0.0, 1.0)
  | Qi8 -> (-128.0, 127.0)
  | Qu8 -> (0.0, 255.0)
  | Qi16 -> (-32768.0, 32767.0)
  | Qu16 -> (0.0, 65535.0)
  | Qi32 -> (-2147483648.0, 2147483647.0)
  | Qu32 -> (0.0, 4294967295.0)

let uop_name = function Neg -> "-" | Lnot -> "!"

let bop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let bop_of_name = function
  | "+" -> Some Add | "-" -> Some Sub | "*" -> Some Mul | "/" -> Some Div
  | "%" -> Some Mod | "<<" -> Some Shl | ">>" -> Some Shr
  | "&" -> Some Band | "|" -> Some Bor | "^" -> Some Bxor
  | "==" -> Some Eq | "!=" -> Some Ne | "<" -> Some Lt | ">" -> Some Gt
  | "<=" -> Some Le | ">=" -> Some Ge | "&&" -> Some Land | "||" -> Some Lor
  | _ -> None

let is_comparison = function
  | Eq | Ne | Lt | Gt | Le | Ge -> true
  | _ -> false

let is_logical = function Land | Lor -> true | _ -> false

(* ---- traversal helpers ---- *)

let rec iter_expr f e =
  f e;
  match e with
  | Kint _ | Kfloat _ | Eopaque _ -> ()
  | Load p -> iter_place f p
  | Eun (_, a) | Ecast (_, a) | Equantize (_, a) | Esat16 a -> iter_expr f a
  | Ebin (_, a, b) | Esat_add32 (a, b) ->
      iter_expr f a;
      iter_expr f b
  | Emul_shift (a, b, c) | Eselect (a, b, c) ->
      iter_expr f a;
      iter_expr f b;
      iter_expr f c
  | Ecall (_, args) -> List.iter (iter_expr f) args

and iter_place f = function
  | Pvar _ -> ()
  | Pfield (p, _) -> iter_place f p
  | Pindex (p, i) ->
      iter_place f p;
      iter_expr f i

let rec iter_stmt ~expr ~stmt s =
  stmt s;
  match s with
  | Sdecl (_, _, Some e) | Sexpr e -> iter_expr expr e
  | Sdecl (_, _, None) | Scomment _ | Sreturn None | Sopaque _ -> ()
  | Sassign (p, e) ->
      iter_place expr p;
      iter_expr expr e
  | Sincr p -> iter_place expr p
  | Sreturn (Some e) -> iter_expr expr e
  | Sif (c, t, e) ->
      iter_expr expr c;
      List.iter (iter_stmt ~expr ~stmt) t;
      List.iter (iter_stmt ~expr ~stmt) e
  | Swhile (c, b) ->
      iter_expr expr c;
      List.iter (iter_stmt ~expr ~stmt) b
  | Sfor (i, c, u, b) ->
      iter_stmt ~expr ~stmt i;
      iter_expr expr c;
      iter_stmt ~expr ~stmt u;
      List.iter (iter_stmt ~expr ~stmt) b
  | Sblock b -> List.iter (iter_stmt ~expr ~stmt) b

(* root variable of a place *)
let rec place_root = function
  | Pvar v -> v
  | Pfield (p, _) | Pindex (p, _) -> place_root p

(* canonical dotted path of a place, [None] when it indexes an array
   with a non-constant subscript *)
let rec place_path = function
  | Pvar v -> Some v
  | Pfield (p, f) -> Option.map (fun s -> s ^ "." ^ f) (place_path p)
  | Pindex (p, Kint (n, _)) ->
      Option.map (fun s -> Printf.sprintf "%s[%d]" s n) (place_path p)
  | Pindex _ -> None

(* variables whose address is taken inside an opaque C fragment: the
   callee may initialise or overwrite them behind the IR's back *)
let addressed_vars_of_c e =
  let acc = ref [] in
  let rec go = function
    | C_ast.Un ("&", C_ast.Var v) -> acc := v :: !acc
    | C_ast.Un ("&", e) | C_ast.Un (_, e) | C_ast.Cast_to (_, e)
    | C_ast.Field (e, _) | C_ast.Arrow (e, _) ->
        go e
    | C_ast.Bin (_, a, b) | C_ast.Index (a, b) ->
        go a;
        go b
    | C_ast.Ternary (a, b, c) ->
        go a;
        go b;
        go c
    | C_ast.Call (_, args) -> List.iter go args
    | C_ast.Int_lit _ | C_ast.Hex_lit _ | C_ast.Float_lit _ | C_ast.Str_lit _
    | C_ast.Var _ ->
        ()
  in
  go e;
  !acc

(* every plain variable mentioned in an opaque C fragment *)
let vars_of_c e =
  let acc = ref [] in
  let rec go = function
    | C_ast.Var v -> acc := v :: !acc
    | C_ast.Un (_, e) | C_ast.Cast_to (_, e) | C_ast.Field (e, _)
    | C_ast.Arrow (e, _) ->
        go e
    | C_ast.Bin (_, a, b) | C_ast.Index (a, b) ->
        go a;
        go b
    | C_ast.Ternary (a, b, c) ->
        go a;
        go b;
        go c
    | C_ast.Call (_, args) -> List.iter go args
    | C_ast.Int_lit _ | C_ast.Hex_lit _ | C_ast.Float_lit _ | C_ast.Str_lit _
      ->
        ()
  in
  go e;
  !acc
