(* Control-flow graph over structured MIR statements.

   Linearises the statement tree into basic blocks of atoms. Each atom
   keeps a stable id and its source statement (or branch condition),
   so analyses can report findings against the original C spelling. *)

type astmt =
  | A_stmt of Mir.stmt  (** straight-line statement *)
  | A_cond of Mir.expr  (** branch / loop condition evaluation *)

type atom = { aid : int; a : astmt }

type node = {
  nid : int;
  mutable atoms : atom list;  (** in execution order *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_ : int;
  n_atoms : int;
}

let atom_stmts n =
  List.filter_map (function { a = A_stmt s; _ } -> Some s | _ -> None) n.atoms

let build (body : Mir.stmt list) : t =
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let next_aid = ref 0 in
  let mk_node () =
    let n = { nid = !n_nodes; atoms = []; succs = []; preds = [] } in
    incr n_nodes;
    nodes := n :: !nodes;
    n
  in
  let edge a b =
    a.succs <- b.nid :: a.succs;
    b.preds <- a.nid :: b.preds
  in
  let push n a =
    let aid = !next_aid in
    incr next_aid;
    n.atoms <- { aid; a } :: n.atoms
  in
  let entry = mk_node () in
  let exit_ = mk_node () in
  (* walk the statement list, returning the node control falls out of
     ([None] when the flow never falls through, e.g. after return) *)
  let rec walk cur stmts =
    match stmts with
    | [] -> cur
    | s :: rest -> (
        match cur with
        | None ->
            (* dead code after a return: collect it in a fresh node
               with no predecessors so reachability analysis sees it *)
            let dead = mk_node () in
            walk (walk (Some dead) [ s ]) rest
        | Some cur -> (
            match s with
            | Mir.Sdecl _ | Mir.Sassign _ | Mir.Sexpr _ | Mir.Sincr _
            | Mir.Scomment _ | Mir.Sopaque _ ->
                push cur (A_stmt s);
                walk (Some cur) rest
            | Mir.Sblock b -> walk (walk (Some cur) b) rest
            | Mir.Sreturn _ ->
                push cur (A_stmt s);
                edge cur exit_;
                walk None rest
            | Mir.Sif (c, t, e) ->
                push cur (A_cond c);
                let join = mk_node () in
                let tn = mk_node () in
                edge cur tn;
                (match walk (Some tn) t with
                | Some last -> edge last join
                | None -> ());
                (if e = [] then edge cur join
                 else begin
                   let en = mk_node () in
                   edge cur en;
                   match walk (Some en) e with
                   | Some last -> edge last join
                   | None -> ()
                 end);
                walk (Some join) rest
            | Mir.Swhile (c, b) ->
                let head = mk_node () in
                edge cur head;
                push head (A_cond c);
                let bn = mk_node () in
                let after = mk_node () in
                edge head bn;
                edge head after;
                (match walk (Some bn) b with
                | Some last -> edge last head
                | None -> ());
                walk (Some after) rest
            | Mir.Sfor (i, c, u, b) ->
                push cur (A_stmt i);
                let head = mk_node () in
                edge cur head;
                push head (A_cond c);
                let bn = mk_node () in
                let after = mk_node () in
                edge head bn;
                edge head after;
                (match walk (Some bn) (b @ [ u ]) with
                | Some last -> edge last head
                | None -> ());
                walk (Some after) rest))
  in
  (match walk (Some entry) body with
  | Some last -> edge last exit_
  | None -> ());
  let arr = Array.of_list (List.rev !nodes) in
  Array.iter
    (fun n ->
      n.atoms <- List.rev n.atoms;
      n.succs <- List.rev n.succs;
      n.preds <- List.rev n.preds)
    arr;
  Array.sort (fun a b -> compare a.nid b.nid) arr;
  { nodes = arr; entry = entry.nid; exit_ = exit_.nid; n_atoms = !next_aid }

(* nodes reachable from the entry *)
let reachable (t : t) : bool array =
  let seen = Array.make (Array.length t.nodes) false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go t.nodes.(i).succs
    end
  in
  go t.entry;
  seen
