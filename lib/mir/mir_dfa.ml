(* Def-use analyses over the MIR CFG, built on the worklist solver:

   - definite assignment (forward, must): reads of a local before any
     assignment on some path  -> uninitialised-read facts
   - liveness (backward, may): assignments to a local that no path
     reads before the next write or the function end -> dead stores
   - CFG reachability: statements no path reaches -> unreachable code

   The facts are plain data; lib/analysis maps them onto stable
   MIR00x Diag rules (the IR library stays below the rule engine). *)

type fact =
  | Uninit_read of { var : string; loc : string }
  | Dead_store of { var : string; loc : string }
  | Unreachable of { loc : string }

module Sset = Set.Make (String)

let loc_of_astmt = function
  | Mir_cfg.A_stmt s -> Mir_to_c.stmt_to_string s
  | Mir_cfg.A_cond c -> Mir_to_c.expr_to_string c

(* locals of a body: every declaration, plus the function arguments
   (arguments count as initialised) *)
let rec decls_of acc = function
  | [] -> acc
  | s :: rest ->
      let acc =
        match s with
        | Mir.Sdecl (_, n, _) -> Sset.add n acc
        | Mir.Sif (_, t, e) -> decls_of (decls_of acc t) e
        | Mir.Swhile (_, b) | Mir.Sblock b -> decls_of acc b
        | Mir.Sfor (i, _, u, b) -> decls_of (decls_of acc (i :: u :: b)) []
        | _ -> acc
      in
      decls_of acc rest

(* variables read by an expression, restricted to plain [Pvar] roots *)
let reads_of_expr locals e =
  let acc = ref Sset.empty in
  Mir.iter_expr
    (fun e ->
      match e with
      | Mir.Load (Mir.Pvar v) when Sset.mem v locals -> acc := Sset.add v !acc
      | Mir.Load p ->
          (* reading b.f or a[i] reads the root and any index vars;
             iter_expr already visits index expressions *)
          let root = Mir.place_root p in
          if Sset.mem root locals then acc := Sset.add root !acc
      | Mir.Eopaque ce ->
          (* a local that only appears as [&v] is an out-parameter — the
             callee writes it; count it defined (below), not read *)
          let addressed = Sset.of_list (Mir.addressed_vars_of_c ce) in
          List.iter
            (fun v ->
              if Sset.mem v locals && not (Sset.mem v addressed) then
                acc := Sset.add v !acc)
            (Mir.vars_of_c ce)
      | _ -> ())
    e;
  !acc

(* locals whose address escapes into an opaque fragment: treat as both
   defined (the callee may write them) and used (it may read them) *)
let addressed_of_expr locals e =
  let acc = ref Sset.empty in
  Mir.iter_expr
    (fun e ->
      match e with
      | Mir.Eopaque ce ->
          List.iter
            (fun v -> if Sset.mem v locals then acc := Sset.add v !acc)
            (Mir.addressed_vars_of_c ce)
      | _ -> ())
    e;
  !acc

(* per-atom effect: (reads, defines, addressed) over locals *)
let effect locals (a : Mir_cfg.astmt) =
  let e3 reads defs addr = (reads, defs, addr) in
  match a with
  | Mir_cfg.A_cond c ->
      e3 (reads_of_expr locals c) Sset.empty (addressed_of_expr locals c)
  | Mir_cfg.A_stmt s -> (
      match s with
      | Mir.Sdecl (_, n, Some e) ->
          e3 (reads_of_expr locals e)
            (Sset.singleton n)
            (addressed_of_expr locals e)
      | Mir.Sdecl (_, _, None) -> e3 Sset.empty Sset.empty Sset.empty
      | Mir.Sassign (p, e) ->
          let reads = reads_of_expr locals e in
          (* writing through b.f/a[i] reads the index exprs *)
          let reads =
            match p with
            | Mir.Pvar _ -> reads
            | _ ->
                let extra = ref Sset.empty in
                Mir.iter_place
                  (fun e -> extra := Sset.union !extra (reads_of_expr locals e))
                  p;
                Sset.union reads !extra
          in
          let defs =
            match p with
            | Mir.Pvar v when Sset.mem v locals -> Sset.singleton v
            | _ -> Sset.empty
          in
          e3 reads defs (addressed_of_expr locals e)
      | Mir.Sexpr e -> e3 (reads_of_expr locals e) Sset.empty (addressed_of_expr locals e)
      | Mir.Sincr (Mir.Pvar v) when Sset.mem v locals ->
          e3 (Sset.singleton v) (Sset.singleton v) Sset.empty
      | Mir.Sincr p ->
          let extra = ref Sset.empty in
          Mir.iter_place
            (fun e -> extra := Sset.union !extra (reads_of_expr locals e))
            p;
          e3 !extra Sset.empty Sset.empty
      | Mir.Sreturn (Some e) ->
          e3 (reads_of_expr locals e) Sset.empty (addressed_of_expr locals e)
      | Mir.Sopaque cs ->
          (* conservative: every mentioned local is read; every
             addressed one is also defined *)
          let vars = ref Sset.empty and addr = ref Sset.empty in
          let scan_e ce =
            let addressed = Sset.of_list (Mir.addressed_vars_of_c ce) in
            List.iter
              (fun v ->
                if Sset.mem v locals && not (Sset.mem v addressed) then
                  vars := Sset.add v !vars)
              (Mir.vars_of_c ce);
            List.iter
              (fun v -> if Sset.mem v locals then addr := Sset.add v !addr)
              (Mir.addressed_vars_of_c ce)
          in
          let rec scan_s (cs : C_ast.stmt) =
            match cs with
            | C_ast.Expr e | C_ast.Return (Some e) | C_ast.Decl (_, _, Some e)
              ->
                scan_e e
            | C_ast.Assign (a, b) ->
                scan_e a;
                scan_e b
            | C_ast.If (c, t, e) ->
                scan_e c;
                List.iter scan_s t;
                List.iter scan_s e
            | C_ast.While (c, b) ->
                scan_e c;
                List.iter scan_s b
            | C_ast.For (i, c, u, b) ->
                scan_s i;
                scan_e c;
                scan_s u;
                List.iter scan_s b
            | C_ast.Block b -> List.iter scan_s b
            | C_ast.Decl (_, _, None)
            | C_ast.Return None
            | C_ast.Comment _ | C_ast.Raw _ ->
                ()
          in
          scan_s cs;
          e3 !vars !addr !addr
      | Mir.Sreturn None | Mir.Scomment _ -> e3 Sset.empty Sset.empty Sset.empty
      | Mir.Sif _ | Mir.Swhile _ | Mir.Sfor _ | Mir.Sblock _ ->
          (* structured statements never appear as atoms *)
          e3 Sset.empty Sset.empty Sset.empty)

(* an expression whose evaluation is observable (may have effects);
   stores of such right-hand sides are never reported dead *)
let rec observable = function
  | Mir.Kint _ | Mir.Kfloat _ -> false
  | Mir.Load _ -> false
  | Mir.Eopaque _ | Mir.Ecall _ -> true
  | Mir.Eun (_, a) | Mir.Ecast (_, a) | Mir.Equantize (_, a) | Mir.Esat16 a ->
      observable a
  | Mir.Ebin (_, a, b) | Mir.Esat_add32 (a, b) -> observable a || observable b
  | Mir.Emul_shift (a, b, c) | Mir.Eselect (a, b, c) ->
      observable a || observable b || observable c

(* ---- definite assignment (forward, must) ---- *)

module Must = struct
  (* [None] = not yet visited (top of the must-lattice) *)
  type t = Sset.t option

  let bottom = None
  let equal = ( = )

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Sset.inter a b)
end

module Must_solver = Dataflow.Solve (Must)

(* ---- liveness (backward, may) ---- *)

module May = struct
  type t = Sset.t

  let bottom = Sset.empty
  let equal = Sset.equal
  let join = Sset.union
end

module May_solver = Dataflow.Solve (May)

let analyze (body : Mir.stmt list) ~(args : string list) : fact list =
  let locals = decls_of Sset.empty body in
  let cfg = Mir_cfg.build body in
  let facts = ref [] in
  let emit f = facts := f :: !facts in
  (* -- reachability -- *)
  let reach = Mir_cfg.reachable cfg in
  Array.iter
    (fun n ->
      if not reach.(n.Mir_cfg.nid) then
        List.iter
          (fun at ->
            match at.Mir_cfg.a with
            | Mir_cfg.A_stmt (Mir.Scomment _) -> ()
            | a -> emit (Unreachable { loc = loc_of_astmt a }))
          n.Mir_cfg.atoms)
    cfg.Mir_cfg.nodes;
  (* -- definite assignment -- *)
  let init_assigned =
    Sset.of_list (List.filter (fun a -> Sset.mem a locals) args)
  in
  let must =
    Must_solver.run Dataflow.Forward cfg ~entry:(Some init_assigned)
      ~transfer:(fun i fact ->
        match fact with
        | None -> None
        | Some assigned ->
            Some
              (List.fold_left
                 (fun acc at ->
                   let _, defs, addr = effect locals at.Mir_cfg.a in
                   Sset.union acc (Sset.union defs addr))
                 assigned cfg.Mir_cfg.nodes.(i).Mir_cfg.atoms))
  in
  Array.iter
    (fun n ->
      if reach.(n.Mir_cfg.nid) then begin
        let assigned =
          ref
            (match must.Must_solver.inp.(n.Mir_cfg.nid) with
            | Some s -> s
            | None -> locals (* unvisited: assume everything assigned *))
        in
        List.iter
          (fun at ->
            let reads, defs, addr = effect locals at.Mir_cfg.a in
            Sset.iter
              (fun v ->
                if not (Sset.mem v !assigned) then
                  emit (Uninit_read { var = v; loc = loc_of_astmt at.Mir_cfg.a }))
              reads;
            assigned := Sset.union !assigned (Sset.union defs addr))
          n.Mir_cfg.atoms
      end)
    cfg.Mir_cfg.nodes;
  (* -- liveness / dead stores -- *)
  let live =
    May_solver.run Dataflow.Backward cfg ~entry:Sset.empty
      ~transfer:(fun i fact ->
        List.fold_left
          (fun live at ->
            let reads, defs, addr = effect locals at.Mir_cfg.a in
            (* backward: kill defs, then add reads (addressed vars stay
               live: the callee may read them) *)
            Sset.union (Sset.union reads addr) (Sset.diff live defs))
          fact
          (List.rev cfg.Mir_cfg.nodes.(i).Mir_cfg.atoms))
  in
  Array.iter
    (fun n ->
      if reach.(n.Mir_cfg.nid) then begin
        (* walk the node backward, tracking liveness per atom *)
        let live_after = ref live.May_solver.inp.(n.Mir_cfg.nid) in
        List.iter
          (fun at ->
            let reads, defs, addr = effect locals at.Mir_cfg.a in
            (match at.Mir_cfg.a with
            | Mir_cfg.A_stmt (Mir.Sassign (Mir.Pvar v, rhs))
              when Sset.mem v locals
                   && (not (Sset.mem v !live_after))
                   && not (observable rhs) ->
                emit (Dead_store { var = v; loc = loc_of_astmt at.Mir_cfg.a })
            | _ -> ());
            live_after :=
              Sset.union (Sset.union reads addr) (Sset.diff !live_after defs))
          (List.rev n.Mir_cfg.atoms)
      end)
    cfg.Mir_cfg.nodes;
  List.rev !facts
