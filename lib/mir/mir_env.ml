(* Typing environment for lifted translation units: struct layouts,
   globals (with volatility), typedef aliases and function return
   types, harvested from the C items of the unit plus its header. *)

type vty =
  | Scalar of Mir.ty
  | Vstruct of string  (** struct type name, resolved via [structs] *)
  | Varray of vty * int
  | Vunknown

type t = {
  structs : (string, (string * vty) list) Hashtbl.t;
  typedefs : (string, C_ast.cty) Hashtbl.t;
  globals : (string, vty) Hashtbl.t;
  volatiles : (string, unit) Hashtbl.t;
  returns : (string, vty) Hashtbl.t;  (** defined/declared functions *)
}

(* <stdint.h> limit macros appear as bare Vars in generated code *)
let macro_ty = function
  | "INT8_MAX" | "INT8_MIN" | "INT16_MAX" | "INT16_MIN" | "INT32_MAX"
  | "INT32_MIN" ->
      Some Mir.i32
  | "INT64_MAX" | "INT64_MIN" -> Some Mir.i64
  | "UINT8_MAX" | "UINT16_MAX" | "UINT32_MAX" -> Some Mir.u32
  | _ -> None

(* libm externals the generated code calls without a visible prototype *)
let libm_ty = function
  | "sin" | "cos" | "tan" | "exp" | "log" | "sqrt" | "fabs" | "round"
  | "floor" | "ceil" | "pow" | "fmod" | "atan2" ->
      Some Mir.Tf64
  | _ -> None

let rec vty_of_cty t cty =
  match cty with
  | C_ast.Void -> Vunknown
  | C_ast.Double_t -> Scalar Mir.Tf64
  | C_ast.Float_t -> Scalar Mir.Tf32
  | C_ast.I8 -> Scalar Mir.i8
  | C_ast.U8 -> Scalar Mir.u8
  | C_ast.I16 -> Scalar Mir.i16
  | C_ast.U16 -> Scalar Mir.u16
  | C_ast.I32 -> Scalar Mir.i32
  | C_ast.U32 -> Scalar Mir.u32
  | C_ast.Named "int64_t" -> Scalar Mir.i64
  | C_ast.Named "uint64_t" -> Scalar Mir.u64
  | C_ast.Named "int" -> Scalar Mir.i32
  | C_ast.Named n ->
      if Hashtbl.mem t.structs n then Vstruct n
      else (
        match Hashtbl.find_opt t.typedefs n with
        | Some alias -> vty_of_cty t alias
        | None -> Scalar (Mir.Tnamed n))
  | C_ast.Ptr _ -> Vunknown
  | C_ast.Arr (elt, n) -> Varray (vty_of_cty t elt, n)

let create items =
  let t =
    {
      structs = Hashtbl.create 16;
      typedefs = Hashtbl.create 8;
      globals = Hashtbl.create 32;
      volatiles = Hashtbl.create 8;
      returns = Hashtbl.create 16;
    }
  in
  (* two passes: struct/typedef names first so globals resolve them
     regardless of item order *)
  List.iter
    (function
      | C_ast.Struct_def (name, _) -> Hashtbl.replace t.structs name []
      | C_ast.Typedef (cty, name) -> Hashtbl.replace t.typedefs name cty
      | _ -> ())
    items;
  List.iter
    (function
      | C_ast.Struct_def (name, fields) ->
          Hashtbl.replace t.structs name
            (List.map (fun (cty, f) -> (f, vty_of_cty t cty)) fields)
      | C_ast.Global { gty; gname; volatile; _ } ->
          Hashtbl.replace t.globals gname (vty_of_cty t gty);
          if volatile then Hashtbl.replace t.volatiles gname ()
      | C_ast.Func_def f | C_ast.Proto f ->
          Hashtbl.replace t.returns f.C_ast.fname (vty_of_cty t f.C_ast.ret)
      | _ -> ())
    items;
  t

let is_volatile t root = Hashtbl.mem t.volatiles root

(* ---- typing of places and expressions ----

   [locals] maps in-scope local variables (and function arguments) to
   their vty; it shadows globals. The discipline is permissive: an
   unknown name types as [Vunknown], which unifies with anything — the
   verifier only rejects structurally impossible programs, not
   incomplete knowledge. *)

let var_vty t locals v =
  match List.assoc_opt v locals with
  | Some vt -> vt
  | None -> (
      match Hashtbl.find_opt t.globals v with
      | Some vt -> vt
      | None -> (
          match macro_ty v with Some ty -> Scalar ty | None -> Vunknown))

let rec place_vty t locals = function
  | Mir.Pvar v -> var_vty t locals v
  | Mir.Pfield (p, f) -> (
      match place_vty t locals p with
      | Vstruct s -> (
          match Hashtbl.find_opt t.structs s with
          | Some fields -> (
              match List.assoc_opt f fields with
              | Some vt -> vt
              | None -> Vunknown)
          | None -> Vunknown)
      | _ -> Vunknown)
  | Mir.Pindex (p, _) -> (
      match place_vty t locals p with Varray (vt, _) -> vt | _ -> Vunknown)

let scalar_of_vty = function
  | Scalar ty -> ty
  | Vstruct _ | Varray _ | Vunknown -> Mir.Tunknown

(* C integer promotion *)
let promote = function
  | Mir.Tint { bits; _ } when bits < 32 -> Mir.i32
  | ty -> ty

(* usual arithmetic conversions (C99 6.3.1.8), [Tunknown] absorbing *)
let usual a b =
  match (a, b) with
  | Mir.Tf64, _ | _, Mir.Tf64 -> Mir.Tf64
  | Mir.Tf32, _ | _, Mir.Tf32 -> Mir.Tf32
  | Mir.Tunknown, _ | _, Mir.Tunknown -> Mir.Tunknown
  | Mir.Tnamed _, _ | _, Mir.Tnamed _ -> Mir.Tunknown
  | Mir.Tint x, Mir.Tint y -> (
      let x = if x.Mir.bits < 32 then { Mir.bits = 32; signed = true } else x in
      let y = if y.Mir.bits < 32 then { Mir.bits = 32; signed = true } else y in
      match (x.Mir.signed, y.Mir.signed) with
      | true, true | false, false ->
          Mir.Tint (if x.Mir.bits >= y.Mir.bits then x else y)
      | false, true ->
          if x.Mir.bits >= y.Mir.bits then Mir.Tint x
          else Mir.Tint y (* signed type can hold every unsigned value *)
      | true, false ->
          if y.Mir.bits >= x.Mir.bits then Mir.Tint y else Mir.Tint x)

let rec ty_of_expr t locals e =
  match e with
  | Mir.Kint (_, Mir.Dec) -> Mir.i32
  | Mir.Kint (_, Mir.Hex) -> Mir.u32 (* Hex_lit prints with a U suffix *)
  | Mir.Kfloat _ -> Mir.Tf64
  | Mir.Load p -> scalar_of_vty (place_vty t locals p)
  | Mir.Eun (Mir.Neg, a) -> promote (ty_of_expr t locals a)
  | Mir.Eun (Mir.Lnot, _) -> Mir.i32
  | Mir.Ebin (op, a, b) ->
      if Mir.is_comparison op || Mir.is_logical op then Mir.i32
      else if op = Mir.Shl || op = Mir.Shr then promote (ty_of_expr t locals a)
      else usual (ty_of_expr t locals a) (ty_of_expr t locals b)
  | Mir.Ecast (cty, _) -> scalar_of_vty (vty_of_cty t cty)
  | Mir.Equantize (k, _) -> Mir.qkind_ty k
  | Mir.Esat16 _ -> Mir.i16
  | Mir.Esat_add32 _ | Mir.Emul_shift _ -> Mir.i32
  | Mir.Ecall (f, _) -> (
      match Hashtbl.find_opt t.returns f with
      | Some vt -> scalar_of_vty vt
      | None -> (
          match libm_ty f with Some ty -> ty | None -> Mir.Tunknown))
  | Mir.Eselect (_, a, b) -> usual (ty_of_expr t locals a) (ty_of_expr t locals b)
  | Mir.Eopaque _ -> Mir.Tunknown

(* finite value range of a scalar type, as outward-rounded doubles;
   unbounded (infinite) for floats and unknowns *)
let ty_range = function
  | Mir.Tint { bits; signed = true } ->
      let h = Float.of_int (bits - 1) in
      (-.Float.pow 2.0 h, Float.pow 2.0 h -. 1.0)
  | Mir.Tint { bits; signed = false } -> (0.0, Float.pow 2.0 (Float.of_int bits) -. 1.0)
  | Mir.Tf32 | Mir.Tf64 | Mir.Tnamed _ | Mir.Tunknown ->
      (neg_infinity, infinity)
