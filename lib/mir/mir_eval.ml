(* Reference evaluator for MIR with exact C99 scalar semantics:
   integer promotion, usual arithmetic conversions, modular wrap at
   the target width, truncating division, and the generated helpers'
   round-half-away-from-zero quantisation and saturating arithmetic.

   Deliberately written against MIR (not shared with the SIL
   interpreter's Silvm_value): the MIR<->C round-trip property in the
   test suite compares this evaluator with the SIL interpreter running
   the lowered C, so the two arithmetic implementations check each
   other. It also backs the constant folder: a fold is only performed
   when this evaluator produces a defined result. *)

exception Nonconst  (** expression depends on memory or an external *)

exception Undefined of string  (** C UB / unspecified: never folded *)

type value = Vi of Mir.ity * int64 | Vf of Mir.ty * float

let undef fmt = Printf.ksprintf (fun s -> raise (Undefined s)) fmt

(* normalise an int64 into the value range of [ity] (wrap semantics) *)
let norm (ity : Mir.ity) (v : int64) : int64 =
  if ity.Mir.bits >= 64 then v
  else
    let shift = 64 - ity.Mir.bits in
    let shifted = Int64.shift_left v shift in
    if ity.Mir.signed then Int64.shift_right shifted shift
    else Int64.shift_right_logical shifted shift

let vi ity v = Vi (ity, norm ity v)

let ity_of_ty = function
  | Mir.Tint i -> Some i
  | Mir.Tf32 | Mir.Tf64 | Mir.Tnamed _ | Mir.Tunknown -> None

(* numeric value of an integer cell as a float (u64 needs the unsigned
   reading of the bits) *)
let float_of_int_value (ity : Mir.ity) v =
  if (not ity.Mir.signed) && ity.Mir.bits = 64 && Int64.compare v 0L < 0 then
    Int64.to_float v +. 18446744073709551616.0
  else Int64.to_float v

let to_double = function
  | Vf (_, x) -> x
  | Vi (ity, v) -> float_of_int_value ity v

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* convert a value into [ty] with C conversion semantics *)
let convert (ty : Mir.ty) v : value =
  match (ty, v) with
  | Mir.Tf64, _ -> Vf (Mir.Tf64, to_double v)
  | Mir.Tf32, _ -> Vf (Mir.Tf32, round_f32 (to_double v))
  | Mir.Tint ity, Vi (_, x) -> vi ity x
  | Mir.Tint ity, Vf (_, x) ->
      (* float -> int: truncate toward zero; UB when out of range *)
      if Float.is_nan x then undef "float->int conversion of NaN";
      let tr = Float.trunc x in
      let lo, hi =
        if ity.Mir.signed then
          ( -.Float.pow 2.0 (Float.of_int (ity.Mir.bits - 1)),
            Float.pow 2.0 (Float.of_int (ity.Mir.bits - 1)) )
        else (0.0, Float.pow 2.0 (Float.of_int ity.Mir.bits))
      in
      if tr < lo || tr >= hi then
        undef "float->int conversion out of range (%g)" x;
      vi ity (Int64.of_float tr)
  | (Mir.Tnamed _ | Mir.Tunknown), _ ->
      undef "conversion to unknown type"

let promote_v = function
  | Vi (ity, v) when ity.Mir.bits < 32 ->
      vi { Mir.bits = 32; signed = true } v
  | v -> v

let is_truthy = function
  | Vi (_, v) -> not (Int64.equal v 0L)
  | Vf (_, x) -> x <> 0.0

(* usual arithmetic conversions applied to both operands *)
let usual_pair a b =
  let ty v = match v with Vi (i, _) -> Mir.Tint i | Vf (t, _) -> t in
  let common = Mir_env.usual (ty a) (ty b) in
  match common with
  | Mir.Tunknown | Mir.Tnamed _ -> undef "untyped operand"
  | _ -> (common, convert common a, convert common b)

let unsigned_lt a b = Int64.unsigned_compare a b < 0

let binop (op : Mir.bop) (a : value) (b : value) : value =
  match op with
  | Mir.Land | Mir.Lor -> assert false (* short-circuit in eval *)
  | Mir.Shl | Mir.Shr -> (
      let a = promote_v a and b = promote_v b in
      match (a, b) with
      | Vi (ity, x), Vi (_, s) ->
          let s = Int64.to_int s in
          if s < 0 || s >= ity.Mir.bits then
            undef "shift amount %d out of range for %d bits" s ity.Mir.bits;
          if op = Mir.Shl then vi ity (Int64.shift_left x s)
          else if ity.Mir.signed then vi ity (Int64.shift_right x s)
          else vi ity (Int64.shift_right_logical (norm ity x) s)
      | _ -> undef "shift on a float operand")
  | _ -> (
      let common, a, b = usual_pair a b in
      match (a, b) with
      | Vf (fty, x), Vf (_, y) -> (
          let r op = if fty = Mir.Tf32 then round_f32 op else op in
          match op with
          | Mir.Add -> Vf (fty, r (x +. y))
          | Mir.Sub -> Vf (fty, r (x -. y))
          | Mir.Mul -> Vf (fty, r (x *. y))
          | Mir.Div -> Vf (fty, r (x /. y))
          | Mir.Mod | Mir.Band | Mir.Bor | Mir.Bxor ->
              undef "integer operator on floats"
          | Mir.Eq -> vi { Mir.bits = 32; signed = true } (if x = y then 1L else 0L)
          | Mir.Ne -> vi { Mir.bits = 32; signed = true } (if x <> y then 1L else 0L)
          | Mir.Lt -> vi { Mir.bits = 32; signed = true } (if x < y then 1L else 0L)
          | Mir.Gt -> vi { Mir.bits = 32; signed = true } (if x > y then 1L else 0L)
          | Mir.Le -> vi { Mir.bits = 32; signed = true } (if x <= y then 1L else 0L)
          | Mir.Ge -> vi { Mir.bits = 32; signed = true } (if x >= y then 1L else 0L)
          | Mir.Shl | Mir.Shr | Mir.Land | Mir.Lor -> assert false)
      | Vi (ity, x), Vi (_, y) -> (
          ignore common;
          let bool_ b = vi { Mir.bits = 32; signed = true } (if b then 1L else 0L) in
          let cmp lt =
            (* after the usual conversions both sides have type [ity];
               32-bit values are exact in int64, 64-bit unsigned needs
               an unsigned compare *)
            bool_
              (if ity.Mir.signed || ity.Mir.bits < 64 then
                 lt (Int64.compare x y)
               else lt (Int64.unsigned_compare x y))
          in
          match op with
          | Mir.Add -> vi ity (Int64.add x y)
          | Mir.Sub -> vi ity (Int64.sub x y)
          | Mir.Mul -> vi ity (Int64.mul x y)
          | Mir.Div ->
              if Int64.equal y 0L then undef "division by zero";
              if ity.Mir.signed then (
                if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
                  undef "INT_MIN / -1";
                vi ity (Int64.div x y))
              else vi ity (Int64.unsigned_div (norm ity x) (norm ity y))
          | Mir.Mod ->
              if Int64.equal y 0L then undef "modulo by zero";
              if ity.Mir.signed then (
                if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
                  undef "INT_MIN %% -1";
                vi ity (Int64.rem x y))
              else vi ity (Int64.unsigned_rem (norm ity x) (norm ity y))
          | Mir.Band -> vi ity (Int64.logand x y)
          | Mir.Bor -> vi ity (Int64.logor x y)
          | Mir.Bxor -> vi ity (Int64.logxor x y)
          | Mir.Eq -> bool_ (Int64.equal x y)
          | Mir.Ne -> bool_ (not (Int64.equal x y))
          | Mir.Lt -> cmp (fun c -> c < 0)
          | Mir.Gt -> cmp (fun c -> c > 0)
          | Mir.Le -> cmp (fun c -> c <= 0)
          | Mir.Ge -> cmp (fun c -> c >= 0)
          | Mir.Shl | Mir.Shr | Mir.Land | Mir.Lor -> assert false)
      | _ -> assert false)

let unop (op : Mir.uop) (a : value) : value =
  match op with
  | Mir.Neg -> (
      match promote_v a with
      | Vi (ity, x) -> vi ity (Int64.neg x)
      | Vf (fty, x) -> Vf (fty, -.x))
  | Mir.Lnot ->
      vi { Mir.bits = 32; signed = true } (if is_truthy a then 0L else 1L)

(* ---- the generated helpers, bit for bit ---- *)

(* pe_cast_<k>: round half away from zero, saturate, NaN -> 0 *)
let quantize (k : Mir.qkind) (v : value) : value =
  let x = to_double v in
  let ret_ty = Mir.qkind_ty k in
  let ity = match ity_of_ty ret_ty with Some i -> i | None -> assert false in
  match k with
  | Mir.Qb -> vi ity (if x <> 0.0 then 1L else 0L)
  | _ ->
      if Float.is_nan x then vi ity 0L
      else
        let lo, hi = Mir.qkind_bounds k in
        let r = Float.round x in
        if r >= hi then vi ity (Int64.of_float hi)
        else if r <= lo then vi ity (Int64.of_float lo)
        else vi ity (Int64.of_float r)

let sat16 (v : value) : value =
  match convert Mir.i32 v with
  | Vi (_, x) ->
      let c = if Int64.compare x 32767L > 0 then 32767L
              else if Int64.compare x (-32768L) < 0 then -32768L
              else x in
      vi { Mir.bits = 16; signed = true } c
  | Vf _ -> assert false

let sat_add32 (a : value) (b : value) : value =
  match (convert Mir.i32 a, convert Mir.i32 b) with
  | Vi (_, x), Vi (_, y) ->
      let s = Int64.add x y in
      let c =
        if Int64.compare s 2147483647L > 0 then 2147483647L
        else if Int64.compare s (-2147483648L) < 0 then -2147483648L
        else s
      in
      vi { Mir.bits = 32; signed = true } c
  | _ -> assert false

let mul_shift (a : value) (b : value) (s : value) : value =
  match (convert Mir.i32 a, convert Mir.i32 b, convert Mir.i32 s) with
  | Vi (_, x), Vi (_, y), Vi (_, sh) ->
      let sh = Int64.to_int sh in
      if sh < 1 || sh >= 63 then undef "pe_mul_shift shift %d" sh;
      let p = Int64.mul x y in
      let p = Int64.add p (Int64.shift_left 1L (sh - 1)) in
      vi { Mir.bits = 32; signed = true } (Int64.shift_right p sh)
  | _ -> assert false

(* ---- expression evaluation ---- *)

(* [lookup] resolves a Load; pass [None] for pure constant evaluation
   (raises [Nonconst] on any memory access). *)
let rec eval ?lookup (e : Mir.expr) : value =
  let ev = eval ?lookup in
  match e with
  | Mir.Kint (n, Mir.Dec) ->
      (* a decimal literal in generated code always fits in int *)
      vi { Mir.bits = 32; signed = true } (Int64.of_int n)
  | Mir.Kint (n, Mir.Hex) -> vi { Mir.bits = 32; signed = false } (Int64.of_int n)
  | Mir.Kfloat x -> Vf (Mir.Tf64, x)
  | Mir.Load p -> (
      match lookup with
      | Some f -> f p
      | None -> raise Nonconst)
  | Mir.Eun (op, a) -> unop op (ev a)
  | Mir.Ebin (Mir.Land, a, b) ->
      vi { Mir.bits = 32; signed = true }
        (if is_truthy (ev a) && is_truthy (ev b) then 1L else 0L)
  | Mir.Ebin (Mir.Lor, a, b) ->
      vi { Mir.bits = 32; signed = true }
        (if is_truthy (ev a) || is_truthy (ev b) then 1L else 0L)
  | Mir.Ebin (op, a, b) -> binop op (ev a) (ev b)
  | Mir.Ecast (cty, a) -> (
      let v = ev a in
      match cty with
      | C_ast.Double_t -> convert Mir.Tf64 v
      | C_ast.Float_t -> convert Mir.Tf32 v
      | C_ast.I8 -> convert Mir.i8 v
      | C_ast.U8 -> convert Mir.u8 v
      | C_ast.I16 -> convert Mir.i16 v
      | C_ast.U16 -> convert Mir.u16 v
      | C_ast.I32 -> convert Mir.i32 v
      | C_ast.U32 -> convert Mir.u32 v
      | C_ast.Named "int64_t" -> convert Mir.i64 v
      | C_ast.Named "uint64_t" -> convert Mir.u64 v
      | C_ast.Named "int" -> convert Mir.i32 v
      | _ -> undef "cast to unmodelled type")
  | Mir.Equantize (k, a) -> quantize k (ev a)
  | Mir.Esat16 a -> sat16 (ev a)
  | Mir.Esat_add32 (a, b) -> sat_add32 (ev a) (ev b)
  | Mir.Emul_shift (a, b, s) -> mul_shift (ev a) (ev b) (ev s)
  | Mir.Ecall _ -> raise Nonconst
  | Mir.Eselect (c, a, b) -> if is_truthy (ev c) then ev a else ev b
  | Mir.Eopaque _ -> raise Nonconst

(* constant evaluation that reports failure instead of raising *)
let const_eval e =
  match eval e with
  | v -> Some v
  | exception (Nonconst | Undefined _) -> None

(* ---- statement interpretation over named scalar cells ----

   Supports the subset the QCheck round-trip generator emits: scalar
   globals and locals addressed as [Pvar]. *)

exception Unsupported of string

type frame = { cells : (string, value ref) Hashtbl.t; fuel : int ref }

let cell frame name =
  match Hashtbl.find_opt frame.cells name with
  | Some r -> r
  | None -> raise (Unsupported ("unbound variable " ^ name))

let rec exec env frame (s : Mir.stmt) : value option =
  let lookup = function
    | Mir.Pvar v -> !(cell frame v)
    | p ->
        raise
          (Unsupported
             ("non-scalar place " ^ Mir_to_c.expr_to_string (Mir.Load p)))
  in
  let ev e = eval ~lookup e in
  decr frame.fuel;
  if !(frame.fuel) <= 0 then raise (Unsupported "fuel exhausted");
  match s with
  | Mir.Sdecl (cty, name, init) ->
      let v =
        match init with
        | Some e -> (
            let v = ev e in
            match Mir_env.vty_of_cty env cty with
            | Mir_env.Scalar ty -> convert ty v
            | _ -> raise (Unsupported "aggregate local"))
        | None -> Vi ({ Mir.bits = 32; signed = true }, 0L)
      in
      Hashtbl.replace frame.cells name (ref v);
      None
  | Mir.Sassign (Mir.Pvar x, e) ->
      let r = cell frame x in
      let ty = match !r with Vi (i, _) -> Mir.Tint i | Vf (t, _) -> t in
      r := convert ty (ev e);
      None
  | Mir.Sassign (p, _) ->
      raise
        (Unsupported
           ("assignment to " ^ Mir_to_c.expr_to_string (Mir.Load p)))
  | Mir.Sexpr e ->
      ignore (ev e);
      None
  | Mir.Sincr (Mir.Pvar x) ->
      let r = cell frame x in
      (r :=
         match !r with
         | Vi (ity, v) -> vi ity (Int64.add v 1L)
         | Vf (t, x) -> Vf (t, x +. 1.0));
      None
  | Mir.Sincr _ -> raise (Unsupported "increment of a non-scalar place")
  | Mir.Sif (c, t, e) ->
      if is_truthy (ev c) then exec_list env frame t else exec_list env frame e
  | Mir.Swhile (c, b) ->
      let rec loop () =
        if is_truthy (ev c) then
          match exec_list env frame b with
          | Some v -> Some v
          | None -> loop ()
        else None
      in
      loop ()
  | Mir.Sfor (i, c, u, b) ->
      ignore (exec env frame i);
      let rec loop () =
        if is_truthy (ev c) then
          match exec_list env frame b with
          | Some v -> Some v
          | None ->
              ignore (exec env frame u);
              loop ()
        else None
      in
      loop ()
  | Mir.Sreturn (Some e) -> Some (ev e)
  | Mir.Sreturn None -> Some (Vi ({ Mir.bits = 32; signed = true }, 0L))
  | Mir.Scomment _ -> None
  | Mir.Sblock b -> exec_list env frame b
  | Mir.Sopaque _ -> raise (Unsupported "opaque statement")

and exec_list env frame = function
  | [] -> None
  | s :: rest -> (
      match exec env frame s with
      | Some v -> Some v
      | None -> exec_list env frame rest)

(* run a body against named global cells; returns their final values *)
let run env ~globals body =
  let frame = { cells = Hashtbl.create 16; fuel = ref 200_000 } in
  List.iter (fun (n, v) -> Hashtbl.replace frame.cells n (ref v)) globals;
  ignore (exec_list env frame body);
  List.map (fun (n, _) -> (n, !(cell frame n))) globals
