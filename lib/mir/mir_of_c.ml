(* Lift the generated C AST into MIR.

   Total by construction: every construct the lifter does not model
   becomes an [Eopaque]/[Sopaque] node carrying the original fragment,
   which [Mir_to_c] lowers verbatim. The lift/lower pair is an exact
   inverse — see the round-trip property in test_mir.ml. *)

open C_ast

let rec lift_place e : Mir.place option =
  match e with
  | Var v -> Some (Mir.Pvar v)
  | Field (b, f) ->
      Option.map (fun p -> Mir.Pfield (p, f)) (lift_place b)
  | Index (b, i) ->
      Option.map (fun p -> Mir.Pindex (p, lift_expr i)) (lift_place b)
  | _ -> None

and lift_expr e : Mir.expr =
  match e with
  | Int_lit n -> Mir.Kint (n, Mir.Dec)
  | Hex_lit n -> Mir.Kint (n, Mir.Hex)
  | Float_lit x -> Mir.Kfloat x
  | Var _ | Field _ | Index _ -> (
      match lift_place e with
      | Some p -> Mir.Load p
      | None -> Mir.Eopaque e)
  | Call ("pe_sat16", [ a ]) -> Mir.Esat16 (lift_expr a)
  | Call ("pe_sat_add32", [ a; b ]) ->
      Mir.Esat_add32 (lift_expr a, lift_expr b)
  | Call ("pe_mul_shift", [ a; b; s ]) ->
      Mir.Emul_shift (lift_expr a, lift_expr b, lift_expr s)
  | Call (f, [ a ]) when Mir.qkind_of_name f <> None -> (
      match Mir.qkind_of_name f with
      | Some k -> Mir.Equantize (k, lift_expr a)
      | None -> assert false)
  | Call (f, args) -> Mir.Ecall (f, List.map lift_expr args)
  | Un ("-", a) -> Mir.Eun (Mir.Neg, lift_expr a)
  | Un ("!", a) -> Mir.Eun (Mir.Lnot, lift_expr a)
  | Un _ -> Mir.Eopaque e
  | Bin (op, a, b) -> (
      match Mir.bop_of_name op with
      | Some bop -> Mir.Ebin (bop, lift_expr a, lift_expr b)
      | None -> Mir.Eopaque e)
  | Cast_to (cty, a) -> Mir.Ecast (cty, lift_expr a)
  | Ternary (c, a, b) -> Mir.Eselect (lift_expr c, lift_expr a, lift_expr b)
  | Str_lit _ | Arrow _ -> Mir.Eopaque e

let rec lift_stmt s : Mir.stmt =
  match s with
  | Expr (Un ("++", lv)) -> (
      match lift_place lv with
      | Some p -> Mir.Sincr p
      | None -> Mir.Sopaque s)
  | Expr e -> Mir.Sexpr (lift_expr e)
  | Decl (cty, name, init) -> Mir.Sdecl (cty, name, Option.map lift_expr init)
  | Assign (lhs, rhs) -> (
      match lift_place lhs with
      | Some p -> Mir.Sassign (p, lift_expr rhs)
      | None -> Mir.Sopaque s)
  | If (c, t, e) -> Mir.Sif (lift_expr c, lift_stmts t, lift_stmts e)
  | While (c, b) -> Mir.Swhile (lift_expr c, lift_stmts b)
  | For (i, c, u, b) -> Mir.Sfor (lift_stmt i, lift_expr c, lift_stmt u, lift_stmts b)
  | Return e -> Mir.Sreturn (Option.map lift_expr e)
  | Comment c -> Mir.Scomment c
  | Block b -> Mir.Sblock (lift_stmts b)
  | Raw _ -> Mir.Sopaque s

and lift_stmts ss = List.map lift_stmt ss
