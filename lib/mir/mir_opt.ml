(* IR-verified optimisation passes over MIR, gated behind
   `ecsd codegen --opt`:

   - constant folding, backed by the exact C99 reference evaluator
     ([Mir_eval]): a fold happens only when the evaluator produces a
     defined result AND the literal's own C type matches the folded
     expression's type, so the rewrite can never change the value of
     an enclosing expression through the usual arithmetic conversions
   - saturation-op fusion: a pe_sat16 / pe_cast_* / pe_sat_add32 call
     whose argument type already fits inside the clamp bounds is
     replaced by the plain conversion it is equivalent to
   - constant-branch elimination (if/while/ternary on a constant)
   - local constant and copy propagation within straight-line code
   - dead-store elimination for locals that are never read
   - cross-function propagation of write-once global constants set in
     <name>_initialize

   Every pass preserves the bit-exact observable behaviour of the
   generated step function; the MIL/SIL differential fuzzer is the
   oracle for that claim (test_silvm.ml). *)

(* ---- expression rewriting ---- *)

let rec map_expr f (e : Mir.expr) : Mir.expr =
  let e =
    match e with
    | Mir.Kint _ | Mir.Kfloat _ | Mir.Eopaque _ -> e
    | Mir.Load p -> Mir.Load (map_place f p)
    | Mir.Eun (op, a) -> Mir.Eun (op, map_expr f a)
    | Mir.Ebin (op, a, b) -> Mir.Ebin (op, map_expr f a, map_expr f b)
    | Mir.Ecast (t, a) -> Mir.Ecast (t, map_expr f a)
    | Mir.Equantize (k, a) -> Mir.Equantize (k, map_expr f a)
    | Mir.Esat16 a -> Mir.Esat16 (map_expr f a)
    | Mir.Esat_add32 (a, b) -> Mir.Esat_add32 (map_expr f a, map_expr f b)
    | Mir.Emul_shift (a, b, s) ->
        Mir.Emul_shift (map_expr f a, map_expr f b, map_expr f s)
    | Mir.Ecall (n, args) -> Mir.Ecall (n, List.map (map_expr f) args)
    | Mir.Eselect (c, a, b) ->
        Mir.Eselect (map_expr f c, map_expr f a, map_expr f b)
  in
  f e

and map_place f = function
  | Mir.Pvar v -> Mir.Pvar v
  | Mir.Pfield (p, fl) -> Mir.Pfield (map_place f p, fl)
  | Mir.Pindex (p, i) -> Mir.Pindex (map_place f p, map_expr f i)

(* ---- constant folding ---- *)

(* spell a constant value as a literal whose own C type matches the
   value's type, [None] when no such literal exists (64-bit values,
   f32 values, non-finite floats) *)
let literal_of_value (v : Mir_eval.value) : Mir.expr option =
  match v with
  | Mir_eval.Vi (ity, x) ->
      if ity.Mir.bits > 32 then None
      else if ity.Mir.signed || ity.Mir.bits < 32 then
        (* every sub-int type promotes to signed int with the same
           value, exactly like a decimal literal *)
        Some (Mir.Kint (Int64.to_int x, Mir.Dec))
      else
        (* u32: a hex literal prints with a U suffix and is unsigned *)
        Some (Mir.Kint (Int64.to_int (Mir_eval.norm ity x), Mir.Hex))
  | Mir_eval.Vf (Mir.Tf64, x) when Float.is_finite x -> Some (Mir.Kfloat x)
  | Mir_eval.Vf _ -> None

let try_fold (e : Mir.expr) : Mir.expr =
  match e with
  | Mir.Kint _ | Mir.Kfloat _ | Mir.Load _ | Mir.Eopaque _ -> e
  | _ -> (
      match Mir_eval.const_eval e with
      | Some v -> ( match literal_of_value v with Some l -> l | None -> e)
      | None -> e)

let int_ty_inside (lo_b, hi_b) ty =
  match ty with
  | Mir.Tint _ ->
      let lo, hi = Mir_env.ty_range ty in
      lo >= lo_b && hi <= hi_b
  | _ -> false

let cty_of_qkind = function
  | Mir.Qb -> None (* maps non-zero to 1: not a conversion *)
  | Mir.Qi8 -> Some C_ast.I8
  | Mir.Qu8 -> Some C_ast.U8
  | Mir.Qi16 -> Some C_ast.I16
  | Mir.Qu16 -> Some C_ast.U16
  | Mir.Qi32 -> Some C_ast.I32
  | Mir.Qu32 -> Some C_ast.U32

(* type-based saturation fusion: when the argument's declared type
   already fits inside the clamp bounds the saturation can never fire
   (and rounding is the identity on integers), so the helper call is
   the conversion it wraps *)
let fuse env locals (e : Mir.expr) : Mir.expr =
  let ty_of = Mir_env.ty_of_expr env locals in
  match e with
  | Mir.Esat16 a when int_ty_inside (-32768.0, 32767.0) (ty_of a) ->
      Mir.Ecast (C_ast.I16, a)
  | Mir.Equantize (k, a)
    when cty_of_qkind k <> None
         && int_ty_inside (Mir.qkind_bounds k) (ty_of a) -> (
      match cty_of_qkind k with
      | Some cty -> Mir.Ecast (cty, a)
      | None -> e)
  | Mir.Esat_add32 (a, b) -> (
      match (ty_of a, ty_of b) with
      | (Mir.Tint _ as ta), (Mir.Tint _ as tb) ->
          let la, ha = Mir_env.ty_range ta and lb, hb = Mir_env.ty_range tb in
          if la +. lb >= -2147483648.0 && ha +. hb <= 2147483647.0 then
            Mir.Ebin (Mir.Add, a, b)
          else e
      | _ -> e)
  | Mir.Eselect (Mir.Kint (c, _), a, b) ->
      (* the arms of a ternary influence each other's type; taking a
         branch is only safe when both arms agree *)
      let ta = ty_of a and tb = ty_of b in
      if ta = tb && ta <> Mir.Tunknown then (if c <> 0 then a else b) else e
  | _ -> e

let fold_node env locals e = fuse env locals (try_fold e)
let fold_expr env locals e = map_expr (fold_node env locals) e

(* truth of a constant condition, if it is one *)
let const_cond e =
  match Mir_eval.const_eval e with
  | Some v -> Some (Mir_eval.is_truthy v)
  | None -> None

(* fold expressions and eliminate constant branches, threading the
   local typing context like the verifier does *)
let rec fold_stmts env locals (ss : Mir.stmt list) : _ * Mir.stmt list =
  match ss with
  | [] -> (locals, [])
  | s :: rest ->
      let locals, s' = fold_stmt env locals s in
      let locals, rest' = fold_stmts env locals rest in
      (locals, s' @ rest')

and fold_stmt env locals (s : Mir.stmt) : _ * Mir.stmt list =
  let fe = fold_expr env locals in
  match s with
  | Mir.Sdecl (cty, n, init) ->
      ( (n, Mir_env.vty_of_cty env cty) :: locals,
        [ Mir.Sdecl (cty, n, Option.map fe init) ] )
  | Mir.Sassign (p, e) ->
      (locals, [ Mir.Sassign (map_place (fold_node env locals) p, fe e) ])
  | Mir.Sexpr e -> (locals, [ Mir.Sexpr (fe e) ])
  | Mir.Sincr p -> (locals, [ Mir.Sincr (map_place (fold_node env locals) p) ])
  | Mir.Sif (c, t, e) -> (
      let c = fe c in
      match const_cond c with
      | Some true ->
          let _, t' = fold_stmts env locals t in
          (locals, [ Mir.Sblock t' ])
      | Some false ->
          let _, e' = fold_stmts env locals e in
          (locals, if e' = [] then [] else [ Mir.Sblock e' ])
      | None ->
          let _, t' = fold_stmts env locals t in
          let _, e' = fold_stmts env locals e in
          (locals, [ Mir.Sif (c, t', e') ]))
  | Mir.Swhile (c, b) -> (
      let c = fe c in
      match const_cond c with
      | Some false -> (locals, [])
      | _ ->
          let _, b' = fold_stmts env locals b in
          (locals, [ Mir.Swhile (c, b') ]))
  | Mir.Sfor (i, c, u, b) -> (
      let locals', i' = fold_stmt env locals i in
      let i' = match i' with [ one ] -> one | l -> Mir.Sblock l in
      let c = fold_expr env locals' c in
      match const_cond c with
      | Some false ->
          (* the init still runs (and stays scoped to the loop) *)
          (locals, [ Mir.Sblock [ i' ] ])
      | _ ->
          let _, u' = fold_stmt env locals' u in
          let u' = match u' with [ one ] -> one | l -> Mir.Sblock l in
          let _, b' = fold_stmts env locals' b in
          (locals, [ Mir.Sfor (i', c, u', b') ]))
  | Mir.Sreturn e -> (locals, [ Mir.Sreturn (Option.map fe e) ])
  | Mir.Sblock b ->
      let _, b' = fold_stmts env locals b in
      (locals, [ Mir.Sblock b' ])
  | Mir.Scomment _ | Mir.Sopaque _ -> (locals, [ s ])

(* ---- local constant / copy propagation ---- *)

(* an expression is safe to duplicate into use sites *)
let propagatable = function
  | Mir.Kint _ | Mir.Kfloat _ -> true
  | Mir.Load (Mir.Pvar _) -> true
  | _ -> false

let expr_reads_var v e =
  let found = ref false in
  Mir.iter_expr
    (fun e ->
      match e with
      | Mir.Load p when Mir.place_root p = v -> found := true
      | Mir.Eopaque ce when List.mem v (Mir.vars_of_c ce) -> found := true
      | _ -> ())
    e;
  !found

let expr_impure e =
  let found = ref false in
  Mir.iter_expr
    (fun e ->
      match e with
      | Mir.Ecall _ | Mir.Eopaque _ -> found := true
      | _ -> ())
    e;
  !found

(* literal with the same value *converted to* the local's scalar type,
   when such a literal exists *)
let literal_for ty (e : Mir.expr) : Mir.expr option =
  match (ty, Mir_eval.const_eval e) with
  | Mir.Tint _, Some v | Mir.Tf64, Some v -> (
      match Mir_eval.convert ty v with
      | v' -> literal_of_value v'
      | exception Mir_eval.Undefined _ -> None)
  | _ -> None

let propagate env (body : Mir.stmt list) : Mir.stmt list =
  (* subst: local -> literal or Load of an identically typed place *)
  let kill subst v =
    List.filter
      (fun (x, e) -> (not (String.equal x v)) && not (expr_reads_var v e))
      subst
  in
  let apply subst e =
    map_expr
      (fun e ->
        match e with
        | Mir.Load (Mir.Pvar x) -> (
            match List.assoc_opt x subst with Some r -> r | None -> e)
        | _ -> e)
      e
  in
  let rec go locals subst ss =
    match ss with
    | [] -> []
    | s :: rest -> (
        let subst, s' = step locals subst s in
        let locals =
          match s with
          | Mir.Sdecl (cty, n, _) -> (n, Mir_env.vty_of_cty env cty) :: locals
          | _ -> locals
        in
        match s' with
        | None -> go locals subst rest
        | Some s' -> s' :: go locals subst rest)
  and bind locals subst x rhs =
    let subst = kill subst x in
    let ty = Mir_env.scalar_of_vty (Mir_env.var_vty env locals x) in
    match literal_for ty rhs with
    | Some l -> (x, l) :: subst
    | None -> (
        match rhs with
        | Mir.Load (Mir.Pvar y as p)
          when (not (Mir_env.is_volatile env y))
               && Mir_env.scalar_of_vty (Mir_env.place_vty env locals p) = ty
               && ty <> Mir.Tunknown ->
            (x, rhs) :: subst
        | _ -> subst)
  and step locals subst s =
    match s with
    | Mir.Sdecl (cty, n, init) -> (
        let init = Option.map (apply subst) init in
        let subst = kill subst n in
        match init with
        | Some rhs when propagatable rhs ->
            (bind ((n, Mir_env.vty_of_cty env cty) :: locals) subst n rhs,
             Some (Mir.Sdecl (cty, n, Some rhs)))
        | _ ->
            let subst = if Option.is_some init && expr_impure (Option.get init) then [] else subst in
            (subst, Some (Mir.Sdecl (cty, n, init))))
    | Mir.Sassign (p, e) -> (
        let e = apply subst e in
        let p = map_place (fun i -> apply subst i) p in
        let subst = if expr_impure e then [] else kill subst (Mir.place_root p) in
        match p with
        | Mir.Pvar x when propagatable e && not (expr_impure e) ->
            (bind locals subst x e, Some (Mir.Sassign (p, e)))
        | _ -> (subst, Some (Mir.Sassign (p, e))))
    | Mir.Sexpr e ->
        let e = apply subst e in
        ((if expr_impure e then [] else subst), Some (Mir.Sexpr e))
    | Mir.Sincr p ->
        let p = map_place (fun i -> apply subst i) p in
        (kill subst (Mir.place_root p), Some (Mir.Sincr p))
    | Mir.Sreturn e ->
        let e = Option.map (apply subst) e in
        (subst, Some (Mir.Sreturn e))
    | Mir.Sif (c, t, e) ->
        let c = apply subst c in
        let t' = go locals subst t in
        let e' = go locals subst e in
        (* conservative: a branch may have invalidated anything *)
        ([], Some (Mir.Sif (c, t', e')))
    | Mir.Swhile (c, b) ->
        (* bindings from before the loop are not valid inside it (the
           body may run after they are invalidated on iteration 2) *)
        ([], Some (Mir.Swhile (c, go locals [] b)))
    | Mir.Sfor (i, c, u, b) ->
        let _, i' =
          match step locals [] i with s, Some i' -> (s, i') | _, None -> ([], i)
        in
        ([], Some (Mir.Sfor (i', c, u, go locals [] b)))
    | Mir.Sblock b -> (subst, Some (Mir.Sblock (go locals subst b)))
    | Mir.Scomment _ -> (subst, Some s)
    | Mir.Sopaque _ -> ([], Some s)
  in
  go [] [] body

(* ---- dead-store elimination ---- *)

module Sset = Set.Make (String)

let locals_declared body =
  let acc = ref Sset.empty in
  List.iter
    (Mir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Mir.Sdecl (_, n, _) -> acc := Sset.add n !acc
         | _ -> ())
       ~expr:(fun _ -> ()))
    body;
  !acc

(* every local whose value can ever be observed: read anywhere,
   mentioned or addressed in an opaque fragment *)
let observed_locals locals body =
  let acc = ref Sset.empty in
  let note v = if Sset.mem v locals then acc := Sset.add v !acc in
  let on_expr e =
    match e with
    | Mir.Load p -> note (Mir.place_root p)
    | Mir.Eopaque ce ->
        List.iter note (Mir.vars_of_c ce);
        List.iter note (Mir.addressed_vars_of_c ce)
    | _ -> ()
  in
  let on_stmt s =
    match s with
    | Mir.Sopaque cs ->
        let rec scan (cs : C_ast.stmt) =
          match cs with
          | C_ast.Expr e | C_ast.Return (Some e) | C_ast.Decl (_, _, Some e) ->
              List.iter note (Mir.vars_of_c e)
          | C_ast.Assign (a, b) ->
              List.iter note (Mir.vars_of_c a);
              List.iter note (Mir.vars_of_c b)
          | C_ast.If (c, t, e) ->
              List.iter note (Mir.vars_of_c c);
              List.iter scan t;
              List.iter scan e
          | C_ast.While (c, b) ->
              List.iter note (Mir.vars_of_c c);
              List.iter scan b
          | C_ast.For (i, c, u, b) ->
              scan i;
              List.iter note (Mir.vars_of_c c);
              scan u;
              List.iter scan b
          | C_ast.Block b -> List.iter scan b
          | _ -> ()
        in
        scan cs
    | _ -> ()
  in
  List.iter (Mir.iter_stmt ~stmt:on_stmt ~expr:on_expr) body;
  !acc

let dce (body : Mir.stmt list) : Mir.stmt list =
  let rec pass body =
    let locals = locals_declared body in
    let observed = observed_locals locals body in
    (* a local is removable when nothing observes it and none of its
       writes has an effectful right-hand side *)
    let keep = ref observed in
    List.iter
      (Mir.iter_stmt
         ~stmt:(fun s ->
           match s with
           | Mir.Sdecl (_, n, Some e) when Mir_dfa.observable e ->
               keep := Sset.add n !keep
           | Mir.Sassign (Mir.Pvar v, e) when Mir_dfa.observable e ->
               keep := Sset.add v !keep
           | _ -> ())
         ~expr:(fun _ -> ()))
      body;
    let removable v = Sset.mem v locals && not (Sset.mem v !keep) in
    let changed = ref false in
    let rec filt ss = List.filter_map stmt ss
    and stmt s =
      match s with
      | Mir.Sdecl (_, n, _) when removable n ->
          changed := true;
          None
      | Mir.Sassign (Mir.Pvar v, _) when removable v ->
          changed := true;
          None
      | Mir.Sincr (Mir.Pvar v) when removable v ->
          changed := true;
          None
      | Mir.Sif (c, t, e) -> Some (Mir.Sif (c, filt t, filt e))
      | Mir.Swhile (c, b) -> Some (Mir.Swhile (c, filt b))
      | Mir.Sfor (i, c, u, b) ->
          (* the loop head keeps its statements structurally *)
          Some (Mir.Sfor (i, c, u, filt b))
      | Mir.Sblock b -> Some (Mir.Sblock (filt b))
      | _ -> Some s
    in
    let body' = filt body in
    if !changed then pass body' else body'
  in
  pass body

(* ---- write-once global constants ---- *)

(* A global scalar place that is stored exactly once across the unit,
   in [init_fn], with a literal right-hand side, whose root is never
   volatile, never addressed and never written through an unknown
   index, is a constant everywhere else: substitute its loads in the
   other functions. The store itself stays (the SIL harness reads the
   B/DW fields every step). *)
let const_global_candidates env ~(init_fn : string)
    (funcs : (C_ast.func * Mir.stmt list) list) : (string * Mir.expr) list =
  let stores = Hashtbl.create 32 in (* path -> (fn, literal rhs) list *)
  let dirty_roots = Hashtbl.create 8 in
  let local_names body =
    Sset.union (locals_declared body) Sset.empty
  in
  List.iter
    (fun ((f : C_ast.func), body) ->
      let locals =
        List.fold_left
          (fun s (_, n) -> Sset.add n s)
          (local_names body)
          f.C_ast.args
      in
      let dirty root = Hashtbl.replace dirty_roots root () in
      let on_expr e =
        match e with
        | Mir.Eopaque ce ->
            List.iter dirty (Mir.vars_of_c ce);
            List.iter dirty (Mir.addressed_vars_of_c ce)
        | _ -> ()
      in
      let on_stmt s =
        match s with
        | Mir.Sassign (p, rhs) when not (Sset.mem (Mir.place_root p) locals)
          -> (
            let root = Mir.place_root p in
            match Mir.place_path p with
            | None -> dirty root
            | Some path ->
                let lit =
                  match rhs with
                  | Mir.Kint _ | Mir.Kfloat _ -> Some rhs
                  | _ -> None
                in
                Hashtbl.replace stores path
                  ((f.C_ast.fname, lit)
                  :: (try Hashtbl.find stores path with Not_found -> [])))
        | Mir.Sincr p when not (Sset.mem (Mir.place_root p) locals) ->
            dirty (Mir.place_root p)
        | Mir.Sopaque cs ->
            let rec scan (cs : C_ast.stmt) =
              match cs with
              | C_ast.Expr e | C_ast.Return (Some e)
              | C_ast.Decl (_, _, Some e) ->
                  List.iter dirty (Mir.vars_of_c e)
              | C_ast.Assign (a, b) ->
                  List.iter dirty (Mir.vars_of_c a);
                  List.iter dirty (Mir.vars_of_c b)
              | C_ast.If (c, t, e) ->
                  List.iter dirty (Mir.vars_of_c c);
                  List.iter scan t;
                  List.iter scan e
              | C_ast.While (c, b) ->
                  List.iter dirty (Mir.vars_of_c c);
                  List.iter scan b
              | C_ast.For (i, c, u, b) ->
                  scan i;
                  List.iter dirty (Mir.vars_of_c c);
                  scan u;
                  List.iter scan b
              | C_ast.Block b -> List.iter scan b
              | _ -> ()
            in
            scan cs
        | _ -> ()
      in
      List.iter (Mir.iter_stmt ~stmt:on_stmt ~expr:on_expr) body)
    funcs;
  Hashtbl.fold
    (fun path writes acc ->
      let root =
        match String.index_opt path '.' with
        | Some i -> String.sub path 0 i
        | None -> (
            match String.index_opt path '[' with
            | Some i -> String.sub path 0 i
            | None -> path)
      in
      match writes with
      | [ (fn, Some lit) ]
        when String.equal fn init_fn
             && (not (Hashtbl.mem dirty_roots root))
             && not (Mir_env.is_volatile env root) ->
          (* the literal must spell the value actually stored: require
             the conversion into the place's type to be the identity *)
          let pty =
            (* rebuild the place type from the path: only simple
               root/field paths are candidates in practice *)
            let rec place_of =
              let open Mir in
              fun s ->
                match String.index_opt s '.' with
                | Some i ->
                    Pfield
                      (place_of (String.sub s 0 i),
                       String.sub s (i + 1) (String.length s - i - 1))
                | None -> Pvar s
            in
            if String.contains path '[' then Mir.Tunknown
            else
              Mir_env.scalar_of_vty (Mir_env.place_vty env [] (place_of path))
          in
          (match (pty, literal_for pty lit) with
          | Mir.Tunknown, _ | _, None -> acc
          | _, Some l when l = lit -> (path, lit) :: acc
          | _, Some _ -> acc)
      | _ -> acc)
    stores []

(* substitute loads of candidate paths (outside the initialiser) *)
let subst_global_loads (cands : (string * Mir.expr) list)
    (body : Mir.stmt list) : Mir.stmt list =
  if cands = [] then body
  else
    let rewrite e =
      map_expr
        (fun e ->
          match e with
          | Mir.Load p -> (
              match Mir.place_path p with
              | Some path -> (
                  match List.assoc_opt path cands with
                  | Some lit -> lit
                  | None -> e)
              | None -> e)
          | _ -> e)
        e
    in
    let rec go ss = List.map stmt ss
    and stmt s =
      match s with
      | Mir.Sdecl (t, n, init) -> Mir.Sdecl (t, n, Option.map rewrite init)
      | Mir.Sassign (p, e) -> Mir.Sassign (map_place rewrite p, rewrite e)
      | Mir.Sexpr e -> Mir.Sexpr (rewrite e)
      | Mir.Sincr p -> Mir.Sincr (map_place rewrite p)
      | Mir.Sif (c, t, e) -> Mir.Sif (rewrite c, go t, go e)
      | Mir.Swhile (c, b) -> Mir.Swhile (rewrite c, go b)
      | Mir.Sfor (i, c, u, b) -> Mir.Sfor (stmt i, rewrite c, stmt u, go b)
      | Mir.Sreturn e -> Mir.Sreturn (Option.map rewrite e)
      | Mir.Sblock b -> Mir.Sblock (go b)
      | Mir.Scomment _ | Mir.Sopaque _ -> s
    in
    go body

(* ---- per-function driver ---- *)

(* per-pass self-profiling; accumulated across every optimized function,
   read back via --profile and BENCH_perf.json *)
let timed name f =
  if not (Obs.enabled ()) then f ()
  else begin
    let t0 = Obs.now_ns () in
    let r = f () in
    Obs.record_named name ((Obs.now_ns () -. t0) *. 1e-9);
    r
  end

let optimize env (f : C_ast.func) (body : Mir.stmt list) : Mir.stmt list =
  let base =
    List.map (fun (cty, n) -> (n, Mir_env.vty_of_cty env cty)) f.C_ast.args
  in
  (* fold and propagate feed each other (a propagated literal exposes a
     fold; a folded initialiser becomes propagatable), so iterate the
     pair to a fixpoint. Generated step functions settle in 2 rounds;
     the bound only guards against a pathological ping-pong. *)
  let rec settle round body =
    let _, folded =
      timed "profile.mir.fold_s" (fun () -> fold_stmts env base body)
    in
    let propagated =
      timed "profile.mir.propagate_s" (fun () -> propagate env folded)
    in
    if propagated = folded || round >= 8 then folded
    else settle (round + 1) propagated
  in
  let settled = settle 1 body in
  timed "profile.mir.dce_s" (fun () -> dce settled)
