(* Value-range analysis over the MIR CFG, and the saturation-op
   prover built on it.

   The domain is a map from canonical place paths to closed float
   intervals; a missing key means "anything representable in the
   place's type". The solver is the generic worklist engine
   ([Dataflow.Solve]) with interval widening after a few visits of the
   same node, so loop counters converge without walking the whole
   int32 range.

   The prover classifies every [Esat16] / [Esat_add32] / [Equantize]
   site against the stabilised intervals:

   - [Never]:  the clamp can never change the value (discharged)
   - [Always]: the clamp fires on every execution (confirmed)
   - [May]:    the range straddles a saturation bound

   Intervals over-approximate the reachable values, so [Never] and
   [Always] are sound claims; [May] is the honest "cannot prove". *)

type itv = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

(* normalise: a NaN bound means an infinity was involved upstream *)
let mk lo hi =
  if Float.is_nan lo || Float.is_nan hi then top else { lo; hi }

let const x = mk x x
let hull a b = mk (Float.min a.lo b.lo) (Float.max a.hi b.hi)
let is_finite i = Float.is_finite i.lo && Float.is_finite i.hi

module Smap = Map.Make (String)

(* [None] is the unreachable (bottom) state; a present map binds the
   place paths about which something is known *)
module L = struct
  type t = itv Smap.t option

  let bottom = None

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b ->
        Smap.equal (fun x y -> compare x y = 0) a b
    | _ -> false

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b ->
        (* a key missing on either side is top there: drop it *)
        Some
          (Smap.merge
             (fun _ x y ->
               match (x, y) with Some x, Some y -> Some (hull x y) | _ -> None)
             a b)
end

module Solver = Dataflow.Solve (L)

(* unbounded growth in loops: keep each bound that is still moving *)
let widen ~old ~next =
  match (old, next) with
  | None, x -> x
  | Some o, Some n ->
      Some
        (Smap.filter_map
           (fun k ni ->
             match Smap.find_opt k o with
             | None -> None (* key appeared late: give it up *)
             | Some oi ->
                 let lo = if ni.lo < oi.lo then neg_infinity else ni.lo in
                 let hi = if ni.hi > oi.hi then infinity else ni.hi in
                 Some (mk lo hi))
           n)
  | Some _, None -> None

(* ---- sat-site verdicts ---- *)

type verdict = Never | May | Always

let verdict_name = function
  | Never -> "never saturates"
  | May -> "may saturate"
  | Always -> "always saturates"

type sat_fact = {
  op : string;  (** helper name: pe_sat16 / pe_sat_add32 / pe_cast_* *)
  site : string;  (** C spelling of the whole saturating expression *)
  verdict : verdict;
  arg : itv;  (** stabilised interval of the saturand *)
  bounds : float * float;  (** the clamp bounds of the op *)
}

(* round half away from zero, as the generated helpers do *)
let round_ha x =
  if x >= 0.0 then Float.floor (x +. 0.5) else Float.ceil (x -. 0.5)

let classify ~rounded (i : itv) (lo_b, hi_b) : verdict =
  let r = if rounded then mk (round_ha i.lo) (round_ha i.hi) else i in
  if is_finite r && r.lo >= lo_b && r.hi <= hi_b then Never
  else if (Float.is_finite r.lo && r.lo > hi_b)
          || (Float.is_finite r.hi && r.hi < lo_b)
  then Always
  else May

(* ---- abstract evaluation ---- *)

type ctx = {
  env : Mir_env.t;
  locals : (string * Mir_env.vty) list;
  mutable record : (Mir.expr -> string -> verdict -> itv -> float * float -> unit) option;
}

let place_range ctx p =
  Mir_env.ty_range (Mir_env.scalar_of_vty (Mir_env.place_vty ctx.env ctx.locals p))

let ty_itv ty = let lo, hi = Mir_env.ty_range ty in mk lo hi

(* helpers the generated code calls that cannot write memory *)
let pure_call f =
  Mir_env.libm_ty f <> None || Mir.qkind_of_name f <> None
  || (match f with
     | "pe_sat16" | "pe_sat_add32" | "pe_mul_shift" -> true
     | _ -> false)

let rec eval_itv ctx (state : itv Smap.t) (e : Mir.expr) : itv =
  let ev = eval_itv ctx state in
  let ty_of e = Mir_env.ty_of_expr ctx.env ctx.locals e in
  (* wrap semantics: when a result may leave its C type's range the
     sound answer is the whole type range *)
  let wrap e i =
    let lo, hi = Mir_env.ty_range (ty_of e) in
    if i.lo >= lo && i.hi <= hi then i else mk lo hi
  in
  match e with
  | Mir.Kint (n, _) -> const (Float.of_int n)
  | Mir.Kfloat x -> const x
  | Mir.Load p -> (
      let root = Mir.place_root p in
      if Mir_env.is_volatile ctx.env root then
        let lo, hi = place_range ctx p in
        mk lo hi
      else
        match Mir.place_path p with
        | Some path when Smap.mem path state -> Smap.find path state
        | _ ->
            let lo, hi = place_range ctx p in
            mk lo hi)
  | Mir.Eun (Mir.Neg, a) ->
      let i = ev a in
      wrap e (mk (-.i.hi) (-.i.lo))
  | Mir.Eun (Mir.Lnot, _) -> mk 0.0 1.0
  | Mir.Ebin (op, a, b) -> (
      let ia = ev a and ib = ev b in
      match op with
      | Mir.Add -> wrap e (mk (ia.lo +. ib.lo) (ia.hi +. ib.hi))
      | Mir.Sub -> wrap e (mk (ia.lo -. ib.hi) (ia.hi -. ib.lo))
      | Mir.Mul ->
          let c = [ ia.lo *. ib.lo; ia.lo *. ib.hi; ia.hi *. ib.lo; ia.hi *. ib.hi ] in
          wrap e (mk (List.fold_left Float.min infinity c)
                    (List.fold_left Float.max neg_infinity c))
      | Mir.Div ->
          if ib.lo <= 0.0 && ib.hi >= 0.0 then ty_itv (ty_of e)
          else
            let c = [ ia.lo /. ib.lo; ia.lo /. ib.hi; ia.hi /. ib.lo; ia.hi /. ib.hi ] in
            wrap e (mk (List.fold_left Float.min infinity c)
                      (List.fold_left Float.max neg_infinity c))
      | Mir.Eq | Mir.Ne | Mir.Lt | Mir.Gt | Mir.Le | Mir.Ge | Mir.Land
      | Mir.Lor ->
          mk 0.0 1.0
      | Mir.Mod | Mir.Shl | Mir.Shr | Mir.Band | Mir.Bor | Mir.Bxor ->
          ty_itv (ty_of e))
  | Mir.Ecast (_, a) ->
      let i = ev a in
      let lo, hi = Mir_env.ty_range (ty_of e) in
      (* in-range conversions are exact; otherwise the wrap (or f32
         rounding) can produce anything representable *)
      if is_finite i && i.lo >= lo && i.hi <= hi then i else mk lo hi
  | Mir.Equantize (k, a) ->
      let i = ev a in
      let bounds = Mir.qkind_bounds k in
      record_site ctx e (Mir.qkind_name k)
        (if k = Mir.Qb then May
         else
           (* the rounding path only applies to float saturands; an
              integer-typed argument is already integral *)
           classify ~rounded:(match ty_of a with
                              | Mir.Tf32 | Mir.Tf64 -> true
                              | _ -> false)
             i bounds)
        i bounds;
      if k = Mir.Qb then mk 0.0 1.0
      else
        let lo_b, hi_b = bounds in
        let r = mk (round_ha i.lo) (round_ha i.hi) in
        if is_finite r then mk (Float.max lo_b r.lo) (Float.min hi_b r.hi)
        else mk lo_b hi_b
  | Mir.Esat16 a ->
      let i = ev a in
      let bounds = (-32768.0, 32767.0) in
      record_site ctx e "pe_sat16" (classify ~rounded:false i bounds) i bounds;
      mk (Float.max (-32768.0) i.lo) (Float.min 32767.0 i.hi)
  | Mir.Esat_add32 (a, b) ->
      let ia = ev a and ib = ev b in
      let s = mk (ia.lo +. ib.lo) (ia.hi +. ib.hi) in
      let bounds = (-2147483648.0, 2147483647.0) in
      record_site ctx e "pe_sat_add32" (classify ~rounded:false s bounds) s
        bounds;
      mk (Float.max (-2147483648.0) s.lo) (Float.min 2147483647.0 s.hi)
  | Mir.Emul_shift (a, b, s) ->
      ignore (ev a); ignore (ev b); ignore (ev s);
      ty_itv Mir.i32
  | Mir.Ecall (f, args) ->
      List.iter (fun a -> ignore (ev a)) args;
      (* libm results are at least bounded for a few shapes *)
      (match f with
      | "fabs" -> (
          match args with
          | [ a ] ->
              let i = ev a in
              if is_finite i then mk 0.0 (Float.max (Float.abs i.lo) (Float.abs i.hi))
              else mk 0.0 infinity
          | _ -> top)
      | "sin" | "cos" -> mk (-1.0) 1.0
      | _ -> ty_itv (Mir_env.ty_of_expr ctx.env ctx.locals e))
  | Mir.Eselect (c, a, b) ->
      ignore (ev c);
      hull (ev a) (ev b)
  | Mir.Eopaque _ -> top

and record_site ctx e op verdict i bounds =
  match ctx.record with
  | Some f -> f e op verdict i bounds
  | None -> ()

(* remove every binding rooted at [root] *)
let havoc_root root state =
  Smap.filter
    (fun path _ ->
      not
        (String.equal path root
        || (String.length path > String.length root
           && String.sub path 0 (String.length root) = root
           && (path.[String.length root] = '.'
              || path.[String.length root] = '['))))
    state

(* variables an expression's opaque fragments may write *)
let opaque_writes e =
  let acc = ref [] in
  Mir.iter_expr
    (fun e ->
      match e with
      | Mir.Eopaque ce -> acc := Mir.addressed_vars_of_c ce @ !acc
      | _ -> ())
    e;
  !acc

(* a call that may write memory invalidates everything we know *)
let impure_call e =
  let found = ref false in
  Mir.iter_expr
    (fun e ->
      match e with
      | Mir.Ecall (f, _) when not (pure_call f) -> found := true
      | _ -> ())
    e;
  !found

let exec_expr ctx state e =
  let i = eval_itv ctx state e in
  let state = List.fold_left (fun st v -> havoc_root v st) state (opaque_writes e) in
  let state = if impure_call e then Smap.empty else state in
  (i, state)

let exec_atom ctx (state : itv Smap.t) (at : Mir_cfg.atom) : itv Smap.t =
  match at.Mir_cfg.a with
  | Mir_cfg.A_cond c ->
      let _, state = exec_expr ctx state c in
      state
  | Mir_cfg.A_stmt s -> (
      match s with
      | Mir.Sdecl (_, n, Some e) ->
          let i, state = exec_expr ctx state e in
          let ty =
            Mir_env.scalar_of_vty (Mir_env.var_vty ctx.env ctx.locals n)
          in
          let lo, hi = Mir_env.ty_range ty in
          let i = if i.lo >= lo && i.hi <= hi then i else mk lo hi in
          Smap.add n i state
      | Mir.Sdecl (_, n, None) -> Smap.remove n state
      | Mir.Sassign (p, e) -> (
          let i, state = exec_expr ctx state e in
          let root = Mir.place_root p in
          if Mir_env.is_volatile ctx.env root then state
          else
            match Mir.place_path p with
            | Some path ->
                let lo, hi = place_range ctx p in
                let i = if i.lo >= lo && i.hi <= hi then i else mk lo hi in
                Smap.add path i state
            | None -> havoc_root root state)
      | Mir.Sexpr e ->
          let _, state = exec_expr ctx state e in
          state
      | Mir.Sincr p -> (
          match Mir.place_path p with
          | Some path -> (
              match Smap.find_opt path state with
              | Some i ->
                  let lo, hi = place_range ctx p in
                  let n = mk (i.lo +. 1.0) (i.hi +. 1.0) in
                  Smap.add path
                    (if n.lo >= lo && n.hi <= hi then n else mk lo hi)
                    state
              | None -> state)
          | None -> havoc_root (Mir.place_root p) state)
      | Mir.Sreturn (Some e) ->
          let _, state = exec_expr ctx state e in
          state
      | Mir.Sreturn None | Mir.Scomment _ -> state
      | Mir.Sopaque _ ->
          (* an unmodelled statement may write anything *)
          Smap.empty
      | Mir.Sif _ | Mir.Swhile _ | Mir.Sfor _ | Mir.Sblock _ -> state)

let rec locals_of_body acc env = function
  | [] -> acc
  | s :: rest ->
      let acc =
        match s with
        | Mir.Sdecl (cty, n, _) -> (n, Mir_env.vty_of_cty env cty) :: acc
        | Mir.Sif (_, t, e) -> locals_of_body (locals_of_body acc env t) env e
        | Mir.Swhile (_, b) | Mir.Sblock b -> locals_of_body acc env b
        | Mir.Sfor (i, _, u, b) -> locals_of_body acc env (i :: u :: b)
        | _ -> acc
      in
      locals_of_body acc env rest

(* analyse one function body; returns the verdict facts in source
   order (by atom id) *)
let analyze env (f : C_ast.func) (body : Mir.stmt list) : sat_fact list =
  let locals =
    List.map (fun (cty, n) -> (n, Mir_env.vty_of_cty env cty)) f.C_ast.args
    @ locals_of_body [] env body
  in
  let ctx = { env; locals; record = None } in
  let cfg = Mir_cfg.build body in
  let transfer i (fact : L.t) : L.t =
    match fact with
    | None -> None
    | Some state ->
        Some
          (List.fold_left (exec_atom ctx) state
             cfg.Mir_cfg.nodes.(i).Mir_cfg.atoms)
  in
  let res =
    Solver.run ~widen Dataflow.Forward cfg ~entry:(Some Smap.empty) ~transfer
  in
  (* final pass with the stabilised inputs, recording every sat site;
     key facts by atom to keep them in source order and deduplicated *)
  let facts = ref [] in
  Array.iter
    (fun n ->
      match res.Solver.inp.(n.Mir_cfg.nid) with
      | None -> ()
      | Some state ->
          let state = ref state in
          List.iter
            (fun at ->
              ctx.record <-
                Some
                  (fun e op verdict i bounds ->
                    facts :=
                      ( at.Mir_cfg.aid,
                        {
                          op;
                          site = Mir_to_c.expr_to_string e;
                          verdict;
                          arg = i;
                          bounds;
                        } )
                      :: !facts);
              state := exec_atom ctx !state at;
              ctx.record <- None)
            n.Mir_cfg.atoms)
    cfg.Mir_cfg.nodes;
  List.sort (fun (a, _) (b, _) -> compare a b) !facts |> List.map snd
