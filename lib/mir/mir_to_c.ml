(* Lower MIR back to the C AST: the exact inverse of [Mir_of_c.lift].
   Every constructor maps to the one C spelling it was lifted from, so
   lower (lift c) = c structurally for any generated unit. *)

let rec lower_place = function
  | Mir.Pvar v -> C_ast.Var v
  | Mir.Pfield (p, f) -> C_ast.Field (lower_place p, f)
  | Mir.Pindex (p, i) -> C_ast.Index (lower_place p, lower_expr i)

and lower_expr = function
  | Mir.Kint (n, Mir.Dec) -> C_ast.Int_lit n
  | Mir.Kint (n, Mir.Hex) -> C_ast.Hex_lit n
  | Mir.Kfloat x -> C_ast.Float_lit x
  | Mir.Load p -> lower_place p
  | Mir.Eun (op, a) -> C_ast.Un (Mir.uop_name op, lower_expr a)
  | Mir.Ebin (op, a, b) -> C_ast.Bin (Mir.bop_name op, lower_expr a, lower_expr b)
  | Mir.Ecast (cty, a) -> C_ast.Cast_to (cty, lower_expr a)
  | Mir.Equantize (k, a) -> C_ast.Call (Mir.qkind_name k, [ lower_expr a ])
  | Mir.Esat16 a -> C_ast.Call ("pe_sat16", [ lower_expr a ])
  | Mir.Esat_add32 (a, b) ->
      C_ast.Call ("pe_sat_add32", [ lower_expr a; lower_expr b ])
  | Mir.Emul_shift (a, b, s) ->
      C_ast.Call ("pe_mul_shift", [ lower_expr a; lower_expr b; lower_expr s ])
  | Mir.Ecall (f, args) -> C_ast.Call (f, List.map lower_expr args)
  | Mir.Eselect (c, a, b) ->
      C_ast.Ternary (lower_expr c, lower_expr a, lower_expr b)
  | Mir.Eopaque e -> e

let rec lower_stmt = function
  | Mir.Sdecl (cty, name, init) ->
      C_ast.Decl (cty, name, Option.map lower_expr init)
  | Mir.Sassign (p, e) -> C_ast.Assign (lower_place p, lower_expr e)
  | Mir.Sexpr e -> C_ast.Expr (lower_expr e)
  | Mir.Sincr p -> C_ast.Expr (C_ast.Un ("++", lower_place p))
  | Mir.Sif (c, t, e) -> C_ast.If (lower_expr c, lower_stmts t, lower_stmts e)
  | Mir.Swhile (c, b) -> C_ast.While (lower_expr c, lower_stmts b)
  | Mir.Sfor (i, c, u, b) ->
      C_ast.For (lower_stmt i, lower_expr c, lower_stmt u, lower_stmts b)
  | Mir.Sreturn e -> C_ast.Return (Option.map lower_expr e)
  | Mir.Scomment c -> C_ast.Comment c
  | Mir.Sblock b -> C_ast.Block (lower_stmts b)
  | Mir.Sopaque s -> s

and lower_stmts ss = List.map lower_stmt ss

(* compact C rendering of a MIR expression/statement, for diagnostics *)
let expr_to_string e = C_print.expr_to_string (lower_expr e)

let stmt_to_string s =
  match String.split_on_char '\n' (C_print.print_stmts [ lower_stmt s ]) with
  | l :: _ -> String.trim l
  | [] -> ""
